package obsv

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"smrseek/internal/core"
	"smrseek/internal/disk"
)

// Binary wire format: an 8-byte magic header followed by fixed-size
// 35-byte records, little-endian:
//
//	off 0  kind  uint8  (evOp..evSummary2)
//	off 1  sub   uint8  (disk.OpKind, core.MechKind or core.JournalKind)
//	off 2  flags uint8  (flag* bits)
//	off 3  op    int64  (0-based trace operation index)
//	off 11 a     int64  \
//	off 19 b     int64   kind-specific payload words
//	off 27 c     int64  /
//
// The format is versioned through the magic; an incompatible change
// bumps the trailing byte.
var magic = [8]byte{'S', 'M', 'R', 'T', 'R', 'C', 0, 1}

const recordSize = 3 + 4*8

// Record kinds.
const (
	evOp       = uint8(iota + 1) // sub=OpKind a=Lba.Start b=Lba.Count c=Frags
	evAccess                     // sub=OpKind a=Extent.Start b=Extent.Count c=Distance
	evMech                       // sub=MechKind a=Sectors
	evJournal                    // sub=JournalKind a=Dur(ns)
	evSummary                    // a=WAF bits b=CheckpointAge c=TransientReads
	evSummary2                   // a=TransientWrites b=MediaErrors c=Poisoned
)

// Access/summary flag bits.
const (
	flagSeeked      = uint8(1 << iota) // AccessEvent: the attempt seeked
	flagFaulted                        // AccessEvent: the attempt faulted
	flagMaintenance                    // AccessEvent: background maintenance I/O
	flagTransient                      // AccessEvent: the fault was retryable
	flagInjected                       // Summary: a fault injector was attached
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// record encodes and writes one binary record.
func (t *Tracer) record(kind, sub, flags uint8, op, a, b, c int64) {
	if t.err != nil {
		return
	}
	buf := t.buf[:]
	buf[0], buf[1], buf[2] = kind, sub, flags
	binary.LittleEndian.PutUint64(buf[3:], uint64(op))
	binary.LittleEndian.PutUint64(buf[11:], uint64(a))
	binary.LittleEndian.PutUint64(buf[19:], uint64(b))
	binary.LittleEndian.PutUint64(buf[27:], uint64(c))
	_, t.err = t.w.Write(buf)
}

// Replay reads a binary trace and accumulates the recorded run's Stats.
// The returned Stats match the live run's bit for bit — every counter
// the simulator tracks is either derivable from the per-event stream or
// carried by the trailing summary records — except Stats.Config, which
// describes the live configuration and is zero here.
func Replay(r io.Reader) (core.Stats, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return core.Stats{}, fmt.Errorf("obsv: reading trace header: %w", err)
	}
	if hdr != magic {
		return core.Stats{}, fmt.Errorf("obsv: not a smrseek binary trace (bad magic %q)", hdr[:])
	}

	var (
		st       core.Stats
		injected bool
		tr, tw   int64 // transient read / write faults (summary)
		me, po   int64 // media errors / poisoned serves (summary)
		buf      [recordSize]byte
	)
	st.WAF = 1 // a run without a trailing summary is an untranslated one
	for n := int64(0); ; n++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return core.Stats{}, fmt.Errorf("obsv: trace record %d: %w", n, err)
		}
		kind, sub, flags := buf[0], buf[1], buf[2]
		a := int64(binary.LittleEndian.Uint64(buf[11:]))
		b := int64(binary.LittleEndian.Uint64(buf[19:]))
		c := int64(binary.LittleEndian.Uint64(buf[27:]))
		switch kind {
		case evOp:
			if disk.OpKind(sub) == disk.Read {
				st.Reads++
				st.TotalFragments += c
				if int(c) > st.MaxFragments {
					st.MaxFragments = int(c)
				}
				if c > 1 {
					st.FragmentedReads++
				}
			} else {
				st.Writes++
			}
		case evAccess:
			replayAccess(&st.Disk, disk.OpKind(sub), flags, b, c)
		case evMech:
			replayMech(&st, core.MechKind(sub), a)
		case evJournal:
			switch core.JournalKind(sub) {
			case core.JournalAppend:
				st.Durability.JournalAppends++
			case core.JournalAppendRetry:
				st.Durability.AppendRetries++
			case core.JournalAppendFailure:
				st.Durability.AppendFailures++
			case core.JournalCheckpoint:
				st.Durability.Checkpoints++
			case core.JournalCrash:
				st.Durability.Crashed = true
			}
		case evSummary:
			st.WAF = math.Float64frombits(uint64(a))
			st.Durability.CheckpointAge = b
			injected = flags&flagInjected != 0
			tr = c
		case evSummary2:
			tw, me, po = a, b, c
		default:
			return core.Stats{}, fmt.Errorf("obsv: trace record %d: unknown kind %d", n, kind)
		}
	}
	if injected {
		st.Resilience.FaultsInjected = tr + tw + me + po
		st.Resilience.TransientFaults = tr + tw
		st.Resilience.WriteFaults = tw
		st.Resilience.MediaFaults = me
	}
	return st, nil
}

// replayAccess mirrors disk.TryDo's counter updates exactly: per-attempt
// ops and seeks, sectors only on non-faulted attempts, the long-seek
// split at disk.LongSeekSectors.
func replayAccess(cs *disk.Counters, kind disk.OpKind, flags uint8, count, distance int64) {
	if count <= 0 {
		return // TryDo ignores empty extents entirely
	}
	seeked := flags&flagSeeked != 0
	faulted := flags&flagFaulted != 0
	long := false
	if d := distance; seeked {
		if d < 0 {
			d = -d
		}
		long = d > disk.LongSeekSectors
	}
	switch kind {
	case disk.Read:
		cs.ReadOps++
		if faulted {
			cs.FaultedReads++
		} else {
			cs.ReadSectors += count
		}
		if seeked {
			cs.ReadSeeks++
			if long {
				cs.LongReadSeeks++
			}
		}
	case disk.Write:
		cs.WriteOps++
		if faulted {
			cs.FaultedWrites++
		} else {
			cs.WriteSectors += count
		}
		if seeked {
			cs.WriteSeeks++
			if long {
				cs.LongWriteSeeks++
			}
		}
	}
}

func replayMech(st *core.Stats, kind core.MechKind, n int64) {
	switch kind {
	case core.MechCacheHit:
		st.CacheHits++
	case core.MechCacheMiss:
		st.CacheMisses++
	case core.MechCacheInvalidate:
		st.CacheInvalidations += n
	case core.MechPrefetchHit:
		st.PrefetchHits++
	case core.MechDefragWriteback:
		st.DefragWritebacks++
		st.DefragSectors += n
	case core.MechRetry:
		st.Resilience.Retries++
	case core.MechRecovery:
		st.Resilience.Recoveries++
	case core.MechUnrecovered:
		st.Resilience.Unrecovered++
	case core.MechAbortedRelocation:
		st.Resilience.AbortedRelocations++
	case core.MechPoisonedEviction:
		st.Resilience.PoisonedEvictions++
	case core.MechPrefetchFallback:
		st.Resilience.PrefetchFallbacks++
	case core.MechMaintRead:
		st.MaintReads++
		st.MaintSectors += n
	case core.MechMaintWrite:
		st.MaintWrites++
		st.MaintSectors += n
	}
}

// ReplayFile replays a binary trace file.
func ReplayFile(path string) (core.Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.Stats{}, err
	}
	defer f.Close()
	return Replay(f)
}
