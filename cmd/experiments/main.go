// Command experiments regenerates the paper's tables and figures from
// the synthetic workload catalog.
//
// Usage:
//
//	experiments [-scale 0.5] table1 fig2 fig3 fig4 fig5 fig7 fig8 fig10 fig11 waf timeamp durability
//	experiments all
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"smrseek"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scale := fs.Float64("scale", 0, "workload scale (0 = default 0.5)")
	timeout := fs.Duration("timeout", 0, "abort each experiment after this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		return fmt.Errorf(`pass experiment names (table1 fig2 fig3 fig4 fig5 fig7 fig8 fig10 fig11 waf timeamp durability) or "all"`)
	}
	for _, name := range names {
		if err := runExperiment(name, out, *scale, *timeout); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runExperiment runs one experiment under its own timeout, so a stuck
// figure cannot starve the rest of the list.
func runExperiment(name string, out io.Writer, scale float64, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return smrseek.RunExperimentContext(ctx, out, name, scale)
}
