package chaos

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Proxy forwards smrd protocol connections to a backend and injects
// faults on command: Kill severs every live connection, Partition
// refuses new ones (and severs live ones) until healed, SetDelay adds
// per-response latency, and SetCorrupt mutates response frame payloads
// in flight — the corrupt-shipped-segment scenario.
//
// The server→client direction is forwarded frame-aware (the 5-byte
// hello verbatim, then length-prefixed frames) so corruption and delay
// hit whole response payloads; the client→server direction is a plain
// byte copy.
type Proxy struct {
	ln      net.Listener
	backend string

	mu        sync.Mutex
	conns     []net.Conn
	severed   bool // partitioned: refuse new connections
	delay     time.Duration
	corrupt   func(payload []byte)
	corrupted int64
}

// NewProxy listens on a fresh loopback port, forwarding to backend.
func NewProxy(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, backend: backend}
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops listening and severs every live connection.
func (p *Proxy) Close() {
	p.ln.Close()
	p.Kill()
}

// Kill severs every live connection; new ones still connect (unless
// partitioned).
func (p *Proxy) Kill() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Partition turns the link off (sever live connections, refuse new
// ones) or back on.
func (p *Proxy) Partition(on bool) {
	p.mu.Lock()
	p.severed = on
	p.mu.Unlock()
	if on {
		p.Kill()
	}
}

// SetDelay adds d of latency before each forwarded response frame.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetCorrupt installs (or, with nil, removes) an in-flight mutation of
// response frame payloads. fn runs on every server→client payload after
// the handshake; mutate in place.
func (p *Proxy) SetCorrupt(fn func(payload []byte)) {
	p.mu.Lock()
	p.corrupt = fn
	p.mu.Unlock()
}

// Corrupted returns how many response frames the corrupt hook has run
// on.
func (p *Proxy) Corrupted() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.corrupted
}

func (p *Proxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		severed := p.severed
		p.mu.Unlock()
		if severed {
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.backend)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, conn, up)
		p.mu.Unlock()
		go func() { io.Copy(up, conn); up.Close() }()
		go func() { p.pumpResponses(conn, up); conn.Close() }()
	}
}

// pumpResponses forwards the server→client direction frame by frame,
// applying the configured delay and corruption.
func (p *Proxy) pumpResponses(dst io.Writer, src io.Reader) {
	// The server's hello precedes the framed stream: 5 bytes, plus a
	// 2-byte granted window when SMRD2 was negotiated.
	var hello [5]byte
	if _, err := io.ReadFull(src, hello[:]); err != nil {
		return
	}
	if _, err := dst.Write(hello[:]); err != nil {
		return
	}
	if hello[4] >= 2 {
		var window [2]byte
		if _, err := io.ReadFull(src, window[:]); err != nil {
			return
		}
		if _, err := dst.Write(window[:]); err != nil {
			return
		}
	}
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > 64<<20 {
			return // nonsense length; drop the link
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(src, payload); err != nil {
			return
		}
		p.mu.Lock()
		delay, corrupt := p.delay, p.corrupt
		if corrupt != nil {
			p.corrupted++
		}
		p.mu.Unlock()
		if corrupt != nil {
			corrupt(payload)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if _, err := dst.Write(hdr[:]); err != nil {
			return
		}
		if _, err := dst.Write(payload); err != nil {
			return
		}
	}
}

// String implements fmt.Stringer for debugging.
func (p *Proxy) String() string {
	return fmt.Sprintf("chaos.Proxy(%s -> %s)", p.Addr(), p.backend)
}
