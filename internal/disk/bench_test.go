package disk

import (
	"math/rand"
	"testing"

	"smrseek/internal/geom"
)

func BenchmarkDoSequential(b *testing.B) {
	d := New()
	pos := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(geom.Ext(pos, 8))
		pos += 8
	}
}

func BenchmarkDoRandom(b *testing.B) {
	d := New()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(geom.Ext(rng.Int63n(1<<30), 8))
	}
}

func BenchmarkSeekTime(b *testing.B) {
	m := DefaultTimeModel()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SeekTime(rng.Int63n(1<<32) - 1<<31)
	}
}
