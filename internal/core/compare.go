package core

import (
	"context"

	"smrseek/internal/geom"
	"smrseek/internal/metrics"
	"smrseek/internal/trace"
)

// SAFReport holds the seek amplification factors of one variant against
// the NoLS baseline (Figure 11's bars).
type SAFReport struct {
	Name  string
	Read  float64
	Write float64
	Total float64
	Stats Stats
}

// Comparison is the outcome of running a workload through the baseline
// and a set of log-structured variants.
type Comparison struct {
	Baseline Stats
	Variants []SAFReport
}

// VariantByName returns the report with the given name.
func (c Comparison) VariantByName(name string) (SAFReport, bool) {
	for _, v := range c.Variants {
		if v.Name == name {
			return v, true
		}
	}
	return SAFReport{}, false
}

// Compare runs the records through the NoLS baseline and each variant
// configuration, returning SAF per variant. Variants without a custom
// layer use the built-in LS layer with the frontier forced to start
// above the highest LBA in the trace, per the paper; variants carrying a
// CustomLayer are compared as-is.
func Compare(recs []trace.Record, variants ...Config) (Comparison, error) {
	return CompareContext(context.Background(), recs, variants...)
}

// CompareContext is Compare with cancellation: a cancelled or expired
// context stops the current run and returns ctx.Err().
func CompareContext(ctx context.Context, recs []trace.Record, variants ...Config) (Comparison, error) {
	frontier := trace.MaxLBA(recs)
	base, err := runOnce(ctx, recs, Config{LogStructured: false})
	if err != nil {
		return Comparison{}, err
	}
	out := Comparison{Baseline: base}
	for _, cfg := range variants {
		if cfg.CustomLayer == nil {
			cfg.LogStructured = true
			cfg.FrontierStart = frontier
		}
		st, err := runOnce(ctx, recs, cfg)
		if err != nil {
			return Comparison{}, err
		}
		out.Variants = append(out.Variants, SAFReport{
			Name:  st.Config.Name(),
			Read:  metrics.SAF(st.Disk.ReadSeeks, base.Disk.ReadSeeks),
			Write: metrics.SAF(st.Disk.WriteSeeks, base.Disk.WriteSeeks),
			Total: metrics.SAF(st.Disk.TotalSeeks(), base.Disk.TotalSeeks()),
			Stats: st,
		})
	}
	return out, nil
}

func runOnce(ctx context.Context, recs []trace.Record, cfg Config) (Stats, error) {
	sim, err := NewSimulator(cfg)
	if err != nil {
		return Stats{}, err
	}
	return sim.RunContext(ctx, trace.NewSliceReader(recs))
}

// PaperVariants returns the four configurations of Figure 11: plain LS,
// LS + opportunistic defragmentation, LS + look-ahead-behind prefetching,
// and LS + 64 MB selective caching.
func PaperVariants() []Config {
	defrag := DefaultDefragConfig()
	prefetch := DefaultPrefetchConfig()
	cache := DefaultCacheConfig()
	return []Config{
		{LogStructured: true},
		{LogStructured: true, Defrag: &defrag},
		{LogStructured: true, Prefetch: &prefetch},
		{LogStructured: true, Cache: &cache},
	}
}

// ComparePaper runs the records through exactly the Figure 11 variant set.
func ComparePaper(recs []trace.Record) (Comparison, error) {
	return Compare(recs, PaperVariants()...)
}

// ComparePaperContext is ComparePaper with cancellation.
func ComparePaperContext(ctx context.Context, recs []trace.Record) (Comparison, error) {
	return CompareContext(ctx, recs, PaperVariants()...)
}

// FrontierFor returns the write frontier the paper's model would use for
// this workload: just above the highest LBA it touches.
func FrontierFor(recs []trace.Record) geom.Sector { return trace.MaxLBA(recs) }
