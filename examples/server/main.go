// Server example: the smrd service stack in one process — a
// multi-volume block service with batching, backpressure and live
// metrics, driven through the same client library cmd/smrload uses.
//
// Three volumes run different translation-layer configurations behind
// one TCP endpoint. Four concurrent clients replay a synthetic workload
// against them, and the example then compares each volume's over-the-
// wire statistics with a direct in-process simulator run of the same
// trace: bit-identical, because each volume's actor executes requests
// strictly in arrival order.
//
// Run with: go run ./examples/server
package main

import (
	"fmt"
	"log"
	"net"
	"reflect"
	"sync"

	"smrseek"
	"smrseek/internal/core"
	"smrseek/internal/server"
	"smrseek/internal/trace"
	"smrseek/internal/volume"
)

func main() {
	// A deterministic workload, shared by every volume and the
	// reference runs below.
	profile, err := smrseek.Workload("w91")
	if err != nil {
		log.Fatal(err)
	}
	recs := profile.Generate(0.02)
	frontier := core.FrontierFor(recs)

	// Three volumes, three configurations: the paper's plain
	// log-structured layer, one with defragmentation, one with
	// defrag + selective cache.
	d := smrseek.DefaultDefrag()
	c := smrseek.DefaultCache()
	sims := map[string]core.Config{
		"plain":  {LogStructured: true, FrontierStart: frontier},
		"defrag": {LogStructured: true, FrontierStart: frontier, Defrag: &d},
		"tuned":  {LogStructured: true, FrontierStart: frontier, Defrag: &d, Cache: &c},
	}
	var cfgs []volume.Config
	for name, sim := range sims {
		cfgs = append(cfgs, volume.Config{Name: name, Sim: sim})
	}
	mgr, err := volume.OpenAll(cfgs...)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(mgr, ln, server.Options{})
	addr := srv.Addr().String()
	fmt.Printf("smrd serving %d volumes on %s\n\n", len(cfgs), addr)

	// Four concurrent clients: one per volume plus one that only polls
	// stats while the others replay — the multi-tenant shape the volume
	// actor exists for.
	var wg sync.WaitGroup
	for name := range sims {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer cl.Close()
			n, err := cl.Replay(name, trace.NewSliceReader(recs))
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Printf("client[%s]: replayed %d records over the wire\n", name, n)
		}(name)
	}
	wg.Add(1)
	go func() { // the prying observer
		defer wg.Done()
		cl, err := server.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 50; i++ {
			if _, err := cl.Stat("tuned"); err != nil {
				log.Fatal(err)
			}
		}
	}()
	wg.Wait()

	// The service contract: per-volume statistics match a direct
	// single-threaded run of the same trace, bit for bit.
	fmt.Println("\nvolume      frag reads   read seeks   matches direct run")
	for name, sim := range sims {
		cl, err := server.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		wire, err := cl.Stat(name)
		cl.Close()
		if err != nil {
			log.Fatal(err)
		}
		direct, err := smrseek.Run(sim, recs)
		if err != nil {
			log.Fatal(err)
		}
		direct.Config = core.Config{} // the server zeroes Config on the wire
		fmt.Printf("%-10s %10d %12d   %v\n",
			name, wire.FragmentedReads, wire.Disk.ReadSeeks, reflect.DeepEqual(wire, direct))
	}

	// Shutdown ordering: network first, then volumes (drain+finish).
	srv.Close()
	if err := mgr.Close(); err != nil {
		log.Fatal(err)
	}
}
