package server

// Concurrency, leak and allocation coverage for the SMRD2 pipeline:
// out-of-order completion under load (run with -race), shutdown with
// requests in flight (exactly one outcome per Submit), the
// Abandoned-drain regression for timed-out pipelined requests, frame
// pool get/put balance, and the zero-alloc codec hot path.

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
	"smrseek/internal/volume"
)

// TestPipelineOutOfOrder hammers one server with 8 clients × window 32,
// each interleaving two volumes on one connection so responses genuinely
// complete out of order, and requires every call back exactly once with
// a sane body.
func TestPipelineOutOfOrder(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("a"), lsConfig("b"))
	const (
		clients = 8
		window  = 32
		ops     = 400
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			ac, err := DialAsync(addr, window)
			if err != nil {
				t.Error(err)
				return
			}
			defer ac.Close()
			if ac.Window() != window {
				t.Errorf("granted window %d, want %d", ac.Window(), window)
				return
			}
			done := make(chan *Call, window)
			inflight := 0
			reap := func(call *Call) {
				inflight--
				body, err := call.Result()
				if err != nil {
					t.Errorf("call %d op %d: %v", call.ID, call.Op, err)
					return
				}
				if call.Op == OpRead && len(body) != 4 {
					t.Errorf("read body %d bytes, want 4", len(body))
				}
			}
			for op := int64(0); op < ops; op++ {
				vol := "a"
				if (seed+op)%2 == 1 {
					vol = "b"
				}
				rec := trace.Record{Kind: disk.Write, Extent: geom.Ext(geom.Sector((seed*1000+op*8)%100000), 8)}
				if op%4 == 3 {
					rec.Kind = disk.Read
				}
				if _, err := ac.SubmitStep(vol, rec, done); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				inflight++
				for inflight == window {
					reap(<-done)
				}
			}
			for inflight > 0 {
				reap(<-done)
			}
		}(int64(i))
	}
	wg.Wait()
}

// TestPipelineShutdownInFlight closes the server while a stalled volume
// holds a full pipeline in flight: every submitted call must complete
// exactly once — a result, a shed, or a connection error — and nothing
// may hang.
func TestPipelineShutdownInFlight(t *testing.T) {
	srv, mgr, addr := newTestServer(t, Options{}, lsConfig("v0"))
	v, _ := mgr.Get("v0")
	release := stallVolume(t, v)
	defer release()

	const window = 16
	ac, err := DialAsync(addr, window)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()

	done := make(chan *Call, window)
	var submitted int
	for i := 0; i < window; i++ {
		if _, err := ac.Submit(Request{Op: OpWrite, Volume: "v0", Extent: geom.Ext(geom.Sector(i*8), 8)}, done); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		submitted++
	}
	go srv.Close()

	var completions int32
	timeout := time.After(10 * time.Second)
	for completions < int32(submitted) {
		select {
		case call := <-done:
			atomic.AddInt32(&completions, 1)
			if _, err := call.Result(); err != nil {
				var se *StatusError
				if !isConnError(err) && !errors.As(err, &se) {
					t.Errorf("call %d: unexpected outcome %v", call.ID, err)
				}
			}
		case <-timeout:
			t.Fatalf("only %d of %d calls completed after shutdown", completions, submitted)
		}
	}
	// Exactly once: no second delivery may be buffered.
	select {
	case call := <-done:
		t.Fatalf("call %d delivered twice", call.ID)
	default:
	}
}

// TestPipelinedTimeoutAbandonedDrain is the Abandoned-drain regression
// for pipelined requests: a window full of timed-out writes must each
// get StatusTimeout, the connection must survive, and once the volume
// unsticks every late result must be drained and counted — not wedged
// in the completion channel.
func TestPipelinedTimeoutAbandonedDrain(t *testing.T) {
	srv, mgr, addr := newTestServer(t, Options{RequestTimeout: 30 * time.Millisecond}, lsConfig("v0"))
	v, _ := mgr.Get("v0")
	release := stallVolume(t, v)

	const window = 8
	ac, err := DialAsync(addr, window)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()

	done := make(chan *Call, window)
	for i := 0; i < window; i++ {
		if _, err := ac.Submit(Request{Op: OpWrite, Volume: "v0", Extent: geom.Ext(geom.Sector(i*8), 8)}, done); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i := 0; i < window; i++ {
		call := <-done
		_, err := call.Result()
		var se *StatusError
		if !errors.As(err, &se) || se.Status != StatusTimeout {
			t.Fatalf("call %d: %v, want StatusTimeout", call.ID, err)
		}
	}
	if n := srv.Abandoned(); n != 0 {
		t.Fatalf("Abandoned = %d before the stalled requests could execute", n)
	}
	release()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Abandoned() != window {
		if time.Now().After(deadline) {
			t.Fatalf("Abandoned = %d after release, want %d", srv.Abandoned(), window)
		}
		time.Sleep(time.Millisecond)
	}
	// The connection survived the whole episode: the drained window
	// serves fresh requests.
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, err := ac.roundTrip(request{Op: OpWrite, Volume: "v0", Extent: geom.Ext(0, 8)})
		if err == nil {
			break
		}
		if !IsOverloaded(err) {
			t.Fatalf("write after timeout drain: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("window never freed after drain: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMalformedFramesAndPoolBalance sends broken v2 frames at a live
// server: a frame with an ID but a bad op must come back
// StatusBadRequest with the connection intact; a frame too short to
// carry an ID must close the connection. Across the whole episode the
// frame pool's get/put counters must stay balanced — no path leaks a
// pooled buffer.
func TestMalformedFramesAndPoolBalance(t *testing.T) {
	gets0, puts0 := framePool.Stats()
	srv, _, addr := newTestServer(t, Options{}, lsConfig("v0"))

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	version, window, err := clientHello(conn, Version2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if version != Version2 || window != 4 {
		t.Fatalf("negotiated v%d w%d, want v2 w4", version, window)
	}

	// Bad op under a valid ID: clean error response, connection lives.
	frame := binary.LittleEndian.AppendUint32(nil, idSize+1)
	frame = binary.LittleEndian.AppendUint64(frame, 77)
	frame = append(frame, 0xEE) // unknown op
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn, nil)
	if err != nil {
		t.Fatalf("no response to bad op: %v", err)
	}
	id, status, _, err := parseResponseV2(resp)
	if err != nil || id != 77 || status != StatusBadRequest {
		t.Fatalf("bad-op response id=%d status=%d err=%v, want id=77 bad-request", id, status, err)
	}

	// A valid request still works on the same connection.
	req, err := appendRequestV2(nil, 78, request{Op: OpWrite, Volume: "v0", Extent: geom.Ext(0, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	resp, err = readFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id, status, _, _ := parseResponseV2(resp); id != 78 || status != StatusOK {
		t.Fatalf("post-error write id=%d status=%d, want id=78 ok", id, status)
	}

	// Too short for an ID: the server must drop the link, not hang.
	short := binary.LittleEndian.AppendUint32(nil, 3)
	short = append(short, 1, 2, 3)
	if _, err := conn.Write(short); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(conn, nil); err == nil {
		t.Fatal("server answered a frame with no request ID, want closed connection")
	}

	srv.Close()
	gets1, puts1 := framePool.Stats()
	if got, put := gets1-gets0, puts1-puts0; got != put {
		t.Fatalf("frame pool leaked: %d gets, %d puts across the episode", got, put)
	}
}

// TestV2CodecAllocs pins the server hot path's allocation budget: once
// a volume name is interned, decoding a request and encoding its
// response must not allocate at all (the acceptance bar is ≤2 per
// request; the codec itself is zero).
func TestV2CodecAllocs(t *testing.T) {
	names := make(nameCache)
	frame, err := appendRequestV2(nil, 1, request{Op: OpWrite, Volume: "vol0", Extent: geom.Ext(4096, 64)})
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	out := make([]byte, 0, 4096)
	if _, _, err := parseRequestV2(payload, names); err != nil {
		t.Fatal(err) // prime the name cache
	}
	var id uint64
	allocs := testing.AllocsPerRun(1000, func() {
		var req request
		id, req, err = parseRequestV2(payload, names)
		if err != nil {
			t.Fatal(err)
		}
		_ = req
		out = appendResponseV2(out[:0], id, StatusOK, nil)
		var body [4]byte
		binary.LittleEndian.PutUint32(body[:], 3)
		out = appendResponseV2(out, id, StatusOK, body[:])
	})
	if allocs > 0 {
		t.Errorf("v2 codec hot path allocates %.1f per request, want 0", allocs)
	}
}

// TestAsyncSubmitAfterClose pins the submit/close contract: Submit on a
// closed client fails fast with ErrClientClosed or the sticky transport
// error — never a hang, never a nil Call delivery.
func TestAsyncSubmitAfterClose(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("v0"))
	ac, err := DialAsync(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	ac.Close()
	done := make(chan *Call, 1)
	if _, err := ac.Submit(Request{Op: OpWrite, Volume: "v0", Extent: geom.Ext(0, 8)}, done); err == nil {
		t.Fatal("Submit on a closed client succeeded")
	}
	select {
	case call := <-done:
		t.Fatalf("closed client delivered call %d", call.ID)
	default:
	}
}

// TestV2SingleConnReplayDeterminism: a pipelined replay on one v2
// connection dispatches in send order, so its volume stats must be
// bit-identical to the synchronous client's replay of the same trace —
// the determinism contract the conformance matrix relies on.
func TestV2SingleConnReplayDeterminism(t *testing.T) {
	recs := confTrace(t)
	run := func(pipelined bool) volume.Result {
		_, mgr, addr := newTestServer(t, Options{}, lsConfig("d0"))
		if pipelined {
			ac, err := DialAsync(addr, 64)
			if err != nil {
				t.Fatal(err)
			}
			defer ac.Close()
			if _, err := ac.Replay("d0", trace.NewSliceReader(recs)); err != nil {
				t.Fatal(err)
			}
		} else {
			c, err := DialVersion(context.Background(), addr, Version)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Replay("d0", trace.NewSliceReader(recs)); err != nil {
				t.Fatal(err)
			}
		}
		v, _ := mgr.Get("d0")
		done := make(chan volume.Result, 1)
		if err := v.TryDo(volume.Request{Kind: volume.OpStat}, done); err != nil {
			t.Fatal(err)
		}
		return <-done
	}
	sync := run(false)
	pipe := run(true)
	if *sync.Stats != *pipe.Stats {
		t.Errorf("pipelined replay diverged from synchronous:\n sync %+v\n pipe %+v", *sync.Stats, *pipe.Stats)
	}
}
