package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSAF(t *testing.T) {
	cases := []struct {
		v, b int64
		want float64
	}{
		{10, 10, 1},
		{20, 10, 2},
		{5, 10, 0.5},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := SAF(c.v, c.b); got != c.want {
			t.Errorf("SAF(%d,%d) = %v, want %v", c.v, c.b, got, c.want)
		}
	}
	if got := SAF(5, 0); !math.IsInf(got, 1) {
		t.Errorf("SAF(5,0) = %v, want +Inf", got)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF()
	if c.At(10) != 0 || c.Quantile(0.5) != 0 || c.Mean() != 0 {
		t.Error("empty CDF should return zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		c.Observe(v)
	}
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(3); got != 0.6 {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v, want 1", got)
	}
	if got := c.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
}

func TestCDFCurve(t *testing.T) {
	c := NewCDF()
	for i := 1; i <= 100; i++ {
		c.Observe(float64(i))
	}
	pts := c.Curve(0, 100, 11)
	if len(pts) != 11 {
		t.Fatalf("curve has %d points", len(pts))
	}
	if pts[0].P != 0 || pts[10].P != 1 {
		t.Errorf("curve endpoints: %v ... %v", pts[0], pts[10])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Fatal("CDF curve must be monotone")
		}
	}
	if got := c.Curve(0, 1, 1); len(got) != 2 {
		t.Error("n<2 should be clamped to 2")
	}
}

// Property: At is monotone and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(vals []int16, a, b int16) bool {
		c := NewCDF()
		for _, v := range vals {
			c.Observe(float64(v))
		}
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		pa, pb := c.At(lo), c.At(hi)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{0, 1, 1, 3, -5, 1000, -1000} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	var sum int64
	for _, b := range h.Buckets() {
		sum += b.Count
		if b.Lo >= b.Hi {
			t.Errorf("bucket %+v has Lo >= Hi", b)
		}
	}
	if sum != 7 {
		t.Fatalf("bucket counts sum to %d", sum)
	}
	// Buckets must be sorted: negatives descending in magnitude first.
	bs := h.Buckets()
	signed := func(b Bucket) float64 {
		v := float64(b.Lo)
		if b.Negative {
			return -v
		}
		return v
	}
	if !sort.SliceIsSorted(bs, func(i, j int) bool { return signed(bs[i]) < signed(bs[j]) }) {
		t.Errorf("buckets not ordered: %+v", bs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d", got)
	}
	// 100 samples of 10 (bucket [8,16)), 10 of 1000 (bucket [512,1024)).
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("Quantile(0.5) = %d, want 15 (upper edge of [8,16))", got)
	}
	if got := h.Quantile(0.90); got != 15 {
		t.Errorf("Quantile(0.90) = %d, want 15", got)
	}
	if got := h.Quantile(0.99); got != 1023 {
		t.Errorf("Quantile(0.99) = %d, want 1023 (upper edge of [512,1024))", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Errorf("Quantile(1) = %d, want 1023", got)
	}
	if got, want := h.Quantile(-1), h.Quantile(0); got != want {
		t.Errorf("Quantile(-1) = %d, want clamp to Quantile(0) = %d", got, want)
	}
	// Negative samples sort first: a heavily negative histogram's low
	// quantiles are negative.
	neg := NewHistogram()
	for i := 0; i < 10; i++ {
		neg.Observe(-100)
	}
	neg.Observe(7)
	if got := neg.Quantile(0.5); got != -64 {
		t.Errorf("negative Quantile(0.5) = %d, want -64 (boundary of (-128,-64])", got)
	}
	if got := neg.Quantile(1); got != 7 {
		t.Errorf("negative Quantile(1) = %d, want 7", got)
	}
}

func TestHistogramCountWithin(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{0, 1, -1, 100, -100, 1 << 20} {
		h.Observe(v)
	}
	if got := h.CountWithin(-1); got != 0 {
		t.Errorf("CountWithin(-1) = %d", got)
	}
	if got := h.CountWithin(0); got != 1 {
		t.Errorf("CountWithin(0) = %d", got)
	}
	if got := h.CountWithin(1); got != 3 {
		t.Errorf("CountWithin(1) = %d", got)
	}
	if got := h.CountWithin(1 << 30); got != 6 {
		t.Errorf("CountWithin(big) = %d", got)
	}
}

// Property: CountWithin is conservative — it never overcounts relative to
// the true number of samples within the limit (bucketization may
// undercount but must never overcount).
func TestHistogramCountWithinProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHistogram()
	var vals []int64
	for i := 0; i < 2000; i++ {
		v := rng.Int63n(1<<22) - 1<<21
		vals = append(vals, v)
		h.Observe(v)
	}
	for _, limit := range []int64{0, 1, 10, 1000, 1 << 18, 1 << 22} {
		var exact int64
		for _, v := range vals {
			a := v
			if a < 0 {
				a = -a
			}
			if a <= limit {
				exact++
			}
		}
		if got := h.CountWithin(limit); got > exact {
			t.Errorf("CountWithin(%d) = %d overcounts exact %d", limit, got, exact)
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(10)
	s.Add(0, 1)
	s.Add(9, 1)
	s.Add(10, 5)
	s.Add(35, 2)
	got := s.Values()
	want := []int64{2, 5, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("Values = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestSeriesSub(t *testing.T) {
	a := NewSeries(10)
	b := NewSeries(10)
	a.Add(0, 5)
	a.Add(10, 3)
	b.Add(0, 2)
	b.Add(25, 7) // b is longer
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 3, -7}
	got := diff.Values()
	if len(got) != len(want) {
		t.Fatalf("diff = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("diff = %v, want %v", got, want)
		}
	}
	if _, err := a.Sub(NewSeries(5)); err == nil {
		t.Error("mismatched widths must error")
	}
}

func TestSeriesWidthClamp(t *testing.T) {
	s := NewSeries(0)
	if s.Width != 1 {
		t.Errorf("width clamped to %d", s.Width)
	}
}

func TestResilience(t *testing.T) {
	var r Resilience
	if r.Any() {
		t.Error("zero Resilience reports Any")
	}
	if got := r.RecoveryRate(); got != 1 {
		t.Errorf("RecoveryRate with no faults = %v, want 1", got)
	}
	r.Add(Resilience{TransientFaults: 3, Retries: 4, Recoveries: 3, Unrecovered: 1})
	r.Add(Resilience{FaultsInjected: 5, MediaFaults: 1, AbortedRelocations: 2})
	if !r.Any() {
		t.Error("non-zero Resilience does not report Any")
	}
	if r.Retries != 4 || r.FaultsInjected != 5 || r.AbortedRelocations != 2 {
		t.Errorf("Add mis-accumulated: %+v", r)
	}
	if got, want := r.RecoveryRate(), 0.75; got != want {
		t.Errorf("RecoveryRate = %v, want %v", got, want)
	}
}

func TestDurabilityAny(t *testing.T) {
	var d Durability
	if d.Any() {
		t.Error("zero Durability reports activity")
	}
	d.JournalAppends = 1
	if !d.Any() {
		t.Error("non-zero Durability reports no activity")
	}
}
