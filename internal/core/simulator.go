package core

import (
	"context"
	"fmt"

	"smrseek/internal/disk"
	"smrseek/internal/fault"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/metrics"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
)

// Config selects a translation layer and the mechanisms composed with it.
type Config struct {
	// Device, when non-nil, replaces the default infinite-disk model
	// with another geometry (e.g. an internal/band finite banded
	// device). Every layer and mechanism composes with it unchanged; a
	// device reporting cache/cleaning activity (a Cleaner) contributes
	// Stats.Cleaning. Nil selects disk.New(), the paper's model.
	Device disk.Device
	// LogStructured selects the LS layer; false is the NoLS baseline.
	LogStructured bool
	// FrontierStart is where the LS write frontier begins — the paper
	// starts it above the highest LBA in the trace. Ignored for NoLS.
	FrontierStart geom.Sector
	// CustomLayer, when non-nil, replaces the built-in layer entirely
	// (e.g. a gc.Layer with finite-log cleaning or an mcache.Layer).
	// Layers implementing stl.Maintainer get their background I/O played
	// through the disk model after each host operation; layers
	// implementing stl.Amplifier contribute Stats.WAF. Mechanisms
	// compose with custom layers exactly as with LS.
	CustomLayer stl.Layer
	// Defrag enables opportunistic defragmentation when non-nil.
	Defrag *DefragConfig
	// Prefetch enables look-ahead-behind prefetching when non-nil.
	Prefetch *PrefetchConfig
	// Cache enables translation-aware selective caching when non-nil.
	Cache *CacheConfig
	// Fault enables deterministic fault injection when non-nil: the disk
	// model rejects accesses per the configuration and the simulator
	// retries, degrades and records the outcome (see Stats.Resilience).
	Fault *fault.Config
	// Journal enables write-ahead journaling of the LS layer's mutations
	// when non-nil (see JournalConfig). Requires the built-in LS layer —
	// either LogStructured or a *stl.LS CustomLayer (e.g. one produced by
	// stl.RecoverDir to continue a recovered run).
	Journal *JournalConfig
}

// translated reports whether the configured layer relocates data (i.e.
// is anything other than the NoLS identity baseline).
func (c Config) translated() bool { return c.LogStructured || c.CustomLayer != nil }

// Cleaner is the optional device capability for geometries that cache
// and clean (internal/band); Stats() folds it into Stats.Cleaning.
type Cleaner interface {
	Cleaning() metrics.Cleaning
}

// namedDevice is the optional device capability naming the geometry
// for configuration labels.
type namedDevice interface {
	ModelName() string
}

// geometrySuffix returns "@<model>" for a named non-default device.
func (c Config) geometrySuffix() string {
	if nd, ok := c.Device.(namedDevice); ok {
		return "@" + nd.ModelName()
	}
	return ""
}

// Name returns a short label for the configuration ("NoLS", "LS",
// "LS+defrag", ...), used in reports and Figure 11 column headers. A
// non-default device geometry appends an "@<model>" suffix.
func (c Config) Name() string {
	if !c.translated() {
		return "NoLS" + c.geometrySuffix()
	}
	n := "LS"
	if c.CustomLayer != nil {
		n = c.CustomLayer.Name()
	}
	if c.Defrag != nil {
		n += "+defrag"
	}
	if c.Prefetch != nil {
		n += "+prefetch"
	}
	if c.Cache != nil {
		n += "+cache"
	}
	if c.Journal != nil {
		n += "+wal"
	}
	if c.Fault != nil && c.Fault.Enabled() {
		n += "+faults"
	}
	return n + c.geometrySuffix()
}

// Validate reports configuration errors. Mechanism configurations are
// checked too, so misconfigured runs (zero-sized caches, negative
// windows) fail fast instead of producing nonsense SAF numbers.
func (c Config) Validate() error {
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return err
		}
	}
	if !c.translated() {
		if c.Defrag != nil || c.Prefetch != nil || c.Cache != nil {
			return fmt.Errorf("core: mechanisms require a translating layer")
		}
		if c.Journal != nil {
			return fmt.Errorf("core: journaling requires the log-structured layer")
		}
		return nil
	}
	if c.Journal != nil {
		if err := c.Journal.Validate(); err != nil {
			return err
		}
		if !c.LogStructured {
			if _, ok := c.CustomLayer.(*stl.LS); !ok {
				return fmt.Errorf("core: journaling requires the log-structured layer, not %s", c.CustomLayer.Name())
			}
		}
	}
	if c.LogStructured && c.CustomLayer != nil {
		return fmt.Errorf("core: LogStructured and CustomLayer are mutually exclusive")
	}
	if c.FrontierStart < 0 {
		return fmt.Errorf("core: negative frontier start %d", c.FrontierStart)
	}
	if c.Defrag != nil {
		if err := c.Defrag.Validate(); err != nil {
			return err
		}
	}
	if c.Prefetch != nil {
		if err := c.Prefetch.Validate(); err != nil {
			return err
		}
	}
	if c.Cache != nil {
		if err := c.Cache.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stats is the outcome of one simulation run.
type Stats struct {
	Config Config
	// Disk holds the §II seek counters.
	Disk disk.Counters

	// Logical operation counts (one per trace record).
	Reads  int64
	Writes int64

	// FragmentedReads counts reads resolved to 2+ fragments;
	// TotalFragments sums fragments over all reads (a read of k fragments
	// contributes k); MaxFragments is the worst single read.
	FragmentedReads int64
	TotalFragments  int64
	MaxFragments    int

	// Mechanism statistics (zero when the mechanism is disabled).
	CacheHits          int64
	CacheMisses        int64
	CacheInvalidations int64
	PrefetchHits       int64
	DefragWritebacks   int64
	DefragSectors      int64

	// Maintenance statistics (non-zero only for layers that generate
	// background I/O — cleaning, media-cache merges).
	MaintReads   int64
	MaintWrites  int64
	MaintSectors int64
	// WAF is the layer's write amplification factor (1 when the layer
	// does not relocate data on its own).
	WAF float64

	// Resilience tallies fault injection and recovery (all zero when
	// fault injection is disabled).
	Resilience metrics.Resilience

	// Durability tallies write-ahead-journal activity (all zero when
	// journaling is disabled).
	Durability metrics.Durability

	// Cleaning tallies the device's persistent-cache and band-cleaning
	// activity (all zero on the infinite model; see internal/band).
	Cleaning metrics.Cleaning
}

// ReadSAF, WriteSAF and TotalSAF are computed against a baseline by the
// Comparison type in compare.go.

// ReadEvent describes one resolved logical read, delivered to observers
// before any mechanism intervenes. Analyses (fragment popularity, dynamic
// fragmentation CDFs) hook in here.
type ReadEvent struct {
	// OpIndex is the 0-based index of the operation in the trace.
	OpIndex int64
	// Lba is the requested logical extent.
	Lba geom.Extent
	// Fragments is the resolution under the configured layer. The slice
	// is the simulator's reusable scratch buffer: it is only valid for
	// the duration of the observer call and must be copied to be kept.
	Fragments []stl.Fragment
}

// ReadObserver receives every ReadEvent.
type ReadObserver func(ReadEvent)

// Simulator drives a trace through a translation layer, the configured
// mechanisms and the seek-counting disk model.
type Simulator struct {
	cfg        Config
	layer      stl.Layer
	ls         *stl.LS        // nil unless the built-in LS layer is used
	maintainer stl.Maintainer // nil unless the layer generates background I/O
	amplifier  stl.Amplifier  // nil unless the layer reports WAF
	dev        disk.Device
	defrag     *Defragmenter
	prefetch   *Prefetcher
	cache      *SelectiveCache
	injector   *fault.Injector // nil unless fault injection is enabled
	wal        *journal.Log    // nil unless journaling is enabled
	ckptEvery  int64           // checkpoint threshold in journal records
	jerr       error           // sticky journal failure; set => run is over

	opIndex   int64
	stats     Stats
	observers []ReadObserver
	probes    []Probe // observability probes; empty => zero instrumentation cost
	inMaint   bool    // true while draining background maintenance I/O

	// Zero-allocation hot path: layers that implement the stl.Append*
	// capability interfaces resolve and place into these per-simulator
	// scratch buffers instead of allocating a slice per operation. The
	// fields are nil for custom layers without the capability, and the
	// slice paths below fall back to Layer/Previewer.
	resolver stl.AppendResolver
	writer   stl.AppendWriter
	prewrite stl.AppendPreviewer
	preview  stl.Previewer  // slice fallback for relocations
	fragBuf  []stl.Fragment // read resolutions (also backs ReadEvent.Fragments)
	writeBuf []stl.Fragment // write and relocation placements
}

// NewSimulator builds a simulator from the configuration. Probes passed
// here are attached before the global probe (SetGlobalProbe) and receive
// only this simulator's events — the right way to observe one simulator
// among many running concurrently in the same process (internal/volume
// wires each volume's collector this way). The variadic form is
// backward compatible: NewSimulator(cfg) builds an unobserved simulator.
func NewSimulator(cfg Config, probes ...Probe) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, dev: cfg.Device}
	if s.dev == nil {
		s.dev = disk.New()
	}
	switch {
	case cfg.CustomLayer != nil:
		s.layer = cfg.CustomLayer
		// A custom layer that IS the built-in LS (e.g. recovered via
		// stl.RecoverDir) re-enables every LS-specific path, journaling
		// included.
		if ls, ok := cfg.CustomLayer.(*stl.LS); ok {
			s.ls = ls
		}
	case cfg.LogStructured:
		s.ls = stl.NewLS(cfg.FrontierStart)
		s.layer = s.ls
	default:
		s.layer = stl.NewNoLS()
	}
	if m, ok := s.layer.(stl.Maintainer); ok {
		s.maintainer = m
	}
	if a, ok := s.layer.(stl.Amplifier); ok {
		s.amplifier = a
	}
	if r, ok := s.layer.(stl.AppendResolver); ok {
		s.resolver = r
	}
	if w, ok := s.layer.(stl.AppendWriter); ok {
		s.writer = w
	}
	if pw, ok := s.layer.(stl.AppendPreviewer); ok {
		s.prewrite = pw
	}
	if pv, ok := s.layer.(stl.Previewer); ok {
		s.preview = pv
	}
	if cfg.translated() {
		if cfg.Defrag != nil {
			s.defrag = NewDefragmenter(*cfg.Defrag)
		}
		if cfg.Prefetch != nil {
			s.prefetch = NewPrefetcher(*cfg.Prefetch)
		}
		if cfg.Cache != nil {
			s.cache = NewSelectiveCache(*cfg.Cache)
		}
	}
	if cfg.Fault != nil && cfg.Fault.Enabled() {
		inj, err := fault.New(*cfg.Fault)
		if err != nil {
			return nil, err
		}
		s.injector = inj
		s.dev.SetFaultChecker(inj)
	}
	if cfg.Journal != nil {
		s.wal = cfg.Journal.Log
		s.ckptEvery = cfg.Journal.CheckpointEvery
	}
	for _, p := range probes {
		s.AddProbe(p)
	}
	if gp := globalProbe.Load(); gp != nil {
		s.AddProbe(*gp)
	}
	s.stats.Config = cfg
	return s, nil
}

// Disk exposes the device model so callers can attach observers
// (distance CDFs, windowed series, time accumulators) before Run.
func (s *Simulator) Disk() disk.Device { return s.dev }

// Layer exposes the translation layer (e.g. for static fragmentation
// analysis of the final extent map).
func (s *Simulator) Layer() stl.Layer { return s.layer }

// LS returns the log-structured layer, or nil for a NoLS simulator.
func (s *Simulator) LS() *stl.LS { return s.ls }

// AddReadObserver registers an observer for every resolved read.
func (s *Simulator) AddReadObserver(o ReadObserver) {
	s.observers = append(s.observers, o)
}

// Run consumes the whole trace and returns the accumulated statistics.
func (s *Simulator) Run(r trace.Reader) (Stats, error) {
	return s.RunContext(context.Background(), r)
}

// cancelCheckInterval is how many records RunContext processes between
// context polls; small enough that cancellation lands promptly, large
// enough that the poll is invisible in the per-op cost.
const cancelCheckInterval = 64

// RunContext consumes the trace like Run but honours cancellation and
// deadlines: when ctx ends the run stops promptly and ctx.Err() —
// context.Canceled or context.DeadlineExceeded — is returned.
func (s *Simulator) RunContext(ctx context.Context, r trace.Reader) (Stats, error) {
	done := ctx.Done()
	for n := 0; ; n++ {
		if done != nil && n%cancelCheckInterval == 0 {
			select {
			case <-done:
				return Stats{}, ctx.Err()
			default:
			}
		}
		rec, ok := r.Next()
		if !ok {
			break
		}
		s.Step(rec)
		if s.jerr != nil {
			// The journal crashed (or broke): the simulated device lost
			// power. The stats so far describe the pre-crash state the
			// recovery harness compares against.
			s.Finish()
			return s.Stats(), s.jerr
		}
	}
	if err := r.Err(); err != nil {
		return Stats{}, err
	}
	s.Finish()
	return s.Stats(), nil
}

// Stats returns a snapshot of the statistics so far.
func (s *Simulator) Stats() Stats {
	st := s.stats
	st.Disk = s.dev.Counters()
	if s.cache != nil {
		st.CacheHits = s.cache.Hits()
		st.CacheMisses = s.cache.Misses()
		st.CacheInvalidations = s.cache.Invalidations()
	}
	if s.prefetch != nil {
		st.PrefetchHits = s.prefetch.Hits()
	}
	if s.defrag != nil {
		st.DefragWritebacks = s.defrag.Writebacks()
		st.DefragSectors = s.defrag.WrittenBackSectors()
	}
	st.WAF = 1
	if s.amplifier != nil {
		st.WAF = stl.WAF(s.amplifier)
	}
	if s.injector != nil {
		c := s.injector.Counters()
		st.Resilience.FaultsInjected = c.Total()
		st.Resilience.TransientFaults = c.TransientReads + c.TransientWrites
		st.Resilience.WriteFaults = c.TransientWrites
		st.Resilience.MediaFaults = c.MediaErrors
	}
	if s.wal != nil {
		st.Durability.CheckpointAge = s.wal.SinceCheckpoint()
	}
	if cl, ok := s.dev.(Cleaner); ok {
		st.Cleaning = cl.Cleaning()
	}
	return st
}

// Step processes one trace record. After a journal crash (JournalErr
// non-nil) the simulator is inert: the crash froze the state the
// recovery harness will compare against.
func (s *Simulator) Step(rec trace.Record) {
	if rec.Extent.Empty() || s.jerr != nil {
		return
	}
	switch rec.Kind {
	case disk.Read:
		s.stepRead(rec)
	case disk.Write:
		s.stepWrite(rec)
	}
	s.drainMaintenance()
	s.maybeCheckpoint()
	s.opIndex++
}

// drainMaintenance plays the layer's queued background I/O through the
// disk model; its seeks count like any other, which is exactly the
// cleaning cost the paper's infinite-disk model sets aside.
func (s *Simulator) drainMaintenance() {
	if s.maintainer == nil {
		return
	}
	s.inMaint = true
	for _, op := range s.maintainer.PendingMaintenance() {
		// Maintenance faults are retried like host I/O; an unrecovered
		// one is recorded by access. The layer's own bookkeeping already
		// moved on, mirroring firmware that logs and continues.
		s.access(op.Kind, op.Extent)
		if op.Kind == disk.Read {
			s.stats.MaintReads++
			s.emitMech(MechMaintRead, op.Extent.Count)
		} else {
			s.stats.MaintWrites++
			s.emitMech(MechMaintWrite, op.Extent.Count)
		}
		s.stats.MaintSectors += op.Extent.Count
	}
	s.inMaint = false
}

// access performs one physical I/O with bounded retries for transient
// faults. Every attempt goes through the disk model, so retries pay
// their mechanical cost in the seek accounting and — via the Faulted
// flag observers see — the §II time model. The returned error is nil
// once an attempt succeeds; a media error or an exhausted retry budget
// is recorded as unrecovered and returned.
func (s *Simulator) access(kind disk.OpKind, phys geom.Extent) error {
	a, err := s.dev.TryDo(kind, phys)
	if len(s.probes) != 0 {
		s.emitAccess(AccessEvent{Op: s.opIndex, Access: a, Maintenance: s.inMaint, Transient: fault.IsTransient(err)})
	}
	if err == nil {
		return nil
	}
	// A checker may be installed directly on the disk (sim.Disk()), so
	// don't assume the injector exists just because an attempt failed.
	maxRetries := fault.DefaultMaxRetries
	if s.injector != nil {
		maxRetries = s.injector.MaxRetries()
	}
	for attempt := 0; attempt < maxRetries && fault.IsTransient(err); attempt++ {
		s.stats.Resilience.Retries++
		s.emitMech(MechRetry, 0)
		a, err = s.dev.TryDo(kind, phys)
		if len(s.probes) != 0 {
			s.emitAccess(AccessEvent{Op: s.opIndex, Access: a, Maintenance: s.inMaint, Transient: fault.IsTransient(err)})
		}
		if err == nil {
			s.stats.Resilience.Recoveries++
			s.emitMech(MechRecovery, 0)
			return nil
		}
	}
	s.stats.Resilience.Unrecovered++
	s.emitMech(MechUnrecovered, 0)
	return err
}

func (s *Simulator) stepWrite(rec trace.Record) {
	s.stats.Writes++
	if len(s.probes) != 0 {
		s.emitOp(OpEvent{Op: s.opIndex, Kind: disk.Write, Lba: rec.Extent})
	}
	if s.wal != nil {
		// Write-ahead: the record is durable before the map mutates. A
		// failed append drops the op entirely, so the live state stays
		// exactly what replaying the acknowledged records reconstructs.
		if !s.journalAppend(journal.RecWrite, rec.Extent, s.ls.Frontier()) {
			return
		}
	}
	var placed []stl.Fragment
	if s.writer != nil {
		s.writeBuf = s.writer.WriteAppend(s.writeBuf[:0], rec.Extent)
		placed = s.writeBuf
	} else {
		placed = s.layer.Write(rec.Extent)
	}
	for _, f := range placed {
		// Host writes are not rolled back on an unrecovered fault: the
		// translation already remapped the LBA, mirroring a drive that
		// remaps and reports the failure upward. access records it.
		s.access(disk.Write, f.PhysExtent())
	}
	if s.cache != nil {
		if n := s.cache.Invalidate(rec.Extent); n > 0 {
			s.emitMech(MechCacheInvalidate, int64(n))
		}
	}
	// The prefetch buffer indexes physical log addresses, which are
	// immutable in LS: no invalidation needed.
}

func (s *Simulator) stepRead(rec trace.Record) {
	s.stats.Reads++
	var frags []stl.Fragment
	if s.resolver != nil {
		s.fragBuf = s.resolver.ResolveAppend(s.fragBuf[:0], rec.Extent)
		frags = s.fragBuf
	} else {
		frags = s.layer.Resolve(rec.Extent)
	}
	s.stats.TotalFragments += int64(len(frags))
	if len(frags) > s.stats.MaxFragments {
		s.stats.MaxFragments = len(frags)
	}
	fragmented := len(frags) > 1
	if fragmented {
		s.stats.FragmentedReads++
	}
	if len(s.probes) != 0 {
		s.emitOp(OpEvent{Op: s.opIndex, Kind: disk.Read, Lba: rec.Extent, Frags: len(frags)})
	}

	ev := ReadEvent{OpIndex: s.opIndex, Lba: rec.Extent, Fragments: frags}
	for _, o := range s.observers {
		o(ev)
	}

	for _, f := range frags {
		// Algorithm 3: on fragmented reads, try RAM first. A poisoned
		// entry is evicted — it can never be served — and the read falls
		// through to the medium.
		if fragmented && s.cache != nil {
			if s.cache.Has(f.Lba) {
				s.emitMech(MechCacheHit, 0)
				if s.injector != nil && s.injector.Poisoned() {
					s.cache.Evict(f.Lba)
					s.stats.Resilience.PoisonedEvictions++
					s.emitMech(MechPoisonedEviction, 0)
				} else {
					continue // served from cache: no disk access, no seek
				}
			} else {
				s.emitMech(MechCacheMiss, 0)
			}
		}
		// Algorithm 2: on fragmented reads, try the drive buffer. A
		// poisoned buffer serve falls back to the direct read.
		if fragmented && s.prefetch != nil {
			if s.prefetch.Covers(f.PhysExtent()) {
				s.emitMech(MechPrefetchHit, 0)
				if s.injector != nil && s.injector.Poisoned() {
					s.stats.Resilience.PrefetchFallbacks++
					s.emitMech(MechPrefetchFallback, 0)
				} else {
					continue // served from the drive buffer: no seek
				}
			}
		}
		err := s.access(disk.Read, f.PhysExtent())
		if err != nil {
			// Unrecovered read: nothing valid arrived, so neither the
			// drive buffer nor the cache may keep a copy.
			continue
		}
		if fragmented && s.prefetch != nil {
			s.prefetch.Fill(f.PhysExtent())
		}
		if fragmented && s.cache != nil {
			s.cache.Insert(f.Lba)
		}
	}

	// Algorithm 1: write the just-read range back to the log head. The
	// write-back goes through the normal write path so its frontier seek
	// is charged to this variant — the cost the paper warns about. The
	// selective cache is NOT invalidated: the data is unchanged, only its
	// physical placement moved.
	if fragmented && s.defrag != nil {
		if s.defrag.ShouldDefrag(rec.Extent, len(frags)) {
			s.relocate(rec.Extent)
		}
	}
}

// relocate rewrites lba contiguously at the log head (a defrag
// write-back). With a layer that can preview placement the relocation is
// atomic under faults: the disk I/O is attempted first and the mapping
// committed only if every attempt succeeds, so an aborted rewrite leaves
// the extent map resolving every LBA to its pre-defrag location. Layers
// without preview fall back to write-then-play; their unrecovered faults
// are recorded but the remap stands.
func (s *Simulator) relocate(lba geom.Extent) {
	if s.preview != nil {
		var previewed []stl.Fragment
		if s.prewrite != nil {
			s.writeBuf = s.prewrite.PreviewWriteAppend(s.writeBuf[:0], lba)
			previewed = s.writeBuf
		} else {
			previewed = s.preview.PreviewWrite(lba)
		}
		for _, f := range previewed {
			if err := s.access(disk.Write, f.PhysExtent()); err != nil {
				s.stats.Resilience.AbortedRelocations++
				s.emitMech(MechAbortedRelocation, 0)
				return // extent map untouched
			}
		}
		if s.wal != nil {
			// The disk I/O succeeded but the relocation is not committed
			// until its record is durable; an unjournalable relocation is
			// aborted like a faulted one.
			if !s.journalAppend(journal.RecRelocate, lba, s.ls.Frontier()) {
				s.stats.Resilience.AbortedRelocations++
				s.emitMech(MechAbortedRelocation, 0)
				return
			}
		}
		// Commit; the disk I/O was already played.
		if s.writer != nil {
			s.writeBuf = s.writer.WriteAppend(s.writeBuf[:0], lba)
		} else {
			s.layer.Write(lba)
		}
	} else {
		var placed []stl.Fragment
		if s.writer != nil {
			s.writeBuf = s.writer.WriteAppend(s.writeBuf[:0], lba)
			placed = s.writeBuf
		} else {
			placed = s.layer.Write(lba)
		}
		for _, f := range placed {
			s.access(disk.Write, f.PhysExtent())
		}
	}
	s.defrag.NoteWriteback(lba.Count)
	s.emitMech(MechDefragWriteback, lba.Count)
}
