package disk

import (
	"testing"
	"time"

	"smrseek/internal/geom"
)

func TestFirstAccessIsNotASeek(t *testing.T) {
	d := New()
	a := d.Read(geom.Ext(1000, 8))
	if a.Seeked {
		t.Error("first access must not count as a seek")
	}
	c := d.Counters()
	if c.ReadOps != 1 || c.ReadSeeks != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestSequentialAccessesDoNotSeek(t *testing.T) {
	d := New()
	d.Read(geom.Ext(0, 8))
	a := d.Read(geom.Ext(8, 8)) // starts exactly where previous ended
	if a.Seeked {
		t.Error("sequential access must not seek")
	}
	a = d.Write(geom.Ext(16, 4)) // read→write still sequential
	if a.Seeked {
		t.Error("kind change alone is not a seek")
	}
	if got := d.Counters().TotalSeeks(); got != 0 {
		t.Errorf("TotalSeeks = %d", got)
	}
}

func TestSeekClassifiedBySecondOp(t *testing.T) {
	d := New()
	d.Write(geom.Ext(0, 8))
	a := d.Read(geom.Ext(100, 8)) // second op is a read → read seek
	if !a.Seeked || a.Distance != 92 {
		t.Fatalf("access = %+v", a)
	}
	c := d.Counters()
	if c.ReadSeeks != 1 || c.WriteSeeks != 0 {
		t.Errorf("counters = %+v", c)
	}
	a = d.Write(geom.Ext(0, 8)) // second op is a write → write seek
	if !a.Seeked || a.Distance != -108 {
		t.Fatalf("access = %+v", a)
	}
	c = d.Counters()
	if c.WriteSeeks != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestBackwardOneSectorIsASeek(t *testing.T) {
	d := New()
	d.Read(geom.Ext(10, 1))
	a := d.Read(geom.Ext(10, 1)) // re-read same sector: pos is 11, start is 10
	if !a.Seeked || a.Distance != -1 {
		t.Errorf("re-read should be a -1 seek, got %+v", a)
	}
}

func TestLongSeekCounting(t *testing.T) {
	d := New()
	d.Read(geom.Ext(0, 1))
	d.Read(geom.Ext(LongSeekSectors+10, 1)) // long
	d.Read(geom.Ext(0, 1))                  // long backwards
	d.Read(geom.Ext(500, 1))                // short
	c := d.Counters()
	if c.ReadSeeks != 3 {
		t.Fatalf("ReadSeeks = %d, want 3", c.ReadSeeks)
	}
	if c.LongReadSeeks != 2 {
		t.Fatalf("LongReadSeeks = %d, want 2", c.LongReadSeeks)
	}
}

func TestEmptyExtentIgnored(t *testing.T) {
	d := New()
	d.Read(geom.Ext(0, 8))
	a := d.Read(geom.Extent{})
	if a.Seeked {
		t.Error("empty access must not seek")
	}
	if d.Counters().ReadOps != 1 {
		t.Error("empty access must not count as an op")
	}
	if d.Position() != 8 {
		t.Error("empty access must not move the head")
	}
}

func TestObserverSeesAccesses(t *testing.T) {
	d := New()
	var seen []Access
	d.AddObserver(ObserverFunc(func(a Access) { seen = append(seen, a) }))
	d.Read(geom.Ext(0, 4))
	d.Write(geom.Ext(100, 4))
	if len(seen) != 2 {
		t.Fatalf("observer saw %d accesses", len(seen))
	}
	if seen[1].Kind != Write || !seen[1].Seeked {
		t.Errorf("second access = %+v", seen[1])
	}
}

func TestCountersAddAndString(t *testing.T) {
	a := Counters{ReadOps: 1, WriteOps: 2, ReadSeeks: 3, WriteSeeks: 4,
		ReadSectors: 5, WriteSectors: 6, LongReadSeeks: 1, LongWriteSeeks: 1}
	b := a
	a.Add(b)
	if a.ReadOps != 2 || a.WriteSeeks != 8 || a.LongWriteSeeks != 2 {
		t.Errorf("Add result = %+v", a)
	}
	if a.TotalOps() != 6 || a.TotalSeeks() != 14 {
		t.Errorf("totals wrong: %+v", a)
	}
	if a.String() == "" {
		t.Error("String should be non-empty")
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("OpKind.String wrong")
	}
}

func TestTimeModelShapes(t *testing.T) {
	m := DefaultTimeModel()
	if m.SeekTime(0) != 0 {
		t.Error("zero distance must be free")
	}
	// Short forward seek costs the skipped transfer time.
	short := m.SeekTime(100)
	if short != m.TransferTime(100) {
		t.Errorf("short forward = %v, want %v", short, m.TransferTime(100))
	}
	// Short backward seek costs a full rotation (missed rotation).
	if got := m.SeekTime(-100); got != m.RotationTime {
		t.Errorf("missed rotation = %v, want %v", got, m.RotationTime)
	}
	// Long seeks are monotonically non-decreasing with distance and
	// bounded by full stroke + half rotation.
	prev := time.Duration(0)
	for _, d := range []int64{m.ShortSeek + 1, 1 << 20, 1 << 26, 1 << 32, 1 << 40} {
		got := m.SeekTime(d)
		if got < prev {
			t.Errorf("SeekTime(%d) = %v < previous %v", d, got, prev)
		}
		prev = got
	}
	max := m.MaxHeadMove + m.RotationTime/2
	if prev > max {
		t.Errorf("seek time %v exceeds full-stroke bound %v", prev, max)
	}
	if m.TransferTime(-5) != 0 {
		t.Error("negative transfer must be 0")
	}
}

func TestTimeAccumulator(t *testing.T) {
	d := New()
	acc := NewTimeAccumulator(DefaultTimeModel())
	d.AddObserver(acc)
	d.Read(geom.Ext(0, 100))
	d.Write(geom.Ext(1<<30, 100))
	if acc.ReadTime <= 0 || acc.WriteTime <= 0 {
		t.Fatalf("times not accumulated: %+v", acc)
	}
	if acc.SeekTime <= 0 {
		t.Error("seek time should be positive after a long seek")
	}
	if acc.Total() != acc.ReadTime+acc.WriteTime {
		t.Error("Total mismatch")
	}
}
