package volume_test

import (
	"testing"

	"smrseek/internal/core"
	"smrseek/internal/geom"
	"smrseek/internal/volume"
)

// BenchmarkVolumeActor measures the actor-loop overhead the service
// layer adds on top of the raw simulator: queue handoff, batch drain and
// result delivery. "sync" waits out each op's full round trip (the
// protocol server's shape — one outstanding request per connection);
// "pipelined" keeps a window of requests in flight so the actor's batch
// drain actually batches (the multi-connection aggregate shape).
func BenchmarkVolumeActor(b *testing.B) {
	cases := []struct {
		name   string
		window int
	}{
		{"sync", 1},
		{"pipelined", 256},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			v, err := volume.Open(volume.Config{
				Name:       "bench",
				Sim:        core.Config{LogStructured: true, FrontierStart: 1 << 22},
				QueueDepth: 512,
			})
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan volume.Result, bc.window)
			outstanding := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := volume.Request{
					Kind:   volume.OpWrite,
					Extent: geom.Ext(geom.Sector((int64(i)*8)%(1<<20)), 8),
				}
				for {
					if err := v.TryDo(req, done); err == nil {
						break
					}
					<-done // queue full: free a slot by draining a result
					outstanding--
				}
				if outstanding++; outstanding == bc.window {
					<-done
					outstanding--
				}
			}
			for outstanding > 0 {
				<-done
				outstanding--
			}
			b.StopTimer()
			if err := v.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
