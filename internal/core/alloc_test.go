package core

import (
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

// TestStepZeroAllocsLS pins the uninstrumented hot path: once an LS
// simulator with defrag, prefetch, and selective caching has reached
// steady state, a full Step — read resolution, fragment accounting,
// mechanism bookkeeping, relocation write-back, and the disk model —
// must not allocate as long as no probes or observers are attached.
// This is the simulator-side companion to the extmap visitor tests in
// internal/extmap/alloc_test.go.
func TestStepZeroAllocsLS(t *testing.T) {
	dc := DefaultDefragConfig()
	pc := DefaultPrefetchConfig()
	cc := DefaultCacheConfig()
	sim, err := NewSimulator(Config{
		LogStructured: true,
		FrontierStart: 1 << 20,
		Defrag:        &dc,
		Prefetch:      &pc,
		Cache:         &cc,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Interleaved writes land at different log positions, so the spanning
	// reads that follow are fragmented — exercising the cache, the
	// prefetcher, and defrag write-back on every cycle. The same records
	// replay each cycle, so the map, cache, and buffers reach a fixed
	// working size.
	var recs []trace.Record
	for i := int64(0); i < 8; i++ {
		recs = append(recs,
			trace.Record{Kind: disk.Write, Extent: geom.Ext(geom.Sector(i*512), 64)},
			trace.Record{Kind: disk.Write, Extent: geom.Ext(geom.Sector(i*512+256), 64)},
		)
	}
	for i := int64(0); i < 8; i++ {
		recs = append(recs, trace.Record{Kind: disk.Read, Extent: geom.Ext(geom.Sector(i*512), 448)})
	}
	cycle := func() {
		for _, r := range recs {
			sim.Step(r)
		}
	}

	// Warm up: grow the extent map's node slabs, the LRU's entry pool,
	// the scratch buffers, and the prefetch ring to their steady sizes.
	for i := 0; i < 8; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Errorf("steady-state LS Step allocated %.2f times per cycle with probes disabled, want 0", allocs)
	}

	// Guard against the workload silently degenerating: if nothing was
	// fragmented the zero-alloc assertion above proved nothing.
	st := sim.Stats()
	if st.FragmentedReads == 0 {
		t.Fatalf("workload produced no fragmented reads; stats %+v", st)
	}
	if st.DefragWritebacks == 0 {
		t.Fatalf("workload never triggered defrag write-back; stats %+v", st)
	}
	if st.CacheMisses == 0 {
		t.Fatalf("workload never consulted the selective cache; stats %+v", st)
	}
}
