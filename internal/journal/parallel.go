package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel verified scanning. Sealed segments are independently
// verifiable by construction — each seal frame carries the Merkle root
// over exactly the records since the previous seal — so the expensive
// per-segment work (CRC32 of every frame, SHA-256 of every leaf, the
// segment's Merkle tree) can run on a bounded worker pool while a single
// in-order applier does the only inherently sequential parts: the seal
// chain links, record accumulation, and damage classification. The same
// insight lets SMORE parallelize its segment-granular recovery scans.
//
// The pipeline has three stages:
//
//  1. Structure scan (sequential, cheap): hop frame-to-frame by length
//     prefix alone — no CRC, no hashing — splitting the stream into
//     per-segment jobs delimited by seal-candidate frames, plus one
//     unsealed-tail job. Structural damage (partial or implausible
//     frames) stops the split; classification is deferred to stage 3.
//  2. Workers (parallel, expensive): each job independently CRC-checks
//     its frames, decodes records, hashes leaves, computes the segment
//     Merkle root and checks it against the seal frame's payload.
//     Damage is reported with the exact offset and reason the
//     sequential scanner would produce, plus the records decoded
//     before it.
//  3. Applier (sequential): consumes job results strictly in job order,
//     extends and checks the seal chain (one SHA-256 per segment),
//     accumulates records and seals into Data, and applies
//     first-error-wins: the lowest-offset damage decides the outcome
//     regardless of which worker found what first. Torn-vs-corrupt
//     classification (forward resync via findSealFrom) is unchanged.
//
// The result is bit-identical to scanJournal — same Data, same errors,
// byte for byte and field for field — which parallel_test.go enforces
// with a differential corruption matrix.

// DefaultRecoveryWorkers is the worker count used when a caller passes
// workers <= 0: one per schedulable CPU.
func DefaultRecoveryWorkers() int { return runtime.GOMAXPROCS(0) }

// segJob is one verification work unit: the byte range of a segment's
// record frames plus its closing seal-candidate frame (sealOff < 0 for
// the unsealed tail job, whose range holds record frames only).
type segJob struct {
	start   int64 // first frame offset
	end     int64 // just past the last frame (seal frame, for segments)
	sealOff int64 // offset of the seal-candidate frame, -1 for the tail
	index   int   // 0-based seal index this job would seal as
}

// segDamage is a frame that failed verification inside one job.
type segDamage struct {
	off    int64
	reason string
	// broken marks a CRC-valid seal frame whose content disagrees with
	// the records it covers: always corruption, never a crash artifact.
	broken bool
}

// segResult is one job's outcome. records holds every record decoded
// before the damage point (all of them when damage is nil), matching
// what the sequential scanner would have accumulated.
type segResult struct {
	records []Record
	leaves  []Hash
	damage  *segDamage
	// Seal-candidate payload fields (valid when damage is nil and
	// sealOff >= 0).
	root      Hash // recomputed Merkle root over leaves
	sealChain Hash // chain value the seal frame claims
}

// structStop records where the structure scan had to stop: a frame that
// is structurally damaged (reason != "") or structurally foreign
// (oddLen >= 0) — the latter needs a CRC check to pick between the
// sequential scanner's "frame checksum mismatch" and "unrecognized
// N-byte frame" reasons.
type structStop struct {
	off    int64
	reason string
	oddLen int64
}

// structScan splits raw journal frames (header excluded) into
// verification jobs without touching a single checksum. It stops at the
// first structurally implausible frame; everything before it is jobs.
func structScan(raw []byte) (jobs []segJob, stop *structStop) {
	off, end := int64(headerSize), int64(len(raw))
	segStart := off
	// Record frames ahead of the stop point still need verification — the
	// sequential scanner accumulates them (and damage among them, at a
	// lower offset, wins over the structural stop), so emit them as a
	// final tail job before reporting the stop.
	stopAt := func(s *structStop) ([]segJob, *structStop) {
		if segStart < s.off {
			jobs = append(jobs, segJob{start: segStart, end: s.off, sealOff: -1, index: len(jobs)})
		}
		return jobs, s
	}
	for off < end {
		if end-off < 4 {
			return stopAt(&structStop{off: off, reason: "partial length prefix", oddLen: -1})
		}
		plen := int64(binary.LittleEndian.Uint32(raw[off:]))
		if plen == 0 || plen > maxPayloadLen {
			return stopAt(&structStop{off: off, reason: fmt.Sprintf("implausible frame length %d", plen), oddLen: -1})
		}
		next := off + 4 + plen + 4
		if next > end {
			return stopAt(&structStop{off: off, reason: "partial frame", oddLen: -1})
		}
		switch {
		case plen == payloadSize:
			// A record frame; it extends the open segment.
		case plen == sealPayloadSize && raw[off+4] == byte(RecSeal):
			jobs = append(jobs, segJob{start: segStart, end: next, sealOff: off, index: len(jobs)})
			segStart = next
		default:
			// Structurally whole but neither a record nor a seal shape:
			// the sequential scanner stops here, with the reason decided
			// by the frame's CRC. Defer that check to the applier.
			return stopAt(&structStop{off: off, oddLen: plen})
		}
		off = next
	}
	if segStart < end {
		jobs = append(jobs, segJob{start: segStart, end: end, sealOff: -1, index: len(jobs)})
	}
	return jobs, nil
}

// verifyJob runs one job: CRC every frame, decode records, hash leaves,
// and (for segment jobs) recompute the Merkle root and check it against
// the seal payload. The checks and their order mirror scanJournal
// exactly, so reasons and offsets match byte for byte.
func verifyJob(raw []byte, job segJob) segResult {
	var res segResult
	if n := (job.end - job.start) / frameSize; n > 0 {
		res.records = make([]Record, 0, n)
		res.leaves = make([]Hash, 0, n)
	}
	damaged := func(off int64, reason string) segResult {
		res.damage = &segDamage{off: off, reason: reason}
		return res
	}
	for off := job.start; off < job.end; {
		plen := int64(binary.LittleEndian.Uint32(raw[off:]))
		next := off + 4 + plen + 4
		payload := raw[off+4 : off+4+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[off+4+plen:]) {
			return damaged(off, "frame checksum mismatch")
		}
		if off == job.sealOff {
			idx, cnt, root, sealChain, ok := parseSealPayload(payload)
			if !ok {
				return damaged(off, "malformed seal payload")
			}
			// The idx/cnt/root checks only bind when every earlier
			// segment verified — exactly the case in which the applier
			// uses this result.
			if int(idx) != job.index {
				res.damage = &segDamage{off: off, broken: true,
					reason: fmt.Sprintf("seal index %d, want %d", idx, job.index)}
				return res
			}
			if int(cnt) != len(res.leaves) {
				res.damage = &segDamage{off: off, broken: true,
					reason: fmt.Sprintf("seal covers %d records, %d are pending", cnt, len(res.leaves))}
				return res
			}
			if got := MerkleRoot(res.leaves); got != root {
				res.damage = &segDamage{off: off, broken: true,
					reason: fmt.Sprintf("segment root %s, sealed %s", got.Short(), root.Short())}
				return res
			}
			res.root, res.sealChain = root, sealChain
			return res
		}
		rec, ok := unmarshalPayload(payload)
		if !ok {
			return damaged(off, "unreplayable record")
		}
		res.records = append(res.records, rec)
		res.leaves = append(res.leaves, LeafHash(payload))
		off = next
	}
	return res
}

// scanJournalParallel is the parallel equivalent of scanJournal. workers
// <= 0 means DefaultRecoveryWorkers; 1 runs the whole pipeline inline on
// the calling goroutine. When wantLeaves is set the verified records'
// leaf hashes are returned in order (sealed segments first, then the
// unsealed tail) so Log.Open and Log.Prove can reuse the audit core's
// hashing instead of redoing it.
func scanJournalParallel(raw []byte, workers int, wantLeaves bool) (Data, []Hash, error) {
	var d Data
	if len(raw) < headerSize {
		return d, nil, fmt.Errorf("journal: short header (%d bytes)", len(raw))
	}
	gen, frontier, anchor, err := unmarshalHeader(raw)
	if err != nil {
		if findSealFrom(raw, 0) >= 0 {
			return d, nil, &CorruptError{File: JournalFile, Segment: 0, Offset: 0,
				Reason: "damaged header ahead of sealed content"}
		}
		return d, nil, err
	}
	d.Generation, d.InitFrontier, d.Anchor = gen, frontier, anchor

	jobs, stop := structScan(raw)
	if workers <= 0 {
		workers = DefaultRecoveryWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// next(i) yields job i's result. Inline (workers <= 1) it just runs
	// the job; parallel, workers pull jobs off an atomic cursor — so one
	// long segment cannot serialize the rest — and results[i] becomes
	// valid once done[i] closes. The applier consumes strictly in index
	// order either way.
	next := func(i int) segResult { return verifyJob(raw, jobs[i]) }
	if workers > 1 {
		results := make([]segResult, len(jobs))
		done := make([]chan struct{}, len(jobs))
		for i := range done {
			done[i] = make(chan struct{})
		}
		var cursor, stopFlag atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(jobs) || stopFlag.Load() != 0 {
						return
					}
					results[i] = verifyJob(raw, jobs[i])
					close(done[i])
				}
			}()
		}
		// The applier may stop early on damage; tell the workers and wait
		// them out so no goroutine outlives the call.
		defer func() {
			stopFlag.Store(1)
			wg.Wait()
		}()
		next = func(i int) segResult { <-done[i]; return results[i] }
	}

	// In-order applier: chain links, accumulation, first-error-wins.
	chain := anchor
	pendingFirst := int64(1)
	damaged := func(at int64, reason string) (Data, []Hash, error) {
		if findSealFrom(raw, at) >= 0 {
			return d, nil, &CorruptError{
				File: JournalFile, Segment: len(d.Seals), Offset: at,
				Reason: reason + " (intact seal follows the damage)",
			}
		}
		d.Torn = true
		return d, nil, nil
	}
	sealBroken := func(at int64, reason string) (Data, []Hash, error) {
		return d, nil, &CorruptError{File: JournalFile, Segment: len(d.Seals), Offset: at, Reason: reason}
	}
	var leaves []Hash
	for i, job := range jobs {
		res := next(i)
		d.Records = append(d.Records, res.records...)
		if wantLeaves {
			leaves = append(leaves, res.leaves...)
		}
		if dm := res.damage; dm != nil {
			if dm.broken {
				return sealBroken(dm.off, dm.reason)
			}
			return damaged(dm.off, dm.reason)
		}
		if job.sealOff < 0 {
			break // unsealed tail: records only, always the last job
		}
		if want := chainLink(chain, res.root); want != res.sealChain {
			return sealBroken(job.sealOff, fmt.Sprintf("chain %s, sealed %s", want.Short(), res.sealChain.Short()))
		}
		chain = res.sealChain
		cnt := len(res.records)
		d.Seals = append(d.Seals, Seal{
			Index: job.index, First: pendingFirst, Count: cnt,
			Root: res.root, Chain: res.sealChain, Offset: job.sealOff,
		})
		d.Sealed += int64(cnt)
		pendingFirst += int64(cnt)
	}
	if stop != nil {
		reason := stop.reason
		if stop.oddLen >= 0 {
			// A structurally foreign frame: the sequential scanner's
			// reason depends on whether its CRC happens to hold.
			payload := raw[stop.off+4 : stop.off+4+stop.oddLen]
			if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[stop.off+4+stop.oddLen:]) {
				reason = "frame checksum mismatch"
			} else {
				reason = fmt.Sprintf("unrecognized %d-byte frame", stop.oddLen)
			}
		}
		return damaged(stop.off, reason)
	}
	return d, leaves, nil
}

// ScanBytesWorkers is ScanBytes with a bounded verification worker pool:
// sealed segments are CRC-checked and Merkle-verified concurrently while
// an in-order applier checks the seal chain, with results — Data and
// errors alike — bit-identical to the sequential scan. workers <= 0 uses
// DefaultRecoveryWorkers, 1 runs inline.
func ScanBytesWorkers(raw []byte, workers int) (Data, error) {
	d, _, err := scanJournalParallel(raw, workers, false)
	return d, err
}
