package workload

import (
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

// Builder accumulates trace records with a virtual clock. Generators
// compose its primitives; nothing here is random — randomness lives in
// the profile engine so the primitives stay trivially testable.
type Builder struct {
	recs    []trace.Record
	clock   int64 // ns
	interOp int64 // ns advanced per emitted record
}

// NewBuilder returns a builder whose virtual clock advances interOp
// nanoseconds per operation (1 ms if interOp <= 0).
func NewBuilder(interOp int64) *Builder {
	if interOp <= 0 {
		interOp = 1_000_000
	}
	return &Builder{interOp: interOp}
}

// Len returns the number of records emitted so far.
func (b *Builder) Len() int { return len(b.recs) }

// Records returns the accumulated trace.
func (b *Builder) Records() []trace.Record { return b.recs }

// Clock returns the current virtual time in nanoseconds.
func (b *Builder) Clock() int64 { return b.clock }

// AdvanceClock adds idle time (e.g. between diurnal phases).
func (b *Builder) AdvanceClock(ns int64) {
	if ns > 0 {
		b.clock += ns
	}
}

func (b *Builder) emit(kind disk.OpKind, ext geom.Extent) {
	if ext.Empty() {
		return
	}
	b.recs = append(b.recs, trace.Record{Time: b.clock, Kind: kind, Extent: ext})
	b.clock += b.interOp
}

// Read emits one read of n sectors at lba.
func (b *Builder) Read(lba geom.Sector, n int64) { b.emit(disk.Read, geom.Ext(lba, n)) }

// Write emits one write of n sectors at lba.
func (b *Builder) Write(lba geom.Sector, n int64) { b.emit(disk.Write, geom.Ext(lba, n)) }

// ReadExtent and WriteExtent emit extent-shaped operations.
func (b *Builder) ReadExtent(e geom.Extent) { b.emit(disk.Read, e) }

// WriteExtent emits one write covering e.
func (b *Builder) WriteExtent(e geom.Extent) { b.emit(disk.Write, e) }

// SeqWrite writes [start, start+total) in chunk-sized pieces, ascending.
func (b *Builder) SeqWrite(start geom.Sector, total, chunk int64) {
	b.seq(disk.Write, start, total, chunk)
}

// SeqRead reads [start, start+total) in chunk-sized pieces, ascending.
func (b *Builder) SeqRead(start geom.Sector, total, chunk int64) {
	b.seq(disk.Read, start, total, chunk)
}

func (b *Builder) seq(kind disk.OpKind, start geom.Sector, total, chunk int64) {
	if chunk <= 0 {
		chunk = total
	}
	for off := int64(0); off < total; off += chunk {
		n := chunk
		if off+n > total {
			n = total - off
		}
		b.emit(kind, geom.Ext(start+off, n))
	}
}

// MisorderPattern selects the shape of a mis-ordered write burst, after
// the patterns visible in the paper's Figure 7.
type MisorderPattern int

const (
	// Descending writes the chunks of a contiguous range in strictly
	// descending LBA order (hm_1's most extreme shape).
	Descending MisorderPattern = iota
	// Interleaved writes even-indexed chunks ascending, then the odd ones
	// ascending — two interleaved streams.
	Interleaved
	// Shuffled writes the chunks in a random order (w106's small-scale
	// randomness). Requires an RNG.
	Shuffled
)

// MisorderedWrite writes the contiguous range [start, start+chunks*chunk)
// as chunk-sized pieces in a non-ascending order. The whole burst is
// dispatched back-to-back, modelling the paper's observation that such
// I/Os arrive within microseconds of each other. rng may be nil except
// for Shuffled.
func (b *Builder) MisorderedWrite(start geom.Sector, chunks int, chunk int64, p MisorderPattern, rng *RNG) {
	if chunks <= 0 || chunk <= 0 {
		return
	}
	order := make([]int, chunks)
	switch p {
	case Descending:
		for i := range order {
			order[i] = chunks - 1 - i
		}
	case Interleaved:
		k := 0
		for i := 0; i < chunks; i += 2 {
			order[k] = i
			k++
		}
		for i := 1; i < chunks; i += 2 {
			order[k] = i
			k++
		}
	case Shuffled:
		copy(order, rng.Perm(chunks))
	}
	for _, idx := range order {
		b.emit(disk.Write, geom.Ext(start+int64(idx)*chunk, chunk))
	}
}
