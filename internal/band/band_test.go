package band

import (
	"strings"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// small returns a device with a tiny, hand-checkable geometry: 100-sector
// bands over a 1000-sector data region, a 200-sector cache in two
// 100-sector units at sector 1000.
func small(t *testing.T, p Policy) *Device {
	t.Helper()
	d, err := New(Config{
		BandSectors:  100,
		CacheSectors: 200,
		UnitSectors:  100,
		DataSectors:  1000,
		Policy:       p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func write(t *testing.T, d *Device, start geom.Sector, n int64) {
	t.Helper()
	if _, err := d.TryDo(disk.Write, geom.Ext(start, n)); err != nil {
		t.Fatalf("write [%d,+%d): %v", start, n, err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("after write [%d,+%d): %v", start, n, err)
	}
}

func read(t *testing.T, d *Device, start geom.Sector, n int64) {
	t.Helper()
	if _, err := d.TryDo(disk.Read, geom.Ext(start, n)); err != nil {
		t.Fatalf("read [%d,+%d): %v", start, n, err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"pol-a", PolA}, {"a", PolA}, {"pol-b", PolB}, {"b", PolB}, {"shelter", Shelter}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if back, err := ParsePolicy(tc.want.String()); err != nil || back != tc.want {
			t.Errorf("round-trip %v failed: %v, %v", tc.want, back, err)
		}
	}
	if _, err := ParsePolicy("pol-c"); err == nil {
		t.Error("ParsePolicy accepted pol-c")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{BandSectors: -1},
		{CacheSectors: -5},
		{CleanLo: 0.9, CleanHi: 0.5},
		{CleanHi: 1.5},
		{ShelterSectors: -1},
		{Policy: Policy(9)},
		{DataSectors: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a bad config", c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestAppendsPassThrough: first writes and in-band appends never touch
// the cache — they are shingle-friendly by definition.
func TestAppendsPassThrough(t *testing.T) {
	d := small(t, PolA)
	write(t, d, 0, 50)
	write(t, d, 50, 50)  // continues band 0 at its write pointer
	write(t, d, 100, 30) // fresh band 1
	c := d.Cleaning()
	if c.CachedWrites != 0 || c.DirtyBands != 0 {
		t.Fatalf("appends were cached: %+v", c)
	}
	if got := d.Counters().WriteSectors; got != 130 {
		t.Fatalf("WriteSectors = %d, want 130", got)
	}
	if c.HostWriteSectors != 130 {
		t.Fatalf("HostWriteSectors = %d, want 130", c.HostWriteSectors)
	}
}

// TestRewriteRedirects: a write below the band's pointer goes to the
// cache, reads of it resolve there, and overwriting it again displaces
// the old copy.
func TestRewriteRedirects(t *testing.T) {
	d := small(t, PolA)
	write(t, d, 0, 50)
	write(t, d, 0, 10) // rewrite: must be redirected
	c := d.Cleaning()
	if c.CachedWrites != 1 || c.CachedSectors != 10 || c.DirtyBands != 1 {
		t.Fatalf("redirect not recorded: %+v", c)
	}

	// The physical write must have landed inside the cache region.
	var cachePhys bool
	d.AddObserver(disk.ObserverFunc(func(a disk.Access) {
		if a.Extent.Start >= 1000 {
			cachePhys = true
		}
	}))
	read(t, d, 0, 10)
	if !cachePhys {
		t.Fatal("read of redirected data did not touch the cache region")
	}
	if got := d.Cleaning().CacheReads; got != 1 {
		t.Fatalf("CacheReads = %d, want 1", got)
	}

	// Overwrite: the stale copy's space is released.
	write(t, d, 0, 10)
	c = d.Cleaning()
	if c.CachedWrites != 2 || c.CachedSectors != 20 {
		t.Fatalf("second redirect not recorded: %+v", c)
	}
}

// TestStallCleanReclaims: exhausting the cache forces a synchronous
// clean that RMWs the dirty band, after which space is reclaimed.
func TestStallCleanReclaims(t *testing.T) {
	// Watermarks at the very top so the soft cleaner stays out of the
	// way and the allocation failure is what forces the clean.
	d, err := New(Config{
		BandSectors:  100,
		CacheSectors: 200,
		UnitSectors:  100,
		DataSectors:  1000,
		CleanLo:      0.95,
		CleanHi:      1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	write(t, d, 0, 100)
	write(t, d, 100, 100)
	write(t, d, 200, 100)
	// Three disjoint 90-sector rewrites: two fill both cache units; the
	// third fits nowhere and must stall-clean the dirtiest band.
	write(t, d, 0, 90)
	write(t, d, 100, 90)
	write(t, d, 200, 90)
	c := d.Cleaning()
	if c.Stalls == 0 || c.CleanRuns == 0 || c.BandsCleaned == 0 {
		t.Fatalf("no stall clean recorded: %+v", c)
	}
	if c.CleanReadSectors == 0 || c.CleanWriteSectors == 0 {
		t.Fatalf("clean RMW not accounted: %+v", c)
	}
	if c.StallSectors == 0 {
		t.Fatalf("stall sectors not accounted: %+v", c)
	}
	if wa := c.WriteAmp(); wa <= 1 {
		t.Fatalf("WriteAmp = %v, want > 1 after cleaning", wa)
	}
}

// TestPolBPlacement: each band writes to its own statically assigned
// unit, and filling that unit cleans exactly its bands.
func TestPolBPlacement(t *testing.T) {
	// Watermarks at 1.0: only the full-unit hard trigger may clean.
	d, err := New(Config{
		BandSectors:  100,
		CacheSectors: 200,
		UnitSectors:  100,
		DataSectors:  1000,
		Policy:       PolB,
		CleanLo:      1.0,
		CleanHi:      1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	write(t, d, 0, 50)   // band 0
	write(t, d, 150, 50) // band 1 (starts mid-band: fresh space, passes)

	var phys []geom.Sector
	d.AddObserver(disk.ObserverFunc(func(a disk.Access) {
		if a.Kind == disk.Write && a.Extent.Start >= 1000 {
			phys = append(phys, a.Extent.Start)
		}
	}))
	write(t, d, 0, 10)   // band 0 rewrite -> unit 0 (band 0 mod 2)
	write(t, d, 150, 10) // band 1 rewrite -> unit 1
	if len(phys) != 2 || phys[0] != 1000 || phys[1] != 1100 {
		t.Fatalf("PolB placement = %v, want [1000 1100]", phys)
	}

	// Fill band 0's unit: the hard trigger cleans band 0 only. The
	// first 90-sector rewrite displaces the 10 and fills the unit
	// exactly; the second overflows it and forces the unit clean.
	write(t, d, 0, 90)
	write(t, d, 0, 90)
	c := d.Cleaning()
	if c.Stalls == 0 || c.BandsCleaned == 0 {
		t.Fatalf("PolB unit clean not recorded: %+v", c)
	}
	// Only band 0 (unit 0's sole band) was cleaned; band 1 kept its
	// cached data, and the pending rewrite re-dirtied band 0.
	if c.BandsCleaned != 1 {
		t.Fatalf("BandsCleaned = %d, want 1 (band 1 untouched by unit 0 clean)", c.BandsCleaned)
	}
	if c.DirtyBands != 2 {
		t.Fatalf("DirtyBands = %d, want 2", c.DirtyBands)
	}
}

// TestShelterSeekFree: a small rewrite lands exactly where the head is
// — the tail of the last big I/O — costing no write seek.
func TestShelterSeekFree(t *testing.T) {
	d, err := New(Config{
		BandSectors:    100,
		CacheSectors:   200,
		UnitSectors:    100,
		DataSectors:    1000,
		Policy:         Shelter,
		ShelterSectors: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	write(t, d, 0, 50) // big: shelter point = 50, head at 50
	seeksBefore := d.Counters().WriteSeeks
	write(t, d, 0, 10) // small rewrite: sheltered at 50
	if got := d.Counters().WriteSeeks; got != seeksBefore {
		t.Fatalf("sheltered write seeked (%d -> %d)", seeksBefore, got)
	}
	c := d.Cleaning()
	if c.CachedWrites != 1 || c.DirtyBands != 1 {
		t.Fatalf("shelter not recorded as redirect: %+v", c)
	}

	// A big rewrite is not sheltered: it goes to the cache region.
	var cachePhys bool
	d.AddObserver(disk.ObserverFunc(func(a disk.Access) {
		if a.Kind == disk.Write && a.Extent.Start >= 1000 {
			cachePhys = true
		}
	}))
	write(t, d, 0, 40)
	if !cachePhys {
		t.Fatal("big rewrite was not sent to the cache region")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBandCrossings: one access sweeping several bands charges the
// boundary crossings.
func TestBandCrossings(t *testing.T) {
	d := small(t, PolA)
	write(t, d, 50, 200) // bands 0..2: two boundaries
	read(t, d, 0, 100)   // within band 0 and its boundary at 100? [0,100) stays inside
	c := d.Cleaning()
	if c.BandCrossings != 2 {
		t.Fatalf("BandCrossings = %d, want 2", c.BandCrossings)
	}
}

// TestCacheDisabledIsPassThrough: with no cache every access passes
// through verbatim — one physical access per host access.
func TestCacheDisabledIsPassThrough(t *testing.T) {
	d, err := New(Config{BandSectors: 100, DataSectors: 1000})
	if err != nil {
		t.Fatal(err)
	}
	write(t, d, 0, 50)
	write(t, d, 0, 50) // rewrite: still in place without a cache
	read(t, d, 0, 50)
	c := d.Counters()
	if c.WriteOps != 2 || c.ReadOps != 1 || c.WriteSectors != 100 {
		t.Fatalf("pass-through counters off: %+v", c)
	}
	if cl := d.Cleaning(); cl.CachedWrites != 0 || cl.HostWriteSectors != 100 {
		t.Fatalf("cleaning counters off: %+v", cl)
	}
}

// TestSoftCleanAboveLowWatermark: crossing the low watermark cleans one
// band per op without charging a stall.
func TestSoftCleanAboveLowWatermark(t *testing.T) {
	d, err := New(Config{
		BandSectors:  100,
		CacheSectors: 200,
		UnitSectors:  200,
		DataSectors:  1000,
		CleanLo:      0.2, // low watermark at 40 live sectors
		CleanHi:      0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	write(t, d, 0, 90)
	write(t, d, 0, 50) // 50 live > 40: soft clean fires after the op
	c := d.Cleaning()
	if c.CleanRuns != 1 || c.BandsCleaned != 1 {
		t.Fatalf("soft clean did not fire: %+v", c)
	}
	if c.Stalls != 0 {
		t.Fatalf("soft clean charged a stall: %+v", c)
	}
}

func TestModelName(t *testing.T) {
	d := small(t, PolA)
	if d.ModelName() != "band" {
		t.Fatalf("ModelName = %q", d.ModelName())
	}
	if !strings.Contains(PolB.String(), "pol-b") {
		t.Fatalf("Policy.String = %q", PolB.String())
	}
}
