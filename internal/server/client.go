package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/trace"
)

// StatusError is a non-OK response from the server. Callers distinguish
// backpressure (IsOverloaded) from hard failures by status code.
type StatusError struct {
	Status uint8
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("smrd: %s: %s", StatusName(e.Status), e.Msg)
}

// IsOverloaded reports whether err is the server's backpressure signal —
// the request was shed, not executed, and may be retried.
func IsOverloaded(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Status == StatusOverloaded
}

// connError marks a transport-level failure (send or receive on a
// broken connection), as opposed to a server response. Step/Replay
// reconnect on these; a StatusError — including overload shedding —
// always surfaces immediately.
type connError struct{ err error }

func (e *connError) Error() string { return e.err.Error() }
func (e *connError) Unwrap() error { return e.err }

func isConnError(err error) bool {
	var ce *connError
	return errors.As(err, &ce)
}

// ReconnectPolicy bounds Step/Replay's automatic reconnection after a
// broken connection: up to MaxAttempts redials, sleeping a jittered
// exponential backoff between them, starting at Base and capped at Max.
type ReconnectPolicy struct {
	MaxAttempts int
	Base        time.Duration
	Max         time.Duration
}

// DefaultReconnect is the policy a dialed client starts with.
var DefaultReconnect = ReconnectPolicy{
	MaxAttempts: 5,
	Base:        50 * time.Millisecond,
	Max:         2 * time.Second,
}

// backoff returns the jittered sleep before redial attempt (0-based):
// uniform over [d/2, d) where d = min(Base<<attempt, Max). The jitter
// spreads a herd of clients reconnecting to a restarted daemon.
func (p ReconnectPolicy) backoff(attempt int) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)))
}

// Client is one synchronous smrd protocol connection: a window=1 view
// over the pipelined AsyncClient, preserving the strict
// request/response alternation the v1 protocol had. Not safe for
// concurrent use; open one client per goroutine (or use AsyncClient).
type Client struct {
	ac         *AsyncClient
	addr       string
	version    uint8 // protocol ceiling to negotiate (Version or Version2)
	done       chan *Call
	policy     ReconnectPolicy
	reconnects int64
}

// Dial connects and negotiates the protocol (SMRD2 where the server
// supports it, at window 1), retrying refused connections briefly (the
// daemon may still be binding its listener).
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial with caller-controlled cancellation: the
// connection attempt, its retries and the retry sleeps all end when ctx
// does. Replica sets use it to bound how long probing a dead node may
// take.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	return DialVersion(ctx, addr, Version2)
}

// DialVersion is DialContext with an explicit protocol ceiling:
// version Version forces the legacy v1 wire format even against an
// SMRD2 server (the conformance tests pin v1 interop this way).
func DialVersion(ctx context.Context, addr string, version uint8) (*Client, error) {
	ac, err := DialAsyncContext(ctx, addr, version, 1)
	if err != nil {
		return nil, err
	}
	return &Client{
		ac:      ac,
		addr:    addr,
		version: version,
		done:    make(chan *Call, 1),
		policy:  DefaultReconnect,
	}, nil
}

// SetReconnect replaces the Step/Replay reconnection policy. A zero
// MaxAttempts disables reconnection entirely.
func (c *Client) SetReconnect(p ReconnectPolicy) { c.policy = p }

// Reconnects returns how many times the client has re-established its
// connection inside Step/Replay.
func (c *Client) Reconnects() int64 { return c.reconnects }

// Version returns the negotiated protocol version.
func (c *Client) Version() uint8 { return c.ac.Version() }

// Close closes the connection.
func (c *Client) Close() error { return c.ac.Close() }

// reconnect replaces a broken connection with a fresh negotiated one.
func (c *Client) reconnect() error {
	c.ac.Close()
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return &connError{fmt.Errorf("smrd: redial %s: %w", c.addr, err)}
	}
	ac, err := newAsyncClient(conn, c.addr, c.version, 1)
	if err != nil {
		conn.Close()
		return &connError{err}
	}
	c.ac = ac
	// The old connection's failure may have left its Call in c.done;
	// a fresh channel keeps old deliveries from matching new requests.
	c.done = make(chan *Call, 1)
	c.reconnects++
	return nil
}

// roundTrip sends one request and blocks for its response status + body.
// Transport failures come back as *connError; server rejections as
// *StatusError.
func (c *Client) roundTrip(req request) ([]byte, error) {
	if _, err := c.ac.submit(req, c.done); err != nil {
		return nil, err
	}
	return (<-c.done).Result()
}

// Write issues a logical write of ext on the named volume.
func (c *Client) Write(vol string, ext geom.Extent) error {
	_, err := c.roundTrip(request{Op: OpWrite, Volume: vol, Extent: ext})
	return err
}

// Read issues a logical read of ext and returns the number of physical
// fragments it resolved to — the paper's read-seek cost signal.
func (c *Client) Read(vol string, ext geom.Extent) (int, error) {
	body, err := c.roundTrip(request{Op: OpRead, Volume: vol, Extent: ext})
	if err != nil {
		return 0, err
	}
	if len(body) != 4 {
		return 0, fmt.Errorf("smrd: read response body %d bytes, want 4", len(body))
	}
	return int(binary.LittleEndian.Uint32(body)), nil
}

// Stat returns the volume's live statistics. Stats.Config is zeroed by
// the server (layer pointers do not cross the wire).
func (c *Client) Stat(vol string) (core.Stats, error) {
	body, err := c.roundTrip(request{Op: OpStat, Volume: vol})
	if err != nil {
		return core.Stats{}, err
	}
	var st core.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return core.Stats{}, fmt.Errorf("smrd: stat decode: %w", err)
	}
	return st, nil
}

// Snapshot forces a journal checkpoint on the volume.
func (c *Client) Snapshot(vol string) error {
	_, err := c.roundTrip(request{Op: OpSnapshot, Volume: vol})
	return err
}

// Verify asks the server to audit the volume's journal directory —
// every frame CRC, every segment Merkle root, the seal chain and the
// checkpoint linkage — and returns the audit. Corruption comes back as
// a StatusCorrupt StatusError.
func (c *Client) Verify(vol string) (journal.Audit, error) {
	body, err := c.roundTrip(request{Op: OpVerify, Volume: vol})
	if err != nil {
		return journal.Audit{}, err
	}
	var a journal.Audit
	if err := json.Unmarshal(body, &a); err != nil {
		return journal.Audit{}, fmt.Errorf("smrd: audit decode: %w", err)
	}
	return a, nil
}

// Prove fetches the Merkle inclusion proof for the seq'th journal
// record (1-based, current generation) of the volume and verifies the
// audit path locally before returning it — so a proof the server
// mis-built never reaches the caller marked good.
func (c *Client) Prove(vol string, seq int64) (journal.Proof, error) {
	body, err := c.roundTrip(request{Op: OpProof, Volume: vol, Seq: seq})
	if err != nil {
		return journal.Proof{}, err
	}
	var p journal.Proof
	if err := json.Unmarshal(body, &p); err != nil {
		return journal.Proof{}, fmt.Errorf("smrd: proof decode: %w", err)
	}
	if err := p.Verify(); err != nil {
		return journal.Proof{}, fmt.Errorf("smrd: server proof does not verify: %w", err)
	}
	return p, nil
}

// Step sends one trace record as the matching read/write request and
// returns a read's fragment count (0 for writes). A broken connection
// is redialed with capped, jittered exponential backoff (up to the
// ReconnectPolicy's MaxAttempts) and the record resent — at-least-once
// semantics: a record whose response was lost in flight may execute
// twice. Server rejections, including ErrOverloaded backpressure, are
// never retried here.
func (c *Client) Step(vol string, rec trace.Record) (int, error) {
	n, err := c.step(vol, rec)
	for attempt := 0; isConnError(err) && attempt < c.policy.MaxAttempts; attempt++ {
		time.Sleep(c.policy.backoff(attempt))
		if rerr := c.reconnect(); rerr != nil {
			err = rerr
			continue
		}
		n, err = c.step(vol, rec)
	}
	return n, err
}

func (c *Client) step(vol string, rec trace.Record) (int, error) {
	switch rec.Kind {
	case disk.Write:
		return 0, c.Write(vol, rec.Extent)
	case disk.Read:
		return c.Read(vol, rec.Extent)
	default:
		return 0, fmt.Errorf("smrd: unsupported record kind %v", rec.Kind)
	}
}

// Ship asks the node for the next replication chunk of the volume's
// journal past (gen, off). It returns the responding node's fencing
// epoch alongside the chunk.
func (c *Client) Ship(vol string, gen uint64, off int64) (uint64, journal.ShipChunk, error) {
	body, err := c.roundTrip(request{Op: OpShip, Volume: vol, Gen: gen, Off: off})
	if err != nil {
		return 0, journal.ShipChunk{}, err
	}
	return parseShipBody(body)
}

// Tail is Ship with long-poll semantics: the server holds the request
// until sealed bytes exist past (gen, off) — force-sealing a lagging
// tail — or its bounded wait expires (returning a ShipNone chunk).
func (c *Client) Tail(vol string, gen uint64, off int64) (uint64, journal.ShipChunk, error) {
	body, err := c.roundTrip(request{Op: OpTail, Volume: vol, Gen: gen, Off: off})
	if err != nil {
		return 0, journal.ShipChunk{}, err
	}
	return parseShipBody(body)
}

// Ack reports this follower's verified, applied journal position for the
// volume, so the primary can release gated writes and track lag.
func (c *Client) Ack(vol string, gen uint64, off int64) error {
	_, err := c.roundTrip(request{Op: OpAck, Volume: vol, Gen: gen, Off: off})
	return err
}

// Role returns the node's replication role, fencing epoch and
// per-volume journal positions.
func (c *Client) Role() (RoleInfo, error) {
	body, err := c.roundTrip(request{Op: OpRole})
	if err != nil {
		return RoleInfo{}, err
	}
	var info RoleInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return RoleInfo{}, fmt.Errorf("smrd: role decode: %w", err)
	}
	return info, nil
}

// Promote asks a follower to promote itself to primary — verified
// recovery of every replicated journal, epoch bump, serving enabled —
// and returns its post-promotion role.
func (c *Client) Promote() (RoleInfo, error) {
	body, err := c.roundTrip(request{Op: OpPromote})
	if err != nil {
		return RoleInfo{}, err
	}
	var info RoleInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return RoleInfo{}, fmt.Errorf("smrd: promote decode: %w", err)
	}
	return info, nil
}

// Replay streams every record of r to the named volume in order and
// returns the op count. Each record blocks on its response, so the
// volume executes the trace in exactly this order. Broken connections
// are retried per Step's reconnect policy. For a pipelined replay that
// keeps a whole window in flight, see AsyncClient.Replay.
func (c *Client) Replay(vol string, r trace.Reader) (int64, error) {
	var n int64
	for {
		rec, ok := r.Next()
		if !ok {
			return n, r.Err()
		}
		if _, err := c.Step(vol, rec); err != nil {
			return n, err
		}
		n++
	}
}
