package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/trace"
	"smrseek/internal/volume"
)

// newTestServer starts a server over freshly opened volumes and returns
// it with its dial address. Everything is torn down with the test.
func newTestServer(t *testing.T, opts Options, cfgs ...volume.Config) (*Server, *volume.Manager, string) {
	t.Helper()
	mgr, err := volume.OpenAll(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		t.Fatal(err)
	}
	opts.Logf = t.Logf
	srv := New(mgr, ln, opts)
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv, mgr, ln.Addr().String()
}

func lsConfig(name string) volume.Config {
	return volume.Config{
		Name: name,
		Sim:  core.Config{LogStructured: true, FrontierStart: 1 << 20},
	}
}

func TestWireRoundTrip(t *testing.T) {
	cases := []request{
		{Op: OpWrite, Volume: "v0", Extent: geom.Ext(12345, 64)},
		{Op: OpRead, Volume: "a-much-longer-volume-name", Extent: geom.Ext(0, 1)},
		{Op: OpStat, Volume: "v"},
		{Op: OpSnapshot, Volume: "v"},
		{Op: OpVerify, Volume: "v"},
		{Op: OpProof, Volume: "v", Seq: 7},
		{Op: OpShip, Volume: "v", Gen: 3, Off: 4096},
		{Op: OpTail, Volume: "v", Gen: 1, Off: 0},
		{Op: OpAck, Volume: "v", Gen: 9, Off: 1 << 30},
		{Op: OpRole, Volume: "v"},
		{Op: OpPromote, Volume: "v"},
	}
	for _, want := range cases {
		frame, err := appendRequest(nil, want)
		if err != nil {
			t.Fatalf("append %+v: %v", want, err)
		}
		// Strip the length prefix, as the server-side read loop does.
		n := binary.LittleEndian.Uint32(frame)
		if int(n) != len(frame)-4 {
			t.Fatalf("length prefix %d, frame body %d", n, len(frame)-4)
		}
		got, err := parseRequest(frame[4:])
		if err != nil {
			t.Fatalf("parse %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		{},                         // too short
		{OpWrite},                  // no vlen
		{OpWrite, 5, 'a'},          // truncated name
		{OpWrite, 1, 'a', 1, 2, 3}, // truncated extent
		{OpStat, 1, 'a', 0},        // trailing bytes on stat
		{OpVerify, 1, 'a', 0},      // trailing bytes on verify
		{OpProof, 1, 'a'},          // proof without seq
		{OpProof, 1, 'a', 0, 0, 0, 0, 0, 0, 0, 0}, // proof seq 0
		{OpShip, 1, 'a', 1, 2, 3},                 // truncated repl body
		{OpAck, 1, 'a', 0, 0, 0, 0, 0, 0, 0, 0,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // negative ack offset
		{OpRole, 1, 'a', 0},    // trailing bytes on role
		{OpPromote, 1, 'a', 0}, // trailing bytes on promote
		{99, 0},                // unknown op
	}
	for _, p := range bad {
		if _, err := parseRequest(p); err == nil {
			t.Errorf("parseRequest(%v) accepted malformed frame", p)
		}
	}
	if _, err := appendRequest(nil, request{Op: OpStat, Volume: strings.Repeat("x", 300)}); err == nil {
		t.Error("appendRequest accepted an over-long volume name")
	}
}

func TestShipBodyRoundTrip(t *testing.T) {
	for _, want := range []journal.ShipChunk{
		{Kind: journal.ShipSegments, Gen: 5, Off: 1234, Data: []byte("sealed segment bytes")},
		{Kind: journal.ShipCheckpoint, Gen: 2, Data: []byte{0}},
		{Kind: journal.ShipNone},
	} {
		body := appendShipBody(nil, 42, want)
		epoch, got, err := parseShipBody(body)
		if err != nil {
			t.Fatalf("parseShipBody(%+v): %v", want, err)
		}
		if epoch != 42 {
			t.Errorf("epoch %d, want 42", epoch)
		}
		if got.Kind != want.Kind || got.Gen != want.Gen || got.Off != want.Off || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
	if _, _, err := parseShipBody([]byte{1, 2, 3}); err == nil {
		t.Error("parseShipBody accepted a truncated header")
	}
}

func TestStatusName(t *testing.T) {
	if got := StatusName(StatusOverloaded); got != "overloaded" {
		t.Errorf("StatusName(StatusOverloaded) = %q", got)
	}
	if got := StatusName(200); got != "status(200)" {
		t.Errorf("StatusName(200) = %q", got)
	}
}

func TestServerReadWriteStat(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("v0"))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two non-adjacent writes separated by an interleaved one land at
	// split log positions, so the spanning read resolves to 2 fragments.
	for _, ext := range []geom.Extent{geom.Ext(0, 8), geom.Ext(100, 8), geom.Ext(8, 8)} {
		if err := c.Write("v0", ext); err != nil {
			t.Fatalf("Write(%v): %v", ext, err)
		}
	}
	frags, err := c.Read("v0", geom.Ext(0, 16))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if frags != 2 {
		t.Errorf("Read frags = %d, want 2", frags)
	}
	st, err := c.Stat("v0")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Writes != 3 || st.Reads != 1 {
		t.Errorf("Stat counts writes=%d reads=%d, want 3/1", st.Writes, st.Reads)
	}
	if !reflectZero(st.Config) {
		t.Error("Stat carried a non-zero Config across the wire")
	}
}

func reflectZero(c core.Config) bool { return c == (core.Config{}) }

func TestServerUnknownVolumeAndNoJournal(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("v0"))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Write("nope", geom.Ext(0, 8))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusUnknownVolume {
		t.Errorf("write to unknown volume: err = %v, want StatusUnknownVolume", err)
	}
	// The connection must survive an error response.
	if err := c.Write("v0", geom.Ext(0, 8)); err != nil {
		t.Fatalf("Write after error response: %v", err)
	}
	err = c.Snapshot("v0")
	if !errors.As(err, &se) || se.Status != StatusNoJournal {
		t.Errorf("Snapshot without journal: err = %v, want StatusNoJournal", err)
	}
}

// rawDial opens a handshaken connection for hand-crafted frames.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := handshake(conn); err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestServerRejectsBadFrames(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("v0"))

	// Malformed request payload: error response, connection stays up.
	conn := rawDial(t, addr)
	if _, err := conn.Write(appendResponse(nil, 99, nil)); err != nil { // op 99, no vlen
		t.Fatal(err)
	}
	frame, err := readFrame(conn, nil)
	if err != nil {
		t.Fatalf("readFrame after bad op: %v", err)
	}
	if frame[0] != StatusBadRequest {
		t.Errorf("bad op status = %s, want bad-request", StatusName(frame[0]))
	}

	// Oversize frame: the server drops the connection without reading it.
	conn2 := rawDial(t, addr)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := conn2.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn2); err != nil {
		t.Fatalf("expected clean close after oversize frame, got %v", err)
	}

	// Bad handshake magic: dropped before any frame.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	if _, err := conn3.Write([]byte("NOPE\x01")); err != nil {
		t.Fatal(err)
	}
	conn3.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf, _ := io.ReadAll(conn3)
	if len(buf) > len(Magic)+1 {
		t.Errorf("server kept talking (%d bytes) after bad magic", len(buf))
	}
}

// stallVolume blocks v's actor by handing it a request whose result
// channel is already full, then fills the queue with one parked request.
// The returned release function unblocks everything.
func stallVolume(t *testing.T, v *volume.Volume) (release func()) {
	t.Helper()
	stall := make(chan volume.Result, 1)
	stall <- volume.Result{} // actor will block delivering into this
	if err := v.TryDo(volume.Request{Kind: volume.OpStat}, stall); err != nil {
		t.Fatal(err)
	}
	// Once the actor has dequeued the stall request it blocks, freeing
	// the single queue slot; park a second request there.
	parked := make(chan volume.Result, 1)
	for {
		err := v.TryDo(volume.Request{Kind: volume.OpStat}, parked)
		if err == nil {
			break
		}
		if !errors.Is(err, volume.ErrOverloaded) {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		<-stall // actor's blocked send completes; queue drains
	}
}

func TestServerBackpressure(t *testing.T) {
	cfg := lsConfig("v0")
	cfg.QueueDepth = 1
	_, mgr, addr := newTestServer(t, Options{}, cfg)
	v, _ := mgr.Get("v0")
	release := stallVolume(t, v)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Write("v0", geom.Ext(0, 8))
	if !IsOverloaded(err) {
		t.Errorf("write to saturated volume: err = %v, want overloaded", err)
	}
	release()
	// After draining, the same connection works again.
	if err := c.Write("v0", geom.Ext(0, 8)); err != nil {
		t.Fatalf("Write after release: %v", err)
	}
}

func TestServerRequestTimeout(t *testing.T) {
	_, mgr, addr := newTestServer(t, Options{RequestTimeout: 30 * time.Millisecond}, lsConfig("v0"))
	v, _ := mgr.Get("v0")
	release := stallVolume(t, v)
	defer release()

	// A v1 connection: synchronous ordering is the protocol, so a
	// timeout must close the connection.
	c, err := DialVersion(context.Background(), addr, Version)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Write("v0", geom.Ext(0, 8))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusTimeout {
		t.Fatalf("stalled write: err = %v, want StatusTimeout", err)
	}
	// The server closed the connection after the timeout: ordering on
	// this connection is no longer guaranteed.
	release()
	if err := c.Write("v0", geom.Ext(0, 8)); err == nil {
		t.Error("v1 connection survived a timeout, want closed")
	}
}

// TestServerRequestTimeoutV2 pins the SMRD2 timeout contract: the
// connection survives — responses are matched by ID, so a late result
// is discarded without corrupting anything — and the window seat is
// freed once the stalled request finally executes.
func TestServerRequestTimeoutV2(t *testing.T) {
	srv, mgr, addr := newTestServer(t, Options{RequestTimeout: 30 * time.Millisecond}, lsConfig("v0"))
	v, _ := mgr.Get("v0")
	release := stallVolume(t, v)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, want := c.Version(), uint8(Version2); got != want {
		t.Fatalf("negotiated version %d, want %d", got, want)
	}
	err = c.Write("v0", geom.Ext(0, 8))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusTimeout {
		t.Fatalf("stalled write: err = %v, want StatusTimeout", err)
	}
	release()
	// The same connection keeps working once the abandoned request has
	// drained and released its window seat. Until then a window=1
	// connection sheds — retryable, unlike v1's hard close.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Write("v0", geom.Ext(0, 8))
		if err == nil {
			break
		}
		if !IsOverloaded(err) {
			t.Fatalf("write after v2 timeout: %v, want success or overloaded", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("window seat never freed after timeout: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if n := srv.Abandoned(); n != 1 {
		t.Errorf("Abandoned = %d after a v2 timeout drained, want 1", n)
	}
}

// TestServerTimeoutDrainsAbandoned is the regression test for the
// timed-out request leak: the request is still queued and will
// execute, so its result must be drained in the background — otherwise
// the volume actor blocks forever delivering into a channel nobody
// reads, wedging the volume for every later client.
func TestServerTimeoutDrainsAbandoned(t *testing.T) {
	srv, mgr, addr := newTestServer(t, Options{RequestTimeout: 30 * time.Millisecond}, lsConfig("v0"))
	v, _ := mgr.Get("v0")
	release := stallVolume(t, v)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Write("v0", geom.Ext(0, 8))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusTimeout {
		t.Fatalf("stalled write: err = %v, want StatusTimeout", err)
	}
	if n := srv.Abandoned(); n != 0 {
		t.Fatalf("Abandoned = %d before the stalled request could execute", n)
	}
	release()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Abandoned() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Abandoned = %d after release, want 1 (result never drained)", srv.Abandoned())
		}
		time.Sleep(time.Millisecond)
	}
	// The drained volume still serves: a fresh connection works.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Write("v0", geom.Ext(0, 8)); err != nil {
		t.Fatalf("write after abandoned drain: %v", err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("a"), lsConfig("b"))
	const clients = 4
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		vol := "a"
		if i%2 == 1 {
			vol = "b"
		}
		go func(vol string, seed int64) {
			c, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for op := int64(0); op < 200; op++ {
				ext := geom.Ext(geom.Sector((seed*1000+op*8)%100000), 8)
				if op%4 == 3 {
					if _, err := c.Read(vol, ext); err != nil {
						errc <- err
						return
					}
				} else if err := c.Write(vol, ext); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(vol, int64(i))
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerVerifyAndProof(t *testing.T) {
	jcfg := lsConfig("v0")
	jcfg.JournalDir = t.TempDir()
	jcfg.SealEvery = 2
	_, _, addr := newTestServer(t, Options{}, jcfg, lsConfig("plain"))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var se *StatusError
	if _, err := c.Verify("plain"); !errors.As(err, &se) || se.Status != StatusNoJournal {
		t.Errorf("Verify without journal: %v, want StatusNoJournal", err)
	}

	for i := int64(0); i < 5; i++ {
		if err := c.Write("v0", geom.Ext(i*8, 8)); err != nil {
			t.Fatal(err)
		}
	}
	audit, err := c.Verify("v0")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !audit.HasJournal || len(audit.Segments) < 2 || audit.SealedRecords < 4 {
		t.Fatalf("audit = %+v, want >=2 sealed segments", audit)
	}
	proof, err := c.Prove("v0", 1)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if proof.Seq != 1 || proof.Generation != audit.Generation {
		t.Errorf("proof = %+v, audit generation %d", proof, audit.Generation)
	}
	// The record right past the last seal is acknowledged but unsealed:
	// the server must refuse to prove it rather than invent a path.
	if _, err := c.Prove("v0", audit.SealedRecords+audit.TailRecords); !errors.As(err, &se) || se.Status != StatusBadRequest {
		t.Errorf("Prove(unsealed): %v, want StatusBadRequest", err)
	}

	// Flip a byte inside the sealed region on disk: Verify must come back
	// StatusCorrupt, and the connection must survive the error response.
	f, err := os.OpenFile(journal.JournalPath(jcfg.JournalDir), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 70); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := c.Verify("v0"); !errors.As(err, &se) || se.Status != StatusCorrupt {
		t.Errorf("Verify of tampered journal: %v, want StatusCorrupt", err)
	}
	if _, err := c.Stat("v0"); err != nil {
		t.Errorf("Stat after corrupt response: %v", err)
	}
}

// killableProxy forwards one TCP hop and can sever every live
// connection on demand, simulating a dropped network or a daemon
// restart out from under a connected client.
type killableProxy struct {
	ln      net.Listener
	backend string
	mu      sync.Mutex
	conns   []net.Conn
}

func newKillableProxy(t *testing.T, backend string) *killableProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{ln: ln, backend: backend}
	t.Cleanup(func() {
		ln.Close()
		p.Kill()
	})
	go p.serve()
	return p
}

func (p *killableProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.backend)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, conn, up)
		p.mu.Unlock()
		go func() { io.Copy(up, conn); up.Close() }()
		go func() { io.Copy(conn, up); conn.Close() }()
	}
}

// Kill closes every connection currently flowing through the proxy.
// The listener stays up, so clients can redial.
func (p *killableProxy) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = p.conns[:0]
}

func TestClientReconnects(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("v0"))
	proxy := newKillableProxy(t, addr)
	c, err := Dial(proxy.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReconnect(ReconnectPolicy{MaxAttempts: 4, Base: time.Millisecond, Max: 8 * time.Millisecond})

	rec := trace.Record{Kind: disk.Write, Extent: geom.Ext(0, 8)}
	if _, err := c.Step("v0", rec); err != nil {
		t.Fatal(err)
	}
	proxy.Kill()
	if _, err := c.Step("v0", rec); err != nil {
		t.Fatalf("Step across a killed connection: %v", err)
	}
	if got := c.Reconnects(); got != 1 {
		t.Errorf("Reconnects() = %d, want 1", got)
	}

	// With reconnection disabled the transport error surfaces instead.
	proxy.Kill()
	c.SetReconnect(ReconnectPolicy{})
	if _, err := c.Step("v0", rec); err == nil {
		t.Error("Step succeeded on a killed connection with reconnection disabled")
	} else if c.Reconnects() != 1 {
		t.Errorf("Reconnects() = %d after disabled policy, want still 1", c.Reconnects())
	}
}

func TestClientStepDoesNotRetryOverload(t *testing.T) {
	cfg := lsConfig("v0")
	cfg.QueueDepth = 1
	_, mgr, addr := newTestServer(t, Options{}, cfg)
	v, _ := mgr.Get("v0")
	release := stallVolume(t, v)
	defer release()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Step("v0", trace.Record{Kind: disk.Write, Extent: geom.Ext(0, 8)})
	if !IsOverloaded(err) {
		t.Fatalf("Step to saturated volume: %v, want overloaded", err)
	}
	if c.Reconnects() != 0 {
		t.Errorf("overload triggered %d reconnects, want 0", c.Reconnects())
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	p := ReconnectPolicy{MaxAttempts: 10, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for attempt := 0; attempt < 10; attempt++ {
		d := min(p.Base<<attempt, p.Max)
		for i := 0; i < 50; i++ {
			got := p.backoff(attempt)
			if got < d/2 || got >= d {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v)", attempt, got, d/2, d)
			}
		}
	}
}
