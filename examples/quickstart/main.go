// Quickstart: generate one of the paper's workloads, run the Figure 11
// comparison, and print the seek amplification factors.
package main

import (
	"fmt"
	"log"

	"smrseek"
)

func main() {
	// w91 is the paper's worst case: log-structured translation nearly
	// quadruples its seeks, and 64 MB of selective caching repairs it.
	recs := smrseek.MustWorkload("w91").Generate(0.5)

	c := smrseek.Characterize(recs)
	fmt.Printf("w91: %d ops (%d reads / %d writes), %.1f GB read\n",
		c.Ops, c.ReadCount, c.WriteCount, c.ReadGB())

	cmp, err := smrseek.ComparePaper(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %9s %9s %9s\n", "variant", "read SAF", "write SAF", "total SAF")
	for _, v := range cmp.Variants {
		fmt.Printf("%-14s %9.2f %9.2f %9.2f\n", v.Name, v.Read, v.Write, v.Total)
	}
}
