package stl

import (
	"errors"
	"math/rand"
	"os"
	"strings"
	"testing"

	"smrseek/internal/geom"
	"smrseek/internal/journal"
)

// journaledWrite appends the record for a write and applies it, the way
// the simulator does: append first, mutate only on success.
func journaledWrite(t *testing.T, l *LS, log *journal.Log, lba geom.Extent) bool {
	t.Helper()
	rec := journal.Record{Kind: journal.RecWrite, Lba: lba, Pba: l.Frontier()}
	if err := log.Append(rec); err != nil {
		if !errors.Is(err, journal.ErrCrashed) {
			t.Fatalf("append: %v", err)
		}
		return false
	}
	l.Write(lba)
	return true
}

func assertRecoveredEqual(t *testing.T, live, rec *LS) {
	t.Helper()
	if diff := live.Map().Diff(rec.Map()); diff != "" {
		t.Errorf("recovered map diverges: %s", diff)
	}
	if live.Frontier() != rec.Frontier() {
		t.Errorf("frontier: live %d, recovered %d", live.Frontier(), rec.Frontier())
	}
	if live.LogSectors() != rec.LogSectors() {
		t.Errorf("written: live %d, recovered %d", live.LogSectors(), rec.LogSectors())
	}
	if err := rec.Map().CheckInvariants(); err != nil {
		t.Errorf("recovered map invariants: %v", err)
	}
}

func TestRecoverReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	log, err := journal.Open(dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	live := NewLS(1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		lba := geom.Ext(rng.Int63n(4000), rng.Int63n(64)+1)
		if !journaledWrite(t, live, log, lba) {
			t.Fatal("unexpected crash")
		}
	}
	rec, st, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.FromCheckpoint || st.TornTail || st.Replayed != 500 {
		t.Errorf("stats = %+v, want 500 replayed, no checkpoint, no torn tail", st)
	}
	assertRecoveredEqual(t, live, rec)
}

func TestRecoverFromCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	log, err := journal.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	live := NewLS(0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 400; i++ {
		journaledWrite(t, live, log, geom.Ext(rng.Int63n(2000), rng.Int63n(32)+1))
		if i%100 == 99 {
			if err := log.Checkpoint(live.Snapshot()); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 400 writes, checkpoint at 100/200/300/400: nothing after the last
	// checkpoint yet. Add a tail.
	for i := 0; i < 37; i++ {
		journaledWrite(t, live, log, geom.Ext(rng.Int63n(2000), rng.Int63n(32)+1))
	}
	rec, st, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FromCheckpoint || st.Replayed != 37 || st.TornTail {
		t.Errorf("stats = %+v, want checkpoint + 37 replayed", st)
	}
	assertRecoveredEqual(t, live, rec)
}

func TestRecoverAfterTornCrash(t *testing.T) {
	// Crash on the 50th append with a torn half-record: recovery must
	// reproduce the live state, which never applied the failed write.
	for _, torn := range []int{0, 13, 40} {
		dir := t.TempDir()
		log, err := journal.Open(dir, 500)
		if err != nil {
			t.Fatal(err)
		}
		log.CrashAfter(50, torn)
		live := NewLS(500)
		rng := rand.New(rand.NewSource(3))
		crashed := false
		for i := 0; i < 100; i++ {
			if !journaledWrite(t, live, log, geom.Ext(rng.Int63n(1000), rng.Int63n(16)+1)) {
				crashed = true
				break
			}
		}
		log.Close()
		if !crashed {
			t.Fatal("crash point never fired")
		}
		rec, st, err := RecoverDir(dir)
		if err != nil {
			t.Fatalf("torn=%d: %v", torn, err)
		}
		if st.Replayed != 49 {
			t.Errorf("torn=%d: replayed %d, want 49", torn, st.Replayed)
		}
		if wantTorn := torn > 0; st.TornTail != wantTorn {
			t.Errorf("torn=%d: TornTail=%v, want %v", torn, st.TornTail, wantTorn)
		}
		assertRecoveredEqual(t, live, rec)
	}
}

func TestRecoverRejectsFrontierMismatch(t *testing.T) {
	d := journal.Data{
		Generation:   1,
		InitFrontier: 100,
		Records: []journal.Record{
			{Kind: journal.RecWrite, Lba: geom.Ext(0, 4), Pba: 100},
			{Kind: journal.RecWrite, Lba: geom.Ext(8, 4), Pba: 999}, // not the frontier
		},
	}
	if _, _, err := Recover(nil, d); err == nil || !strings.Contains(err.Error(), "frontier") {
		t.Errorf("err = %v, want frontier mismatch", err)
	}
}

func TestRecoverFrontierRecord(t *testing.T) {
	d := journal.Data{
		Generation:   1,
		InitFrontier: 100,
		Records: []journal.Record{
			{Kind: journal.RecWrite, Lba: geom.Ext(0, 4), Pba: 100},
			{Kind: journal.RecFrontier, Pba: 5000},
			{Kind: journal.RecWrite, Lba: geom.Ext(4, 2), Pba: 5000},
		},
	}
	l, st, err := Recover(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if l.Frontier() != 5002 || st.Replayed != 3 {
		t.Errorf("frontier %d replayed %d, want 5002/3", l.Frontier(), st.Replayed)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	live := NewLS(1 << 20)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		live.Write(geom.Ext(rng.Int63n(1<<18), rng.Int63n(256)+1))
	}
	snap := live.Snapshot()
	rec, st, err := Recover(&snap, journal.Data{Generation: snap.Generation + 1})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FromCheckpoint || st.Replayed != 0 {
		t.Errorf("stats = %+v", st)
	}
	assertRecoveredEqual(t, live, rec)
}

func TestRecoverDirWithVerify(t *testing.T) {
	dir := t.TempDir()
	log, err := journal.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.SetSegmentSize(2); err != nil {
		t.Fatal(err)
	}
	live := NewLS(0)
	for i := 0; i < 6; i++ {
		journaledWrite(t, live, log, geom.Ext(int64(i)*8, 8))
	}
	log.Close()

	// Clean sealed journal: verified recovery succeeds and says so.
	rec, st, err := RecoverDirWith(dir, RecoverOptions{VerifyOnRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Verified || st.SealedSegments != 3 || st.Replayed != 6 {
		t.Errorf("stats = %+v, want verified with 3 sealed segments", st)
	}
	assertRecoveredEqual(t, live, rec)

	// Unverified recovery of the same dir reports Verified=false.
	if _, st, err := RecoverDir(dir); err != nil || st.Verified {
		t.Errorf("unverified recovery: %+v, %v", st, err)
	}

	// Flip one byte inside the sealed region: verified recovery refuses
	// with ErrCorrupt; the error names the journal file.
	raw, err := os.ReadFile(journal.JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[70] ^= 0x01 // inside the first record frame
	if err := os.WriteFile(journal.JournalPath(dir), raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverDirWith(dir, RecoverOptions{VerifyOnRecover: true}); !errors.Is(err, journal.ErrCorrupt) {
		t.Errorf("verified recovery of corrupt dir: %v, want ErrCorrupt", err)
	}

	// A torn tail past the last seal is crash residue: verified recovery
	// still succeeds, replaying the verified prefix.
	raw[70] ^= 0x01 // undo
	frame := journal.MarshalRecord(journal.Record{Kind: journal.RecWrite, Lba: geom.Ext(48, 8), Pba: 48})
	torn := append(append([]byte(nil), raw...), frame[:20]...)
	if err := os.WriteFile(journal.JournalPath(dir), torn, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, st, err := RecoverDirWith(dir, RecoverOptions{VerifyOnRecover: true}); err != nil ||
		!st.TornTail || st.Replayed != 6 {
		t.Errorf("verified recovery of torn dir: %+v, %v", st, err)
	}
}

// FuzzJournalReplay feeds arbitrary bytes through the full recovery
// pipeline: journal parse (which must stop cleanly at any torn or
// corrupt tail) and replay (which must either fail or produce a map
// whose invariants hold) — never a panic.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a well-formed journal: header + a few records.
	dir := f.TempDir()
	log, err := journal.Open(dir, 100)
	if err != nil {
		f.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := log.Append(journal.Record{
			Kind: journal.RecWrite, Lba: geom.Ext(i*8, 8), Pba: 100 + i*8,
		}); err != nil {
			f.Fatal(err)
		}
	}
	log.Close()
	seed, err := os.ReadFile(journal.JournalPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5]) // torn tail
	f.Add([]byte("SMRWAL02"))

	// And a sealed journal: small segments so the seed carries several
	// seal frames for the fuzzer to mangle.
	sdir := f.TempDir()
	slog, err := journal.Open(sdir, 100)
	if err != nil {
		f.Fatal(err)
	}
	if err := slog.SetSegmentSize(2); err != nil {
		f.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		if err := slog.Append(journal.Record{
			Kind: journal.RecWrite, Lba: geom.Ext(i*8, 8), Pba: 100 + i*8,
		}); err != nil {
			f.Fatal(err)
		}
	}
	slog.Close()
	sealed, err := os.ReadFile(journal.JournalPath(sdir))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add(sealed[:len(sealed)-10]) // torn inside the final seal frame
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := journal.ReadJournal(strings.NewReader(string(data)))
		if err != nil {
			return // damaged header: rejected, fine
		}
		l, _, err := Recover(nil, d)
		if err != nil {
			return // inconsistent record stream: rejected, fine
		}
		if err := l.Map().CheckInvariants(); err != nil {
			t.Fatalf("recovered map violates invariants: %v", err)
		}
	})
}
