package core

import (
	"fmt"

	"smrseek/internal/geom"
	"smrseek/internal/lru"
)

// CacheConfig parameterizes translation-aware selective caching
// (Algorithm 3).
type CacheConfig struct {
	// CapacityBytes is the RAM devoted to cached fragments. The paper's
	// evaluation fixes 64 MB.
	CapacityBytes int64
}

// DefaultCacheConfig returns the paper's 64 MB evaluation setting.
func DefaultCacheConfig() CacheConfig { return CacheConfig{CapacityBytes: 64 << 20} }

// Validate reports configuration errors: a cache with no capacity can
// never hold a fragment, so the run would silently degenerate to plain
// LS while reporting an "LS+cache" SAF.
func (c CacheConfig) Validate() error {
	if c.CapacityBytes <= 0 {
		return fmt.Errorf("core: cache capacity %d bytes, want > 0", c.CapacityBytes)
	}
	return nil
}

// extKey identifies a cached fragment by its exact LBA extent. Fragment
// boundaries are determined by the extent map, so repeated reads of the
// same data yield the same keys until an intervening write changes the
// map — and an intervening write invalidates the overlapping entries
// anyway. Keying by exact extent can therefore produce false misses
// (e.g. a narrower re-read of a cached range) but never false hits.
type extKey struct {
	start geom.Sector
	count int64
}

func keyOf(e geom.Extent) extKey { return extKey{start: e.Start, count: e.Count} }

func (k extKey) extent() geom.Extent { return geom.Ext(k.start, k.count) }

// SelectiveCache is the translation-aware selective cache: an LRU over
// fragments observed in fragmented reads, indexed by LBA extent and
// invalidated by overlapping writes.
type SelectiveCache struct {
	cfg CacheConfig
	c   *lru.Cache[extKey, struct{}]

	// coverage is a coarse union of cached LBA ranges used to skip the
	// invalidation scan for writes that cannot overlap anything cached.
	// It is grown on insert and rebuilt after each invalidation scan, so
	// it may over-approximate (stale after evictions) but never
	// under-approximate live entries.
	coverage *geom.Set
	// spare is the set the invalidation scan rebuilds into; it swaps
	// with coverage afterwards so neither is reallocated.
	spare *geom.Set
	// keyBuf is the reusable buffer for invalidation key scans.
	keyBuf []extKey

	invalidations int64
}

// NewSelectiveCache returns a cache with the given configuration.
func NewSelectiveCache(cfg CacheConfig) *SelectiveCache {
	return &SelectiveCache{
		cfg:      cfg,
		c:        lru.New[extKey, struct{}](cfg.CapacityBytes),
		coverage: geom.NewSet(),
		spare:    geom.NewSet(),
	}
}

// Has reports whether the fragment's exact LBA extent is cached, marking
// it most recently used on a hit.
func (s *SelectiveCache) Has(lba geom.Extent) bool {
	_, ok := s.c.Get(keyOf(lba))
	return ok
}

// Insert caches the fragment's data (modelled by size only).
func (s *SelectiveCache) Insert(lba geom.Extent) {
	if lba.Empty() {
		return
	}
	s.c.Add(keyOf(lba), struct{}{}, lba.Bytes())
	s.coverage.Add(lba)
}

// Evict drops the exact-extent entry if present, without touching the
// coverage set (over-approximation is allowed). Used when an entry's
// data turns out to be corrupt and must never be served.
func (s *SelectiveCache) Evict(lba geom.Extent) {
	s.c.Remove(keyOf(lba))
}

// Invalidate drops every cached entry overlapping the written extent, so
// the cache can never serve stale data. It returns the number of entries
// dropped.
func (s *SelectiveCache) Invalidate(written geom.Extent) int {
	if written.Empty() || !s.coverage.OverlapsAny(written) {
		return 0
	}
	// Slow path: scan all keys, drop overlaps, rebuild tight coverage.
	// The key buffer and the spare set are reused across scans, so even
	// this path settles into zero allocations.
	dropped := 0
	s.keyBuf = s.c.AppendKeys(s.keyBuf[:0])
	s.spare.Clear()
	for _, k := range s.keyBuf {
		e := k.extent()
		if e.Overlaps(written) {
			s.c.Remove(k)
			dropped++
			continue
		}
		s.spare.Add(e)
	}
	s.coverage, s.spare = s.spare, s.coverage
	s.invalidations += int64(dropped)
	return dropped
}

// Hits returns the number of fragment lookups served from RAM.
func (s *SelectiveCache) Hits() int64 { return s.c.Hits() }

// Misses returns the number of fragment lookups that went to disk.
func (s *SelectiveCache) Misses() int64 { return s.c.Misses() }

// Invalidations returns the number of entries dropped by writes.
func (s *SelectiveCache) Invalidations() int64 { return s.invalidations }

// UsedBytes returns the bytes currently cached.
func (s *SelectiveCache) UsedBytes() int64 { return s.c.Used() }

// Entries returns the number of cached fragments.
func (s *SelectiveCache) Entries() int { return s.c.Len() }
