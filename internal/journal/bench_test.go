package journal

import (
	"bytes"
	"testing"

	"smrseek/internal/geom"
)

// BenchmarkAppend measures the per-record write-ahead logging cost the
// simulator pays on every journaled mutation.
func BenchmarkAppend(b *testing.B) {
	lg, err := Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer lg.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := Record{Kind: RecWrite, Lba: geom.Ext(int64(i)%100000, 8), Pba: int64(i) * 8}
		if err := lg.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadJournal measures replay-side parsing of a 10k-record log.
func BenchmarkReadJournal(b *testing.B) {
	var buf bytes.Buffer
	buf.Write(marshalHeader(1, 0, Hash{}))
	for i := 0; i < 10000; i++ {
		buf.Write(MarshalRecord(Record{Kind: RecWrite, Lba: geom.Ext(int64(i), 8), Pba: int64(i) * 8}))
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ReadJournal(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Records) != 10000 || d.Torn {
			b.Fatalf("replay parsed %d records, torn=%v", len(d.Records), d.Torn)
		}
	}
}
