package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "fig8"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mis-ordered") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunMultiple(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "table1", "fig8"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Figure 8") {
		t.Errorf("output missing sections")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no experiment names must error")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunMetricsAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-metrics-addr", "127.0.0.1:0", "-pprof", "fig8"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "serving metrics on http://127.0.0.1:") {
		t.Errorf("output missing metrics address:\n%s", out)
	}
	if !strings.Contains(out, "mis-ordered") {
		t.Errorf("experiment did not run:\n%s", out)
	}
	if err := run([]string{"-pprof", "fig8"}, &buf); err == nil {
		t.Error("-pprof without -metrics-addr accepted")
	}
}

func TestRunTimeout(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scale", "0.5", "-timeout", "1ns", "fig11"}, &buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}
