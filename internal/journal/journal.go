// Package journal provides the crash-consistency machinery for the
// simulator's log-structured translation layer: a write-ahead log of
// every extent-map mutation plus periodic checkpoints of the full map,
// mirroring how real drive-managed SMR firmware (SMORE, and the
// log-structured stores it descends from) persists its layout metadata.
//
// The journal is an append-only file of CRC32-guarded, length-prefixed
// records. Each record describes one STL mutation — a host write, a
// defrag relocation, or an explicit frontier move — with enough
// information to replay it deterministically. A checkpoint serializes
// the entire extent map, frontier and written-sector counter; writing
// one truncates the journal, bounding replay time.
//
// Torn writes are a first-class concern: a crash can leave a partial
// record at the journal tail, and recovery must detect it (short frame
// or CRC mismatch), discard it, and stop cleanly — the write-ahead
// discipline guarantees the in-memory state never ran ahead of an
// acknowledged append, so a discarded torn record was never applied.
//
// Generations make the checkpoint-then-truncate pair atomic without a
// second fsync barrier: the journal header carries a generation number,
// a checkpoint records the generation it subsumes, and the journal is
// reborn with the next generation after each checkpoint. Recovery
// replays the journal only when its generation is newer than the
// checkpoint's, so a crash BETWEEN checkpoint rename and journal
// truncation cannot double-apply records.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"smrseek/internal/geom"
)

// RecordKind classifies a journaled STL mutation.
type RecordKind uint8

const (
	// RecWrite is a host write: Lba was mapped to Pba (the frontier at
	// append time), advancing the frontier by Lba.Count.
	RecWrite RecordKind = iota + 1
	// RecRelocate is a defrag write-back: same replay semantics as
	// RecWrite, kept distinct so recovery statistics can tell host
	// traffic from maintenance traffic.
	RecRelocate
	// RecFrontier is an explicit frontier move: the frontier becomes Pba
	// and the extent is ignored.
	RecFrontier
)

// String names the kind.
func (k RecordKind) String() string {
	switch k {
	case RecWrite:
		return "write"
	case RecRelocate:
		return "relocate"
	case RecFrontier:
		return "frontier"
	}
	return "unknown"
}

// Record is one journaled STL mutation.
type Record struct {
	Kind RecordKind
	Lba  geom.Extent
	Pba  geom.Sector
}

// Valid reports whether the record's fields are replayable: a known
// kind, non-negative addresses, a positive extent for write kinds, and
// no address-space overflow. A CRC-valid frame with invalid fields is
// corruption and stops replay just like a torn tail.
func (r Record) Valid() bool {
	switch r.Kind {
	case RecWrite, RecRelocate:
		return r.Lba.Start >= 0 && r.Lba.Count > 0 && r.Pba >= 0 &&
			r.Lba.Start <= math.MaxInt64-r.Lba.Count &&
			r.Pba <= math.MaxInt64-r.Lba.Count
	case RecFrontier:
		return r.Pba >= 0
	}
	return false
}

// On-disk framing. All integers are little-endian.
//
//	journal   := header record*
//	header    := magic(8) generation(8) frontier(8) crc32(4)   [28 bytes]
//	record    := length(4) payload crc32(4)
//	payload   := kind(1) lbaStart(8) lbaCount(8) pba(8)        [25 bytes]
//
// The header CRC covers generation and frontier; a record CRC covers its
// payload. The length field counts payload bytes only.
const (
	journalMagic  = "SMRWAL01"
	headerSize    = 8 + 8 + 8 + 4
	payloadSize   = 1 + 8 + 8 + 8
	frameSize     = 4 + payloadSize + 4
	maxPayloadLen = 1 << 20 // sanity bound: larger lengths mean a torn/corrupt frame
)

// ErrCrashed is returned by Append and Checkpoint after an injected
// crash point has fired: the log behaves like a device that lost power.
var ErrCrashed = errors.New("journal: crashed (injected crash point)")

// MarshalRecord encodes a record as one framed journal entry.
func MarshalRecord(r Record) []byte {
	buf := make([]byte, frameSize)
	binary.LittleEndian.PutUint32(buf[0:4], payloadSize)
	p := buf[4 : 4+payloadSize]
	p[0] = byte(r.Kind)
	binary.LittleEndian.PutUint64(p[1:9], uint64(r.Lba.Start))
	binary.LittleEndian.PutUint64(p[9:17], uint64(r.Lba.Count))
	binary.LittleEndian.PutUint64(p[17:25], uint64(r.Pba))
	binary.LittleEndian.PutUint32(buf[4+payloadSize:], crc32.ChecksumIEEE(p))
	return buf
}

// unmarshalPayload decodes a CRC-validated payload. ok is false when the
// payload length or field values are not replayable.
func unmarshalPayload(p []byte) (Record, bool) {
	if len(p) != payloadSize {
		return Record{}, false
	}
	r := Record{
		Kind: RecordKind(p[0]),
		Lba: geom.Extent{
			Start: int64(binary.LittleEndian.Uint64(p[1:9])),
			Count: int64(binary.LittleEndian.Uint64(p[9:17])),
		},
		Pba: int64(binary.LittleEndian.Uint64(p[17:25])),
	}
	return r, r.Valid()
}

// marshalHeader encodes the journal file header.
func marshalHeader(generation uint64, frontier geom.Sector) []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:8], journalMagic)
	binary.LittleEndian.PutUint64(buf[8:16], generation)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(frontier))
	binary.LittleEndian.PutUint32(buf[24:28], crc32.ChecksumIEEE(buf[8:24]))
	return buf
}

func unmarshalHeader(buf []byte) (generation uint64, frontier geom.Sector, err error) {
	if len(buf) < headerSize {
		return 0, 0, fmt.Errorf("journal: short header (%d bytes)", len(buf))
	}
	if string(buf[0:8]) != journalMagic {
		return 0, 0, fmt.Errorf("journal: bad magic %q", buf[0:8])
	}
	if crc32.ChecksumIEEE(buf[8:24]) != binary.LittleEndian.Uint32(buf[24:28]) {
		return 0, 0, fmt.Errorf("journal: header checksum mismatch")
	}
	generation = binary.LittleEndian.Uint64(buf[8:16])
	frontier = int64(binary.LittleEndian.Uint64(buf[16:24]))
	if frontier < 0 {
		return 0, 0, fmt.Errorf("journal: negative header frontier %d", frontier)
	}
	return generation, frontier, nil
}

// Data is the parsed content of one journal stream.
type Data struct {
	// Generation is the journal's generation number; records apply only
	// when it exceeds the checkpoint's generation.
	Generation uint64
	// InitFrontier is the frontier position recorded at journal birth,
	// used when no checkpoint is available.
	InitFrontier geom.Sector
	// Records are the complete, CRC-valid records in append order.
	Records []Record
	// Torn reports that the stream ended in a torn or corrupt record,
	// which was discarded. Everything in Records precedes it.
	Torn bool
}

// ReadJournal parses a journal stream, stopping cleanly at a torn or
// corrupt tail. A missing or corrupt HEADER is an error (the header is
// written whole at journal birth and never rewritten, so damage there is
// not a torn append); anything wrong after the header marks Torn.
func ReadJournal(r io.Reader) (Data, error) {
	var d Data
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return d, fmt.Errorf("journal: reading header: %w", err)
	}
	gen, frontier, err := unmarshalHeader(hdr)
	if err != nil {
		return d, err
	}
	d.Generation, d.InitFrontier = gen, frontier
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				return d, nil // clean end of journal
			}
			d.Torn = true // partial length prefix
			return d, nil
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxPayloadLen {
			d.Torn = true // implausible length: torn or corrupt frame
			return d, nil
		}
		frame := make([]byte, int(n)+4)
		if _, err := io.ReadFull(r, frame); err != nil {
			d.Torn = true // partial payload or CRC
			return d, nil
		}
		payload, sum := frame[:n], binary.LittleEndian.Uint32(frame[n:])
		if crc32.ChecksumIEEE(payload) != sum {
			d.Torn = true
			return d, nil
		}
		rec, ok := unmarshalPayload(payload)
		if !ok {
			d.Torn = true // CRC-valid but not replayable: corrupt tail
			return d, nil
		}
		d.Records = append(d.Records, rec)
	}
}

// File names inside a journal directory.
const (
	// JournalFile is the append-only write-ahead log.
	JournalFile = "journal.wal"
	// CheckpointFile is the most recent complete checkpoint.
	CheckpointFile = "checkpoint.ckpt"
	// checkpointTmp is the staging name; a checkpoint becomes visible
	// only via rename, so a crash mid-checkpoint leaves the old one.
	checkpointTmp = "checkpoint.tmp"
)

// JournalPath returns the journal file path inside dir.
func JournalPath(dir string) string { return filepath.Join(dir, JournalFile) }

// CheckpointPath returns the checkpoint file path inside dir.
func CheckpointPath(dir string) string { return filepath.Join(dir, CheckpointFile) }

// Failer injects append failures, modelling a faulty journal device. It
// is consulted before any bytes are written; a non-nil error fails the
// append with nothing persisted, so the caller may retry (transient
// faults) or give up. seq is the 1-based sequence number the append
// would get.
type Failer func(seq int64, rec Record) error

// Log is an open journal directory: the write-ahead log file plus the
// checkpoint alongside it. It is not safe for concurrent use; each
// simulator owns one.
type Log struct {
	dir string
	f   *os.File

	generation uint64
	appends    int64 // acknowledged appends by this process
	sinceCkpt  int64 // records in the journal file since its header
	ckpts      int64 // checkpoints written by this process

	failer     Failer
	crashAfter int64 // 1-based append seq that crashes; 0 = never
	tornBytes  int
	crashed    bool
}

// Open opens (or creates) the journal in dir, creating the directory as
// needed. A fresh journal is born with initFrontier in its header and a
// generation one past the checkpoint's (or 1). An existing journal is
// opened for append; its records are scanned to validate the file and
// recount the checkpoint age. An existing torn tail is rejected —
// recover first, checkpoint, and the reborn journal is clean.
func Open(dir string, initFrontier geom.Sector) (*Log, error) {
	if initFrontier < 0 {
		return nil, fmt.Errorf("journal: negative initial frontier %d", initFrontier)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	l := &Log{dir: dir}
	path := JournalPath(dir)
	if data, err := os.ReadFile(path); err == nil {
		d, err := ReadJournal(newByteReader(data))
		if err != nil {
			return nil, err
		}
		if d.Torn {
			return nil, fmt.Errorf("journal: %s has a torn tail; recover before appending", path)
		}
		l.generation = d.Generation
		l.sinceCkpt = int64(len(d.Records))
		l.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			return nil, err
		}
		return l, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	gen := uint64(1)
	if snap, err := readCheckpointFile(CheckpointPath(dir)); err == nil && snap != nil {
		gen = snap.Generation + 1
	} else if err != nil {
		return nil, fmt.Errorf("journal: existing checkpoint unreadable: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(marshalHeader(gen, initFrontier)); err != nil {
		f.Close()
		return nil, err
	}
	l.generation, l.f = gen, f
	return l, nil
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Generation returns the journal's current generation number.
func (l *Log) Generation() uint64 { return l.generation }

// Appends returns the appends acknowledged by this process.
func (l *Log) Appends() int64 { return l.appends }

// SinceCheckpoint returns the records in the journal file beyond the
// last checkpoint — the replay work a crash right now would cost.
func (l *Log) SinceCheckpoint() int64 { return l.sinceCkpt }

// Checkpoints returns the checkpoints written by this process.
func (l *Log) Checkpoints() int64 { return l.ckpts }

// Crashed reports whether an injected crash point has fired.
func (l *Log) Crashed() bool { return l.crashed }

// SetFailer installs an append fault hook (nil clears it).
func (l *Log) SetFailer(f Failer) { l.failer = f }

// CrashAfter arms a crash point: append number n (1-based) persists only
// tornBytes bytes of its frame — a torn write — and fails with
// ErrCrashed; the log is dead thereafter. tornBytes is clamped to the
// frame size minus one so the torn record is never replayable, and to
// zero from below.
func (l *Log) CrashAfter(n int64, tornBytes int) {
	l.crashAfter, l.tornBytes = n, tornBytes
}

// Append write-ahead-logs one record. The caller must apply the
// mutation only after Append returns nil: a failed append persisted
// either nothing (failer fault) or an unreplayable torn prefix (crash).
func (l *Log) Append(rec Record) error {
	if l.crashed {
		return ErrCrashed
	}
	if !rec.Valid() {
		return fmt.Errorf("journal: unreplayable record %+v", rec)
	}
	seq := l.appends + 1
	if l.failer != nil {
		if err := l.failer(seq, rec); err != nil {
			return err
		}
	}
	frame := MarshalRecord(rec)
	if l.crashAfter > 0 && seq >= l.crashAfter {
		torn := l.tornBytes
		if torn < 0 {
			torn = 0
		}
		if torn >= len(frame) {
			torn = len(frame) - 1
		}
		if torn > 0 {
			if _, err := l.f.Write(frame[:torn]); err != nil {
				return err
			}
		}
		l.crashed = true
		return ErrCrashed
	}
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.appends++
	l.sinceCkpt++
	return nil
}

// Checkpoint atomically persists the snapshot and truncates the
// journal. The snapshot is staged to a temporary file, synced, and
// renamed over the checkpoint; only then is the journal reborn empty
// with the next generation. A crash anywhere in between leaves a
// recoverable pair (see the package comment on generations).
func (l *Log) Checkpoint(snap Snapshot) error {
	if l.crashed {
		return ErrCrashed
	}
	snap.Generation = l.generation
	tmp := filepath.Join(l.dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if err := WriteCheckpoint(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, CheckpointPath(l.dir)); err != nil {
		return err
	}
	// The checkpoint is durable; rebirth the journal under the next
	// generation. Stale records left by a crash before this point are
	// skipped at recovery because their generation is now old.
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.generation++
	if _, err := l.f.Write(marshalHeader(l.generation, snap.Frontier)); err != nil {
		return err
	}
	l.sinceCkpt = 0
	l.ckpts++
	return nil
}

// Sync flushes the journal file to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Close closes the journal file. The log is unusable afterwards.
func (l *Log) Close() error { return l.f.Close() }

// newByteReader avoids importing bytes just for one reader.
type byteReader struct {
	b []byte
	i int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
