package core

import (
	"fmt"

	"smrseek/internal/geom"
)

// PrefetchConfig parameterizes translation-aware look-ahead-behind
// prefetching (Algorithm 2).
type PrefetchConfig struct {
	// LookBehindSectors is how far before a fragment's physical start the
	// drive reads into its buffer while the platter rotates toward the
	// requested sector.
	LookBehindSectors int64
	// LookAheadSectors is how far past the fragment's physical end the
	// drive keeps reading after completing the request.
	LookAheadSectors int64
	// BufferBytes bounds the drive buffer devoted to prefetched data;
	// the oldest windows are dropped first (drive buffers are small FIFO
	// segment pools, not LRU caches).
	BufferBytes int64
}

// DefaultPrefetchConfig uses a 256 KB window on each side — matching the
// paper's mis-ordered-write horizon (§IV-B) — and a 32 MB buffer, well
// inside the 128–256 MB of DRAM the paper notes on current drives.
func DefaultPrefetchConfig() PrefetchConfig {
	return PrefetchConfig{
		LookBehindSectors: 256 * 1024 / geom.SectorSize,
		LookAheadSectors:  256 * 1024 / geom.SectorSize,
		BufferBytes:       32 << 20,
	}
}

// Validate reports configuration errors: negative windows, a buffer
// that cannot hold anything, or a zero-width window pair (which buffers
// only the fragment itself — not prefetching, and almost certainly a
// unit mistake in the sector counts).
func (c PrefetchConfig) Validate() error {
	if c.LookBehindSectors < 0 || c.LookAheadSectors < 0 {
		return fmt.Errorf("core: negative prefetch window (behind %d, ahead %d)", c.LookBehindSectors, c.LookAheadSectors)
	}
	if c.LookBehindSectors == 0 && c.LookAheadSectors == 0 {
		return fmt.Errorf("core: prefetch windows are both zero; nothing beyond the fragment itself would ever be buffered")
	}
	if c.BufferBytes <= 0 {
		return fmt.Errorf("core: prefetch buffer %d bytes, want > 0", c.BufferBytes)
	}
	return nil
}

// Prefetcher models the drive's look-ahead-behind buffer over *physical*
// addresses. In a log-structured layer the log is immutable (old physical
// locations are never rewritten), so buffered ranges can never go stale.
type Prefetcher struct {
	cfg PrefetchConfig
	// windows[head:] is the FIFO of live windows; evictions advance head
	// and the backing array is compacted once the dead prefix dominates,
	// so the queue reuses its storage instead of growing forever.
	windows []geom.Extent
	head    int
	covered *geom.Set // union of live windows, for containment checks
	bytes   int64

	hits, misses int64
}

// NewPrefetcher returns a prefetcher with the given configuration.
func NewPrefetcher(cfg PrefetchConfig) *Prefetcher {
	return &Prefetcher{cfg: cfg, covered: geom.NewSet()}
}

// Covers reports whether the physical extent is entirely buffered, and
// updates hit statistics.
func (p *Prefetcher) Covers(phys geom.Extent) bool {
	if p.covered.Contains(phys) {
		p.hits++
		return true
	}
	p.misses++
	return false
}

// Fill records that the drive serviced a read at phys and, per Algorithm
// 2, buffered LookBehind sectors before it and LookAhead sectors after it.
func (p *Prefetcher) Fill(phys geom.Extent) {
	if phys.Empty() {
		return
	}
	start := phys.Start - p.cfg.LookBehindSectors
	if start < 0 {
		start = 0
	}
	w := geom.Span(start, phys.End()+p.cfg.LookAheadSectors)
	p.windows = append(p.windows, w)
	p.covered.Add(w)
	p.bytes += w.Bytes()
	for p.bytes > p.cfg.BufferBytes && len(p.windows)-p.head > 1 {
		p.evictOldest()
	}
}

// evictOldest drops the oldest window and rebuilds coverage, since an
// overlapping newer window must keep its sectors buffered.
func (p *Prefetcher) evictOldest() {
	old := p.windows[p.head]
	p.head++
	p.bytes -= old.Bytes()
	p.covered.Clear()
	for _, w := range p.windows[p.head:] {
		p.covered.Add(w)
	}
	// Compact once the dead prefix is most of the array, so append stops
	// growing the backing storage.
	if p.head > 16 && p.head*2 >= len(p.windows) {
		n := copy(p.windows, p.windows[p.head:])
		p.windows = p.windows[:n]
		p.head = 0
	}
}

// Hits returns the number of fragment accesses served from the buffer.
func (p *Prefetcher) Hits() int64 { return p.hits }

// Misses returns the number of coverage checks that missed.
func (p *Prefetcher) Misses() int64 { return p.misses }

// BufferedBytes returns the bytes currently accounted to the buffer.
func (p *Prefetcher) BufferedBytes() int64 { return p.bytes }
