// Package trace defines the block-trace record model shared by the
// simulator, the synthetic workload generators and the on-disk trace
// formats (MSR Cambridge CSV and a documented CloudPhysics-style CSV).
//
// A trace is a temporally ordered stream of Records. Streams are consumed
// through the Reader interface so multi-gigabyte trace files and
// generated workloads look identical to the simulator.
package trace

import (
	"fmt"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// Record is one block I/O operation.
type Record struct {
	// Time is the operation timestamp in nanoseconds from an arbitrary
	// epoch. Synthetic workloads use a virtual clock.
	Time int64
	// Kind is Read or Write.
	Kind disk.OpKind
	// Extent is the LBA range of the operation.
	Extent geom.Extent
}

// String renders the record for diagnostics.
func (r Record) String() string {
	return fmt.Sprintf("%d %s %v", r.Time, r.Kind, r.Extent)
}

// Reader yields records in temporal order. Next returns ok=false at the
// end of the stream; Err reports any underlying failure afterwards.
type Reader interface {
	Next() (Record, bool)
	Err() error
}

// SliceReader adapts an in-memory record slice to the Reader interface.
type SliceReader struct {
	recs []Record
	i    int
}

// NewSliceReader returns a Reader over recs. The slice is not copied.
func NewSliceReader(recs []Record) *SliceReader { return &SliceReader{recs: recs} }

// Next implements Reader.
func (s *SliceReader) Next() (Record, bool) {
	if s.i >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// Err implements Reader; a slice reader never fails.
func (s *SliceReader) Err() error { return nil }

// Reset rewinds the reader to the beginning.
func (s *SliceReader) Reset() { s.i = 0 }

// ReadAll drains a Reader into a slice.
func ReadAll(r Reader) ([]Record, error) {
	var out []Record
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out, r.Err()
}

// MaxLBA returns the highest end LBA across all records (the write
// frontier of a log-structured device starts above it), or 0 for an empty
// trace.
func MaxLBA(recs []Record) geom.Sector {
	var m geom.Sector
	for _, r := range recs {
		if e := r.Extent.End(); e > m {
			m = e
		}
	}
	return m
}
