package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"smrseek/internal/extmap"
	"smrseek/internal/geom"
)

// Snapshot is the serializable state of a log-structured translation
// layer at one instant: everything needed to rebuild the layer without
// replaying any journal records.
type Snapshot struct {
	// Generation is the journal generation this snapshot subsumes. A
	// journal with a generation <= this one predates the snapshot and
	// must not be replayed over it. Log.Checkpoint fills it in.
	Generation uint64
	// Chain is the seal-chain head at checkpoint time: the anchor of the
	// journal generation that follows. It commits every record sealed in
	// any generation up to this checkpoint, making the checkpoint+journal
	// pair one verifiable history. Log.Checkpoint fills it in.
	Chain Hash
	// Frontier is the write frontier position.
	Frontier geom.Sector
	// Written is the total sectors ever appended to the log.
	Written int64
	// Mappings are the extent map's mappings in ascending LBA order.
	Mappings []extmap.Mapping
}

// Checkpoint on-disk format. All integers are little-endian.
//
//	checkpoint := magic(8) generation(8) frontier(8) written(8) chain(32)
//	              nMappings(8) mapping* crc32(4)
//	mapping    := lbaStart(8) lbaCount(8) pba(8)                [24 bytes]
//
// The trailing CRC covers every byte after the magic. A checkpoint is
// written to a temporary file and renamed into place, so readers only
// ever see a complete file — the CRC guards against the remaining ways
// a file can rot (bad media, partial rename on non-atomic filesystems).
const (
	checkpointMagic = "SMRCKP02"
	ckptFixedSize   = 8 + 8 + 8 + 8 + 32 + 8
	mappingSize     = 8 + 8 + 8
	maxCkptMappings = 1 << 28 // preallocation sanity bound (~6 GiB of mappings)
)

// WriteCheckpoint serializes the snapshot to w.
func WriteCheckpoint(w io.Writer, snap Snapshot) error {
	buf := make([]byte, ckptFixedSize+mappingSize*len(snap.Mappings)+4)
	copy(buf[0:8], checkpointMagic)
	binary.LittleEndian.PutUint64(buf[8:16], snap.Generation)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(snap.Frontier))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(snap.Written))
	copy(buf[32:64], snap.Chain[:])
	binary.LittleEndian.PutUint64(buf[64:72], uint64(len(snap.Mappings)))
	off := ckptFixedSize
	for _, m := range snap.Mappings {
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(m.Lba.Start))
		binary.LittleEndian.PutUint64(buf[off+8:off+16], uint64(m.Lba.Count))
		binary.LittleEndian.PutUint64(buf[off+16:off+24], uint64(m.Pba))
		off += mappingSize
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[8:off]))
	_, err := w.Write(buf)
	return err
}

// ReadCheckpoint parses a checkpoint stream. Unlike the journal, a
// checkpoint is all-or-nothing: any damage is an error, never a partial
// result, because the rename protocol means a visible checkpoint was
// written completely.
func ReadCheckpoint(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	fixed := make([]byte, ckptFixedSize)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return snap, fmt.Errorf("journal: reading checkpoint header: %w", err)
	}
	if string(fixed[0:8]) != checkpointMagic {
		return snap, fmt.Errorf("journal: bad checkpoint magic %q", fixed[0:8])
	}
	n := binary.LittleEndian.Uint64(fixed[64:72])
	if n > maxCkptMappings {
		return snap, fmt.Errorf("journal: implausible checkpoint mapping count %d", n)
	}
	rest := make([]byte, int(n)*mappingSize+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return snap, fmt.Errorf("journal: reading checkpoint body: %w", err)
	}
	crc := crc32.ChecksumIEEE(fixed[8:])
	crc = crc32.Update(crc, crc32.IEEETable, rest[:len(rest)-4])
	if crc != binary.LittleEndian.Uint32(rest[len(rest)-4:]) {
		return snap, fmt.Errorf("journal: checkpoint checksum mismatch")
	}
	snap.Generation = binary.LittleEndian.Uint64(fixed[8:16])
	snap.Frontier = int64(binary.LittleEndian.Uint64(fixed[16:24]))
	snap.Written = int64(binary.LittleEndian.Uint64(fixed[24:32]))
	copy(snap.Chain[:], fixed[32:64])
	if snap.Frontier < 0 || snap.Written < 0 {
		return snap, fmt.Errorf("journal: negative checkpoint counters (frontier=%d written=%d)",
			snap.Frontier, snap.Written)
	}
	snap.Mappings = make([]extmap.Mapping, n)
	var prevEnd geom.Sector
	for i := range snap.Mappings {
		off := i * mappingSize
		m := extmap.Mapping{
			Lba: geom.Extent{
				Start: int64(binary.LittleEndian.Uint64(rest[off : off+8])),
				Count: int64(binary.LittleEndian.Uint64(rest[off+8 : off+16])),
			},
			Pba: int64(binary.LittleEndian.Uint64(rest[off+16 : off+24])),
		}
		if m.Lba.Start < 0 || m.Lba.Count <= 0 || m.Pba < 0 || m.Lba.Start < prevEnd {
			return snap, fmt.Errorf("journal: checkpoint mapping %d invalid or out of order: %v", i, m)
		}
		prevEnd = m.Lba.End()
		snap.Mappings[i] = m
	}
	return snap, nil
}

// readCheckpointFile loads a checkpoint file. A missing file returns
// (nil, nil): no checkpoint yet is a normal state, damage is not.
func readCheckpointFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := ReadCheckpoint(f)
	if err != nil {
		return nil, err
	}
	return &snap, nil
}

// LoadDir reads the checkpoint/journal pair from a journal directory,
// as left by a crash (or a clean shutdown): the checkpoint if present,
// and the journal's parsed records — already filtered by the generation
// rule, so d.Records is exactly the sequence to replay on top of the
// snapshot. Either file may be absent; both absent is an error.
//
// Damage inside the journal's sealed region surfaces as a *CorruptError
// even here, checkpoint or not: LoadDir is lenient only about crash
// signatures (torn tails, a half-written header under a valid
// checkpoint, a stale pre-checkpoint generation), never about bytes the
// seal chain had already committed.
func LoadDir(dir string) (*Snapshot, Data, error) { return LoadDirWorkers(dir, 0) }

// LoadDirWorkers is LoadDir with an explicit verification worker count
// for the journal scan (see ScanBytesWorkers): workers <= 0 uses
// DefaultRecoveryWorkers, 1 scans inline. The result is bit-identical
// at any worker count.
func LoadDirWorkers(dir string, workers int) (*Snapshot, Data, error) {
	snap, err := readCheckpointFile(CheckpointPath(dir))
	if err != nil {
		return nil, Data{}, err
	}
	raw, err := os.ReadFile(JournalPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		if snap == nil {
			return nil, Data{}, fmt.Errorf("journal: %s has neither checkpoint nor journal", dir)
		}
		return snap, Data{Generation: snap.Generation}, nil
	}
	if err != nil {
		return nil, Data{}, err
	}
	// Check staleness from the header alone before parsing content: a
	// crash between checkpoint rename and journal truncation leaves a
	// whole stale generation behind, and nothing in it — damaged or not —
	// matters once the checkpoint subsumes it.
	if gen, _, _, herr := unmarshalHeader(raw); herr == nil && snap != nil && gen <= snap.Generation {
		return snap, Data{Generation: gen}, nil
	}
	d, err := ScanBytesWorkers(raw, workers)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			return nil, Data{}, err
		}
		if snap == nil {
			return nil, Data{}, err
		}
		// A corrupt journal header alongside a valid checkpoint: the
		// checkpoint is the durable truth; treat the journal as torn.
		return snap, Data{Generation: snap.Generation, Torn: true}, nil
	}
	return snap, d, nil
}
