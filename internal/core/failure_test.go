package core

import (
	"errors"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
)

// failingReader yields a few records then fails, modelling a truncated
// or corrupt trace file.
type failingReader struct {
	left int
	err  error
}

func (f *failingReader) Next() (trace.Record, bool) {
	if f.left <= 0 {
		return trace.Record{}, false
	}
	f.left--
	return trace.Record{Kind: disk.Read, Extent: geom.Ext(int64(f.left)*100, 8)}, true
}

func (f *failingReader) Err() error { return f.err }

func TestRunPropagatesReaderError(t *testing.T) {
	sentinel := errors.New("trace corrupted at line 42")
	sim, err := NewSimulator(Config{LogStructured: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(&failingReader{left: 3, err: sentinel})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run err = %v, want the reader's error", err)
	}
	// The records consumed before the failure were still processed.
	if got := sim.Stats().Reads; got != 3 {
		t.Errorf("processed %d records before failure, want 3", got)
	}
}

func TestCompareAcceptsCustomLayers(t *testing.T) {
	// Compare leaves variants with a CustomLayer as-is (no forced
	// LogStructured), so alternative layers can be compared against the
	// same NoLS baseline.
	recs := []trace.Record{
		{Kind: disk.Write, Extent: geom.Ext(0, 8)},
		{Kind: disk.Read, Extent: geom.Ext(0, 8)},
	}
	cmp, err := Compare(recs, Config{CustomLayer: stl.NewLS(1000)})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Variants) != 1 || cmp.Variants[0].Name != "LS" {
		t.Fatalf("variants = %+v", cmp.Variants)
	}
	// Invalid combinations still surface errors.
	if _, err := Compare(recs, Config{FrontierStart: -1, CustomLayer: stl.NewLS(0)}); err == nil {
		t.Fatal("invalid config must surface an error")
	}
}

// TestConservationProperty: for any LS run without mechanisms, the disk
// must read exactly the sectors the host requested and write exactly the
// sectors the host wrote.
func TestConservationProperty(t *testing.T) {
	recs := []trace.Record{}
	seed := uint64(5)
	var wantRead, wantWritten int64
	for i := 0; i < 2000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		n := int64(seed%128 + 1)
		lba := int64(seed % 100000)
		kind := disk.Read
		if seed%3 == 0 {
			kind = disk.Write
			wantWritten += n
		} else {
			wantRead += n
		}
		recs = append(recs, trace.Record{Kind: kind, Extent: geom.Ext(lba, n)})
	}
	for _, cfg := range []Config{{}, {LogStructured: true, FrontierStart: 200000}} {
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(trace.NewSliceReader(recs))
		if err != nil {
			t.Fatal(err)
		}
		if st.Disk.ReadSectors != wantRead {
			t.Errorf("%s: read %d sectors, want %d", cfg.Name(), st.Disk.ReadSectors, wantRead)
		}
		if st.Disk.WriteSectors != wantWritten {
			t.Errorf("%s: wrote %d sectors, want %d", cfg.Name(), st.Disk.WriteSectors, wantWritten)
		}
	}
}

// TestCacheNeverServesStaleData drives interleaved writes and reads and
// asserts, via the read observer, that any fragment the cache could
// serve was inserted after the last write overlapping it.
func TestCacheNeverServesStaleData(t *testing.T) {
	c := DefaultCacheConfig()
	sim, err := NewSimulator(Config{LogStructured: true, FrontierStart: 1 << 20, Cache: &c})
	if err != nil {
		t.Fatal(err)
	}
	// Version counter per LBA region: a write bumps it. If the cache
	// served a fragment whose insertion version is older than the
	// current version, it would be stale. We detect staleness indirectly:
	// after every write, an immediate fragmented read must touch the
	// disk for the overlapping fragment (cache miss), which shows up as
	// read seeks increasing.
	seed := uint64(77)
	for i := 0; i < 500; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		lba := int64(seed % 5000)
		sim.Step(trace.Record{Kind: disk.Write, Extent: geom.Ext(lba, 4)})
		before := sim.Stats().Disk.ReadSectors
		sim.Step(trace.Record{Kind: disk.Read, Extent: geom.Ext(lba, 4)})
		after := sim.Stats().Disk.ReadSectors
		if after == before {
			t.Fatalf("step %d: read of just-written LBA %d served without touching disk", i, lba)
		}
	}
}
