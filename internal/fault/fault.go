// Package fault is a deterministic, seeded fault injector for the disk
// model. Real SMR drives surface latent sector errors, transient read
// faults and occasional write failures; the simulator is only credible
// as a robustness testbed when that misbehaviour can be injected,
// observed and — with a fixed seed — reproduced byte for byte.
//
// The injector distinguishes three failure classes:
//
//   - transient faults: a read or write attempt fails with the
//     configured probability, and an immediate retry of the same extent
//     re-rolls (so bounded retries usually recover);
//   - media errors: persistent per-PBA-range failures that no retry can
//     clear, modelling grown defects;
//   - poisoned buffers: data served from a RAM cache or drive buffer is
//     corrupt with the configured probability, forcing the consumer to
//     fall back to the medium.
//
// All randomness comes from a SplitMix64 stream seeded by Config.Seed,
// so a faulted run is exactly reproducible across processes and Go
// versions.
package fault

import (
	"errors"
	"fmt"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// Transient is a retryable fault: the next attempt re-rolls.
	Transient Kind = iota + 1
	// Media is a persistent media error on a configured PBA range;
	// retries never succeed.
	Media
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Media:
		return "media"
	}
	return "unknown"
}

// Error is the error returned for an injected fault.
type Error struct {
	Kind   Kind
	Op     disk.OpKind
	Extent geom.Extent // physical extent of the failed attempt
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: %s %s error at %v", e.Kind, e.Op, e.Extent)
}

// IsTransient reports whether err is an injected fault a retry may
// clear. The nil check is not redundant: errors.As heap-allocates its
// target, and hot paths call this once per op with err almost always
// nil.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var fe *Error
	return errors.As(err, &fe) && fe.Kind == Transient
}

// IsMedia reports whether err is a persistent media error.
func IsMedia(err error) bool {
	if err == nil {
		return false
	}
	var fe *Error
	return errors.As(err, &fe) && fe.Kind == Media
}

// DefaultMaxRetries is the retry bound used when Config.MaxRetries is 0.
const DefaultMaxRetries = 3

// Config parameterizes the injector. The zero value injects nothing.
type Config struct {
	// Seed seeds the deterministic fault stream. Two runs with the same
	// configuration and workload produce identical fault sequences.
	Seed uint64
	// ReadRate is the per-attempt probability of a transient read fault.
	ReadRate float64
	// WriteRate is the per-attempt probability of a transient write
	// fault.
	WriteRate float64
	// PoisonRate is the per-serve probability that a cached or buffered
	// copy is corrupt and must be discarded.
	PoisonRate float64
	// MediaRanges lists physical extents with persistent media errors:
	// every attempt touching one fails, and retries never help.
	MediaRanges []geom.Extent
	// MaxRetries bounds the retries a simulator should spend on a
	// transient fault; 0 means DefaultMaxRetries.
	MaxRetries int
}

// Enabled reports whether the configuration can inject anything.
func (c Config) Enabled() bool {
	return c.ReadRate > 0 || c.WriteRate > 0 || c.PoisonRate > 0 || len(c.MediaRanges) > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"ReadRate", c.ReadRate}, {"WriteRate", c.WriteRate}, {"PoisonRate", c.PoisonRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: negative MaxRetries %d", c.MaxRetries)
	}
	for _, e := range c.MediaRanges {
		if e.Start < 0 || e.Count <= 0 {
			return fmt.Errorf("fault: invalid media range %v (want start >= 0, count > 0)", e)
		}
	}
	return nil
}

// Counters tallies injected faults by class.
type Counters struct {
	TransientReads  int64 // transient read faults injected
	TransientWrites int64 // transient write faults injected
	MediaErrors     int64 // attempts rejected by a media range
	Poisoned        int64 // buffer/cache serves declared corrupt
}

// Total returns all faults injected.
func (c Counters) Total() int64 {
	return c.TransientReads + c.TransientWrites + c.MediaErrors + c.Poisoned
}

// Injector produces the fault stream. It is not safe for concurrent use;
// each simulator owns one, which is what keeps runs reproducible.
type Injector struct {
	cfg      Config
	rng      uint64
	counters Counters
}

// New returns an injector for the configuration.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, rng: cfg.Seed}, nil
}

// next steps the SplitMix64 stream.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll consumes one stream value and returns true with probability p.
func (in *Injector) roll(p float64) bool {
	v := float64(in.next()>>11) * (1.0 / (1 << 53))
	return v < p
}

// CheckAccess decides the fate of one I/O attempt at the physical
// extent. It implements disk.FaultChecker. Media ranges are checked
// first (persistent, deterministic in the extent); otherwise the
// configured transient rate for the operation kind is rolled.
func (in *Injector) CheckAccess(kind disk.OpKind, ext geom.Extent) error {
	for _, m := range in.cfg.MediaRanges {
		if ext.Overlaps(m) {
			in.counters.MediaErrors++
			return &Error{Kind: Media, Op: kind, Extent: ext}
		}
	}
	rate := in.cfg.ReadRate
	if kind == disk.Write {
		rate = in.cfg.WriteRate
	}
	if rate > 0 && in.roll(rate) {
		if kind == disk.Write {
			in.counters.TransientWrites++
		} else {
			in.counters.TransientReads++
		}
		return &Error{Kind: Transient, Op: kind, Extent: ext}
	}
	return nil
}

// Poisoned reports whether a copy about to be served from a cache or
// drive buffer is corrupt. The consumer must discard the copy and fall
// back to the medium.
func (in *Injector) Poisoned() bool {
	if in.cfg.PoisonRate <= 0 {
		return false
	}
	if in.roll(in.cfg.PoisonRate) {
		in.counters.Poisoned++
		return true
	}
	return false
}

// MaxRetries returns the retry bound for transient faults.
func (in *Injector) MaxRetries() int {
	if in.cfg.MaxRetries > 0 {
		return in.cfg.MaxRetries
	}
	return DefaultMaxRetries
}

// Counters returns the injection tallies so far.
func (in *Injector) Counters() Counters { return in.counters }
