package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smrseek"
)

func TestGenerateToFileAndReadBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := run([]string{"-workload", "ts_0", "-scale", "0.05", "-format", "cp", "-o", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := smrseek.OpenTrace(f, smrseek.FormatCP, -1)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := smrseek.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 100 {
		t.Errorf("only %d records written", len(recs))
	}
}

func TestGenerateMSRFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.msr")
	if err := run([]string{"-workload", "ts_0", "-scale", "0.05", "-format", "msr", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ",smrseek,0,") {
		t.Errorf("MSR format unexpected: %.100s", data)
	}
}

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -workload must error")
	}
	if err := run([]string{"-workload", "bogus"}); err == nil {
		t.Error("unknown workload must error")
	}
	if err := run([]string{"-workload", "ts_0", "-o", "/nonexistent/dir/x"}); err == nil {
		t.Error("unwritable output must error")
	}
	if err := run([]string{"-workload", "ts_0", "-scale", "0.01", "-format", "bogus", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown format must error")
	}
}
