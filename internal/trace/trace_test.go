package trace

import (
	"bytes"
	"strings"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

func TestSliceReader(t *testing.T) {
	recs := []Record{
		{Time: 1, Kind: disk.Read, Extent: geom.Ext(0, 8)},
		{Time: 2, Kind: disk.Write, Extent: geom.Ext(8, 8)},
	}
	r := NewSliceReader(recs)
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("ReadAll = %v", got)
	}
	if _, ok := r.Next(); ok {
		t.Error("exhausted reader should return false")
	}
	r.Reset()
	if rec, ok := r.Next(); !ok || rec != recs[0] {
		t.Error("Reset did not rewind")
	}
}

func TestMaxLBA(t *testing.T) {
	recs := []Record{
		{Extent: geom.Ext(100, 8)},
		{Extent: geom.Ext(0, 50)},
	}
	if got := MaxLBA(recs); got != 108 {
		t.Errorf("MaxLBA = %d, want 108", got)
	}
	if got := MaxLBA(nil); got != 0 {
		t.Errorf("MaxLBA(nil) = %d", got)
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Time: 5, Kind: disk.Write, Extent: geom.Ext(1, 2)}
	if got := r.String(); got != "5 write [1,3)" {
		t.Errorf("String = %q", got)
	}
}

const msrSample = `128166372003061629,hm,1,Read,383496192,32768,41286
128166372016382155,hm,1,Write,2822144,4096,584
# comment line

128166372026382245,hm,0,Read,0,512,100
128166372036382255,hm,1,Write,1024,0,100
`

func TestMSRReaderParsesAndFilters(t *testing.T) {
	r := NewMSRReader(strings.NewReader(msrSample), 1)
	recs, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	// disk 0 record filtered out; zero-size write dropped.
	if len(recs) != 2 {
		t.Fatalf("got %d records: %v", len(recs), recs)
	}
	if recs[0].Kind != disk.Read || recs[0].Extent != geom.Ext(383496192/512, 32768/512) {
		t.Errorf("rec0 = %v", recs[0])
	}
	// MSR FILETIME stamps are rebased to the first record.
	if recs[0].Time != 0 {
		t.Errorf("rec0 time = %d, want 0", recs[0].Time)
	}
	if want := int64(128166372016382155-128166372003061629) * 100; recs[1].Time != want {
		t.Errorf("rec1 time = %d, want %d", recs[1].Time, want)
	}
	if recs[1].Kind != disk.Write {
		t.Errorf("rec1 = %v", recs[1])
	}
}

func TestMSRReaderAllDisks(t *testing.T) {
	r := NewMSRReader(strings.NewReader(msrSample), -1)
	recs, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestMSRReaderUnalignedRoundsOutward(t *testing.T) {
	in := "1,host,0,Read,100,512,0\n" // offset 100, 512 bytes → sectors [0,2)
	recs, err := ReadAll(NewMSRReader(strings.NewReader(in), -1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Extent != geom.Ext(0, 2) {
		t.Fatalf("recs = %v", recs)
	}
}

func TestMSRReaderErrors(t *testing.T) {
	cases := []string{
		"notanumber,h,0,Read,0,512,0\n",
		"1,h,x,Read,0,512,0\n",
		"1,h,0,Frobnicate,0,512,0\n",
		"1,h,0,Read,-4,512,0\n",
		"1,h,0,Read,abc,512,0\n",
		"1,h,0,Read,0,abc,0\n",
		"too,few\n",
	}
	for _, in := range cases {
		r := NewMSRReader(strings.NewReader(in), -1)
		if _, ok := r.Next(); ok {
			t.Errorf("input %q should not yield a record", in)
			continue
		}
		if r.Err() == nil {
			t.Errorf("input %q should produce an error", in)
		}
	}
}

func TestMSRRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: 100, Kind: disk.Read, Extent: geom.Ext(10, 8)},
		{Time: 200, Kind: disk.Write, Extent: geom.Ext(100, 16)},
	}
	var buf bytes.Buffer
	if err := WriteMSR(&buf, "test", 0, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewMSRReader(&buf, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %v", got)
	}
	for i := range recs {
		// Times come back rebased to the first record; extents and kinds
		// survive exactly.
		want := recs[i]
		want.Time -= recs[0].Time
		if got[i] != want {
			t.Errorf("rec %d: %v != %v", i, got[i], want)
		}
	}
}

func TestCPRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: 100, Kind: disk.Read, Extent: geom.Ext(10, 8)},
		{Time: 200, Kind: disk.Write, Extent: geom.Ext(100, 16)},
	}
	var buf bytes.Buffer
	if err := WriteCP(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), CPHeader) {
		t.Error("missing header comment")
	}
	got, err := ReadAll(NewCPReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %v", got)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("rec %d: %v != %v", i, got[i], recs[i])
		}
	}
}

func TestCPReaderErrors(t *testing.T) {
	cases := []string{
		"1,X,0,8\n",
		"x,R,0,8\n",
		"1,R,x,8\n",
		"1,R,0,x\n",
		"1,R,-1,8\n",
		"1,R,0\n",
	}
	for _, in := range cases {
		r := NewCPReader(strings.NewReader(in))
		if _, ok := r.Next(); ok {
			t.Errorf("input %q should not parse", in)
			continue
		}
		if r.Err() == nil {
			t.Errorf("input %q should error", in)
		}
	}
	// Zero-length records are skipped, not errors.
	r := NewCPReader(strings.NewReader("1,R,0,0\n2,W,5,5\n"))
	recs, err := ReadAll(r)
	if err != nil || len(recs) != 1 {
		t.Errorf("recs=%v err=%v", recs, err)
	}
}

func TestCharacterize(t *testing.T) {
	recs := []Record{
		{Kind: disk.Read, Extent: geom.Ext(0, 8)},     // 4 KB read
		{Kind: disk.Write, Extent: geom.Ext(8, 16)},   // 8 KB write
		{Kind: disk.Write, Extent: geom.Ext(100, 32)}, // 16 KB write
	}
	c := Characterize(recs)
	if c.ReadCount != 1 || c.WriteCount != 2 || c.Ops != 3 {
		t.Errorf("counts: %+v", c)
	}
	if c.ReadBytes != 8*512 || c.WrittenBytes != 48*512 {
		t.Errorf("volumes: %+v", c)
	}
	if c.MeanWriteKB != 12 {
		t.Errorf("MeanWriteKB = %v, want 12", c.MeanWriteKB)
	}
	if c.MeanReadKB != 4 {
		t.Errorf("MeanReadKB = %v, want 4", c.MeanReadKB)
	}
	if c.MaxLBA != 132 {
		t.Errorf("MaxLBA = %d", c.MaxLBA)
	}
	wi := c.WriteIntensity()
	if wi < 0.66 || wi > 0.67 {
		t.Errorf("WriteIntensity = %v", wi)
	}
	empty := Characterize(nil)
	if empty.WriteIntensity() != 0 || empty.MeanWriteKB != 0 {
		t.Error("empty characterize should be zeros")
	}
	if empty.ReadGB() != 0 || empty.WrittenGB() != 0 {
		t.Error("GB conversions of empty should be 0")
	}
}

func TestFilters(t *testing.T) {
	recs := []Record{
		{Time: 1000, Kind: disk.Read, Extent: geom.Ext(0, 8)},
		{Time: 2000, Kind: disk.Write, Extent: geom.Ext(90, 20)},
		{Time: 3000, Kind: disk.Read, Extent: geom.Ext(200, 8)},
		{Time: 4000, Kind: disk.Read, Extent: geom.Ext(8, 8)},
	}
	// Limit
	got, _ := ReadAll(Limit(NewSliceReader(recs), 2))
	if len(got) != 2 {
		t.Errorf("Limit: %v", got)
	}
	// Sample keeps every 2nd starting at 0.
	got, _ = ReadAll(Sample(NewSliceReader(recs), 2))
	if len(got) != 2 || got[0].Time != 1000 || got[1].Time != 3000 {
		t.Errorf("Sample: %v", got)
	}
	got, _ = ReadAll(Sample(NewSliceReader(recs), 0)) // clamped to 1
	if len(got) != 4 {
		t.Errorf("Sample(0): %v", got)
	}
	// ClipLBA truncates the straddler and drops the out-of-range record.
	got, _ = ReadAll(ClipLBA(NewSliceReader(recs), 100))
	if len(got) != 3 {
		t.Fatalf("ClipLBA: %v", got)
	}
	if got[1].Extent != geom.Ext(90, 10) {
		t.Errorf("ClipLBA straddler = %v", got[1].Extent)
	}
	// RebaseTime
	got, _ = ReadAll(RebaseTime(NewSliceReader(recs)))
	if got[0].Time != 0 || got[3].Time != 3000 {
		t.Errorf("RebaseTime: %v", got)
	}
}
