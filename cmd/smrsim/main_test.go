package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smrseek"
)

func TestRunWorkloadAll(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2", "-all"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NoLS", "LS+defrag", "LS+prefetch", "LS+cache", "total SAF"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleVariantWithTime(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2", "-cache", "-time"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LS+cache results", "cache hits", "modelled seek time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	recs := smrseek.MustWorkload("ts_0").Generate(0.05)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := smrseek.WriteTrace(f, smrseek.FormatCP, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-format", "cp", "-ls"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LS results") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no workload and no trace must error")
	}
	if err := run([]string{"-workload", "x", "-trace", "y"}, &buf); err == nil {
		t.Error("both workload and trace must error")
	}
	if err := run([]string{"-workload", "bogus"}, &buf); err == nil {
		t.Error("unknown workload must error")
	}
	if err := run([]string{"-trace", "/nonexistent/file"}, &buf); err == nil {
		t.Error("missing trace file must error")
	}
	if err := run([]string{"-trace", "/dev/null", "-format", "bogus"}, &buf); err == nil {
		t.Error("unknown format must error")
	}
}

func TestRunCustomLayers(t *testing.T) {
	for _, layer := range []string{"segls", "mcache"} {
		var buf bytes.Buffer
		if err := run([]string{"-workload", "usr_0", "-scale", "0.2", "-layer", layer}, &buf); err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		if !strings.Contains(buf.String(), "results") {
			t.Errorf("%s output:\n%s", layer, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-workload", "usr_0", "-scale", "0.1", "-layer", "bogus"}, &buf); err == nil {
		t.Error("unknown layer must error")
	}
}

func TestRunWithFaults(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-workload", "hm_1", "-scale", "0.2", "-ls",
		"-fault-rate", "0.05", "-fault-seed", "7"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LS+faults results", "fault injection & recovery", "faults injected", "recovery rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Same seed, same bytes.
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if out != again.String() {
		t.Error("two faulted runs with the same seed produced different output")
	}
	// Different seed, different fault tallies.
	var other bytes.Buffer
	args[len(args)-1] = "8"
	if err := run(args, &other); err != nil {
		t.Fatal(err)
	}
	if out == other.String() {
		t.Error("different fault seeds produced identical output")
	}
}

func TestRunMediaErrorsFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "hm_1", "-scale", "0.2",
		"-media-errors", "0:100000000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "media errors") {
		t.Errorf("output missing media error tally:\n%s", buf.String())
	}
	for _, bad := range []string{"10", "a:b", "5:-1", ":"} {
		if err := run([]string{"-workload", "hm_1", "-media-errors", bad}, &buf); err == nil {
			t.Errorf("media-errors %q accepted", bad)
		}
	}
}

func TestRunPoisonRateFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "w91", "-scale", "0.1", "-cache", "-prefetch",
		"-poison-rate", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+faults results") {
		t.Errorf("poison-only config did not enable the injector:\n%s", out)
	}
	if strings.Contains(out, "poisoned cache evictions  0 ") {
		t.Errorf("no poisoned evictions at PoisonRate 1:\n%s", out)
	}
}

func TestRunFaultsRejectedWithAll(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "hm_1", "-scale", "0.1", "-all", "-fault-rate", "0.1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-all") {
		t.Errorf("err = %v, want -all/fault conflict", err)
	}
}

func TestRunTimeout(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "usr_0", "-scale", "1.0", "-ls", "-timeout", "1ns"}, &buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}
