package server

import (
	"bufio"
	"net"
	"testing"

	"smrseek/internal/geom"
)

// TestV2ServerSteadyStateAllocs pins the per-request allocation budget
// of the whole server-side v2 path — connection reader, volume actor,
// response writer — at steady state. The client half is a pre-encoded
// raw frame batch and a reused read buffer, so it allocates nothing;
// AllocsPerRun therefore sees (almost) only the server.
func TestV2ServerSteadyStateAllocs(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("a"))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const batch = 64
	ver, window, err := clientHello(conn, Version2, batch)
	if err != nil {
		t.Fatal(err)
	}
	if ver != Version2 || window != batch {
		t.Fatalf("negotiated v%d window %d, want v2 window %d", ver, window, batch)
	}
	var frames []byte
	for i := 0; i < batch; i++ {
		frames, err = appendRequestV2(frames, uint64(i+1), request{
			Op: OpWrite, Volume: "a",
			Extent: geom.Ext(geom.Sector((i*8)%(1<<18)), 8),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	buf := make([]byte, 256)
	run := func() {
		if _, err := conn.Write(frames); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < batch; i++ {
			frame, err := readFrame(br, buf)
			if err != nil {
				t.Fatal(err)
			}
			if _, status, _, err := parseResponseV2(frame); err != nil || status != StatusOK {
				t.Fatalf("response %d: status %d, err %v", i, status, err)
			}
		}
	}
	// Warm the name cache, frame pools and the actor's batch path before
	// measuring.
	for i := 0; i < 5; i++ {
		run()
	}
	perBatch := testing.AllocsPerRun(20, run)
	if perReq := perBatch / batch; perReq > 2 {
		t.Errorf("server steady state allocates %.2f per request, want <= 2", perReq)
	}
}
