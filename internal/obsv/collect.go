package obsv

import (
	"sync"
	"sync/atomic"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/metrics"
)

// stateEveryDefault is how many operations pass between layer-state
// polls (frontier, map size) when a state function is installed.
const stateEveryDefault = 1024

// Collector is a core.Probe that streams the run into log-bucketed
// histograms — seek distance, fragments per read, modelled read/write
// latency, journal checkpoint (fsync) cost — and progress counters. It
// is safe to Snapshot from another goroutine while the simulation runs:
// counters are atomics and histograms are mutex-guarded.
type Collector struct {
	model disk.TimeModel

	ops    atomic.Int64
	reads  atomic.Int64
	writes atomic.Int64
	seeks  atomic.Int64

	frontier atomic.Int64
	mapSize  atomic.Int64

	stateEvery int64
	stateFn    func() (frontier geom.Sector, mapSize int)
	cleaningFn func() metrics.Cleaning

	mu       sync.Mutex
	cleaning *metrics.Cleaning  // last polled banded-device gauges
	seek     *metrics.Histogram // signed seek distance, sectors
	frags    *metrics.Histogram // fragments per logical read
	readLat  *metrics.Histogram // modelled read attempt latency, µs
	writeLat *metrics.Histogram // modelled write attempt latency, µs
	fsync    *metrics.Histogram // checkpoint wall-clock cost, µs
}

// NewCollector returns a collector using the default 7200 RPM time
// model for latency bucketing.
func NewCollector() *Collector {
	return &Collector{
		model:      disk.DefaultTimeModel(),
		stateEvery: stateEveryDefault,
		seek:       metrics.NewHistogram(),
		frags:      metrics.NewHistogram(),
		readLat:    metrics.NewHistogram(),
		writeLat:   metrics.NewHistogram(),
		fsync:      metrics.NewHistogram(),
	}
}

// SetTimeModel replaces the latency model. Call before the run starts.
func (c *Collector) SetTimeModel(m disk.TimeModel) { c.model = m }

// SetStateFn installs a function polled every stateEveryDefault
// operations — on the simulation goroutine, so it may touch the layer —
// to refresh the frontier/map-size progress gauges. A typical caller
// passes a closure over stl.LS: Frontier() and Map().Len().
func (c *Collector) SetStateFn(fn func() (frontier geom.Sector, mapSize int)) {
	c.stateFn = fn
}

// SetCleaningFn installs a function polled on the same cadence as
// SetStateFn — on the simulation goroutine, so it may touch the device —
// to refresh the banded device's cache/cleaning gauges. A typical
// caller passes band.Device.Cleaning. The gauges also refresh once at
// end of run, so a final Snapshot always reports the closing totals.
func (c *Collector) SetCleaningFn(fn func() metrics.Cleaning) {
	c.cleaningFn = fn
}

func (c *Collector) pollCleaning() {
	if c.cleaningFn == nil {
		return
	}
	cl := c.cleaningFn()
	c.mu.Lock()
	c.cleaning = &cl
	c.mu.Unlock()
}

// OnOp implements core.Probe.
func (c *Collector) OnOp(ev core.OpEvent) {
	n := c.ops.Add(1)
	if ev.Kind == disk.Read {
		c.reads.Add(1)
		c.mu.Lock()
		c.frags.Observe(int64(ev.Frags))
		c.mu.Unlock()
	} else {
		c.writes.Add(1)
	}
	if n%c.stateEvery == 0 {
		if c.stateFn != nil {
			frontier, size := c.stateFn()
			c.frontier.Store(frontier)
			c.mapSize.Store(int64(size))
		}
		c.pollCleaning()
	}
}

// OnAccess implements core.Probe.
func (c *Collector) OnAccess(ev core.AccessEvent) {
	a := ev.Access
	lat := int64(c.model.AccessTime(a) / time.Microsecond)
	c.mu.Lock()
	if a.Seeked {
		c.seek.Observe(a.Distance)
	}
	if a.Kind == disk.Read {
		c.readLat.Observe(lat)
	} else {
		c.writeLat.Observe(lat)
	}
	c.mu.Unlock()
	if a.Seeked {
		c.seeks.Add(1)
	}
}

// OnMech implements core.Probe.
func (c *Collector) OnMech(core.MechEvent) {}

// OnJournal implements core.Probe.
func (c *Collector) OnJournal(ev core.JournalEvent) {
	if ev.Kind != core.JournalCheckpoint {
		return
	}
	c.mu.Lock()
	c.fsync.Observe(int64(ev.Dur / time.Microsecond))
	c.mu.Unlock()
}

// OnSummary implements core.Probe.
func (c *Collector) OnSummary(core.Summary) { c.pollCleaning() }

// SeekDistanceCDF returns the seek-distance histogram's boundary-exact
// CDF (see metrics.CDFPoints): the one-pass equivalent of the Figure 4
// distance distribution.
func (c *Collector) SeekDistanceCDF() []metrics.Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seek.CDFPoints()
}

// HistSnapshot is one histogram frozen for reporting: its non-empty
// buckets in ascending value order plus the sample total.
type HistSnapshot struct {
	Name    string
	Unit    string
	Total   int64
	Buckets []metrics.Bucket
}

// CDF returns the snapshot's boundary-exact CDF points.
func (h HistSnapshot) CDF() []metrics.Point {
	return metrics.CDFFromBuckets(h.Buckets, h.Total)
}

// Snapshot is a self-consistent freeze of the collector, JSON-friendly
// for the /metrics endpoint and renderable by internal/report.
type Snapshot struct {
	Ops    int64
	Reads  int64
	Writes int64
	Seeks  int64

	// Frontier and MapSize are the last polled layer state (zero until
	// the first poll or without a state function).
	Frontier int64
	MapSize  int64

	// Cleaning is the banded device's last polled cache/cleaning
	// gauges; nil on the infinite-disk geometry.
	Cleaning *metrics.Cleaning `json:",omitempty"`

	SeekDistance HistSnapshot
	FragsPerRead HistSnapshot
	ReadLatency  HistSnapshot
	WriteLatency HistSnapshot
	JournalFsync HistSnapshot
}

// Snapshot freezes the collector's current state. Safe to call while
// the simulation is running.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Ops:      c.ops.Load(),
		Reads:    c.reads.Load(),
		Writes:   c.writes.Load(),
		Seeks:    c.seeks.Load(),
		Frontier: c.frontier.Load(),
		MapSize:  c.mapSize.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s.Cleaning = c.cleaning
	s.SeekDistance = HistSnapshot{Name: "seek_distance", Unit: "sectors", Total: c.seek.Total(), Buckets: c.seek.Buckets()}
	s.FragsPerRead = HistSnapshot{Name: "frags_per_read", Unit: "fragments", Total: c.frags.Total(), Buckets: c.frags.Buckets()}
	s.ReadLatency = HistSnapshot{Name: "read_latency", Unit: "µs", Total: c.readLat.Total(), Buckets: c.readLat.Buckets()}
	s.WriteLatency = HistSnapshot{Name: "write_latency", Unit: "µs", Total: c.writeLat.Total(), Buckets: c.writeLat.Buckets()}
	s.JournalFsync = HistSnapshot{Name: "journal_fsync", Unit: "µs", Total: c.fsync.Total(), Buckets: c.fsync.Buckets()}
	return s
}

// Hists returns the snapshot's histograms in rendering order.
func (s Snapshot) Hists() []HistSnapshot {
	return []HistSnapshot{s.SeekDistance, s.FragsPerRead, s.ReadLatency, s.WriteLatency, s.JournalFsync}
}
