// Command smrd serves SMR translation-layer volumes over TCP. Each
// volume is one simulator behind a bounded actor queue (internal/volume)
// and clients speak the length-prefixed binary protocol documented in
// docs/FORMATS.md (internal/server). A saturated volume sheds requests
// with an "overloaded" status instead of queueing without bound.
//
// Examples:
//
//	smrd -listen 127.0.0.1:4590 -volumes a,b
//	smrd -volumes "hot=defrag+cache,cold=prefetch" -metrics-addr 127.0.0.1:8080
//	smrd -volumes a -journal-dir /tmp/smrd    # durable: restart resumes
//
// Replication (requires -journal-dir on both sides):
//
//	smrd -volumes a -journal-dir /d/p -role primary -peers 127.0.0.1:4591
//	smrd -volumes a -journal-dir /d/f -role follower \
//	     -listen 127.0.0.1:4591 -replicate-from 127.0.0.1:4590
//
// A follower pulls sealed, Merkle-verified journal segments from the
// primary and serves no data ops until promoted (by a failing-over
// client or an OpPromote request); the primary gates write
// acknowledgments on follower acks (see -sync-timeout) and fences
// itself when a peer serves at a higher epoch.
//
// Shut down with SIGINT/SIGTERM: the daemon stops accepting, drains
// every volume queue, checkpoints journaled state and prints a
// per-volume summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"smrseek/internal/band"
	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/obsv"
	"smrseek/internal/repl"
	"smrseek/internal/report"
	"smrseek/internal/server"
	"smrseek/internal/volume"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smrd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smrd", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:4590", "TCP address to serve the smrd protocol on")
		volumes     = fs.String("volumes", "v0", `comma-separated volume specs: "name[=opt+opt...]" with opts defrag, prefetch, cache (always log-structured)`)
		journalDir  = fs.String("journal-dir", "", "enable per-volume write-ahead journals under this directory (one subdirectory per volume; restart resumes)")
		metricsAddr = fs.String("metrics-addr", "", `serve per-volume JSON metrics on this address (/metrics?volume=NAME, /volumes)`)
		pprofFlag   = fs.Bool("pprof", false, "also serve net/http/pprof on -metrics-addr")
		frontier    = fs.Int64("frontier", 1<<22, "log frontier start sector for every volume (the paper places it above the highest LBA)")
		queueDepth  = fs.Int("queue-depth", volume.DefaultQueueDepth, "per-volume request queue bound; a full queue sheds with an overloaded status")
		batch       = fs.Int("batch", volume.DefaultBatchSize, "max requests the actor drains per wakeup")
		ckptEvery   = fs.Int64("checkpoint-every", 4096, "checkpoint a journaled volume after this many journal records (0 = only at shutdown)")
		sealEvery   = fs.Int64("seal-every", journal.DefaultSegmentSize, "seal a Merkle segment after this many journal records")
		noVerify    = fs.Bool("no-verify-recover", false, "skip the seal-chain audit before recovering a journaled volume (corrupt journals will then recover as if merely torn)")
		recWorkers  = fs.Int("recover-workers", 0, "verification workers per volume during journal recovery (0 = GOMAXPROCS, 1 = sequential); recovered state is identical at any count")
		reqTimeout  = fs.Duration("request-timeout", 0, "per-request execution timeout once queued (0 = none); expiry closes a v1 connection, a pipelined one gets a timeout status")
		maxWindow   = fs.Int("max-window", 0, "cap on the per-connection in-flight window granted to SMRD2 pipelined clients (0 = built-in default)")
		role        = fs.String("role", "standalone", `replication role: "standalone", "primary" or "follower" (primary/follower require -journal-dir)`)
		replFrom    = fs.String("replicate-from", "", "follower only: the primary's address to pull sealed journal segments from")
		peers       = fs.String("peers", "", "comma-separated peer addresses; a primary polls them and fences itself on seeing a higher epoch, a promoted follower does the same")
		syncTimeout = fs.Duration("sync-timeout", 500*time.Millisecond, "primary: bound on holding a write acknowledgment for a follower ack (0 = fully asynchronous replication)")
		sealTick    = fs.Duration("force-seal-every", 250*time.Millisecond, "primary: force-seal the journal on this period so acknowledged tail records replicate promptly (0 = only on segment fill)")
		geometry    = fs.String("geometry", "infinite", `per-volume disk geometry: "infinite" (the paper's §II model) or "band" (finite banded device)`)
		bandSize    = fs.Int64("band-size", 0, "band size in sectors for -geometry band (0 = the 10 MB default)")
		pcache      = fs.Int64("pcache", 0, "persistent cache size in sectors for -geometry band (0 disables the cache)")
		cleanPol    = fs.String("clean-policy", "pol-a", `cache placement/cleaning policy for -geometry band: "pol-a", "pol-b" or "shelter"`)
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	geo := geomSpec{geometry: *geometry, bandSize: *bandSize, pcache: *pcache, policy: *cleanPol}
	if err := geo.validate(); err != nil {
		return err
	}
	cfgs, err := parseVolumes(*volumes, *journalDir, geom.Sector(*frontier), *queueDepth, *batch, *ckptEvery, *sealEvery, *noVerify, *recWorkers, geo)
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(out, format+"\n", a...)
	}

	// Replication wiring. A primary subscribes each volume's seal chain
	// before opening it; a follower opens nothing — its volumes are
	// recovered at promotion from the journals its pull loops fill.
	var (
		repHooks server.ReplHooks
		prim     *repl.Primary
		fol      *repl.Follower
	)
	switch *role {
	case "standalone":
		if *replFrom != "" {
			return fmt.Errorf("-replicate-from requires -role follower")
		}
	case "primary":
		if *journalDir == "" {
			return fmt.Errorf("-role primary requires -journal-dir")
		}
		prim, err = repl.NewPrimary(repl.PrimaryConfig{
			Root:           *journalDir,
			SyncTimeout:    *syncTimeout,
			ForceSealEvery: *sealTick,
			Peers:          splitAddrs(*peers),
			Logf:           logf,
		})
		if err != nil {
			return err
		}
		for i := range cfgs {
			cfgs[i].OnSeal = prim.OnSeal(cfgs[i].Name)
		}
		repHooks = prim
	case "follower":
		if *journalDir == "" || *replFrom == "" {
			return fmt.Errorf("-role follower requires -journal-dir and -replicate-from")
		}
		fol, err = repl.NewFollower(repl.FollowerConfig{
			Root:           *journalDir,
			Source:         *replFrom,
			Configs:        cfgs,
			SyncTimeout:    *syncTimeout,
			ForceSealEvery: *sealTick,
			Peers:          splitAddrs(*peers),
			Logf:           logf,
		})
		if err != nil {
			return err
		}
		repHooks = fol
	default:
		return fmt.Errorf("unknown -role %q (want standalone, primary or follower)", *role)
	}

	var mgr *volume.Manager
	if fol == nil {
		mgr, err = volume.OpenAll(cfgs...)
		if err != nil {
			return err
		}
		for _, name := range mgr.Names() {
			v, _ := mgr.Get(name)
			if r := v.Recovery; r != nil {
				mbps := 0.0
				if r.Elapsed > 0 {
					mbps = float64(r.JournalBytes) / r.Elapsed.Seconds() / (1 << 20)
				}
				fmt.Fprintf(out, "smrd: volume %s recovered: checkpoint=%v, %d journal records replayed, verified=%v (%d sealed segments), %d bytes in %s (%.1f MB/s, workers=%d)\n",
					name, r.FromCheckpoint, r.Replayed, r.Verified, r.SealedSegments,
					r.JournalBytes, r.Elapsed.Round(time.Microsecond), mbps, r.Workers)
			}
		}
		if prim != nil {
			prim.AttachManager(mgr)
			fmt.Fprintf(out, "smrd: replication primary at epoch %d\n", prim.Epoch())
		}
	}

	var msrv *obsv.Server
	if *metricsAddr != "" && mgr != nil {
		msrv, err = obsv.ServeRegistry(*metricsAddr, mgr.Registry(), *pprofFlag)
		if err != nil {
			mgr.Close()
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(out, "smrd: metrics on http://%s/metrics\n", msrv.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		if mgr != nil {
			mgr.Close()
		}
		return err
	}
	srv := server.New(mgr, ln, server.Options{
		RequestTimeout: *reqTimeout,
		MaxWindow:      *maxWindow,
		Repl:           repHooks,
		Logf:           logf,
	})
	if fol != nil {
		fol.AttachServer(srv)
		fol.Start()
		fmt.Fprintf(out, "smrd: listening on %s (follower of %s, epoch %d)\n", srv.Addr(), *replFrom, fol.Epoch())
	} else {
		fmt.Fprintf(out, "smrd: listening on %s (volumes: %s)\n", srv.Addr(), strings.Join(mgr.Names(), ", "))
	}

	<-ctx.Done()
	fmt.Fprintln(out, "smrd: shutting down")
	// Ordering matters: stop the network first so no request can race a
	// closing volume, then the replication loops, then drain + checkpoint
	// the volumes.
	srv.Close()
	if fol != nil {
		fol.Close()
		mgr = fol.Manager() // non-nil iff this follower was promoted
	}
	if prim != nil {
		prim.Close()
	}
	var closeErr error
	if mgr != nil {
		closeErr = mgr.Close()
	}
	if prim != nil && prim.Degraded() > 0 {
		fmt.Fprintf(out, "smrd: %d write acks released by degrade timeout (follower lagging)\n", prim.Degraded())
	}

	banded := geo.geometry == "band"
	headers := []string{"volume", "reads", "writes", "frag reads", "read seeks"}
	if banded {
		headers = append(headers, "cached writes", "cleaning stalls", "write amp")
	}
	tbl := report.NewTable("per-volume summary", headers...)
	if mgr != nil {
		for _, name := range mgr.Names() {
			v, _ := mgr.Get(name)
			st := v.Stats()
			row := []interface{}{name, report.HumanCount(st.Reads), report.HumanCount(st.Writes),
				report.HumanCount(st.FragmentedReads), report.HumanCount(st.Disk.ReadSeeks)}
			if banded {
				row = append(row, report.HumanCount(st.Cleaning.CachedWrites),
					report.HumanCount(st.Cleaning.Stalls), fmt.Sprintf("%.3f", st.Cleaning.WriteAmp()))
			}
			tbl.AddRow(row...)
		}
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	return closeErr
}

// splitAddrs splits a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// geomSpec carries the -geometry flags; device builds one fresh banded
// device per volume (each volume owns its device state), or nil for the
// default infinite model.
type geomSpec struct {
	geometry         string
	bandSize, pcache int64
	policy           string
}

func (g geomSpec) validate() error {
	switch g.geometry {
	case "infinite":
		if g.bandSize != 0 || g.pcache != 0 {
			return fmt.Errorf("-band-size/-pcache require -geometry band")
		}
		return nil
	case "band":
		_, err := g.device()
		return err
	default:
		return fmt.Errorf("unknown -geometry %q (want infinite or band)", g.geometry)
	}
}

func (g geomSpec) device() (disk.Device, error) {
	if g.geometry != "band" {
		return nil, nil
	}
	pol, err := band.ParsePolicy(g.policy)
	if err != nil {
		return nil, err
	}
	return band.New(band.Config{BandSectors: g.bandSize, CacheSectors: g.pcache, Policy: pol})
}

// parseVolumes expands the -volumes spec into volume configurations.
// Grammar: spec := entry ("," entry)*; entry := name ("=" opt ("+" opt)*)?
func parseVolumes(spec, journalDir string, frontier geom.Sector, queueDepth, batch int, ckptEvery, sealEvery int64, noVerify bool, recoverWorkers int, geo geomSpec) ([]volume.Config, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty -volumes spec")
	}
	var cfgs []volume.Config
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		name, opts, _ := strings.Cut(entry, "=")
		if name == "" {
			return nil, fmt.Errorf("volume spec %q: empty name", entry)
		}
		sim := core.Config{LogStructured: true, FrontierStart: frontier}
		dev, err := geo.device()
		if err != nil {
			return nil, err
		}
		sim.Device = dev
		if opts != "" {
			for _, opt := range strings.Split(opts, "+") {
				switch opt {
				case "defrag":
					d := core.DefaultDefragConfig()
					sim.Defrag = &d
				case "prefetch":
					p := core.DefaultPrefetchConfig()
					sim.Prefetch = &p
				case "cache":
					c := core.DefaultCacheConfig()
					sim.Cache = &c
				default:
					return nil, fmt.Errorf("volume spec %q: unknown option %q (want defrag, prefetch or cache)", entry, opt)
				}
			}
		}
		cfg := volume.Config{
			Name:       name,
			Sim:        sim,
			QueueDepth: queueDepth,
			BatchSize:  batch,
		}
		if journalDir != "" {
			cfg.JournalDir = filepath.Join(journalDir, name)
			cfg.CheckpointEvery = ckptEvery
			cfg.SealEvery = sealEvery
			cfg.SkipVerifyOnRecover = noVerify
			cfg.RecoverWorkers = recoverWorkers
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs, nil
}
