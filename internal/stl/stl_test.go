package stl

import (
	"reflect"
	"testing"
	"testing/quick"

	"smrseek/internal/geom"
)

func TestNoLSIdentity(t *testing.T) {
	n := NewNoLS()
	if n.Name() != "NoLS" {
		t.Error("name")
	}
	fs := n.Resolve(geom.Ext(100, 50))
	if len(fs) != 1 || fs[0].Pba != 100 || fs[0].Lba != geom.Ext(100, 50) {
		t.Fatalf("Resolve = %v", fs)
	}
	ws := n.Write(geom.Ext(7, 3))
	if len(ws) != 1 || ws[0].Pba != 7 {
		t.Fatalf("Write = %v", ws)
	}
	if n.Resolve(geom.Extent{}) != nil || n.Write(geom.Extent{}) != nil {
		t.Error("empty extents must resolve to nothing")
	}
}

func TestLSWriteAdvancesFrontier(t *testing.T) {
	l := NewLS(1000)
	if l.Name() != "LS" {
		t.Error("name")
	}
	w1 := l.Write(geom.Ext(50, 10))
	if len(w1) != 1 || w1[0].Pba != 1000 {
		t.Fatalf("first write = %v", w1)
	}
	w2 := l.Write(geom.Ext(500, 4))
	if w2[0].Pba != 1010 {
		t.Fatalf("second write pba = %d, want 1010 (frontier advanced)", w2[0].Pba)
	}
	if l.Frontier() != 1014 {
		t.Errorf("Frontier = %d", l.Frontier())
	}
	if l.LogSectors() != 14 {
		t.Errorf("LogSectors = %d", l.LogSectors())
	}
	if l.Write(geom.Extent{}) != nil {
		t.Error("empty write")
	}
}

func TestLSResolveUnwrittenIsIdentity(t *testing.T) {
	l := NewLS(1000)
	fs := l.Resolve(geom.Ext(10, 20))
	if len(fs) != 1 || fs[0].Pba != 10 {
		t.Fatalf("unwritten resolve = %v", fs)
	}
	if l.Resolve(geom.Extent{}) != nil {
		t.Error("empty resolve")
	}
}

func TestLSFragmentationScenario(t *testing.T) {
	// The Figure 6 scenario through the Layer interface.
	l := NewLS(100)
	l.Write(geom.Ext(1, 6))
	l.Write(geom.Ext(3, 1))
	l.Write(geom.Ext(5, 1))
	fs := l.Resolve(geom.Ext(2, 4))
	if len(fs) != 4 {
		t.Fatalf("fragments = %v, want 4 pieces", fs)
	}
	if l.Fragments(geom.Ext(2, 4)) != 4 {
		t.Error("Fragments disagrees with Resolve")
	}
	// Fragment LBAs tile the request.
	cur := geom.Sector(2)
	for _, f := range fs {
		if f.Lba.Start != cur {
			t.Fatalf("fragments do not tile: %v", fs)
		}
		cur = f.Lba.End()
	}
	if cur != 6 {
		t.Fatalf("fragments do not cover request end: %v", fs)
	}
	// Back-to-back logical writes are physically adjacent: one fragment.
	l2 := NewLS(100)
	l2.Write(geom.Ext(10, 4))
	l2.Write(geom.Ext(14, 4))
	if got := l2.Resolve(geom.Ext(10, 8)); len(got) != 1 {
		t.Errorf("sequential writes resolved to %v", got)
	}
	// The coalesced map stores them as a single mapping too.
	if l2.Map().Len() != 1 {
		t.Errorf("sequential writes stored as %d mappings, want 1", l2.Map().Len())
	}
	for _, layer := range []*LS{l, l2} {
		if err := layer.Map().CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

func TestFragmentPhysExtent(t *testing.T) {
	f := Fragment{Lba: geom.Ext(10, 5), Pba: 100}
	if f.PhysExtent() != geom.Ext(100, 5) {
		t.Errorf("PhysExtent = %v", f.PhysExtent())
	}
}

// Property: for any write sequence, resolving any range yields fragments
// that tile the range exactly, and a range just written resolves to a
// single fragment at the log head.
func TestLSResolveTilesProperty(t *testing.T) {
	f := func(ops []uint32, qs uint16, qc uint8) bool {
		l := NewLS(1 << 20)
		for _, op := range ops {
			l.Write(geom.Ext(int64(op%5000), int64(op%128+1)))
		}
		q := geom.Ext(int64(qs%5200), int64(qc)+1)
		cur := q.Start
		for _, fr := range l.Resolve(q) {
			if fr.Lba.Start != cur {
				return false
			}
			cur = fr.Lba.End()
		}
		if cur != q.End() {
			return false
		}
		head := l.Frontier()
		w := l.Write(q)
		if err := l.Map().CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		return len(w) == 1 && w[0].Pba == head && len(l.Resolve(q)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLSPreviewWriteMatchesWrite(t *testing.T) {
	l := NewLS(1000)
	l.Write(geom.Ext(0, 8))
	l.Write(geom.Ext(500, 4))

	target := geom.Ext(0, 16)
	preview := l.PreviewWrite(target)
	if len(preview) != 1 || preview[0].Pba != l.Frontier() {
		t.Fatalf("preview = %v, want one fragment at the frontier %d", preview, l.Frontier())
	}
	// Preview must not mutate: resolving and the frontier are unchanged,
	// and a second preview agrees.
	before := l.Frontier()
	if got := l.PreviewWrite(target); !reflect.DeepEqual(got, preview) {
		t.Errorf("repeated preview diverged: %v vs %v", got, preview)
	}
	if l.Frontier() != before {
		t.Errorf("preview moved the frontier: %d -> %d", before, l.Frontier())
	}
	// The contract: a subsequent Write with no intervening writes lands
	// exactly on the previewed placement.
	if got := l.Write(target); !reflect.DeepEqual(got, preview) {
		t.Errorf("Write landed at %v, previewed %v", got, preview)
	}
	if l.PreviewWrite(geom.Extent{}) != nil {
		t.Error("preview of an empty extent should be nil")
	}
}
