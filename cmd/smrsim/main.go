// Command smrsim runs one workload (a named synthetic workload or a
// trace file) through the seek simulator under a chosen translation
// layer and mechanisms, and prints seek statistics and, with -all, the
// paper's Figure 11 comparison for that workload.
//
// Examples:
//
//	smrsim -workload w91 -all
//	smrsim -workload hm_1 -ls -cache -time
//	smrsim -trace disk0.csv -format msr -disk 0 -ls -prefetch
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"smrseek"
	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/metrics"
	"smrseek/internal/report"
	"smrseek/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smrsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smrsim", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "", "named synthetic workload (see traceinfo -list)")
		scale        = fs.Float64("scale", 0.5, "workload scale (multiplies base op count)")
		tracePath    = fs.String("trace", "", "trace file to simulate instead of a named workload")
		format       = fs.String("format", "cp", `trace format: "msr" or "cp"`)
		diskNum      = fs.Int("disk", -1, "MSR disk number filter (-1 = all)")
		all          = fs.Bool("all", false, "run the full Figure 11 variant comparison")
		layerName    = fs.String("layer", "", `translation layer: "segls" (finite log + greedy cleaning) or "mcache" (media cache); default is NoLS/LS per -ls`)
		ls           = fs.Bool("ls", false, "use the log-structured layer")
		defrag       = fs.Bool("defrag", false, "enable opportunistic defragmentation (implies -ls)")
		prefetch     = fs.Bool("prefetch", false, "enable look-ahead-behind prefetching (implies -ls)")
		cache        = fs.Bool("cache", false, "enable 64 MB selective caching (implies -ls)")
		cacheMB      = fs.Int64("cache-mb", 64, "selective cache size in MiB")
		withTime     = fs.Bool("time", false, "also report modelled service time (7200 RPM drive)")
		faultRate    = fs.Float64("fault-rate", 0, "per-access transient fault probability for reads and writes (0 disables injection)")
		poisonRate   = fs.Float64("poison-rate", 0, "probability a cache/prefetch-buffer serve is corrupt and falls back to the medium")
		faultSeed    = fs.Uint64("fault-seed", 1, "fault injector seed (same seed => identical fault sequence)")
		mediaErrors  = fs.String("media-errors", "", `persistent media-error PBA ranges, "start:count,start:count,..."`)
		timeout      = fs.Duration("timeout", 0, "abort the simulation after this duration (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	faultCfg, err := buildFaultConfig(*faultRate, *poisonRate, *faultSeed, *mediaErrors)
	if err != nil {
		return err
	}

	recs, name, err := loadRecords(*workloadName, *scale, *tracePath, *format, *diskNum)
	if err != nil {
		return err
	}
	c := smrseek.Characterize(recs)
	fmt.Fprintf(out, "workload %s: %s reads, %s writes, %.2f GB read, %.2f GB written\n",
		name, report.HumanCount(c.ReadCount), report.HumanCount(c.WriteCount), c.ReadGB(), c.WrittenGB())

	if *all {
		if faultCfg != nil {
			return fmt.Errorf("-fault-rate/-poison-rate/-media-errors cannot be combined with -all (SAF comparisons need fault-free runs)")
		}
		return runAll(ctx, out, recs)
	}

	cfg := smrseek.Config{LogStructured: *layerName == "" && (*ls || *defrag || *prefetch || *cache)}
	if *layerName != "" {
		layer, err := buildLayer(*layerName, recs)
		if err != nil {
			return err
		}
		cfg.CustomLayer = layer
	}
	if *defrag {
		d := smrseek.DefaultDefrag()
		cfg.Defrag = &d
	}
	if *prefetch {
		p := smrseek.DefaultPrefetch()
		cfg.Prefetch = &p
	}
	if *cache {
		cc := smrseek.CacheConfig{CapacityBytes: *cacheMB << 20}
		cfg.Cache = &cc
	}
	cfg.Fault = faultCfg
	return runOne(ctx, out, recs, cfg, *withTime)
}

// buildFaultConfig assembles a fault configuration from the CLI flags,
// or nil when injection is disabled.
func buildFaultConfig(rate, poison float64, seed uint64, mediaSpec string) (*smrseek.FaultConfig, error) {
	ranges, err := parseMediaRanges(mediaSpec)
	if err != nil {
		return nil, err
	}
	if rate == 0 && poison == 0 && len(ranges) == 0 {
		return nil, nil
	}
	cfg := smrseek.FaultConfig{
		Seed:        seed,
		ReadRate:    rate,
		WriteRate:   rate,
		PoisonRate:  poison,
		MediaRanges: ranges,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// parseMediaRanges parses "start:count,start:count,..." into PBA extents.
func parseMediaRanges(spec string) ([]geom.Extent, error) {
	if spec == "" {
		return nil, nil
	}
	var out []geom.Extent
	for _, part := range strings.Split(spec, ",") {
		start, count, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("media range %q: want start:count", part)
		}
		s, err := strconv.ParseInt(start, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("media range %q: bad start: %v", part, err)
		}
		n, err := strconv.ParseInt(count, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("media range %q: bad count: %v", part, err)
		}
		out = append(out, geom.Ext(geom.Sector(s), n))
	}
	return out, nil
}

// buildLayer constructs an alternative translation layer sized to the
// workload: segls gets a finite log at ~1.1x the write footprint with
// greedy cleaning; mcache gets 64 MiB zones and a 512 MiB media cache.
func buildLayer(name string, recs []smrseek.Record) (smrseek.Layer, error) {
	switch name {
	case "segls":
		const seg = 8192
		footprint := smrseek.WriteFootprint(recs)
		return smrseek.NewGCLayer(smrseek.GCConfig{
			DeviceSectors:  smrseek.MaxLBA(recs),
			LogSectors:     ((footprint*11/10)/seg + 4) * seg,
			SegmentSectors: seg,
			Policy:         smrseek.Greedy,
		})
	case "mcache":
		const zone = 64 << 11 // 64 MiB
		maxLBA := smrseek.MaxLBA(recs)
		return smrseek.NewMediaCacheLayer(smrseek.MediaCacheConfig{
			DeviceSectors: ((maxLBA + zone) / zone) * zone,
			ZoneSectors:   zone,
			CacheSectors:  8 * zone,
		})
	default:
		return nil, fmt.Errorf("unknown layer %q (want segls or mcache)", name)
	}
}

func loadRecords(workloadName string, scale float64, tracePath, format string, diskNum int) ([]smrseek.Record, string, error) {
	switch {
	case workloadName != "" && tracePath != "":
		return nil, "", fmt.Errorf("pass -workload or -trace, not both")
	case workloadName != "":
		p, err := smrseek.Workload(workloadName)
		if err != nil {
			return nil, "", err
		}
		return p.Generate(scale), p.Name, nil
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		r, err := smrseek.OpenTrace(f, smrseek.TraceFormat(format), diskNum)
		if err != nil {
			return nil, "", err
		}
		recs, err := smrseek.ReadAll(r)
		if err != nil {
			return nil, "", err
		}
		return recs, tracePath, nil
	default:
		return nil, "", fmt.Errorf("pass -workload NAME or -trace FILE (workloads: %v)", smrseek.Workloads())
	}
}

func runAll(ctx context.Context, out io.Writer, recs []smrseek.Record) error {
	cmp, err := smrseek.ComparePaperContext(ctx, recs)
	if err != nil {
		return err
	}
	tb := report.NewTable("seek amplification factor vs NoLS baseline",
		"variant", "read seeks", "write seeks", "read SAF", "write SAF", "total SAF")
	b := cmp.Baseline.Disk
	tb.AddRow("NoLS", report.HumanCount(b.ReadSeeks), report.HumanCount(b.WriteSeeks), 1.0, 1.0, 1.0)
	for _, v := range cmp.Variants {
		tb.AddRow(v.Name, report.HumanCount(v.Stats.Disk.ReadSeeks),
			report.HumanCount(v.Stats.Disk.WriteSeeks), v.Read, v.Write, v.Total)
	}
	return tb.Render(out)
}

func runOne(ctx context.Context, out io.Writer, recs []smrseek.Record, cfg smrseek.Config, withTime bool) error {
	// Baseline for SAF, always fault-free so SAF compares like with like.
	base, err := smrseek.RunContext(ctx, smrseek.Config{}, recs)
	if err != nil {
		return err
	}

	if cfg.LogStructured && cfg.FrontierStart == 0 {
		cfg.FrontierStart = core.FrontierFor(recs)
	}
	sim, err := smrseek.NewSimulator(cfg)
	if err != nil {
		return err
	}
	var acc *disk.TimeAccumulator
	if withTime {
		acc = disk.NewTimeAccumulator(disk.DefaultTimeModel())
		sim.Disk().AddObserver(acc)
	}
	st, err := sim.RunContext(ctx, trace.NewSliceReader(recs))
	if err != nil {
		return err
	}

	tb := report.NewTable(fmt.Sprintf("%s results", cfg.Name()), "metric", "value")
	tb.AddRow("read seeks", report.HumanCount(st.Disk.ReadSeeks))
	tb.AddRow("write seeks", report.HumanCount(st.Disk.WriteSeeks))
	tb.AddRow("read SAF", metrics.SAF(st.Disk.ReadSeeks, base.Disk.ReadSeeks))
	tb.AddRow("write SAF", metrics.SAF(st.Disk.WriteSeeks, base.Disk.WriteSeeks))
	tb.AddRow("total SAF", metrics.SAF(st.Disk.TotalSeeks(), base.Disk.TotalSeeks()))
	tb.AddRow("fragmented reads", report.HumanCount(st.FragmentedReads))
	tb.AddRow("max fragments/read", st.MaxFragments)
	if cfg.Cache != nil {
		tb.AddRow("cache hits", report.HumanCount(st.CacheHits))
		tb.AddRow("cache invalidations", report.HumanCount(st.CacheInvalidations))
	}
	if cfg.Prefetch != nil {
		tb.AddRow("prefetch hits", report.HumanCount(st.PrefetchHits))
	}
	if cfg.Defrag != nil {
		tb.AddRow("defrag write-backs", report.HumanCount(st.DefragWritebacks))
	}
	if st.MaintSectors > 0 {
		tb.AddRow("maintenance reads", report.HumanCount(st.MaintReads))
		tb.AddRow("maintenance writes", report.HumanCount(st.MaintWrites))
		tb.AddRow("write amplification", st.WAF)
	}
	if acc != nil {
		tb.AddRow("modelled read time", acc.ReadTime.Round(time.Millisecond).String())
		tb.AddRow("modelled write time", acc.WriteTime.Round(time.Millisecond).String())
		tb.AddRow("modelled seek time", acc.SeekTime.Round(time.Millisecond).String())
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	if cfg.Fault != nil {
		fmt.Fprintln(out)
		return report.ResilienceTable(st.Resilience).Render(out)
	}
	return nil
}
