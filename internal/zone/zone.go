// Package zone models the zoned block device abstraction SMR drives
// expose (paper §II): the platter is divided into zones separated by
// guard tracks; each zone must be written strictly sequentially at its
// write pointer, and may be reset to be rewritten from the start — the
// same model the Zoned Block Device extensions to SCSI/SATA standardize,
// and "almost identical to the NAND flash model".
//
// Translation layers in this repository address a flat physical sector
// space; a Device validates that the physical write stream they emit is
// actually realizable on zoned media, so layer implementations cannot
// silently cheat the sequential-write constraint.
package zone

import (
	"fmt"

	"smrseek/internal/geom"
)

// Kind distinguishes conventional (randomly writable) zones from
// sequential-write-required zones.
type Kind uint8

const (
	// SequentialRequired zones accept writes only at the write pointer.
	SequentialRequired Kind = iota
	// Conventional zones accept writes anywhere (drives reserve a few
	// for metadata and media caches).
	Conventional
)

// Zone is one zone's state.
type Zone struct {
	Index  int
	Extent geom.Extent // physical sectors covered
	Kind   Kind
	// WP is the write pointer: the next sector a sequential-required
	// zone will accept. Invariant: Extent.Start <= WP <= Extent.End().
	WP geom.Sector
}

// Full reports whether the zone has been written to its end.
func (z *Zone) Full() bool { return z.WP == z.Extent.End() }

// Empty reports whether the zone holds no data.
func (z *Zone) Empty() bool { return z.WP == z.Extent.Start }

// WrittenSectors returns how many sectors the zone currently holds.
func (z *Zone) WrittenSectors() int64 { return z.WP - z.Extent.Start }

// Device is a zoned address space: totalSectors divided into fixed-size
// zones, the first conventionalZones of which are conventional.
type Device struct {
	zoneSectors int64
	zones       []Zone

	writes     int64
	resets     int64
	violations int64
}

// NewDevice builds a device of totalSectors (rounded down to whole
// zones) with the given zone size; the first conventionalZones zones are
// conventional. Panics on non-positive zone size.
func NewDevice(totalSectors, zoneSectors int64, conventionalZones int) *Device {
	if zoneSectors <= 0 {
		panic("zone: non-positive zone size")
	}
	n := int(totalSectors / zoneSectors)
	d := &Device{zoneSectors: zoneSectors, zones: make([]Zone, n)}
	for i := range d.zones {
		start := int64(i) * zoneSectors
		k := SequentialRequired
		if i < conventionalZones {
			k = Conventional
		}
		d.zones[i] = Zone{
			Index:  i,
			Extent: geom.Ext(start, zoneSectors),
			Kind:   k,
			WP:     start,
		}
	}
	return d
}

// ZoneSectors returns the zone size in sectors.
func (d *Device) ZoneSectors() int64 { return d.zoneSectors }

// Zones returns the number of zones.
func (d *Device) Zones() int { return len(d.zones) }

// Zone returns the zone containing the physical sector, or nil when out
// of range.
func (d *Device) Zone(s geom.Sector) *Zone {
	i := int(s / d.zoneSectors)
	if s < 0 || i >= len(d.zones) {
		return nil
	}
	return &d.zones[i]
}

// ZoneByIndex returns the i-th zone, or nil when out of range.
func (d *Device) ZoneByIndex(i int) *Zone {
	if i < 0 || i >= len(d.zones) {
		return nil
	}
	return &d.zones[i]
}

// Write validates and applies a physical write. Sequential-required
// zones accept the write only if it starts exactly at the write pointer
// and ends within the zone; conventional zones accept any in-zone write.
// Writes may not straddle a zone boundary (split them first).
func (d *Device) Write(ext geom.Extent) error {
	if ext.Empty() {
		return nil
	}
	z := d.Zone(ext.Start)
	if z == nil {
		d.violations++
		return fmt.Errorf("zone: write %v outside device", ext)
	}
	if !z.Extent.ContainsExtent(ext) {
		d.violations++
		return fmt.Errorf("zone: write %v straddles zone %d boundary %v", ext, z.Index, z.Extent)
	}
	if z.Kind == SequentialRequired {
		if ext.Start != z.WP {
			d.violations++
			return fmt.Errorf("zone: write %v not at zone %d write pointer %d", ext, z.Index, z.WP)
		}
		z.WP = ext.End()
	} else if ext.End() > z.WP {
		// Conventional zones track a high-water mark for accounting.
		z.WP = ext.End()
	}
	d.writes++
	return nil
}

// WriteSplit applies a write that may span zones by splitting it at
// boundaries; each piece is validated in order.
func (d *Device) WriteSplit(ext geom.Extent) error {
	for !ext.Empty() {
		z := d.Zone(ext.Start)
		if z == nil {
			d.violations++
			return fmt.Errorf("zone: write %v outside device", ext)
		}
		piece := ext.Intersect(z.Extent)
		if err := d.Write(piece); err != nil {
			return err
		}
		ext = geom.Span(piece.End(), ext.End())
	}
	return nil
}

// Reset rewinds a zone's write pointer, discarding its contents.
func (d *Device) Reset(index int) error {
	z := d.ZoneByIndex(index)
	if z == nil {
		return fmt.Errorf("zone: reset of unknown zone %d", index)
	}
	z.WP = z.Extent.Start
	d.resets++
	return nil
}

// Readable reports whether every sector of ext has been written (reads
// beyond a write pointer return no valid data on real devices).
func (d *Device) Readable(ext geom.Extent) bool {
	for !ext.Empty() {
		z := d.Zone(ext.Start)
		if z == nil {
			return false
		}
		piece := ext.Intersect(z.Extent)
		if piece.End() > z.WP {
			return false
		}
		ext = geom.Span(piece.End(), ext.End())
	}
	return true
}

// Stats returns the operation counters: validated writes, resets and
// rejected (constraint-violating) operations.
func (d *Device) Stats() (writes, resets, violations int64) {
	return d.writes, d.resets, d.violations
}
