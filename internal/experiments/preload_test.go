package experiments

import (
	"sync"
	"testing"

	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

func TestPreloadedSharesArenaPerKey(t *testing.T) {
	p, err := workload.ByName("w91")
	if err != nil {
		t.Fatal(err)
	}
	a := preloaded(p, 0.01)
	if a != preloaded(p, 0.01) {
		t.Error("same workload+scale returned a different arena (regenerated)")
	}
	if a == preloaded(p, 0.02) {
		t.Error("different scales share one arena")
	}
	if want := trace.MaxLBA(a.Records()); a.MaxLBA() != want {
		t.Errorf("cached MaxLBA %d, want %d", a.MaxLBA(), want)
	}
}

func TestPreloadedConcurrentAccess(t *testing.T) {
	p, err := workload.ByName("w55")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	arenas := make([]*trace.Preloaded, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arenas[i] = preloaded(p, 0.01)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if arenas[i] != arenas[0] {
			t.Fatalf("concurrent callers got distinct arenas (%d vs 0)", i)
		}
	}
}
