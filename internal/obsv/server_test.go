package obsv_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/obsv"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServer(t *testing.T) {
	col := obsv.NewCollector()
	// Feed the collector a little traffic so the snapshot is non-trivial.
	col.OnOp(core.OpEvent{Kind: disk.Read, Lba: geom.Ext(0, 8), Frags: 3})
	col.OnAccess(core.AccessEvent{Access: disk.Access{
		Kind: disk.Read, Extent: geom.Ext(100, 8), Seeked: true, Distance: -4096}})

	srv, err := obsv.Serve("127.0.0.1:0", col, true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var snap obsv.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v\n%s", err, body)
	}
	if snap.Ops != 1 || snap.Reads != 1 || snap.Seeks != 1 {
		t.Errorf("snapshot = %+v, want 1 op/read/seek", snap)
	}
	if snap.SeekDistance.Total != 1 || len(snap.SeekDistance.Buckets) != 1 {
		t.Errorf("seek histogram not served: %+v", snap.SeekDistance)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "\"smrseek\"") {
		t.Errorf("/debug/vars status %d, smrseek var present=%v",
			code, strings.Contains(body, "\"smrseek\""))
	}

	if code, _ = get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d with pprof enabled", code)
	}

	// A second server (fresh collector, pprof off) must coexist: the
	// expvar var is process-global and re-pointed, not re-published.
	col2 := obsv.NewCollector()
	srv2, err := obsv.Serve("127.0.0.1:0", col2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if code, _ = get(t, fmt.Sprintf("http://%s/debug/pprof/", srv2.Addr())); code == http.StatusOK {
		t.Error("/debug/pprof/ served with pprof disabled")
	}
	if code, _ = get(t, fmt.Sprintf("http://%s/metrics", srv2.Addr())); code != http.StatusOK {
		t.Errorf("second server /metrics: status %d", code)
	}
}

func TestServeRegistryMultiVolume(t *testing.T) {
	reg := obsv.NewRegistry()
	a, b := obsv.NewCollector(), obsv.NewCollector()
	a.OnOp(core.OpEvent{Kind: disk.Read, Lba: geom.Ext(0, 8), Frags: 2})
	b.OnOp(core.OpEvent{Kind: disk.Write, Lba: geom.Ext(0, 8)})
	b.OnOp(core.OpEvent{Kind: disk.Write, Lba: geom.Ext(8, 8)})
	for name, c := range map[string]*obsv.Collector{"a": a, "b": b} {
		if err := reg.Register(name, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Register("a", obsv.NewCollector()); err == nil {
		t.Error("duplicate Register(a) succeeded, want error")
	}
	if err := reg.Register("c", nil); err == nil {
		t.Error("Register(nil collector) succeeded, want error")
	}

	srv, err := obsv.ServeRegistry("127.0.0.1:0", reg, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// No selector: a name-keyed object holding every volume.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var all map[string]obsv.Snapshot
	if err := json.Unmarshal([]byte(body), &all); err != nil {
		t.Fatalf("/metrics is not a name-keyed object: %v\n%s", err, body)
	}
	if all["a"].Reads != 1 || all["b"].Writes != 2 {
		t.Errorf("aggregate metrics = %+v, want a:1 read, b:2 writes", all)
	}

	// ?volume= selects one collector's bare snapshot.
	code, body = get(t, base+"/metrics?volume=b")
	if code != http.StatusOK {
		t.Fatalf("/metrics?volume=b: status %d", code)
	}
	var snap obsv.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("per-volume metrics is not a Snapshot: %v\n%s", err, body)
	}
	if snap.Writes != 2 {
		t.Errorf("volume b snapshot = %+v, want 2 writes", snap)
	}

	if code, _ = get(t, base+"/metrics?volume=nope"); code != http.StatusNotFound {
		t.Errorf("/metrics?volume=nope: status %d, want 404", code)
	}

	code, body = get(t, base+"/volumes")
	if code != http.StatusOK {
		t.Fatalf("/volumes: status %d", code)
	}
	var names []string
	if err := json.Unmarshal([]byte(body), &names); err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("/volumes = %q (err %v), want [a b]", body, err)
	}
}
