package stl

import (
	"errors"
	"os"
	"testing"

	"smrseek/internal/geom"
	"smrseek/internal/journal"
)

// buildSealedDir journals n writes with small segments so the journal
// carries several sealed segments, then closes the log. Returns the
// live state for comparison.
func buildSealedDir(t *testing.T, dir string, n int) *LS {
	t.Helper()
	log, err := journal.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.SetSegmentSize(2); err != nil {
		t.Fatal(err)
	}
	live := NewLS(0)
	for i := 0; i < n; i++ {
		journaledWrite(t, live, log, geom.Ext(int64(i)*8, 8))
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return live
}

// recoverOutcome captures everything RecoverDirWith returns, normalised
// for cross-worker-count comparison: Elapsed is wall clock and Workers
// is the knob under test, so both are zeroed before comparing.
type recoverOutcome struct {
	frontier geom.Sector
	written  geom.Sector
	st       ReplayStats
	err      error
}

func recoverAt(t *testing.T, dir string, workers int) (recoverOutcome, *LS) {
	t.Helper()
	l, st, err := RecoverDirWith(dir, RecoverOptions{VerifyOnRecover: true, Workers: workers})
	st.Elapsed = 0
	st.Workers = 0
	o := recoverOutcome{st: st, err: err}
	if l != nil {
		o.frontier = l.Frontier()
		o.written = l.LogSectors()
	}
	return o, l
}

// TestRecoverDirWithWorkersDifferential runs verified recovery at every
// worker count over clean, torn-crash, and corrupt journal directories
// and asserts the outcome is bit-identical to sequential recovery:
// same extent map, same ReplayStats (wall clock and worker count
// zeroed), same error classification.
func TestRecoverDirWithWorkersDifferential(t *testing.T) {
	workerMatrix := []int{1, 2, 8}

	dirs := map[string]string{}

	// Clean sealed journal, checkpoint plus sealed tail segments.
	clean := t.TempDir()
	buildSealedDir(t, clean, 10)
	dirs["clean"] = clean

	// Torn crash mid-append: CrashAfter leaves a half-written frame.
	torn := t.TempDir()
	{
		log, err := journal.Open(torn, 500)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.SetSegmentSize(2); err != nil {
			t.Fatal(err)
		}
		log.CrashAfter(9, 13)
		live := NewLS(500)
		for i := 0; i < 20; i++ {
			if !journaledWrite(t, live, log, geom.Ext(int64(i)*8, 8)) {
				break
			}
		}
		log.Close()
		dirs["torn"] = torn
	}

	// Corrupt sealed region: flip a byte inside the first record frame.
	corrupt := t.TempDir()
	{
		buildSealedDir(t, corrupt, 10)
		raw, err := os.ReadFile(journal.JournalPath(corrupt))
		if err != nil {
			t.Fatal(err)
		}
		raw[70] ^= 0x01
		if err := os.WriteFile(journal.JournalPath(corrupt), raw, 0o666); err != nil {
			t.Fatal(err)
		}
		dirs["corrupt"] = corrupt
	}

	for name, dir := range dirs {
		want, wantL := recoverAt(t, dir, 1)
		for _, w := range workerMatrix {
			got, gotL := recoverAt(t, dir, w)
			if got.st != want.st {
				t.Errorf("%s workers=%d: stats %+v, sequential %+v", name, w, got.st, want.st)
			}
			if got.frontier != want.frontier || got.written != want.written {
				t.Errorf("%s workers=%d: frontier/written (%d,%d), sequential (%d,%d)",
					name, w, got.frontier, got.written, want.frontier, want.written)
			}
			if (got.err == nil) != (want.err == nil) {
				t.Errorf("%s workers=%d: err %v, sequential %v", name, w, got.err, want.err)
			} else if got.err != nil {
				var gc, wc *journal.CorruptError
				if errors.As(got.err, &gc) != errors.As(want.err, &wc) || (gc != nil && *gc != *wc) {
					t.Errorf("%s workers=%d: corrupt error %v, sequential %v", name, w, got.err, want.err)
				}
			}
			if gotL != nil && wantL != nil {
				if diff := wantL.Map().Diff(gotL.Map()); diff != "" {
					t.Errorf("%s workers=%d: map diverges: %s", name, w, diff)
				}
			}
		}
	}

	// Sanity on the matrix itself: the corrupt dir must actually fail
	// and the torn dir must actually report a torn tail, or the
	// differential is vacuous.
	if _, st, err := RecoverDirWith(dirs["torn"], RecoverOptions{VerifyOnRecover: true}); err != nil || !st.TornTail {
		t.Errorf("torn fixture: %+v, %v, want TornTail", st, err)
	}
	if _, _, err := RecoverDirWith(dirs["corrupt"], RecoverOptions{VerifyOnRecover: true}); !errors.Is(err, journal.ErrCorrupt) {
		t.Errorf("corrupt fixture: %v, want ErrCorrupt", err)
	}

	// Stats the daemon logs are populated on success.
	if _, st, err := RecoverDirWith(dirs["clean"], RecoverOptions{VerifyOnRecover: true, Workers: 2}); err != nil {
		t.Fatal(err)
	} else if st.Workers != 2 || st.JournalBytes == 0 || st.Elapsed <= 0 {
		t.Errorf("clean recovery stats not populated: %+v", st)
	}
}
