// Fitting example: the trace-substitution methodology, closed loop.
//
// The paper's traces are not redistributable, so this repository ships
// synthetic stand-ins (DESIGN.md §3). This example shows the same
// substitution applied automatically: take an "original" trace (here,
// one of the catalog workloads playing the role of a private production
// trace), fit a synthetic profile to it with smrseek.FitWorkload, and
// verify the regenerated stand-in lands in the same seek-amplification
// regime under every Figure 11 variant.
package main

import (
	"fmt"
	"log"

	"smrseek"
)

func main() {
	// Pretend w55 is a private trace we cannot share.
	original := smrseek.MustWorkload("w55").Generate(0.5)

	fitted, err := smrseek.FitWorkload("w55-standin", original, 2024)
	if err != nil {
		log.Fatal(err)
	}
	standin := fitted.Generate(1.0)

	co := smrseek.Characterize(original)
	cs := smrseek.Characterize(standin)
	fmt.Printf("%-22s %12s %12s\n", "", "original", "stand-in")
	fmt.Printf("%-22s %12d %12d\n", "operations", co.Ops, cs.Ops)
	fmt.Printf("%-22s %12.2f %12.2f\n", "write intensity", co.WriteIntensity(), cs.WriteIntensity())
	fmt.Printf("%-22s %12.1f %12.1f\n", "mean write KB", co.MeanWriteKB, cs.MeanWriteKB)

	cmpO, err := smrseek.ComparePaper(original)
	if err != nil {
		log.Fatal(err)
	}
	cmpS, err := smrseek.ComparePaper(standin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-14s %12s %12s\n", "variant", "orig SAF", "stand-in SAF")
	for i, v := range cmpO.Variants {
		fmt.Printf("%-14s %12.2f %12.2f\n", v.Name, v.Total, cmpS.Variants[i].Total)
	}
	fmt.Println("\nThe stand-in is not the trace — but it amplifies where the original")
	fmt.Println("amplifies and responds to the same mechanisms, which is what a")
	fmt.Println("seek study needs from a shareable substitute.")
}
