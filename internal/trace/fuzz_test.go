package trace

import (
	"bytes"
	"math"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// checkFuzzedRecord asserts the structural guarantees every parser must
// uphold no matter what bytes it was fed: extents are valid, non-empty
// (empty I/Os are dropped, not returned), and their end does not wrap.
func checkFuzzedRecord(t *testing.T, rec Record) {
	t.Helper()
	if rec.Extent.Start < 0 || rec.Extent.Count <= 0 {
		t.Fatalf("parser returned invalid extent %+v", rec.Extent)
	}
	if rec.Extent.Start > math.MaxInt64-rec.Extent.Count {
		t.Fatalf("parser returned overflowing extent %+v", rec.Extent)
	}
	if rec.Kind != disk.Read && rec.Kind != disk.Write {
		t.Fatalf("parser returned unknown op kind %v", rec.Kind)
	}
}

func FuzzParseMSR(f *testing.F) {
	f.Add([]byte("128166372003061629,hm,1,Read,383496192,32768,41116\n"))
	f.Add([]byte("0,hm,0,Write,0,512,0\n"))
	f.Add([]byte("# comment\n\n1,h,2,read,1,1,0\n"))
	f.Add([]byte("1,h,2,Read,9223372036854775807,9223372036854775807,0\n"))
	f.Add([]byte("1,h,2,Read,-5,10,0\n"))
	f.Add([]byte("not,a,valid,line\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, filter := range []int{-1, 0} {
			r := NewMSRReader(bytes.NewReader(data), filter)
			for {
				rec, ok := r.Next()
				if !ok {
					break
				}
				checkFuzzedRecord(t, rec)
				// MSR extents come from byte ranges rounded outward to
				// whole sectors, so End is bounded well below overflow.
				if rec.Extent.End() > math.MaxInt64/geom.SectorSize+2 {
					t.Fatalf("extent %+v beyond addressable bytes", rec.Extent)
				}
			}
			// Err is sticky: after a reported failure Next stays false.
			if r.Err() != nil {
				if _, ok := r.Next(); ok {
					t.Fatal("Next returned a record after Err")
				}
			}
		}
	})
}

func FuzzParseCloudPhysics(f *testing.F) {
	f.Add([]byte(CPHeader + "\n100,R,2048,8\n200,W,0,1\n"))
	f.Add([]byte("0,r,0,0\n1,w,5,5\n"))
	f.Add([]byte("1,R,9223372036854775807,2\n"))
	f.Add([]byte("1,X,0,1\n"))
	f.Add([]byte("1,R,-1,1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewCPReader(bytes.NewReader(data))
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			checkFuzzedRecord(t, rec)
		}
		if r.Err() != nil {
			if _, ok := r.Next(); ok {
				t.Fatal("Next returned a record after Err")
			}
		}
	})
}

// TestParserOverflowGuards pins the overflow rejections the fuzzers rely
// on: ranges that would wrap int64 are parse errors, not panics.
func TestParserOverflowGuards(t *testing.T) {
	msr := NewMSRReader(bytes.NewReader(
		[]byte("1,h,0,Read,9223372036854775807,9223372036854775807,0\n")), -1)
	if _, ok := msr.Next(); ok || msr.Err() == nil {
		t.Errorf("MSR overflow line: ok=%v err=%v, want rejection", ok, msr.Err())
	}
	cp := NewCPReader(bytes.NewReader([]byte("1,R,9223372036854775807,2\n")))
	if _, ok := cp.Next(); ok || cp.Err() == nil {
		t.Errorf("CP overflow line: ok=%v err=%v, want rejection", ok, cp.Err())
	}
}
