// Package lru provides a size-aware least-recently-used container: each
// entry carries a byte cost and the cache evicts from the cold end until
// the configured capacity is respected. It is the building block for the
// translation-aware selective cache and the prefetch buffer.
package lru

import "container/list"

// EvictFunc is called with each entry removed by capacity pressure (not
// by explicit Remove).
type EvictFunc[K comparable, V any] func(key K, value V)

// Cache is a size-aware LRU. It is not safe for concurrent use; the
// simulator is single-threaded by design (determinism).
type Cache[K comparable, V any] struct {
	capacity int64
	used     int64
	ll       *list.List
	items    map[K]*list.Element
	onEvict  EvictFunc[K, V]

	hits, misses int64
}

type entry[K comparable, V any] struct {
	key   K
	value V
	size  int64
}

// New returns a cache holding at most capacity bytes. A non-positive
// capacity means the cache stores nothing (every Add evicts immediately).
func New[K comparable, V any](capacity int64) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element),
	}
}

// OnEvict registers a callback invoked for each capacity eviction.
func (c *Cache[K, V]) OnEvict(fn EvictFunc[K, V]) { c.onEvict = fn }

// Len returns the number of entries.
func (c *Cache[K, V]) Len() int { return c.ll.Len() }

// Used returns the summed size of all entries in bytes.
func (c *Cache[K, V]) Used() int64 { return c.used }

// Capacity returns the configured capacity in bytes.
func (c *Cache[K, V]) Capacity() int64 { return c.capacity }

// Hits and Misses report Get statistics.
func (c *Cache[K, V]) Hits() int64 { return c.hits }

// Misses reports the number of Get calls that found nothing.
func (c *Cache[K, V]) Misses() int64 { return c.misses }

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value without touching recency or hit statistics.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[K, V]).value, true
	}
	var zero V
	return zero, false
}

// Add inserts or updates key with the given value and byte size, marks it
// most recently used, and evicts cold entries until the capacity holds.
// An entry larger than the whole capacity is evicted immediately.
func (c *Cache[K, V]) Add(key K, value V, size int64) {
	if size < 0 {
		size = 0
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[K, V])
		c.used += size - e.size
		e.value = value
		e.size = size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry[K, V]{key: key, value: value, size: size})
		c.items[key] = el
		c.used += size
	}
	c.evictTo(c.capacity)
}

// Remove deletes key if present and reports whether it was there. The
// eviction callback is not invoked.
func (c *Cache[K, V]) Remove(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

// Oldest returns the coldest key without disturbing recency.
func (c *Cache[K, V]) Oldest() (K, bool) {
	if el := c.ll.Back(); el != nil {
		return el.Value.(*entry[K, V]).key, true
	}
	var zero K
	return zero, false
}

// Keys returns all keys from most to least recently used.
func (c *Cache[K, V]) Keys() []K {
	out := make([]K, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[K, V]).key)
	}
	return out
}

// Clear drops every entry without invoking the eviction callback.
func (c *Cache[K, V]) Clear() {
	c.ll.Init()
	c.items = make(map[K]*list.Element)
	c.used = 0
}

func (c *Cache[K, V]) evictTo(limit int64) {
	for c.used > limit {
		el := c.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry[K, V])
		c.removeElement(el)
		if c.onEvict != nil {
			c.onEvict(e.key, e.value)
		}
	}
}

func (c *Cache[K, V]) removeElement(el *list.Element) {
	e := el.Value.(*entry[K, V])
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= e.size
}
