package volume_test

import (
	"context"
	"errors"
	"os"
	"reflect"
	"sync"
	"testing"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
	"smrseek/internal/volume"
	"smrseek/internal/workload"
)

// smallTrace generates a deterministic workload slice for tests.
func smallTrace(t *testing.T, scale float64) []trace.Record {
	t.Helper()
	p, err := workload.ByName("w91")
	if err != nil {
		t.Fatal(err)
	}
	return p.Generate(scale)
}

// feed plays every record through the volume in order via blocking Do.
func feed(t *testing.T, v *volume.Volume, recs []trace.Record) {
	t.Helper()
	ctx := context.Background()
	for _, rec := range recs {
		kind := volume.OpWrite
		if rec.Kind == disk.Read {
			kind = volume.OpRead
		}
		if _, err := v.Do(ctx, kind, rec.Extent); err != nil {
			t.Fatalf("Do(%v %v): %v", rec.Kind, rec.Extent, err)
		}
	}
}

// statsEqual compares run statistics modulo Config (the direct run and
// the volume carry different Config values by construction).
func statsEqual(a, b core.Stats) bool {
	a.Config, b.Config = core.Config{}, core.Config{}
	return reflect.DeepEqual(a, b)
}

// TestVolumeDeterminism is the actor-model contract: a volume fed a
// trace in order produces Stats bit-identical to a direct
// single-threaded run of the same trace under the same configuration.
func TestVolumeDeterminism(t *testing.T) {
	recs := smallTrace(t, 0.02)
	d := core.DefaultDefragConfig()
	cc := core.DefaultCacheConfig()
	cfg := core.Config{
		LogStructured: true,
		FrontierStart: core.FrontierFor(recs),
		Defrag:        &d,
		Cache:         &cc,
	}

	direct, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Run(trace.NewSliceReader(recs))
	if err != nil {
		t.Fatal(err)
	}

	v, err := volume.Open(volume.Config{Name: "det", Sim: cfg})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, v, recs)
	res, err := v.Do(context.Background(), volume.OpStat, geom.Extent{})
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(*res.Stats, want) {
		t.Errorf("live Stat diverged from direct run:\n got %+v\nwant %+v", *res.Stats, want)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats(); !statsEqual(got, want) {
		t.Errorf("final Stats diverged from direct run:\n got %+v\nwant %+v", got, want)
	}
}

// TestVolumeReadFrags checks that read responses report the resolved
// fragment count: an LBA range written in two separated passes resolves
// to two physical fragments.
func TestVolumeReadFrags(t *testing.T) {
	v, err := volume.Open(volume.Config{Name: "frags", Sim: core.Config{
		LogStructured: true, FrontierStart: 1 << 20,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	ctx := context.Background()
	// Two non-adjacent writes land at consecutive log positions; the
	// interleaved write of a different LBA splits them physically.
	for _, ext := range []geom.Extent{geom.Ext(0, 8), geom.Ext(100, 8), geom.Ext(8, 8)} {
		if _, err := v.Do(ctx, volume.OpWrite, ext); err != nil {
			t.Fatal(err)
		}
	}
	res, err := v.Do(ctx, volume.OpRead, geom.Ext(0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Frags != 2 {
		t.Errorf("read [0,16) resolved to %d fragments, want 2", res.Frags)
	}
}

// TestVolumeBackpressure pins the admission-control contract: with the
// actor stalled and the queue full, TryDo sheds with ErrOverloaded
// instead of queueing without bound.
func TestVolumeBackpressure(t *testing.T) {
	v, err := volume.Open(volume.Config{
		Name: "bp", Sim: core.Config{LogStructured: true, FrontierStart: 1 << 20},
		QueueDepth: 2, BatchSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// Stall the actor deterministically: pre-fill the first request's
	// done channel so the actor blocks delivering its result.
	stall := make(chan volume.Result, 1)
	stall <- volume.Result{}
	if err := v.TryDo(volume.Request{Kind: volume.OpStat}, stall); err != nil {
		t.Fatal(err)
	}

	// Fill the queue, then overflow it.
	done := make(chan volume.Result, 8)
	shed := 0
	for i := 0; i < 8; i++ {
		err := v.TryDo(volume.Request{Kind: volume.OpWrite, Extent: geom.Ext(int64(i)*8, 8)}, done)
		if errors.Is(err, volume.ErrOverloaded) {
			shed++
		} else if err != nil {
			t.Fatalf("TryDo: %v", err)
		}
	}
	if shed < 6 { // queue depth 2 admits at most 2 of the 8
		t.Errorf("shed %d of 8 requests with queue depth 2, want >= 6", shed)
	}

	// Release the actor and confirm the admitted requests complete.
	<-stall
	<-stall
	for i := 0; i < 8-shed; i++ {
		<-done
	}
}

// TestVolumeJournalDurability pins the durability round-trip: a volume
// closed mid-workload checkpoints its state; reopening the directory
// recovers it, and the combined two-session run leaves the exact extent
// map and frontier a single uninterrupted run produces.
func TestVolumeJournalDurability(t *testing.T) {
	recs := smallTrace(t, 0.01)
	writes := make([]trace.Record, 0, len(recs))
	for _, r := range recs {
		if r.Kind == disk.Write {
			writes = append(writes, r)
		}
	}
	if len(writes) < 10 {
		t.Fatalf("workload too small: %d writes", len(writes))
	}
	half := len(writes) / 2
	frontier := core.FrontierFor(recs)

	// Reference: one uninterrupted journal-free run of every write.
	ref := stl.NewLS(frontier)
	for _, r := range writes {
		ref.Write(r.Extent)
	}

	dir := t.TempDir()
	cfg := volume.Config{
		Name:       "dur",
		Sim:        core.Config{LogStructured: true, FrontierStart: frontier},
		JournalDir: dir, CheckpointEvery: 64,
	}
	v1, err := volume.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Recovery != nil {
		t.Fatal("fresh journal dir reported a recovery")
	}
	feed(t, v1, writes[:half])
	if err := v1.Close(); err != nil {
		t.Fatal(err)
	}

	v2, err := volume.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Recovery == nil || !v2.Recovery.FromCheckpoint {
		t.Fatalf("reopen did not recover from checkpoint: %+v", v2.Recovery)
	}
	feed(t, v2, writes[half:])
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, _, err := stl.RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Frontier() != ref.Frontier() {
		t.Errorf("recovered frontier %d, want %d", recovered.Frontier(), ref.Frontier())
	}
	if !recovered.Map().Equal(ref.Map()) {
		t.Errorf("recovered map diverges from uninterrupted run:\n%s", recovered.Map().Diff(ref.Map()))
	}
}

func TestVolumeSnapshotOp(t *testing.T) {
	ctx := context.Background()

	plain, err := volume.Open(volume.Config{Name: "plain", Sim: core.Config{LogStructured: true, FrontierStart: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Do(ctx, volume.OpSnapshot, geom.Extent{}); !errors.Is(err, volume.ErrNoJournal) {
		t.Errorf("Snapshot without journal: err = %v, want ErrNoJournal", err)
	}

	wal, err := volume.Open(volume.Config{
		Name: "wal", Sim: core.Config{LogStructured: true, FrontierStart: 4096},
		JournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if _, err := wal.Do(ctx, volume.OpWrite, geom.Ext(0, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Do(ctx, volume.OpSnapshot, geom.Extent{}); err != nil {
		t.Errorf("Snapshot with journal: %v", err)
	}
}

// TestVolumeVerifyAndProofOps drives the integrity ops end to end: a
// journaled volume audits clean, serves verifying inclusion proofs for
// sealed records, and rejects proof requests for unsealed ones.
func TestVolumeVerifyAndProofOps(t *testing.T) {
	ctx := context.Background()

	plain, err := volume.Open(volume.Config{Name: "plain", Sim: core.Config{LogStructured: true, FrontierStart: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Do(ctx, volume.OpVerify, geom.Extent{}); !errors.Is(err, volume.ErrNoJournal) {
		t.Errorf("Verify without journal: %v, want ErrNoJournal", err)
	}
	if _, err := plain.DoRequest(ctx, volume.Request{Kind: volume.OpProof, Seq: 1}); !errors.Is(err, volume.ErrNoJournal) {
		t.Errorf("Proof without journal: %v, want ErrNoJournal", err)
	}

	v, err := volume.Open(volume.Config{
		Name: "sealed", Sim: core.Config{LogStructured: true, FrontierStart: 4096},
		JournalDir: t.TempDir(), SealEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for i := int64(0); i < 5; i++ {
		if _, err := v.Do(ctx, volume.OpWrite, geom.Ext(i*8, 8)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := v.Do(ctx, volume.OpVerify, geom.Extent{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit == nil || len(res.Audit.Segments) != 2 || res.Audit.SealedRecords != 4 ||
		res.Audit.TailRecords != 1 || res.Audit.TailTorn {
		t.Fatalf("audit = %+v", res.Audit)
	}
	res, err = v.DoRequest(ctx, volume.Request{Kind: volume.OpProof, Seq: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proof == nil || res.Proof.Verify() != nil || res.Proof.Segment != 1 {
		t.Fatalf("proof = %+v", res.Proof)
	}
	if _, err := v.DoRequest(ctx, volume.Request{Kind: volume.OpProof, Seq: 5}); !errors.Is(err, journal.ErrUnsealed) {
		t.Errorf("proof of unsealed record: %v, want ErrUnsealed", err)
	}
	// A snapshot seals everything; record 5 becomes provable in the next
	// generation only — the old generation's proofs are folded away.
	if _, err := v.Do(ctx, volume.OpSnapshot, geom.Extent{}); err != nil {
		t.Fatal(err)
	}
	res, err = v.Do(ctx, volume.OpVerify, geom.Extent{})
	if err != nil || res.Audit.SealedRecords != 0 || !res.Audit.HasCheckpoint {
		t.Fatalf("post-snapshot audit = %+v, %v", res.Audit, err)
	}
}

// TestVolumeRefusesCorruptJournal: recovery verification is on by
// default and refuses a volume whose sealed journal was tampered with;
// SkipVerifyOnRecover (and nothing else) lets it open.
func TestVolumeRefusesCorruptJournal(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := volume.Config{
		Name: "tamper", Sim: core.Config{LogStructured: true, FrontierStart: 4096},
		JournalDir: dir, SealEvery: 2,
	}
	v, err := volume.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if _, err := v.Do(ctx, volume.OpWrite, geom.Ext(i*8, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	// Close checkpointed; delete the checkpoint so the journal's anchor
	// dangles — tampering the linkage without touching a single record.
	if err := os.Remove(journal.CheckpointPath(dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := volume.Open(cfg); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("open over tampered journal dir: %v, want ErrCorrupt", err)
	}
	skip := cfg
	skip.SkipVerifyOnRecover = true
	v2, err := volume.Open(skip)
	if err != nil {
		t.Fatalf("SkipVerifyOnRecover open: %v", err)
	}
	if v2.Recovery == nil || v2.Recovery.Verified {
		t.Errorf("skip-verify recovery stats: %+v", v2.Recovery)
	}
	v2.Close()
}

func TestVolumeClosed(t *testing.T) {
	v, err := volume.Open(volume.Config{Name: "closed", Sim: core.Config{LogStructured: true, FrontierStart: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	done := make(chan volume.Result, 1)
	if err := v.TryDo(volume.Request{Kind: volume.OpStat}, done); !errors.Is(err, volume.ErrClosed) {
		t.Errorf("TryDo after Close: err = %v, want ErrClosed", err)
	}
	if _, err := v.Do(context.Background(), volume.OpStat, geom.Extent{}); !errors.Is(err, volume.ErrClosed) {
		t.Errorf("Do after Close: err = %v, want ErrClosed", err)
	}
}

func TestVolumeUnbufferedDone(t *testing.T) {
	v, err := volume.Open(volume.Config{Name: "unbuf", Sim: core.Config{LogStructured: true, FrontierStart: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.TryDo(volume.Request{Kind: volume.OpStat}, make(chan volume.Result)); err == nil {
		t.Error("TryDo with unbuffered done succeeded, want error")
	}
}

func TestVolumeConfigValidation(t *testing.T) {
	cases := []volume.Config{
		{},                          // empty name
		{Name: "x", QueueDepth: -1}, // negative queue
		{Name: "x", BatchSize: -2},  // negative batch
		{Name: "x", CheckpointEvery: -1},
		{Name: "x", JournalDir: "/tmp/j"}, // journal without LS
		{Name: "x", Sim: core.Config{LogStructured: true, Journal: &core.JournalConfig{}}},
	}
	for i, cfg := range cases {
		if _, err := volume.Open(cfg); err == nil {
			t.Errorf("case %d: Open(%+v) succeeded, want error", i, cfg)
		}
	}
}

// TestConcurrentVolumes runs many volumes at once, each fed from its
// own goroutine while a scraper polls Stat from outside — the first
// multi-simulator concurrency path in the repo; the -race CI job keeps
// it honest.
func TestConcurrentVolumes(t *testing.T) {
	recs := smallTrace(t, 0.01)
	const n = 6
	cfgs := make([]volume.Config, n)
	for i := range cfgs {
		cfgs[i] = volume.Config{
			Name: string(rune('a' + i)),
			Sim:  core.Config{LogStructured: true, FrontierStart: core.FrontierFor(recs)},
		}
	}
	m, err := volume.OpenAll(cfgs...)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, name := range m.Names() {
		v, _ := m.Get(name)
		wg.Add(1)
		go func(v *volume.Volume) {
			defer wg.Done()
			feed(t, v, recs)
		}(v)
	}
	// Concurrent scrapers: live Stat requests and collector snapshots.
	stop := make(chan struct{})
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		ctx := context.Background()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, name := range m.Names() {
				v, _ := m.Get(name)
				if _, err := v.Do(ctx, volume.OpStat, geom.Extent{}); err != nil && !errors.Is(err, volume.ErrClosed) {
					t.Error(err)
					return
				}
				v.Collector().Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrape.Wait()

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Every volume executed the same trace: identical op counts.
	for _, name := range m.Names() {
		v, _ := m.Get(name)
		st := v.Stats()
		if st.Reads+st.Writes != int64(len(recs)) {
			t.Errorf("volume %s: %d ops, want %d", name, st.Reads+st.Writes, len(recs))
		}
	}
}

// TestOpenAllRecoversConcurrently opens many journaled volumes at once:
// OpenAll recovers them on concurrent goroutines, but the result must be
// indistinguishable from sequential opens — names in config order, every
// volume recovered, and on damage the first error in config order, not
// whichever open lost the race.
func TestOpenAllRecoversConcurrently(t *testing.T) {
	const n = 8
	frontier := geom.Sector(4096)
	// seed journals six writes into a fresh dir — no checkpoint, so the
	// opens below replay (and verify) three sealed segments each.
	seed := func(dir string) {
		t.Helper()
		log, err := journal.Open(dir, frontier)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.SetSegmentSize(2); err != nil {
			t.Fatal(err)
		}
		for j := int64(0); j < 6; j++ {
			if err := log.Append(journal.Record{
				Kind: journal.RecWrite, Lba: geom.Ext(j*8, 8), Pba: frontier + geom.Sector(j*8),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cfgs := make([]volume.Config, n)
	for i := range cfgs {
		dir := t.TempDir()
		cfgs[i] = volume.Config{
			Name:       string(rune('a' + i)),
			Sim:        core.Config{LogStructured: true, FrontierStart: frontier},
			JournalDir: dir, SealEvery: 2,
		}
		seed(dir)
	}

	m, err := volume.OpenAll(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	names := m.Names()
	for i, name := range names {
		if want := cfgs[i].Name; name != want {
			t.Errorf("Names()[%d] = %q, want %q (config order)", i, name, want)
		}
		v, _ := m.Get(name)
		if v.Recovery == nil || !v.Recovery.Verified || v.Recovery.Replayed != 6 || v.Recovery.SealedSegments != 3 {
			t.Errorf("volume %s recovery stats: %+v, want 6 replayed over 3 verified segments", name, v.Recovery)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage volumes c and f (indices 2 and 5) with a byte flip inside a
	// sealed record (reseeding first: Close above checkpoint-rotated the
	// journals): both opens fail concurrently, and OpenAll must report
	// c — first in config order — every time.
	for _, i := range []int{2, 5} {
		dir := t.TempDir()
		cfgs[i].JournalDir = dir
		seed(dir)
		path := journal.JournalPath(dir)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[70] ^= 0x01
		if err := os.WriteFile(path, raw, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	for run := 0; run < 5; run++ {
		_, err := volume.OpenAll(cfgs...)
		if err == nil || !errors.Is(err, journal.ErrCorrupt) {
			t.Fatalf("run %d: OpenAll over damaged dirs: %v, want ErrCorrupt", run, err)
		}
		if got := err.Error(); len(got) < 8 || got[:8] != "volume c" {
			t.Fatalf("run %d: first error is %q, want volume c's (config order)", run, got)
		}
	}
}

func TestManagerDuplicateName(t *testing.T) {
	cfg := core.Config{LogStructured: true, FrontierStart: 4096}
	if _, err := volume.OpenAll(
		volume.Config{Name: "dup", Sim: cfg},
		volume.Config{Name: "dup", Sim: cfg},
	); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestManagerRegistry(t *testing.T) {
	cfg := core.Config{LogStructured: true, FrontierStart: 4096}
	m, err := volume.OpenAll(
		volume.Config{Name: "r0", Sim: cfg},
		volume.Config{Name: "r1", Sim: cfg},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	names := m.Registry().Names()
	if len(names) != 2 || names[0] != "r0" || names[1] != "r1" {
		t.Errorf("registry names = %v, want [r0 r1]", names)
	}
	if _, ok := m.Registry().Get("r1"); !ok {
		t.Error("registry missing r1")
	}
	if _, ok := m.Get("r2"); ok {
		t.Error("Get(r2) found a volume")
	}
}
