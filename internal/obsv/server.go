package obsv

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	hpprof "net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry maps volume names to collectors so one HTTP endpoint can
// serve every volume of a multi-tenant process (smrd). A single-run CLI
// serves an unnamed registry of one collector through Serve, which keeps
// its historical bare-snapshot /metrics shape.
type Registry struct {
	mu    sync.RWMutex
	names []string // registration order
	cols  map[string]*Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cols: make(map[string]*Collector)}
}

// Register adds a named collector. Registering a duplicate name or a
// nil collector is an error; registration while serving is safe.
func (r *Registry) Register(name string, c *Collector) error {
	if c == nil {
		return fmt.Errorf("obsv: nil collector for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.cols[name]; dup {
		return fmt.Errorf("obsv: collector %q already registered", name)
	}
	r.names = append(r.names, name)
	r.cols[name] = c
	return nil
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// Get returns the named collector.
func (r *Registry) Get(name string) (*Collector, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.cols[name]
	return c, ok
}

// snapshot freezes the registry for serving: with exactly one collector
// it returns that collector's bare Snapshot (the single-run CLI shape);
// with several it returns a name-keyed object.
func (r *Registry) snapshot() interface{} {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.names) == 1 {
		return r.cols[r.names[0]].Snapshot()
	}
	all := make(map[string]Snapshot, len(r.names))
	for name, c := range r.cols {
		all[name] = c.Snapshot()
	}
	return all
}

// The expvar registry is global and Publish panics on duplicate names,
// so the package publishes a single "smrseek" var once and redirects it
// to whichever registry was served most recently. Tests and repeated
// CLI runs in one process thus never collide.
var (
	pubOnce    sync.Once
	currentReg atomic.Pointer[Registry]
)

func publishExpvar(r *Registry) {
	currentReg.Store(r)
	pubOnce.Do(func() {
		expvar.Publish("smrseek", expvar.Func(func() interface{} {
			if r := currentReg.Load(); r != nil {
				return r.snapshot()
			}
			return nil
		}))
	})
}

// Server serves live introspection for a registry of collectors:
//
//	/metrics            one collector: its Snapshot as JSON;
//	                    several: a {"name": Snapshot, ...} object
//	/metrics?volume=x   the named collector's Snapshot (404 if absent)
//	/volumes            the registered names as a JSON array
//	/debug/vars         standard expvar JSON (includes the "smrseek" var)
//	/debug/pprof        net/http/pprof handlers (only when enabled)
//
// The listener binds eagerly so the caller learns the bound address
// (useful with ":0") and bind errors synchronously.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and starts serving a single collector — the
// single-run CLI path, equivalent to ServeRegistry over a one-entry
// unnamed registry.
func Serve(addr string, c *Collector, pprof bool) (*Server, error) {
	reg := NewRegistry()
	if err := reg.Register("", c); err != nil {
		return nil, err
	}
	return ServeRegistry(addr, reg, pprof)
}

// ServeRegistry binds addr and starts serving every collector in the
// registry on one mux. With pprof false the /debug/pprof endpoints are
// absent — profiling costs nothing until asked for.
func ServeRegistry(addr string, reg *Registry, pprof bool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		var payload interface{}
		if name := req.URL.Query().Get("volume"); name != "" {
			c, ok := reg.Get(name)
			if !ok {
				http.Error(w, fmt.Sprintf("unknown volume %q", name), http.StatusNotFound)
				return
			}
			payload = c.Snapshot()
		} else {
			payload = reg.snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
	mux.HandleFunc("/volumes", func(w http.ResponseWriter, _ *http.Request) {
		names := reg.Names()
		sort.Strings(names)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(names)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if pprof {
		mux.HandleFunc("/debug/pprof/", hpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", hpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", hpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", hpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", hpprof.Trace)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:37041" for ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
