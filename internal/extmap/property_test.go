package extmap

import (
	"flag"
	"math/rand"
	"testing"
	"time"

	"smrseek/internal/geom"
)

// Property-based differential test: the AVL extent map is compared,
// operation by operation, against a brutally simple reference model — a
// flat per-sector array. The array cannot represent mapping *structure*
// (how sectors group into mappings), so structure-dependent results are
// compared as per-sector sets; everything the simulator actually
// consumes (Lookup fragments, displaced/removed sectors, mapped totals,
// static fragmentation) is derivable from the array exactly.

var propSeed = flag.Int64("extmap.seed", 0,
	"property test seed (0 = derive from time; the chosen seed is logged)")

// refModel maps each LBA sector to its PBA, or -1 when unmapped.
type refModel struct {
	pba []geom.Sector
}

func newRefModel(sectors int64) *refModel {
	m := &refModel{pba: make([]geom.Sector, sectors)}
	for i := range m.pba {
		m.pba[i] = -1
	}
	return m
}

// sectorMapping is one (lba, pba) pair, the unit both sides are
// flattened to before comparison.
type sectorMapping struct {
	lba, pba geom.Sector
}

// insert maps lba to the run starting at pba and returns the per-sector
// mappings it displaced, in ascending LBA order.
func (m *refModel) insert(lba geom.Extent, pba geom.Sector) []sectorMapping {
	var displaced []sectorMapping
	for i := int64(0); i < lba.Count; i++ {
		s := lba.Start + i
		if m.pba[s] != -1 {
			displaced = append(displaced, sectorMapping{lba: s, pba: m.pba[s]})
		}
		m.pba[s] = pba + i
	}
	return displaced
}

// delete unmaps lba and returns the per-sector mappings it removed.
func (m *refModel) delete(lba geom.Extent) []sectorMapping {
	var removed []sectorMapping
	for i := int64(0); i < lba.Count; i++ {
		s := lba.Start + i
		if m.pba[s] != -1 {
			removed = append(removed, sectorMapping{lba: s, pba: m.pba[s]})
			m.pba[s] = -1
		}
	}
	return removed
}

// resolve returns the physical address serving each sector of q
// (identity for unmapped sectors) plus whether the sector is unmapped.
func (m *refModel) resolve(s geom.Sector) (geom.Sector, bool) {
	if m.pba[s] == -1 {
		return s, true
	}
	return m.pba[s], false
}

// lookup derives the exact Lookup result from the array: maximal runs
// of physically-consecutive sectors, Identity = every sector unmapped.
func (m *refModel) lookup(q geom.Extent) []Resolved {
	var out []Resolved
	for i := int64(0); i < q.Count; i++ {
		s := q.Start + i
		pba, ident := m.resolve(s)
		if n := len(out); n > 0 && out[n-1].Pba+out[n-1].Lba.Count == pba &&
			out[n-1].Lba.End() == s {
			out[n-1].Lba.Count++
			out[n-1].Identity = out[n-1].Identity && ident
			continue
		}
		out = append(out, Resolved{Lba: geom.Ext(s, 1), Pba: pba, Identity: ident})
	}
	return out
}

// mappedSectors counts mapped sectors; runs counts maximal runs
// contiguous in both spaces (what a fully-coalesced map must hold).
func (m *refModel) mappedSectors() (total int64) {
	for _, p := range m.pba {
		if p != -1 {
			total++
		}
	}
	return total
}

func (m *refModel) runs() int {
	n := 0
	for s, p := range m.pba {
		if p == -1 {
			continue
		}
		if s == 0 || m.pba[s-1] == -1 || m.pba[s-1]+1 != p {
			n++
		}
	}
	return n
}

// staticFragments mirrors Map.StaticFragments on the array: breaks in a
// sequential whole-device read, identity placement for unmapped sectors.
func (m *refModel) staticFragments() int {
	frags := 0
	prev := geom.Sector(-2) // never adjacent to sector 0's pba
	for s := range m.pba {
		pba, _ := m.resolve(geom.Sector(s))
		if pba != prev+1 {
			frags++
		}
		prev = pba
	}
	return frags
}

// flatten expands mappings to per-sector pairs so displaced/removed
// pieces can be compared independently of how the map groups them.
func flatten(ms []Mapping) []sectorMapping {
	var out []sectorMapping
	for _, p := range ms {
		for i := int64(0); i < p.Lba.Count; i++ {
			out = append(out, sectorMapping{lba: p.Lba.Start + i, pba: p.Pba + i})
		}
	}
	return out
}

func sectorsEqual(a, b []sectorMapping) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func resolvedEqual(a, b []Resolved) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPropertyDifferential drives New and NewCoalesced maps through a
// random mix of Insert/Delete/Lookup against the reference model,
// checking structural invariants after every mutation. Failures log the
// seed; rerun with -extmap.seed to reproduce.
func TestPropertyDifferential(t *testing.T) {
	seed := *propSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("extmap property seed %d (rerun: go test ./internal/extmap -run Property -extmap.seed %d)", seed, seed)

	const (
		device = 4096 // small address space => dense overlap/split/merge traffic
		ops    = 3000
	)
	variants := []struct {
		name      string
		mk        func() *Map
		coalesced bool
	}{
		{"New", New, false},
		{"NewCoalesced", NewCoalesced, true},
	}
	for vi, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + int64(vi)))
			m := v.mk()
			ref := newRefModel(device)
			nextPba := geom.Sector(device) // a log frontier past the LBA space
			randExt := func() geom.Extent {
				start := rng.Int63n(device - 1)
				return geom.Ext(start, rng.Int63n(min(64, device-start))+1)
			}
			for i := 0; i < ops; i++ {
				switch op := rng.Intn(10); {
				case op < 5: // insert at the frontier (log-structured style)
					lba := randExt()
					pba := nextPba
					if rng.Intn(8) == 0 {
						// Occasionally reuse a low PBA so coalescing and
						// physical-contiguity merging get exercised harder.
						pba = rng.Int63n(device)
					} else {
						nextPba += lba.Count
					}
					var got []sectorMapping
					if i%2 == 0 {
						// Drive the visitor API directly; Insert is its
						// slice-collecting wrapper, so alternating covers
						// both entry points differentially.
						var pieces []Mapping
						m.InsertFunc(lba, pba, func(p Mapping) bool {
							pieces = append(pieces, p)
							return true
						})
						got = flatten(pieces)
					} else {
						got = flatten(m.Insert(lba, pba))
					}
					want := ref.insert(lba, pba)
					if !sectorsEqual(got, want) {
						t.Fatalf("op %d: Insert(%v, %d) displaced %v, reference %v", i, lba, pba, got, want)
					}
				case op < 7:
					lba := randExt()
					got := flatten(m.Delete(lba))
					want := ref.delete(lba)
					if !sectorsEqual(got, want) {
						t.Fatalf("op %d: Delete(%v) removed %v, reference %v", i, lba, got, want)
					}
				default:
					q := randExt()
					got := m.Lookup(q)
					want := ref.lookup(q)
					if !resolvedEqual(got, want) {
						t.Fatalf("op %d: Lookup(%v) = %v, reference %v", i, q, got, want)
					}
					var streamed []Resolved
					m.LookupFunc(q, func(r Resolved) bool {
						streamed = append(streamed, r)
						return true
					})
					if !resolvedEqual(streamed, want) {
						t.Fatalf("op %d: LookupFunc(%v) streamed %v, reference %v", i, q, streamed, want)
					}
					if len(want) > 1 {
						// Early stop yields exactly the first fragment.
						var first []Resolved
						m.LookupFunc(q, func(r Resolved) bool {
							first = append(first, r)
							return false
						})
						if !resolvedEqual(first, want[:1]) {
							t.Fatalf("op %d: LookupFunc(%v) early stop %v, want %v", i, q, first, want[:1])
						}
					}
					if f := m.Fragments(q); f != len(want) {
						t.Fatalf("op %d: Fragments(%v) = %d, reference %d", i, q, f, len(want))
					}
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				if got, want := m.MappedSectors(), ref.mappedSectors(); got != want {
					t.Fatalf("op %d: MappedSectors = %d, reference %d", i, got, want)
				}
				if v.coalesced {
					if got, want := m.Len(), ref.runs(); got != want {
						t.Fatalf("op %d: coalesced Len = %d, reference runs %d", i, got, want)
					}
				}
				if i%97 == 0 { // O(device) check, sampled to keep the test fast
					if got, want := m.StaticFragments(device), ref.staticFragments(); got != want {
						t.Fatalf("op %d: StaticFragments = %d, reference %d", i, got, want)
					}
				}
			}
			// Final whole-space sweep: the two sides agree sector by sector.
			full := m.Lookup(geom.Ext(0, device))
			if want := ref.lookup(geom.Ext(0, device)); !resolvedEqual(full, want) {
				t.Fatalf("final sweep diverges: %v vs %v", full, want)
			}
		})
	}
}
