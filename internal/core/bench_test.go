package core

import (
	"testing"

	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

func benchRecords(b *testing.B, name string) []trace.Record {
	b.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return p.Generate(0.3)
}

func benchRun(b *testing.B, cfg Config, recs []trace.Record) {
	b.Helper()
	if cfg.LogStructured && cfg.FrontierStart == 0 {
		cfg.FrontierStart = trace.MaxLBA(recs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(trace.NewSliceReader(recs)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)*b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkPipeline measures simulation throughput per configuration —
// the incremental cost of each mechanism over the bare pipeline.
func BenchmarkPipeline(b *testing.B) {
	recs := benchRecords(b, "w91")
	d, p, c := DefaultDefragConfig(), DefaultPrefetchConfig(), DefaultCacheConfig()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"NoLS", Config{}},
		{"LS", Config{LogStructured: true}},
		{"LS+defrag", Config{LogStructured: true, Defrag: &d}},
		{"LS+prefetch", Config{LogStructured: true, Prefetch: &p}},
		{"LS+cache", Config{LogStructured: true, Cache: &c}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) { benchRun(b, tc.cfg, recs) })
	}
}
