module smrseek

go 1.22
