// Package lru provides a size-aware least-recently-used container: each
// entry carries a byte cost and the cache evicts from the cold end until
// the configured capacity is respected. It is the building block for the
// translation-aware selective cache and the prefetch buffer.
package lru

// EvictFunc is called with each entry removed by capacity pressure (not
// by explicit Remove).
type EvictFunc[K comparable, V any] func(key K, value V)

// entry is an intrusive doubly-linked list node. Entries removed from
// the cache are recycled through a freelist (threaded via next), so the
// insert/evict churn of a long run stops allocating once the cache has
// reached its working size.
type entry[K comparable, V any] struct {
	key        K
	value      V
	size       int64
	prev, next *entry[K, V]
}

// Cache is a size-aware LRU. It is not safe for concurrent use; the
// simulator is single-threaded by design (determinism).
type Cache[K comparable, V any] struct {
	capacity int64
	used     int64
	items    map[K]*entry[K, V]
	root     entry[K, V] // sentinel: root.next is MRU, root.prev is LRU
	free     *entry[K, V]
	onEvict  EvictFunc[K, V]

	hits, misses int64
}

// New returns a cache holding at most capacity bytes. A non-positive
// capacity means the cache stores nothing (every Add evicts immediately).
func New[K comparable, V any](capacity int64) *Cache[K, V] {
	c := &Cache[K, V]{
		capacity: capacity,
		items:    make(map[K]*entry[K, V]),
	}
	c.root.prev = &c.root
	c.root.next = &c.root
	return c
}

// OnEvict registers a callback invoked for each capacity eviction.
func (c *Cache[K, V]) OnEvict(fn EvictFunc[K, V]) { c.onEvict = fn }

// Len returns the number of entries.
func (c *Cache[K, V]) Len() int { return len(c.items) }

// Used returns the summed size of all entries in bytes.
func (c *Cache[K, V]) Used() int64 { return c.used }

// Capacity returns the configured capacity in bytes.
func (c *Cache[K, V]) Capacity() int64 { return c.capacity }

// Hits and Misses report Get statistics.
func (c *Cache[K, V]) Hits() int64 { return c.hits }

// Misses reports the number of Get calls that found nothing.
func (c *Cache[K, V]) Misses() int64 { return c.misses }

// unlink detaches e from the recency list.
func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

// pushFront links e as most recently used.
func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = &c.root
	e.next = c.root.next
	e.next.prev = e
	c.root.next = e
}

// newEntry takes an entry from the freelist or allocates one.
func (c *Cache[K, V]) newEntry() *entry[K, V] {
	if e := c.free; e != nil {
		c.free = e.next
		*e = entry[K, V]{}
		return e
	}
	return &entry[K, V]{}
}

// recycle returns a detached entry to the freelist, dropping its key and
// value so the cache does not pin them.
func (c *Cache[K, V]) recycle(e *entry[K, V]) {
	*e = entry[K, V]{next: c.free}
	c.free = e
}

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if e, ok := c.items[key]; ok {
		c.unlink(e)
		c.pushFront(e)
		c.hits++
		return e.value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value without touching recency or hit statistics.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if e, ok := c.items[key]; ok {
		return e.value, true
	}
	var zero V
	return zero, false
}

// Add inserts or updates key with the given value and byte size, marks it
// most recently used, and evicts cold entries until the capacity holds.
// An entry larger than the whole capacity is evicted immediately.
func (c *Cache[K, V]) Add(key K, value V, size int64) {
	if size < 0 {
		size = 0
	}
	if e, ok := c.items[key]; ok {
		c.used += size - e.size
		e.value = value
		e.size = size
		c.unlink(e)
		c.pushFront(e)
	} else {
		e := c.newEntry()
		e.key = key
		e.value = value
		e.size = size
		c.pushFront(e)
		c.items[key] = e
		c.used += size
	}
	c.evictTo(c.capacity)
}

// Remove deletes key if present and reports whether it was there. The
// eviction callback is not invoked.
func (c *Cache[K, V]) Remove(key K) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeEntry(e)
	return true
}

// Oldest returns the coldest key without disturbing recency.
func (c *Cache[K, V]) Oldest() (K, bool) {
	if e := c.root.prev; e != &c.root {
		return e.key, true
	}
	var zero K
	return zero, false
}

// Keys returns all keys from most to least recently used.
func (c *Cache[K, V]) Keys() []K {
	return c.AppendKeys(make([]K, 0, len(c.items)))
}

// AppendKeys appends all keys, most to least recently used, to dst and
// returns the extended slice — the buffer-reusing form of Keys for hot
// paths that scan the cache repeatedly.
func (c *Cache[K, V]) AppendKeys(dst []K) []K {
	for e := c.root.next; e != &c.root; e = e.next {
		dst = append(dst, e.key)
	}
	return dst
}

// Clear drops every entry without invoking the eviction callback.
func (c *Cache[K, V]) Clear() {
	for e := c.root.next; e != &c.root; {
		next := e.next
		c.recycle(e)
		e = next
	}
	c.root.prev = &c.root
	c.root.next = &c.root
	clear(c.items)
	c.used = 0
}

func (c *Cache[K, V]) evictTo(limit int64) {
	for c.used > limit {
		e := c.root.prev
		if e == &c.root {
			return
		}
		key, value := e.key, e.value
		c.removeEntry(e)
		if c.onEvict != nil {
			c.onEvict(key, value)
		}
	}
}

func (c *Cache[K, V]) removeEntry(e *entry[K, V]) {
	c.unlink(e)
	delete(c.items, e.key)
	c.used -= e.size
	c.recycle(e)
}
