package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// Binary trace format: a compact, stream-friendly encoding for large
// traces (about 5x smaller and an order of magnitude faster to parse
// than CSV). Layout:
//
//	magic   [8]byte  "SMRSEEK1"
//	records *
//	  flagKind uint8   bit0: kind (0 read, 1 write); bit1: has time delta
//	  timeDelta varint (ns since previous record; present iff bit1)
//	  lba      uvarint (delta-encoded against previous record's LBA, zigzag)
//	  sectors  uvarint
//
// Delta encoding keeps sequential workloads to ~4 bytes per record.

// BinaryMagic identifies binary trace streams.
var BinaryMagic = [8]byte{'S', 'M', 'R', 'S', 'E', 'E', 'K', '1'}

const (
	flagWrite   = 1 << 0
	flagHasTime = 1 << 1
)

// WriteBinary encodes records in the binary trace format.
func WriteBinary(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(BinaryMagic[:]); err != nil {
		return err
	}
	var buf [3 * binary.MaxVarintLen64]byte
	prevTime := int64(0)
	prevLBA := geom.Sector(0)
	for _, r := range recs {
		flags := byte(0)
		if r.Kind == disk.Write {
			flags |= flagWrite
		}
		dt := r.Time - prevTime
		if dt != 0 {
			flags |= flagHasTime
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		n := 0
		if dt != 0 {
			n += binary.PutVarint(buf[n:], dt)
		}
		n += binary.PutVarint(buf[n:], r.Extent.Start-prevLBA)
		n += binary.PutUvarint(buf[n:], uint64(r.Extent.Count))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prevTime = r.Time
		prevLBA = r.Extent.Start
	}
	return bw.Flush()
}

// BinaryReader decodes the binary trace format.
type BinaryReader struct {
	br       *bufio.Reader
	err      error
	started  bool
	prevTime int64
	prevLBA  geom.Sector
}

// NewBinaryReader returns a Reader over binary trace input.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{br: bufio.NewReader(r)}
}

// Next implements Reader.
func (b *BinaryReader) Next() (Record, bool) {
	if b.err != nil {
		return Record{}, false
	}
	if !b.started {
		var magic [8]byte
		if _, err := io.ReadFull(b.br, magic[:]); err != nil {
			b.err = fmt.Errorf("binary trace: missing magic: %w", err)
			return Record{}, false
		}
		if magic != BinaryMagic {
			b.err = fmt.Errorf("binary trace: bad magic %q", magic)
			return Record{}, false
		}
		b.started = true
	}
	flags, err := b.br.ReadByte()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			b.err = err
		}
		return Record{}, false
	}
	var rec Record
	if flags&flagWrite != 0 {
		rec.Kind = disk.Write
	}
	if flags&flagHasTime != 0 {
		dt, err := binary.ReadVarint(b.br)
		if err != nil {
			b.err = fmt.Errorf("binary trace: time delta: %w", truncated(err))
			return Record{}, false
		}
		b.prevTime += dt
	}
	rec.Time = b.prevTime
	dl, err := binary.ReadVarint(b.br)
	if err != nil {
		b.err = fmt.Errorf("binary trace: lba delta: %w", truncated(err))
		return Record{}, false
	}
	b.prevLBA += dl
	count, err := binary.ReadUvarint(b.br)
	if err != nil {
		b.err = fmt.Errorf("binary trace: sector count: %w", truncated(err))
		return Record{}, false
	}
	if b.prevLBA < 0 || count == 0 || count > 1<<40 {
		b.err = fmt.Errorf("binary trace: invalid record lba=%d count=%d", b.prevLBA, count)
		return Record{}, false
	}
	rec.Extent = geom.Ext(b.prevLBA, int64(count))
	return rec, true
}

// truncated maps EOF inside a record to an informative error.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errors.New("truncated record")
	}
	return err
}

// Err implements Reader.
func (b *BinaryReader) Err() error { return b.err }
