// Package mcache implements the media-cache translation layer the paper
// describes as the design shipped in real drive-managed SMR devices
// (§II): host writes are logged to a reserved region of the disk (the
// media cache), and later merged back into data zones where they are
// stored in LBA order. Because merged data lives at its LBA, read seek
// amplification is minimal — but every merge rewrites whole zones,
// producing the high cleaning overhead the paper's log-structured
// alternative avoids.
//
// The layer implements stl.Layer for address translation, stl.Maintainer
// to surface merge I/O to the simulator's disk model, and stl.Amplifier
// to report write amplification. A zone.Device underneath validates that
// every physical write obeys SMR sequential-write constraints.
package mcache

import (
	"fmt"
	"sort"

	"smrseek/internal/disk"
	"smrseek/internal/extmap"
	"smrseek/internal/geom"
	"smrseek/internal/stl"
	"smrseek/internal/zone"
)

// Config sizes the media-cache layer.
type Config struct {
	// DeviceSectors is the LBA space (the data region), a multiple of
	// ZoneSectors.
	DeviceSectors int64
	// ZoneSectors is the data zone size (commonly 256 MiB on real
	// drives; tests use smaller zones).
	ZoneSectors int64
	// CacheSectors is the reserved media-cache size, a multiple of
	// ZoneSectors. Drives reserve a few GB out of several TB.
	CacheSectors int64
	// MergeTrigger is the cache fill fraction that starts a merge of all
	// dirty zones. Defaults to 0.8.
	MergeTrigger float64
}

// DefaultConfig returns a small but representative geometry: an 8 GiB
// data region of 64 MiB zones with a 256 MiB media cache.
func DefaultConfig() Config {
	return Config{
		DeviceSectors: 8 << 21, // 8 GiB in sectors
		ZoneSectors:   64 << 11,
		CacheSectors:  256 << 11,
		MergeTrigger:  0.8,
	}
}

// Layer is the media-cache translation layer.
type Layer struct {
	cfg Config

	m    *extmap.Map // LBA → media-cache PBA, only for unmerged updates
	dev  *zone.Device
	head geom.Sector // next cache sector to fill
	used int64

	dirty map[int]bool // data zone index → has unmerged updates

	pending []stl.MaintenanceOp

	hostSectors  int64
	extraSectors int64
	merges       int64
	mergedZones  int64
}

// New builds a media-cache layer; the configuration must tile exactly
// into zones.
func New(cfg Config) (*Layer, error) {
	if cfg.ZoneSectors <= 0 {
		return nil, fmt.Errorf("mcache: non-positive zone size")
	}
	if cfg.DeviceSectors <= 0 || cfg.DeviceSectors%cfg.ZoneSectors != 0 {
		return nil, fmt.Errorf("mcache: device size %d not a multiple of zone size %d", cfg.DeviceSectors, cfg.ZoneSectors)
	}
	if cfg.CacheSectors <= 0 || cfg.CacheSectors%cfg.ZoneSectors != 0 {
		return nil, fmt.Errorf("mcache: cache size %d not a multiple of zone size %d", cfg.CacheSectors, cfg.ZoneSectors)
	}
	if cfg.MergeTrigger <= 0 || cfg.MergeTrigger > 1 {
		cfg.MergeTrigger = 0.8
	}
	dataZones := int(cfg.DeviceSectors / cfg.ZoneSectors)
	dev := zone.NewDevice(cfg.DeviceSectors+cfg.CacheSectors, cfg.ZoneSectors, 0)
	// The cache zones (after the data region) are conventional: the
	// media cache is itself written as a circular log, but drives place
	// it on conventional (non-shingled) tracks.
	l := &Layer{
		cfg:   cfg,
		m:     extmap.New(),
		dev:   dev,
		head:  cfg.DeviceSectors,
		dirty: make(map[int]bool),
	}
	// Data zones hold pre-existing data at PBA == LBA: mark them full.
	for i := 0; i < dataZones; i++ {
		z := dev.ZoneByIndex(i)
		if err := dev.Write(z.Extent); err != nil {
			return nil, fmt.Errorf("mcache: priming zone %d: %w", i, err)
		}
	}
	// Rebuild the device so the cache zones after the data region are
	// conventional while data zones stay sequential-required. (NewDevice
	// marks a prefix conventional; we want a suffix, so flip manually.)
	return l, l.markCacheZonesConventional()
}

func (l *Layer) markCacheZonesConventional() error {
	dataZones := int(l.cfg.DeviceSectors / l.cfg.ZoneSectors)
	total := l.dev.Zones()
	for i := dataZones; i < total; i++ {
		z := l.dev.ZoneByIndex(i)
		if z == nil {
			return fmt.Errorf("mcache: missing cache zone %d", i)
		}
		z.Kind = zone.Conventional
	}
	return nil
}

// Name implements stl.Layer.
func (l *Layer) Name() string { return "MediaCache" }

// Resolve implements stl.Layer: unmerged updates resolve into the cache
// region; everything else is at its LBA.
func (l *Layer) Resolve(lba geom.Extent) []stl.Fragment {
	if lba.Empty() {
		return nil
	}
	return l.ResolveAppend(nil, lba)
}

// ResolveAppend implements stl.AppendResolver.
func (l *Layer) ResolveAppend(dst []stl.Fragment, lba geom.Extent) []stl.Fragment {
	l.m.LookupFunc(lba, func(r extmap.Resolved) bool {
		dst = append(dst, stl.Fragment{Lba: r.Lba, Pba: r.Pba})
		return true
	})
	return dst
}

// Write implements stl.Layer: the extent is appended to the media cache
// (split when it wraps), and a merge is queued when the cache fills past
// the trigger.
func (l *Layer) Write(lba geom.Extent) []stl.Fragment {
	if lba.Empty() {
		return nil
	}
	l.hostSectors += lba.Count
	var frags []stl.Fragment
	rest := lba
	for !rest.Empty() {
		if l.spaceLeft() == 0 {
			l.merge()
		}
		n := rest.Count
		if n > l.spaceLeft() {
			n = l.spaceLeft()
		}
		piece := geom.Ext(rest.Start, n)
		pba := l.head
		if err := l.dev.WriteSplit(geom.Ext(pba, n)); err != nil {
			// The cache region is conventional, so this can only mean a
			// programming error; fail loudly.
			panic(fmt.Sprintf("mcache: cache append rejected: %v", err))
		}
		l.m.Insert(piece, pba)
		l.head += n
		l.used += n
		l.dirtyRange(piece)
		frags = append(frags, stl.Fragment{Lba: piece, Pba: pba})
		rest = geom.Span(piece.End(), rest.End())
	}
	if float64(l.used) >= l.cfg.MergeTrigger*float64(l.cfg.CacheSectors) {
		l.merge()
	}
	return frags
}

func (l *Layer) spaceLeft() int64 {
	return l.cfg.DeviceSectors + l.cfg.CacheSectors - l.head
}

func (l *Layer) dirtyRange(lba geom.Extent) {
	first := int(lba.Start / l.cfg.ZoneSectors)
	last := int((lba.End() - 1) / l.cfg.ZoneSectors)
	for z := first; z <= last; z++ {
		l.dirty[z] = true
	}
}

// merge performs the read-modify-write of every dirty data zone and
// resets the cache, queuing the physical I/O as maintenance operations:
// read the old zone, read the zone's cached updates out of the media
// cache, then rewrite the zone sequentially (reset + full write).
func (l *Layer) merge() {
	if len(l.dirty) == 0 {
		return
	}
	zones := make([]int, 0, len(l.dirty))
	for z := range l.dirty {
		zones = append(zones, z)
	}
	sort.Ints(zones)
	for _, zi := range zones {
		zext := geom.Ext(int64(zi)*l.cfg.ZoneSectors, l.cfg.ZoneSectors)
		// Read the zone's current contents.
		l.pending = append(l.pending, stl.MaintenanceOp{Kind: disk.Read, Extent: zext})
		// Read each cached fragment belonging to the zone.
		for _, r := range l.m.Lookup(zext) {
			if r.Identity {
				continue
			}
			l.pending = append(l.pending, stl.MaintenanceOp{Kind: disk.Read, Extent: r.PhysExtent()})
		}
		// Rewrite the zone in place, sequentially from its start.
		if err := l.dev.Reset(zi); err != nil {
			panic(fmt.Sprintf("mcache: reset zone %d: %v", zi, err))
		}
		if err := l.dev.Write(zext); err != nil {
			panic(fmt.Sprintf("mcache: zone rewrite rejected: %v", err))
		}
		l.pending = append(l.pending, stl.MaintenanceOp{Kind: disk.Write, Extent: zext})
		l.extraSectors += l.cfg.ZoneSectors
		l.m.Delete(zext)
		l.mergedZones++
	}
	l.dirty = make(map[int]bool)
	l.head = l.cfg.DeviceSectors
	l.used = 0
	l.merges++
}

// Flush forces an immediate merge of all dirty zones (end-of-run
// convenience so comparisons include the deferred cleaning cost).
func (l *Layer) Flush() { l.merge() }

// PendingMaintenance implements stl.Maintainer.
func (l *Layer) PendingMaintenance() []stl.MaintenanceOp {
	out := l.pending
	l.pending = nil
	return out
}

// HostSectors implements stl.Amplifier.
func (l *Layer) HostSectors() int64 { return l.hostSectors }

// ExtraSectors implements stl.Amplifier.
func (l *Layer) ExtraSectors() int64 { return l.extraSectors }

// Merges returns how many merge passes have run; MergedZones the total
// zone rewrites.
func (l *Layer) Merges() int64 { return l.merges }

// MergedZones returns the total number of zone rewrites performed.
func (l *Layer) MergedZones() int64 { return l.mergedZones }

// CachedSectors returns the sectors currently held in the media cache.
func (l *Layer) CachedSectors() int64 { return l.used }

// Device exposes the underlying zoned device (for constraint auditing).
func (l *Layer) Device() *zone.Device { return l.dev }

var (
	_ stl.Layer      = (*Layer)(nil)
	_ stl.Maintainer = (*Layer)(nil)
	_ stl.Amplifier  = (*Layer)(nil)
)
