// Package extmap implements the LBA→PBA extent map at the heart of a
// log-structured translation layer.
//
// The map is a set of disjoint LBA extents, each relocated to a physical
// (log) position. Writing a range punches a hole through any overlapping
// mappings — splitting, truncating or deleting them — and installs the new
// mapping, so the invariant "mappings are disjoint in LBA space" always
// holds. Looking up a range walks the covered mappings and merges pieces
// that are also physically contiguous, yielding the *fragments* the disk
// must visit to serve the read; the fragment count of a read is exactly
// the paper's "dynamic fragmentation".
//
// The implementation is an AVL tree keyed by LBA start. AVL (rather than
// a simpler structure) keeps worst-case O(log n) behaviour for the
// million-extent maps that long traces build up.
package extmap

import (
	"fmt"

	"smrseek/internal/geom"
)

// Mapping relocates the LBA extent to the physical address space:
// LBA sector Lba.Start+i is stored at PBA Pba+i.
type Mapping struct {
	Lba geom.Extent
	Pba geom.Sector
}

// PhysEnd returns the first PBA after the mapping.
func (m Mapping) PhysEnd() geom.Sector { return m.Pba + m.Lba.Count }

// PhysExtent returns the physical extent the mapping occupies.
func (m Mapping) PhysExtent() geom.Extent { return geom.Ext(m.Pba, m.Lba.Count) }

// String renders the mapping for diagnostics.
func (m Mapping) String() string {
	return fmt.Sprintf("%v->%d", m.Lba, m.Pba)
}

// node is an AVL tree node holding one mapping.
type node struct {
	m           Mapping
	left, right *node
	height      int
}

// maxAVLHeight bounds the tree height for iterative traversals: an AVL
// tree of n nodes is at most 1.44·log2(n) deep, so 96 levels cover far
// more mappings than a 64-bit address space can hold.
const maxAVLHeight = 96

// nodeSlabSize is how many nodes one freelist refill allocates at once,
// so a growing map costs one allocation per slab instead of per mapping.
const nodeSlabSize = 64

// Map is the extent map. The zero value is an empty map ready to use.
type Map struct {
	root *node
	n    int // number of mappings
	// coalesce, when set, merges mappings that are adjacent in LBA space
	// and contiguous in PBA space at Insert time, keeping the map minimal.
	coalesce bool
	// mapped caches the total mapped sector count so MappedSectors is
	// O(1); insertNode/deleteStart keep it current and CheckInvariants
	// cross-checks it against a direct tree fold.
	mapped int64
	// free is the node freelist (threaded through node.right): delete
	// and split churn recycles nodes here instead of hitting the GC, and
	// refills come in slabs of nodeSlabSize.
	free *node
	// scratch is the reusable overlap buffer for InsertFunc/Delete; it
	// is why callbacks must not mutate the map re-entrantly.
	scratch []Mapping
}

// New returns an empty extent map.
func New() *Map { return &Map{} }

// NewCoalesced returns an empty extent map that merges mappings adjacent
// in both LBA and PBA space on insert, so sequential log writes collapse
// into one mapping. Layers that attribute mapped extents to fixed-size
// physical regions (segments, zones) must use New instead: coalescing
// can fuse mappings across region boundaries.
func NewCoalesced() *Map { return &Map{coalesce: true} }

// Len returns the number of disjoint mappings (the paper's *static
// fragmentation* census counts breaks between them; see StaticFragments).
func (t *Map) Len() int { return t.n }

// MappedSectors returns the total number of LBA sectors with a mapping.
// The count is maintained incrementally on every insert and delete — no
// walk, no invalidation to miss — so report tables can poll it as a
// gauge; CheckInvariants cross-checks it against a direct tree fold.
func (t *Map) MappedSectors() int64 { return t.mapped }

// sumSectors is the direct tree fold behind the MappedSectors
// cross-check: the recursion carries no closure state.
func sumSectors(n *node) int64 {
	if n == nil {
		return 0
	}
	return sumSectors(n.left) + n.m.Lba.Count + sumSectors(n.right)
}

func h(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func update(n *node) *node {
	n.height = 1 + max(h(n.left), h(n.right))
	return n
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	update(y)
	return update(x)
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	update(x)
	return update(y)
}

func balance(n *node) *node {
	update(n)
	switch bf := h(n.left) - h(n.right); {
	case bf > 1:
		if h(n.left.left) < h(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if h(n.right.right) < h(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// newNode takes a node from the freelist, refilling it with a fresh slab
// when empty.
func (t *Map) newNode(m Mapping) *node {
	if t.free == nil {
		slab := make([]node, nodeSlabSize)
		for i := range slab[:len(slab)-1] {
			slab[i].right = &slab[i+1]
		}
		t.free = &slab[0]
	}
	n := t.free
	t.free = n.right
	*n = node{m: m, height: 1}
	return n
}

// recycle returns a detached node to the freelist. The node must no
// longer be reachable from the tree.
func (t *Map) recycle(n *node) {
	*n = node{right: t.free}
	t.free = n
}

// insertNode adds a mapping known not to overlap any existing mapping.
func (t *Map) insertNode(m Mapping) {
	t.root = t.insert(t.root, m)
	t.n++
	t.mapped += m.Lba.Count
}

func (t *Map) insert(n *node, m Mapping) *node {
	if n == nil {
		return t.newNode(m)
	}
	if m.Lba.Start < n.m.Lba.Start {
		n.left = t.insert(n.left, m)
	} else {
		n.right = t.insert(n.right, m)
	}
	return balance(n)
}

// deleteStart removes the mapping whose LBA start equals start; count is
// its sector count (every caller holds the full mapping), used to keep
// the MappedSectors cache current.
func (t *Map) deleteStart(start geom.Sector, count int64) {
	var deleted bool
	t.root, deleted = t.del(t.root, start)
	if deleted {
		t.n--
		t.mapped -= count
	}
}

func (t *Map) del(n *node, start geom.Sector) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case start < n.m.Lba.Start:
		n.left, deleted = t.del(n.left, start)
	case start > n.m.Lba.Start:
		n.right, deleted = t.del(n.right, start)
	default:
		deleted = true
		if n.left == nil {
			r := n.right
			t.recycle(n)
			return r, true
		}
		if n.right == nil {
			l := n.left
			t.recycle(n)
			return l, true
		}
		// Replace with successor; the recursion recycles the successor's
		// node when it bottoms out in one of the cases above.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.m = succ.m
		n.right, _ = t.del(n.right, succ.m.Lba.Start)
	}
	return balance(n), deleted
}

// visitOverlapping calls fn with every mapping overlapping q, in
// ascending LBA order, stopping early when fn returns false; the return
// value reports whether the walk ran to completion. The traversal is
// iterative over a fixed-size stack, so it allocates nothing — the core
// of the zero-allocation lookup path.
//
// Pruning relies on the disjointness invariant: mappings sorted by start
// never overlap, so at most ONE mapping starts before q.Start yet
// reaches into q (the predecessor of q.Start). A node starting below
// q.Start therefore never has a left-subtree overlap — whether or not
// it overlaps q itself — and a node starting at or past q.End() ends
// the in-order walk.
func (t *Map) visitOverlapping(q geom.Extent, fn func(Mapping) bool) bool {
	if q.Empty() {
		return true
	}
	var stack [maxAVLHeight]*node
	top := 0
	n := t.root
	for {
		for n != nil {
			switch {
			case n.m.Lba.Start >= q.Start:
				stack[top] = n
				top++
				n = n.left
			case n.m.Lba.End() > q.Start:
				// Starts before q but reaches into it: visit it, skip
				// its left subtree.
				stack[top] = n
				top++
				n = nil
			default:
				n = n.right
			}
		}
		if top == 0 {
			return true
		}
		top--
		nd := stack[top]
		if nd.m.Lba.Start >= q.End() {
			return true
		}
		if nd.m.Lba.Overlaps(q) && !fn(nd.m) {
			return false
		}
		n = nd.right
	}
}

// overlapScratch fills t.scratch with the mappings overlapping q, in
// ascending LBA order, so mutators can iterate a stable snapshot while
// they restructure the tree. The buffer is reused across calls.
func (t *Map) overlapScratch(q geom.Extent) []Mapping {
	t.scratch = t.scratch[:0]
	t.visitOverlapping(q, func(m Mapping) bool {
		t.scratch = append(t.scratch, m)
		return true
	})
	return t.scratch
}

// InsertFunc maps the LBA extent lba to the physical run starting at
// pba, replacing any previous mapping of those sectors; overlapped
// mappings are split or truncated so the disjointness invariant is
// preserved. Each displaced piece — a portion of an older mapping that
// lba overwrote, with its physical position — is passed to fn in
// ascending LBA order; fn may be nil when the caller does not care. A
// false return stops further notifications, but the insert itself
// always completes. The Mapping value is only valid during the
// callback, and fn must not mutate the map. This is the
// allocation-free core of Insert.
func (t *Map) InsertFunc(lba geom.Extent, pba geom.Sector, fn func(Mapping) bool) {
	if lba.Empty() {
		return
	}
	notify := fn != nil
	for _, old := range t.overlapScratch(lba) {
		t.deleteStart(old.Lba.Start, old.Lba.Count)
		if notify {
			ov := old.Lba.Intersect(lba)
			notify = fn(Mapping{Lba: ov, Pba: old.Pba + (ov.Start - old.Lba.Start)})
		}
		// Surviving pieces keep their original physical placement; a
		// mapping overlapping lba leaves at most a left and a right
		// remainder.
		if old.Lba.Start < lba.Start {
			t.insertNode(Mapping{Lba: geom.Span(old.Lba.Start, lba.Start), Pba: old.Pba})
		}
		if old.Lba.End() > lba.End() {
			t.insertNode(Mapping{
				Lba: geom.Span(lba.End(), old.Lba.End()),
				Pba: old.Pba + (lba.End() - old.Lba.Start),
			})
		}
	}
	t.insertNode(Mapping{Lba: lba, Pba: pba})
	if t.coalesce {
		t.coalesceAround(Mapping{Lba: lba, Pba: pba})
	}
}

// Insert is InsertFunc collecting the displaced pieces into a fresh
// slice — the convenient form for cold paths and tests.
func (t *Map) Insert(lba geom.Extent, pba geom.Sector) []Mapping {
	var displaced []Mapping
	t.InsertFunc(lba, pba, func(m Mapping) bool {
		displaced = append(displaced, m)
		return true
	})
	return displaced
}

// coalesceAround merges the just-inserted mapping with its LBA
// neighbours when they are contiguous in both address spaces. Because
// mappings are disjoint, only the immediate predecessor and successor
// can qualify, and both are found with one overlap query widened by a
// sector on each side.
func (t *Map) coalesceAround(m Mapping) {
	lo, hi := m, m
	t.visitOverlapping(geom.Ext(m.Lba.Start-1, m.Lba.Count+2), func(nb Mapping) bool {
		if nb.Lba.End() == m.Lba.Start && nb.PhysEnd() == m.Pba {
			lo = nb
		}
		if nb.Lba.Start == m.Lba.End() && m.PhysEnd() == nb.Pba {
			hi = nb
		}
		return true
	})
	if lo == m && hi == m {
		return
	}
	if lo != m {
		t.deleteStart(lo.Lba.Start, lo.Lba.Count)
	}
	if hi != m {
		t.deleteStart(hi.Lba.Start, hi.Lba.Count)
	}
	t.deleteStart(m.Lba.Start, m.Lba.Count)
	t.insertNode(Mapping{Lba: geom.Span(lo.Lba.Start, hi.Lba.End()), Pba: lo.Pba})
}

// Delete removes any mapping of the LBA extent (splitting mappings that
// straddle its boundary) and returns the removed pieces.
func (t *Map) Delete(lba geom.Extent) []Mapping {
	if lba.Empty() {
		return nil
	}
	var removed []Mapping
	for _, old := range t.overlapScratch(lba) {
		t.deleteStart(old.Lba.Start, old.Lba.Count)
		ov := old.Lba.Intersect(lba)
		removed = append(removed, Mapping{
			Lba: ov,
			Pba: old.Pba + (ov.Start - old.Lba.Start),
		})
		if old.Lba.Start < lba.Start {
			t.insertNode(Mapping{Lba: geom.Span(old.Lba.Start, lba.Start), Pba: old.Pba})
		}
		if old.Lba.End() > lba.End() {
			t.insertNode(Mapping{
				Lba: geom.Span(lba.End(), old.Lba.End()),
				Pba: old.Pba + (lba.End() - old.Lba.Start),
			})
		}
	}
	return removed
}

// resolveEmitter merges consecutive Resolved pieces that are contiguous
// in both address spaces before handing each maximal fragment to fn. It
// is the streaming equivalent of the old slice-building merge loop.
type resolveEmitter struct {
	fn   func(Resolved) bool
	pend Resolved
	have bool
}

// push stages r, flushing the pending fragment when r starts a new one;
// it returns false once fn has stopped the walk.
func (e *resolveEmitter) push(r Resolved) bool {
	if e.have {
		if e.pend.Lba.End() == r.Lba.Start && e.pend.Pba+e.pend.Lba.Count == r.Pba {
			// Physically contiguous with the pending piece: same fragment.
			e.pend.Lba.Count += r.Lba.Count
			e.pend.Identity = e.pend.Identity && r.Identity
			return true
		}
		if !e.fn(e.pend) {
			e.have = false
			return false
		}
	}
	e.pend, e.have = r, true
	return true
}

func (e *resolveEmitter) flush() {
	if e.have {
		e.fn(e.pend)
	}
}

// LookupFunc resolves the LBA extent like Lookup but streams each
// fragment to fn instead of building a slice, allocating nothing; a
// false return from fn stops the resolution. The Resolved value is only
// valid during the callback, and fn must not mutate the map.
func (t *Map) LookupFunc(q geom.Extent, fn func(Resolved) bool) {
	if q.Empty() {
		return
	}
	em := resolveEmitter{fn: fn}
	cur := q.Start
	completed := t.visitOverlapping(q, func(m Mapping) bool {
		if m.Lba.Start > cur {
			gap := geom.Span(cur, m.Lba.Start)
			if !em.push(Resolved{Lba: gap, Pba: gap.Start, Identity: true}) {
				return false
			}
		}
		ov := m.Lba.Intersect(q)
		if !em.push(Resolved{Lba: ov, Pba: m.Pba + (ov.Start - m.Lba.Start)}) {
			return false
		}
		cur = ov.End()
		return true
	})
	if !completed {
		return
	}
	if cur < q.End() {
		gap := geom.Span(cur, q.End())
		if !em.push(Resolved{Lba: gap, Pba: gap.Start, Identity: true}) {
			return
		}
	}
	em.flush()
}

// Lookup resolves the LBA extent into mappings, in ascending LBA order.
// Unmapped gaps are returned with Identity=true and Pba equal to the LBA
// start (the paper's "unwritten data is stored at a physical location
// corresponding to its LBA"). The pieces are maximal: consecutive pieces
// that are contiguous in both LBA and PBA space are merged — so each
// returned Resolved is one *fragment* and len(result) is the read's
// dynamic fragmentation. It is LookupFunc collecting into a fresh slice.
func (t *Map) Lookup(q geom.Extent) []Resolved {
	if q.Empty() {
		return nil
	}
	var out []Resolved
	t.LookupFunc(q, func(r Resolved) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Resolved is one physically-contiguous fragment of a resolved LBA range.
type Resolved struct {
	Lba      geom.Extent
	Pba      geom.Sector
	Identity bool // true when this piece was never written (PBA == LBA)
}

// PhysExtent returns the physical extent of the fragment.
func (r Resolved) PhysExtent() geom.Extent { return geom.Ext(r.Pba, r.Lba.Count) }

// Fragments returns the number of physically-contiguous pieces a read of q
// would touch — the paper's dynamic fragmentation of that read. It
// counts via LookupFunc, so polling it never materializes a slice.
func (t *Map) Fragments(q geom.Extent) int {
	n := 0
	t.LookupFunc(q, func(Resolved) bool {
		n++
		return true
	})
	return n
}

// Walk visits every mapping in ascending LBA order until fn returns false.
func (t *Map) Walk(fn func(Mapping) bool) {
	walk(t.root, fn)
}

func walk(n *node, fn func(Mapping) bool) bool {
	if n == nil {
		return true
	}
	if !walk(n.left, fn) {
		return false
	}
	if !fn(n.m) {
		return false
	}
	return walk(n.right, fn)
}

// StaticFragments counts the physical discontinuities a sequential read of
// the whole device (LBA 0..deviceSectors) would encounter — the paper's
// *static fragmentation*. Each mapping whose physical start does not
// follow the physical end of the preceding LBA run is a break.
func (t *Map) StaticFragments(deviceSectors int64) int {
	if deviceSectors <= 0 {
		return 0
	}
	frags := 0
	prevPbaEnd := geom.Sector(-1) // sentinel: the first piece always counts
	// Pieces are visited in ascending LBA order with identity gaps filled
	// in, so LBA continuity is guaranteed; only PBA continuity matters.
	count := func(lba geom.Extent, pba geom.Sector) {
		if pba != prevPbaEnd {
			frags++
		}
		prevPbaEnd = pba + lba.Count
	}
	cur := geom.Sector(0)
	t.Walk(func(m Mapping) bool {
		if m.Lba.Start >= deviceSectors {
			return false
		}
		if m.Lba.Start > cur {
			count(geom.Span(cur, m.Lba.Start), cur) // identity gap
		}
		count(m.Lba, m.Pba)
		cur = m.Lba.End()
		return true
	})
	if cur < deviceSectors {
		count(geom.Span(cur, deviceSectors), cur)
	}
	return frags
}

// CheckInvariants validates the map's structural invariants: AVL balance
// and height bookkeeping, mappings sorted by LBA start, non-empty and
// non-overlapping, and — for maps built with NewCoalesced — fully
// coalesced (no two adjacent mappings contiguous in both LBA and PBA
// space). Recovery and property tests call it after every mutation
// storm; it is O(n).
func (t *Map) CheckInvariants() error {
	var prev *Mapping
	var walkErr error
	var check func(n *node) int
	check = func(n *node) int {
		if n == nil || walkErr != nil {
			return 0
		}
		lh := check(n.left)
		rh := check(n.right)
		if walkErr != nil {
			return 0
		}
		if d := lh - rh; d < -1 || d > 1 {
			walkErr = fmt.Errorf("extmap: unbalanced node %v (lh=%d rh=%d)", n.m, lh, rh)
		}
		got := 1 + max(lh, rh)
		if n.height != got {
			walkErr = fmt.Errorf("extmap: stale height at %v: %d != %d", n.m, n.height, got)
		}
		return got
	}
	check(t.root)
	if walkErr != nil {
		return walkErr
	}
	count := 0
	t.Walk(func(m Mapping) bool {
		count++
		if m.Lba.Empty() {
			walkErr = fmt.Errorf("extmap: empty mapping %v", m)
			return false
		}
		if prev != nil && prev.Lba.End() > m.Lba.Start {
			walkErr = fmt.Errorf("extmap: overlap %v then %v", *prev, m)
			return false
		}
		if t.coalesce && prev != nil && prev.Lba.End() == m.Lba.Start && prev.PhysEnd() == m.Pba {
			walkErr = fmt.Errorf("extmap: uncoalesced adjacent mappings %v then %v", *prev, m)
			return false
		}
		mm := m
		prev = &mm
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	if count != t.n {
		return fmt.Errorf("extmap: Len()=%d but walk saw %d", t.n, count)
	}
	if got := sumSectors(t.root); got != t.mapped {
		return fmt.Errorf("extmap: MappedSectors()=%d but tree fold sums %d", t.mapped, got)
	}
	return nil
}

// Diff compares two maps' mapping sequences and returns a description of
// the first divergence, or "" when they are identical. Recovery tests
// use it to assert a replayed map is bit-identical to the live one.
func (t *Map) Diff(o *Map) string {
	if t.n != o.n {
		return fmt.Sprintf("mapping counts differ: %d vs %d", t.n, o.n)
	}
	var other []Mapping
	o.Walk(func(m Mapping) bool {
		other = append(other, m)
		return true
	})
	i := 0
	diff := ""
	t.Walk(func(m Mapping) bool {
		if other[i] != m {
			diff = fmt.Sprintf("mapping %d differs: %v vs %v", i, m, other[i])
			return false
		}
		i++
		return true
	})
	return diff
}

// Equal reports whether the two maps hold identical mapping sequences.
func (t *Map) Equal(o *Map) bool { return t.Diff(o) == "" }
