// Package chaos is a fault-injection harness for replicated smrd: it
// stands up in-process primary/follower nodes over real TCP listeners,
// routes replication traffic through a killable, partitionable,
// byte-corrupting proxy, and exposes the crash-shaped failure modes the
// chaos tests drive — kill the primary mid-load, partition and heal the
// follower, slow the link, corrupt shipped segments.
//
// Kill is deliberately crash-shaped: it stops the server and the
// replication loops but never drains or checkpoints the volumes, so the
// journal directories are left exactly as a SIGKILL would leave them.
package chaos

import (
	"fmt"
	"net"
	"path/filepath"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/geom"
	"smrseek/internal/repl"
	"smrseek/internal/server"
	"smrseek/internal/volume"
)

// Config shapes one node.
type Config struct {
	// Volumes are the volume names (each journals under Root/<name>).
	Volumes []string
	// Frontier is every volume's log frontier start sector.
	Frontier geom.Sector
	// SealEvery / CheckpointEvery are the journal cadences (records).
	SealEvery       int64
	CheckpointEvery int64
	// SyncTimeout / ForceSealEvery / TailWait / PollEvery tune the
	// replication primary (see repl.PrimaryConfig).
	SyncTimeout    time.Duration
	ForceSealEvery time.Duration
	TailWait       time.Duration
	PollEvery      time.Duration
	// Peers are polled for a higher fencing epoch.
	Peers []string
	// Source is the address a follower pulls from.
	Source string
	// Logf receives node diagnostics (nil = discard).
	Logf func(format string, args ...any)
}

func (c Config) logf() func(string, ...any) {
	if c.Logf != nil {
		return c.Logf
	}
	return func(string, ...any) {}
}

// volConfigs expands the node config into volume configurations.
func (c Config) volConfigs(root string) []volume.Config {
	cfgs := make([]volume.Config, 0, len(c.Volumes))
	for _, name := range c.Volumes {
		cfgs = append(cfgs, volume.Config{
			Name:            name,
			Sim:             core.Config{LogStructured: true, FrontierStart: c.Frontier},
			JournalDir:      filepath.Join(root, name),
			SealEvery:       c.SealEvery,
			CheckpointEvery: c.CheckpointEvery,
		})
	}
	return cfgs
}

// Node is one in-process smrd node.
type Node struct {
	Root string
	Addr string
	Prim *repl.Primary  // non-nil on a primary
	Fol  *repl.Follower // non-nil on a follower

	srv    *server.Server
	mgr    *volume.Manager
	killed bool
}

// StartPrimary opens the volumes under root with replication attached
// and serves them on a fresh loopback listener.
func StartPrimary(root string, cfg Config) (*Node, error) {
	prim, err := repl.NewPrimary(repl.PrimaryConfig{
		Root:           root,
		SyncTimeout:    cfg.SyncTimeout,
		ForceSealEvery: cfg.ForceSealEvery,
		TailWait:       cfg.TailWait,
		PollEvery:      cfg.PollEvery,
		Peers:          cfg.Peers,
		Logf:           cfg.logf(),
	})
	if err != nil {
		return nil, err
	}
	cfgs := cfg.volConfigs(root)
	for i := range cfgs {
		cfgs[i].OnSeal = prim.OnSeal(cfgs[i].Name)
	}
	mgr, err := volume.OpenAll(cfgs...)
	if err != nil {
		prim.Close()
		return nil, err
	}
	prim.AttachManager(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		prim.Close()
		mgr.Close()
		return nil, err
	}
	srv := server.New(mgr, ln, server.Options{Repl: prim, Logf: cfg.logf()})
	return &Node{Root: root, Addr: ln.Addr().String(), Prim: prim, srv: srv, mgr: mgr}, nil
}

// StartFollower serves an unpromoted follower pulling from cfg.Source
// into journal directories under root.
func StartFollower(root string, cfg Config) (*Node, error) {
	if cfg.Source == "" {
		return nil, fmt.Errorf("chaos: follower needs a Source")
	}
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Root:           root,
		Source:         cfg.Source,
		Configs:        cfg.volConfigs(root),
		SyncTimeout:    cfg.SyncTimeout,
		ForceSealEvery: cfg.ForceSealEvery,
		TailWait:       cfg.TailWait,
		PollEvery:      cfg.PollEvery,
		Peers:          cfg.Peers,
		Logf:           cfg.logf(),
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fol.Close()
		return nil, err
	}
	srv := server.New(nil, ln, server.Options{Repl: fol, Logf: cfg.logf()})
	fol.AttachServer(srv)
	fol.Start()
	return &Node{Root: root, Addr: ln.Addr().String(), Fol: fol, srv: srv}, nil
}

// Kill is the crash: the server drops every connection and the
// replication loops stop, but no volume is drained or checkpointed —
// the journal directories read exactly as after a SIGKILL. Volume
// actors are leaked until Close.
func (n *Node) Kill() {
	if n.killed {
		return
	}
	n.killed = true
	n.srv.Close()
	if n.Prim != nil {
		n.Prim.Close()
	}
	if n.Fol != nil {
		n.Fol.Close()
	}
}

// Close shuts the node down gracefully: network first, replication
// loops, then volume drain + checkpoint. After Kill it only reaps the
// leaked volume actors (which still checkpoints their journals — run
// on-disk assertions before Close).
func (n *Node) Close() error {
	if !n.killed {
		n.Kill()
	}
	mgr := n.mgr
	if n.Fol != nil && mgr == nil {
		mgr = n.Fol.Manager()
	}
	if mgr != nil {
		return mgr.Close()
	}
	return nil
}

// Role asks the node for its replication role over the wire.
func (n *Node) Role() (server.RoleInfo, error) {
	c, err := server.Dial(n.Addr)
	if err != nil {
		return server.RoleInfo{}, err
	}
	defer c.Close()
	return c.Role()
}
