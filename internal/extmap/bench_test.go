package extmap

import (
	"math/rand"
	"testing"

	"smrseek/internal/geom"
)

// buildMap inserts n random extents, emulating a long-running log.
func buildMap(n int) *Map {
	rng := rand.New(rand.NewSource(1))
	m := New()
	frontier := int64(1 << 30)
	for i := 0; i < n; i++ {
		e := geom.Ext(rng.Int63n(1<<24), int64(1+rng.Intn(64)))
		m.Insert(e, frontier)
		frontier += e.Count
	}
	return m
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := New()
	frontier := int64(1 << 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := geom.Ext(rng.Int63n(1<<24), int64(1+rng.Intn(64)))
		m.Insert(e, frontier)
		frontier += e.Count
	}
}

func BenchmarkInsertFunc(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := New()
	frontier := int64(1 << 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := geom.Ext(rng.Int63n(1<<24), int64(1+rng.Intn(64)))
		m.InsertFunc(e, frontier, nil)
		frontier += e.Count
	}
}

func BenchmarkLookup(b *testing.B) {
	for _, size := range []int{1000, 100000} {
		m := buildMap(size)
		rng := rand.New(rand.NewSource(3))
		b.Run(itoa(size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Lookup(geom.Ext(rng.Int63n(1<<24), 256))
			}
		})
	}
}

func BenchmarkLookupFunc(b *testing.B) {
	for _, size := range []int{1000, 100000} {
		m := buildMap(size)
		rng := rand.New(rand.NewSource(3))
		b.Run(itoa(size), func(b *testing.B) {
			b.ReportAllocs()
			n := 0
			for i := 0; i < b.N; i++ {
				m.LookupFunc(geom.Ext(rng.Int63n(1<<24), 256), func(Resolved) bool {
					n++
					return true
				})
			}
		})
	}
}

func BenchmarkFragments(b *testing.B) {
	m := buildMap(100000)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Fragments(geom.Ext(rng.Int63n(1<<24), 256))
	}
}

func itoa(v int) string {
	if v >= 1000 {
		return itoa(v/1000) + "k"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if i == len(buf) {
		return "0"
	}
	return string(buf[i:])
}
