package server

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/geom"
	"smrseek/internal/volume"
)

// newTestServer starts a server over freshly opened volumes and returns
// it with its dial address. Everything is torn down with the test.
func newTestServer(t *testing.T, opts Options, cfgs ...volume.Config) (*Server, *volume.Manager, string) {
	t.Helper()
	mgr, err := volume.OpenAll(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		t.Fatal(err)
	}
	opts.Logf = t.Logf
	srv := New(mgr, ln, opts)
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv, mgr, ln.Addr().String()
}

func lsConfig(name string) volume.Config {
	return volume.Config{
		Name: name,
		Sim:  core.Config{LogStructured: true, FrontierStart: 1 << 20},
	}
}

func TestWireRoundTrip(t *testing.T) {
	cases := []request{
		{Op: OpWrite, Volume: "v0", Extent: geom.Ext(12345, 64)},
		{Op: OpRead, Volume: "a-much-longer-volume-name", Extent: geom.Ext(0, 1)},
		{Op: OpStat, Volume: "v"},
		{Op: OpSnapshot, Volume: "v"},
	}
	for _, want := range cases {
		frame, err := appendRequest(nil, want)
		if err != nil {
			t.Fatalf("append %+v: %v", want, err)
		}
		// Strip the length prefix, as the server-side read loop does.
		n := binary.LittleEndian.Uint32(frame)
		if int(n) != len(frame)-4 {
			t.Fatalf("length prefix %d, frame body %d", n, len(frame)-4)
		}
		got, err := parseRequest(frame[4:])
		if err != nil {
			t.Fatalf("parse %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		{},                         // too short
		{OpWrite},                  // no vlen
		{OpWrite, 5, 'a'},          // truncated name
		{OpWrite, 1, 'a', 1, 2, 3}, // truncated extent
		{OpStat, 1, 'a', 0},        // trailing bytes on stat
		{99, 0},                    // unknown op
	}
	for _, p := range bad {
		if _, err := parseRequest(p); err == nil {
			t.Errorf("parseRequest(%v) accepted malformed frame", p)
		}
	}
	if _, err := appendRequest(nil, request{Op: OpStat, Volume: strings.Repeat("x", 300)}); err == nil {
		t.Error("appendRequest accepted an over-long volume name")
	}
}

func TestStatusName(t *testing.T) {
	if got := StatusName(StatusOverloaded); got != "overloaded" {
		t.Errorf("StatusName(StatusOverloaded) = %q", got)
	}
	if got := StatusName(200); got != "status(200)" {
		t.Errorf("StatusName(200) = %q", got)
	}
}

func TestServerReadWriteStat(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("v0"))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two non-adjacent writes separated by an interleaved one land at
	// split log positions, so the spanning read resolves to 2 fragments.
	for _, ext := range []geom.Extent{geom.Ext(0, 8), geom.Ext(100, 8), geom.Ext(8, 8)} {
		if err := c.Write("v0", ext); err != nil {
			t.Fatalf("Write(%v): %v", ext, err)
		}
	}
	frags, err := c.Read("v0", geom.Ext(0, 16))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if frags != 2 {
		t.Errorf("Read frags = %d, want 2", frags)
	}
	st, err := c.Stat("v0")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Writes != 3 || st.Reads != 1 {
		t.Errorf("Stat counts writes=%d reads=%d, want 3/1", st.Writes, st.Reads)
	}
	if !reflectZero(st.Config) {
		t.Error("Stat carried a non-zero Config across the wire")
	}
}

func reflectZero(c core.Config) bool { return c == (core.Config{}) }

func TestServerUnknownVolumeAndNoJournal(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("v0"))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Write("nope", geom.Ext(0, 8))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusUnknownVolume {
		t.Errorf("write to unknown volume: err = %v, want StatusUnknownVolume", err)
	}
	// The connection must survive an error response.
	if err := c.Write("v0", geom.Ext(0, 8)); err != nil {
		t.Fatalf("Write after error response: %v", err)
	}
	err = c.Snapshot("v0")
	if !errors.As(err, &se) || se.Status != StatusNoJournal {
		t.Errorf("Snapshot without journal: err = %v, want StatusNoJournal", err)
	}
}

// rawDial opens a handshaken connection for hand-crafted frames.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := handshake(conn); err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestServerRejectsBadFrames(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("v0"))

	// Malformed request payload: error response, connection stays up.
	conn := rawDial(t, addr)
	if _, err := conn.Write(appendResponse(nil, 99, nil)); err != nil { // op 99, no vlen
		t.Fatal(err)
	}
	frame, err := readFrame(conn, nil)
	if err != nil {
		t.Fatalf("readFrame after bad op: %v", err)
	}
	if frame[0] != StatusBadRequest {
		t.Errorf("bad op status = %s, want bad-request", StatusName(frame[0]))
	}

	// Oversize frame: the server drops the connection without reading it.
	conn2 := rawDial(t, addr)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := conn2.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn2); err != nil {
		t.Fatalf("expected clean close after oversize frame, got %v", err)
	}

	// Bad handshake magic: dropped before any frame.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	if _, err := conn3.Write([]byte("NOPE\x01")); err != nil {
		t.Fatal(err)
	}
	conn3.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf, _ := io.ReadAll(conn3)
	if len(buf) > len(Magic)+1 {
		t.Errorf("server kept talking (%d bytes) after bad magic", len(buf))
	}
}

// stallVolume blocks v's actor by handing it a request whose result
// channel is already full, then fills the queue with one parked request.
// The returned release function unblocks everything.
func stallVolume(t *testing.T, v *volume.Volume) (release func()) {
	t.Helper()
	stall := make(chan volume.Result, 1)
	stall <- volume.Result{} // actor will block delivering into this
	if err := v.TryDo(volume.Request{Kind: volume.OpStat}, stall); err != nil {
		t.Fatal(err)
	}
	// Once the actor has dequeued the stall request it blocks, freeing
	// the single queue slot; park a second request there.
	parked := make(chan volume.Result, 1)
	for {
		err := v.TryDo(volume.Request{Kind: volume.OpStat}, parked)
		if err == nil {
			break
		}
		if !errors.Is(err, volume.ErrOverloaded) {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		<-stall // actor's blocked send completes; queue drains
	}
}

func TestServerBackpressure(t *testing.T) {
	cfg := lsConfig("v0")
	cfg.QueueDepth = 1
	_, mgr, addr := newTestServer(t, Options{}, cfg)
	v, _ := mgr.Get("v0")
	release := stallVolume(t, v)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Write("v0", geom.Ext(0, 8))
	if !IsOverloaded(err) {
		t.Errorf("write to saturated volume: err = %v, want overloaded", err)
	}
	release()
	// After draining, the same connection works again.
	if err := c.Write("v0", geom.Ext(0, 8)); err != nil {
		t.Fatalf("Write after release: %v", err)
	}
}

func TestServerRequestTimeout(t *testing.T) {
	_, mgr, addr := newTestServer(t, Options{RequestTimeout: 30 * time.Millisecond}, lsConfig("v0"))
	v, _ := mgr.Get("v0")
	release := stallVolume(t, v)
	defer release()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Write("v0", geom.Ext(0, 8))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusTimeout {
		t.Fatalf("stalled write: err = %v, want StatusTimeout", err)
	}
	// The server closed the connection after the timeout: ordering on
	// this connection is no longer guaranteed.
	release()
	if err := c.Write("v0", geom.Ext(0, 8)); err == nil {
		t.Error("connection survived a timeout, want closed")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	_, _, addr := newTestServer(t, Options{}, lsConfig("a"), lsConfig("b"))
	const clients = 4
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		vol := "a"
		if i%2 == 1 {
			vol = "b"
		}
		go func(vol string, seed int64) {
			c, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for op := int64(0); op < 200; op++ {
				ext := geom.Ext(geom.Sector((seed*1000+op*8)%100000), 8)
				if op%4 == 3 {
					if _, err := c.Read(vol, ext); err != nil {
						errc <- err
						return
					}
				} else if err := c.Write(vol, ext); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(vol, int64(i))
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
