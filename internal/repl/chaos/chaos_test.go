package chaos

// Chaos matrix for replicated smrd. Every scenario drives real TCP
// nodes through crash-shaped faults and asserts the replication
// contract: no client-acknowledged write is ever lost, followers only
// persist chunks that verify, and a promoted follower is
// indistinguishable from a direct single-node run.

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"smrseek/internal/disk"
	"smrseek/internal/extmap"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/server"
	"smrseek/internal/trace"
	"smrseek/internal/volume"
)

const vol = "v0"

func baseConfig(t *testing.T) Config {
	return Config{
		Volumes:        []string{vol},
		Frontier:       1 << 20,
		SealEvery:      64,
		SyncTimeout:    2 * time.Second,
		ForceSealEvery: 25 * time.Millisecond,
		TailWait:       150 * time.Millisecond,
		PollEvery:      25 * time.Millisecond,
		Logf:           t.Logf,
	}
}

// makeTrace builds a deterministic interleaving of writes and reads
// (reads always target previously written extents).
func makeTrace(writes, reads int) []trace.Record {
	rng := rand.New(rand.NewSource(7))
	recs := make([]trace.Record, 0, writes+reads)
	var written []geom.Extent
	for w, r := 0, 0; w < writes || r < reads; {
		if w < writes && (r >= reads || len(written) == 0 || rng.Intn(3) != 0) {
			ext := geom.Ext(geom.Sector(rng.Intn(1<<16)), int64(1+rng.Intn(64)))
			written = append(written, ext)
			recs = append(recs, trace.Record{Kind: disk.Write, Extent: ext})
			w++
		} else {
			recs = append(recs, trace.Record{Kind: disk.Read, Extent: written[rng.Intn(len(written))]})
			r++
		}
	}
	return recs
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// caughtUp reports whether the follower's applied position matches the
// primary's sealed frontier (and something has actually shipped).
func caughtUp(prim, fol *Node) bool {
	pp, ok := prim.Prim.Role().Volumes[vol]
	if !ok || pp.Bytes == 0 {
		return false
	}
	fp, ok := fol.Fol.Role().Volumes[vol]
	return ok && fp.Gen == pp.Gen && fp.Bytes == pp.Bytes
}

func mustVerifyDir(t *testing.T, dir string) {
	t.Helper()
	if _, err := journal.VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir(%s): %v", dir, err)
	}
}

// assertPrefix asserts the follower's journal file is a byte-identical
// prefix of the primary's — the core replication invariant.
func assertPrefix(t *testing.T, primRoot, folRoot string) {
	t.Helper()
	pf, err := os.ReadFile(journal.JournalPath(filepath.Join(primRoot, vol)))
	if err != nil {
		t.Fatal(err)
	}
	ff, err := os.ReadFile(journal.JournalPath(filepath.Join(folRoot, vol)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ff) > len(pf) {
		t.Fatalf("follower journal %d bytes, primary only %d", len(ff), len(pf))
	}
	if !bytes.Equal(pf[:len(ff)], ff) {
		t.Fatalf("follower journal is not a byte prefix of the primary's (%d bytes compared)", len(ff))
	}
}

// checkpointMappings forces a checkpoint on the serving node and reads
// the resulting extent map from the volume's journal directory.
func checkpointMappings(t *testing.T, snapshot func() error, root string) []extmap.Mapping {
	t.Helper()
	if err := snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	snap, err := journal.ReadCheckpointFile(journal.CheckpointPath(filepath.Join(root, vol)))
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatalf("no checkpoint under %s after snapshot", root)
	}
	return snap.Mappings
}

// assertCovered asserts every acked write extent is fully mapped —
// acknowledged writes survived.
func assertCovered(t *testing.T, maps []extmap.Mapping, exts []geom.Extent) {
	t.Helper()
	for _, e := range exts {
		var cov int64
		for _, m := range maps {
			lo, hi := max(m.Lba.Start, e.Start), min(m.Lba.End(), e.End())
			if hi > lo {
				cov += hi - lo
			}
		}
		if cov != e.Count {
			t.Fatalf("acked write %v: only %d of %d sectors mapped on the survivor", e, cov, e.Count)
		}
	}
}

// TestKillPrimaryMidLoad SIGKILLs the primary in the middle of a
// replay. The client must fail over (promoting the follower), every
// record must eventually succeed, and every write acknowledged at any
// point — before or after the kill — must be mapped on the survivor.
func TestKillPrimaryMidLoad(t *testing.T) {
	cfg := baseConfig(t)
	primRoot, folRoot := t.TempDir(), t.TempDir()
	prim, err := StartPrimary(primRoot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	fcfg := cfg
	fcfg.Source = prim.Addr
	fol, err := StartFollower(folRoot, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	set, err := server.DialSet(context.Background(), []string{prim.Addr, fol.Addr})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	recs := makeTrace(200, 100)
	var acked []geom.Extent
	killAt := len(recs) / 2
	for i, rec := range recs {
		if i == killAt {
			prim.Kill()
		}
		if _, err := set.Step(vol, rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Kind == disk.Write {
			acked = append(acked, rec.Extent)
		}
	}
	if set.Failovers() == 0 {
		t.Fatal("primary died mid-load but the client never failed over")
	}
	if got := prim.Prim.Degraded(); got != 0 {
		t.Fatalf("healthy pre-kill link degraded %d write acks", got)
	}
	info, err := fol.Role()
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "primary" || info.Epoch != 2 {
		t.Fatalf("survivor role %s at epoch %d, want promoted primary at epoch 2", info.Role, info.Epoch)
	}
	maps := checkpointMappings(t, func() error { return set.Snapshot(vol) }, folRoot)
	assertCovered(t, maps, acked)
	mustVerifyDir(t, filepath.Join(folRoot, vol))
}

// TestPartitionHeal cuts the replication link mid-load. Writes must
// keep succeeding (degraded, counted), and after the heal the follower
// must converge back to a verified byte prefix of the primary with
// nothing rejected.
func TestPartitionHeal(t *testing.T) {
	cfg := baseConfig(t)
	cfg.SyncTimeout = 100 * time.Millisecond
	primRoot, folRoot := t.TempDir(), t.TempDir()
	prim, err := StartPrimary(primRoot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	proxy, err := NewProxy(prim.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	fcfg := cfg
	fcfg.Source = proxy.Addr()
	fol, err := StartFollower(folRoot, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	c, err := server.Dial(prim.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	recs := makeTrace(120, 0)
	for i, rec := range recs[:40] {
		if _, err := c.Step(vol, rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	waitFor(t, 10*time.Second, "follower catch-up before partition", func() bool { return caughtUp(prim, fol) })

	proxy.Partition(true)
	for i, rec := range recs[40:80] {
		if _, err := c.Step(vol, rec); err != nil {
			t.Fatalf("partitioned record %d: %v", i, err)
		}
	}
	if prim.Prim.Degraded() == 0 {
		t.Fatal("partitioned writes were acknowledged without any degrade accounting")
	}

	proxy.Partition(false)
	for i, rec := range recs[80:] {
		if _, err := c.Step(vol, rec); err != nil {
			t.Fatalf("healed record %d: %v", i, err)
		}
	}
	waitFor(t, 10*time.Second, "follower catch-up after heal", func() bool { return caughtUp(prim, fol) })
	if n := fol.Fol.Rejects(); n != 0 {
		t.Fatalf("follower rejected %d chunks on a clean (if flaky) link", n)
	}
	assertPrefix(t, primRoot, folRoot)
	mustVerifyDir(t, filepath.Join(folRoot, vol))
}

// TestSlowFollower adds latency to every replication response. The
// load must still complete and the follower must converge to a
// verified prefix — slowness degrades write acks, never correctness.
func TestSlowFollower(t *testing.T) {
	cfg := baseConfig(t)
	cfg.SyncTimeout = 75 * time.Millisecond
	primRoot, folRoot := t.TempDir(), t.TempDir()
	prim, err := StartPrimary(primRoot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	proxy, err := NewProxy(prim.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetDelay(30 * time.Millisecond)
	fcfg := cfg
	fcfg.Source = proxy.Addr()
	fol, err := StartFollower(folRoot, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	c, err := server.Dial(prim.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, rec := range makeTrace(100, 0) {
		if _, err := c.Step(vol, rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	proxy.SetDelay(0)
	waitFor(t, 15*time.Second, "slow follower convergence", func() bool { return caughtUp(prim, fol) })
	if n := fol.Fol.Rejects(); n != 0 {
		t.Fatalf("slow link caused %d rejects; slowness must never corrupt", n)
	}
	assertPrefix(t, primRoot, folRoot)
	mustVerifyDir(t, filepath.Join(folRoot, vol))
}

// TestCorruptShippedSegment flips a byte inside every large shipped
// frame. The follower must reject every corrupted chunk before it
// touches disk — its journal stays verifiable throughout — and must
// converge once the corruption stops.
func TestCorruptShippedSegment(t *testing.T) {
	cfg := baseConfig(t)
	cfg.SyncTimeout = 0 // async: load fully before any follower exists
	primRoot, folRoot := t.TempDir(), t.TempDir()
	prim, err := StartPrimary(primRoot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()

	c, err := server.Dial(prim.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, rec := range makeTrace(80, 0) {
		if _, err := c.Step(vol, rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}

	// Now attach a follower through a proxy that flips one byte deep
	// inside any frame big enough to carry segment data (control
	// responses stay intact). Its first catch-up chunk carries the whole
	// sealed load, so it must be corrupted — and rejected.
	proxy, err := NewProxy(prim.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetCorrupt(func(p []byte) {
		if len(p) > 256 {
			p[len(p)-5] ^= 0x01
		}
	})
	fcfg := cfg
	fcfg.Source = proxy.Addr()
	fol, err := StartFollower(folRoot, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	waitFor(t, 10*time.Second, "corrupted chunks to be rejected", func() bool { return fol.Fol.Rejects() > 0 })
	// Whatever the follower has persisted so far must verify: corruption
	// was rejected before the journal, not after. (An empty dir — nothing
	// persisted at all — is equally fine.)
	folDir := filepath.Join(folRoot, vol)
	if _, err := os.Stat(journal.JournalPath(folDir)); err == nil {
		mustVerifyDir(t, folDir)
	}

	proxy.SetCorrupt(nil)
	waitFor(t, 15*time.Second, "convergence after corruption stops", func() bool { return caughtUp(prim, fol) })
	assertPrefix(t, primRoot, folRoot)
	mustVerifyDir(t, filepath.Join(folRoot, vol))
}

// TestPromotedFollowerMatchesDirectRun is the replica-consistency
// acceptance check: after a quiesced kill and promotion, the follower's
// extent map must be bit-identical to a direct single-node run of the
// same trace, and every read must resolve to the same fragment count.
func TestPromotedFollowerMatchesDirectRun(t *testing.T) {
	cfg := baseConfig(t)
	primRoot, folRoot := t.TempDir(), t.TempDir()
	prim, err := StartPrimary(primRoot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	fcfg := cfg
	fcfg.Source = prim.Addr
	fol, err := StartFollower(folRoot, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	set, err := server.DialSet(context.Background(), []string{prim.Addr, fol.Addr})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	recs := makeTrace(150, 80)
	for i, rec := range recs {
		if _, err := set.Step(vol, rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	waitFor(t, 10*time.Second, "follower catch-up before kill", func() bool { return caughtUp(prim, fol) })
	prim.Kill()

	// Direct single-node reference over its own journal.
	directRoot := t.TempDir()
	dmgr, err := volume.OpenAll(cfg.volConfigs(directRoot)...)
	if err != nil {
		t.Fatal(err)
	}
	defer dmgr.Close()
	dv, _ := dmgr.Get(vol)
	ctx := context.Background()
	for i, rec := range recs {
		kind := volume.OpWrite
		if rec.Kind == disk.Read {
			kind = volume.OpRead
		}
		if res, err := dv.Do(ctx, kind, rec.Extent); err != nil || res.Err != nil {
			t.Fatalf("direct record %d: %v / %v", i, err, res.Err)
		}
	}

	// Re-issue every read against both: identical fragment counts is the
	// paper's read-seek signal surviving failover bit-for-bit.
	for i, rec := range recs {
		if rec.Kind != disk.Read {
			continue
		}
		wireFrags, err := set.Step(vol, rec)
		if err != nil {
			t.Fatalf("post-failover read %d: %v", i, err)
		}
		res, err := dv.Do(ctx, volume.OpRead, rec.Extent)
		if err != nil || res.Err != nil {
			t.Fatalf("direct read %d: %v / %v", i, err, res.Err)
		}
		if wireFrags != res.Frags {
			t.Fatalf("read %d of %v: promoted follower resolved %d fragments, direct run %d",
				i, rec.Extent, wireFrags, res.Frags)
		}
	}
	if set.Failovers() == 0 {
		t.Fatal("reads after the kill never triggered a failover")
	}

	folMaps := checkpointMappings(t, func() error { return set.Snapshot(vol) }, folRoot)
	directMaps := checkpointMappings(t, func() error {
		res, err := dv.Do(ctx, volume.OpSnapshot, geom.Extent{})
		if err != nil {
			return err
		}
		return res.Err
	}, directRoot)
	if len(folMaps) != len(directMaps) {
		t.Fatalf("extent maps diverged: %d mappings on promoted follower, %d direct", len(folMaps), len(directMaps))
	}
	for i := range folMaps {
		if folMaps[i] != directMaps[i] {
			t.Fatalf("extent map entry %d diverged: follower %+v, direct %+v", i, folMaps[i], directMaps[i])
		}
	}
}

// TestStalePrimaryFenced kills a primary, promotes the follower, then
// restarts the old primary pointed at the survivor. It must discover
// the higher epoch, fence itself, and reject data ops; a replica-set
// client must route around it.
func TestStalePrimaryFenced(t *testing.T) {
	cfg := baseConfig(t)
	primRoot, folRoot := t.TempDir(), t.TempDir()
	prim, err := StartPrimary(primRoot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	fcfg := cfg
	fcfg.Source = prim.Addr
	fol, err := StartFollower(folRoot, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	set, err := server.DialSet(context.Background(), []string{prim.Addr, fol.Addr})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	recs := makeTrace(40, 0)
	for i, rec := range recs[:20] {
		if _, err := set.Step(vol, rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	prim.Kill()
	for i, rec := range recs[20:] {
		if _, err := set.Step(vol, rec); err != nil {
			t.Fatalf("post-kill record %d: %v", i, err)
		}
	}

	// The old primary rejoins at its stale epoch, peering with the
	// survivor.
	rcfg := cfg
	rcfg.Peers = []string{fol.Addr}
	stale, err := StartPrimary(primRoot, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	waitFor(t, 10*time.Second, "stale primary to fence itself", func() bool { return !stale.Prim.AcceptingData() })
	info, err := stale.Role()
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "fenced" {
		t.Fatalf("stale primary role %q, want fenced", info.Role)
	}

	c, err := server.Dial(stale.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Step(vol, recs[0])
	var se *server.StatusError
	if !errors.As(err, &se) || se.Status != server.StatusNotPrimary {
		t.Fatalf("data op on fenced ex-primary: got %v, want not-primary rejection", err)
	}

	set2, err := server.DialSet(context.Background(), []string{stale.Addr, fol.Addr})
	if err != nil {
		t.Fatal(err)
	}
	defer set2.Close()
	if set2.Primary() != fol.Addr {
		t.Fatalf("replica set routed to %s, want the promoted follower %s", set2.Primary(), fol.Addr)
	}
	if _, err := set2.Step(vol, recs[0]); err != nil {
		t.Fatalf("step through rerouted set: %v", err)
	}
}

// TestCheckpointCatchUp starts a follower only after the primary has
// checkpointed past its first generation: catch-up must arrive via a
// verified checkpoint install, then segments of the live generation.
func TestCheckpointCatchUp(t *testing.T) {
	cfg := baseConfig(t)
	cfg.SyncTimeout = 0 // async: no follower exists for most of the run
	primRoot, folRoot := t.TempDir(), t.TempDir()
	prim, err := StartPrimary(primRoot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()

	c, err := server.Dial(prim.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs := makeTrace(90, 0)
	for i, rec := range recs[:60] {
		if _, err := c.Step(vol, rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if err := c.Snapshot(vol); err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs[60:] {
		if _, err := c.Step(vol, rec); err != nil {
			t.Fatalf("post-checkpoint record %d: %v", i, err)
		}
	}

	fcfg := cfg
	fcfg.Source = prim.Addr
	fol, err := StartFollower(folRoot, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	waitFor(t, 15*time.Second, "checkpoint catch-up", func() bool { return caughtUp(prim, fol) })

	snap, err := journal.ReadCheckpointFile(journal.CheckpointPath(filepath.Join(folRoot, vol)))
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("follower caught up a checkpointed primary without installing its checkpoint")
	}
	assertPrefix(t, primRoot, folRoot)
	mustVerifyDir(t, filepath.Join(folRoot, vol))
}
