package gc

import (
	"math/rand"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/extmap"
	"smrseek/internal/geom"
	"smrseek/internal/stl"
)

// tiny returns a small log: 8 segments of 256 sectors above a
// 4096-sector device.
func tiny(p Policy) Config {
	return Config{
		DeviceSectors:  4096,
		LogSectors:     8 * 256,
		SegmentSectors: 256,
		Policy:         p,
		FreeLowWater:   2,
		FreeHighWater:  4,
	}
}

func mustNew(t *testing.T, cfg Config) *Layer {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{DeviceSectors: -1, LogSectors: 256, SegmentSectors: 256},
		{DeviceSectors: 0, LogSectors: 100, SegmentSectors: 64},
		{DeviceSectors: 0, LogSectors: 256, SegmentSectors: 256}, // too few segments
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	l := mustNew(t, tiny(Greedy))
	if l.Name() != "SegLS(greedy)" {
		t.Errorf("name = %s", l.Name())
	}
	if mustNew(t, tiny(CostBenefit)).Name() != "SegLS(cost-benefit)" {
		t.Error("cost-benefit name wrong")
	}
}

func TestWriteResolveRoundTrip(t *testing.T) {
	l := mustNew(t, tiny(Greedy))
	fs := l.Write(geom.Ext(100, 50))
	if len(fs) != 1 || fs[0].Pba != 4096 {
		t.Fatalf("first write = %v", fs)
	}
	rs := l.Resolve(geom.Ext(100, 50))
	if len(rs) != 1 || rs[0].Pba != 4096 {
		t.Fatalf("Resolve = %v", rs)
	}
	// Unwritten data resolves in place.
	rs = l.Resolve(geom.Ext(2000, 10))
	if len(rs) != 1 || rs[0].Pba != 2000 {
		t.Fatalf("identity Resolve = %v", rs)
	}
	if l.Write(geom.Extent{}) != nil {
		t.Error("empty write")
	}
	if l.Fragments(geom.Ext(100, 50)) != 1 {
		t.Error("fresh write should be one fragment")
	}
}

func TestWriteSplitsAcrossSegments(t *testing.T) {
	l := mustNew(t, tiny(Greedy))
	fs := l.Write(geom.Ext(0, 600)) // 256+256+88
	if len(fs) != 3 {
		t.Fatalf("fragments = %v", fs)
	}
	cur := geom.Sector(0)
	for _, f := range fs {
		if f.Lba.Start != cur {
			t.Fatalf("fragments do not tile: %v", fs)
		}
		cur = f.Lba.End()
	}
	// Pieces land in consecutive segments, physically contiguous here
	// because segments are handed out in order initially.
	if fs[1].Pba != fs[0].Pba+256 {
		t.Errorf("segment handoff: %v", fs)
	}
}

func TestCleaningTriggersAndFreesSpace(t *testing.T) {
	l := mustNew(t, tiny(Greedy))
	// Overwrite the same 256-sector LBA range repeatedly: old segments
	// become fully dead, so cleaning is cheap and must keep up.
	for i := 0; i < 40; i++ {
		l.Write(geom.Ext(0, 256))
	}
	if l.Cleanings() == 0 {
		t.Fatal("cleaning never ran")
	}
	if l.FreeSegments() < 2 {
		t.Errorf("free segments = %d", l.FreeSegments())
	}
	// Dead-segment cleaning relocates nothing: WAF stays 1.
	if waf := stl.WAF(l); waf != 1 {
		t.Errorf("WAF = %v, want 1 for fully-dead victims", waf)
	}
	// Data still resolves correctly.
	rs := l.Resolve(geom.Ext(0, 256))
	if len(rs) != 1 {
		t.Fatalf("Resolve after cleaning = %v", rs)
	}
}

func TestCleaningRelocatesLiveData(t *testing.T) {
	l := mustNew(t, tiny(Greedy))
	// Fill the log with distinct live LBAs (working set ~1.5 segments of
	// slack), forcing cleanings that must move live data.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		l.Write(geom.Ext(int64(rng.Intn(1300)), 32))
	}
	if l.Cleanings() == 0 {
		t.Fatal("cleaning never ran")
	}
	if l.ExtraSectors() == 0 {
		t.Fatal("live relocation never happened")
	}
	if waf := stl.WAF(l); waf <= 1 {
		t.Errorf("WAF = %v, want > 1", waf)
	}
	ops := l.PendingMaintenance()
	if len(ops) == 0 {
		t.Fatal("no maintenance ops surfaced")
	}
	var reads, writes int64
	for _, op := range ops {
		if op.Kind == disk.Read {
			reads += op.Extent.Count
		} else {
			writes += op.Extent.Count
		}
	}
	if reads != writes || writes != l.ExtraSectors() {
		t.Errorf("maintenance reads=%d writes=%d extra=%d", reads, writes, l.ExtraSectors())
	}
	if len(l.PendingMaintenance()) != 0 {
		t.Error("pending not drained")
	}
	// All data still resolves to exactly one location covering its range.
	for lba := int64(0); lba < 1300; lba += 64 {
		cur := lba
		for _, r := range l.Resolve(geom.Ext(lba, 64)) {
			if r.Lba.Start != cur {
				t.Fatalf("resolution hole at %d: %v", lba, r)
			}
			cur = r.Lba.End()
		}
		if cur != lba+64 {
			t.Fatalf("resolution short at %d", lba)
		}
	}
}

func TestGreedyPicksDeadestSegment(t *testing.T) {
	l := mustNew(t, tiny(Greedy))
	// Segment 0: fill with LBA A, then fully overwrite (dead).
	l.Write(geom.Ext(0, 256))
	// Segment 1: fill with LBA B (stays live).
	l.Write(geom.Ext(1000, 256))
	// Segment 2: overwrites LBA A → segment 0 now fully dead.
	l.Write(geom.Ext(0, 256))
	if l.segs[0].live != 0 {
		t.Fatalf("segment 0 live = %d", l.segs[0].live)
	}
	victim, ok := l.pickVictim()
	if !ok || victim != 0 {
		t.Fatalf("victim = %d,%v, want 0", victim, ok)
	}
}

func TestCostBenefitPrefersOldSegments(t *testing.T) {
	l := mustNew(t, tiny(CostBenefit))
	// Two half-dead segments; the first is older.
	l.Write(geom.Ext(0, 128))    // seg0 half A
	l.Write(geom.Ext(500, 128))  // seg0 half B -> seg0 full
	l.Write(geom.Ext(0, 128))    // kills A (seg0 half dead)
	l.Write(geom.Ext(1000, 128)) // seg1 fills
	l.Write(geom.Ext(500, 128))  // kills B? no — B=500 was in seg0; this kills seg0's other half
	// Advance the clock with unrelated writes.
	l.Write(geom.Ext(2000, 256))
	victim, ok := l.pickVictim()
	if !ok || victim != 0 {
		t.Fatalf("victim = %d,%v, want the old dead segment 0", victim, ok)
	}
}

func TestFullyLiveLogStopsCleaning(t *testing.T) {
	cfg := tiny(Greedy)
	l := mustNew(t, cfg)
	// Distinct LBAs only: everything stays live; cleaning must refuse to
	// churn rather than loop forever.
	for i := int64(0); i < 5; i++ {
		l.Write(geom.Ext(i*256, 256))
	}
	if l.Cleanings() != 0 {
		t.Errorf("cleanings = %d, want 0 (nothing reclaimable)", l.Cleanings())
	}
}

// TestLiveCountInvariant cross-checks per-segment live counters against
// the extent map after a random workload.
func TestLiveCountInvariant(t *testing.T) {
	l := mustNew(t, tiny(CostBenefit))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		l.Write(geom.Ext(int64(rng.Intn(1200)), int64(1+rng.Intn(64))))
	}
	liveBySeg := make([]int64, len(l.segs))
	l.m.Walk(func(m extmap.Mapping) bool {
		liveBySeg[l.segOf(m.Pba)] += m.Lba.Count
		return true
	})
	for i, s := range l.segs {
		if s.live != liveBySeg[i] {
			t.Fatalf("segment %d live = %d, map says %d", i, s.live, liveBySeg[i])
		}
	}
}
