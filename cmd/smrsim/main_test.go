package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smrseek"
	"smrseek/internal/obsv"
)

func TestRunWorkloadAll(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2", "-all"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NoLS", "LS+defrag", "LS+prefetch", "LS+cache", "total SAF"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleVariantWithTime(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2", "-cache", "-time"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LS+cache results", "cache hits", "modelled seek time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	recs := smrseek.MustWorkload("ts_0").Generate(0.05)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := smrseek.WriteTrace(f, smrseek.FormatCP, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-format", "cp", "-ls"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LS results") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no workload and no trace must error")
	}
	if err := run([]string{"-workload", "x", "-trace", "y"}, &buf); err == nil {
		t.Error("both workload and trace must error")
	}
	if err := run([]string{"-workload", "bogus"}, &buf); err == nil {
		t.Error("unknown workload must error")
	}
	if err := run([]string{"-trace", "/nonexistent/file"}, &buf); err == nil {
		t.Error("missing trace file must error")
	}
	if err := run([]string{"-trace", "/dev/null", "-format", "bogus"}, &buf); err == nil {
		t.Error("unknown format must error")
	}
}

func TestRunCustomLayers(t *testing.T) {
	for _, layer := range []string{"segls", "mcache"} {
		var buf bytes.Buffer
		if err := run([]string{"-workload", "usr_0", "-scale", "0.2", "-layer", layer}, &buf); err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		if !strings.Contains(buf.String(), "results") {
			t.Errorf("%s output:\n%s", layer, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-workload", "usr_0", "-scale", "0.1", "-layer", "bogus"}, &buf); err == nil {
		t.Error("unknown layer must error")
	}
}

func TestRunWithFaults(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-workload", "hm_1", "-scale", "0.2", "-ls",
		"-fault-rate", "0.05", "-fault-seed", "7"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LS+faults results", "fault injection & recovery", "faults injected", "recovery rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Same seed, same bytes.
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if out != again.String() {
		t.Error("two faulted runs with the same seed produced different output")
	}
	// Different seed, different fault tallies.
	var other bytes.Buffer
	args[len(args)-1] = "8"
	if err := run(args, &other); err != nil {
		t.Fatal(err)
	}
	if out == other.String() {
		t.Error("different fault seeds produced identical output")
	}
}

func TestRunMediaErrorsFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "hm_1", "-scale", "0.2",
		"-media-errors", "0:100000000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "media errors") {
		t.Errorf("output missing media error tally:\n%s", buf.String())
	}
	for _, bad := range []string{"10", "a:b", "5:-1", ":"} {
		if err := run([]string{"-workload", "hm_1", "-media-errors", bad}, &buf); err == nil {
			t.Errorf("media-errors %q accepted", bad)
		}
	}
}

func TestRunPoisonRateFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "w91", "-scale", "0.1", "-cache", "-prefetch",
		"-poison-rate", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+faults results") {
		t.Errorf("poison-only config did not enable the injector:\n%s", out)
	}
	if strings.Contains(out, "poisoned cache evictions  0 ") {
		t.Errorf("no poisoned evictions at PoisonRate 1:\n%s", out)
	}
}

func TestRunFaultsRejectedWithAll(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "hm_1", "-scale", "0.1", "-all", "-fault-rate", "0.1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-all") {
		t.Errorf("err = %v, want -all/fault conflict", err)
	}
}

func TestRunTimeout(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "usr_0", "-scale", "1.0", "-ls", "-timeout", "1ns"}, &buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunJournaled(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	var buf bytes.Buffer
	args := []string{"-workload", "hm_1", "-scale", "0.2", "-journal", dir,
		"-checkpoint-every", "500"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LS+wal results", "write-ahead journal & recovery",
		"journal appends", "checkpoints", "checkpoint age (records)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The pair left behind is recoverable standalone.
	var rec bytes.Buffer
	if err := run([]string{"-journal", dir, "-recover"}, &rec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.String(), "recovered STL state") {
		t.Errorf("recover output:\n%s", rec.String())
	}
	// A second fresh run must not append to the used directory: the
	// combined log would no longer describe one coherent history.
	var again bytes.Buffer
	err := run(args, &again)
	if err == nil || !strings.Contains(err.Error(), "-recover") {
		t.Errorf("fresh run on used journal dir: err = %v, want refusal", err)
	}
}

func TestRunCrashThenRecover(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	var buf bytes.Buffer
	args := []string{"-workload", "hm_1", "-scale", "0.2", "-journal", dir,
		"-checkpoint-every", "20", "-crash-after", "30"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"simulation crashed", "-recover", "crashed", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("crash output missing %q:\n%s", want, out)
		}
	}
	// Standalone recovery reports the torn tail.
	var rec bytes.Buffer
	if err := run([]string{"-journal", dir, "-recover"}, &rec); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"recovered STL state", "torn tail detected", "records replayed"} {
		if !strings.Contains(rec.String(), want) {
			t.Errorf("recover output missing %q:\n%s", want, rec.String())
		}
	}
	// Recover-and-continue finishes a fresh workload on the recovered map.
	var cont bytes.Buffer
	args = []string{"-workload", "hm_1", "-scale", "0.1", "-journal", dir, "-recover"}
	if err := run(args, &cont); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LS+wal results", "recovered from checkpoint"} {
		if !strings.Contains(cont.String(), want) {
			t.Errorf("continue output missing %q:\n%s", want, cont.String())
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"negative scale":             {"-workload", "hm_1", "-scale", "-1"},
		"zero scale":                 {"-workload", "hm_1", "-scale", "0"},
		"negative timeout":           {"-workload", "hm_1", "-timeout", "-1s"},
		"zero cache-mb":              {"-workload", "hm_1", "-cache", "-cache-mb", "0"},
		"negative fault rate":        {"-workload", "hm_1", "-fault-rate", "-0.5"},
		"fault rate above 1":         {"-workload", "hm_1", "-fault-rate", "1.5"},
		"negative poison rate":       {"-workload", "hm_1", "-poison-rate", "-1"},
		"recover without journal":    {"-workload", "hm_1", "-recover"},
		"crash without journal":      {"-workload", "hm_1", "-crash-after", "5"},
		"negative crash point":       {"-workload", "hm_1", "-journal", "x", "-crash-after", "-2"},
		"negative checkpoint period": {"-workload", "hm_1", "-journal", "x", "-checkpoint-every", "-1"},
		"journal with all":           {"-workload", "hm_1", "-journal", "x", "-all"},
		"journal with custom layer":  {"-workload", "hm_1", "-journal", "x", "-layer", "segls"},

		// Observability flags follow exactly one simulation: they conflict
		// with -all (many runs) and with standalone -recover (no run).
		"pprof without metrics-addr":        {"-workload", "hm_1", "-pprof"},
		"trace-out with all":                {"-workload", "hm_1", "-all", "-trace-out", "x.trace"},
		"hist with all":                     {"-workload", "hm_1", "-all", "-hist"},
		"metrics-addr with all":             {"-workload", "hm_1", "-all", "-metrics-addr", "127.0.0.1:0"},
		"trace-out with standalone recover": {"-journal", "x", "-recover", "-trace-out", "x.trace"},
		"hist with standalone recover":      {"-journal", "x", "-recover", "-hist"},
		"metrics with standalone recover":   {"-journal", "x", "-recover", "-metrics-addr", "127.0.0.1:0"},
	}
	for name, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%s: accepted %v", name, args)
		}
	}
}

// TestRunTraceOutReplay records a run's event trace via -trace-out and
// checks that it replays; -crash-after + -trace-out is the explicitly
// supported pairing (a crash run's trace replays to the crash stats).
func TestRunTraceOutReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.trace")
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2", "-ls",
		"-trace-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "event trace written to "+path) {
		t.Errorf("output missing trace note:\n%s", buf.String())
	}
	st, err := obsv.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads == 0 || st.Writes == 0 || st.Disk.TotalSeeks() == 0 {
		t.Errorf("replayed stats look empty: %+v", st)
	}

	// Crash run: the trace must still be complete and replayable, and
	// record the crash.
	crashPath := filepath.Join(dir, "crash.trace")
	var cbuf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2",
		"-journal", filepath.Join(dir, "wal"), "-crash-after", "30",
		"-trace-out", crashPath}, &cbuf); err != nil {
		t.Fatal(err)
	}
	cst, err := obsv.ReplayFile(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	if !cst.Durability.Crashed {
		t.Errorf("crash-run trace replayed without Crashed: %+v", cst.Durability)
	}
	if cst.Durability.JournalAppends == 0 {
		t.Errorf("crash-run trace has no journal appends: %+v", cst.Durability)
	}
}

func TestRunHist(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2", "-ls", "-hist"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"seek_distance", "frags_per_read",
		"read_latency", "write_latency", "seek distance CDF", "P(X<=x)"} {
		if !strings.Contains(out, want) {
			t.Errorf("-hist output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMetricsAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2", "-ls",
		"-metrics-addr", "127.0.0.1:0", "-pprof"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serving metrics on http://127.0.0.1:") {
		t.Errorf("output missing metrics address:\n%s", buf.String())
	}
}

func TestRunPreloadReplays(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.1", "-ls", "-preload", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"replay 1/3", "replay 3/3", "LS results"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Exactly one result table: only the final replay is rendered.
	if n := strings.Count(out, "LS results"); n != 1 {
		t.Errorf("got %d result tables, want 1", n)
	}
}

func TestRunPreloadValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-preload", "0"}, &buf); err == nil {
		t.Error("-preload 0 must error")
	}
	dir := t.TempDir()
	if err := run([]string{"-workload", "hm_1", "-preload", "2", "-journal", dir}, &buf); err == nil {
		t.Error("-preload 2 with -journal must error")
	}
	if err := run([]string{"-workload", "hm_1", "-preload", "2", "-all"}, &buf); err == nil {
		t.Error("-preload 2 with -all must error")
	}
	if err := run([]string{"-workload", "hm_1", "-preload", "2", "-layer", "segls"}, &buf); err == nil {
		t.Error("-preload 2 with -layer must error")
	}
	if err := run([]string{"-workload", "hm_1", "-preload", "2", "-trace-out", filepath.Join(dir, "ev.bin")}, &buf); err == nil {
		t.Error("-preload 2 with -trace-out must error")
	}
}
