package journal

import (
	"encoding/json"
	"fmt"
	"testing"
)

func testLeaves(n int) []Hash {
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte{byte(i), byte(i >> 8), 0xab})
	}
	return leaves
}

func TestMerkleRootStability(t *testing.T) {
	// Golden values: the tree shape (RFC 6962) and the domain prefixes
	// are on-disk format; any change to either must be deliberate.
	got := MerkleRoot(testLeaves(5)).String()
	const want = "448564f71f10d54ebc8720aa7f7de130c37bbdab153df0d485334e651a4f2af0"
	if got != want {
		t.Errorf("MerkleRoot(5 leaves) = %s, want %s (on-disk format changed?)", got, want)
	}
	if MerkleRoot(testLeaves(1)) != testLeaves(1)[0] {
		t.Error("single leaf must be its own root")
	}
}

func TestMerkleProofAllShapes(t *testing.T) {
	// Every leaf of every tree size up to 17 (covers perfect, one-over,
	// and ragged shapes): the audit path must reproduce the root, and a
	// damaged leaf, path element, or index must not.
	for n := 1; n <= 17; n++ {
		leaves := testLeaves(n)
		root := MerkleRoot(leaves)
		for i := 0; i < n; i++ {
			path := merklePath(leaves, i)
			got, err := rootFromPath(i, n, leaves[i], path)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if got != root {
				t.Fatalf("n=%d i=%d: path root %s, want %s", n, i, got.Short(), root.Short())
			}
			// Wrong leaf must fail.
			bad := leaves[i]
			bad[0] ^= 0xff
			if got, err := rootFromPath(i, n, bad, path); err == nil && got == root {
				t.Fatalf("n=%d i=%d: corrupted leaf still proves", n, i)
			}
			// Wrong index must fail (except n=1, where the empty path
			// proves the only leaf).
			if n > 1 {
				j := (i + 1) % n
				if got, err := rootFromPath(j, n, leaves[i], path); err == nil && got == root {
					t.Fatalf("n=%d i=%d: proof verifies at wrong index %d", n, i, j)
				}
			}
			// Damaged path element must fail.
			for k := range path {
				mut := append([]Hash(nil), path...)
				mut[k][3] ^= 0x80
				if got, err := rootFromPath(i, n, leaves[i], mut); err == nil && got == root {
					t.Fatalf("n=%d i=%d: corrupted path[%d] still proves", n, i, k)
				}
			}
		}
	}
}

func TestRootFromPathRejectsBadLengths(t *testing.T) {
	leaves := testLeaves(6)
	path := merklePath(leaves, 2)
	if _, err := rootFromPath(2, 6, leaves[2], path[:len(path)-1]); err == nil {
		t.Error("short path accepted")
	}
	if _, err := rootFromPath(2, 6, leaves[2], append(append([]Hash(nil), path...), Hash{})); err == nil {
		t.Error("long path accepted")
	}
	if _, err := rootFromPath(6, 6, leaves[0], path); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := rootFromPath(0, 0, Hash{}, nil); err == nil {
		t.Error("empty tree accepted")
	}
}

func TestDomainSeparation(t *testing.T) {
	// A leaf over the concatenation of two hashes must not equal the
	// interior node over them, or a forged "leaf" could stand in for a
	// subtree (the classic second-preimage attack on unprefixed trees).
	a, b := LeafHash([]byte("a")), LeafHash([]byte("b"))
	node := nodeHash(a, b)
	if LeafHash(append(a[:], b[:]...)) == node {
		t.Error("leaf and node hashing are not domain-separated")
	}
	if chainLink(a, b) == node {
		t.Error("chain and node hashing are not domain-separated")
	}
}

func TestHashJSONRoundTrip(t *testing.T) {
	h := LeafHash([]byte("round trip"))
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Hash
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip %s != %s", got, h)
	}
	for _, bad := range []string{`"xyz"`, `"abcd"`, `42`, fmt.Sprintf("%q", h.String()+"00")} {
		if err := json.Unmarshal([]byte(bad), &got); err == nil {
			t.Errorf("bad hash JSON %s accepted", bad)
		}
	}
}
