package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestWAFProfilesValid(t *testing.T) {
	ps := WAFProfiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestWAFExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := WAF(context.Background(), &buf, 0.2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"oltp", "mixed", "append", "LS (infinite)", "SegLS greedy", "SegLS cost-benefit", "MediaCache"} {
		if !strings.Contains(out, want) {
			t.Errorf("waf output missing %q:\n%s", want, out)
		}
	}
	// The oltp rows must show the §II trade-off: a MediaCache WAF above 1.
	lines := strings.Split(out, "\n")
	var sawMCWAF bool
	for _, ln := range lines {
		if strings.Contains(ln, "MediaCache") && strings.Contains(ln, "oltp") {
			fields := strings.Fields(ln)
			if len(fields) >= 5 && fields[4] > "1.00" {
				sawMCWAF = true
			}
		}
	}
	if !sawMCWAF {
		t.Errorf("oltp MediaCache row should show WAF > 1:\n%s", out)
	}
}

func TestTimeAmpExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := TimeAmp(context.Background(), &buf, 0.1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"usr_1", "w91", "LS+cache", "time amplification"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeamp output missing %q", want)
		}
	}
}

func TestWriteFootprint(t *testing.T) {
	p := WAFProfiles()[0]
	recs := p.Generate(0.1)
	fp := writeFootprint(recs)
	if fp <= 0 || fp > p.RegionSectors {
		t.Errorf("footprint = %d outside (0, %d]", fp, p.RegionSectors)
	}
}
