// Package extmap implements the LBA→PBA extent map at the heart of a
// log-structured translation layer.
//
// The map is a set of disjoint LBA extents, each relocated to a physical
// (log) position. Writing a range punches a hole through any overlapping
// mappings — splitting, truncating or deleting them — and installs the new
// mapping, so the invariant "mappings are disjoint in LBA space" always
// holds. Looking up a range walks the covered mappings and merges pieces
// that are also physically contiguous, yielding the *fragments* the disk
// must visit to serve the read; the fragment count of a read is exactly
// the paper's "dynamic fragmentation".
//
// The implementation is an AVL tree keyed by LBA start. AVL (rather than
// a simpler structure) keeps worst-case O(log n) behaviour for the
// million-extent maps that long traces build up.
package extmap

import (
	"fmt"

	"smrseek/internal/geom"
)

// Mapping relocates the LBA extent to the physical address space:
// LBA sector Lba.Start+i is stored at PBA Pba+i.
type Mapping struct {
	Lba geom.Extent
	Pba geom.Sector
}

// PhysEnd returns the first PBA after the mapping.
func (m Mapping) PhysEnd() geom.Sector { return m.Pba + m.Lba.Count }

// PhysExtent returns the physical extent the mapping occupies.
func (m Mapping) PhysExtent() geom.Extent { return geom.Ext(m.Pba, m.Lba.Count) }

// String renders the mapping for diagnostics.
func (m Mapping) String() string {
	return fmt.Sprintf("%v->%d", m.Lba, m.Pba)
}

// node is an AVL tree node holding one mapping.
type node struct {
	m           Mapping
	left, right *node
	height      int
}

// Map is the extent map. The zero value is an empty map ready to use.
type Map struct {
	root *node
	n    int // number of mappings
	// coalesce, when set, merges mappings that are adjacent in LBA space
	// and contiguous in PBA space at Insert time, keeping the map minimal.
	coalesce bool
}

// New returns an empty extent map.
func New() *Map { return &Map{} }

// NewCoalesced returns an empty extent map that merges mappings adjacent
// in both LBA and PBA space on insert, so sequential log writes collapse
// into one mapping. Layers that attribute mapped extents to fixed-size
// physical regions (segments, zones) must use New instead: coalescing
// can fuse mappings across region boundaries.
func NewCoalesced() *Map { return &Map{coalesce: true} }

// Len returns the number of disjoint mappings (the paper's *static
// fragmentation* census counts breaks between them; see StaticFragments).
func (t *Map) Len() int { return t.n }

// MappedSectors returns the total number of LBA sectors with a mapping.
func (t *Map) MappedSectors() int64 {
	var total int64
	t.Walk(func(m Mapping) bool {
		total += m.Lba.Count
		return true
	})
	return total
}

func h(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func update(n *node) *node {
	n.height = 1 + max(h(n.left), h(n.right))
	return n
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	update(y)
	return update(x)
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	update(x)
	return update(y)
}

func balance(n *node) *node {
	update(n)
	switch bf := h(n.left) - h(n.right); {
	case bf > 1:
		if h(n.left.left) < h(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if h(n.right.right) < h(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// insertNode adds a mapping known not to overlap any existing mapping.
func (t *Map) insertNode(m Mapping) {
	t.root = insert(t.root, m)
	t.n++
}

func insert(n *node, m Mapping) *node {
	if n == nil {
		return &node{m: m, height: 1}
	}
	if m.Lba.Start < n.m.Lba.Start {
		n.left = insert(n.left, m)
	} else {
		n.right = insert(n.right, m)
	}
	return balance(n)
}

// deleteStart removes the mapping whose LBA start equals start.
func (t *Map) deleteStart(start geom.Sector) {
	var deleted bool
	t.root, deleted = del(t.root, start)
	if deleted {
		t.n--
	}
}

func del(n *node, start geom.Sector) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case start < n.m.Lba.Start:
		n.left, deleted = del(n.left, start)
	case start > n.m.Lba.Start:
		n.right, deleted = del(n.right, start)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Replace with successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.m = succ.m
		n.right, _ = del(n.right, succ.m.Lba.Start)
	}
	return balance(n), deleted
}

// overlapping collects, in ascending LBA order, every mapping that
// overlaps the query extent.
func (t *Map) overlapping(q geom.Extent) []Mapping {
	if q.Empty() {
		return nil
	}
	var out []Mapping
	collect(t.root, q, &out)
	return out
}

func collect(n *node, q geom.Extent, out *[]Mapping) {
	if n == nil {
		return
	}
	// In-order traversal pruned by key: mappings are disjoint and sorted
	// by start, so the left subtree can only matter when the current key
	// is above the query start... but a mapping starting below q.Start may
	// still overlap q (it extends right). Since extents are disjoint, at
	// most ONE mapping starts before q.Start yet overlaps it — the
	// predecessor of q.Start. We handle that by descending left whenever
	// the current start is >= q.Start, and also checking nodes that start
	// before q.Start for overlap (then their left subtrees can be pruned
	// only when the node itself starts below q.Start... a node starting
	// below q.Start can still have a predecessor overlapping q? No:
	// extents are disjoint, so if this node starts below q.Start and
	// overlaps q, nothing to its left can reach q. If this node starts
	// below q.Start and does NOT overlap q, nothing to its left can
	// either.) Hence:
	if n.m.Lba.Start >= q.Start {
		collect(n.left, q, out)
	}
	if n.m.Lba.Overlaps(q) {
		*out = append(*out, n.m)
	}
	if n.m.Lba.Start < q.End() {
		collect(n.right, q, out)
	}
}

// Insert maps the LBA extent lba to the physical run starting at pba,
// replacing any previous mapping of those sectors. Overlapped mappings
// are split or truncated so the disjointness invariant is preserved.
// It returns the displaced pieces — the portions of older mappings that
// lba overwrote, with their physical positions — which log-structured
// layers use to decrement per-segment live counts.
func (t *Map) Insert(lba geom.Extent, pba geom.Sector) []Mapping {
	if lba.Empty() {
		return nil
	}
	var displaced []Mapping
	for _, old := range t.overlapping(lba) {
		t.deleteStart(old.Lba.Start)
		ov := old.Lba.Intersect(lba)
		displaced = append(displaced, Mapping{
			Lba: ov,
			Pba: old.Pba + (ov.Start - old.Lba.Start),
		})
		for _, rest := range old.Lba.Subtract(lba) {
			// The surviving piece keeps its original physical placement.
			t.insertNode(Mapping{
				Lba: rest,
				Pba: old.Pba + (rest.Start - old.Lba.Start),
			})
		}
	}
	t.insertNode(Mapping{Lba: lba, Pba: pba})
	if t.coalesce {
		t.coalesceAround(Mapping{Lba: lba, Pba: pba})
	}
	return displaced
}

// coalesceAround merges the just-inserted mapping with its LBA
// neighbours when they are contiguous in both address spaces. Because
// mappings are disjoint, only the immediate predecessor and successor
// can qualify, and both are found with one overlap query widened by a
// sector on each side.
func (t *Map) coalesceAround(m Mapping) {
	lo, hi := m, m
	for _, nb := range t.overlapping(geom.Ext(m.Lba.Start-1, m.Lba.Count+2)) {
		if nb.Lba.End() == m.Lba.Start && nb.PhysEnd() == m.Pba {
			lo = nb
		}
		if nb.Lba.Start == m.Lba.End() && m.PhysEnd() == nb.Pba {
			hi = nb
		}
	}
	if lo == m && hi == m {
		return
	}
	if lo != m {
		t.deleteStart(lo.Lba.Start)
	}
	if hi != m {
		t.deleteStart(hi.Lba.Start)
	}
	t.deleteStart(m.Lba.Start)
	t.insertNode(Mapping{Lba: geom.Span(lo.Lba.Start, hi.Lba.End()), Pba: lo.Pba})
}

// Delete removes any mapping of the LBA extent (splitting mappings that
// straddle its boundary) and returns the removed pieces.
func (t *Map) Delete(lba geom.Extent) []Mapping {
	if lba.Empty() {
		return nil
	}
	var removed []Mapping
	for _, old := range t.overlapping(lba) {
		t.deleteStart(old.Lba.Start)
		ov := old.Lba.Intersect(lba)
		removed = append(removed, Mapping{
			Lba: ov,
			Pba: old.Pba + (ov.Start - old.Lba.Start),
		})
		for _, rest := range old.Lba.Subtract(lba) {
			t.insertNode(Mapping{
				Lba: rest,
				Pba: old.Pba + (rest.Start - old.Lba.Start),
			})
		}
	}
	return removed
}

// Lookup resolves the LBA extent into mappings, in ascending LBA order.
// Unmapped gaps are returned with Identity=true and Pba equal to the LBA
// start (the paper's "unwritten data is stored at a physical location
// corresponding to its LBA"). The pieces are maximal: consecutive pieces
// that are contiguous in both LBA and PBA space are merged — so each
// returned Resolved is one *fragment* and len(result) is the read's
// dynamic fragmentation.
func (t *Map) Lookup(q geom.Extent) []Resolved {
	if q.Empty() {
		return nil
	}
	var out []Resolved
	emit := func(r Resolved) {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.Lba.End() == r.Lba.Start && prev.Pba+prev.Lba.Count == r.Pba {
				// Physically contiguous with the previous piece: same fragment.
				prev.Lba.Count += r.Lba.Count
				prev.Identity = prev.Identity && r.Identity
				return
			}
		}
		out = append(out, r)
	}
	cur := q.Start
	for _, m := range t.overlapping(q) {
		if m.Lba.Start > cur {
			gap := geom.Span(cur, m.Lba.Start)
			emit(Resolved{Lba: gap, Pba: gap.Start, Identity: true})
		}
		ov := m.Lba.Intersect(q)
		emit(Resolved{Lba: ov, Pba: m.Pba + (ov.Start - m.Lba.Start)})
		cur = ov.End()
	}
	if cur < q.End() {
		gap := geom.Span(cur, q.End())
		emit(Resolved{Lba: gap, Pba: gap.Start, Identity: true})
	}
	return out
}

// Resolved is one physically-contiguous fragment of a resolved LBA range.
type Resolved struct {
	Lba      geom.Extent
	Pba      geom.Sector
	Identity bool // true when this piece was never written (PBA == LBA)
}

// PhysExtent returns the physical extent of the fragment.
func (r Resolved) PhysExtent() geom.Extent { return geom.Ext(r.Pba, r.Lba.Count) }

// Fragments returns the number of physically-contiguous pieces a read of q
// would touch — the paper's dynamic fragmentation of that read.
func (t *Map) Fragments(q geom.Extent) int { return len(t.Lookup(q)) }

// Walk visits every mapping in ascending LBA order until fn returns false.
func (t *Map) Walk(fn func(Mapping) bool) {
	walk(t.root, fn)
}

func walk(n *node, fn func(Mapping) bool) bool {
	if n == nil {
		return true
	}
	if !walk(n.left, fn) {
		return false
	}
	if !fn(n.m) {
		return false
	}
	return walk(n.right, fn)
}

// StaticFragments counts the physical discontinuities a sequential read of
// the whole device (LBA 0..deviceSectors) would encounter — the paper's
// *static fragmentation*. Each mapping whose physical start does not
// follow the physical end of the preceding LBA run is a break.
func (t *Map) StaticFragments(deviceSectors int64) int {
	if deviceSectors <= 0 {
		return 0
	}
	frags := 0
	prevPbaEnd := geom.Sector(-1) // sentinel: the first piece always counts
	// Pieces are visited in ascending LBA order with identity gaps filled
	// in, so LBA continuity is guaranteed; only PBA continuity matters.
	count := func(lba geom.Extent, pba geom.Sector) {
		if pba != prevPbaEnd {
			frags++
		}
		prevPbaEnd = pba + lba.Count
	}
	cur := geom.Sector(0)
	t.Walk(func(m Mapping) bool {
		if m.Lba.Start >= deviceSectors {
			return false
		}
		if m.Lba.Start > cur {
			count(geom.Span(cur, m.Lba.Start), cur) // identity gap
		}
		count(m.Lba, m.Pba)
		cur = m.Lba.End()
		return true
	})
	if cur < deviceSectors {
		count(geom.Span(cur, deviceSectors), cur)
	}
	return frags
}

// CheckInvariants validates the map's structural invariants: AVL balance
// and height bookkeeping, mappings sorted by LBA start, non-empty and
// non-overlapping, and — for maps built with NewCoalesced — fully
// coalesced (no two adjacent mappings contiguous in both LBA and PBA
// space). Recovery and property tests call it after every mutation
// storm; it is O(n).
func (t *Map) CheckInvariants() error {
	var prev *Mapping
	var walkErr error
	var check func(n *node) int
	check = func(n *node) int {
		if n == nil || walkErr != nil {
			return 0
		}
		lh := check(n.left)
		rh := check(n.right)
		if walkErr != nil {
			return 0
		}
		if d := lh - rh; d < -1 || d > 1 {
			walkErr = fmt.Errorf("extmap: unbalanced node %v (lh=%d rh=%d)", n.m, lh, rh)
		}
		got := 1 + max(lh, rh)
		if n.height != got {
			walkErr = fmt.Errorf("extmap: stale height at %v: %d != %d", n.m, n.height, got)
		}
		return got
	}
	check(t.root)
	if walkErr != nil {
		return walkErr
	}
	count := 0
	t.Walk(func(m Mapping) bool {
		count++
		if m.Lba.Empty() {
			walkErr = fmt.Errorf("extmap: empty mapping %v", m)
			return false
		}
		if prev != nil && prev.Lba.End() > m.Lba.Start {
			walkErr = fmt.Errorf("extmap: overlap %v then %v", *prev, m)
			return false
		}
		if t.coalesce && prev != nil && prev.Lba.End() == m.Lba.Start && prev.PhysEnd() == m.Pba {
			walkErr = fmt.Errorf("extmap: uncoalesced adjacent mappings %v then %v", *prev, m)
			return false
		}
		mm := m
		prev = &mm
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	if count != t.n {
		return fmt.Errorf("extmap: Len()=%d but walk saw %d", t.n, count)
	}
	return nil
}

// Diff compares two maps' mapping sequences and returns a description of
// the first divergence, or "" when they are identical. Recovery tests
// use it to assert a replayed map is bit-identical to the live one.
func (t *Map) Diff(o *Map) string {
	if t.n != o.n {
		return fmt.Sprintf("mapping counts differ: %d vs %d", t.n, o.n)
	}
	var other []Mapping
	o.Walk(func(m Mapping) bool {
		other = append(other, m)
		return true
	})
	i := 0
	diff := ""
	t.Walk(func(m Mapping) bool {
		if other[i] != m {
			diff = fmt.Sprintf("mapping %d differs: %v vs %v", i, m, other[i])
			return false
		}
		i++
		return true
	})
	return diff
}

// Equal reports whether the two maps hold identical mapping sequences.
func (t *Map) Equal(o *Map) bool { return t.Diff(o) == "" }
