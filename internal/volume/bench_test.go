package volume_test

import (
	"net"
	"testing"

	"smrseek/internal/core"
	"smrseek/internal/geom"
	"smrseek/internal/server"
	"smrseek/internal/volume"
)

// BenchmarkVolumeActor measures the actor-loop overhead the service
// layer adds on top of the raw simulator: queue handoff, batch drain and
// result delivery. "sync" waits out each op's full round trip (the
// protocol server's shape — one outstanding request per connection);
// "pipelined" keeps a window of requests in flight so the actor's batch
// drain actually batches (the multi-connection aggregate shape).
func BenchmarkVolumeActor(b *testing.B) {
	cases := []struct {
		name   string
		window int
	}{
		{"sync", 1},
		{"pipelined", 256},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			v, err := volume.Open(volume.Config{
				Name:       "bench",
				Sim:        core.Config{LogStructured: true, FrontierStart: 1 << 22},
				QueueDepth: 512,
			})
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan volume.Result, bc.window)
			outstanding := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := volume.Request{
					Kind:   volume.OpWrite,
					Extent: geom.Ext(geom.Sector((int64(i)*8)%(1<<20)), 8),
				}
				for {
					if err := v.TryDo(req, done); err == nil {
						break
					}
					<-done // queue full: free a slot by draining a result
					outstanding--
				}
				if outstanding++; outstanding == bc.window {
					<-done
					outstanding--
				}
			}
			for outstanding > 0 {
				<-done
				outstanding--
			}
			b.StopTimer()
			if err := v.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkVolumeTCP measures the same write stream through the full
// network service — hello, framing, the per-connection reader/writer
// goroutines and the volume actor. "sync" is the one-outstanding-request
// synchronous client (the v1 shape over SMRD2); "pipelined" keeps the
// negotiated window full on the same single connection, so the batching
// on both sides of the wire — the server writer's response coalescing
// and the actor's batch drain — actually engages. scripts/bench.sh
// gates both against the checked-in baseline.
func BenchmarkVolumeTCP(b *testing.B) {
	cases := []struct {
		name   string
		window int
	}{
		{"sync", 1},
		{"pipelined", 256},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			mgr, err := volume.OpenAll(volume.Config{
				Name:       "bench",
				Sim:        core.Config{LogStructured: true, FrontierStart: 1 << 22},
				QueueDepth: 512,
			})
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := server.New(mgr, ln, server.Options{Logf: b.Logf, MaxWindow: 256})
			defer func() {
				srv.Close()
				mgr.Close()
			}()
			ac, err := server.DialAsync(ln.Addr().String(), bc.window)
			if err != nil {
				b.Fatal(err)
			}
			defer ac.Close()
			if got := ac.Window(); got != bc.window {
				b.Fatalf("negotiated window %d, want %d", got, bc.window)
			}
			done := make(chan *server.Call, bc.window)
			outstanding := 0
			reap := func() {
				call := <-done
				outstanding--
				if _, err := call.Result(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := server.Request{
					Op:     server.OpWrite,
					Volume: "bench",
					Extent: geom.Ext(geom.Sector((int64(i)*8)%(1<<20)), 8),
				}
				if _, err := ac.Submit(req, done); err != nil {
					b.Fatal(err)
				}
				if outstanding++; outstanding == bc.window {
					reap()
				}
			}
			for outstanding > 0 {
				reap()
			}
			b.StopTimer()
		})
	}
}
