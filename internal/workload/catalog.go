package workload

import (
	"fmt"
	"sort"
)

// Sector-count helpers for profile literals.
const (
	// MBs is one megabyte in sectors.
	MBs = int64(1) << 11
	// GBs is one gigabyte in sectors.
	GBs = int64(1) << 21
)

// Catalog returns the 21 named workload profiles — 9 standing in for the
// paper's MSR Cambridge traces and 12 for its CloudPhysics traces. Base
// operation counts are the paper's Table I counts divided by ~100 (capped
// for the two largest traces) so the full Figure 11 sweep runs in
// seconds; the knobs are tuned so each workload reproduces the
// qualitative behaviour the paper reports for its namesake (see
// EXPERIMENTS.md for paper-vs-measured values).
func Catalog() []Profile {
	return []Profile{
		// ------------------------- MSR traces -------------------------
		// usr_0: write-intensive home-directory volume. Log-friendly:
		// overall SAF < 1 (Figure 11a).
		{
			Name: "usr_0", Source: MSR, OS: "Microsoft Windows", Seed: 0xA001,
			BaseOps: 22000, WriteFrac: 0.60,
			RegionSectors: 2 * GBs, WriteSectors: 20, ReadSectors: 24,
			HotRanges: 40, HotRangeSectors: 256, HotReadFrac: 0.10, HotZipf: 1.1,
			UpdateFrac: 0.03, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.05, ScanChunk: 256, ScanSpanSectors: 16 * MBs, ScanRepeat: true,
			TemporalFrac: 0.50,
			MisorderFrac: 0.008, MisorderChunks: 8, MisorderChunk: 16, MisorderPattern: Shuffled,
		},
		// usr_1: the largest MSR trace; read-intensive with a fragment
		// working set far beyond 64 MB, so selective caching is one of
		// the two workloads it does NOT win (Figure 11a); SAF > 1.
		{
			Name: "usr_1", Source: MSR, OS: "Microsoft Windows", Seed: 0xA002,
			BaseOps: 160000, WriteFrac: 0.085,
			RegionSectors: 8 * GBs, WriteSectors: 30, ReadSectors: 30,
			HotRanges: 1500, HotRangeSectors: 512, HotReadFrac: 0.30, HotZipf: 0.5,
			UpdateFrac: 0.60, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.45, ScanChunk: 256, ScanSpanSectors: 64 * MBs, ScanRepeat: false,
			TemporalFrac: 0.05,
			Phases:       8,
		},
		// src2_2: very write-intensive source-control volume with the
		// highest mis-ordered write share (~1 in 20, Figure 8); SAF < 1,
		// and opportunistic defrag makes it slightly worse (Figure 11a):
		// its fragmented reads are one-shot scans, so write-backs never
		// pay off.
		{
			Name: "src2_2", Source: MSR, OS: "Microsoft Windows", Seed: 0xA003,
			BaseOps: 11600, WriteFrac: 0.70,
			RegionSectors: 2 * GBs, WriteSectors: 100, ReadSectors: 48,
			HotRanges: 8, HotRangeSectors: 256, HotReadFrac: 0.02, HotZipf: 0.8,
			UpdateFrac: 0.22, UpdateSectors: 16, UpdateHotBias: 0.05,
			ScanFrac: 0.35, ScanChunk: 512, ScanSpanSectors: 24 * MBs, ScanRepeat: false,
			TemporalFrac:    0.15,
			OverlapReadFrac: 0.18,
			MisorderFrac:    0.012, MisorderChunks: 12, MisorderChunk: 16, MisorderPattern: Interleaved,
		},
		// hm_1: hardware-monitor volume; read-dominant with the paper's
		// flagship descending write runs (Figure 7a) and strong fragment
		// reuse (Figures 5, 10); SAF > 1.
		{
			Name: "hm_1", Source: MSR, OS: "Microsoft Windows", Seed: 0xA004,
			BaseOps: 6100, WriteFrac: 0.05,
			RegionSectors: 1 * GBs, WriteSectors: 40, ReadSectors: 40,
			HotRanges: 60, HotRangeSectors: 384, HotReadFrac: 0.45, HotZipf: 1.2,
			UpdateFrac: 0.45, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.25, ScanChunk: 256, ScanSpanSectors: 12 * MBs, ScanRepeat: true,
			MisorderFrac: 0.004, MisorderChunks: 24, MisorderChunk: 16, MisorderPattern: Descending,
		},
		// web_0: write-intensive web/SQL server; SAF < 1.
		{
			Name: "web_0", Source: MSR, OS: "Microsoft Windows", Seed: 0xA005,
			BaseOps: 20000, WriteFrac: 0.70,
			RegionSectors: 2 * GBs, WriteSectors: 17, ReadSectors: 24,
			HotRanges: 50, HotRangeSectors: 256, HotReadFrac: 0.15, HotZipf: 1.1,
			UpdateFrac: 0.02, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.05, ScanChunk: 256, ScanSpanSectors: 8 * MBs, ScanRepeat: true,
			TemporalFrac: 0.50,
		},
		// wdev_0: test web server, write-intensive; the paper's example
		// of a modest read-seek increase but net seek reduction (Fig. 2).
		{
			Name: "wdev_0", Source: MSR, OS: "Microsoft Windows", Seed: 0xA006,
			BaseOps: 11400, WriteFrac: 0.80,
			RegionSectors: 1 * GBs, WriteSectors: 16, ReadSectors: 16,
			HotRanges: 30, HotRangeSectors: 256, HotReadFrac: 0.20, HotZipf: 1.0,
			UpdateFrac: 0.06, UpdateSectors: 8, UpdateHotBias: 0.7,
			TemporalFrac: 0.40,
		},
		// mds_0: media server, write-intensive; SAF < 1.
		{
			Name: "mds_0", Source: MSR, OS: "Microsoft Windows", Seed: 0xA007,
			BaseOps: 12100, WriteFrac: 0.88,
			RegionSectors: 2 * GBs, WriteSectors: 14, ReadSectors: 20,
			HotRanges: 20, HotRangeSectors: 256, HotReadFrac: 0.15, HotZipf: 1.0,
			UpdateFrac: 0.10, UpdateSectors: 8, UpdateHotBias: 0.7,
			TemporalFrac: 0.35,
		},
		// rsrch_0: research-projects volume, write-intensive; SAF < 1.
		{
			Name: "rsrch_0", Source: MSR, OS: "Microsoft Windows", Seed: 0xA008,
			BaseOps: 14300, WriteFrac: 0.91,
			RegionSectors: 1 * GBs, WriteSectors: 17, ReadSectors: 16,
			HotRanges: 20, HotRangeSectors: 256, HotReadFrac: 0.20, HotZipf: 1.0,
			UpdateFrac: 0.12, UpdateSectors: 8, UpdateHotBias: 0.7,
			TemporalFrac: 0.30,
		},
		// ts_0: terminal server, write-intensive; SAF < 1.
		{
			Name: "ts_0", Source: MSR, OS: "Microsoft Windows", Seed: 0xA009,
			BaseOps: 18000, WriteFrac: 0.82,
			RegionSectors: 1 * GBs, WriteSectors: 16, ReadSectors: 16,
			HotRanges: 25, HotRangeSectors: 256, HotReadFrac: 0.15, HotZipf: 1.0,
			UpdateFrac: 0.06, UpdateSectors: 8, UpdateHotBias: 0.7,
			TemporalFrac: 0.40,
		},

		// --------------------- CloudPhysics traces --------------------
		// w20: the biggest CloudPhysics trace, and the paper's example of
		// opportunistic defrag *backfiring* (SAF worsened ~2.8x, §V).
		// Random-boundary overlapping reads over a lightly fragmented
		// span mean each defrag write-back re-fragments its neighbours
		// (the Figure 6 t_F effect) and the churn never converges, while
		// plain LS stays near the seeding level and a small hot set keeps
		// selective caching useful.
		{
			Name: "w20", Source: CloudPhysics, OS: "Microsoft Windows Server 2003", Seed: 0xB020,
			BaseOps: 180000, WriteFrac: 0.34,
			RegionSectors: 8 * GBs, WriteSectors: 68, ReadSectors: 48,
			HotRanges: 25, HotRangeSectors: 256, HotReadFrac: 0.06, HotZipf: 1.2,
			UpdateFrac: 0.03, UpdateSectors: 8, UpdateHotBias: 0.1,
			ScanSpanSectors: 24 * MBs,
			OverlapReadFrac: 0.60,
			Phases:          6,
		},
		// w33: balanced read/write with diurnal phases (Figure 3-style
		// swings); prefetch gains are marginal (Figure 11b).
		{
			Name: "w33", Source: CloudPhysics, OS: "Red Hat Enterprise Linux 5", Seed: 0xB033,
			BaseOps: 120000, WriteFrac: 0.51,
			RegionSectors: 4 * GBs, WriteSectors: 62, ReadSectors: 32,
			HotRanges: 80, HotRangeSectors: 384, HotReadFrac: 0.15, HotZipf: 1.1,
			UpdateFrac: 0.02, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.10, ScanChunk: 256, ScanSpanSectors: 16 * MBs, ScanRepeat: true,
			TemporalFrac: 0.10,
			Phases:       8,
		},
		// w36: extremely write-intensive (Table I: 18.8M writes vs 113K
		// reads); the few reads hit a tiny, highly skewed hot set
		// (Figure 5's extreme skew). Net seek reduction under LS.
		{
			Name: "w36", Source: CloudPhysics, OS: "Red Hat Enterprise Linux 5", Seed: 0xB036,
			BaseOps: 150000, WriteFrac: 0.95,
			RegionSectors: 4 * GBs, WriteSectors: 283, ReadSectors: 64,
			HotRanges: 12, HotRangeSectors: 512, HotReadFrac: 0.60, HotZipf: 1.4,
			UpdateFrac: 0.003, UpdateSectors: 8, UpdateHotBias: 0.7,
			TemporalFrac: 0.25,
		},
		// w55: read-intensive with strong reuse; seek amplification is
		// significant but not overwhelming, with visible temporal bursts
		// (Figure 3d); prefetch marginal, caching strong.
		{
			Name: "w55", Source: CloudPhysics, OS: "Microsoft Windows Server 2008 R2", Seed: 0xB055,
			BaseOps: 88000, WriteFrac: 0.12,
			RegionSectors: 4 * GBs, WriteSectors: 36, ReadSectors: 24,
			HotRanges: 100, HotRangeSectors: 384, HotReadFrac: 0.35, HotZipf: 1.15,
			UpdateFrac: 0.02, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.10, ScanChunk: 256, ScanSpanSectors: 16 * MBs, ScanRepeat: true,
			Phases: 6,
		},
		// w64: read-intensive; SAF > 1, caching effective.
		{
			Name: "w64", Source: CloudPhysics, OS: "Microsoft Windows Server 2008 R2", Seed: 0xB064,
			BaseOps: 75000, WriteFrac: 0.14,
			RegionSectors: 4 * GBs, WriteSectors: 75, ReadSectors: 60,
			HotRanges: 90, HotRangeSectors: 384, HotReadFrac: 0.30, HotZipf: 1.1,
			UpdateFrac: 0.03, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.20, ScanChunk: 256, ScanSpanSectors: 20 * MBs, ScanRepeat: true,
		},
		// w76: very write-intensive; log-friendly (SAF < 1).
		{
			Name: "w76", Source: CloudPhysics, OS: "Microsoft Windows Server 2008 R2", Seed: 0xB076,
			BaseOps: 61000, WriteFrac: 0.95,
			RegionSectors: 2 * GBs, WriteSectors: 71, ReadSectors: 32,
			HotRanges: 20, HotRangeSectors: 256, HotReadFrac: 0.25, HotZipf: 1.0,
			UpdateFrac: 0.08, UpdateSectors: 8, UpdateHotBias: 0.7,
			TemporalFrac: 0.35,
		},
		// w84: write-heavy but with mis-ordered bursts feeding repeated
		// scans — the showcase for look-ahead-behind prefetching (up to
		// 3.7x SAF improvement, §V).
		{
			Name: "w84", Source: CloudPhysics, OS: "Red Hat Enterprise Linux 5", Seed: 0xB084,
			BaseOps: 48000, WriteFrac: 0.86,
			RegionSectors: 2 * GBs, WriteSectors: 62, ReadSectors: 32,
			HotRanges: 20, HotRangeSectors: 256, HotReadFrac: 0.10, HotZipf: 1.0,
			UpdateFrac: 0.03, UpdateSectors: 8, UpdateHotBias: 0.5,
			ScanFrac: 0.70, ScanChunk: 256, ScanSpanSectors: 16 * MBs, ScanRepeat: true,
			MisorderFrac: 0.0025, MisorderChunks: 16, MisorderChunk: 16, MisorderPattern: Descending,
		},
		// w89: balanced; moderate amplification, all mechanisms help.
		{
			Name: "w89", Source: CloudPhysics, OS: "Microsoft Windows Server 2008 R2", Seed: 0xB089,
			BaseOps: 36000, WriteFrac: 0.58,
			RegionSectors: 4 * GBs, WriteSectors: 63, ReadSectors: 32,
			HotRanges: 60, HotRangeSectors: 256, HotReadFrac: 0.20, HotZipf: 1.1,
			UpdateFrac: 0.03, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.15, ScanChunk: 256, ScanSpanSectors: 12 * MBs, ScanRepeat: true,
			TemporalFrac: 0.10,
		},
		// w91: the paper's worst case — SAF ≈ 3.7 under LS, repaired to
		// ≈ 0.2 by 64 MB selective caching (18x) and substantially by
		// prefetching (mis-ordered bursts) and defrag (repeated scans).
		{
			Name: "w91", Source: CloudPhysics, OS: "Microsoft Windows Server 2003", Seed: 0xB091,
			BaseOps: 43000, WriteFrac: 0.27,
			RegionSectors: 2 * GBs, WriteSectors: 34, ReadSectors: 24,
			HotRanges: 40, HotRangeSectors: 384, HotReadFrac: 0.22, HotZipf: 1.2,
			UpdateFrac: 0.09, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.65, ScanChunk: 256, ScanSpanSectors: 24 * MBs, ScanRepeat: true,
			MisorderFrac: 0.006, MisorderChunks: 16, MisorderChunk: 16, MisorderPattern: Descending,
		},
		// w93: read-intensive with roaming scan-once reads: like w20,
		// defragmentation hurts (Figure 11b).
		{
			Name: "w93", Source: CloudPhysics, OS: "Microsoft Windows Server 2003", Seed: 0xB093,
			BaseOps: 33000, WriteFrac: 0.13,
			RegionSectors: 4 * GBs, WriteSectors: 57, ReadSectors: 40,
			HotRanges: 10, HotRangeSectors: 256, HotReadFrac: 0.03, HotZipf: 1.1,
			UpdateFrac: 0.03, UpdateSectors: 8, UpdateHotBias: 0.3,
			ScanFrac: 0.10, ScanChunk: 256, ScanSpanSectors: 16 * MBs, ScanRepeat: true,
			OverlapReadFrac: 0.45,
		},
		// w95: mis-ordered bursts + repeated scans: prefetching shines.
		{
			Name: "w95", Source: CloudPhysics, OS: "Microsoft Windows Server 2008", Seed: 0xB095,
			BaseOps: 39000, WriteFrac: 0.68,
			RegionSectors: 2 * GBs, WriteSectors: 21, ReadSectors: 24,
			HotRanges: 30, HotRangeSectors: 256, HotReadFrac: 0.10, HotZipf: 1.0,
			UpdateFrac: 0.04, UpdateSectors: 8, UpdateHotBias: 0.5,
			ScanFrac: 0.70, ScanChunk: 256, ScanSpanSectors: 16 * MBs, ScanRepeat: true,
			MisorderFrac: 0.0025, MisorderChunks: 16, MisorderChunk: 16, MisorderPattern: Interleaved,
		},
		// w106: write-intensive with the ~1-in-25 small-scale shuffled
		// mis-ordering of Figure 7b / Figure 8.
		{
			Name: "w106", Source: CloudPhysics, OS: "Microsoft Windows Server 2003 Standard", Seed: 0xB106,
			BaseOps: 33000, WriteFrac: 0.82,
			RegionSectors: 2 * GBs, WriteSectors: 42, ReadSectors: 24,
			HotRanges: 40, HotRangeSectors: 256, HotReadFrac: 0.25, HotZipf: 1.1,
			UpdateFrac: 0.05, UpdateSectors: 8, UpdateHotBias: 0.7,
			ScanFrac: 0.15, ScanChunk: 256, ScanSpanSectors: 8 * MBs, ScanRepeat: true,
			TemporalFrac: 0.20,
			MisorderFrac: 0.009, MisorderChunks: 10, MisorderChunk: 8, MisorderPattern: Shuffled,
		},
	}
}

// ByName returns the named profile from the catalog.
func ByName(name string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown workload %q (try Names())", name)
}

// Names returns every catalog workload name, MSR first then CloudPhysics,
// each group alphabetical.
func Names() []string {
	var msr, cp []string
	for _, p := range Catalog() {
		if p.Source == MSR {
			msr = append(msr, p.Name)
		} else {
			cp = append(cp, p.Name)
		}
	}
	sort.Strings(msr)
	sort.Strings(cp)
	return append(msr, cp...)
}

// BySource returns the catalog profiles from one trace family.
func BySource(s Source) []Profile {
	var out []Profile
	for _, p := range Catalog() {
		if p.Source == s {
			out = append(out, p)
		}
	}
	return out
}
