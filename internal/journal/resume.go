package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Incremental chunk verification. A replication follower receives the
// primary's journal as byte-exact chunks that always end on a seal
// boundary, in order. Re-scanning the whole accumulated prefix on every
// chunk makes total verification work quadratic in journal size; a
// ChunkState caches the verified frontier — chain head, seal and record
// counts, byte offset — so each sealed byte is CRC-checked and hashed
// exactly once per process lifetime, and each new chunk verifies in
// time proportional to its own length.

// HeaderLen is the journal file header's size in bytes: the offset at
// which a generation's first frame begins.
const HeaderLen = int64(headerSize)

// ChunkState is a verified frontier within one journal generation:
// every byte below Offset of generation Gen has been verified (frame
// CRCs, segment Merkle roots, seal chain) and Chain/Seals/Records
// summarize that prefix. Offset == 0 means no bytes of the generation
// are held yet — the next chunk must be fresh and start with the
// generation's header.
type ChunkState struct {
	Gen     uint64
	Offset  int64
	Chain   Hash
	Seals   int
	Records int64
}

// VerifyChunkSegments verifies data as the exact continuation of st:
// data must be whole sealed segments — record frames closed by seal
// frames, nothing else, ending exactly on a seal boundary — whose CRCs,
// Merkle roots and chain links all extend st.Chain. On success it
// returns the advanced frontier; on any failure it returns st unchanged
// with a descriptive error and the caller must discard the whole chunk.
// The caller has already consumed the generation header (st.Offset >=
// headerSize).
func VerifyChunkSegments(data []byte, st ChunkState) (ChunkState, error) {
	base := st
	if st.Offset < headerSize {
		return base, fmt.Errorf("journal: chunk state offset %d precedes the header", st.Offset)
	}
	if len(data) == 0 {
		return base, fmt.Errorf("journal: empty segment chunk")
	}
	var (
		off     int64
		end     = int64(len(data))
		pending []Hash
	)
	for off < end {
		at := base.Offset + off // absolute offset, for error messages
		if end-off < 4 {
			return base, fmt.Errorf("journal: chunk has a partial length prefix at offset %d", at)
		}
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		if plen == 0 || plen > maxPayloadLen {
			return base, fmt.Errorf("journal: chunk has an implausible frame length %d at offset %d", plen, at)
		}
		next := off + 4 + plen + 4
		if next > end {
			return base, fmt.Errorf("journal: chunk has a partial frame at offset %d (does not end on a seal boundary)", at)
		}
		payload := data[off+4 : off+4+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4+plen:]) {
			return base, fmt.Errorf("journal: chunk frame checksum mismatch at offset %d", at)
		}
		switch {
		case plen == payloadSize:
			if _, ok := unmarshalPayload(payload); !ok {
				return base, fmt.Errorf("journal: chunk has an unreplayable record at offset %d", at)
			}
			pending = append(pending, LeafHash(payload))
		case plen == sealPayloadSize && payload[0] == byte(RecSeal):
			idx, cnt, root, sealChain, ok := parseSealPayload(payload)
			if !ok {
				return base, fmt.Errorf("journal: chunk has a malformed seal payload at offset %d", at)
			}
			if int(idx) != st.Seals {
				return base, fmt.Errorf("journal: chunk seal index %d, want %d", idx, st.Seals)
			}
			if int(cnt) != len(pending) {
				return base, fmt.Errorf("journal: chunk seal covers %d records, %d are pending", cnt, len(pending))
			}
			if got := MerkleRoot(pending); got != root {
				return base, fmt.Errorf("journal: chunk segment root %s, sealed %s", got.Short(), root.Short())
			}
			if want := chainLink(st.Chain, root); want != sealChain {
				return base, fmt.Errorf("journal: chunk chain %s, sealed %s", want.Short(), sealChain.Short())
			}
			st.Chain = sealChain
			st.Seals++
			st.Records += cnt
			pending = pending[:0]
		default:
			return base, fmt.Errorf("journal: chunk has an unrecognized %d-byte frame at offset %d", plen, at)
		}
		off = next
	}
	if len(pending) != 0 {
		return base, fmt.Errorf("journal: chunk leaves %d records unsealed (does not end on a seal boundary)", len(pending))
	}
	st.Offset += end
	return st, nil
}
