package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"smrseek/internal/core"
	"smrseek/internal/journal"
	"smrseek/internal/report"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

// DurabilityWorkloads are the traces the crash/recovery table covers:
// one read-mostly and one write-heavy catalog workload.
var DurabilityWorkloads = []string{"hm_1", "w91"}

// Durability prints the crash-consistency extension: each workload runs
// under the write-ahead journal, is crashed at several points
// (including a torn final record), and recovered; the table reports
// what replay found and whether the recovered translation state matches
// the live state bit for bit.
func Durability(ctx context.Context, w io.Writer, scale float64) error {
	tb := report.NewTable("Extension: write-ahead journal crash recovery",
		"workload", "variant", "crash after", "replayed", "torn tail", "from ckpt", "state match")
	for _, name := range DurabilityWorkloads {
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		pl := preloaded(p, scale)
		recs, frontier := pl.Records(), pl.MaxLBA()
		variants := []struct {
			label string
			cfg   func() core.Config
		}{
			{"LS", func() core.Config {
				return core.Config{LogStructured: true, FrontierStart: frontier}
			}},
			{"LS+defrag", func() core.Config {
				d := core.DefaultDefragConfig()
				return core.Config{LogStructured: true, FrontierStart: frontier, Defrag: &d}
			}},
		}
		for _, v := range variants {
			// A crash-free probe sizes the crash points to the run.
			total, err := durabilityRun(ctx, v.cfg(), recs, 0)
			if err != nil {
				return fmt.Errorf("%s/%s probe: %w", name, v.label, err)
			}
			for _, after := range []int64{total / 3, total} {
				if after < 1 {
					after = 1
				}
				row, err := durabilityCrashRow(ctx, v.cfg(), recs, after)
				if err != nil {
					return fmt.Errorf("%s/%s crash@%d: %w", name, v.label, after, err)
				}
				tb.AddRow(name, v.label, after, row.replayed,
					fmt.Sprintf("%v", row.torn), fmt.Sprintf("%v", row.fromCkpt), row.match)
			}
		}
	}
	return tb.Render(w)
}

// durabilityRun plays the workload under a journal in a temp directory
// and returns the append count (crashAfter 0 = run to completion).
func durabilityRun(ctx context.Context, cfg core.Config, recs []trace.Record, crashAfter int64) (int64, error) {
	dir, err := os.MkdirTemp("", "smrseek-wal-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	log, err := journal.Open(dir, cfg.FrontierStart)
	if err != nil {
		return 0, err
	}
	defer log.Close()
	if crashAfter > 0 {
		log.CrashAfter(crashAfter, 12)
	}
	cfg.Journal = &core.JournalConfig{Log: log, CheckpointEvery: 2048}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return 0, err
	}
	st, err := sim.RunContext(ctx, trace.NewSliceReader(recs))
	if err != nil && !errors.Is(err, journal.ErrCrashed) {
		return 0, err
	}
	return st.Durability.JournalAppends, nil
}

type durabilityRow struct {
	replayed int64
	torn     bool
	fromCkpt bool
	match    string
}

// durabilityCrashRow crashes the run at the given append (torn write),
// recovers, and compares the recovered layer against the live one.
func durabilityCrashRow(ctx context.Context, cfg core.Config, recs []trace.Record, crashAfter int64) (durabilityRow, error) {
	dir, err := os.MkdirTemp("", "smrseek-wal-")
	if err != nil {
		return durabilityRow{}, err
	}
	defer os.RemoveAll(dir)
	log, err := journal.Open(dir, cfg.FrontierStart)
	if err != nil {
		return durabilityRow{}, err
	}
	defer log.Close()
	log.CrashAfter(crashAfter, 12)
	cfg.Journal = &core.JournalConfig{Log: log, CheckpointEvery: 2048}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return durabilityRow{}, err
	}
	if _, err := sim.RunContext(ctx, trace.NewSliceReader(recs)); !errors.Is(err, journal.ErrCrashed) {
		if err == nil {
			err = fmt.Errorf("crash point %d never fired", crashAfter)
		}
		return durabilityRow{}, err
	}
	recovered, rst, err := stl.RecoverDir(dir)
	if err != nil {
		return durabilityRow{}, err
	}
	row := durabilityRow{replayed: rst.Replayed, torn: rst.TornTail, fromCkpt: rst.FromCheckpoint, match: "yes"}
	live := sim.LS()
	if diff := live.Map().Diff(recovered.Map()); diff != "" ||
		live.Frontier() != recovered.Frontier() || live.LogSectors() != recovered.LogSectors() {
		row.match = "NO"
	}
	if err := recovered.Map().CheckInvariants(); err != nil {
		row.match = "NO (invariants: " + err.Error() + ")"
	}
	return row, nil
}
