// Package workload generates the synthetic block workloads that stand in
// for the paper's MSR Cambridge and CloudPhysics traces (see DESIGN.md §3
// for the substitution argument). Every generator is seeded and fully
// deterministic: the same name and scale always produce the identical
// record stream, so experiments are reproducible bit-for-bit.
package workload

import "math"

// RNG is a deterministic xoshiro256** generator seeded via splitmix64.
// It is self-contained so results can never drift with the Go runtime's
// math/rand implementation.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from a single word.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A zero state would be degenerate; splitmix cannot produce all-zero
	// from any seed, but keep the guard for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63n returns a uniform value in [0, n). It panics for n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n)) // modulo bias is negligible here
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s — the skew behind the paper's Figure 10 fragment
// popularity curves.
type Zipf struct {
	rng *RNG
	cum []float64
}

// NewZipf returns a sampler over n ranks with exponent s (s > 0; larger
// is more skewed). It panics for n <= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf with non-positive n")
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{rng: rng, cum: cum}
}

// Next returns the next sampled rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
