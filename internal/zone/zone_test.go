package zone

import (
	"testing"
	"testing/quick"

	"smrseek/internal/geom"
)

func TestNewDeviceLayout(t *testing.T) {
	d := NewDevice(1000, 100, 2)
	if d.Zones() != 10 || d.ZoneSectors() != 100 {
		t.Fatalf("zones=%d size=%d", d.Zones(), d.ZoneSectors())
	}
	if z := d.ZoneByIndex(0); z.Kind != Conventional {
		t.Error("zone 0 should be conventional")
	}
	if z := d.ZoneByIndex(2); z.Kind != SequentialRequired {
		t.Error("zone 2 should be sequential-required")
	}
	if z := d.Zone(250); z.Index != 2 || z.Extent != geom.Ext(200, 100) {
		t.Errorf("Zone(250) = %+v", z)
	}
	if d.Zone(-1) != nil || d.Zone(10000) != nil {
		t.Error("out-of-range sectors must return nil")
	}
	if d.ZoneByIndex(-1) != nil || d.ZoneByIndex(10) != nil {
		t.Error("out-of-range indexes must return nil")
	}
}

func TestNewDevicePanicsOnBadZoneSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDevice(100, 0, 0)
}

func TestSequentialWriteConstraint(t *testing.T) {
	d := NewDevice(1000, 100, 0)
	if err := d.Write(geom.Ext(0, 50)); err != nil {
		t.Fatal(err)
	}
	// Next write must continue at the write pointer.
	if err := d.Write(geom.Ext(50, 10)); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(geom.Ext(80, 10)); err == nil {
		t.Fatal("write past the pointer must be rejected")
	}
	if err := d.Write(geom.Ext(0, 10)); err == nil {
		t.Fatal("rewrite without reset must be rejected")
	}
	z := d.Zone(0)
	if z.WP != 60 || z.WrittenSectors() != 60 {
		t.Errorf("WP = %d", z.WP)
	}
	if z.Full() || z.Empty() {
		t.Error("zone should be neither full nor empty")
	}
	_, _, violations := d.Stats()
	if violations != 2 {
		t.Errorf("violations = %d", violations)
	}
}

func TestConventionalZoneAllowsRandomWrites(t *testing.T) {
	d := NewDevice(1000, 100, 1)
	if err := d.Write(geom.Ext(80, 10)); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(geom.Ext(0, 10)); err != nil {
		t.Fatal(err)
	}
	if d.Zone(0).WP != 90 {
		t.Errorf("high-water mark = %d", d.Zone(0).WP)
	}
}

func TestWriteStraddleRejectedAndSplitAccepted(t *testing.T) {
	d := NewDevice(1000, 100, 0)
	// Fill zone 0 so a straddling split continues into zone 1 legally.
	if err := d.Write(geom.Ext(0, 90)); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(geom.Ext(90, 20)); err == nil {
		t.Fatal("straddling write must be rejected by Write")
	}
	if err := d.WriteSplit(geom.Ext(90, 20)); err != nil {
		t.Fatalf("WriteSplit: %v", err)
	}
	if !d.Zone(0).Full() {
		t.Error("zone 0 should be full")
	}
	if d.Zone(100).WP != 110 {
		t.Errorf("zone 1 WP = %d", d.Zone(100).WP)
	}
	if err := d.WriteSplit(geom.Ext(2000, 10)); err == nil {
		t.Error("out-of-device split must error")
	}
}

func TestResetAndReadable(t *testing.T) {
	d := NewDevice(1000, 100, 0)
	if err := d.WriteSplit(geom.Ext(0, 150)); err != nil {
		t.Fatal(err)
	}
	if !d.Readable(geom.Ext(0, 150)) {
		t.Error("written range must be readable")
	}
	if d.Readable(geom.Ext(0, 200)) {
		t.Error("unwritten tail must not be readable")
	}
	if d.Readable(geom.Ext(5000, 1)) {
		t.Error("out-of-device must not be readable")
	}
	if err := d.Reset(0); err != nil {
		t.Fatal(err)
	}
	if !d.Zone(0).Empty() {
		t.Error("reset zone should be empty")
	}
	if d.Readable(geom.Ext(0, 10)) {
		t.Error("reset zone contents must be unreadable")
	}
	if err := d.Reset(99); err == nil {
		t.Error("unknown zone reset must error")
	}
	writes, resets, _ := d.Stats()
	if writes != 2 || resets != 1 {
		t.Errorf("writes=%d resets=%d", writes, resets)
	}
	if err := d.Write(geom.Extent{}); err != nil {
		t.Error("empty write is a no-op")
	}
}

// Property: any sequence of append-at-WP writes into a zone is accepted
// until the zone is full, and the WP equals the sum of accepted lengths.
func TestAppendAlwaysAcceptedProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		d := NewDevice(1<<16, 1<<12, 0)
		z := d.ZoneByIndex(3)
		var total int64
		for _, l := range lens {
			n := int64(l%64 + 1)
			if total+n > z.Extent.Count {
				break
			}
			if err := d.Write(geom.Ext(z.WP, n)); err != nil {
				return false
			}
			total += n
		}
		return z.WrittenSectors() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
