package analysis

import (
	"smrseek/internal/core"
	"smrseek/internal/metrics"
	"smrseek/internal/trace"
)

// StaticFragPoint is one sample of static fragmentation growth.
type StaticFragPoint struct {
	// Op is the operation index at which the census was taken.
	Op int64
	// Fragments is the number of physical discontinuities a sequential
	// read of the whole device would encounter (§IV-A's static
	// fragmentation).
	Fragments int
	// MappedSectors is the number of LBA sectors with a log mapping.
	MappedSectors int64
}

// StaticFragSeries replays the trace under the LS layer and samples
// static fragmentation every sampleEvery operations — how the address
// space decays from fully spatial toward fully temporal order. The
// paper measures only *dynamic* fragmentation (what reads actually pay);
// this series shows the latent inventory those reads draw from.
func StaticFragSeries(recs []trace.Record, sampleEvery int) ([]StaticFragPoint, error) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	sim, err := core.NewSimulator(core.Config{
		LogStructured: true,
		FrontierStart: trace.MaxLBA(recs),
	})
	if err != nil {
		return nil, err
	}
	device := trace.MaxLBA(recs)
	var out []StaticFragPoint
	for i, rec := range recs {
		sim.Step(rec)
		if (i+1)%sampleEvery == 0 || i == len(recs)-1 {
			ls := sim.LS()
			out = append(out, StaticFragPoint{
				Op:            int64(i + 1),
				Fragments:     ls.Map().StaticFragments(device),
				MappedSectors: ls.Map().MappedSectors(),
			})
		}
	}
	return out, nil
}

// SeekDistanceStats summarizes a run's seek distances for reporting:
// the share of seeks within common distance bands.
type SeekDistanceStats struct {
	Seeks       int64
	WithinTrack float64 // |d| <= 1 MB (rotational only)
	Within100MB float64
	Within1GB   float64
	MeanAbsGB   float64
}

// DistanceStats computes band shares from an instrumented run's CDF.
func DistanceStats(cdf *metrics.CDF) SeekDistanceStats {
	const (
		mb = int64(1) << 11
		gb = int64(1) << 21
	)
	n := cdf.N()
	st := SeekDistanceStats{Seeks: int64(n)}
	if n == 0 {
		return st
	}
	within := func(sectors int64) float64 {
		hi := cdf.At(float64(sectors))
		lo := cdf.At(float64(-sectors - 1))
		return hi - lo
	}
	st.WithinTrack = within(1 * mb)
	st.Within100MB = within(100 * mb)
	st.Within1GB = within(1 * gb)
	// Mean |distance| from quantiles is fiddly; approximate via mean of
	// absolute values observed: use the CDF mean of |x| by sampling the
	// curve is overkill — track it directly instead.
	var absSum float64
	for _, q := range []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95} {
		v := cdf.Quantile(q)
		if v < 0 {
			v = -v
		}
		absSum += v
	}
	st.MeanAbsGB = absSum / 10 / float64(gb)
	return st
}
