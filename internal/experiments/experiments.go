// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic workload catalog. Each function writes a
// textual rendering (table, bars or series) to the given writer; the
// cmd/experiments binary and the repository benchmarks are thin wrappers
// around these.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"smrseek/internal/analysis"
	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/metrics"
	"smrseek/internal/report"
	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

// DefaultScale is the workload scale experiments run at: each named
// workload emits roughly BaseOps/2 operations, keeping a full Figure 11
// sweep in the tens of seconds.
const DefaultScale = 0.5

// Table1 prints workload characteristics for every catalog workload —
// the paper's Table I, computed over the synthetic stand-ins.
func Table1(ctx context.Context, w io.Writer, scale float64) error {
	tb := report.NewTable("Table I: workload characteristics (synthetic stand-ins)",
		"workload", "source", "reads", "writes", "read GB", "written GB", "mean write KB", "OS (guest)")
	for _, p := range catalogOrdered() {
		recs := preloaded(p, scale).Records()
		c := trace.Characterize(recs)
		tb.AddRow(p.Name, p.Source.String(),
			report.HumanCount(c.ReadCount), report.HumanCount(c.WriteCount),
			c.ReadGB(), c.WrittenGB(), c.MeanWriteKB, p.OS)
	}
	return tb.Render(w)
}

// Fig2Row is one workload's Figure 2 bar pair.
type Fig2Row struct {
	Name                          string
	Source                        workload.Source
	NoLSReadSeeks, NoLSWriteSeeks int64
	LSReadSeeks, LSWriteSeeks     int64
}

// Fig2Data computes read/write seek counts under NoLS and LS for every
// catalog workload.
func Fig2Data(ctx context.Context, scale float64) ([]Fig2Row, error) {
	cat := catalogOrdered()
	rows := make([]Fig2Row, len(cat))
	err := forEachIndexedCtx(ctx, len(cat), func(ctx context.Context, i int) error {
		p := cat[i]
		recs := preloaded(p, scale).Records()
		cmp, err := core.CompareContext(ctx, recs, core.Config{LogStructured: true})
		if err != nil {
			return err
		}
		ls := cmp.Variants[0].Stats
		rows[i] = Fig2Row{
			Name:           p.Name,
			Source:         p.Source,
			NoLSReadSeeks:  cmp.Baseline.Disk.ReadSeeks,
			NoLSWriteSeeks: cmp.Baseline.Disk.WriteSeeks,
			LSReadSeeks:    ls.Disk.ReadSeeks,
			LSWriteSeeks:   ls.Disk.WriteSeeks,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig2 prints read and write seek counts, NoLS vs LS (the paper's
// Figure 2 bar chart, one row per bar pair).
func Fig2(ctx context.Context, w io.Writer, scale float64) error {
	rows, err := Fig2Data(ctx, scale)
	if err != nil {
		return err
	}
	tb := report.NewTable("Figure 2: seek counts, non-log-structured (NoLS) vs log-structured (LS)",
		"workload", "source", "NoLS read", "NoLS write", "LS read", "LS write", "total SAF")
	for _, r := range rows {
		saf := metrics.SAF(r.LSReadSeeks+r.LSWriteSeeks, r.NoLSReadSeeks+r.NoLSWriteSeeks)
		tb.AddRow(r.Name, r.Source.String(),
			report.HumanCount(r.NoLSReadSeeks), report.HumanCount(r.NoLSWriteSeeks),
			report.HumanCount(r.LSReadSeeks), report.HumanCount(r.LSWriteSeeks), saf)
	}
	return tb.Render(w)
}

// Fig3Workloads are the four traces the paper plots over time.
var Fig3Workloads = []string{"usr_1", "web_0", "w91", "w55"}

// Fig3 prints the long-seek (>500 KB) differential series, LS minus
// NoLS, per window of operations (the paper's Figure 3).
func Fig3(ctx context.Context, w io.Writer, scale float64) error {
	for _, name := range Fig3Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		recs := preloaded(p, scale).Records()
		window := int64(len(recs)/48) + 1
		ls, err := analysis.InstrumentedContext(ctx, recs, core.Config{LogStructured: true}, window)
		if err != nil {
			return err
		}
		nols, err := analysis.InstrumentedContext(ctx, recs, core.Config{}, window)
		if err != nil {
			return err
		}
		diff, err := ls.LongSeeks.Sub(nols.LongSeeks)
		if err != nil {
			return err
		}
		vals := diff.Values()
		fmt.Fprintf(w, "Figure 3 (%s): long-seek overhead (LS - NoLS) per %d-op window\n", name, window)
		fmt.Fprintf(w, "  %s\n", report.Sparkline(vals))
		fmt.Fprintf(w, "  windows:")
		for _, v := range vals {
			fmt.Fprintf(w, " %d", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig4Workloads are the four traces whose access-distance CDFs the paper
// plots (±2 GB window).
var Fig4Workloads = []string{"src2_2", "usr_0", "w84", "w64"}

// Fig4 prints access-distance CDFs for NoLS and LS over a ±2 GB window.
func Fig4(ctx context.Context, w io.Writer, scale float64) error {
	const gb = int64(1) << 21 // sectors per GB
	for _, name := range Fig4Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		recs := preloaded(p, scale).Records()
		nols, err := analysis.InstrumentedContext(ctx, recs, core.Config{}, 1000)
		if err != nil {
			return err
		}
		ls, err := analysis.InstrumentedContext(ctx, recs, core.Config{LogStructured: true}, 1000)
		if err != nil {
			return err
		}
		tb := report.NewTable(fmt.Sprintf("Figure 4 (%s): CDF of access distances", name),
			"distance (GB)", "NoLS", "LS")
		for gbs := -2.0; gbs <= 2.0; gbs += 0.5 {
			d := gbs * float64(gb)
			tb.AddRow(fmt.Sprintf("%+.1f", gbs), nols.DistanceCDF.At(d), ls.DistanceCDF.At(d))
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig5Workloads are the four traces whose fragmented-read skew the paper
// plots.
var Fig5Workloads = []string{"usr_0", "hm_1", "w20", "w36"}

// Fig5 prints the dynamic-fragmentation skew: the share of all fragments
// held by the most-fragmented X% of fragmented reads.
func Fig5(ctx context.Context, w io.Writer, scale float64) error {
	tb := report.NewTable("Figure 5: fragment share held by top X% of fragmented reads",
		"workload", "frag reads", "fragments", "top 10%", "top 20%", "top 50%")
	for _, name := range Fig5Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		recs := preloaded(p, scale).Records()
		art, err := analysis.InstrumentedContext(ctx, recs, core.Config{LogStructured: true}, 1000)
		if err != nil {
			return err
		}
		sk := analysis.FragmentedReadCDF(art.FragCounts)
		tb.AddRow(name, sk.FragmentedReads, sk.TotalFragments,
			sk.ShareAtOps(0.10), sk.ShareAtOps(0.20), sk.ShareAtOps(0.50))
	}
	return tb.Render(w)
}

// Fig7Workloads are the traces with visibly non-sequential write
// patterns.
var Fig7Workloads = []string{"hm_1", "w106"}

// Fig7 prints write-ordering profiles: adjacency statistics and a sample
// of the write-LBA sequence around the first descending run.
func Fig7(ctx context.Context, w io.Writer, scale float64) error {
	for _, name := range Fig7Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		recs := preloaded(p, scale).Records()
		prof := analysis.SequentialityProfile(recs)
		fmt.Fprintf(w, "Figure 7 (%s): writes=%d ascending-adjacent=%d descending-adjacent=%d longest-descending-run=%d\n",
			name, prof.Writes, prof.AscendingAdjacent, prof.DescendingAdjacent, prof.LongestDescending)
		// Print the write-LBA sequence around the first reverse-adjacent
		// pair so the non-sequential pattern is visible, as in the
		// paper's scatter plots.
		var writes []geom.Sector
		var writeEnds []geom.Sector
		for _, r := range recs {
			if r.Kind == disk.Write {
				writes = append(writes, r.Extent.Start)
				writeEnds = append(writeEnds, r.Extent.End())
			}
		}
		for i := 1; i < len(writes); i++ {
			if writeEnds[i] == writes[i-1] { // descending-adjacent pair
				lo := i - 1
				hi := i + 15
				if hi > len(writes) {
					hi = len(writes)
				}
				fmt.Fprintf(w, "  write-LBA sample:")
				for _, s := range writes[lo:hi] {
					fmt.Fprintf(w, " %d", s)
				}
				fmt.Fprintln(w)
				break
			}
		}
	}
	return nil
}

// Fig8Workloads are the eight traces in the paper's mis-ordered-write
// bar chart.
var Fig8Workloads = []string{"usr_0", "src2_2", "hm_1", "w84", "w91", "w95", "w106", "w33"}

// Fig8 prints the fraction of mis-ordered writes within 256 KB.
func Fig8(ctx context.Context, w io.Writer, scale float64) error {
	tb := report.NewTable("Figure 8: mis-ordered writes within 256 KB",
		"workload", "writes", "mis-ordered", "fraction")
	for _, name := range Fig8Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		recs := preloaded(p, scale).Records()
		res := analysis.MisorderedWrites(recs, 0)
		tb.AddRow(name, report.HumanCount(res.Writes), report.HumanCount(res.Misordered),
			fmt.Sprintf("%.2f%%", 100*res.Fraction()))
	}
	return tb.Render(w)
}

// Fig10Workloads are the eight traces in the paper's fragment-popularity
// figure.
var Fig10Workloads = []string{"usr_1", "hm_1", "web_0", "src2_2", "w20", "w33", "w55", "w106"}

// Fig10 prints fragment popularity: the access count of the top-ranked
// fragments and the cumulative cache size needed for 50/80/90% of all
// fragment accesses.
func Fig10(ctx context.Context, w io.Writer, scale float64) error {
	tb := report.NewTable("Figure 10: fragment popularity and cumulative cache footprint",
		"workload", "fragments", "top access", "bytes@50%", "bytes@80%", "bytes@90%")
	for _, name := range Fig10Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		recs := preloaded(p, scale).Records()
		art, err := analysis.InstrumentedContext(ctx, recs, core.Config{LogStructured: true}, 1000)
		if err != nil {
			return err
		}
		entries := art.Popularity.Sorted()
		top := int64(0)
		if len(entries) > 0 {
			top = entries[0].AccessCount
		}
		tb.AddRow(name, len(entries), top,
			report.HumanBytes(analysis.BytesForAccessShare(entries, 0.5)),
			report.HumanBytes(analysis.BytesForAccessShare(entries, 0.8)),
			report.HumanBytes(analysis.BytesForAccessShare(entries, 0.9)))
	}
	return tb.Render(w)
}

// Fig11Row is one workload's SAF set (Figure 11 bars).
type Fig11Row struct {
	Name     string
	Source   workload.Source
	LS       float64
	Defrag   float64
	Prefetch float64
	Cache    float64
}

// Fig11Data computes the Figure 11 seek amplification factors for every
// catalog workload.
func Fig11Data(ctx context.Context, scale float64) ([]Fig11Row, error) {
	cat := catalogOrdered()
	rows := make([]Fig11Row, len(cat))
	err := forEachIndexedCtx(ctx, len(cat), func(ctx context.Context, i int) error {
		p := cat[i]
		recs := preloaded(p, scale).Records()
		cmp, err := core.ComparePaperContext(ctx, recs)
		if err != nil {
			return err
		}
		get := func(n string) float64 {
			v, _ := cmp.VariantByName(n)
			return v.Total
		}
		rows[i] = Fig11Row{
			Name:     p.Name,
			Source:   p.Source,
			LS:       get("LS"),
			Defrag:   get("LS+defrag"),
			Prefetch: get("LS+prefetch"),
			Cache:    get("LS+cache"),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig11 prints the headline result: SAF under LS and LS plus each
// mechanism, for every workload — as a table and as per-workload bars
// (mirroring the paper's grouped bar chart).
func Fig11(ctx context.Context, w io.Writer, scale float64) error {
	rows, err := Fig11Data(ctx, scale)
	if err != nil {
		return err
	}
	tb := report.NewTable("Figure 11: seek amplification factor (SAF) vs NoLS baseline",
		"workload", "source", "LS", "LS+defrag", "LS+prefetch", "LS+cache")
	maxSAF := 1.0
	for _, r := range rows {
		tb.AddRow(r.Name, r.Source.String(), r.LS, r.Defrag, r.Prefetch, r.Cache)
		for _, v := range []float64{r.LS, r.Defrag, r.Prefetch, r.Cache} {
			if v > maxSAF {
				maxSAF = v
			}
		}
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%s (%s)\n", r.Name, r.Source)
		fmt.Fprintf(w, "  %s\n", report.Bar("LS", r.LS, maxSAF, 50))
		fmt.Fprintf(w, "  %s\n", report.Bar("+defrag", r.Defrag, maxSAF, 50))
		fmt.Fprintf(w, "  %s\n", report.Bar("+prefetch", r.Prefetch, maxSAF, 50))
		fmt.Fprintf(w, "  %s\n", report.Bar("+cache", r.Cache, maxSAF, 50))
	}
	return nil
}

// All runs every experiment in paper order.
func All(ctx context.Context, w io.Writer, scale float64) error {
	steps := []struct {
		name string
		fn   func(context.Context, io.Writer, float64) error
	}{
		{"table1", Table1},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"waf", WAF},
		{"cleaning", Cleaning},
		{"timeamp", TimeAmp},
		{"durability", Durability},
	}
	for _, s := range steps {
		if err := s.fn(ctx, w, scale); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Run dispatches an experiment by name ("table1", "fig2", ..., "all").
func Run(w io.Writer, name string, scale float64) error {
	return RunContext(context.Background(), w, name, scale)
}

// RunContext is Run with cancellation: a cancelled or expired context
// stops the running experiment and returns ctx.Err().
func RunContext(ctx context.Context, w io.Writer, name string, scale float64) error {
	fns := map[string]func(context.Context, io.Writer, float64) error{
		"table1":     Table1,
		"fig2":       Fig2,
		"fig3":       Fig3,
		"fig4":       Fig4,
		"fig5":       Fig5,
		"fig7":       Fig7,
		"fig8":       Fig8,
		"fig10":      Fig10,
		"fig11":      Fig11,
		"waf":        WAF,
		"cleaning":   Cleaning,
		"timeamp":    TimeAmp,
		"durability": Durability,
		"all":        All,
	}
	fn, ok := fns[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (want table1, fig2, fig3, fig4, fig5, fig7, fig8, fig10, fig11, waf, cleaning, timeamp, durability or all)", name)
	}
	return fn(ctx, w, scale)
}

// catalogOrdered returns the catalog sorted MSR-first, then by name —
// the order the paper's figures group workloads in.
func catalogOrdered() []workload.Profile {
	cat := workload.Catalog()
	sort.SliceStable(cat, func(i, j int) bool {
		if cat[i].Source != cat[j].Source {
			return cat[i].Source == workload.MSR
		}
		return cat[i].Name < cat[j].Name
	})
	return cat
}
