// Command experiments regenerates the paper's tables and figures from
// the synthetic workload catalog.
//
// Usage:
//
//	experiments [-scale 0.5] table1 fig2 fig3 fig4 fig5 fig7 fig8 fig10 fig11 waf timeamp
//	experiments all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"smrseek"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scale := fs.Float64("scale", 0, "workload scale (0 = default 0.5)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		return fmt.Errorf(`pass experiment names (table1 fig2 fig3 fig4 fig5 fig7 fig8 fig10 fig11 waf timeamp) or "all"`)
	}
	for _, name := range names {
		if err := smrseek.RunExperiment(out, name, *scale); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
