package workload

import "testing"

func BenchmarkGenerate(b *testing.B) {
	for _, name := range []string{"hm_1", "w91", "w36"} {
		p, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				n = len(p.Generate(0.2))
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	r := NewRNG(2)
	z := NewZipf(r, 1000, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
