package lru

import "testing"

func BenchmarkAdd(b *testing.B) {
	c := New[int64, int64](1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(int64(i%10000), int64(i), 128)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := New[int64, int64](1 << 30)
	for i := int64(0); i < 10000; i++ {
		c.Add(i, i, 128)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(int64(i % 10000))
	}
}

func BenchmarkGetMiss(b *testing.B) {
	c := New[int64, int64](1 << 20)
	for i := int64(0); i < 1000; i++ {
		c.Add(i, i, 128)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(int64(i%1000) + 1_000_000)
	}
}

func BenchmarkAddEvicting(b *testing.B) {
	c := New[int64, int64](128 * 100) // holds 100 entries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(int64(i), int64(i), 128)
	}
}
