package band

import (
	"flag"
	"math/rand"
	"testing"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/metrics"
	"smrseek/internal/trace"
)

// Differential property: with the persistent cache disabled, the banded
// device is the infinite model wearing band bookkeeping — every access
// must pass through verbatim, so the §II seek accounting is required to
// be bit-identical, access by access and counter by counter. The test
// is seeded; a failing seed is logged and can be replayed with
// -band.seed, like -extmap.seed.

var propSeed = flag.Int64("band.seed", 0,
	"property test seed (0 = derive from time; the chosen seed is logged)")

func seedFor(t *testing.T) int64 {
	seed := *propSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("band property seed %d (rerun: go test ./internal/band -run %s -band.seed %d)",
		seed, t.Name(), seed)
	return seed
}

// TestPropertyCacheDisabledMatchesInfinite drives random op streams —
// rewrites included — through a cache-less banded device and the
// infinite model side by side, comparing each Access and the final
// counters exactly.
func TestPropertyCacheDisabledMatchesInfinite(t *testing.T) {
	rng := rand.New(rand.NewSource(seedFor(t)))
	for trial := 0; trial < 25; trial++ {
		bandSize := 16 + rng.Int63n(500)
		bd, err := New(Config{BandSectors: bandSize, DataSectors: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		inf := disk.New()
		for op := 0; op < 2000; op++ {
			kind := disk.Read
			if rng.Intn(2) == 0 {
				kind = disk.Write
			}
			ext := geom.Ext(rng.Int63n(1<<16), 1+rng.Int63n(4*bandSize))
			ab, errB := bd.TryDo(kind, ext)
			ai, errI := inf.TryDo(kind, ext)
			if ab != ai {
				t.Fatalf("trial %d op %d %s %v: banded access %+v != infinite %+v",
					trial, op, kind, ext, ab, ai)
			}
			if (errB == nil) != (errI == nil) {
				t.Fatalf("trial %d op %d: error mismatch %v vs %v", trial, op, errB, errI)
			}
		}
		if bc, ic := bd.Counters(), inf.Counters(); bc != ic {
			t.Fatalf("trial %d (band size %d): counters diverge\nbanded:   %+v\ninfinite: %+v",
				trial, bandSize, bc, ic)
		}
		if err := bd.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// synthTrace builds a seeded workload over a bounded footprint. With
// rewrites=false every written LBA is written exactly once (the
// rewrite-free workloads of the acceptance criterion); reads may still
// revisit anything.
func synthTrace(rng *rand.Rand, n int, rewrites bool) []trace.Record {
	const footprint = 1 << 16
	recs := make([]trace.Record, 0, n)
	next := geom.Sector(0) // first-write frontier for the rewrite-free mode
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 { // write
			count := 1 + rng.Int63n(256)
			var ext geom.Extent
			if rewrites {
				ext = geom.Ext(rng.Int63n(footprint), count)
			} else {
				ext = geom.Ext(next, count)
				next = ext.End()
			}
			recs = append(recs, trace.Record{Kind: disk.Write, Extent: ext})
		} else {
			hi := next
			if rewrites || hi == 0 {
				hi = footprint
			}
			start := rng.Int63n(int64(hi))
			recs = append(recs, trace.Record{Kind: disk.Read, Extent: geom.Ext(start, 1+rng.Int63n(128))})
		}
	}
	return recs
}

// normalize clears the fields that legitimately differ between the two
// geometries: the configs differ by the Device field, and the banded
// device reports its (pass-through) cleaning gauges.
func normalize(st core.Stats) core.Stats {
	st.Config = core.Config{}
	st.Cleaning = metrics.Cleaning{}
	return st
}

// TestPropertyCoreStatsMatchInfinite runs the same seeded trace through
// the full simulator — NoLS, LS, and LS with every mechanism — on both
// geometries and requires bit-identical Stats, for rewrite-free and
// rewrite-heavy workloads alike.
func TestPropertyCoreStatsMatchInfinite(t *testing.T) {
	rng := rand.New(rand.NewSource(seedFor(t)))
	layers := []struct {
		name string
		cfg  core.Config
	}{
		{"NoLS", core.Config{}},
		{"LS", core.Config{LogStructured: true, FrontierStart: 1 << 20}},
		{"LS+mechanisms", core.Config{
			LogStructured: true,
			FrontierStart: 1 << 20,
			Defrag:        &core.DefragConfig{MinFragments: 2, MinAccesses: 1},
			Prefetch:      &core.PrefetchConfig{LookBehindSectors: 64, LookAheadSectors: 64, BufferBytes: 1 << 20},
			Cache:         &core.CacheConfig{CapacityBytes: 1 << 20},
		}},
	}
	for _, rewrites := range []bool{false, true} {
		recs := synthTrace(rng, 4000, rewrites)
		for _, lc := range layers {
			bd, err := New(Config{BandSectors: 997, DataSectors: 1 << 30})
			if err != nil {
				t.Fatal(err)
			}
			bandCfg := lc.cfg
			bandCfg.Device = bd
			simB, err := core.NewSimulator(bandCfg)
			if err != nil {
				t.Fatal(err)
			}
			simI, err := core.NewSimulator(lc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			stB, err := simB.Run(trace.NewSliceReader(recs))
			if err != nil {
				t.Fatal(err)
			}
			stI, err := simI.Run(trace.NewSliceReader(recs))
			if err != nil {
				t.Fatal(err)
			}
			if normalize(stB) != normalize(stI) {
				t.Errorf("%s (rewrites=%v): stats diverge\nbanded:   %+v\ninfinite: %+v",
					lc.name, rewrites, normalize(stB), normalize(stI))
			}
			if err := bd.CheckInvariants(); err != nil {
				t.Errorf("%s (rewrites=%v): %v", lc.name, rewrites, err)
			}
		}
	}
}

// TestPropertyInvariantsUnderLoad hammers a cache-enabled device with a
// rewrite-heavy stream under every policy, checking the allocator
// invariants as it goes and once more at the end.
func TestPropertyInvariantsUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(seedFor(t)))
	for _, pol := range []Policy{PolA, PolB, Shelter} {
		d, err := New(Config{
			BandSectors:  256,
			CacheSectors: 2048,
			UnitSectors:  512,
			DataSectors:  1 << 20,
			Policy:       pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 5000; op++ {
			kind := disk.Read
			if rng.Intn(2) == 0 {
				kind = disk.Write
			}
			ext := geom.Ext(rng.Int63n(1<<13), 1+rng.Int63n(512))
			if _, err := d.TryDo(kind, ext); err != nil {
				t.Fatal(err)
			}
			if op%251 == 0 {
				if err := d.CheckInvariants(); err != nil {
					t.Fatalf("%v op %d: %v", pol, op, err)
				}
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("%v final: %v", pol, err)
		}
		c := d.Cleaning()
		if c.CachedWrites == 0 || c.BandsCleaned == 0 {
			t.Fatalf("%v: workload did not exercise the cache/cleaner: %+v", pol, c)
		}
	}
}
