package core

import (
	"errors"
	"math/rand"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/fault"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
)

// crashWorkload builds a deterministic read/write mix that exercises
// every journaled path: host writes, fragmented reads (which trigger
// defrag relocations, prefetch fills and cache inserts), and rewrites.
func crashWorkload(seed int64, n int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		kind := disk.Write
		if rng.Intn(3) == 0 {
			kind = disk.Read
		}
		recs = append(recs, trace.Record{
			Time:   int64(i),
			Kind:   kind,
			Extent: geom.Ext(rng.Int63n(20000), rng.Int63n(64)+1),
		})
	}
	return recs
}

// crashVariants are the mechanism combinations the acceptance matrix
// covers. Defrag is the interesting one — relocations journal through a
// different path than host writes.
func crashVariants() map[string]func(*Config) {
	return map[string]func(*Config){
		"LS":          func(c *Config) {},
		"LS+defrag":   func(c *Config) { d := DefaultDefragConfig(); c.Defrag = &d },
		"LS+prefetch": func(c *Config) { p := DefaultPrefetchConfig(); c.Prefetch = &p },
		"LS+cache":    func(c *Config) { c.Cache = &CacheConfig{CapacityBytes: 1 << 20} },
	}
}

// assertRecoveredMatchesLive is the matrix's core assertion: the
// recovered layer is bit-identical to the live one.
func assertRecoveredMatchesLive(t *testing.T, live, rec *stl.LS) {
	t.Helper()
	if diff := live.Map().Diff(rec.Map()); diff != "" {
		t.Errorf("extent map diverges: %s", diff)
	}
	if live.Frontier() != rec.Frontier() {
		t.Errorf("frontier: live %d, recovered %d", live.Frontier(), rec.Frontier())
	}
	if live.LogSectors() != rec.LogSectors() {
		t.Errorf("log sectors: live %d, recovered %d", live.LogSectors(), rec.LogSectors())
	}
	if err := rec.Map().CheckInvariants(); err != nil {
		t.Errorf("recovered map invariants: %v", err)
	}
	if err := live.Map().CheckInvariants(); err != nil {
		t.Errorf("live map invariants: %v", err)
	}
}

func TestCrashRecoveryMatrix(t *testing.T) {
	const trailingFrame = 20 // torn bytes for the mid-record crash cases
	recs := crashWorkload(42, 600)
	frontier := FrontierFor(recs)
	for name, apply := range crashVariants() {
		// A crash-free run establishes how many appends the variant
		// produces, so the crash points can cover the whole range.
		probe := func() int64 {
			dir := t.TempDir()
			log, err := journal.Open(dir, frontier)
			if err != nil {
				t.Fatal(err)
			}
			defer log.Close()
			cfg := Config{LogStructured: true, FrontierStart: frontier,
				Journal: &JournalConfig{Log: log, CheckpointEvery: 64}}
			apply(&cfg)
			sim, err := NewSimulator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(trace.NewSliceReader(recs))
			if err != nil {
				t.Fatal(err)
			}
			// Even without a crash, the on-disk pair must reproduce the
			// final state.
			recovered, _, err := stl.RecoverDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			assertRecoveredMatchesLive(t, sim.LS(), recovered)
			if st.Durability.JournalAppends == 0 || st.Durability.Checkpoints == 0 {
				t.Fatalf("%s: appends=%d checkpoints=%d, journaling inert",
					name, st.Durability.JournalAppends, st.Durability.Checkpoints)
			}
			return st.Durability.JournalAppends
		}
		total := probe()

		crashPoints := []struct {
			after int64
			torn  int
		}{
			{1, 0},             // first append, clean cut
			{1, trailingFrame}, // first append, torn
			{2, trailingFrame}, // right after the first mutation
			{total / 2, 0},     // mid-run, clean (lands between checkpoints)
			{total / 2, trailingFrame},
			{total, trailingFrame}, // torn FINAL record
		}
		for _, cp := range crashPoints {
			dir := t.TempDir()
			log, err := journal.Open(dir, frontier)
			if err != nil {
				t.Fatal(err)
			}
			log.CrashAfter(cp.after, cp.torn)
			cfg := Config{LogStructured: true, FrontierStart: frontier,
				Journal: &JournalConfig{Log: log, CheckpointEvery: 64}}
			apply(&cfg)
			sim, err := NewSimulator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(trace.NewSliceReader(recs))
			if !errors.Is(err, journal.ErrCrashed) {
				t.Fatalf("%s crash@%d torn=%d: err = %v, want ErrCrashed",
					name, cp.after, cp.torn, err)
			}
			if !st.Durability.Crashed {
				t.Errorf("%s crash@%d: Durability.Crashed not set", name, cp.after)
			}
			if got := st.Durability.JournalAppends; got != cp.after-1 {
				t.Errorf("%s crash@%d: %d acknowledged appends, want %d",
					name, cp.after, got, cp.after-1)
			}
			log.Close()

			recovered, rst, err := stl.RecoverDir(dir)
			if err != nil {
				t.Fatalf("%s crash@%d torn=%d: recovery failed: %v",
					name, cp.after, cp.torn, err)
			}
			if wantTorn := cp.torn > 0; rst.TornTail != wantTorn {
				t.Errorf("%s crash@%d torn=%d: TornTail=%v, want %v",
					name, cp.after, cp.torn, rst.TornTail, wantTorn)
			}
			assertRecoveredMatchesLive(t, sim.LS(), recovered)
		}
	}
}

// TestCrashRecoveryResume recovers from a crash and finishes the
// workload on the recovered layer (passed back in as the custom layer,
// journaling re-enabled), then recovers AGAIN — the full power-loss
// lifecycle a real drive goes through.
func TestCrashRecoveryResume(t *testing.T) {
	recs := crashWorkload(7, 400)
	frontier := FrontierFor(recs)
	dir := t.TempDir()
	log, err := journal.Open(dir, frontier)
	if err != nil {
		t.Fatal(err)
	}
	log.CrashAfter(90, 11)
	cfg := Config{LogStructured: true, FrontierStart: frontier,
		Journal: &JournalConfig{Log: log, CheckpointEvery: 32}}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(trace.NewSliceReader(recs)); !errors.Is(err, journal.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	log.Close()

	recovered, _, err := stl.RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertRecoveredMatchesLive(t, sim.LS(), recovered)

	// The torn journal must be checkpointed away before reopening: a
	// fresh Open refuses a torn tail.
	if _, err := journal.Open(dir, frontier); err == nil {
		t.Fatal("torn journal reopened without recovery")
	}
	log2, err := journal.Open(t.TempDir(), recovered.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if err := log2.Checkpoint(recovered.Snapshot()); err != nil {
		t.Fatal(err)
	}
	cfg2 := Config{CustomLayer: recovered,
		Journal: &JournalConfig{Log: log2, CheckpointEvery: 32}}
	sim2, err := NewSimulator(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if sim2.LS() != recovered {
		t.Fatal("recovered LS not re-adopted as the built-in layer")
	}
	if _, err := sim2.Run(trace.NewSliceReader(recs[90:])); err != nil {
		t.Fatal(err)
	}
	again, _, err := stl.RecoverDir(log2.Dir())
	if err != nil {
		t.Fatal(err)
	}
	assertRecoveredMatchesLive(t, sim2.LS(), again)
}

// TestCheckpointWhileFaulting drives journal appends through a
// fault.Injector-backed failer: transient append faults are retried,
// exhausted ones drop the op — and whatever happens, the on-disk
// checkpoint/journal pair stays recoverable to exactly the live state.
func TestCheckpointWhileFaulting(t *testing.T) {
	recs := crashWorkload(13, 500)
	frontier := FrontierFor(recs)
	dir := t.TempDir()
	log, err := journal.Open(dir, frontier)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	inj, err := fault.New(fault.Config{Seed: 99, WriteRate: 0.3, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	log.SetFailer(func(seq int64, rec journal.Record) error {
		return inj.CheckAccess(disk.Write, geom.Ext(rec.Pba, rec.Lba.Count))
	})
	cfg := Config{LogStructured: true, FrontierStart: frontier,
		Journal: &JournalConfig{Log: log, CheckpointEvery: 40},
		Fault:   &fault.Config{Seed: 99, WriteRate: 0.3, MaxRetries: 1}}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(trace.NewSliceReader(recs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Durability.AppendRetries == 0 {
		t.Error("no append retries at WriteRate 0.3: failer not wired")
	}
	if st.Durability.AppendFailures == 0 {
		t.Error("no exhausted appends at MaxRetries 1: dropped-op path untested")
	}
	if st.Durability.Checkpoints == 0 {
		t.Error("no checkpoints written while faulting")
	}
	recovered, _, err := stl.RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertRecoveredMatchesLive(t, sim.LS(), recovered)
}

func TestJournalConfigValidation(t *testing.T) {
	dir := t.TempDir()
	log, err := journal.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	cases := []Config{
		{Journal: &JournalConfig{Log: log}},              // NoLS
		{LogStructured: true, Journal: &JournalConfig{}}, // nil Log
		{LogStructured: true, Journal: &JournalConfig{Log: log, CheckpointEvery: -1}},
		{CustomLayer: stl.NewNoLS(), Journal: &JournalConfig{Log: log}}, // non-LS custom layer
	}
	for i, cfg := range cases {
		if _, err := NewSimulator(cfg); err == nil {
			t.Errorf("case %d: invalid journal config accepted", i)
		}
	}
	if got := (Config{LogStructured: true, Journal: &JournalConfig{Log: log}}).Name(); got != "LS+wal" {
		t.Errorf("Name() = %q, want LS+wal", got)
	}
}
