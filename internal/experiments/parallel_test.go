package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachIndexedRunsAll(t *testing.T) {
	var count int64
	seen := make([]int64, 100)
	err := forEachIndexed(100, func(i int) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d ran %d times", i, v)
		}
	}
}

func TestForEachIndexedPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := forEachIndexed(10, func(i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachIndexedZeroAndOne(t *testing.T) {
	if err := forEachIndexed(0, func(int) error { t.Fatal("should not run"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := forEachIndexed(1, func(i int) error { ran = true; return nil }); err != nil || !ran {
		t.Fatal("single-item loop broken")
	}
}

// TestParallelDeterminism: the parallel Fig11 sweep must produce
// identical rows across runs.
func TestParallelDeterminism(t *testing.T) {
	a, err := Fig11Data(context.Background(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11Data(context.Background(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestForEachIndexedStopsDispatchAfterError: once an invocation fails,
// queued indices must be dropped, not run — the executed count stays far
// below n even though the call returns promptly.
func TestForEachIndexedStopsDispatchAfterError(t *testing.T) {
	sentinel := errors.New("boom")
	const n = 10000
	var ran int64
	err := forEachIndexed(n, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Every worker may have had one item in flight when the first error
	// landed, but the dispatcher must not have drained the whole range.
	if got := atomic.LoadInt64(&ran); got >= n {
		t.Fatalf("all %d items ran despite the first failing", got)
	}
}

func TestForEachIndexedCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	err := forEachIndexedCtx(ctx, 100, func(ctx context.Context, i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&ran); got != 0 {
		t.Fatalf("%d invocations ran under a pre-cancelled context, want 0", got)
	}
}

func TestForEachIndexedCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 10000
	var ran int64
	err := forEachIndexedCtx(ctx, n, func(ctx context.Context, i int) error {
		if atomic.AddInt64(&ran, 1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&ran); got >= n {
		t.Fatalf("all %d items ran despite cancellation", got)
	}
}

func TestForEachIndexedErrorWinsOverCancel(t *testing.T) {
	sentinel := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := forEachIndexedCtx(ctx, 100, func(ctx context.Context, i int) error {
		if i == 0 {
			cancel()
			return sentinel
		}
		return nil
	})
	// The invocation error was first; it must not be masked by the
	// cancellation it raced with.
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel to win over ctx.Err()", err)
	}
}

func TestFig11DataCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig11Data(ctx, 0.05); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig11Data under cancelled ctx = %v, want context.Canceled", err)
	}
}
