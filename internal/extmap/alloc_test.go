package extmap

import (
	"testing"

	"smrseek/internal/geom"
)

// The visitor APIs are the simulator's per-access hot path; these tests
// pin their steady-state allocation count at zero. "Steady state" means
// the map's node freelist and overlap scratch buffer have been warmed by
// a few rounds of the same traffic — exactly the regime a long
// simulation run settles into.

func TestLookupFuncZeroAllocs(t *testing.T) {
	m := buildMap(10000)
	qs := [...]geom.Extent{
		geom.Ext(1<<20, 256),
		geom.Ext(5<<20, 1024),
		geom.Ext(9<<20, 64),
		geom.Ext(0, 4096),
	}
	n := 0
	allocs := testing.AllocsPerRun(100, func() {
		for _, q := range qs {
			m.LookupFunc(q, func(Resolved) bool {
				n++
				return true
			})
		}
	})
	if allocs != 0 {
		t.Fatalf("LookupFunc allocated %.1f times per run, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("LookupFunc never delivered a fragment")
	}
}

func TestFragmentsZeroAllocs(t *testing.T) {
	m := buildMap(10000)
	allocs := testing.AllocsPerRun(100, func() {
		m.Fragments(geom.Ext(3<<20, 2048))
	})
	if allocs != 0 {
		t.Fatalf("Fragments allocated %.1f times per run, want 0", allocs)
	}
}

func TestInsertFuncZeroAllocs(t *testing.T) {
	for _, v := range []struct {
		name string
		mk   func() *Map
	}{{"New", New}, {"NewCoalesced", NewCoalesced}} {
		t.Run(v.name, func(t *testing.T) {
			m := v.mk()
			frontier := geom.Sector(1 << 30)
			// A fixed cycle of overwriting extents: after a warm-up round
			// the per-cycle node churn repeats exactly, so the freelist
			// absorbs every split and delete.
			cycle := func() {
				for i := geom.Sector(0); i < 32; i++ {
					e := geom.Ext(i*100, 150) // overlaps the next extent: forces splits
					m.InsertFunc(e, frontier, nil)
					frontier += e.Count
				}
			}
			for i := 0; i < 3; i++ {
				cycle() // warm the freelist and scratch buffer
			}
			allocs := testing.AllocsPerRun(50, cycle)
			if allocs != 0 {
				t.Fatalf("InsertFunc allocated %.1f times per run in steady state, want 0", allocs)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
