package stl

import (
	"os"
	"runtime"
	"testing"

	"smrseek/internal/geom"
	"smrseek/internal/journal"
)

// BenchmarkRecoverDir measures end-to-end verified recovery — audit,
// parse, replay into a fresh extent map — of a multi-segment journal,
// sequentially and with the parallel verification pipeline at
// GOMAXPROCS workers. Recovered state is identical either way.
func BenchmarkRecoverDir(b *testing.B) {
	dir := b.TempDir()
	log, err := journal.Open(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := log.SetSegmentSize(256); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		rec := journal.Record{Kind: journal.RecWrite, Lba: geom.Ext(int64(i)%4000*8, 8), Pba: geom.Sector(i) * 8}
		if err := log.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(journal.JournalPath(dir))
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"seq", 1},
		{"par", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(fi.Size())
			for i := 0; i < b.N; i++ {
				_, st, err := RecoverDirWith(dir, RecoverOptions{VerifyOnRecover: true, Workers: bc.workers})
				if err != nil {
					b.Fatal(err)
				}
				if st.Replayed != 20000 || !st.Verified {
					b.Fatalf("recovery stats %+v", st)
				}
			}
		})
	}
}
