package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachIndexedRunsAll(t *testing.T) {
	var count int64
	seen := make([]int64, 100)
	err := forEachIndexed(100, func(i int) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d ran %d times", i, v)
		}
	}
}

func TestForEachIndexedPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := forEachIndexed(10, func(i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachIndexedZeroAndOne(t *testing.T) {
	if err := forEachIndexed(0, func(int) error { t.Fatal("should not run"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := forEachIndexed(1, func(i int) error { ran = true; return nil }); err != nil || !ran {
		t.Fatal("single-item loop broken")
	}
}

// TestParallelDeterminism: the parallel Fig11 sweep must produce
// identical rows across runs.
func TestParallelDeterminism(t *testing.T) {
	a, err := Fig11Data(0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11Data(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
