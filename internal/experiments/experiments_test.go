package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// smallScale keeps per-test runtime low; figure content is validated for
// structure, not magnitude (magnitudes are asserted in the core and root
// package tests at larger scales).
const smallScale = 0.05

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(context.Background(), &buf, smallScale); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"usr_0", "usr_1", "hm_1", "w20", "w91", "w106"} {
		if !strings.Contains(out, name) {
			t.Errorf("table1 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "MSR") || !strings.Contains(out, "CloudPhysics") {
		t.Error("table1 missing source column values")
	}
	// MSR workloads come first, per the paper's grouping.
	if strings.Index(out, "usr_0") > strings.Index(out, "w20") {
		t.Error("table1 not grouped MSR-first")
	}
}

func TestFig2(t *testing.T) {
	rows, err := Fig2Data(context.Background(), smallScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("fig2 rows = %d, want 21", len(rows))
	}
	for _, r := range rows {
		if r.NoLSReadSeeks+r.NoLSWriteSeeks == 0 {
			t.Errorf("%s: baseline has no seeks", r.Name)
		}
	}
	var buf bytes.Buffer
	if err := Fig2(context.Background(), &buf, smallScale); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "total SAF") {
		t.Error("fig2 output missing SAF column")
	}
}

func TestFig3(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(context.Background(), &buf, smallScale); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Fig3Workloads {
		if !strings.Contains(out, "Figure 3 ("+name+")") {
			t.Errorf("fig3 missing %s section", name)
		}
	}
	if !strings.Contains(out, "windows:") {
		t.Error("fig3 missing windows series")
	}
}

func TestFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(context.Background(), &buf, smallScale); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Fig4Workloads {
		if !strings.Contains(out, name) {
			t.Errorf("fig4 missing %s", name)
		}
	}
	if !strings.Contains(out, "+2.0") || !strings.Contains(out, "-2.0") {
		t.Error("fig4 missing ±2 GB window rows")
	}
}

func TestFig5(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(context.Background(), &buf, 0.3); err != nil { // needs enough ops to fragment
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Fig5Workloads {
		if !strings.Contains(out, name) {
			t.Errorf("fig5 missing %s", name)
		}
	}
}

func TestFig7(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(context.Background(), &buf, 0.5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hm_1") || !strings.Contains(out, "w106") {
		t.Errorf("fig7 output:\n%s", out)
	}
	if !strings.Contains(out, "longest-descending-run") {
		t.Error("fig7 missing run statistics")
	}
	// hm_1's descending bursts must be visible.
	if !strings.Contains(out, "write-LBA sample:") {
		t.Error("fig7 missing the LBA sample line")
	}
}

func TestFig8(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(context.Background(), &buf, 0.5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Fig8Workloads {
		if !strings.Contains(out, name) {
			t.Errorf("fig8 missing %s", name)
		}
	}
	if !strings.Contains(out, "%") {
		t.Error("fig8 missing percentage column")
	}
}

func TestFig10(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig10(context.Background(), &buf, 0.3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Fig10Workloads {
		if !strings.Contains(out, name) {
			t.Errorf("fig10 missing %s", name)
		}
	}
	if !strings.Contains(out, "bytes@80%") {
		t.Error("fig10 missing cumulative footprint columns")
	}
}

func TestFig11(t *testing.T) {
	rows, err := Fig11Data(context.Background(), smallScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("fig11 rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, v := range []float64{r.LS, r.Defrag, r.Prefetch, r.Cache} {
			if v <= 0 {
				t.Errorf("%s: non-positive SAF %v", r.Name, v)
			}
		}
	}
	var buf bytes.Buffer
	if err := Fig11(context.Background(), &buf, smallScale); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LS+cache") {
		t.Error("fig11 output missing variant columns")
	}
}

func TestRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "fig8", smallScale); err != nil {
		t.Fatal(err)
	}
	if err := Run(&buf, "bogus", smallScale); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("All regenerates every figure")
	}
	var buf bytes.Buffer
	if err := All(context.Background(), &buf, smallScale); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 7", "Figure 8", "Figure 10", "Figure 11"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("All output missing %q", want)
		}
	}
}
