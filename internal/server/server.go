package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/fault"
	"smrseek/internal/journal"
	"smrseek/internal/volume"
)

// Options tunes the server; the zero value is usable.
type Options struct {
	// RequestTimeout bounds one request's execution once admitted to a
	// volume queue (0 = no bound). On expiry the client gets
	// StatusTimeout and the connection is closed: the request is still
	// queued and will execute, so the connection's synchronous ordering
	// guarantee no longer holds.
	RequestTimeout time.Duration
	// Logf receives connection-level diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Server accepts smrd protocol connections and executes their requests
// against a volume.Manager. One goroutine per connection; each volume's
// actor serializes execution, so any number of connections is safe.
type Server struct {
	mgr  *volume.Manager
	opts Options
	ln   net.Listener

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// New builds a server over mgr and starts accepting on ln. It takes
// ownership of ln.
func New(mgr *volume.Manager, ln net.Listener, opts Options) *Server {
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		mgr:    mgr,
		opts:   opts,
		ln:     ln,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes every live connection and waits for the
// handlers to exit. It does NOT close the manager: the caller owns
// volume shutdown ordering (server first, then manager, so no request
// can race a closing volume).
func (s *Server) Close() error {
	s.cancel()
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.ctx.Err() == nil {
				s.opts.Logf("smrd: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if err := handshake(conn); err != nil {
		s.opts.Logf("smrd: %s: %v", conn.RemoteAddr(), err)
		return
	}
	// Per-connection scratch, reused across requests: frame buffer,
	// response buffer, and the result channel handed to volume.TryDo.
	// cap 1 so a timed-out request's late result parks in the buffer
	// instead of blocking the volume actor.
	var (
		buf  []byte
		out  []byte
		done = make(chan volume.Result, 1)
	)
	for {
		frame, err := readFrame(conn, buf)
		if err != nil {
			if s.ctx.Err() == nil && !isClosedConn(err) {
				s.opts.Logf("smrd: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		buf = frame
		resp, ok := s.handle(out[:0], frame, done)
		out = resp
		if _, err := conn.Write(resp); err != nil {
			return
		}
		if !ok {
			// The request may still execute later (timeout): this
			// connection's ordering guarantee is gone, so drop it.
			return
		}
	}
}

// handle executes one request frame and appends the response to out.
// ok=false means the connection must close (and a fresh done channel
// would be needed, so the caller drops the connection instead).
func (s *Server) handle(out, frame []byte, done chan volume.Result) ([]byte, bool) {
	req, err := parseRequest(frame)
	if err != nil {
		return appendResponse(out, StatusBadRequest, []byte(err.Error())), true
	}
	vol, ok := s.mgr.Get(req.Volume)
	if !ok {
		return appendResponse(out, StatusUnknownVolume, []byte("unknown volume "+req.Volume)), true
	}
	var kind volume.Op
	switch req.Op {
	case OpWrite:
		kind = volume.OpWrite
	case OpRead:
		kind = volume.OpRead
	case OpStat:
		kind = volume.OpStat
	case OpSnapshot:
		kind = volume.OpSnapshot
	case OpVerify:
		kind = volume.OpVerify
	case OpProof:
		kind = volume.OpProof
	}
	if err := vol.TryDo(volume.Request{Kind: kind, Extent: req.Extent, Seq: req.Seq}, done); err != nil {
		return appendResponse(out, statusOf(err), []byte(err.Error())), true
	}
	var timeout <-chan time.Time
	if s.opts.RequestTimeout > 0 {
		t := time.NewTimer(s.opts.RequestTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case res := <-done:
		if res.Err != nil {
			return appendResponse(out, statusOf(res.Err), []byte(res.Err.Error())), true
		}
		return appendOK(out, req.Op, res), true
	case <-timeout:
		msg := fmt.Sprintf("request exceeded %v", s.opts.RequestTimeout)
		return appendResponse(out, StatusTimeout, []byte(msg)), false
	case <-s.ctx.Done():
		return appendResponse(out, StatusInternal, []byte("server shutting down")), false
	}
}

// appendOK encodes a successful result's op-specific body.
func appendOK(out []byte, op uint8, res volume.Result) []byte {
	switch op {
	case OpRead:
		var body [4]byte
		binary.LittleEndian.PutUint32(body[:], uint32(res.Frags))
		return appendResponse(out, StatusOK, body[:])
	case OpStat:
		// Config holds layer pointers and interfaces that neither
		// marshal round-trip nor mean anything to a remote client; zero
		// it so the wire Stats is pure counters.
		st := *res.Stats
		st.Config = core.Config{}
		body, err := json.Marshal(&st)
		if err != nil {
			return appendResponse(out, StatusInternal, []byte(err.Error()))
		}
		return appendResponse(out, StatusOK, body)
	case OpVerify:
		body, err := json.Marshal(res.Audit)
		if err != nil {
			return appendResponse(out, StatusInternal, []byte(err.Error()))
		}
		return appendResponse(out, StatusOK, body)
	case OpProof:
		body, err := json.Marshal(res.Proof)
		if err != nil {
			return appendResponse(out, StatusInternal, []byte(err.Error()))
		}
		return appendResponse(out, StatusOK, body)
	default:
		return appendResponse(out, StatusOK, nil)
	}
}

// statusOf maps volume/journal/fault errors onto wire status codes.
func statusOf(err error) uint8 {
	switch {
	case errors.Is(err, volume.ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, volume.ErrClosed):
		return StatusInternal
	case errors.Is(err, volume.ErrNoJournal):
		return StatusNoJournal
	case errors.Is(err, journal.ErrCrashed):
		return StatusCrashed
	case errors.Is(err, journal.ErrCorrupt):
		return StatusCorrupt
	case errors.Is(err, journal.ErrUnsealed):
		return StatusBadRequest
	case fault.IsMedia(err):
		return StatusMediaError
	case fault.IsTransient(err):
		return StatusTransient
	default:
		return StatusInternal
	}
}

// isClosedConn reports whether err is the normal end of a connection:
// clean EOF or a read racing our own Close.
func isClosedConn(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}
