package experiments

// Extension experiments beyond the paper's figures: the §II translation
// layer trade-off quantified (read seeks vs write amplification across
// STL designs), and seek-time-weighted amplification under the drive
// time model.

import (
	"context"
	"fmt"
	"io"

	"smrseek/internal/band"
	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/gc"
	"smrseek/internal/geom"
	"smrseek/internal/mcache"
	"smrseek/internal/metrics"
	"smrseek/internal/report"
	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

// WAFProfiles are rewrite-intensity patterns for the translation-layer
// trade-off table. The catalog workloads barely overwrite (their rewrite
// ratio is ≈1.0, so a cleaner never needs to run — the paper's archival
// argument in action); these three expose the cleaning regime:
//
//   - oltp:   4 KB updates hammering a 64 MB footprint (≈4x rewrite)
//   - mixed:  updates plus repeated scans over a 128 MB footprint
//   - append: mostly-unique writes over 2 GB (≈1x rewrite, archival-like)
func WAFProfiles() []workload.Profile {
	return []workload.Profile{
		{
			Name: "oltp", Source: workload.CloudPhysics, OS: "synthetic", Seed: 0xC001,
			BaseOps: 60000, WriteFrac: 0.70,
			RegionSectors: 32 << 10, WriteSectors: 8, ReadSectors: 64,
			HotRanges: 30, HotRangeSectors: 256, HotReadFrac: 0.40, HotZipf: 1.1,
			UpdateFrac: 0.20, UpdateSectors: 8, UpdateHotBias: 0.7,
		},
		{
			Name: "mixed", Source: workload.CloudPhysics, OS: "synthetic", Seed: 0xC002,
			BaseOps: 50000, WriteFrac: 0.50,
			RegionSectors: 256 << 10, WriteSectors: 32, ReadSectors: 48,
			HotRanges: 40, HotRangeSectors: 256, HotReadFrac: 0.25, HotZipf: 1.1,
			UpdateFrac: 0.15, UpdateSectors: 8, UpdateHotBias: 0.5,
			ScanFrac: 0.35, ScanChunk: 256, ScanSpanSectors: 32 << 10, ScanRepeat: true,
		},
		{
			Name: "append", Source: workload.CloudPhysics, OS: "synthetic", Seed: 0xC003,
			BaseOps: 40000, WriteFrac: 0.80,
			RegionSectors: 4 << 21, WriteSectors: 64, ReadSectors: 64,
			HotRanges: 20, HotRangeSectors: 256, HotReadFrac: 0.20, HotZipf: 1.0,
			UpdateFrac: 0.05, UpdateSectors: 8, UpdateHotBias: 0.7,
			TemporalFrac: 0.30,
		},
	}
}

// WAF prints the §II trade-off: read/total SAF and write amplification
// for the infinite log-structured layer, the finite cleaning layer under
// both victim policies, and the media-cache layer shipped drives use.
func WAF(ctx context.Context, w io.Writer, scale float64) error {
	tb := report.NewTable("Extension: translation-layer trade-off (read seeks vs write amplification)",
		"workload", "layer", "read SAF", "total SAF", "WAF", "maint GB")
	for _, p := range WAFProfiles() {
		pl := preloaded(p, scale)
		recs, frontier := pl.Records(), pl.MaxLBA()

		base, err := runWith(ctx, core.Config{}, recs)
		if err != nil {
			return err
		}

		// Log sized to ~1.1x the unique write footprint (the live-data
		// upper bound) — tight over-provisioning like a real device's,
		// so rewrite traffic forces the cleaner to run. 1 MiB segments.
		const segSectors = int64(2048)
		footprint := writeFootprint(recs)
		logSectors := ((footprint*11/10)/segSectors + 4) * segSectors

		zoneSectors := int64(8192)
		devSectors := ((frontier + zoneSectors) / zoneSectors) * zoneSectors

		layers := []struct {
			label string
			cfg   func() (core.Config, error)
		}{
			{"LS (infinite)", func() (core.Config, error) {
				return core.Config{LogStructured: true, FrontierStart: frontier}, nil
			}},
			{"SegLS greedy", func() (core.Config, error) {
				l, err := gc.New(gc.Config{DeviceSectors: frontier, LogSectors: logSectors, SegmentSectors: segSectors, Policy: gc.Greedy})
				return core.Config{CustomLayer: l}, err
			}},
			{"SegLS cost-benefit", func() (core.Config, error) {
				l, err := gc.New(gc.Config{DeviceSectors: frontier, LogSectors: logSectors, SegmentSectors: segSectors, Policy: gc.CostBenefit})
				return core.Config{CustomLayer: l}, err
			}},
			{"MediaCache", func() (core.Config, error) {
				l, err := mcache.New(mcache.Config{DeviceSectors: devSectors, ZoneSectors: zoneSectors, CacheSectors: 8 * zoneSectors})
				return core.Config{CustomLayer: l}, err
			}},
		}
		for _, lay := range layers {
			cfg, err := lay.cfg()
			if err != nil {
				return fmt.Errorf("%s/%s: %w", p.Name, lay.label, err)
			}
			st, err := runWith(ctx, cfg, recs)
			if err != nil {
				return err
			}
			tb.AddRow(p.Name, lay.label,
				metrics.SAF(st.Disk.ReadSeeks, base.Disk.ReadSeeks),
				metrics.SAF(st.Disk.TotalSeeks(), base.Disk.TotalSeeks()),
				st.WAF,
				float64(st.MaintSectors)*512/1e9)
		}
	}
	return tb.Render(w)
}

// Cleaning prints the finite-disk extension table: the rewrite-heavy
// WAF workloads on the banded device under each persistent-cache
// placement policy, with the cache sized to ~10% of the write footprint
// so the cleaning regime is reached. Read seeks rise with cache
// redirection (fragments live far from the band), and the cleaner's
// read-modify-write traffic shows up as write amplification and stalls
// — the finite-disk costs the paper's infinite model excludes.
func Cleaning(ctx context.Context, w io.Writer, scale float64) error {
	tb := report.NewTable("Extension: banded device — placement policy vs write amplification and cleaning stalls",
		"workload", "policy", "read SAF", "total SAF", "write amp", "bands cleaned", "stalls")
	for _, p := range WAFProfiles() {
		pl := preloaded(p, scale)
		recs := pl.Records()
		base, err := runWith(ctx, core.Config{}, recs)
		if err != nil {
			return err
		}
		const bandSectors = int64(2048)
		footprint := writeFootprint(recs)
		cacheSectors := ((footprint/10)/bandSectors + 1) * bandSectors
		for _, pol := range []band.Policy{band.PolA, band.PolB, band.Shelter} {
			dev, err := band.New(band.Config{
				BandSectors:  bandSectors,
				CacheSectors: cacheSectors,
				UnitSectors:  2 * bandSectors,
				Policy:       pol,
			})
			if err != nil {
				return fmt.Errorf("%s/%v: %w", p.Name, pol, err)
			}
			st, err := runWith(ctx, core.Config{Device: dev}, recs)
			if err != nil {
				return err
			}
			c := st.Cleaning
			tb.AddRow(p.Name, pol.String(),
				metrics.SAF(st.Disk.ReadSeeks, base.Disk.ReadSeeks),
				metrics.SAF(st.Disk.TotalSeeks(), base.Disk.TotalSeeks()),
				c.WriteAmp(),
				report.HumanCount(c.BandsCleaned),
				report.HumanCount(c.Stalls))
		}
	}
	return tb.Render(w)
}

// TimeAmpWorkloads are the traces used for the time-weighted table.
var TimeAmpWorkloads = []string{"usr_1", "hm_1", "w91", "w20", "usr_0"}

// TimeAmp prints seek-time-weighted amplification: modelled service time
// under each Figure 11 variant divided by the NoLS baseline, using the
// 7200 RPM drive time model. Seek counts weight short and long seeks
// equally; this view does not (§III's cost discussion).
func TimeAmp(ctx context.Context, w io.Writer, scale float64) error {
	tb := report.NewTable("Extension: modelled service-time amplification (7200 RPM model)",
		"workload", "variant", "seek count SAF", "time amplification")
	model := disk.DefaultTimeModel()
	for _, name := range TimeAmpWorkloads {
		p, err := workload.ByName(name)
		if err != nil {
			return err
		}
		pl := preloaded(p, scale)
		recs, frontier := pl.Records(), pl.MaxLBA()
		baseStats, baseTime, err := timedRun(ctx, core.Config{}, recs, model)
		if err != nil {
			return err
		}
		for _, cfg := range core.PaperVariants() {
			cfg.FrontierStart = frontier
			st, tm, err := timedRun(ctx, cfg, recs, model)
			if err != nil {
				return err
			}
			tb.AddRow(name, cfg.Name(),
				metrics.SAF(st.Disk.TotalSeeks(), baseStats.Disk.TotalSeeks()),
				float64(tm)/float64(baseTime))
		}
	}
	return tb.Render(w)
}

// writeFootprint returns the number of distinct sectors the trace ever
// writes — the layer's live-data upper bound.
func writeFootprint(recs []trace.Record) int64 {
	set := geom.NewSet()
	for _, r := range recs {
		if r.Kind == disk.Write {
			set.Add(r.Extent)
		}
	}
	return set.Sectors()
}

func runWith(ctx context.Context, cfg core.Config, recs []trace.Record) (core.Stats, error) {
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return core.Stats{}, err
	}
	return sim.RunContext(ctx, trace.NewSliceReader(recs))
}

func timedRun(ctx context.Context, cfg core.Config, recs []trace.Record, model disk.TimeModel) (core.Stats, int64, error) {
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return core.Stats{}, 0, err
	}
	acc := disk.NewTimeAccumulator(model)
	sim.Disk().AddObserver(acc)
	st, err := sim.RunContext(ctx, trace.NewSliceReader(recs))
	if err != nil {
		return core.Stats{}, 0, err
	}
	return st, int64(acc.Total()), nil
}
