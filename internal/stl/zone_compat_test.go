package stl_test

// Proof that the LS layer's physical write stream is realizable on
// zoned (SMR) media: every write it emits lands exactly at the active
// zone's write pointer, because the frontier only ever advances.

import (
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/stl"
	"smrseek/internal/workload"
	"smrseek/internal/zone"
)

func TestLSWriteStreamIsZoneCompatible(t *testing.T) {
	p, err := workload.ByName("w89")
	if err != nil {
		t.Fatal(err)
	}
	recs := p.Generate(0.2)

	const zoneSectors = 1 << 16
	// Frontier starts at a zone boundary above the device LBA space.
	var maxLBA geom.Sector
	for _, r := range recs {
		if e := r.Extent.End(); e > maxLBA {
			maxLBA = e
		}
	}
	frontier := ((maxLBA + zoneSectors) / zoneSectors) * zoneSectors
	ls := stl.NewLS(frontier)
	// A zoned device covering the log region; the data region below the
	// frontier is conventional (it models pre-existing in-place data).
	dev := zone.NewDevice(frontier+(1<<27), zoneSectors, int(frontier/zoneSectors))

	for _, r := range recs {
		if r.Kind != disk.Write { // only writes emit physical appends
			continue
		}
		for _, f := range ls.Write(r.Extent) {
			if err := dev.WriteSplit(f.PhysExtent()); err != nil {
				t.Fatalf("LS write stream violates zone constraints: %v", err)
			}
		}
	}
	_, _, violations := dev.Stats()
	if violations != 0 {
		t.Fatalf("violations = %d", violations)
	}
}
