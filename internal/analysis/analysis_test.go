package analysis

import (
	"testing"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

func wrRec(lba, n int64) trace.Record {
	return trace.Record{Kind: disk.Write, Extent: geom.Ext(lba, n)}
}

func rdRec(lba, n int64) trace.Record {
	return trace.Record{Kind: disk.Read, Extent: geom.Ext(lba, n)}
}

func TestMisorderedWritesDescendingBurst(t *testing.T) {
	// 4 chunks of 8 sectors written descending: chunks at 24,16,8,0.
	// Every chunk except the first written (at 24) sequentially precedes
	// a later write... precisely: a write is mis-ordered when a LATER
	// write ends at its start. 24←16✓, 16←8✓, 8←0✓, 0 has no later
	// predecessor → 3 of 4 mis-ordered.
	recs := []trace.Record{wrRec(24, 8), wrRec(16, 8), wrRec(8, 8), wrRec(0, 8)}
	res := MisorderedWrites(recs, 0)
	if res.Writes != 4 || res.Misordered != 3 {
		t.Fatalf("result = %+v", res)
	}
	if f := res.Fraction(); f != 0.75 {
		t.Errorf("Fraction = %v", f)
	}
}

func TestMisorderedWritesAscendingIsClean(t *testing.T) {
	recs := []trace.Record{wrRec(0, 8), wrRec(8, 8), wrRec(16, 8), rdRec(100, 4)}
	res := MisorderedWrites(recs, 0)
	if res.Misordered != 0 || res.Writes != 3 {
		t.Fatalf("result = %+v", res)
	}
	if (MisorderResult{}).Fraction() != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestMisorderedWritesWindowLimit(t *testing.T) {
	// The successor write arrives outside the 256 KB window: not counted.
	filler := make([]trace.Record, 0, 70)
	filler = append(filler, wrRec(1000, 8)) // pivot: would match a later write ending at 1000
	for i := 0; i < 64; i++ {
		filler = append(filler, wrRec(int64(100000+i*16), 8)) // 4 KB each → 256 KB total
	}
	filler = append(filler, wrRec(992, 8)) // ends at 1000, but window exceeded
	res := MisorderedWrites(filler, 0)
	if res.Misordered != 0 {
		t.Fatalf("window not respected: %+v", res)
	}
	// Shrink the filler: now it fits inside the window.
	recs := []trace.Record{wrRec(1000, 8), wrRec(5000, 8), wrRec(992, 8)}
	res = MisorderedWrites(recs, 0)
	if res.Misordered != 1 {
		t.Fatalf("in-window misorder missed: %+v", res)
	}
}

func TestFragmentedReadCDF(t *testing.T) {
	// Reads with fragment counts: unfragmented ones are ignored.
	counts := []int{1, 1, 10, 2, 2, 1, 6}
	sk := FragmentedReadCDF(counts)
	if sk.FragmentedReads != 4 || sk.TotalFragments != 20 {
		t.Fatalf("skew = %+v", sk)
	}
	// Top 25% of fragmented reads (the 10-fragment one) hold 50%.
	if got := sk.ShareAtOps(0.25); got != 0.5 {
		t.Errorf("ShareAtOps(0.25) = %v", got)
	}
	if got := sk.ShareAtOps(1.0); got != 1.0 {
		t.Errorf("ShareAtOps(1) = %v", got)
	}
	empty := FragmentedReadCDF([]int{1, 1})
	if empty.ShareAtOps(0.5) != 0 || empty.Curve != nil {
		t.Error("no fragmented reads should give empty skew")
	}
	// Curve must be monotone in both coordinates.
	for i := 1; i < len(sk.Curve); i++ {
		if sk.Curve[i].FracOps < sk.Curve[i-1].FracOps || sk.Curve[i].FracValue < sk.Curve[i-1].FracValue {
			t.Fatalf("curve not monotone: %+v", sk.Curve)
		}
	}
}

func TestPopularity(t *testing.T) {
	p := NewPopularity()
	frag := func(pba, n int64) stl.Fragment {
		return stl.Fragment{Lba: geom.Ext(0, n), Pba: pba}
	}
	hot := []stl.Fragment{frag(100, 8), frag(200, 8)}
	cold := []stl.Fragment{frag(300, 16), frag(400, 16)}
	for i := 0; i < 5; i++ {
		p.ObserveRead(core.ReadEvent{Fragments: hot})
	}
	p.ObserveRead(core.ReadEvent{Fragments: cold})
	p.ObserveRead(core.ReadEvent{Fragments: []stl.Fragment{frag(999, 4)}}) // unfragmented: ignored
	entries := p.Sorted()
	if len(entries) != 4 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].AccessCount != 5 || entries[1].AccessCount != 5 {
		t.Errorf("hot fragments should lead: %+v", entries[:2])
	}
	if entries[0].CumulativeBytes != 8*512 || entries[3].CumulativeBytes != (8+8+16+16)*512 {
		t.Errorf("cumulative bytes wrong: %+v", entries)
	}
	// 10 of 12 accesses (≈83%) come from the two hot fragments → 8 KB.
	if got := BytesForAccessShare(entries, 0.8); got != 2*8*512 {
		t.Errorf("BytesForAccessShare = %d", got)
	}
	if BytesForAccessShare(nil, 0.5) != 0 {
		t.Error("empty entries should need 0 bytes")
	}
	if got := BytesForAccessShare(entries, 1.0); got != entries[3].CumulativeBytes {
		t.Errorf("full share should need all bytes, got %d", got)
	}
}

func TestSequentialityProfile(t *testing.T) {
	recs := []trace.Record{
		wrRec(0, 8), wrRec(8, 8), // ascending pair
		wrRec(40, 8), wrRec(32, 8), wrRec(24, 8), // descending run of 2 steps
		rdRec(0, 4), // reads ignored
		wrRec(1000, 8),
	}
	prof := SequentialityProfile(recs)
	if prof.Writes != 6 {
		t.Errorf("writes = %d", prof.Writes)
	}
	if prof.AscendingAdjacent != 1 || prof.DescendingAdjacent != 2 {
		t.Errorf("profile = %+v", prof)
	}
	if prof.LongestDescending != 2 {
		t.Errorf("longest descending = %d", prof.LongestDescending)
	}
}

func TestInstrumentedArtifacts(t *testing.T) {
	p, err := workload.ByName("hm_1")
	if err != nil {
		t.Fatal(err)
	}
	recs := p.Generate(0.3)
	art, err := Instrumented(recs, core.Config{LogStructured: true}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if art.Stats.Reads == 0 || art.Stats.Writes == 0 {
		t.Fatalf("stats empty: %+v", art.Stats)
	}
	if art.DistanceCDF.N() == 0 {
		t.Error("no distances observed")
	}
	if len(art.FragCounts) != int(art.Stats.Reads) {
		t.Errorf("frag counts %d != reads %d", len(art.FragCounts), art.Stats.Reads)
	}
	if len(art.Popularity.Sorted()) == 0 {
		t.Error("popularity empty for a fragmenting workload")
	}
	// NoLS artifacts work too and never see fragments.
	artN, err := Instrumented(recs, core.Config{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range artN.FragCounts {
		if c > 1 {
			t.Fatal("NoLS read with >1 fragment")
		}
	}
	// Frontier auto-set: explicit config with frontier also works.
	if _, err := Instrumented(recs, core.Config{LogStructured: true, FrontierStart: trace.MaxLBA(recs)}, 100); err != nil {
		t.Fatal(err)
	}
	// Invalid config propagates.
	d := core.DefaultDefragConfig()
	if _, err := Instrumented(recs, core.Config{Defrag: &d}, 100); err == nil {
		t.Error("invalid config must error")
	}
}
