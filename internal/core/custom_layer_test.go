package core_test

// Integration tests driving the finite-log cleaning layer (gc) and the
// media-cache layer (mcache) through the simulator — verifying that
// maintenance I/O reaches the disk model and that the two designs make
// the opposite trade-off the paper describes in §II: media cache keeps
// read seeks low but pays high write amplification; the full-map
// log-structured layer does the reverse.

import (
	"testing"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/gc"
	"smrseek/internal/geom"
	"smrseek/internal/mcache"
	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

func runCustom(t *testing.T, layerCfg core.Config, recs []trace.Record) core.Stats {
	t.Helper()
	sim, err := core.NewSimulator(layerCfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(trace.NewSliceReader(recs))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// updateHeavy builds a workload of repeated overwrites plus scans.
func updateHeavy() []trace.Record {
	var recs []trace.Record
	seed := uint64(7)
	for i := 0; i < 4000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		lba := int64(seed % 40000)
		recs = append(recs, trace.Record{Kind: disk.Write, Extent: geom.Ext(lba, 16)})
		if i%10 == 9 {
			recs = append(recs, trace.Record{Kind: disk.Read, Extent: geom.Ext(int64(seed%30000), 256)})
		}
	}
	return recs
}

func TestSimulatorWithGCLayer(t *testing.T) {
	recs := updateHeavy()
	layer, err := gc.New(gc.Config{
		DeviceSectors:  41000,
		LogSectors:     16 * 2048, // < total written volume: forces cleaning
		SegmentSectors: 2048,
		Policy:         gc.Greedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := runCustom(t, core.Config{CustomLayer: layer}, recs)
	if layer.Cleanings() == 0 {
		t.Fatal("workload did not trigger cleaning; enlarge it")
	}
	if st.MaintSectors == 0 || st.MaintReads == 0 || st.MaintWrites == 0 {
		t.Fatalf("maintenance I/O not surfaced: %+v", st)
	}
	if st.WAF <= 1 {
		t.Errorf("WAF = %v, want > 1 under cleaning", st.WAF)
	}
}

func TestSimulatorWithMediaCacheLayer(t *testing.T) {
	recs := updateHeavy()
	layer, err := mcache.New(mcache.Config{
		DeviceSectors: 48 * 1024,
		ZoneSectors:   4096,
		CacheSectors:  8 * 4096,
		MergeTrigger:  0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := runCustom(t, core.Config{CustomLayer: layer}, recs)
	if layer.Merges() == 0 {
		t.Fatal("workload did not trigger merges")
	}
	if st.WAF <= 1 {
		t.Errorf("WAF = %v, want > 1 (zone rewrites)", st.WAF)
	}
	if st.MaintSectors == 0 {
		t.Error("merge I/O not surfaced")
	}
	// Zoned constraints hold end to end.
	if _, _, violations := layer.Device().Stats(); violations != 0 {
		t.Errorf("zone violations = %d", violations)
	}
}

// TestPaperTradeoff checks §II's contrast on a fragmenting workload:
// the media-cache design ends with less read-seek amplification than the
// full-map log-structured design, but pays far more write amplification.
func TestPaperTradeoff(t *testing.T) {
	p, err := workload.ByName("w91")
	if err != nil {
		t.Fatal(err)
	}
	recs := p.Generate(0.3)
	frontier := trace.MaxLBA(recs)

	base := runCustom(t, core.Config{}, recs)

	ls := runCustom(t, core.Config{LogStructured: true, FrontierStart: frontier}, recs)

	zoneSectors := int64(8192)
	devSectors := ((frontier + zoneSectors) / zoneSectors) * zoneSectors
	mc, err := mcache.New(mcache.Config{
		DeviceSectors: devSectors,
		ZoneSectors:   zoneSectors,
		CacheSectors:  4 * zoneSectors, // small cache: frequent merges
	})
	if err != nil {
		t.Fatal(err)
	}
	mcStats := runCustom(t, core.Config{CustomLayer: mc}, recs)

	lsReadSAF := float64(ls.Disk.ReadSeeks) / float64(base.Disk.ReadSeeks)
	mcReadSAF := float64(mcStats.Disk.ReadSeeks) / float64(base.Disk.ReadSeeks)
	if mcReadSAF >= lsReadSAF {
		t.Errorf("media cache read SAF %.2f should undercut LS %.2f", mcReadSAF, lsReadSAF)
	}
	if mcStats.WAF <= ls.WAF {
		t.Errorf("media cache WAF %.2f should exceed LS WAF %.2f", mcStats.WAF, ls.WAF)
	}
}

func TestCustomLayerConfigValidation(t *testing.T) {
	layer, err := gc.New(gc.Config{DeviceSectors: 0, LogSectors: 8 * 256, SegmentSectors: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := (core.Config{LogStructured: true, CustomLayer: layer}).Validate(); err == nil {
		t.Error("LogStructured + CustomLayer must be rejected")
	}
	cfg := core.Config{CustomLayer: layer}
	if cfg.Name() != "SegLS(greedy)" {
		t.Errorf("Name = %s", cfg.Name())
	}
	d := core.DefaultDefragConfig()
	cfg.Defrag = &d
	if cfg.Name() != "SegLS(greedy)+defrag" {
		t.Errorf("Name = %s", cfg.Name())
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("mechanisms on a custom layer should be allowed: %v", err)
	}
}

// TestMechanismsComposeWithGCLayer runs defrag+cache on the cleaning
// layer: the combination must be stable and still reduce read seeks
// versus the bare layer on a re-read-heavy workload.
func TestMechanismsComposeWithGCLayer(t *testing.T) {
	var recs []trace.Record
	recs = append(recs, trace.Record{Kind: disk.Write, Extent: geom.Ext(0, 2000)})
	seed := uint64(3)
	for i := 0; i < 300; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		recs = append(recs, trace.Record{Kind: disk.Write, Extent: geom.Ext(int64(seed%2000), 8)})
	}
	for pass := 0; pass < 4; pass++ {
		recs = append(recs, trace.Record{Kind: disk.Read, Extent: geom.Ext(0, 2000)})
	}
	mk := func() *gc.Layer {
		l, err := gc.New(gc.Config{DeviceSectors: 4096, LogSectors: 32 * 1024, SegmentSectors: 1024})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	bare := runCustom(t, core.Config{CustomLayer: mk()}, recs)
	c := core.DefaultCacheConfig()
	cached := runCustom(t, core.Config{CustomLayer: mk(), Cache: &c}, recs)
	if cached.Disk.ReadSeeks >= bare.Disk.ReadSeeks {
		t.Errorf("cache on gc layer: read seeks %d !< %d", cached.Disk.ReadSeeks, bare.Disk.ReadSeeks)
	}
	if cached.CacheHits == 0 {
		t.Error("no cache hits")
	}
}
