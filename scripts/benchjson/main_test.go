package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: smrseek/internal/extmap
cpu: whatever
BenchmarkInsert-8   	  123456	      98.5 ns/op	      24 B/op	       1 allocs/op
BenchmarkLookup-8   	  999999	      12.0 ns/op
BenchmarkSubName
PASS
ok  	smrseek/internal/extmap	1.234s
pkg: smrseek/internal/disk
BenchmarkSeekTime-8 	     500	   2000 ns/op
`

func TestParse(t *testing.T) {
	b, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if b.Goos != "linux" || b.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", b.Goos, b.Goarch)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(b.Benchmarks), b.Benchmarks)
	}
	// Sorted by pkg then name: disk first.
	first := b.Benchmarks[0]
	if first.Pkg != "smrseek/internal/disk" || first.Name != "BenchmarkSeekTime-8" || first.NsPerOp != 2000 {
		t.Errorf("first = %+v", first)
	}
	ins := b.Benchmarks[1]
	if ins.Name != "BenchmarkInsert-8" || ins.Iterations != 123456 ||
		ins.NsPerOp != 98.5 || ins.BytesPerOp != 24 || ins.AllocsPerOp != 1 {
		t.Errorf("insert = %+v", ins)
	}
}

func TestParseRejectsGarbageNumbers(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-8  zzz  1.0 ns/op\n"))
	if err == nil {
		t.Error("bad iteration count accepted")
	}
}

func TestFormatCompare(t *testing.T) {
	oldB := Baseline{Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkA-8", NsPerOp: 100},
		{Pkg: "p", Name: "BenchmarkGone-8", NsPerOp: 5},
	}}
	newB := Baseline{Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkA-8", NsPerOp: 150},
		{Pkg: "p", Name: "BenchmarkNew-8", NsPerOp: 7},
	}}
	out := FormatCompare(oldB, newB)
	for _, want := range []string{"+50.0%", "(gone", "(new)"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}
