package repl

import (
	"bytes"
	"os"
	"testing"
	"time"

	"smrseek/internal/extmap"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/server"
)

func TestEpochRoundTrip(t *testing.T) {
	root := t.TempDir()
	e, err := LoadEpoch(root)
	if err != nil || e != 0 {
		t.Fatalf("fresh root: epoch %d, err %v; want 0, nil", e, err)
	}
	if err := StoreEpoch(root, 7); err != nil {
		t.Fatal(err)
	}
	if e, err = LoadEpoch(root); err != nil || e != 7 {
		t.Fatalf("after store: epoch %d, err %v; want 7, nil", e, err)
	}
	// Overwrite must replace, not append.
	if err := StoreEpoch(root, 8); err != nil {
		t.Fatal(err)
	}
	if e, _ = LoadEpoch(root); e != 8 {
		t.Fatalf("after second store: epoch %d, want 8", e)
	}
}

func TestNewPrimaryInitializesEpoch(t *testing.T) {
	root := t.TempDir()
	p, err := NewPrimary(PrimaryConfig{Root: root, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Epoch() != 1 {
		t.Fatalf("first boot epoch %d, want 1", p.Epoch())
	}
	if e, _ := LoadEpoch(root); e != 1 {
		t.Fatalf("persisted epoch %d, want 1", e)
	}
}

// TestGateAckRelease checks the semi-sync gate: a write behind a sealed
// mark blocks until a follower ack covers it, then returns without
// counting as degraded.
func TestGateAckRelease(t *testing.T) {
	p, err := NewPrimary(PrimaryConfig{Root: t.TempDir(), SyncTimeout: 5 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.OnSeal("v")(1, 100, 3) // gen 1 sealed through byte 100, covering appends 1..3
	released := make(chan struct{})
	go func() {
		p.GateWrite("v", 3)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("gate released before any follower ack")
	case <-time.After(50 * time.Millisecond):
	}
	p.Ack("v", 1, 100)
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("gate not released by a covering ack")
	}
	if n := p.Degraded(); n != 0 {
		t.Fatalf("acked write counted as degraded (%d)", n)
	}
}

// TestGateDegradeLatch checks that one gate timeout latches the volume
// into asynchronous mode (later writes skip the wait but are counted),
// and that a covering ack restores synchronous gating.
func TestGateDegradeLatch(t *testing.T) {
	p, err := NewPrimary(PrimaryConfig{Root: t.TempDir(), SyncTimeout: 50 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.OnSeal("v")(1, 100, 1)
	start := time.Now()
	p.GateWrite("v", 1) // no ack ever comes: times out, latches degraded
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("first gated write returned after %v, before the sync timeout", d)
	}
	if n := p.Degraded(); n != 1 {
		t.Fatalf("degraded count %d after timeout, want 1", n)
	}
	start = time.Now()
	p.GateWrite("v", 1) // latched: must not wait again
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("degraded-mode write still waited %v", d)
	}
	if n := p.Degraded(); n != 2 {
		t.Fatalf("degraded count %d, want 2", n)
	}

	// A follower ack covering the sealed frontier clears the latch.
	p.Ack("v", 1, 100)
	p.OnSeal("v")(1, 200, 5)
	start = time.Now()
	p.GateWrite("v", 5) // synchronous again: waits out a fresh timeout
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("post-recovery write returned after %v; latch did not clear", d)
	}
	if n := p.Degraded(); n != 3 {
		t.Fatalf("degraded count %d, want 3", n)
	}
}

func TestFencedPrimaryRefusesPromote(t *testing.T) {
	p, err := NewPrimary(PrimaryConfig{Root: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if info, err := p.Promote(); err != nil || info.Role != "primary" {
		t.Fatalf("promote on serving primary: %v / %v; want idempotent success", info, err)
	}
	p.mu.Lock()
	p.fenced = true
	p.mu.Unlock()
	if p.AcceptingData() {
		t.Fatal("fenced primary still accepting data")
	}
	if _, err := p.Promote(); err == nil {
		t.Fatal("fenced ex-primary accepted a promotion; its unreplicated tail could split-brain")
	}
}

// seedJournal writes n sealed records into dir and returns the sealed
// file contents.
func seedJournal(t *testing.T, dir string, n int) []byte {
	t.Helper()
	l, err := journal.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := journal.Record{Kind: journal.RecWrite, Lba: geom.Ext(geom.Sector(i*8), 8), Pba: geom.Sector(i * 8)}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(journal.JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestShipApplyRoundTrip ships a sealed journal from one directory and
// applies it in another: the replica must be byte-identical and pass
// full verification.
func TestShipApplyRoundTrip(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	raw := seedJournal(t, src, 10)

	chunk, err := journal.ShipFrom(src, 0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Kind != journal.ShipSegments {
		t.Fatalf("ship kind %s, want segments", journal.ShipKindName(chunk.Kind))
	}
	f := &Follower{cfg: FollowerConfig{Logf: t.Logf}}
	st, err := f.applySegments(dst, journal.ChunkState{}, chunk)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(journal.JournalPath(dst))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, raw) {
		t.Fatal("persisted replica differs from source journal")
	}
	if st.Gen != chunk.Gen || st.Offset != int64(len(raw)) {
		t.Fatalf("applied position (%d,%d), want (%d,%d)", st.Gen, st.Offset, chunk.Gen, len(raw))
	}
	if _, err := journal.VerifyDir(dst); err != nil {
		t.Fatalf("replica does not verify: %v", err)
	}
}

// TestApplySegmentsRejectsCorrupt flips single bytes across a shipped
// chunk: every mutation must be rejected with no file created.
func TestApplySegmentsRejectsCorrupt(t *testing.T) {
	src := t.TempDir()
	seedJournal(t, src, 10)
	chunk, err := journal.ShipFrom(src, 0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	f := &Follower{cfg: FollowerConfig{Logf: func(string, ...any) {}}}
	for _, off := range []int{0, 30, len(chunk.Data) / 2, len(chunk.Data) - 5} {
		dst := t.TempDir()
		data := append([]byte(nil), chunk.Data...)
		data[off] ^= 0x01
		bad := chunk
		bad.Data = data
		if _, err := f.applySegments(dst, journal.ChunkState{}, bad); err == nil {
			t.Fatalf("corrupt byte at offset %d applied cleanly", off)
		}
		if _, err := os.Stat(journal.JournalPath(dst)); !os.IsNotExist(err) {
			t.Fatalf("corrupt chunk (offset %d) left a journal file behind", off)
		}
	}
}

// TestApplySegmentsRejectsMisaligned checks position discipline: a
// non-fresh chunk must match the local (gen, off) exactly.
func TestApplySegmentsRejectsMisaligned(t *testing.T) {
	src := t.TempDir()
	seedJournal(t, src, 10)
	chunk, err := journal.ShipFrom(src, 0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	chunk.Off = 40 // pretends to continue a prefix we don't have
	f := &Follower{cfg: FollowerConfig{Logf: func(string, ...any) {}}}
	if _, err := f.applySegments(t.TempDir(), journal.ChunkState{}, chunk); err == nil {
		t.Fatal("misaligned chunk applied cleanly")
	}
}

// TestCheckpointShipRoundTrip runs the catch-up path: a source past a
// checkpoint ships the checkpoint first, then the live generation's
// segments, and the replica must link them (anchor = checkpoint chain).
func TestCheckpointShipRoundTrip(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	l, err := journal.Open(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.Append(journal.Record{Kind: journal.RecWrite, Lba: geom.Ext(geom.Sector(i*8), 8), Pba: geom.Sector(i * 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(journal.Snapshot{
		Frontier: 48, Written: 48,
		Mappings: []extmap.Mapping{{Lba: geom.Ext(0, 48), Pba: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 9; i++ {
		if err := l.Append(journal.Record{Kind: journal.RecWrite, Lba: geom.Ext(geom.Sector(i*8), 8), Pba: geom.Sector(i * 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// An empty follower at (0,0): the source is past generation 1, so
	// catch-up starts with the checkpoint.
	chunk, err := journal.ShipFrom(src, 0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Kind != journal.ShipCheckpoint {
		t.Fatalf("first catch-up chunk kind %s, want checkpoint", journal.ShipKindName(chunk.Kind))
	}
	f := &Follower{cfg: FollowerConfig{Logf: t.Logf}}
	st, err := f.applyCheckpoint(dst, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gen != chunk.Gen+1 || st.Offset != 0 {
		t.Fatalf("post-checkpoint position (%d,%d), want (%d,0)", st.Gen, st.Offset, chunk.Gen+1)
	}

	// Corrupted checkpoint ships must be rejected too.
	bad := chunk
	bad.Data = append([]byte(nil), chunk.Data...)
	bad.Data[len(bad.Data)/2] ^= 0x01
	if _, err := f.applyCheckpoint(t.TempDir(), bad); err == nil {
		t.Fatal("corrupt checkpoint applied cleanly")
	}

	// Then the live generation's segments, anchored in that checkpoint.
	chunk, err = journal.ShipFrom(src, st.Gen, st.Offset, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Kind != journal.ShipSegments {
		t.Fatalf("second catch-up chunk kind %s, want segments", journal.ShipKindName(chunk.Kind))
	}
	if st, err = f.applySegments(dst, st, chunk); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.VerifyDir(dst); err != nil {
		t.Fatalf("caught-up replica does not verify: %v", err)
	}
	srcRaw, _ := os.ReadFile(journal.JournalPath(src))
	dstRaw, _ := os.ReadFile(journal.JournalPath(dst))
	if !bytes.Equal(srcRaw, dstRaw) {
		t.Fatal("caught-up journal differs from source")
	}
	if st.Offset != int64(len(dstRaw)) {
		t.Fatalf("position %d bytes, file has %d", st.Offset, len(dstRaw))
	}
}

// TestScanLocalTruncatesTornTail checks crash recovery on the pull
// side: bytes past the last seal (a torn mid-append crash) are dropped
// so only verified sealed bytes are ever acked.
func TestScanLocalTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	raw := seedJournal(t, dir, 5)
	path := journal.JournalPath(dir)
	fd, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fd.Close()

	f := &Follower{cfg: FollowerConfig{Logf: t.Logf}, pos: map[string]server.ReplPosition{}}
	st, err := f.scanLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offset != int64(len(raw)) {
		t.Fatalf("scan frontier at %d bytes, want the %d-byte sealed prefix", st.Offset, len(raw))
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, raw) {
		t.Fatal("torn tail survived scanLocal")
	}
	if _, err := journal.VerifyDir(dir); err != nil {
		t.Fatalf("post-scan dir does not verify: %v", err)
	}
}

// TestScanLocalDiscardsStaleGeneration: a crash between checkpoint
// install and journal removal leaves a subsumed generation behind;
// scanning must discard it and resume from the checkpoint.
func TestScanLocalDiscardsStaleGeneration(t *testing.T) {
	dir := t.TempDir()
	l, err := journal.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append(journal.Record{Kind: journal.RecWrite, Lba: geom.Ext(geom.Sector(i*8), 8), Pba: geom.Sector(i * 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	// Keep the pre-checkpoint journal bytes, checkpoint (which truncates
	// and rebirths), then put the stale generation back — the crash shape.
	stale, err := os.ReadFile(journal.JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(journal.Snapshot{Frontier: 32, Written: 32,
		Mappings: []extmap.Mapping{{Lba: geom.Ext(0, 32), Pba: 0}}}); err != nil {
		t.Fatal(err)
	}
	snapGen := l.Generation() - 1
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal.JournalPath(dir), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	f := &Follower{cfg: FollowerConfig{Logf: t.Logf}, pos: map[string]server.ReplPosition{}}
	st, err := f.scanLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gen != snapGen+1 || st.Offset != 0 {
		t.Fatalf("scan over stale generation resumed at (%d,%d), want (%d,0) with no journal", st.Gen, st.Offset, snapGen+1)
	}
	if _, err := os.Stat(journal.JournalPath(dir)); !os.IsNotExist(err) {
		t.Fatal("stale journal generation survived the scan")
	}
}
