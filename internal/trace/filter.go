package trace

import (
	"smrseek/internal/geom"
)

// Filter utilities: stream transforms applied between a trace source and
// the simulator. Each returns a Reader so transforms compose.

// filterReader applies keep/transform functions to an inner reader.
type filterReader struct {
	inner Reader
	fn    func(Record) (Record, bool)
}

// Next implements Reader.
func (f *filterReader) Next() (Record, bool) {
	for {
		r, ok := f.inner.Next()
		if !ok {
			return Record{}, false
		}
		if out, keep := f.fn(r); keep {
			return out, true
		}
	}
}

// Err implements Reader.
func (f *filterReader) Err() error { return f.inner.Err() }

// Transform returns a Reader applying fn to every record; fn may drop a
// record by returning keep=false.
func Transform(inner Reader, fn func(Record) (Record, bool)) Reader {
	return &filterReader{inner: inner, fn: fn}
}

// Limit keeps only the first n records.
func Limit(inner Reader, n int64) Reader {
	var seen int64
	return Transform(inner, func(r Record) (Record, bool) {
		if seen >= n {
			return Record{}, false
		}
		seen++
		return r, true
	})
}

// Sample keeps every k-th record (k >= 1), a crude but deterministic way
// to cut a long trace down (the paper also samples its traces).
func Sample(inner Reader, k int64) Reader {
	if k < 1 {
		k = 1
	}
	var i int64
	return Transform(inner, func(r Record) (Record, bool) {
		keep := i%k == 0
		i++
		return r, keep
	})
}

// ClipLBA drops records outside [0, maxSector) and truncates records
// straddling the boundary.
func ClipLBA(inner Reader, maxSector geom.Sector) Reader {
	bounds := geom.Ext(0, maxSector)
	return Transform(inner, func(r Record) (Record, bool) {
		clipped := r.Extent.Clamp(bounds)
		if clipped.Empty() {
			return Record{}, false
		}
		r.Extent = clipped
		return r, true
	})
}

// RebaseTime shifts all timestamps so the first record is at t=0.
func RebaseTime(inner Reader) Reader {
	first := true
	var base int64
	return Transform(inner, func(r Record) (Record, bool) {
		if first {
			base = r.Time
			first = false
		}
		r.Time -= base
		return r, true
	})
}
