package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"smrseek/internal/journal"
	"smrseek/internal/server"
	"smrseek/internal/volume"
)

// FollowerConfig tunes a replication follower.
type FollowerConfig struct {
	// Root is the local journal root directory; the fencing-epoch file
	// lives here.
	Root string
	// Source is the primary's address.
	Source string
	// Configs are the volume configurations to open at promotion. Their
	// JournalDir fields name the local per-volume journal directories the
	// pull loops fill; every config must have one.
	Configs []volume.Config
	// Retry is the pause after a pull error before redialing
	// (0 = 100ms).
	Retry time.Duration
	// SyncTimeout, ForceSealEvery, TailWait, Peers and PollEvery carry
	// into the Primary this node becomes at promotion.
	SyncTimeout    time.Duration
	ForceSealEvery time.Duration
	TailWait       time.Duration
	Peers          []string
	PollEvery      time.Duration
	// Logf receives replication diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Follower implements server.ReplHooks for the catching-up side: it
// pulls sealed journal chunks from the source, verifies each received
// prefix before persisting it, acks its applied position, and — on
// Promote — recovers the replicated journals with full verification and
// becomes the serving primary at a bumped fencing epoch.
type Follower struct {
	cfg FollowerConfig

	mu        sync.Mutex
	pos       map[string]server.ReplPosition // verified, applied positions
	epoch     uint64                         // highest epoch seen from the source
	rejects   int64                          // chunks rejected by verification
	prim      *Primary                       // non-nil once promoted
	srv       *server.Server                 // for SetManager at promotion
	mgr       *volume.Manager                // owned after promotion
	promoting bool                           // a Promote is in flight (mu drops to quiesce)
	promoDone chan struct{}                  // closed when that Promote finishes
	promoErr  error                          // sticky promotion failure

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewFollower loads the persisted epoch and returns a follower; Start
// launches the pull loops.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Retry <= 0 {
		cfg.Retry = 100 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	for _, vc := range cfg.Configs {
		if vc.JournalDir == "" {
			return nil, fmt.Errorf("repl: follower volume %q has no journal directory", vc.Name)
		}
		if err := os.MkdirAll(vc.JournalDir, 0o777); err != nil {
			return nil, err
		}
	}
	epoch, err := LoadEpoch(cfg.Root)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Follower{
		cfg:    cfg,
		pos:    make(map[string]server.ReplPosition),
		epoch:  epoch,
		ctx:    ctx,
		cancel: cancel,
	}, nil
}

// AttachServer gives the follower the server to install the recovered
// volume set into at promotion.
func (f *Follower) AttachServer(s *server.Server) { f.srv = s }

// Start launches one pull loop per volume.
func (f *Follower) Start() {
	for _, vc := range f.cfg.Configs {
		f.wg.Add(1)
		go f.pull(vc.Name, vc.JournalDir)
	}
}

// Close stops the pull loops (and the promoted primary, if any). It
// does not close the promoted volume manager: the caller owns volume
// shutdown ordering, via Manager.
func (f *Follower) Close() {
	f.cancel()
	f.wg.Wait()
	f.mu.Lock()
	prim := f.prim
	f.mu.Unlock()
	if prim != nil {
		prim.Close()
	}
}

// Manager returns the volume set opened at promotion (nil before).
func (f *Follower) Manager() *volume.Manager {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mgr
}

// Rejects returns how many shipped chunks verification refused.
func (f *Follower) Rejects() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rejects
}

// promoted returns the post-promotion primary, or nil.
func (f *Follower) promoted() *Primary {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.prim
}

// Role reports "follower" with the verified applied positions, or the
// promoted primary's role.
func (f *Follower) Role() server.RoleInfo {
	if p := f.promoted(); p != nil {
		return p.Role()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	vols := make(map[string]server.ReplPosition, len(f.pos))
	for name, pos := range f.pos {
		vols[name] = pos
	}
	return server.RoleInfo{Role: "follower", Epoch: f.epoch, Volumes: vols}
}

// Epoch returns the highest fencing epoch this node has seen or been
// promoted to.
func (f *Follower) Epoch() uint64 {
	if p := f.promoted(); p != nil {
		return p.Epoch()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// AcceptingData is false until promotion.
func (f *Follower) AcceptingData() bool {
	p := f.promoted()
	return p != nil && p.AcceptingData()
}

// GateWrite delegates to the promoted primary (no-op before promotion:
// an unpromoted follower serves no writes).
func (f *Follower) GateWrite(vol string, seq int64) {
	if p := f.promoted(); p != nil {
		p.GateWrite(vol, seq)
	}
}

// WaitTail delegates to the promoted primary; before promotion it
// returns immediately (OpTail degenerates to OpShip, and an unpromoted
// follower has no open volumes to ship from anyway).
func (f *Follower) WaitTail(ctx context.Context, vol string, gen uint64, off int64) {
	if p := f.promoted(); p != nil {
		p.WaitTail(ctx, vol, gen, off)
	}
}

// Ack delegates to the promoted primary and is dropped before
// promotion.
func (f *Follower) Ack(vol string, gen uint64, off int64) {
	if p := f.promoted(); p != nil {
		p.Ack(vol, gen, off)
	}
}

// Promote turns this follower into the serving primary: it stops the
// pull loops, bumps and persists the fencing epoch, opens every volume
// over the replicated journal directories — verified recovery, the same
// path crash recovery takes — installs the set into the server, and
// starts serving. Idempotent once promoted; a failed promotion is
// sticky (the pull loops are gone and the journals may be half-opened).
func (f *Follower) Promote() (server.RoleInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.promoting {
		// Another connection is mid-promotion; wait for its outcome.
		done := f.promoDone
		f.mu.Unlock()
		<-done
		f.mu.Lock()
	}
	if f.prim != nil {
		return f.prim.Role(), nil
	}
	if f.promoErr != nil {
		return server.RoleInfo{}, f.promoErr
	}
	f.promoting = true
	f.promoDone = make(chan struct{})
	defer func() {
		f.promoting = false
		close(f.promoDone)
	}()

	// Quiesce the pull loops so nothing appends to the journal files
	// while recovery reads them.
	f.cancel()
	f.mu.Unlock()
	f.wg.Wait()
	f.mu.Lock()

	if err := StoreEpoch(f.cfg.Root, f.epoch+1); err != nil {
		f.promoErr = fmt.Errorf("repl: promote: %w", err)
		return server.RoleInfo{}, f.promoErr
	}
	f.epoch++

	prim, err := NewPrimary(PrimaryConfig{
		Root:           f.cfg.Root,
		SyncTimeout:    f.cfg.SyncTimeout,
		ForceSealEvery: f.cfg.ForceSealEvery,
		TailWait:       f.cfg.TailWait,
		Peers:          f.cfg.Peers,
		PollEvery:      f.cfg.PollEvery,
		Logf:           f.cfg.Logf,
	})
	if err != nil {
		f.promoErr = fmt.Errorf("repl: promote: %w", err)
		return server.RoleInfo{}, f.promoErr
	}
	cfgs := make([]volume.Config, len(f.cfg.Configs))
	for i, vc := range f.cfg.Configs {
		vc.OnSeal = prim.OnSeal(vc.Name)
		cfgs[i] = vc
	}
	mgr, err := volume.OpenAll(cfgs...)
	if err != nil {
		prim.Close()
		f.promoErr = fmt.Errorf("repl: promote: verified recovery failed: %w", err)
		return server.RoleInfo{}, f.promoErr
	}
	prim.AttachManager(mgr)
	f.mgr = mgr
	f.prim = prim
	if f.srv != nil {
		f.srv.SetManager(mgr)
	}
	f.cfg.Logf("repl: promoted to primary at epoch %d (%d volumes recovered)", f.epoch, len(cfgs))
	return prim.Role(), nil
}

// chunkPos is a verified frontier's wire position.
func chunkPos(st journal.ChunkState) server.ReplPosition {
	return server.ReplPosition{Gen: st.Gen, Bytes: st.Offset, Records: st.Records}
}

// verifyReq hands one shipped segments chunk, plus the verified frontier
// it must continue, to the verifier goroutine.
type verifyReq struct {
	chunk journal.ShipChunk
	st    journal.ChunkState
}

// verifyRes is the verifier's outcome: the advanced frontier, or the
// unchanged one with the rejection reason.
type verifyRes struct {
	st  journal.ChunkState
	err error
}

// pull is one volume's replication loop: scan the local journal state
// once, then long-poll the source for the next chunk past the frontier.
// Segment chunks are handed to a per-volume verifier goroutine that
// verifies, persists and acks them while this goroutine is already
// long-polling for the next chunk at the optimistic position past the
// in-flight one — shipping and verification overlap instead of taking
// turns. At most one chunk is in flight; its result is joined before
// the next chunk is processed, so chunks still verify and apply
// strictly in order.
func (f *Follower) pull(name, dir string) {
	defer f.wg.Done()
	var c *server.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()

	reqs := make(chan verifyReq)
	ress := make(chan verifyRes, 1) // cap 1: the verifier never blocks sending
	f.wg.Add(1)
	go f.verifier(name, dir, reqs, ress)
	defer close(reqs)

	var (
		st      journal.ChunkState // verified frontier
		pending *verifyReq         // chunk the verifier is working on
		scanned bool
	)
	// join collects the in-flight chunk's outcome, advancing the frontier
	// or reporting the rejection.
	join := func() bool {
		if pending == nil {
			return true
		}
		res := <-ress
		pending = nil
		if res.err != nil {
			f.reject(name, res.err)
			return false
		}
		st = res.st
		return true
	}

	for f.ctx.Err() == nil {
		if c == nil {
			var err error
			c, err = server.DialContext(f.ctx, f.cfg.Source)
			if err != nil {
				f.sleep()
				continue
			}
			// Pull handles its own redial; Step-level reconnection would
			// only hide source death.
			c.SetReconnect(server.ReconnectPolicy{})
		}
		if !scanned {
			var err error
			st, err = f.scanLocal(dir)
			if err != nil {
				f.cfg.Logf("repl: %s: local journal state unusable: %v", name, err)
				return
			}
			f.setPos(name, chunkPos(st))
			scanned = true
		}
		// Ask at the optimistic position: past the in-flight chunk, so the
		// source prepares the next one while this one verifies. If the
		// in-flight chunk is then rejected, whatever this returns is
		// speculation on top of bad bytes and is dropped below.
		askGen, askOff := st.Gen, st.Offset
		if pending != nil {
			askGen = pending.chunk.Gen
			askOff = pending.chunk.Off + int64(len(pending.chunk.Data))
		}
		epoch, chunk, err := c.Tail(name, askGen, askOff)
		if err != nil {
			var se *server.StatusError
			if errors.As(err, &se) {
				// The source is alive but cannot feed us right now — it is
				// fenced, demoted, or sees us as ahead. Keep polling: chaos
				// heals partitions and a fenced source may be all we have.
				f.sleep()
				continue
			}
			c.Close()
			c = nil
			f.sleep()
			continue
		}
		f.observeEpoch(epoch)
		if !join() {
			continue
		}
		switch chunk.Kind {
		case journal.ShipNone:
			// The long poll expired with nothing new; ask again.
		case journal.ShipCheckpoint:
			newSt, err := f.applyCheckpoint(dir, chunk)
			if err != nil {
				f.reject(name, err)
				continue
			}
			st = newSt
			f.setPos(name, chunkPos(st))
			_ = c.Ack(name, st.Gen, st.Offset)
		case journal.ShipSegments:
			req := verifyReq{chunk: chunk, st: st}
			select {
			case reqs <- req:
				pending = &req
			case <-f.ctx.Done():
			}
		default:
			f.reject(name, fmt.Errorf("unknown ship kind %d", chunk.Kind))
		}
	}
}

// verifier is a pull loop's verification stage: it verifies, persists
// and acks segment chunks off the pull goroutine. Acks go out on the
// verifier's own connection — the puller's is busy inside the next
// long poll, and delaying the ack until that poll returned would stall
// the primary's semi-sync write gate for up to its TailWait.
func (f *Follower) verifier(name, dir string, reqs <-chan verifyReq, ress chan<- verifyRes) {
	defer f.wg.Done()
	var ack *server.Client
	defer func() {
		if ack != nil {
			ack.Close()
		}
	}()
	for req := range reqs {
		st, err := f.applySegments(dir, req.st, req.chunk)
		if err == nil {
			f.setPos(name, chunkPos(st))
			if ack == nil {
				if c, derr := server.DialContext(f.ctx, f.cfg.Source); derr == nil {
					c.SetReconnect(server.ReconnectPolicy{})
					ack = c
				}
			}
			if ack != nil {
				if aerr := ack.Ack(name, st.Gen, st.Offset); aerr != nil {
					ack.Close()
					ack = nil
				}
			}
		}
		ress <- verifyRes{st: st, err: err}
	}
}

// scanLocal reads the volume's local journal directory and returns the
// verified frontier to resume pulling from, truncating crash residue
// (a torn tail past the last seal) first. This is the one full-prefix
// scan of the process lifetime — it runs on the parallel verification
// pool — and every later chunk verifies incrementally against the
// frontier it establishes.
func (f *Follower) scanLocal(dir string) (journal.ChunkState, error) {
	snap, err := journal.ReadCheckpointFile(journal.CheckpointPath(dir))
	if err != nil {
		return journal.ChunkState{}, err
	}
	raw, err := os.ReadFile(journal.JournalPath(dir))
	if os.IsNotExist(err) {
		if snap != nil {
			return journal.ChunkState{Gen: snap.Generation + 1}, nil
		}
		return journal.ChunkState{}, nil
	}
	if err != nil {
		return journal.ChunkState{}, err
	}
	d, err := journal.ScanBytesWorkers(raw, 0)
	if err != nil {
		return journal.ChunkState{}, err
	}
	if snap != nil && d.Generation <= snap.Generation {
		// Stale pre-checkpoint generation (crash between checkpoint
		// install and journal removal): subsumed, discard it.
		if err := os.Remove(journal.JournalPath(dir)); err != nil {
			return journal.ChunkState{}, err
		}
		return journal.ChunkState{Gen: snap.Generation + 1}, nil
	}
	end := journal.SealedEndOf(d)
	if end < int64(len(raw)) {
		// A crash mid-append left bytes past the last verified seal; we
		// only ack sealed bytes, so drop them and re-pull.
		if err := os.Truncate(journal.JournalPath(dir), end); err != nil {
			return journal.ChunkState{}, err
		}
	}
	return journal.ChunkState{
		Gen:     d.Generation,
		Offset:  end,
		Chain:   d.ChainHead(),
		Seals:   len(d.Seals),
		Records: d.Sealed,
	}, nil
}

// applyCheckpoint verifies and durably installs a shipped checkpoint,
// discarding the subsumed local journal, and returns the frontier to
// resume at: generation ckpt+1, offset 0 (expecting a fresh chunk).
func (f *Follower) applyCheckpoint(dir string, chunk journal.ShipChunk) (journal.ChunkState, error) {
	snap, err := journal.ReadCheckpoint(bytes.NewReader(chunk.Data))
	if err != nil {
		return journal.ChunkState{}, fmt.Errorf("shipped checkpoint does not verify: %w", err)
	}
	if snap.Generation != chunk.Gen {
		return journal.ChunkState{}, fmt.Errorf("shipped checkpoint generation %d, chunk says %d", snap.Generation, chunk.Gen)
	}
	if err := writeFileAtomic(journal.CheckpointPath(dir), chunk.Data); err != nil {
		return journal.ChunkState{}, err
	}
	if err := os.Remove(journal.JournalPath(dir)); err != nil && !os.IsNotExist(err) {
		return journal.ChunkState{}, err
	}
	return journal.ChunkState{Gen: snap.Generation + 1}, nil
}

// applySegments verifies a shipped byte range as the exact continuation
// of the verified frontier st and persists it, returning the advanced
// frontier. Only the chunk's own bytes are verified — frame CRCs,
// segment Merkle roots, and chain links extending st.Chain — so each
// sealed byte is verified exactly once per process lifetime instead of
// re-verifying the whole prefix on every pull. A fresh chunk (Off == 0)
// carries the generation header, which is checked against the local
// checkpoint (anchor and generation succession) before its segments
// are verified from the header's anchor. A chunk that fails is rejected
// without side effects.
func (f *Follower) applySegments(dir string, st journal.ChunkState, chunk journal.ShipChunk) (journal.ChunkState, error) {
	if chunk.Off == 0 {
		gen, _, anchor, err := journal.ParseHeader(chunk.Data)
		if err != nil {
			return st, fmt.Errorf("shipped prefix does not verify: %w", err)
		}
		if gen != chunk.Gen {
			return st, fmt.Errorf("shipped header generation %d, chunk says %d", gen, chunk.Gen)
		}
		snap, err := journal.ReadCheckpointFile(journal.CheckpointPath(dir))
		if err != nil {
			return st, err
		}
		switch {
		case snap == nil && !anchor.IsZero():
			return st, fmt.Errorf("shipped journal anchors at %s with no local checkpoint", anchor.Short())
		case snap != nil && gen != snap.Generation+1:
			return st, fmt.Errorf("shipped generation %d does not succeed local checkpoint %d",
				gen, snap.Generation)
		case snap != nil && anchor != snap.Chain:
			return st, fmt.Errorf("shipped anchor %s does not match local checkpoint chain %s",
				anchor.Short(), snap.Chain.Short())
		}
		init := journal.ChunkState{Gen: gen, Offset: journal.HeaderLen, Chain: anchor}
		newSt, err := journal.VerifyChunkSegments(chunk.Data[journal.HeaderLen:], init)
		if err != nil {
			return st, fmt.Errorf("shipped prefix does not verify: %w", err)
		}
		if err := writeFileAtomic(journal.JournalPath(dir), chunk.Data); err != nil {
			return st, err
		}
		return newSt, nil
	}
	if chunk.Gen != st.Gen || chunk.Off != st.Offset {
		return st, fmt.Errorf("chunk at (gen %d, off %d), local position (gen %d, off %d)",
			chunk.Gen, chunk.Off, st.Gen, st.Offset)
	}
	newSt, err := journal.VerifyChunkSegments(chunk.Data, st)
	if err != nil {
		return st, fmt.Errorf("shipped chunk does not verify: %w", err)
	}
	if err := appendAt(journal.JournalPath(dir), chunk.Off, chunk.Data); err != nil {
		return st, err
	}
	return newSt, nil
}

// appendAt writes data at byte offset off of path and fsyncs.
func appendAt(path string, off int64, data []byte) error {
	fd, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer fd.Close()
	if _, err := fd.WriteAt(data, off); err != nil {
		return err
	}
	return fd.Sync()
}

// reject logs and counts a chunk that verification refused.
func (f *Follower) reject(name string, err error) {
	f.mu.Lock()
	f.rejects++
	f.mu.Unlock()
	f.cfg.Logf("repl: %s: rejected shipped chunk: %v", name, err)
	f.sleep()
}

// setPos publishes a volume's verified applied position.
func (f *Follower) setPos(name string, pos server.ReplPosition) {
	f.mu.Lock()
	f.pos[name] = pos
	f.mu.Unlock()
}

// observeEpoch adopts a higher fencing epoch seen from the source,
// persisting it so a restart cannot regress.
func (f *Follower) observeEpoch(epoch uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if epoch > f.epoch {
		if err := StoreEpoch(f.cfg.Root, epoch); err != nil {
			f.cfg.Logf("repl: persisting epoch %d: %v", epoch, err)
			return
		}
		f.epoch = epoch
	}
}

// sleep pauses the pull loop for the retry interval (or until Close).
func (f *Follower) sleep() {
	select {
	case <-f.ctx.Done():
	case <-time.After(f.cfg.Retry):
	}
}
