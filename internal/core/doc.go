// Package core implements the paper's primary contribution: a simulator
// for seek behaviour of log-structured SMR translation layers, plus the
// three read-seek-reduction mechanisms it proposes —
//
//   - opportunistic defragmentation (Algorithm 1): after serving a
//     fragmented read, rewrite the read LBA range contiguously at the
//     write frontier, trading one extra write seek for seek-free re-reads;
//   - translation-aware look-ahead-behind prefetching (Algorithm 2): on
//     fragmented reads, the drive fills a physical-range buffer around
//     each fragment so that fragments written out of order but physically
//     nearby are served without a seek (avoiding missed rotations);
//   - translation-aware selective caching (Algorithm 3): a small LRU RAM
//     cache holding only the fragments of fragmented reads, exploiting the
//     skewed fragment popularity the paper measures (Figure 10).
//
// The Simulator composes a translation layer (stl.NoLS or stl.LS), any
// subset of the mechanisms, and the seek-counting disk model; Compare runs
// a workload through the untranslated baseline and any number of variants
// and reports seek amplification factors (SAF), the paper's Figure 11.
package core
