package volume_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/geom"
	"smrseek/internal/volume"
)

// TestCloseSubmitRace hammers TryDo from many goroutines while Close
// runs concurrently. The contract under race: every submission gets
// exactly one outcome — a delivered Result, ErrClosed, or
// ErrOverloaded — and an accepted submission (TryDo returned nil) is
// always answered, even when Close lands between submit and execute.
func TestCloseSubmitRace(t *testing.T) {
	v, err := volume.Open(volume.Config{
		Name:       "race",
		Sim:        core.Config{LogStructured: true, FrontierStart: 1 << 20},
		QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var (
		accepted  atomic.Int64 // TryDo returned nil
		delivered atomic.Int64 // results read off done channels
		rejected  atomic.Int64 // ErrClosed or ErrOverloaded
		wg        sync.WaitGroup
	)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				done := make(chan volume.Result, 1)
				ext := geom.Ext(geom.Sector((w*1000+i*8)%100000), 8)
				err := v.TryDo(volume.Request{Kind: volume.OpWrite, Extent: ext}, done)
				switch {
				case err == nil:
					accepted.Add(1)
					<-done // Close drains the queue: this must always arrive
					delivered.Add(1)
				case errors.Is(err, volume.ErrClosed):
					rejected.Add(1)
					return // closed stays closed; submission loop is over
				case errors.Is(err, volume.ErrOverloaded):
					rejected.Add(1)
				default:
					t.Errorf("TryDo: unexpected error %v", err)
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let the workers build up traffic
	if err := v.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	if accepted.Load() != delivered.Load() {
		t.Fatalf("%d accepted submissions but %d delivered results", accepted.Load(), delivered.Load())
	}
	if accepted.Load() == 0 {
		t.Fatal("race produced no accepted submissions; the test exercised nothing")
	}
	t.Logf("accepted %d, rejected %d", accepted.Load(), rejected.Load())
}

// TestCloseDoRace runs the blocking submission path (DoRequest)
// against a concurrent Close: each call must return either a real
// result or ErrClosed — never hang, never panic on the closed queue.
func TestCloseDoRace(t *testing.T) {
	v, err := volume.Open(volume.Config{
		Name: "race-do",
		Sim:  core.Config{LogStructured: true, FrontierStart: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var (
		completed atomic.Int64
		closed    atomic.Int64
		wg        sync.WaitGroup
	)
	ctx := context.Background()
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				ext := geom.Ext(geom.Sector((w*1000+i*8)%100000), 8)
				_, err := v.Do(ctx, volume.OpWrite, ext)
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, volume.ErrClosed):
					closed.Add(1)
					return
				default:
					t.Errorf("Do: unexpected error %v", err)
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	if err := v.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if completed.Load() == 0 {
		t.Fatal("no writes completed before Close; the race window never opened")
	}
	if closed.Load() != workers {
		t.Fatalf("%d workers saw ErrClosed, want all %d", closed.Load(), workers)
	}
}
