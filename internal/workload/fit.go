package workload

import (
	"fmt"
	"sort"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

// Fit estimates a Profile from an observed trace, so a real (private)
// trace can be shared as a synthetic stand-in — the same substitution
// this repository applies to the paper's MSR and CloudPhysics traces,
// automated. The fit recovers the coarse knobs the seek results are
// sensitive to:
//
//   - op count and write fraction,
//   - mean read/write sizes and the touched LBA span,
//   - re-read concentration (hot-range count, footprint and zipf-like
//     skew from the read-popularity histogram),
//   - update rate (writes into previously-read territory),
//   - mis-ordered write share → a matching Shuffled burst rate,
//   - sequential-read share → scan fraction.
//
// It is deliberately heuristic: the goal is a stand-in whose seek
// behaviour under the simulator is in the same regime as the original,
// not a statistically exact model.
func Fit(name string, recs []trace.Record, seed uint64) (Profile, error) {
	if len(recs) == 0 {
		return Profile{}, fmt.Errorf("workload: cannot fit an empty trace")
	}
	ch := trace.Characterize(recs)
	p := Profile{
		Name:          name,
		Source:        CloudPhysics,
		OS:            "fitted",
		Seed:          seed,
		BaseOps:       int(ch.Ops),
		WriteFrac:     ch.WriteIntensity(),
		RegionSectors: maxInt64(ch.MaxLBA, 1),
		WriteSectors:  maxInt64(int64(ch.MeanWriteKB*2), 1),
		ReadSectors:   maxInt64(int64(ch.MeanReadKB*2), 1),
	}

	fitReads(&p, recs)
	fitWrites(&p, recs)

	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("workload: fitted profile invalid: %w", err)
	}
	return p, nil
}

// fitReads estimates scan share, hot reuse and skew.
func fitReads(p *Profile, recs []trace.Record) {
	var reads int64
	var seqReads int64
	var prevEnd geom.Sector = -1
	popularity := make(map[geom.Sector]int64) // by aligned 128-sector bucket
	const bucket = 128
	for _, r := range recs {
		if r.Kind != disk.Read {
			continue
		}
		reads++
		if r.Extent.Start == prevEnd {
			seqReads++
		}
		prevEnd = r.Extent.End()
		popularity[r.Extent.Start/bucket]++
	}
	if reads == 0 {
		return
	}
	p.ScanFrac = clamp01(float64(seqReads) / float64(reads))
	p.ScanChunk = p.ReadSectors
	p.ScanRepeat = true

	// Re-read concentration: buckets hit 3+ times are "hot".
	counts := make([]int64, 0, len(popularity))
	var hotAccesses, hotBuckets int64
	for _, c := range popularity {
		counts = append(counts, c)
		if c >= 3 {
			hotAccesses += c
			hotBuckets++
		}
	}
	p.HotReadFrac = clamp01(float64(hotAccesses) / float64(reads) * (1 - p.ScanFrac))
	if p.HotReadFrac+p.ScanFrac > 0.99 {
		p.HotReadFrac = 0.99 - p.ScanFrac
	}
	if hotBuckets > 0 {
		p.HotRanges = int(minInt64(hotBuckets, 512))
		p.HotRangeSectors = bucket * maxInt64(hotBuckets/int64(p.HotRanges), 1)
		// Skew: ratio of the hottest bucket to the median hot bucket,
		// mapped onto a zipf exponent in [0.5, 1.4].
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		top := float64(counts[0])
		med := float64(counts[len(counts)/2])
		ratio := top / maxFloat(med, 1)
		switch {
		case ratio > 100:
			p.HotZipf = 1.4
		case ratio > 10:
			p.HotZipf = 1.1
		default:
			p.HotZipf = 0.7
		}
	}
}

// fitWrites estimates the update rate and mis-ordered burst rate.
func fitWrites(p *Profile, recs []trace.Record) {
	// Update rate: writes whose extent was read earlier in the trace.
	readSet := geom.NewSet()
	var writes, updates int64
	for _, r := range recs {
		switch r.Kind {
		case disk.Read:
			readSet.Add(r.Extent)
		case disk.Write:
			writes++
			if len(readSet.Covered(r.Extent)) > 0 {
				updates++
			}
		}
	}
	if writes == 0 {
		return
	}
	p.UpdateFrac = clamp01(float64(updates) / float64(writes))
	p.UpdateSectors = maxInt64(p.WriteSectors/4, 1)
	p.UpdateHotBias = 0.5

	// Mis-ordered share → Shuffled bursts of 8 chunks. A burst of k
	// chunks yields ~k/2 mis-ordered records (shuffled), so the decision
	// rate is misShare * 2 / k adjusted for burst amplification.
	mis := misorderedShare(recs)
	if mis > 0.001 {
		const chunks = 8
		p.MisorderPattern = Shuffled
		p.MisorderChunks = chunks
		p.MisorderChunk = maxInt64(p.WriteSectors/2, 4)
		// records from bursts fraction ≈ f*k/(f*k+1-f); mis-ordered ≈
		// half of those → solve f for misRecords = 2*mis.
		target := clamp01(2 * mis)
		p.MisorderFrac = clamp01(target / (chunks*(1-target) + target))
	}
}

// misorderedShare is a lightweight local re-implementation (the full
// analysis lives in package analysis; importing it here would cycle).
func misorderedShare(recs []trace.Record) float64 {
	var writes []trace.Record
	for _, r := range recs {
		if r.Kind == disk.Write {
			writes = append(writes, r)
		}
	}
	if len(writes) == 0 {
		return 0
	}
	const window = 256 * 1024
	endCount := make(map[geom.Sector]int)
	var vol int64
	var mis int64
	j := 0
	for i := range writes {
		if j <= i {
			j = i + 1
			vol = 0
		}
		for j < len(writes) && vol+writes[j].Extent.Bytes() <= window {
			endCount[writes[j].Extent.End()]++
			vol += writes[j].Extent.Bytes()
			j++
		}
		if endCount[writes[i].Extent.Start] > 0 {
			mis++
		}
		if j > i+1 {
			w := writes[i+1]
			if c := endCount[w.Extent.End()]; c <= 1 {
				delete(endCount, w.Extent.End())
			} else {
				endCount[w.Extent.End()] = c - 1
			}
			vol -= w.Extent.Bytes()
		}
	}
	return float64(mis) / float64(len(writes))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
