// Package geom provides the sector-addressed interval algebra used
// throughout smrseek: extents (half-open sector ranges), overlap and
// adjacency tests, intersection, subtraction and merging.
//
// All addresses are in 512-byte sectors. The disk model, extent map and
// translation layers are all built on these primitives, so the operations
// here are deliberately small, allocation-light and heavily tested.
package geom

import "fmt"

// SectorSize is the number of bytes per sector. The paper's seek
// definition ("an I/O operation starts at a sector other than that
// immediately following the previous I/O operation") is in sectors, and
// every address in this module is a sector number.
const SectorSize = 512

// Sector is an absolute sector number (LBA or PBA depending on context).
type Sector = int64

// Extent is a half-open interval of sectors [Start, Start+Count).
// The zero Extent is empty.
type Extent struct {
	Start Sector
	Count int64
}

// Ext is shorthand for constructing an Extent.
func Ext(start Sector, count int64) Extent { return Extent{Start: start, Count: count} }

// Span constructs the extent covering [start, end). It panics if end < start.
func Span(start, end Sector) Extent {
	if end < start {
		panic(fmt.Sprintf("geom: invalid span [%d,%d)", start, end))
	}
	return Extent{Start: start, Count: end - start}
}

// End returns the first sector after the extent.
func (e Extent) End() Sector { return e.Start + e.Count }

// Empty reports whether the extent covers no sectors.
func (e Extent) Empty() bool { return e.Count <= 0 }

// Bytes returns the extent's size in bytes.
func (e Extent) Bytes() int64 { return e.Count * SectorSize }

// Contains reports whether sector s lies inside the extent.
func (e Extent) Contains(s Sector) bool { return s >= e.Start && s < e.End() }

// ContainsExtent reports whether o lies entirely inside e.
// An empty o is contained in anything.
func (e Extent) ContainsExtent(o Extent) bool {
	if o.Empty() {
		return true
	}
	return o.Start >= e.Start && o.End() <= e.End()
}

// Overlaps reports whether the two extents share at least one sector.
func (e Extent) Overlaps(o Extent) bool {
	if e.Empty() || o.Empty() {
		return false
	}
	return e.Start < o.End() && o.Start < e.End()
}

// Intersect returns the overlap of the two extents, which is empty when
// they do not overlap.
func (e Extent) Intersect(o Extent) Extent {
	start := max64(e.Start, o.Start)
	end := min64(e.End(), o.End())
	if end <= start {
		return Extent{}
	}
	return Span(start, end)
}

// Subtract removes o from e and returns the 0, 1 or 2 remaining pieces in
// ascending order.
func (e Extent) Subtract(o Extent) []Extent {
	if e.Empty() {
		return nil
	}
	ov := e.Intersect(o)
	if ov.Empty() {
		return []Extent{e}
	}
	var out []Extent
	if e.Start < ov.Start {
		out = append(out, Span(e.Start, ov.Start))
	}
	if ov.End() < e.End() {
		out = append(out, Span(ov.End(), e.End()))
	}
	return out
}

// AdjacentBefore reports whether e ends exactly where o begins.
func (e Extent) AdjacentBefore(o Extent) bool {
	return !e.Empty() && !o.Empty() && e.End() == o.Start
}

// Union returns the smallest extent covering both e and o when they
// overlap or touch, and ok=false otherwise.
func (e Extent) Union(o Extent) (Extent, bool) {
	if e.Empty() {
		return o, true
	}
	if o.Empty() {
		return e, true
	}
	if !e.Overlaps(o) && !e.AdjacentBefore(o) && !o.AdjacentBefore(e) {
		return Extent{}, false
	}
	return Span(min64(e.Start, o.Start), max64(e.End(), o.End())), true
}

// Shift returns the extent translated by delta sectors.
func (e Extent) Shift(delta int64) Extent { return Extent{Start: e.Start + delta, Count: e.Count} }

// Clamp returns e restricted to the bounds extent.
func (e Extent) Clamp(bounds Extent) Extent { return e.Intersect(bounds) }

// String renders the extent as "[start,end)" for diagnostics.
func (e Extent) String() string {
	return fmt.Sprintf("[%d,%d)", e.Start, e.End())
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
