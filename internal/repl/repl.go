// Package repl replicates smrd volumes from a primary to followers by
// shipping sealed journal segments over the smrd wire protocol.
//
// The model is pull-based and byte-exact. Within one generation the
// journal file is append-only with an immutable sealed prefix, so a
// follower's journal file is always a byte-identical prefix of the
// primary's. A follower long-polls OpTail for the next chunk past its
// (generation, offset) position; chunks end exactly on seal-frame
// boundaries, so the follower re-verifies the whole received prefix —
// every frame CRC, every segment Merkle root, the seal chain and the
// checkpoint linkage — before a byte of it is persisted, and rejects
// anything that does not check out. A follower that is behind a
// checkpoint rebirth receives the checkpoint file itself and resumes at
// the next generation.
//
// Writes on the primary are acknowledged semi-synchronously: OpWrite's
// response is held until a follower ack covers the write's journal
// watermark, with a bounded degrade window so a dead or slow follower
// costs latency, not availability (degrades are counted). A force-seal
// tick bounds how long acknowledged records can sit unsealed — and
// therefore unshipped.
//
// Promotion recovers the follower's replicated journals with full
// verification (the same path crash recovery takes), starts serving,
// and bumps the persisted fencing epoch. An old primary that rejoins
// discovers the higher epoch on its peer poll and fences itself:
// it refuses data ops with StatusNotPrimary instead of split-braining.
package repl

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// FenceFile is the name of the fencing-epoch file, stored in the
// journal root directory (the parent of the per-volume journal dirs).
const FenceFile = "EPOCH"

// LoadEpoch reads the persisted fencing epoch under root; a missing
// file is epoch 0 (never promoted, never fenced).
func LoadEpoch(root string) (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(root, FenceFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: fence file %s: %w", filepath.Join(root, FenceFile), err)
	}
	return e, nil
}

// StoreEpoch durably persists the fencing epoch under root
// (write-temp, fsync, rename, fsync dir), creating root if needed — on
// first boot the epoch is written before any volume opens its journal
// directory.
func StoreEpoch(root string, epoch uint64) error {
	if err := os.MkdirAll(root, 0o777); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(root, FenceFile), []byte(strconv.FormatUint(epoch, 10)+"\n"))
}

// writeFileAtomic replaces path's contents via a same-directory temp
// file, fsyncing both the file and its directory so the replacement
// survives a crash.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".repl-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
