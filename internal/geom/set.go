package geom

import "sort"

// Set is a normalized collection of disjoint, non-adjacent extents kept in
// ascending order. It is the small-scale interval set used by the prefetch
// buffer coverage index and by several analyses; the large-scale LBA→PBA
// mapping lives in package extmap.
//
// The zero Set is empty and ready to use.
type Set struct {
	exts []Extent
}

// NewSet returns a set containing the given extents (normalized).
func NewSet(exts ...Extent) *Set {
	s := &Set{}
	for _, e := range exts {
		s.Add(e)
	}
	return s
}

// Len returns the number of disjoint extents in the set.
func (s *Set) Len() int { return len(s.exts) }

// Sectors returns the total number of sectors covered.
func (s *Set) Sectors() int64 {
	var n int64
	for _, e := range s.exts {
		n += e.Count
	}
	return n
}

// Extents returns a copy of the normalized extents in ascending order.
func (s *Set) Extents() []Extent {
	out := make([]Extent, len(s.exts))
	copy(out, s.exts)
	return out
}

// search returns the index of the first extent whose end is > start.
func (s *Set) search(start Sector) int {
	return sort.Search(len(s.exts), func(i int) bool { return s.exts[i].End() > start })
}

// Add inserts e, merging with any overlapping or adjacent extents. It
// shifts in place instead of rebuilding the slice, so a warm set absorbs
// new extents without allocating.
func (s *Set) Add(e Extent) {
	if e.Empty() {
		return
	}
	// Find the run of extents that overlap or touch e.
	i := s.search(e.Start - 1) // include an extent ending exactly at e.Start
	j := i
	merged := e
	for j < len(s.exts) && s.exts[j].Start <= merged.End() {
		if u, ok := merged.Union(s.exts[j]); ok {
			merged = u
		}
		j++
	}
	// Replace exts[i:j] with merged.
	switch {
	case i == j: // pure insertion: open one slot at i
		s.exts = append(s.exts, Extent{})
		copy(s.exts[i+1:], s.exts[i:])
		s.exts[i] = merged
	default: // absorb the run: write merged at i, close the gap
		s.exts[i] = merged
		s.exts = append(s.exts[:i+1], s.exts[j:]...)
	}
}

// OverlapsAny reports whether e overlaps at least one extent in the set,
// without materializing the overlap (the allocation-free test behind
// Covered-emptiness checks on hot paths).
func (s *Set) OverlapsAny(e Extent) bool {
	if e.Empty() {
		return false
	}
	i := s.search(e.Start)
	return i < len(s.exts) && s.exts[i].Start < e.End()
}

// Remove deletes e from the set, splitting extents as needed.
func (s *Set) Remove(e Extent) {
	if e.Empty() || len(s.exts) == 0 {
		return
	}
	i := s.search(e.Start)
	var repl []Extent
	j := i
	for j < len(s.exts) && s.exts[j].Start < e.End() {
		repl = append(repl, s.exts[j].Subtract(e)...)
		j++
	}
	if i == j {
		return
	}
	s.exts = append(s.exts[:i], append(repl, s.exts[j:]...)...)
}

// Contains reports whether the whole extent e is covered by the set.
func (s *Set) Contains(e Extent) bool {
	if e.Empty() {
		return true
	}
	i := s.search(e.Start)
	return i < len(s.exts) && s.exts[i].ContainsExtent(e)
}

// ContainsSector reports whether a single sector is covered.
func (s *Set) ContainsSector(sec Sector) bool {
	return s.Contains(Extent{Start: sec, Count: 1})
}

// Covered returns the portions of e present in the set, ascending.
func (s *Set) Covered(e Extent) []Extent {
	if e.Empty() {
		return nil
	}
	var out []Extent
	for i := s.search(e.Start); i < len(s.exts) && s.exts[i].Start < e.End(); i++ {
		if ov := s.exts[i].Intersect(e); !ov.Empty() {
			out = append(out, ov)
		}
	}
	return out
}

// Missing returns the portions of e absent from the set, ascending.
func (s *Set) Missing(e Extent) []Extent {
	if e.Empty() {
		return nil
	}
	var out []Extent
	cur := e.Start
	for _, c := range s.Covered(e) {
		if c.Start > cur {
			out = append(out, Span(cur, c.Start))
		}
		cur = c.End()
	}
	if cur < e.End() {
		out = append(out, Span(cur, e.End()))
	}
	return out
}

// Clear empties the set.
func (s *Set) Clear() { s.exts = s.exts[:0] }
