package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"smrseek/internal/fault"
	"smrseek/internal/geom"
	"smrseek/internal/report"
	"smrseek/internal/trace"
)

// faultTrace builds a deterministic read/write mix that fragments the
// extent map: interleaved writes scatter neighbouring LBA ranges across
// the log, and re-reads of the scattered ranges exercise every recovery
// path.
func faultTrace(n int) []trace.Record {
	recs := make([]trace.Record, 0, n)
	state := uint64(0x1234)
	next := func(mod int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64(state>>33) % mod
	}
	for i := 0; i < n; i++ {
		lba := next(1 << 14)
		if i%3 == 2 {
			recs = append(recs, rd(lba, 8+next(32)))
		} else {
			recs = append(recs, wr(lba, 8+next(16)))
		}
	}
	return recs
}

func TestFaultedRunReproducible(t *testing.T) {
	d := DefaultDefragConfig()
	c := DefaultCacheConfig()
	cfg := Config{
		LogStructured: true,
		FrontierStart: 1 << 20,
		Defrag:        &d,
		Cache:         &c,
		Fault: &fault.Config{
			Seed:        42,
			ReadRate:    0.05,
			WriteRate:   0.05,
			PoisonRate:  0.10,
			MediaRanges: []geom.Extent{geom.Ext(1<<20+500, 64)},
		},
	}
	recs := faultTrace(4000)

	one := run(t, cfg, recs)
	two := run(t, cfg, recs)
	if !reflect.DeepEqual(one, two) {
		t.Fatalf("faulted runs with the same seed diverged:\n%+v\n%+v", one, two)
	}
	if one.Resilience.FaultsInjected == 0 {
		t.Fatal("no faults injected; the reproducibility check is vacuous")
	}
	if one.Resilience.Recoveries == 0 {
		t.Error("expected some recoveries at 5% transient rates with retries")
	}

	var b1, b2 bytes.Buffer
	if err := report.ResilienceTable(one.Resilience).Render(&b1); err != nil {
		t.Fatal(err)
	}
	if err := report.ResilienceTable(two.Resilience).Render(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("rendered resilience tables differ:\n%s\n%s", b1.String(), b2.String())
	}

	three := cfg
	three.Fault = &fault.Config{Seed: 43, ReadRate: 0.05, WriteRate: 0.05, PoisonRate: 0.10}
	other := run(t, three, recs)
	if reflect.DeepEqual(one.Resilience, other.Resilience) {
		t.Error("different fault seeds produced identical resilience tallies")
	}
}

// TestAbortedDefragLeavesMapUnchanged is the ISSUE's acceptance test: a
// write fault injected mid-defrag must leave the extent map resolving
// every LBA to its pre-defrag contents.
func TestAbortedDefragLeavesMapUnchanged(t *testing.T) {
	d := DefaultDefragConfig()
	mk := func(faulted bool) *Simulator {
		cfg := Config{LogStructured: true, FrontierStart: 1 << 16, Defrag: &d}
		if faulted {
			// Every write attempt faults and the retry budget is tiny, so
			// the relocation's probe writes can never succeed.
			cfg.Fault = &fault.Config{Seed: 1, WriteRate: 1, MaxRetries: 2}
		}
		s := mustSim(t, cfg)
		// Fragment [0, 16): the middle write moves the frontier away.
		s.Step(wr(0, 8))
		s.Step(wr(1000, 8))
		s.Step(wr(8, 8))
		return s
	}

	// Sanity: without faults the defragmenting read coalesces the range.
	s := mk(false)
	s.Step(rd(0, 16))
	if got := len(s.Layer().Resolve(geom.Ext(0, 16))); got != 1 {
		t.Fatalf("fault-free defrag left %d fragments, want 1 — the aborted-defrag check below would be vacuous", got)
	}

	s = mk(true)
	target := geom.Ext(0, 16)
	before := s.Layer().Resolve(target)
	if len(before) < 2 {
		t.Fatalf("setup did not fragment the target: %v", before)
	}
	s.Step(rd(0, 16)) // triggers defrag; every rewrite attempt faults
	after := s.Layer().Resolve(target)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("aborted defrag changed the extent map:\nbefore %v\nafter  %v", before, after)
	}
	st := s.Stats()
	if st.Resilience.AbortedRelocations == 0 {
		t.Error("no aborted relocation recorded")
	}
	if st.DefragWritebacks != 0 {
		t.Errorf("aborted relocation counted as a write-back (%d)", st.DefragWritebacks)
	}
	// Per-LBA check: every sector of the target still resolves somewhere.
	for lba := int64(0); lba < 16; lba++ {
		if frags := s.Layer().Resolve(geom.Ext(lba, 1)); len(frags) != 1 {
			t.Errorf("LBA %d resolves to %d fragments after aborted defrag", lba, len(frags))
		}
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := mustSim(t, Config{LogStructured: true})
	_, err := s.RunContext(ctx, trace.NewSliceReader(faultTrace(1000)))
	if err != context.Canceled {
		t.Errorf("RunContext on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := CompareContext(ctx, faultTrace(1000)); err != context.Canceled {
		t.Errorf("CompareContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestPoisonedCacheEvictionAndPrefetchFallback(t *testing.T) {
	cc := DefaultCacheConfig()
	pc := DefaultPrefetchConfig()
	cfg := Config{
		LogStructured: true,
		FrontierStart: 1 << 16,
		Cache:         &cc,
		Prefetch:      &pc,
		Fault:         &fault.Config{Seed: 3, PoisonRate: 1},
	}
	s := mustSim(t, cfg)
	s.Step(wr(0, 8))
	s.Step(wr(1000, 8))
	s.Step(wr(8, 8))
	s.Step(rd(0, 16)) // fragmented: fills buffer and cache
	s.Step(rd(0, 16)) // hits are all poisoned: evict + fall back to disk
	st := s.Stats()
	if st.Resilience.PoisonedEvictions == 0 {
		t.Error("no poisoned cache evictions with PoisonRate 1")
	}
	if st.Resilience.FaultsInjected == 0 {
		t.Error("poison events not counted as injected faults")
	}
	if st.Disk.ReadSectors == 0 {
		t.Error("poisoned serves did not fall back to the medium")
	}

	// Prefetch alone (no cache shadowing it) must fall back too.
	cfg = Config{
		LogStructured: true,
		FrontierStart: 1 << 16,
		Prefetch:      &pc,
		Fault:         &fault.Config{Seed: 3, PoisonRate: 1},
	}
	s = mustSim(t, cfg)
	s.Step(wr(0, 8))
	s.Step(wr(1000, 8))
	s.Step(wr(8, 8))
	s.Step(rd(0, 16))
	s.Step(rd(0, 16))
	if st := s.Stats(); st.Resilience.PrefetchFallbacks == 0 {
		t.Error("no prefetch fallbacks with PoisonRate 1")
	}
}

func TestMediaErrorsAreUnrecovered(t *testing.T) {
	// NoLS maps LBA to PBA identically, so the media range is addressable
	// directly from the trace.
	cfg := Config{Fault: &fault.Config{Seed: 9, MediaRanges: []geom.Extent{geom.Ext(100, 10)}}}
	s := mustSim(t, cfg)
	s.Step(rd(100, 4))
	s.Step(rd(500, 4))
	st := s.Stats()
	if st.Resilience.MediaFaults != 1 {
		t.Errorf("MediaFaults = %d, want 1", st.Resilience.MediaFaults)
	}
	if st.Resilience.Retries != 0 {
		t.Errorf("media errors must not be retried, got %d retries", st.Resilience.Retries)
	}
	if st.Resilience.Unrecovered != 1 {
		t.Errorf("Unrecovered = %d, want 1", st.Resilience.Unrecovered)
	}
	// The healthy read transferred; the faulted one did not.
	if st.Disk.ReadSectors != 4 {
		t.Errorf("ReadSectors = %d, want 4 (faulted attempt must not count transfer)", st.Disk.ReadSectors)
	}
	if st.Disk.FaultedReads != 1 {
		t.Errorf("FaultedReads = %d, want 1", st.Disk.FaultedReads)
	}
}

func TestTransientRecoveryCounters(t *testing.T) {
	cfg := Config{
		LogStructured: true,
		FrontierStart: 1 << 20,
		Fault:         &fault.Config{Seed: 11, ReadRate: 0.2, WriteRate: 0.2},
	}
	st := run(t, cfg, faultTrace(2000))
	r := st.Resilience
	if r.TransientFaults == 0 {
		t.Fatal("no transient faults at 20% rates")
	}
	if r.Retries == 0 || r.Recoveries == 0 {
		t.Errorf("retries %d, recoveries %d; want both > 0", r.Retries, r.Recoveries)
	}
	if r.FaultsInjected != r.TransientFaults {
		t.Errorf("FaultsInjected %d != TransientFaults %d with no media/poison configured", r.FaultsInjected, r.TransientFaults)
	}
	if rr := r.RecoveryRate(); rr <= 0 || rr > 1 {
		t.Errorf("RecoveryRate = %v, want in (0, 1]", rr)
	}
	// Conservation still holds for whatever was recovered: the faulted
	// run performs at least the fault-free run's transfers minus what
	// went unrecovered.
	clean := run(t, Config{LogStructured: true, FrontierStart: 1 << 20}, faultTrace(2000))
	if st.Disk.ReadSectors > clean.Disk.ReadSectors {
		t.Errorf("faulted run read more sectors (%d) than fault-free (%d)", st.Disk.ReadSectors, clean.Disk.ReadSectors)
	}
	faultedOps := st.Disk.ReadOps + st.Disk.WriteOps
	cleanOps := clean.Disk.ReadOps + clean.Disk.WriteOps
	if faultedOps <= cleanOps {
		t.Errorf("retries should add disk ops: faulted %d <= clean %d", faultedOps, cleanOps)
	}
}

func TestFaultConfigValidateThroughSimulator(t *testing.T) {
	bad := Config{LogStructured: true, Fault: &fault.Config{ReadRate: 1.5}}
	if _, err := NewSimulator(bad); err == nil {
		t.Error("NewSimulator accepted ReadRate 1.5")
	}
	if got := (Config{LogStructured: true, Fault: &fault.Config{ReadRate: 0.1}}).Name(); got != "LS+faults" {
		t.Errorf("Name = %q, want LS+faults", got)
	}
	if got := (Config{LogStructured: true, Fault: &fault.Config{}}).Name(); got != "LS" {
		t.Errorf("Name with disabled injector = %q, want LS", got)
	}
}
