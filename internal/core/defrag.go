package core

import (
	"fmt"

	"smrseek/internal/geom"
)

// DefragConfig parameterizes opportunistic defragmentation (Algorithm 1).
// The paper suggests both gates: "defragmenting only regions with N or
// more fragments, or waiting until a fragmented range has been accessed
// k or more times" (§IV-A).
type DefragConfig struct {
	// MinFragments is the minimum dynamic fragmentation of a read before
	// it is eligible for write-back. Must be at least 2 (an unfragmented
	// read has nothing to defragment).
	MinFragments int
	// MinAccesses is how many times a fragmented range must be read
	// before it is written back. 1 defragments on first sight.
	MinAccesses int
}

// DefaultDefragConfig defragments any fragmented read on first access,
// the paper's base policy (Algorithm 1 has no gates).
func DefaultDefragConfig() DefragConfig {
	return DefragConfig{MinFragments: 2, MinAccesses: 1}
}

// Validate reports configuration errors. NewDefragmenter clamps
// out-of-range gates for direct construction, but a simulation Config
// carrying nonsense gates almost certainly meant something else, so the
// pipeline fails fast instead.
func (c DefragConfig) Validate() error {
	if c.MinFragments < 2 {
		return fmt.Errorf("core: defrag MinFragments %d, want >= 2 (an unfragmented read has nothing to defragment)", c.MinFragments)
	}
	if c.MinAccesses < 1 {
		return fmt.Errorf("core: defrag MinAccesses %d, want >= 1", c.MinAccesses)
	}
	return nil
}

// Defragmenter decides, per fragmented read, whether to rewrite the read
// range at the log head, and tracks access counts for the k-access gate.
type Defragmenter struct {
	cfg DefragConfig
	// accesses counts fragmented reads per exact read extent. Reset on
	// write-back (the rewritten range is contiguous again).
	accesses map[extKey]int

	writebacks  int64
	writtenBack int64 // sectors rewritten
	suppressed  int64 // fragmented reads below a gate
}

// NewDefragmenter returns a defragmenter with the given configuration;
// out-of-range gates are clamped to their minimums.
func NewDefragmenter(cfg DefragConfig) *Defragmenter {
	if cfg.MinFragments < 2 {
		cfg.MinFragments = 2
	}
	if cfg.MinAccesses < 1 {
		cfg.MinAccesses = 1
	}
	return &Defragmenter{cfg: cfg, accesses: make(map[extKey]int)}
}

// ShouldDefrag records one fragmented read of the extent (with the given
// dynamic fragmentation) and reports whether the range should now be
// written back to the log head.
func (d *Defragmenter) ShouldDefrag(lba geom.Extent, fragments int) bool {
	if fragments < d.cfg.MinFragments {
		d.suppressed++
		return false
	}
	k := keyOf(lba)
	d.accesses[k]++
	if d.accesses[k] < d.cfg.MinAccesses {
		d.suppressed++
		return false
	}
	delete(d.accesses, k) // range becomes contiguous; start over
	return true
}

// NoteWriteback records that a write-back of n sectors was performed.
func (d *Defragmenter) NoteWriteback(sectors int64) {
	d.writebacks++
	d.writtenBack += sectors
}

// Writebacks returns the number of defragmentation write-backs issued.
func (d *Defragmenter) Writebacks() int64 { return d.writebacks }

// WrittenBackSectors returns the total sectors rewritten by defrag.
func (d *Defragmenter) WrittenBackSectors() int64 { return d.writtenBack }

// Suppressed returns the number of fragmented reads a gate filtered out.
func (d *Defragmenter) Suppressed() int64 { return d.suppressed }
