package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"smrseek/internal/journal"
	"smrseek/internal/server"
	"smrseek/internal/volume"
)

// FollowerConfig tunes a replication follower.
type FollowerConfig struct {
	// Root is the local journal root directory; the fencing-epoch file
	// lives here.
	Root string
	// Source is the primary's address.
	Source string
	// Configs are the volume configurations to open at promotion. Their
	// JournalDir fields name the local per-volume journal directories the
	// pull loops fill; every config must have one.
	Configs []volume.Config
	// Retry is the pause after a pull error before redialing
	// (0 = 100ms).
	Retry time.Duration
	// SyncTimeout, ForceSealEvery, TailWait, Peers and PollEvery carry
	// into the Primary this node becomes at promotion.
	SyncTimeout    time.Duration
	ForceSealEvery time.Duration
	TailWait       time.Duration
	Peers          []string
	PollEvery      time.Duration
	// Logf receives replication diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Follower implements server.ReplHooks for the catching-up side: it
// pulls sealed journal chunks from the source, verifies each received
// prefix before persisting it, acks its applied position, and — on
// Promote — recovers the replicated journals with full verification and
// becomes the serving primary at a bumped fencing epoch.
type Follower struct {
	cfg FollowerConfig

	mu       sync.Mutex
	pos      map[string]server.ReplPosition // verified, applied positions
	epoch    uint64                         // highest epoch seen from the source
	rejects  int64                          // chunks rejected by verification
	prim      *Primary        // non-nil once promoted
	srv       *server.Server  // for SetManager at promotion
	mgr       *volume.Manager // owned after promotion
	promoting bool            // a Promote is in flight (mu drops to quiesce)
	promoDone chan struct{}   // closed when that Promote finishes
	promoErr  error           // sticky promotion failure

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewFollower loads the persisted epoch and returns a follower; Start
// launches the pull loops.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Retry <= 0 {
		cfg.Retry = 100 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	for _, vc := range cfg.Configs {
		if vc.JournalDir == "" {
			return nil, fmt.Errorf("repl: follower volume %q has no journal directory", vc.Name)
		}
		if err := os.MkdirAll(vc.JournalDir, 0o777); err != nil {
			return nil, err
		}
	}
	epoch, err := LoadEpoch(cfg.Root)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Follower{
		cfg:    cfg,
		pos:    make(map[string]server.ReplPosition),
		epoch:  epoch,
		ctx:    ctx,
		cancel: cancel,
	}, nil
}

// AttachServer gives the follower the server to install the recovered
// volume set into at promotion.
func (f *Follower) AttachServer(s *server.Server) { f.srv = s }

// Start launches one pull loop per volume.
func (f *Follower) Start() {
	for _, vc := range f.cfg.Configs {
		f.wg.Add(1)
		go f.pull(vc.Name, vc.JournalDir)
	}
}

// Close stops the pull loops (and the promoted primary, if any). It
// does not close the promoted volume manager: the caller owns volume
// shutdown ordering, via Manager.
func (f *Follower) Close() {
	f.cancel()
	f.wg.Wait()
	f.mu.Lock()
	prim := f.prim
	f.mu.Unlock()
	if prim != nil {
		prim.Close()
	}
}

// Manager returns the volume set opened at promotion (nil before).
func (f *Follower) Manager() *volume.Manager {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mgr
}

// Rejects returns how many shipped chunks verification refused.
func (f *Follower) Rejects() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rejects
}

// promoted returns the post-promotion primary, or nil.
func (f *Follower) promoted() *Primary {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.prim
}

// Role reports "follower" with the verified applied positions, or the
// promoted primary's role.
func (f *Follower) Role() server.RoleInfo {
	if p := f.promoted(); p != nil {
		return p.Role()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	vols := make(map[string]server.ReplPosition, len(f.pos))
	for name, pos := range f.pos {
		vols[name] = pos
	}
	return server.RoleInfo{Role: "follower", Epoch: f.epoch, Volumes: vols}
}

// Epoch returns the highest fencing epoch this node has seen or been
// promoted to.
func (f *Follower) Epoch() uint64 {
	if p := f.promoted(); p != nil {
		return p.Epoch()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// AcceptingData is false until promotion.
func (f *Follower) AcceptingData() bool {
	p := f.promoted()
	return p != nil && p.AcceptingData()
}

// GateWrite delegates to the promoted primary (no-op before promotion:
// an unpromoted follower serves no writes).
func (f *Follower) GateWrite(vol string, seq int64) {
	if p := f.promoted(); p != nil {
		p.GateWrite(vol, seq)
	}
}

// WaitTail delegates to the promoted primary; before promotion it
// returns immediately (OpTail degenerates to OpShip, and an unpromoted
// follower has no open volumes to ship from anyway).
func (f *Follower) WaitTail(ctx context.Context, vol string, gen uint64, off int64) {
	if p := f.promoted(); p != nil {
		p.WaitTail(ctx, vol, gen, off)
	}
}

// Ack delegates to the promoted primary and is dropped before
// promotion.
func (f *Follower) Ack(vol string, gen uint64, off int64) {
	if p := f.promoted(); p != nil {
		p.Ack(vol, gen, off)
	}
}

// Promote turns this follower into the serving primary: it stops the
// pull loops, bumps and persists the fencing epoch, opens every volume
// over the replicated journal directories — verified recovery, the same
// path crash recovery takes — installs the set into the server, and
// starts serving. Idempotent once promoted; a failed promotion is
// sticky (the pull loops are gone and the journals may be half-opened).
func (f *Follower) Promote() (server.RoleInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.promoting {
		// Another connection is mid-promotion; wait for its outcome.
		done := f.promoDone
		f.mu.Unlock()
		<-done
		f.mu.Lock()
	}
	if f.prim != nil {
		return f.prim.Role(), nil
	}
	if f.promoErr != nil {
		return server.RoleInfo{}, f.promoErr
	}
	f.promoting = true
	f.promoDone = make(chan struct{})
	defer func() {
		f.promoting = false
		close(f.promoDone)
	}()

	// Quiesce the pull loops so nothing appends to the journal files
	// while recovery reads them.
	f.cancel()
	f.mu.Unlock()
	f.wg.Wait()
	f.mu.Lock()

	if err := StoreEpoch(f.cfg.Root, f.epoch+1); err != nil {
		f.promoErr = fmt.Errorf("repl: promote: %w", err)
		return server.RoleInfo{}, f.promoErr
	}
	f.epoch++

	prim, err := NewPrimary(PrimaryConfig{
		Root:           f.cfg.Root,
		SyncTimeout:    f.cfg.SyncTimeout,
		ForceSealEvery: f.cfg.ForceSealEvery,
		TailWait:       f.cfg.TailWait,
		Peers:          f.cfg.Peers,
		PollEvery:      f.cfg.PollEvery,
		Logf:           f.cfg.Logf,
	})
	if err != nil {
		f.promoErr = fmt.Errorf("repl: promote: %w", err)
		return server.RoleInfo{}, f.promoErr
	}
	cfgs := make([]volume.Config, len(f.cfg.Configs))
	for i, vc := range f.cfg.Configs {
		vc.OnSeal = prim.OnSeal(vc.Name)
		cfgs[i] = vc
	}
	mgr, err := volume.OpenAll(cfgs...)
	if err != nil {
		prim.Close()
		f.promoErr = fmt.Errorf("repl: promote: verified recovery failed: %w", err)
		return server.RoleInfo{}, f.promoErr
	}
	prim.AttachManager(mgr)
	f.mgr = mgr
	f.prim = prim
	if f.srv != nil {
		f.srv.SetManager(mgr)
	}
	f.cfg.Logf("repl: promoted to primary at epoch %d (%d volumes recovered)", f.epoch, len(cfgs))
	return prim.Role(), nil
}

// pull is one volume's replication loop: scan the local journal state,
// long-poll the source for the next chunk past it, verify, persist,
// ack, repeat.
func (f *Follower) pull(name, dir string) {
	defer f.wg.Done()
	var c *server.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	var (
		raw []byte // verified local journal bytes (sealed prefix)
		pos server.ReplPosition
	)
	scanned := false
	for f.ctx.Err() == nil {
		if c == nil {
			var err error
			c, err = server.DialContext(f.ctx, f.cfg.Source)
			if err != nil {
				f.sleep()
				continue
			}
			// Pull handles its own redial; Step-level reconnection would
			// only hide source death.
			c.SetReconnect(server.ReconnectPolicy{})
		}
		if !scanned {
			var err error
			pos, raw, err = f.scanLocal(dir)
			if err != nil {
				f.cfg.Logf("repl: %s: local journal state unusable: %v", name, err)
				return
			}
			f.setPos(name, pos)
			scanned = true
		}
		epoch, chunk, err := c.Tail(name, pos.Gen, pos.Bytes)
		if err != nil {
			var se *server.StatusError
			if errors.As(err, &se) {
				// The source is alive but cannot feed us right now — it is
				// fenced, demoted, or sees us as ahead. Keep polling: chaos
				// heals partitions and a fenced source may be all we have.
				f.sleep()
				continue
			}
			c.Close()
			c = nil
			f.sleep()
			continue
		}
		f.observeEpoch(epoch)
		switch chunk.Kind {
		case journal.ShipNone:
			// The long poll expired with nothing new; ask again.
		case journal.ShipCheckpoint:
			newPos, err := f.applyCheckpoint(dir, chunk)
			if err != nil {
				f.reject(name, err)
				continue
			}
			raw, pos = nil, newPos
			f.setPos(name, pos)
			_ = c.Ack(name, pos.Gen, pos.Bytes)
		case journal.ShipSegments:
			newRaw, newPos, err := f.applySegments(dir, raw, pos, chunk)
			if err != nil {
				f.reject(name, err)
				continue
			}
			raw, pos = newRaw, newPos
			f.setPos(name, pos)
			_ = c.Ack(name, pos.Gen, pos.Bytes)
		default:
			f.reject(name, fmt.Errorf("unknown ship kind %d", chunk.Kind))
		}
	}
}

// scanLocal reads the volume's local journal directory and returns the
// verified position to resume pulling from, truncating crash residue
// (a torn tail past the last seal) first.
func (f *Follower) scanLocal(dir string) (server.ReplPosition, []byte, error) {
	snap, err := journal.ReadCheckpointFile(journal.CheckpointPath(dir))
	if err != nil {
		return server.ReplPosition{}, nil, err
	}
	raw, err := os.ReadFile(journal.JournalPath(dir))
	if os.IsNotExist(err) {
		if snap != nil {
			return server.ReplPosition{Gen: snap.Generation + 1}, nil, nil
		}
		return server.ReplPosition{}, nil, nil
	}
	if err != nil {
		return server.ReplPosition{}, nil, err
	}
	d, err := journal.ScanBytes(raw)
	if err != nil {
		return server.ReplPosition{}, nil, err
	}
	if snap != nil && d.Generation <= snap.Generation {
		// Stale pre-checkpoint generation (crash between checkpoint
		// install and journal removal): subsumed, discard it.
		if err := os.Remove(journal.JournalPath(dir)); err != nil {
			return server.ReplPosition{}, nil, err
		}
		return server.ReplPosition{Gen: snap.Generation + 1}, nil, nil
	}
	end := journal.SealedEndOf(d)
	if end < int64(len(raw)) {
		// A crash mid-append left bytes past the last verified seal; we
		// only ack sealed bytes, so drop them and re-pull.
		if err := os.Truncate(journal.JournalPath(dir), end); err != nil {
			return server.ReplPosition{}, nil, err
		}
		raw = raw[:end]
	}
	return server.ReplPosition{Gen: d.Generation, Bytes: end, Records: d.Sealed}, raw, nil
}

// applyCheckpoint verifies and durably installs a shipped checkpoint,
// discarding the subsumed local journal, and returns the position to
// resume at: generation ckpt+1, offset 0.
func (f *Follower) applyCheckpoint(dir string, chunk journal.ShipChunk) (server.ReplPosition, error) {
	snap, err := journal.ReadCheckpoint(bytes.NewReader(chunk.Data))
	if err != nil {
		return server.ReplPosition{}, fmt.Errorf("shipped checkpoint does not verify: %w", err)
	}
	if snap.Generation != chunk.Gen {
		return server.ReplPosition{}, fmt.Errorf("shipped checkpoint generation %d, chunk says %d", snap.Generation, chunk.Gen)
	}
	if err := writeFileAtomic(journal.CheckpointPath(dir), chunk.Data); err != nil {
		return server.ReplPosition{}, err
	}
	if err := os.Remove(journal.JournalPath(dir)); err != nil && !os.IsNotExist(err) {
		return server.ReplPosition{}, err
	}
	return server.ReplPosition{Gen: snap.Generation + 1}, nil
}

// applySegments verifies a shipped byte range as the continuation of
// the local sealed prefix and persists it. The whole resulting prefix
// is re-verified — every frame CRC, every Merkle root, the seal chain,
// and the linkage to the local checkpoint — before any byte reaches
// disk; a chunk that fails is rejected without side effects.
func (f *Follower) applySegments(dir string, raw []byte, pos server.ReplPosition, chunk journal.ShipChunk) ([]byte, server.ReplPosition, error) {
	var candidate []byte
	fresh := chunk.Off == 0
	if fresh {
		candidate = chunk.Data
	} else {
		if chunk.Gen != pos.Gen || chunk.Off != pos.Bytes {
			return nil, pos, fmt.Errorf("chunk at (gen %d, off %d), local position (gen %d, off %d)",
				chunk.Gen, chunk.Off, pos.Gen, pos.Bytes)
		}
		candidate = make([]byte, 0, int64(len(chunk.Data))+pos.Bytes)
		candidate = append(candidate, raw[:pos.Bytes]...)
		candidate = append(candidate, chunk.Data...)
	}
	d, err := journal.ScanBytes(candidate)
	if err != nil {
		return nil, pos, fmt.Errorf("shipped prefix does not verify: %w", err)
	}
	if d.Torn || journal.SealedEndOf(d) != int64(len(candidate)) {
		return nil, pos, fmt.Errorf("shipped chunk does not end on a seal boundary")
	}
	if d.Generation != chunk.Gen {
		return nil, pos, fmt.Errorf("shipped header generation %d, chunk says %d", d.Generation, chunk.Gen)
	}
	snap, err := journal.ReadCheckpointFile(journal.CheckpointPath(dir))
	if err != nil {
		return nil, pos, err
	}
	switch {
	case snap == nil && !d.Anchor.IsZero():
		return nil, pos, fmt.Errorf("shipped journal anchors at %s with no local checkpoint", d.Anchor.Short())
	case snap != nil && d.Generation != snap.Generation+1:
		return nil, pos, fmt.Errorf("shipped generation %d does not succeed local checkpoint %d",
			d.Generation, snap.Generation)
	case snap != nil && d.Anchor != snap.Chain:
		return nil, pos, fmt.Errorf("shipped anchor %s does not match local checkpoint chain %s",
			d.Anchor.Short(), snap.Chain.Short())
	}

	if fresh {
		if err := writeFileAtomic(journal.JournalPath(dir), candidate); err != nil {
			return nil, pos, err
		}
	} else {
		if err := appendAt(journal.JournalPath(dir), chunk.Off, chunk.Data); err != nil {
			return nil, pos, err
		}
	}
	return candidate, server.ReplPosition{
		Gen:     d.Generation,
		Bytes:   int64(len(candidate)),
		Records: d.Sealed,
	}, nil
}

// appendAt writes data at byte offset off of path and fsyncs.
func appendAt(path string, off int64, data []byte) error {
	fd, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer fd.Close()
	if _, err := fd.WriteAt(data, off); err != nil {
		return err
	}
	return fd.Sync()
}

// reject logs and counts a chunk that verification refused.
func (f *Follower) reject(name string, err error) {
	f.mu.Lock()
	f.rejects++
	f.mu.Unlock()
	f.cfg.Logf("repl: %s: rejected shipped chunk: %v", name, err)
	f.sleep()
}

// setPos publishes a volume's verified applied position.
func (f *Follower) setPos(name string, pos server.ReplPosition) {
	f.mu.Lock()
	f.pos[name] = pos
	f.mu.Unlock()
}

// observeEpoch adopts a higher fencing epoch seen from the source,
// persisting it so a restart cannot regress.
func (f *Follower) observeEpoch(epoch uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if epoch > f.epoch {
		if err := StoreEpoch(f.cfg.Root, epoch); err != nil {
			f.cfg.Logf("repl: persisting epoch %d: %v", epoch, err)
			return
		}
		f.epoch = epoch
	}
}

// sleep pauses the pull loop for the retry interval (or until Close).
func (f *Follower) sleep() {
	select {
	case <-f.ctx.Done():
	case <-time.After(f.cfg.Retry):
	}
}
