package band

import (
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// FuzzBandAllocator drives the banded device with an arbitrary byte
// stream decoded into host ops, under a fuzzer-chosen geometry and
// policy, and checks the allocator's structural invariants after every
// operation: no physical overlap between live redirections, fill/live
// accounting exact, dirty set consistent with the mappings, every
// mapping below its band's write pointer.
func FuzzBandAllocator(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), uint8(2))
	f.Add([]byte{9, 200, 31, 7, 200, 31, 7, 200, 31}, uint8(1), uint8(1))
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248}, uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, polByte, geo uint8) {
		pol := Policy(polByte % 3)
		// Small geometries so a few ops reach the cleaning paths:
		// bands of 32..128 sectors, 2..4 cache units of half a band.
		bandSize := int64(32) << (geo % 3)
		units := int64(2 + geo%3)
		d, err := New(Config{
			BandSectors:    bandSize,
			CacheSectors:   units * bandSize / 2,
			UnitSectors:    bandSize / 2,
			DataSectors:    64 * bandSize,
			Policy:         pol,
			ShelterSectors: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+3 <= len(ops); i += 3 {
			kind := disk.Read
			if ops[i]&1 == 0 {
				kind = disk.Write
			}
			start := (int64(ops[i]>>1) | int64(ops[i+1])<<7) % (64 * bandSize)
			count := 1 + int64(ops[i+2])%(2*bandSize)
			if _, err := d.TryDo(kind, geom.Ext(start, count)); err != nil {
				t.Fatalf("op %d: %v", i/3, err)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("op %d (%s %d+%d, pol %v): %v", i/3, kind, start, count, pol, err)
			}
		}
	})
}
