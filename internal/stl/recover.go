package stl

import (
	"fmt"
	"os"
	"time"

	"smrseek/internal/extmap"
	"smrseek/internal/journal"
)

// Snapshot captures the layer's durable state — extent map, frontier,
// written-sector counter — as a checkpoint snapshot. The mapping slice
// is a copy; the live map is untouched.
func (l *LS) Snapshot() journal.Snapshot {
	ms := make([]extmap.Mapping, 0, l.m.Len())
	l.m.Walk(func(m extmap.Mapping) bool {
		ms = append(ms, m)
		return true
	})
	return journal.Snapshot{Frontier: l.frontier, Written: l.written, Mappings: ms}
}

// ReplayStats describes what recovery found and did.
type ReplayStats struct {
	// FromCheckpoint reports that a checkpoint seeded the state.
	FromCheckpoint bool
	// Replayed is the number of complete journal records applied on top
	// of the checkpoint (or the journal's initial state).
	Replayed int64
	// ReplayedSectors is the sectors those records appended to the log.
	ReplayedSectors int64
	// TornTail reports that the journal ended in a torn or corrupt
	// record, which was discarded — the expected signature of a crash
	// mid-append.
	TornTail bool
	// Generation is the journal generation recovery ended on.
	Generation uint64
	// Verified reports that the seal chain and checkpoint linkage were
	// checked before replay (RecoverOptions.VerifyOnRecover).
	Verified bool
	// SealedSegments is the number of verified seals, when Verified.
	SealedSegments int
	// Workers is the verification worker count the scans ran with (only
	// set by RecoverDirWith; 0 from a bare Recover).
	Workers int
	// JournalBytes is the size of the journal file that was scanned, for
	// throughput reporting (0 when no journal file existed).
	JournalBytes int64
	// Elapsed is the wall-clock duration of RecoverDirWith, including
	// verification, load and replay. Zero it before comparing stats
	// across runs.
	Elapsed time.Duration
}

// RecoverOptions controls directory recovery.
type RecoverOptions struct {
	// VerifyOnRecover runs journal.VerifyDir before replay: every frame
	// CRC, every segment's Merkle root, the seal chain, and the
	// checkpoint⇄journal anchor linkage. Recovery then refuses a
	// directory with damage inside the sealed region (journal.ErrCorrupt,
	// with segment and offset) instead of silently truncating it to a
	// "torn tail". Torn tails — damage past the last seal with no sealed
	// data beyond it — still recover to the verified prefix.
	VerifyOnRecover bool
	// Workers bounds the pool verifying sealed segments concurrently
	// during the scans (journal.ScanBytesWorkers): <= 0 means
	// journal.DefaultRecoveryWorkers (GOMAXPROCS), 1 scans inline. The
	// recovered layer and stats are bit-identical at any count.
	Workers int
}

// Recover rebuilds a log-structured layer from a checkpoint snapshot
// (may be nil: journal-only recovery) and a parsed journal. Records are
// replayed in order through the same insert path live writes take, so
// the recovered extent map, frontier and written-sector counter are
// bit-identical to the layer that produced them.
//
// The write-ahead discipline makes this exact: a mutation is applied
// only after its record is acknowledged, so the live state at crash
// time is precisely the state after replaying every complete record —
// the torn tail, if any, was never applied.
func Recover(snap *journal.Snapshot, d journal.Data) (*LS, ReplayStats, error) {
	var st ReplayStats
	l := &LS{m: extmap.NewCoalesced()}
	if snap != nil {
		st.FromCheckpoint = true
		l.frontier = snap.Frontier
		l.written = snap.Written
		for _, m := range snap.Mappings {
			l.m.Insert(m.Lba, m.Pba)
		}
	} else {
		l.frontier = d.InitFrontier
	}
	st.TornTail = d.Torn
	st.Generation = d.Generation
	for i, rec := range d.Records {
		switch rec.Kind {
		case journal.RecWrite, journal.RecRelocate:
			// The record's placement must be the replay frontier: LS
			// appends at the frontier and journals before mutating, so a
			// divergence means the journal does not belong to this
			// checkpoint (or the pair was tampered with) — refuse rather
			// than build a plausible-but-wrong map.
			if rec.Pba != l.frontier {
				return nil, st, fmt.Errorf(
					"stl: record %d places %v at pba %d but the replay frontier is %d (checkpoint/journal mismatch?)",
					i, rec.Lba, rec.Pba, l.frontier)
			}
			l.m.Insert(rec.Lba, rec.Pba)
			l.frontier += rec.Lba.Count
			l.written += rec.Lba.Count
			st.ReplayedSectors += rec.Lba.Count
		case journal.RecFrontier:
			l.frontier = rec.Pba
		default:
			return nil, st, fmt.Errorf("stl: record %d has unknown kind %d", i, rec.Kind)
		}
		st.Replayed++
	}
	if err := l.m.CheckInvariants(); err != nil {
		return nil, st, fmt.Errorf("stl: recovered map is corrupt: %w", err)
	}
	return l, st, nil
}

// RecoverDir recovers from a journal directory as left by a crash: the
// checkpoint (if any) plus the journal replayed on top, honouring the
// generation rule that discards a stale journal. It does not verify the
// seal chain; use RecoverDirWith for verified recovery.
func RecoverDir(dir string) (*LS, ReplayStats, error) {
	return RecoverDirWith(dir, RecoverOptions{})
}

// RecoverDirWith is RecoverDir with options. With VerifyOnRecover set
// it audits the directory first and refuses to recover from one whose
// sealed history does not verify — the caller gets the *CorruptError
// (matching journal.ErrCorrupt) naming the damaged file, segment and
// offset. Note LoadDir itself also surfaces sealed-region damage; the
// verify pass adds the checkpoint-linkage checks (anchor and generation
// succession) that replay alone cannot see.
func RecoverDirWith(dir string, opt RecoverOptions) (*LS, ReplayStats, error) {
	start := time.Now()
	workers := opt.Workers
	if workers <= 0 {
		workers = journal.DefaultRecoveryWorkers()
	}
	var audit *journal.Audit
	if opt.VerifyOnRecover {
		a, err := journal.VerifyDirWorkers(dir, workers)
		if err != nil {
			return nil, ReplayStats{}, err
		}
		audit = a
	}
	snap, d, err := journal.LoadDirWorkers(dir, workers)
	if err != nil {
		return nil, ReplayStats{}, err
	}
	l, st, err := Recover(snap, d)
	if audit != nil {
		st.Verified = true
		st.SealedSegments = len(audit.Segments)
	}
	st.Workers = workers
	if fi, serr := os.Stat(journal.JournalPath(dir)); serr == nil {
		st.JournalBytes = fi.Size()
	}
	st.Elapsed = time.Since(start)
	return l, st, err
}
