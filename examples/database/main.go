// Database example: the paper's §III "sequential read after random
// write" thought experiment, built by hand against the public API.
//
// A 256 MB table file receives a burst of small random updates (the
// B-tree page writes of an OLTP phase), then an analytics phase scans it
// end-to-end N times. Under update-in-place the scans are free; under
// log-structured translation every scan re-pays one seek per relocated
// page — an N-fold amplification — until a mechanism intervenes.
package main

import (
	"fmt"
	"log"

	"smrseek"
)

const (
	tableSectors = 512 * 1024 // 256 MB table
	pageSectors  = 8          // 4 KB pages
	updates      = 2000
	scanPasses   = 5
	chunkSectors = 2048 // 1 MB scan I/Os
)

func main() {
	var recs []smrseek.Record
	t := int64(0)
	emit := func(kind smrseek.OpKind, lba, n int64) {
		recs = append(recs, smrseek.Record{Time: t, Kind: kind, Extent: smrseek.Extent{Start: lba, Count: n}})
		t += 1_000_000
	}

	// Load phase: the table is written sequentially.
	for off := int64(0); off < tableSectors; off += chunkSectors {
		emit(smrseek.Write, off, chunkSectors)
	}
	// OLTP phase: random page updates (deterministic LCG so the example
	// is reproducible).
	seed := uint64(1)
	for i := 0; i < updates; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		page := int64(seed % uint64(tableSectors/pageSectors))
		emit(smrseek.Write, page*pageSectors, pageSectors)
	}
	// Analytics phase: N full sequential scans.
	for pass := 0; pass < scanPasses; pass++ {
		for off := int64(0); off < tableSectors; off += chunkSectors {
			emit(smrseek.Read, off, chunkSectors)
		}
	}

	cmp, err := smrseek.ComparePaper(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d-sector table, %d random updates, %d scan passes\n",
		int64(tableSectors), updates, scanPasses)
	fmt.Printf("NoLS baseline: %d read seeks, %d write seeks\n",
		cmp.Baseline.Disk.ReadSeeks, cmp.Baseline.Disk.WriteSeeks)
	for _, v := range cmp.Variants {
		fmt.Printf("%-14s total SAF %6.2f   (read seeks %7d, cache hits %7d, defrag writebacks %5d)\n",
			v.Name, v.Total, v.Stats.Disk.ReadSeeks, v.Stats.CacheHits, v.Stats.DefragWritebacks)
	}

	// The 64 MB paper cache gets ZERO hits here: the scans' fragment
	// working set is the whole 256 MB table, and a sequential scan over a
	// larger-than-cache set is LRU's worst case — the same reason caching
	// is not the winner for usr_1 and src2_2 in the paper's Figure 11.
	// Size the cache past the working set and it wins outright:
	big := smrseek.CacheConfig{CapacityBytes: 512 << 20}
	cmp2, err := smrseek.Compare(recs, smrseek.Config{LogStructured: true, Cache: &big})
	if err != nil {
		log.Fatal(err)
	}
	v := cmp2.Variants[0]
	fmt.Printf("%-14s total SAF %6.2f   (read seeks %7d, cache hits %7d)  <- 512 MB cache\n",
		v.Name, v.Total, v.Stats.Disk.ReadSeeks, v.Stats.CacheHits)

	fmt.Println()
	fmt.Println("Log structuring makes each scan pass re-pay the update fragmentation.")
	fmt.Println("Defragmentation repairs it after the first pass; prefetching helps only")
	fmt.Println("where fragments are physically close; selective caching needs the fragment")
	fmt.Println("working set to fit — 64 MB thrashes on this table, 512 MB absorbs it.")
}
