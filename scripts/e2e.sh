#!/bin/sh
# End-to-end smoke for the smrd service: build the real binaries, start
# the daemon on an ephemeral port, drive it with smrload over several
# connections, and shut it down cleanly. Exercises the whole stack —
# wire protocol, volume actors, backpressure path, graceful shutdown —
# exactly the way an operator would.
#
# Run from the repo root: scripts/e2e.sh
set -eu

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/smrd" ./cmd/smrd
go build -o "$work/smrload" ./cmd/smrload

"$work/smrd" -listen 127.0.0.1:0 -volumes "a,b=defrag+cache" \
	-journal-dir "$work/journal" >"$work/smrd.log" 2>&1 &
pid=$!

# The daemon prints its bound address once the listener is up.
addr=
for _ in $(seq 1 100); do
	addr=$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$work/smrd.log")
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || { cat "$work/smrd.log"; exit 1; }
	sleep 0.1
done
[ -n "$addr" ] || { echo "smrd never listened"; cat "$work/smrd.log"; exit 1; }

"$work/smrload" -addr "$addr" -volumes a,b -workload w91 -scale 0.05 -conns 4

# Graceful shutdown must drain, checkpoint and print the summary table.
kill -TERM "$pid"
wait "$pid"
grep -q "per-volume summary" "$work/smrd.log" || {
	echo "no shutdown summary"; cat "$work/smrd.log"; exit 1
}
# Journaled volumes must leave a checkpoint behind.
[ -f "$work/journal/a/checkpoint.ckpt" ] || {
	echo "no checkpoint for volume a"; ls "$work/journal/a" || true; exit 1
}
echo "e2e ok ($addr)"
