package main

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"smrseek/internal/geom"
	"smrseek/internal/server"
)

// syncBuffer is a goroutine-safe output sink the test can poll while
// run() is live on another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// startDaemon runs smrd on a background goroutine and waits for its
// listen address. The returned stop function shuts it down and returns
// run's error.
func startDaemon(t *testing.T, out *syncBuffer, args ...string) (addr string, stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, out) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-errc:
			cancel()
			t.Fatalf("smrd exited before listening: %v\noutput:\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("no listen line in output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return addr, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("smrd did not shut down")
			return nil
		}
	}
}

func TestDaemonServesAndSummarizes(t *testing.T) {
	var out syncBuffer
	addr, stop := startDaemon(t, &out, "-listen", "127.0.0.1:0", "-volumes", "a,b=defrag+cache")

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Write("a", geom.Ext(geom.Sector(i*16), 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Read("b", geom.Ext(0, 8)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stat("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != 10 {
		t.Errorf("volume a writes = %d, want 10", st.Writes)
	}
	c.Close()

	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "per-volume summary") {
		t.Errorf("no summary table in output:\n%s", got)
	}
	if !strings.Contains(got, "volumes: a, b") {
		t.Errorf("listen line missing volume names:\n%s", got)
	}
}

func TestDaemonJournalRestartResumes(t *testing.T) {
	dir := t.TempDir()
	var out1 syncBuffer
	addr, stop := startDaemon(t, &out1,
		"-listen", "127.0.0.1:0", "-volumes", "dur", "-journal-dir", dir)
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := c.Write("dur", geom.Ext(geom.Sector(i*16), 8)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := stop(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// Restart on the same journal directory: state must be recovered.
	var out2 syncBuffer
	addr, stop = startDaemon(t, &out2,
		"-listen", "127.0.0.1:0", "-volumes", "dur", "-journal-dir", dir)
	if !strings.Contains(out2.String(), "volume dur recovered") {
		t.Errorf("no recovery line after restart:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), "MB/s") || !strings.Contains(out2.String(), "workers=") {
		t.Errorf("recovery line lacks duration/throughput detail:\n%s", out2.String())
	}
	c, err = server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// A read of a previously written extent resolves against recovered
	// state: exactly 1 fragment, not a hole.
	frags, err := c.Read("dur", geom.Ext(0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if frags != 1 {
		t.Errorf("read of recovered extent resolved to %d frags, want 1", frags)
	}
	c.Close()
	if err := stop(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestParseVolumesRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"", "a=bogus", "=defrag", "a,,b"} {
		if _, err := parseVolumes(spec, "", 1<<20, 0, 0, 0, 0, false, 0, geomSpec{geometry: "infinite"}); err == nil {
			t.Errorf("parseVolumes(%q) accepted a bad spec", spec)
		}
	}
	cfgs, err := parseVolumes("a, b=defrag+prefetch+cache", "/j", 1<<20, 4, 2, 100, 8, false, 2, geomSpec{geometry: "infinite"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Name != "a" || cfgs[1].Name != "b" {
		t.Fatalf("parseVolumes: %+v", cfgs)
	}
	b := cfgs[1]
	if b.Sim.Defrag == nil || b.Sim.Prefetch == nil || b.Sim.Cache == nil {
		t.Errorf("options not applied: %+v", b.Sim)
	}
	if b.JournalDir != "/j/b" || b.CheckpointEvery != 100 {
		t.Errorf("journal wiring: dir=%q every=%d", b.JournalDir, b.CheckpointEvery)
	}
	if b.RecoverWorkers != 2 {
		t.Errorf("recover workers not threaded through: %d, want 2", b.RecoverWorkers)
	}
}

func TestParseVolumesBandGeometry(t *testing.T) {
	geo := geomSpec{geometry: "band", pcache: 4096, policy: "pol-b"}
	cfgs, err := parseVolumes("a,b", "", 1<<20, 0, 0, 0, 0, false, 0, geo)
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].Sim.Device == nil || cfgs[1].Sim.Device == nil {
		t.Fatal("band geometry did not attach a device")
	}
	// Each volume must own its device: a banded device is stateful.
	if cfgs[0].Sim.Device == cfgs[1].Sim.Device {
		t.Fatal("volumes share one banded device")
	}
	if err := (geomSpec{geometry: "infinite", pcache: 1}).validate(); err == nil {
		t.Error("validate accepted -pcache without -geometry band")
	}
	if err := (geomSpec{geometry: "band", policy: "bogus"}).validate(); err == nil {
		t.Error("validate accepted a bogus policy")
	}
	if err := (geomSpec{geometry: "zoned"}).validate(); err == nil {
		t.Error("validate accepted an unknown geometry")
	}
}
