// Archival example: the log-friendly case the paper's introduction
// motivates. An ingest workload writes objects at scattered LBAs (the
// allocator's choice), and readers later fetch them in roughly the order
// they arrived (newest-first feeds, backup verification, replication).
//
// Because the reads follow the *temporal* write order, log-structured
// placement turns both writes and reads sequential: seek amplification
// drops well below 1, and — as the paper argues for archival systems that
// never clean — the SMR penalty disappears entirely.
package main

import (
	"fmt"
	"log"

	"smrseek"
)

func main() {
	const (
		objects    = 4000
		objSectors = 64             // 32 KB objects
		space      = int64(1) << 23 // 4 GB namespace
	)

	var recs []smrseek.Record
	t := int64(0)
	emit := func(kind smrseek.OpKind, lba, n int64) {
		recs = append(recs, smrseek.Record{Time: t, Kind: kind, Extent: smrseek.Extent{Start: lba, Count: n}})
		t += 1_000_000
	}

	// Ingest: objects land wherever the allocator put them.
	seed := uint64(42)
	var order []int64
	for i := 0; i < objects; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		lba := int64(seed % uint64(space-objSectors))
		order = append(order, lba)
		emit(smrseek.Write, lba, objSectors)
	}
	// Verification pass: read everything back in arrival order, twice.
	for pass := 0; pass < 2; pass++ {
		for _, lba := range order {
			emit(smrseek.Read, lba, objSectors)
		}
	}

	cmp, err := smrseek.Compare(recs, smrseek.Config{LogStructured: true})
	if err != nil {
		log.Fatal(err)
	}
	ls := cmp.Variants[0]
	fmt.Printf("archival ingest + temporal read-back (%d objects)\n", objects)
	fmt.Printf("NoLS: %d seeks   LS: %d seeks   total SAF = %.3f\n",
		cmp.Baseline.Disk.TotalSeeks(), ls.Stats.Disk.TotalSeeks(), ls.Total)
	if ls.Total < 1 {
		fmt.Println("log structuring REDUCED seeks: reads follow the temporal write order,")
		fmt.Println("so the log serves them almost sequentially — the paper's log-friendly case.")
	}
}
