package disk

import (
	"errors"
	"testing"

	"smrseek/internal/geom"
)

// scriptedChecker fails each attempt whose index appears in fail.
type scriptedChecker struct {
	n    int
	fail map[int]bool
}

var errInjected = errors.New("injected")

func (c *scriptedChecker) CheckAccess(OpKind, geom.Extent) error {
	defer func() { c.n++ }()
	if c.fail[c.n] {
		return errInjected
	}
	return nil
}

func TestTryDoFaultAccounting(t *testing.T) {
	d := New()
	d.Do(Read, geom.Ext(0, 8)) // establish head position, no seek
	d.SetFaultChecker(&scriptedChecker{fail: map[int]bool{0: true}})

	// Faulted attempt at a distant extent: the head moved (seek charged)
	// but nothing transferred.
	a, err := d.TryDo(Read, geom.Ext(10000, 8))
	if !errors.Is(err, errInjected) {
		t.Fatalf("TryDo error = %v, want injected", err)
	}
	if !a.Faulted || !a.Seeked {
		t.Errorf("access = %+v, want Faulted and Seeked", a)
	}
	c := d.Counters()
	if c.ReadOps != 2 || c.ReadSeeks != 1 || c.FaultedReads != 1 {
		t.Errorf("after fault: %+v, want 2 read ops, 1 seek, 1 faulted", c)
	}
	if c.ReadSectors != 8 {
		t.Errorf("ReadSectors = %d, want 8 (faulted attempt must not count transfer)", c.ReadSectors)
	}

	// The retry succeeds. The faulted attempt left the head past the
	// extent, so the retry seeks back — retries pay mechanical cost —
	// and the sectors are counted exactly once.
	a, err = d.TryDo(Read, geom.Ext(10000, 8))
	if err != nil || a.Faulted {
		t.Fatalf("retry = %+v, %v; want clean success", a, err)
	}
	c = d.Counters()
	if c.ReadSectors != 16 || c.ReadSeeks != 2 {
		t.Errorf("after retry: %+v, want 16 sectors and 2 seeks (head re-seeks back over the extent)", c)
	}

	// A nil checker restores fault-free behaviour, and Do folds faults
	// away without error.
	d.SetFaultChecker(nil)
	if a := d.Do(Write, geom.Ext(0, 4)); a.Faulted {
		t.Errorf("nil checker produced a faulted access: %+v", a)
	}
	if c := d.Counters(); c.FaultedWrites != 0 {
		t.Errorf("FaultedWrites = %d, want 0", c.FaultedWrites)
	}
}

func TestObserverSeesFaultedAccess(t *testing.T) {
	d := New()
	d.SetFaultChecker(&scriptedChecker{fail: map[int]bool{0: true}})
	var got []Access
	d.AddObserver(ObserverFunc(func(a Access) { got = append(got, a) }))
	d.TryDo(Write, geom.Ext(0, 8))
	if len(got) != 1 || !got[0].Faulted {
		t.Fatalf("observer saw %+v, want one faulted access", got)
	}
}

func TestRetryPenaltyInTimeModel(t *testing.T) {
	m := DefaultTimeModel()
	clean := Access{Kind: Read, Extent: geom.Ext(0, 8), Seeked: true, Distance: 1000}
	faulted := clean
	faulted.Faulted = true
	if m.RetryPenalty <= 0 {
		t.Fatal("default model has no retry penalty")
	}
	if got, want := m.AccessTime(faulted)-m.AccessTime(clean), m.RetryPenalty; got != want {
		t.Errorf("faulted access costs %v more than clean, want %v", got, want)
	}
	var zero TimeModel
	if zero.AccessTime(faulted) != zero.AccessTime(clean) {
		t.Error("zero model must not charge a retry penalty")
	}
}
