package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: smrseek/internal/extmap
cpu: whatever
BenchmarkInsert-8   	  123456	      98.5 ns/op	      24 B/op	       1 allocs/op
BenchmarkLookup-8   	  999999	      12.0 ns/op
BenchmarkSubName
PASS
ok  	smrseek/internal/extmap	1.234s
pkg: smrseek/internal/disk
BenchmarkSeekTime-8 	     500	   2000 ns/op
`

func TestParse(t *testing.T) {
	b, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if b.Goos != "linux" || b.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", b.Goos, b.Goarch)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(b.Benchmarks), b.Benchmarks)
	}
	// Sorted by pkg then name: disk first. The -GOMAXPROCS suffix is
	// stripped so baselines pair up across machines.
	first := b.Benchmarks[0]
	if first.Pkg != "smrseek/internal/disk" || first.Name != "BenchmarkSeekTime" || first.NsPerOp != 2000 {
		t.Errorf("first = %+v", first)
	}
	ins := b.Benchmarks[1]
	if ins.Name != "BenchmarkInsert" || ins.Iterations != 123456 ||
		ins.NsPerOp != 98.5 || ins.BytesPerOp != 24 || ins.AllocsPerOp != 1 {
		t.Errorf("insert = %+v", ins)
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkInsert-8":       "BenchmarkInsert",
		"BenchmarkInsert-128":     "BenchmarkInsert",
		"BenchmarkInsert":         "BenchmarkInsert",
		"BenchmarkLookup/100k-8":  "BenchmarkLookup/100k",
		"BenchmarkLookup/100k":    "BenchmarkLookup/100k",
		"BenchmarkX-":             "BenchmarkX-",
		"-8":                      "-8",
		"BenchmarkAblation/1GiB4": "BenchmarkAblation/1GiB4",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseRejectsGarbageNumbers(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-8  zzz  1.0 ns/op\n"))
	if err == nil {
		t.Error("bad iteration count accepted")
	}
}

func TestFormatCompare(t *testing.T) {
	oldB := Baseline{Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: 40},
		{Pkg: "p", Name: "BenchmarkGone-8", NsPerOp: 5},
	}}
	newB := Baseline{Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkA-8", NsPerOp: 150, AllocsPerOp: 4},
		{Pkg: "p", Name: "BenchmarkNew-8", NsPerOp: 7},
	}}
	out := FormatCompare(oldB, newB)
	for _, want := range []string{"+50.0%", "(gone", "(new)", "allocs/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	// Rows with no allocation data on either side stay ns-only.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "BenchmarkGone") && strings.Contains(line, "allocs/op") {
			t.Errorf("alloc column on a row without alloc data:\n%s", line)
		}
	}
}

func TestRegressionsGate(t *testing.T) {
	oldB := Baseline{Benchmarks: []Result{
		{Pkg: "smrseek", Name: "BenchmarkSimulatorThroughput", NsPerOp: 100},
		{Pkg: "smrseek/internal/extmap", Name: "BenchmarkInsert", NsPerOp: 100},
		{Pkg: "smrseek/internal/lru", Name: "BenchmarkAdd", NsPerOp: 100},
		{Pkg: "p", Name: "BenchmarkGone", NsPerOp: 100},
	}}
	newB := Baseline{Benchmarks: []Result{
		{Pkg: "smrseek", Name: "BenchmarkSimulatorThroughput", NsPerOp: 124}, // within gate
		{Pkg: "smrseek/internal/extmap", Name: "BenchmarkInsert", NsPerOp: 200},
		{Pkg: "smrseek/internal/lru", Name: "BenchmarkAdd", NsPerOp: 900}, // unmatched
	}}
	match := regexp.MustCompile(`BenchmarkSimulator|extmap`)

	bad := Regressions(oldB, newB, match, 25, 0)
	if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkInsert") {
		t.Errorf("Regressions = %v, want only the extmap insert", bad)
	}
	// The filter kept the lru blow-up out; without it, it gates too.
	if bad := Regressions(oldB, newB, nil, 25, 0); len(bad) != 2 {
		t.Errorf("unfiltered Regressions = %v, want 2 entries", bad)
	}
	// Nothing over a huge gate; disappeared benchmarks never gate.
	if bad := Regressions(oldB, newB, nil, 1000, 0); len(bad) != 0 {
		t.Errorf("Regressions over 1000%% gate = %v, want none", bad)
	}
}

func TestRegressionsAllocGate(t *testing.T) {
	oldB := Baseline{Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkGrew", NsPerOp: 100, AllocsPerOp: 100},
		{Pkg: "p", Name: "BenchmarkSteady", NsPerOp: 100, AllocsPerOp: 100},
		{Pkg: "p", Name: "BenchmarkWasZero", NsPerOp: 100, AllocsPerOp: 0},
	}}
	newB := Baseline{Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkGrew", NsPerOp: 100, AllocsPerOp: 140},
		{Pkg: "p", Name: "BenchmarkSteady", NsPerOp: 100, AllocsPerOp: 110},
		{Pkg: "p", Name: "BenchmarkWasZero", NsPerOp: 100, AllocsPerOp: 50},
	}}
	bad := Regressions(oldB, newB, nil, 0, 25)
	if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkGrew") || !strings.Contains(bad[0], "allocs/op") {
		t.Errorf("alloc Regressions = %v, want only BenchmarkGrew's allocs", bad)
	}
	// Both gates at once: an alloc regression and an ns regression on
	// different benchmarks are both reported.
	newB.Benchmarks[1].NsPerOp = 200
	bad = Regressions(oldB, newB, nil, 25, 25)
	if len(bad) != 2 {
		t.Errorf("combined Regressions = %v, want ns and alloc entries", bad)
	}
	// Gate 0 disables the alloc check entirely.
	if bad := Regressions(oldB, newB, nil, 0, 0); len(bad) != 0 {
		t.Errorf("disabled gates still flagged %v", bad)
	}
}
