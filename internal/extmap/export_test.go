package extmap

// CheckInvariants exposes internal invariant validation to tests.
func (t *Map) CheckInvariants() error { return t.checkInvariants() }
