package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smrseek"
)

func TestRunWorkloadAll(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2", "-all"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NoLS", "LS+defrag", "LS+prefetch", "LS+cache", "total SAF"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleVariantWithTime(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "hm_1", "-scale", "0.2", "-cache", "-time"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LS+cache results", "cache hits", "modelled seek time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	recs := smrseek.MustWorkload("ts_0").Generate(0.05)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := smrseek.WriteTrace(f, smrseek.FormatCP, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-format", "cp", "-ls"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LS results") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no workload and no trace must error")
	}
	if err := run([]string{"-workload", "x", "-trace", "y"}, &buf); err == nil {
		t.Error("both workload and trace must error")
	}
	if err := run([]string{"-workload", "bogus"}, &buf); err == nil {
		t.Error("unknown workload must error")
	}
	if err := run([]string{"-trace", "/nonexistent/file"}, &buf); err == nil {
		t.Error("missing trace file must error")
	}
	if err := run([]string{"-trace", "/dev/null", "-format", "bogus"}, &buf); err == nil {
		t.Error("unknown format must error")
	}
}

func TestRunCustomLayers(t *testing.T) {
	for _, layer := range []string{"segls", "mcache"} {
		var buf bytes.Buffer
		if err := run([]string{"-workload", "usr_0", "-scale", "0.2", "-layer", layer}, &buf); err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		if !strings.Contains(buf.String(), "results") {
			t.Errorf("%s output:\n%s", layer, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-workload", "usr_0", "-scale", "0.1", "-layer", "bogus"}, &buf); err == nil {
		t.Error("unknown layer must error")
	}
}
