package report

import (
	"bytes"
	"strings"
	"testing"

	"smrseek/internal/metrics"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("a-much-longer-name", 42)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "My Title") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "1.50") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: both rows have "value" column starting at the same offset.
	h := lines[1]
	idx := strings.Index(h, "value")
	if idx < 0 || len(lines[3]) < idx {
		t.Fatalf("alignment broken:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `q"u`)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestBar(t *testing.T) {
	s := Bar("w91", 5, 10, 20)
	if !strings.Contains(s, "w91") || !strings.Contains(s, "##########") {
		t.Errorf("Bar = %q", s)
	}
	if strings.Count(Bar("x", 20, 10, 10), "#") != 10 {
		t.Error("bar must clamp at width")
	}
	if strings.Contains(Bar("x", -5, 10, 10), "#") {
		t.Error("negative bar must be empty")
	}
	if strings.Count(Bar("x", 5, 10, 0), "#") != 20 {
		t.Error("zero width defaults to 40 (5/10 → 20 hashes)")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty series should be empty string")
	}
	s := Sparkline([]int64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Errorf("sparkline length = %d", len([]rune(s)))
	}
	if []rune(s)[0] != '▁' || []rune(s)[7] != '█' {
		t.Errorf("sparkline shape wrong: %s", s)
	}
	flat := Sparkline([]int64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Errorf("flat sparkline = %s", flat)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{500, "500 B"},
		{2048, "2.0 KiB"},
		{64 << 20, "64.0 MiB"},
		{3 << 30, "3.0 GiB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestHumanCount(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{1234567, "1,234,567"},
		{-4321, "-4,321"},
	}
	for _, c := range cases {
		if got := HumanCount(c.n); got != c.want {
			t.Errorf("HumanCount(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestResilienceTable(t *testing.T) {
	r := metrics.Resilience{
		FaultsInjected:  1500,
		TransientFaults: 1400,
		MediaFaults:     100,
		Retries:         2000,
		Recoveries:      1300,
		Unrecovered:     100,
	}
	var buf bytes.Buffer
	if err := ResilienceTable(r).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fault injection & recovery",
		"faults injected", "1,500",
		"recovery rate", "92.86%",
		"aborted relocations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Rendering is deterministic: same tallies, same bytes.
	var again bytes.Buffer
	if err := ResilienceTable(r).Render(&again); err != nil {
		t.Fatal(err)
	}
	if out != again.String() {
		t.Error("two renders of the same tallies differ")
	}
}

func TestDurabilityTable(t *testing.T) {
	d := metrics.Durability{
		JournalAppends: 12000,
		AppendRetries:  40,
		Checkpoints:    12,
		CheckpointAge:  345,
		Crashed:        true,
	}
	var buf bytes.Buffer
	if err := DurabilityTable(d).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"write-ahead journal & recovery",
		"journal appends", "12,000",
		"checkpoint age (records)", "345",
		"crashed", "true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "records replayed") {
		t.Error("recovery rows shown for a run that never recovered")
	}
	d.Recovered = true
	d.RecordsReplayed = 345
	d.TornTail = true
	buf.Reset()
	if err := DurabilityTable(d).Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"records replayed", "torn tail detected", "recovered from checkpoint"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("recovery table missing %q:\n%s", want, buf.String())
		}
	}
}
