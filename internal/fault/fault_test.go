package fault

import (
	"errors"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

func TestValidate(t *testing.T) {
	good := []Config{
		{},
		{Seed: 1, ReadRate: 0.5, WriteRate: 1, PoisonRate: 0},
		{MediaRanges: []geom.Extent{geom.Ext(100, 8)}},
		{MaxRetries: 10},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{ReadRate: -0.1},
		{WriteRate: 1.5},
		{PoisonRate: 2},
		{MaxRetries: -1},
		{MediaRanges: []geom.Extent{geom.Ext(-1, 8)}},
		{MediaRanges: []geom.Extent{geom.Ext(0, 0)}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	if !(Config{ReadRate: 0.1}).Enabled() || !(Config{MediaRanges: []geom.Extent{geom.Ext(0, 1)}}).Enabled() {
		t.Error("non-zero config must be enabled")
	}
}

// TestDeterminism: two injectors with the same seed produce identical
// fault sequences; a different seed produces a different one.
func TestDeterminism(t *testing.T) {
	mk := func(seed uint64) []bool {
		in, err := New(Config{Seed: seed, ReadRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 1000)
		for i := range out {
			out[i] = in.CheckAccess(disk.Read, geom.Ext(int64(i), 8)) != nil
		}
		return out
	}
	a, b, c := mk(42), mk(42), mk(43)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical streams")
	}
}

func TestRatesApproximate(t *testing.T) {
	in, err := New(Config{Seed: 7, ReadRate: 0.25, WriteRate: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		in.CheckAccess(disk.Read, geom.Ext(int64(i), 1))
		in.CheckAccess(disk.Write, geom.Ext(int64(i), 1))
	}
	c := in.Counters()
	if f := float64(c.TransientReads) / n; f < 0.22 || f > 0.28 {
		t.Errorf("read fault fraction %v, want ~0.25", f)
	}
	if f := float64(c.TransientWrites) / n; f < 0.72 || f > 0.78 {
		t.Errorf("write fault fraction %v, want ~0.75", f)
	}
}

func TestMediaRangesArePersistent(t *testing.T) {
	in, err := New(Config{Seed: 1, MediaRanges: []geom.Extent{geom.Ext(1000, 100)}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		err := in.CheckAccess(disk.Read, geom.Ext(1050, 8))
		if !IsMedia(err) {
			t.Fatalf("attempt %d: err = %v, want media error", i, err)
		}
		if IsTransient(err) {
			t.Fatal("media error must not be transient")
		}
	}
	// Accesses outside the range never fault (no transient rate set).
	if err := in.CheckAccess(disk.Read, geom.Ext(0, 8)); err != nil {
		t.Fatalf("outside range: %v", err)
	}
	// Writes into the range fail too (grown defect).
	if err := in.CheckAccess(disk.Write, geom.Ext(999, 2)); !IsMedia(err) {
		t.Fatalf("overlapping write: %v, want media error", err)
	}
	if got := in.Counters().MediaErrors; got != 11 {
		t.Errorf("MediaErrors = %d, want 11", got)
	}
}

func TestErrorClassification(t *testing.T) {
	e := &Error{Kind: Transient, Op: disk.Read, Extent: geom.Ext(8, 8)}
	if !IsTransient(e) || IsMedia(e) {
		t.Error("transient misclassified")
	}
	wrapped := errors.Join(errors.New("outer"), e)
	if !IsTransient(wrapped) {
		t.Error("errors.As must see through wrapping")
	}
	if IsTransient(errors.New("other")) || IsMedia(nil) {
		t.Error("non-fault errors misclassified")
	}
	if e.Error() == "" || (&Error{Kind: Media, Op: disk.Write, Extent: geom.Ext(0, 1)}).Error() == "" {
		t.Error("empty error string")
	}
}

func TestPoisoned(t *testing.T) {
	in, err := New(Config{Seed: 5, PoisonRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !in.Poisoned() {
			t.Fatal("PoisonRate 1 must always poison")
		}
	}
	if in.Counters().Poisoned != 5 {
		t.Errorf("Poisoned = %d, want 5", in.Counters().Poisoned)
	}
	off, err := New(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if off.Poisoned() {
		t.Error("zero PoisonRate must never poison")
	}
}

func TestMaxRetriesDefault(t *testing.T) {
	in, _ := New(Config{})
	if in.MaxRetries() != DefaultMaxRetries {
		t.Errorf("default MaxRetries = %d", in.MaxRetries())
	}
	in2, _ := New(Config{MaxRetries: 7})
	if in2.MaxRetries() != 7 {
		t.Errorf("MaxRetries = %d, want 7", in2.MaxRetries())
	}
}

func TestCountersTotal(t *testing.T) {
	c := Counters{TransientReads: 1, TransientWrites: 2, MediaErrors: 3, Poisoned: 4}
	if c.Total() != 10 {
		t.Errorf("Total = %d, want 10", c.Total())
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{ReadRate: -1}); err == nil {
		t.Error("New must validate")
	}
}
