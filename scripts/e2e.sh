#!/bin/sh
# End-to-end smoke for the smrd service: build the real binaries, start
# the daemon on an ephemeral port, drive it with smrload over several
# connections, and shut it down cleanly. Exercises the whole stack —
# wire protocol, volume actors, backpressure path, graceful shutdown —
# exactly the way an operator would. Then the hard part: SIGKILL the
# daemon mid-load, restart it over the same journals (verified
# recovery), and audit everything offline with smrverify — including a
# seeded-corruption run that must fail.
#
# Run from the repo root: scripts/e2e.sh
set -eu

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'kill "$pid" "${folpid:-}" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/smrd" ./cmd/smrd
go build -o "$work/smrload" ./cmd/smrload
go build -o "$work/smrverify" ./cmd/smrverify

# wait_addr LOGFILE: the daemon prints its bound address once the
# listener is up; scrape it into $addr.
wait_addr() {
	addr=
	for _ in $(seq 1 100); do
		addr=$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$1")
		[ -n "$addr" ] && break
		kill -0 "$pid" 2>/dev/null || { cat "$1"; exit 1; }
		sleep 0.1
	done
	[ -n "$addr" ] || { echo "smrd never listened"; cat "$1"; exit 1; }
}

"$work/smrd" -listen 127.0.0.1:0 -volumes "a,b=defrag+cache" \
	-journal-dir "$work/journal" >"$work/smrd.log" 2>&1 &
pid=$!
wait_addr "$work/smrd.log"

"$work/smrload" -addr "$addr" -volumes a,b -workload w91 -scale 0.05 -conns 4

# Same daemon, pipelined client: a full SMRD2 window in flight per
# connection. Success means every record completed — the driver errors
# out if any acked op is lost or any record exhausts its retries.
"$work/smrload" -addr "$addr" -volumes a,b -workload w91 -scale 0.05 -conns 4 \
	-window 32 >"$work/load1p.log" || {
	echo "pipelined load failed"; cat "$work/load1p.log"; exit 1
}
grep -q "pipelined (window 32)" "$work/load1p.log" || {
	echo "pipelined run not reported"; cat "$work/load1p.log"; exit 1
}

# Graceful shutdown must drain, checkpoint and print the summary table.
kill -TERM "$pid"
wait "$pid"
grep -q "per-volume summary" "$work/smrd.log" || {
	echo "no shutdown summary"; cat "$work/smrd.log"; exit 1
}
# Journaled volumes must leave a checkpoint behind.
[ -f "$work/journal/a/checkpoint.ckpt" ] || {
	echo "no checkpoint for volume a"; ls "$work/journal/a" || true; exit 1
}

# The journals the clean shutdown left behind must audit clean.
"$work/smrverify" "$work/journal" >"$work/audit1.log" || {
	echo "post-shutdown audit failed"; cat "$work/audit1.log"; exit 1
}

# Crash leg: restart with small segments and checkpoint intervals so the
# kill lands between seals, run load in the background, and SIGKILL the
# daemon mid-stream. No flush, no drain — whatever hit the disk is what
# recovery and the auditor get.
"$work/smrd" -listen 127.0.0.1:0 -volumes "a,b=defrag+cache" \
	-journal-dir "$work/journal" -seal-every 8 -checkpoint-every 64 \
	>"$work/smrd2.log" 2>&1 &
pid=$!
wait_addr "$work/smrd2.log"
"$work/smrload" -addr "$addr" -volumes a,b -workload w91 -scale 1.0 -conns 4 \
	>"$work/load2.log" 2>&1 &
loadpid=$!
sleep 0.4
kill -KILL "$pid"
wait "$loadpid" 2>/dev/null || true # load dies with the daemon; that's the point

# Restart over the crashed journals: recovery must verify the seal
# chains before replaying, and say so — with the parallel verification
# pipeline (-recover-workers) and the timing detail operators watch.
"$work/smrd" -listen 127.0.0.1:0 -volumes "a,b=defrag+cache" \
	-journal-dir "$work/journal" -seal-every 8 -checkpoint-every 64 \
	-recover-workers 2 >"$work/smrd3.log" 2>&1 &
pid=$!
wait_addr "$work/smrd3.log"
grep -q "verified=true" "$work/smrd3.log" || {
	echo "restart did not report verified recovery"; cat "$work/smrd3.log"; exit 1
}
grep -q "MB/s, workers=2" "$work/smrd3.log" || {
	echo "recovery line lacks duration/throughput/worker detail"; cat "$work/smrd3.log"; exit 1
}

kill -TERM "$pid"
wait "$pid"

# The post-crash, post-recovery journals must audit clean too — through
# the parallel audit core, which must agree with the sequential one.
"$work/smrverify" -j 2 "$work/journal" >"$work/audit2.log" || {
	echo "post-crash audit failed"; cat "$work/audit2.log"; exit 1
}
"$work/smrverify" "$work/journal" >"$work/audit2seq.log" || {
	echo "sequential post-crash audit failed"; cat "$work/audit2seq.log"; exit 1
}
cmp -s "$work/audit2.log" "$work/audit2seq.log" || {
	echo "parallel audit diverges from sequential audit"
	diff "$work/audit2seq.log" "$work/audit2.log" || true; exit 1
}

# Seeded corruption: truncating the checkpoint must make the audit fail
# loudly — smrverify exits non-zero and names the damage.
truncate -s -1 "$work/journal/a/checkpoint.ckpt"
if "$work/smrverify" "$work/journal" >"$work/audit3.log" 2>&1; then
	echo "smrverify passed a truncated checkpoint"; cat "$work/audit3.log"; exit 1
fi
grep -q "CORRUPT" "$work/audit3.log" || {
	echo "no CORRUPT verdict for seeded damage"; cat "$work/audit3.log"; exit 1
}

# Replication chaos leg: primary + follower over the wire, SIGKILL the
# primary mid-load. The replica-set client must fail over — promoting
# the follower with verified recovery — and finish the whole trace; the
# promoted follower's journals must then audit clean.
"$work/smrd" -listen 127.0.0.1:0 -volumes a -journal-dir "$work/prim" \
	-role primary -seal-every 8 -sync-timeout 2s \
	>"$work/prim.log" 2>&1 &
pid=$!
wait_addr "$work/prim.log"
paddr=$addr
ppid=$pid
"$work/smrd" -listen 127.0.0.1:0 -volumes a -journal-dir "$work/fol" \
	-role follower -replicate-from "$paddr" \
	>"$work/fol.log" 2>&1 &
pid=$!
folpid=$pid
wait_addr "$work/fol.log"
faddr=$addr
pid=$ppid

"$work/smrload" -addrs "$paddr,$faddr" -volumes a -workload w91 -scale 0.5 \
	-conns 2 >"$work/load3.log" 2>&1 &
loadpid=$!
sleep 0.5
kill -KILL "$ppid"
wait "$loadpid" || {
	echo "load did not survive primary failover"
	cat "$work/load3.log" "$work/fol.log"; exit 1
}
grep -q "failovers" "$work/load3.log" || {
	echo "no failover accounting in load summary"; cat "$work/load3.log"; exit 1
}
grep -q "promoted to primary" "$work/fol.log" || {
	echo "follower never promoted"; cat "$work/fol.log"; exit 1
}
# Time-to-recovery: the load summary's "ttr max" column measures how
# long the client was dark across the failover (re-elect + verified
# promotion). Log it and sanity-bound it — a promotion that takes tens
# of seconds means verification stopped overlapping shipping.
ttr=$(awk '/ops\/s/ {print $7}' "$work/load3.log")
echo "failover time-to-recovery: ${ttr:-none}"
case "$ttr" in
""|-)
	echo "no time-to-recovery in load summary"; cat "$work/load3.log"; exit 1
	;;
esac
awk -v t="$ttr" 'BEGIN {
	if (t ~ /^[0-9.]+ms$/)     ms = substr(t, 1, length(t)-2) + 0
	else if (t ~ /^[0-9.]+s$/) ms = (substr(t, 1, length(t)-1) + 0) * 1000
	else exit 1
	exit ms < 30000 ? 0 : 1
}' || {
	echo "time-to-recovery $ttr out of bounds (want < 30s)"; cat "$work/load3.log"; exit 1
}

# Graceful shutdown of the promoted follower: drain, checkpoint, audit.
pid=$folpid
kill -TERM "$folpid"
wait "$folpid"
"$work/smrverify" "$work/fol" >"$work/audit4.log" || {
	echo "promoted-follower audit failed"; cat "$work/audit4.log"; exit 1
}

# Pipelined chaos leg: the same SIGKILL-the-primary failover, but with
# a window of acked-and-in-flight requests on the wire when the primary
# dies. The pipelined driver must drain the broken window, re-elect,
# resubmit what never completed and finish the whole trace — exiting
# non-zero on any lost record.
"$work/smrd" -listen 127.0.0.1:0 -volumes a -journal-dir "$work/prim2" \
	-role primary -seal-every 8 -sync-timeout 2s \
	>"$work/prim2.log" 2>&1 &
pid=$!
wait_addr "$work/prim2.log"
paddr=$addr
ppid=$pid
"$work/smrd" -listen 127.0.0.1:0 -volumes a -journal-dir "$work/fol2" \
	-role follower -replicate-from "$paddr" \
	>"$work/fol2.log" 2>&1 &
pid=$!
folpid=$pid
wait_addr "$work/fol2.log"
faddr=$addr
pid=$ppid

"$work/smrload" -addrs "$paddr,$faddr" -volumes a -workload w91 -scale 0.5 \
	-conns 2 -window 32 >"$work/load4.log" 2>&1 &
loadpid=$!
sleep 0.5
kill -KILL "$ppid"
wait "$loadpid" || {
	echo "pipelined load did not survive primary failover"
	cat "$work/load4.log" "$work/fol2.log"; exit 1
}
grep -q "failovers" "$work/load4.log" || {
	echo "no failover accounting in pipelined load summary"; cat "$work/load4.log"; exit 1
}
grep -q "promoted to primary" "$work/fol2.log" || {
	echo "follower never promoted under pipelined load"; cat "$work/fol2.log"; exit 1
}

pid=$folpid
kill -TERM "$folpid"
wait "$folpid"
"$work/smrverify" "$work/fol2" >"$work/audit5.log" || {
	echo "pipelined-leg follower audit failed"; cat "$work/audit5.log"; exit 1
}

# Banded-geometry leg: the same daemon on the finite-disk device model.
# Small bands so the load crosses band boundaries, a persistent cache
# and a cleaning policy on every volume. The cleaning gauges must show
# up in /metrics while the daemon runs and in the shutdown summary.
"$work/smrd" -listen 127.0.0.1:0 -volumes "a,b=defrag+cache" \
	-geometry band -band-size 256 -pcache 4096 -clean-policy pol-b \
	-metrics-addr 127.0.0.1:0 >"$work/smrd4.log" 2>&1 &
pid=$!
wait_addr "$work/smrd4.log"
"$work/smrload" -addr "$addr" -volumes a,b -workload w91 -scale 0.05 -conns 2
murl=$(sed -n 's|.*metrics on \(http://[^ ]*\).*|\1|p' "$work/smrd4.log")
[ -n "$murl" ] || { echo "no metrics address in band leg"; cat "$work/smrd4.log"; exit 1; }
curl -fsS "$murl?volume=a" >"$work/band_metrics.json"
grep -Eq '"Cleaning": *\{' "$work/band_metrics.json" || {
	echo "banded /metrics lacks cleaning gauges"; cat "$work/band_metrics.json"; exit 1
}
grep -Eq '"HostWriteSectors": *0(,|$)' "$work/band_metrics.json" && {
	echo "banded /metrics never counted a host write"; cat "$work/band_metrics.json"; exit 1
}
kill -TERM "$pid"
wait "$pid"
grep -q "per-volume summary" "$work/smrd4.log" || {
	echo "no band-leg shutdown summary"; cat "$work/smrd4.log"; exit 1
}
grep -q "write amp" "$work/smrd4.log" || {
	echo "band-leg summary lacks cleaning columns"; cat "$work/smrd4.log"; exit 1
}

echo "e2e ok ($addr)"
