package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/fault"
	"smrseek/internal/journal"
	"smrseek/internal/volume"
)

// ReplHooks is the server's view of a replication node (see
// internal/repl). A nil hooks set means a standalone daemon: every data
// op is served, ship is answered from the volume's journal directly,
// tail degenerates to an immediate ship, and acks are dropped.
//
// The interface lives here (not in internal/repl) because repl imports
// this package for its client side; the server only ever calls through
// these methods.
type ReplHooks interface {
	// Role reports the node's current role, epoch and positions.
	Role() RoleInfo
	// Epoch returns the node's fencing epoch.
	Epoch() uint64
	// AcceptingData reports whether data ops (read/write/stat/...) may be
	// served: true on an unfenced primary, false on followers and on a
	// demoted ex-primary.
	AcceptingData() bool
	// GateWrite blocks until the write covering journal watermark seq on
	// vol has replicated per the node's policy, or a bounded degrade
	// window expires. Called on the connection goroutine after the write
	// executed and before its acknowledgment is sent.
	GateWrite(vol string, seq int64)
	// WaitTail blocks until vol plausibly has sealed bytes past
	// (gen, off) — force-sealing a lagging tail as needed — or a bounded
	// poll window expires. The caller then ships whatever is there.
	WaitTail(ctx context.Context, vol string, gen uint64, off int64)
	// Ack records a follower's applied position (gen, off) on vol.
	Ack(vol string, gen uint64, off int64)
	// Promote turns a follower into the serving primary (verified
	// recovery, epoch bump). Idempotent on a node that is already
	// primary.
	Promote() (RoleInfo, error)
}

// Options tunes the server; the zero value is usable.
type Options struct {
	// RequestTimeout bounds one request's execution once admitted to a
	// volume queue (0 = no bound). On expiry the client gets
	// StatusTimeout; on a v1 connection the connection is then closed
	// (its synchronous ordering guarantee no longer holds), while a v2
	// connection stays open — out-of-order completion makes the late
	// result harmless. Either way the request is still queued and will
	// execute; its result is drained and counted (see Abandoned).
	RequestTimeout time.Duration
	// MaxWindow caps the per-connection in-flight window granted to
	// SMRD2 clients (0 = DefaultMaxWindow). v1 connections are always
	// window 1.
	MaxWindow int
	// Repl attaches replication behavior (nil = standalone).
	Repl ReplHooks
	// Logf receives connection-level diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Server accepts smrd protocol connections and executes their requests
// against a volume.Manager. One goroutine per connection; each volume's
// actor serializes execution, so any number of connections is safe.
type Server struct {
	mgr  atomic.Pointer[volume.Manager]
	opts Options
	ln   net.Listener

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	abandoned atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// New builds a server over mgr and starts accepting on ln. It takes
// ownership of ln. mgr may be nil — an unpromoted follower has no open
// volumes — in which case every volume op is rejected with
// StatusNotPrimary until SetManager installs one.
func New(mgr *volume.Manager, ln net.Listener, opts Options) *Server {
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:   opts,
		ln:     ln,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
	s.mgr.Store(mgr)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// SetManager installs (or replaces) the volume set the server executes
// against. Promotion uses it to begin serving the recovered volumes.
func (s *Server) SetManager(mgr *volume.Manager) { s.mgr.Store(mgr) }

// Manager returns the currently installed volume set (nil before
// promotion on a follower).
func (s *Server) Manager() *volume.Manager { return s.mgr.Load() }

// Abandoned returns how many timed-out or shutdown-abandoned requests
// have since completed and had their results drained in the background.
func (s *Server) Abandoned() int64 { return s.abandoned.Load() }

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes every live connection and waits for the
// handlers to exit. It does NOT close the manager: the caller owns
// volume shutdown ordering (server first, then manager, so no request
// can race a closing volume).
func (s *Server) Close() error {
	s.cancel()
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.ctx.Err() == nil {
				s.opts.Logf("smrd: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	ver, window, err := serverHello(conn, s.opts.MaxWindow)
	if err != nil {
		s.opts.Logf("smrd: %s: %v", conn.RemoteAddr(), err)
		return
	}
	if ver >= Version2 {
		s.serveConnV2(conn, window)
		return
	}
	// Per-connection scratch, reused across requests: frame buffer,
	// response buffer, and the result channel handed to volume.TryDo.
	// cap 1 so a timed-out request's late result parks in the buffer
	// instead of blocking the volume actor.
	var (
		buf  []byte
		out  []byte
		done = make(chan volume.Result, 1)
	)
	for {
		frame, err := readFrame(conn, buf)
		if err != nil {
			if s.ctx.Err() == nil && !isClosedConn(err) {
				s.opts.Logf("smrd: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		buf = frame
		resp, ok := s.handle(out[:0], frame, done)
		out = resp
		if _, err := conn.Write(resp); err != nil {
			return
		}
		if !ok {
			// The request may still execute later (timeout): this
			// connection's ordering guarantee is gone, so drop it.
			return
		}
	}
}

// handle executes one request frame and appends the response to out.
// ok=false means the connection must close (and a fresh done channel
// would be needed, so the caller drops the connection instead).
func (s *Server) handle(out, frame []byte, done chan volume.Result) ([]byte, bool) {
	req, err := parseRequest(frame)
	if err != nil {
		return appendResponse(out, StatusBadRequest, []byte(err.Error())), true
	}

	// Node-level ops need no volume and are always served, whatever the
	// node's role — they are how clients discover and change the role.
	switch req.Op {
	case OpRole:
		return s.appendRole(out, s.roleInfo(), nil), true
	case OpPromote:
		if s.opts.Repl == nil {
			// A standalone daemon is trivially the primary already.
			return s.appendRole(out, s.roleInfo(), nil), true
		}
		info, err := s.opts.Repl.Promote()
		return s.appendRole(out, info, err), true
	case OpAck:
		if s.opts.Repl != nil {
			s.opts.Repl.Ack(req.Volume, req.Gen, req.Off)
		}
		return appendResponse(out, StatusOK, nil), true
	}

	mgr := s.mgr.Load()
	if mgr == nil {
		return appendResponse(out, StatusNotPrimary, []byte("node has no open volumes (unpromoted follower)")), true
	}
	if isDataOp(req.Op) && s.opts.Repl != nil && !s.opts.Repl.AcceptingData() {
		return appendResponse(out, StatusNotPrimary, []byte("node is not the serving primary")), true
	}
	vol, ok := mgr.Get(req.Volume)
	if !ok {
		return appendResponse(out, StatusUnknownVolume, []byte("unknown volume "+req.Volume)), true
	}
	var kind volume.Op
	switch req.Op {
	case OpWrite:
		kind = volume.OpWrite
	case OpRead:
		kind = volume.OpRead
	case OpStat:
		kind = volume.OpStat
	case OpSnapshot:
		kind = volume.OpSnapshot
	case OpVerify:
		kind = volume.OpVerify
	case OpProof:
		kind = volume.OpProof
	case OpShip:
		kind = volume.OpShip
	case OpTail:
		// Long-poll: wait (bounded) for sealed bytes past the follower's
		// position — force-sealing a lagging tail — then ship as usual.
		if s.opts.Repl != nil {
			s.opts.Repl.WaitTail(s.ctx, req.Volume, req.Gen, req.Off)
		}
		kind = volume.OpShip
	}
	if err := vol.TryDo(volume.Request{Kind: kind, Extent: req.Extent, Seq: req.Seq, Gen: req.Gen, Off: req.Off}, done); err != nil {
		return appendResponse(out, statusOf(err), []byte(err.Error())), true
	}
	var timeout <-chan time.Time
	if s.opts.RequestTimeout > 0 {
		t := time.NewTimer(s.opts.RequestTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case res := <-done:
		if res.Err != nil {
			return appendResponse(out, statusOf(res.Err), []byte(res.Err.Error())), true
		}
		if req.Op == OpWrite && res.Seq > 0 && s.opts.Repl != nil {
			// Semi-synchronous replication: hold this write's OK until the
			// follower ack watermark covers it (or the gate degrades).
			s.opts.Repl.GateWrite(req.Volume, res.Seq)
		}
		return s.appendOK(out, req.Op, res), true
	case <-timeout:
		s.abandon(done)
		msg := fmt.Sprintf("request exceeded %v", s.opts.RequestTimeout)
		return appendResponse(out, StatusTimeout, []byte(msg)), false
	case <-s.ctx.Done():
		s.abandon(done)
		return appendResponse(out, StatusInternal, []byte("server shutting down")), false
	}
}

// abandon drains a still-pending request's result in the background: the
// request stays queued and will execute, and without a reader its result
// would sit in the channel buffer forever (pinning whatever the result
// references). The connection is being dropped, so the channel is not
// reused.
func (s *Server) abandon(done chan volume.Result) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case <-done:
			s.abandoned.Add(1)
		case <-s.drained():
		}
	}()
}

// drained returns a channel closed once Close has finished waiting —
// never, in practice, before abandoned results arrive, because Close
// waits for this very WaitGroup. It exists to bound the drain goroutine
// if a volume is closed without ever executing the request.
func (s *Server) drained() <-chan struct{} { return s.ctx.Done() }

// isDataOp reports whether op reads or mutates volume state (as opposed
// to the replication/control ops followers must serve).
func isDataOp(op uint8) bool {
	switch op {
	case OpWrite, OpRead, OpStat, OpSnapshot, OpVerify, OpProof:
		return true
	}
	return false
}

// roleInfo builds the node's RoleInfo: from the hooks when present,
// otherwise a standalone daemon reporting itself primary at epoch 0.
func (s *Server) roleInfo() RoleInfo {
	if s.opts.Repl != nil {
		return s.opts.Repl.Role()
	}
	return RoleInfo{Role: "primary", Volumes: map[string]ReplPosition{}}
}

// appendRole encodes a RoleInfo response (or the promotion failure).
func (s *Server) appendRole(out []byte, info RoleInfo, err error) []byte {
	status, body := roleBody(info, err)
	return appendResponse(out, status, body)
}

// roleBody renders a RoleInfo response body (or the promotion failure)
// for either protocol version to frame.
func roleBody(info RoleInfo, err error) (uint8, []byte) {
	if err != nil {
		return statusOf(err), []byte(err.Error())
	}
	body, merr := json.Marshal(&info)
	if merr != nil {
		return StatusInternal, []byte(merr.Error())
	}
	return StatusOK, body
}

// appendOK encodes a successful result's op-specific body.
func (s *Server) appendOK(out []byte, op uint8, res volume.Result) []byte {
	switch op {
	case OpShip, OpTail:
		var epoch uint64
		if s.opts.Repl != nil {
			epoch = s.opts.Repl.Epoch()
		}
		return appendResponse(out, StatusOK, appendShipBody(nil, epoch, *res.Ship))
	case OpRead:
		var body [4]byte
		binary.LittleEndian.PutUint32(body[:], uint32(res.Frags))
		return appendResponse(out, StatusOK, body[:])
	case OpStat:
		// Config holds layer pointers and interfaces that neither
		// marshal round-trip nor mean anything to a remote client; zero
		// it so the wire Stats is pure counters.
		st := *res.Stats
		st.Config = core.Config{}
		body, err := json.Marshal(&st)
		if err != nil {
			return appendResponse(out, StatusInternal, []byte(err.Error()))
		}
		return appendResponse(out, StatusOK, body)
	case OpVerify:
		body, err := json.Marshal(res.Audit)
		if err != nil {
			return appendResponse(out, StatusInternal, []byte(err.Error()))
		}
		return appendResponse(out, StatusOK, body)
	case OpProof:
		body, err := json.Marshal(res.Proof)
		if err != nil {
			return appendResponse(out, StatusInternal, []byte(err.Error()))
		}
		return appendResponse(out, StatusOK, body)
	default:
		return appendResponse(out, StatusOK, nil)
	}
}

// statusOf maps volume/journal/fault errors onto wire status codes.
func statusOf(err error) uint8 {
	switch {
	case errors.Is(err, volume.ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, volume.ErrClosed):
		return StatusInternal
	case errors.Is(err, volume.ErrNoJournal):
		return StatusNoJournal
	case errors.Is(err, journal.ErrCrashed):
		return StatusCrashed
	case errors.Is(err, journal.ErrCorrupt):
		return StatusCorrupt
	case errors.Is(err, journal.ErrUnsealed):
		return StatusBadRequest
	case errors.Is(err, journal.ErrStaleSource):
		return StatusNotPrimary
	case fault.IsMedia(err):
		return StatusMediaError
	case fault.IsTransient(err):
		return StatusTransient
	default:
		return StatusInternal
	}
}

// isClosedConn reports whether err is the normal end of a connection:
// clean EOF or a read racing our own Close.
func isClosedConn(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}
