package journal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Merkle sealing (RFC 6962 tree shape). Every journaled record is
// hashed into a leaf; a seal frame closes a segment of consecutive
// records with the Merkle root over their leaves, and seals are chained:
//
//	leaf    = SHA-256(0x00 || payload)
//	node    = SHA-256(0x01 || left || right)
//	chain_i = SHA-256(0x02 || chain_{i-1} || root_i)
//
// chain_{-1} is the journal header's anchor — the chain head of the
// checkpoint this journal was reborn after (all zeros for the first
// generation). The chain therefore runs unbroken across checkpoint
// truncations, so a checkpoint+journal pair can be verified as one
// tamper-evident history: damage to any sealed byte, to any seal, or to
// the pairing itself (a swapped checkpoint, a deleted generation) breaks
// a hash somewhere between the anchor and the chain head.
//
// The domain-separation prefixes keep the three hash roles disjoint: a
// leaf can never be replayed as an interior node (second-preimage
// mangling) and a root can never pose as a chain link.

// Hash is a SHA-256 digest. It marshals to/from hex in JSON, so audits
// and proofs survive the wire protocol's JSON bodies unmangled.
type Hash [sha256.Size]byte

// IsZero reports whether h is the all-zero hash (the chain anchor of a
// first-generation journal with no prior checkpoint).
func (h Hash) IsZero() bool { return h == Hash{} }

// String returns the full lowercase hex digest.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first 8 hex digits, for compact reports.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// MarshalJSON encodes the hash as a hex string.
func (h Hash) MarshalJSON() ([]byte, error) { return json.Marshal(h.String()) }

// UnmarshalJSON decodes a hex string of exactly 64 digits.
func (h *Hash) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("journal: bad hash hex: %w", err)
	}
	if len(raw) != sha256.Size {
		return fmt.Errorf("journal: hash is %d bytes, want %d", len(raw), sha256.Size)
	}
	copy(h[:], raw)
	return nil
}

// Domain-separation prefixes (see the package comment above).
const (
	leafPrefix  = 0x00
	nodePrefix  = 0x01
	chainPrefix = 0x02
)

// LeafHash hashes one record payload into its Merkle leaf.
func LeafHash(payload []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(payload)
	var out Hash
	h.Sum(out[:0])
	return out
}

func nodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// chainLink extends the seal chain with one segment root.
func chainLink(prev, root Hash) Hash {
	h := sha256.New()
	h.Write([]byte{chainPrefix})
	h.Write(prev[:])
	h.Write(root[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// splitPoint returns the largest power of two strictly below n (n >= 2),
// the RFC 6962 left-subtree size.
func splitPoint(n int) int {
	k := 1
	for k<<1 < n {
		k <<= 1
	}
	return k
}

// MerkleRoot computes the RFC 6962 tree hash over already-hashed leaves.
// A single leaf is its own root; an empty slice hashes the empty string
// (never produced by sealing — segments are non-empty by construction).
func MerkleRoot(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return sha256.Sum256(nil)
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(MerkleRoot(leaves[:k]), MerkleRoot(leaves[k:]))
}

// merklePath returns the RFC 6962 audit path for leaf i: the sibling
// hashes needed to recompute the root, ordered leaf-level first.
func merklePath(leaves []Hash, i int) []Hash {
	if len(leaves) <= 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if i < k {
		return append(merklePath(leaves[:k], i), MerkleRoot(leaves[k:]))
	}
	return append(merklePath(leaves[k:], i-k), MerkleRoot(leaves[:k]))
}

// Proof is a per-record inclusion proof: the audit path from one
// journaled record's leaf to the Merkle root its seal committed. A
// verifier holding the segment root (or the seal chain it is linked
// into) can confirm the record was among those sealed — without the
// journal.
type Proof struct {
	// Generation is the journal generation the record lives in. Proofs
	// are only available for the current generation: a checkpoint folds
	// sealed history into the snapshot and truncates the journal.
	Generation uint64 `json:"generation"`
	// Seq is the record's 1-based sequence number within the journal.
	Seq int64 `json:"seq"`
	// Segment is the seal's 0-based index within the journal.
	Segment int `json:"segment"`
	// Index is the record's 0-based position within the segment of Count
	// leaves.
	Index int `json:"index"`
	Count int `json:"count"`
	// Leaf is the record's leaf hash; Path is the audit path; Root is
	// the sealed segment root the path must reproduce; Chain is the seal
	// chain value committing Root.
	Leaf  Hash   `json:"leaf"`
	Path  []Hash `json:"path"`
	Root  Hash   `json:"root"`
	Chain Hash   `json:"chain"`
}

// Verify recomputes the root from Leaf and Path and checks it against
// Root. It does not (cannot) check that Root itself is honest — that is
// what the seal chain and the checkpoint anchor are for.
func (p Proof) Verify() error {
	root, err := rootFromPath(p.Index, p.Count, p.Leaf, p.Path)
	if err != nil {
		return err
	}
	if root != p.Root {
		return fmt.Errorf("journal: proof for seq %d recomputes root %s, sealed root is %s",
			p.Seq, root.Short(), p.Root.Short())
	}
	return nil
}

// rootFromPath replays an RFC 6962 audit path (the verification
// algorithm of RFC 9162 §2.1.3.2).
func rootFromPath(i, n int, leaf Hash, path []Hash) (Hash, error) {
	if n <= 0 || i < 0 || i >= n {
		return Hash{}, fmt.Errorf("journal: proof index %d out of range for %d leaves", i, n)
	}
	fn, sn := uint64(i), uint64(n-1)
	r := leaf
	for _, p := range path {
		if sn == 0 {
			return Hash{}, fmt.Errorf("journal: proof path too long")
		}
		if fn%2 == 1 || fn == sn {
			r = nodeHash(p, r)
			if fn%2 == 0 {
				for fn%2 == 0 && fn != 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			r = nodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 {
		return Hash{}, fmt.Errorf("journal: proof path too short")
	}
	return r, nil
}
