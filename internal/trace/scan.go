package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

const (
	// scanInitBytes is the line scanner's initial buffer size.
	scanInitBytes = 64 << 10
	// scanMaxLine caps a single trace line. CSV exports concatenated by
	// tools that strip newlines can produce lines far past bufio's 64 KB
	// default, so the cap is explicit and generous; a line beyond it is
	// almost certainly not line-oriented CSV at all.
	scanMaxLine = 16 << 20
)

// lineScanner wraps bufio.Scanner with an explicitly grown buffer and a
// recorded prefix of the line currently being assembled, so hitting the
// line-size cap is reported with the head of the offending line instead
// of a bare bufio.ErrTooLong with no indication of where or why.
type lineScanner struct {
	s       *bufio.Scanner
	prefix  [48]byte
	nprefix int
}

func newLineScanner(r io.Reader) *lineScanner {
	l := &lineScanner{s: bufio.NewScanner(r)}
	l.s.Buffer(make([]byte, 0, scanInitBytes), scanMaxLine)
	l.s.Split(func(data []byte, atEOF bool) (advance int, token []byte, err error) {
		advance, token, err = bufio.ScanLines(data, atEOF)
		if advance == 0 && token == nil && err == nil && len(data) > 0 {
			// More data requested with a line still unfinished: data
			// starts at the pending line, so remember its head for the
			// ErrTooLong diagnostic.
			l.nprefix = copy(l.prefix[:], data)
		}
		return advance, token, err
	})
	return l
}

func (l *lineScanner) Scan() bool   { return l.s.Scan() }
func (l *lineScanner) Text() string { return l.s.Text() }

// Err returns the scanner's error. bufio.ErrTooLong is wrapped with the
// configured cap and the partial line's head.
func (l *lineScanner) Err() error {
	err := l.s.Err()
	if err != nil && errors.Is(err, bufio.ErrTooLong) && l.nprefix > 0 {
		return fmt.Errorf("%w: line exceeds %d bytes (starts %q); is the file line-oriented CSV?",
			err, scanMaxLine, l.prefix[:l.nprefix])
	}
	return err
}
