package journal

import (
	"errors"
	"os"
	"testing"

	"smrseek/internal/extmap"
	"smrseek/internal/geom"
)

// buildSealedPair populates dir with a realistic checkpoint+journal
// pair: generation 1 is sealed and checkpointed (so the checkpoint
// carries a non-zero chain head anchoring generation 2), then
// generation 2 is filled with nSeals fully-sealed segments of 2 records
// each. Returns the live log (caller closes).
func buildSealedPair(t testing.TB, dir string, nSeals int) *Log {
	t.Helper()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetSegmentSize(2); err != nil {
		t.Fatal(err)
	}
	var pba int64
	for i := 0; i < 4; i++ {
		if err := l.Append(rec(RecWrite, pba, 4, pba)); err != nil {
			t.Fatal(err)
		}
		pba += 4
	}
	snap := Snapshot{
		Frontier: pba, Written: pba,
		Mappings: []extmap.Mapping{{Lba: geom.Ext(0, pba), Pba: 0}},
	}
	if err := l.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*nSeals; i++ {
		if err := l.Append(rec(RecWrite, pba, 4, pba)); err != nil {
			t.Fatal(err)
		}
		pba += 4
	}
	if l.SealedRecords() != int64(2*nSeals) {
		t.Fatalf("sealed %d, want %d", l.SealedRecords(), 2*nSeals)
	}
	return l
}

// writePair materializes a (journal, checkpoint) byte pair in a fresh
// directory for VerifyDir.
func writePair(t testing.TB, jraw, craw []byte) string {
	t.Helper()
	dir := t.TempDir()
	if jraw != nil {
		if err := os.WriteFile(JournalPath(dir), jraw, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if craw != nil {
		if err := os.WriteFile(CheckpointPath(dir), craw, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func mutate(raw []byte, i int, xor byte) []byte {
	mut := append([]byte(nil), raw...)
	mut[i] ^= xor
	return mut
}

// TestCorruptionMatrixJournal flips every byte of a sealed journal, one
// at a time, and asserts the tamper-evidence contract: damage at or
// before the last seal is detected as ErrCorrupt; damage inside the
// final seal frame may instead degrade to a torn tail (it is
// indistinguishable from a crash mid-seal) but must preserve every
// record; nothing may ever verify clean and whole.
func TestCorruptionMatrixJournal(t *testing.T) {
	dir := t.TempDir()
	l := buildSealedPair(t, dir, 3) // gen 2: 6 records, 3 seals, no tail
	seals := l.Seals()
	const totalRecords = 6
	lastSealStart := seals[len(seals)-1].Offset
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	jraw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	craw, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(jraw)) != lastSealStart+sealFrameSize {
		t.Fatalf("journal %d bytes, want last seal [%d,%d) at the end",
			len(jraw), lastSealStart, lastSealStart+sealFrameSize)
	}

	// Sanity: the pristine pair verifies whole.
	if a, err := VerifyDir(writePair(t, jraw, craw)); err != nil ||
		a.SealedRecords != totalRecords || a.TailTorn || len(a.Segments) != 3 {
		t.Fatalf("pristine pair: %+v, %v", a, err)
	}

	for i := range jraw {
		mdir := writePair(t, mutate(jraw, i, 0xff), craw)
		a, err := VerifyDir(mdir)
		if int64(i) < lastSealStart {
			// Sealed region (header included): must fail loudly, with the
			// damaged file named and ErrCorrupt matchable.
			var ce *CorruptError
			if !errors.As(err, &ce) || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d (sealed region): err=%v, want CorruptError", i, err)
			}
			if ce.File != JournalFile {
				t.Fatalf("flip at %d: blamed %s, want %s", i, ce.File, JournalFile)
			}
			// Recovery must refuse too: LoadDir surfaces the same damage.
			if _, _, lerr := LoadDir(mdir); !errors.Is(lerr, ErrCorrupt) {
				t.Fatalf("flip at %d: LoadDir=%v, want ErrCorrupt", i, lerr)
			}
		} else {
			// Final seal frame: equivalent to a crash mid-seal. Either the
			// flip is still caught as corruption (e.g. a CRC-valid-but-
			// wrong seal is impossible from one flip, but a length-field
			// flip can resync oddly), or it degrades to a torn tail — in
			// which case every record must survive as the unsealed tail.
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip at %d (final seal): err=%v, want nil or ErrCorrupt", i, err)
				}
				continue
			}
			if !a.TailTorn {
				t.Fatalf("flip at %d (final seal): verified clean and whole: %+v", i, a)
			}
			if a.SealedRecords+a.TailRecords != totalRecords {
				t.Fatalf("flip at %d: %d sealed + %d tail records, want %d preserved",
					i, a.SealedRecords, a.TailRecords, totalRecords)
			}
			if len(a.Segments) != 2 {
				t.Fatalf("flip at %d: %d verified segments, want 2", i, len(a.Segments))
			}
		}
	}
}

// TestCorruptionMatrixCheckpoint flips every byte of the checkpoint:
// all of it is sealed state (magic + CRC-covered body), so every flip
// must fail verification.
func TestCorruptionMatrixCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l := buildSealedPair(t, dir, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	jraw, _ := os.ReadFile(JournalPath(dir))
	craw, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := range craw {
		_, err := VerifyDir(writePair(t, jraw, mutate(craw, i, 0xff)))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("checkpoint flip at %d: err=%v, want ErrCorrupt", i, err)
		}
	}
	// Truncations of the checkpoint must fail as well (the "silently
	// truncated checkpoint swap" this PR exists to catch).
	for _, n := range []int{0, 8, ckptFixedSize, len(craw) - 1} {
		if _, err := VerifyDir(writePair(t, jraw, craw[:n])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("checkpoint truncated to %d: err=%v, want ErrCorrupt", n, err)
		}
	}
	// Deleting the checkpoint breaks the linkage: the journal anchors at
	// a chain head that no longer exists anywhere.
	if _, err := VerifyDir(writePair(t, jraw, nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing checkpoint: err=%v, want ErrCorrupt (dangling anchor)", err)
	}
	// Swapping in a foreign checkpoint breaks it too.
	var buf writerBuf
	if err := WriteCheckpoint(&buf, Snapshot{Generation: 1, Frontier: 16, Written: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(writePair(t, jraw, buf.b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign checkpoint: err=%v, want ErrCorrupt (anchor mismatch)", err)
	}
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// TestCorruptionMatrixJournalTruncation cuts the sealed journal at
// every byte length. A cut exactly at a frame boundary is
// indistinguishable from a journal that simply stopped there — it may
// verify clean, but only with the audit honestly reporting the reduced
// coverage (that residual window, and why an external chain-head
// reference closes it, is documented in DESIGN.md §13). A cut anywhere
// else must read as torn or corrupt, never clean.
func TestCorruptionMatrixJournalTruncation(t *testing.T) {
	dir := t.TempDir()
	l := buildSealedPair(t, dir, 2)
	l.Close()
	jraw, _ := os.ReadFile(JournalPath(dir))
	craw, _ := os.ReadFile(CheckpointPath(dir))

	// Frame boundaries of gen 2's layout (2 recs, seal, 2 recs, seal)
	// and the (sealed, tail) counts a clean parse must report there.
	type exp struct{ sealed, tail int64 }
	boundaries := map[int]exp{headerSize: {0, 0}}
	off, recs, sealed := headerSize, int64(0), int64(0)
	for _, isSeal := range []bool{false, false, true, false, false, true} {
		if isSeal {
			off += sealFrameSize
			sealed = recs
		} else {
			off += frameSize
			recs++
		}
		boundaries[off] = exp{sealed, recs - sealed}
	}
	if off != len(jraw) {
		t.Fatalf("layout walk ended at %d, file is %d bytes", off, len(jraw))
	}

	for n := headerSize; n < len(jraw); n++ {
		a, err := VerifyDir(writePair(t, jraw[:n], craw))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut at %d: %v", n, err)
			}
			continue
		}
		if a.TailTorn {
			continue // mid-frame cut read as a torn tail: prefix preserved
		}
		want, ok := boundaries[n]
		if !ok {
			t.Fatalf("mid-frame cut at %d verified clean: %+v", n, a)
		}
		if a.SealedRecords != want.sealed || a.TailRecords != want.tail {
			t.Fatalf("cut at %d: sealed=%d tail=%d, want %d/%d",
				n, a.SealedRecords, a.TailRecords, want.sealed, want.tail)
		}
	}
}

// TestCrashThenCorruption layers the two failure modes: a log torn by
// an injected crash must still recover (torn is not corrupt), and a
// byte flip inside its sealed prefix must still be detected (corrupt is
// not torn) even with the crash residue present.
func TestCrashThenCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetSegmentSize(2); err != nil {
		t.Fatal(err)
	}
	l.CrashAfter(4, 10) // records 1-3 land (seal after 2), append 4 tears
	var pba int64
	for i := 0; i < 4; i++ {
		if aerr := l.Append(rec(RecWrite, pba, 4, pba)); aerr != nil {
			if !errors.Is(aerr, ErrCrashed) {
				t.Fatal(aerr)
			}
			break
		}
		pba += 4
	}
	seal0 := l.Seals()[0]
	l.Close()
	jraw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	// The torn pair verifies: crash residue is reported, not failed.
	a, err := VerifyDir(dir)
	if err != nil || !a.TailTorn || a.SealedRecords != 2 || a.TailRecords != 1 {
		t.Fatalf("torn pair: %+v, %v", a, err)
	}

	sealFrameEnd := seal0.Offset + sealFrameSize
	for i := 0; int64(i) < sealFrameEnd; i++ {
		_, err := VerifyDir(writePair(t, mutate(jraw, i, 0x10), nil))
		if int64(i) < seal0.Offset {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("crash+flip at %d (sealed region): %v, want ErrCorrupt", i, err)
			}
		} else if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("crash+flip at %d (seal frame): %v", i, err)
		}
	}
	// Flips past the seal land in crash residue: still just torn.
	for i := sealFrameEnd; i < int64(len(jraw)); i++ {
		a, err := VerifyDir(writePair(t, mutate(jraw, int(i), 0x10), nil))
		if err != nil || !a.TailTorn || a.SealedRecords != 2 {
			t.Fatalf("crash+flip at %d (residue): %+v, %v", i, a, err)
		}
	}
}

// TestVerifyDirStaleJournal: a stale generation left by a crash between
// checkpoint rename and truncation is subsumed — verification must not
// fail on it, even when the stale bytes are damaged.
func TestVerifyDirStaleJournal(t *testing.T) {
	dir := t.TempDir()
	l := buildSealedPair(t, dir, 1)
	ckptGen := l.Generation() - 1
	l.Close()
	craw, _ := os.ReadFile(CheckpointPath(dir))
	stale := marshalHeader(ckptGen, 0, Hash{})
	stale = append(stale, MarshalRecord(rec(RecWrite, 0, 4, 0))...)
	stale[len(stale)-3] ^= 0xff // damage inside the stale content
	a, err := VerifyDir(writePair(t, stale, craw))
	if err != nil || !a.Stale {
		t.Fatalf("stale journal: %+v, %v", a, err)
	}
}

// TestVerifyDirFreshJournalAnchor: with no checkpoint the journal must
// anchor at zero; a non-zero anchor claims sealed history that cannot
// be produced.
func TestVerifyDirFreshJournalAnchor(t *testing.T) {
	fresh := marshalHeader(1, 0, Hash{})
	if a, err := VerifyDir(writePair(t, fresh, nil)); err != nil || a.Stale {
		t.Fatalf("fresh journal: %+v, %v", a, err)
	}
	bogus := marshalHeader(1, 0, LeafHash([]byte("forged")))
	if _, err := VerifyDir(writePair(t, bogus, nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("dangling anchor: %v, want ErrCorrupt", err)
	}
}

// TestVerifyDirGenerationGap: the live journal must succeed the
// checkpoint generation exactly; a gap means a whole generation of
// history is missing.
func TestVerifyDirGenerationGap(t *testing.T) {
	dir := t.TempDir()
	l := buildSealedPair(t, dir, 1)
	chain := l.Anchor()
	gen := l.Generation()
	l.Close()
	craw, _ := os.ReadFile(CheckpointPath(dir))
	skipped := marshalHeader(gen+1, 16, chain)
	if _, err := VerifyDir(writePair(t, skipped, craw)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("generation gap: %v, want ErrCorrupt", err)
	}
}

// FuzzVerifyJournal: no single-byte mutation of a sealed pair may ever
// verify clean and whole. The journal side may legally degrade to a
// torn tail (crash equivalence, final seal frame only), but then the
// audit must say so and must have lost sealed coverage; the checkpoint
// side must always hard-fail.
func FuzzVerifyJournal(f *testing.F) {
	dir := f.TempDir()
	l := buildSealedPair(f, dir, 3)
	baseSealed := l.SealedRecords()
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	jraw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	craw, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint32(0), byte(0xff), false)
	f.Add(uint32(70), byte(0x01), false)
	f.Add(uint32(40), byte(0x80), true)
	f.Add(uint32(len(jraw)-1), byte(0x04), false)
	f.Fuzz(func(t *testing.T, pos uint32, xor byte, hitCheckpoint bool) {
		if xor == 0 {
			return
		}
		jmut, cmut := jraw, craw
		if hitCheckpoint {
			cmut = mutate(craw, int(pos)%len(craw), xor)
		} else {
			jmut = mutate(jraw, int(pos)%len(jraw), xor)
		}
		a, err := VerifyDir(writePair(t, jmut, cmut))
		if hitCheckpoint {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("checkpoint mutation at %d xor %#x verified: %v", pos, xor, err)
			}
			return
		}
		if err == nil && (!a.TailTorn || a.SealedRecords >= baseSealed) {
			t.Fatalf("journal mutation at %d xor %#x verified clean and whole: %+v",
				int(pos)%len(jraw), xor, a)
		}
	})
}
