// Tuning example: sweeps the knobs the paper fixes — selective cache
// size (64 MB in §V), prefetch window (look-ahead/behind) and the
// defragmentation gates (N fragments, k accesses, §IV-A) — showing how
// each mechanism's benefit scales. This is the exploration the paper
// leaves as configuration guidance.
package main

import (
	"fmt"
	"log"

	"smrseek"
)

func main() {
	recs := smrseek.MustWorkload("w91").Generate(0.5)
	base, err := smrseek.Run(smrseek.Config{}, recs)
	if err != nil {
		log.Fatal(err)
	}
	baseSeeks := base.Disk.TotalSeeks()
	saf := func(cfg smrseek.Config) float64 {
		st, err := smrseek.Run(cfg, recs)
		if err != nil {
			log.Fatal(err)
		}
		return float64(st.Disk.TotalSeeks()) / float64(baseSeeks)
	}

	fmt.Println("cache size sweep (w91):")
	for _, mb := range []int64{1, 4, 16, 64, 256} {
		cc := smrseek.CacheConfig{CapacityBytes: mb << 20}
		fmt.Printf("  %4d MB cache: total SAF %.2f\n", mb, saf(smrseek.Config{LogStructured: true, Cache: &cc}))
	}

	fmt.Println("prefetch window sweep (w91):")
	for _, kb := range []int64{16, 64, 256, 1024} {
		pc := smrseek.PrefetchConfig{
			LookBehindSectors: kb * 2, // KB → 512-byte sectors
			LookAheadSectors:  kb * 2,
			BufferBytes:       32 << 20,
		}
		fmt.Printf("  ±%4d KB window: total SAF %.2f\n", kb, saf(smrseek.Config{LogStructured: true, Prefetch: &pc}))
	}

	fmt.Println("defrag gate sweep (w91):")
	for _, g := range []smrseek.DefragConfig{
		{MinFragments: 2, MinAccesses: 1},
		{MinFragments: 4, MinAccesses: 1},
		{MinFragments: 8, MinAccesses: 1},
		{MinFragments: 2, MinAccesses: 3},
	} {
		gg := g
		fmt.Printf("  N>=%d, k>=%d: total SAF %.2f\n", g.MinFragments, g.MinAccesses,
			saf(smrseek.Config{LogStructured: true, Defrag: &gg}))
	}
}
