package workload

import (
	"math"
	"testing"

	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

func TestFitEmptyTrace(t *testing.T) {
	if _, err := Fit("x", nil, 1); err == nil {
		t.Fatal("empty trace must error")
	}
}

func TestFitRecoversBasicShape(t *testing.T) {
	// Fit a profile to a catalog workload's output and check the coarse
	// knobs come back in the right ballpark.
	orig, _ := ByName("w91")
	recs := orig.Generate(0.3)
	fitted, err := Fit("w91-fit", recs, 99)
	if err != nil {
		t.Fatal(err)
	}
	if fitted.Name != "w91-fit" || fitted.BaseOps != len(recs) {
		t.Errorf("identity fields: %+v", fitted)
	}
	ch := trace.Characterize(recs)
	if math.Abs(fitted.WriteFrac-ch.WriteIntensity()) > 0.01 {
		t.Errorf("WriteFrac %v vs observed %v", fitted.WriteFrac, ch.WriteIntensity())
	}
	// w91 is scan-heavy: the fit must detect substantial sequentiality.
	if fitted.ScanFrac < 0.3 {
		t.Errorf("ScanFrac = %v, want >= 0.3 for a scan-heavy trace", fitted.ScanFrac)
	}
	// w91 has mis-ordered bursts: the fit must enable them.
	if fitted.MisorderFrac == 0 {
		t.Error("misorder not detected")
	}
	// And hot reuse.
	if fitted.HotRanges == 0 || fitted.HotReadFrac == 0 {
		t.Error("hot reuse not detected")
	}
}

func TestFitProfileIsGeneratable(t *testing.T) {
	orig, _ := ByName("usr_0")
	recs := orig.Generate(0.2)
	fitted, err := Fit("usr_0-fit", recs, 7)
	if err != nil {
		t.Fatal(err)
	}
	out := fitted.Generate(0.5)
	if len(out) < 500 {
		t.Fatalf("fitted profile generated only %d records", len(out))
	}
	// The regenerated trace's write intensity tracks the original's.
	chOrig := trace.Characterize(recs)
	chNew := trace.Characterize(out)
	if math.Abs(chOrig.WriteIntensity()-chNew.WriteIntensity()) > 0.15 {
		t.Errorf("write intensity drifted: %v vs %v", chOrig.WriteIntensity(), chNew.WriteIntensity())
	}
}

func TestFitWriteOnlyTrace(t *testing.T) {
	// A trace with no reads still fits (read knobs stay zero).
	orig, _ := ByName("w36")
	recs := orig.Generate(0.05)
	fitted, err := Fit("w36-fit", recs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fitted.WriteFrac < 0.8 {
		t.Errorf("WriteFrac = %v", fitted.WriteFrac)
	}
	if _, err := Fit("seq", []trace.Record{
		{Kind: 1, Extent: geom.Ext(0, 8)},
		{Kind: 1, Extent: geom.Ext(8, 8)},
	}, 1); err != nil {
		t.Fatalf("minimal trace fit: %v", err)
	}
}
