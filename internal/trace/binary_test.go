package trace

import (
	"bytes"
	"strings"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

func TestBinaryRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: 0, Kind: disk.Read, Extent: geom.Ext(100, 8)},
		{Time: 1000, Kind: disk.Write, Extent: geom.Ext(50, 16)},
		{Time: 1000, Kind: disk.Read, Extent: geom.Ext(1<<40, 1)}, // huge LBA
		{Time: 5000, Kind: disk.Write, Extent: geom.Ext(0, 1)},    // backwards delta
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("rec %d: %v != %v", i, got[i], recs[i])
		}
	}
}

func TestBinaryCompactness(t *testing.T) {
	// A sequential workload should cost only a few bytes per record.
	var recs []Record
	for i := int64(0); i < 1000; i++ {
		recs = append(recs, Record{Time: i * 1000, Kind: disk.Write, Extent: geom.Ext(i*64, 64)})
	}
	var bin, csv bytes.Buffer
	if err := WriteBinary(&bin, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteCP(&csv, recs); err != nil {
		t.Fatal(err)
	}
	perRec := float64(bin.Len()) / float64(len(recs))
	if perRec > 8 {
		t.Errorf("binary format costs %.1f bytes/record, want <= 8", perRec)
	}
	if bin.Len()*5 > csv.Len()*2 { // at least 2.5x smaller
		t.Errorf("binary (%d B) not much smaller than CSV (%d B)", bin.Len(), csv.Len())
	}
}

func TestBinaryErrors(t *testing.T) {
	// Bad magic.
	r := NewBinaryReader(strings.NewReader("NOTMAGIC"))
	if _, ok := r.Next(); ok || r.Err() == nil {
		t.Error("bad magic must fail")
	}
	// Missing magic (short input).
	r = NewBinaryReader(strings.NewReader("XX"))
	if _, ok := r.Next(); ok || r.Err() == nil {
		t.Error("short magic must fail")
	}
	// Truncated record: magic + flags byte but nothing else.
	var buf bytes.Buffer
	buf.Write(BinaryMagic[:])
	buf.WriteByte(flagHasTime)
	r = NewBinaryReader(&buf)
	if _, ok := r.Next(); ok || r.Err() == nil {
		t.Error("truncated record must fail")
	}
	// Clean EOF after a full record is not an error.
	var ok1 bytes.Buffer
	if err := WriteBinary(&ok1, []Record{{Kind: disk.Read, Extent: geom.Ext(5, 5)}}); err != nil {
		t.Fatal(err)
	}
	r = NewBinaryReader(&ok1)
	if _, ok := r.Next(); !ok {
		t.Fatal("first record should parse")
	}
	if _, ok := r.Next(); ok {
		t.Fatal("should be EOF")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF reported error: %v", r.Err())
	}
}

func TestBinaryLargeWorkloadRoundTrip(t *testing.T) {
	// Deterministic pseudo-random records.
	var recs []Record
	seed := uint64(9)
	tm := int64(0)
	for i := 0; i < 20000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		tm += int64(seed % 1000000)
		kind := disk.Read
		if seed%2 == 0 {
			kind = disk.Write
		}
		recs = append(recs, Record{Time: tm, Kind: kind,
			Extent: geom.Ext(int64(seed%(1<<30)), int64(seed%512+1))})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("lost records: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("rec %d mismatch", i)
		}
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	var recs []Record
	for i := int64(0); i < 10000; i++ {
		recs = append(recs, Record{Time: i * 1000, Kind: disk.Write, Extent: geom.Ext(i*64, 64)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	var recs []Record
	for i := int64(0); i < 10000; i++ {
		recs = append(recs, Record{Time: i * 1000, Kind: disk.Write, Extent: geom.Ext(i*64, 64)})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(NewBinaryReader(bytes.NewReader(data))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSVRead(b *testing.B) {
	var recs []Record
	for i := int64(0); i < 10000; i++ {
		recs = append(recs, Record{Time: i * 1000, Kind: disk.Write, Extent: geom.Ext(i*64, 64)})
	}
	var buf bytes.Buffer
	if err := WriteCP(&buf, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(NewCPReader(bytes.NewReader(data))); err != nil {
			b.Fatal(err)
		}
	}
}
