package journal

import (
	"errors"
	"fmt"
	"os"
)

// Sentinel errors distinguishing the two ways a journal can be damaged.
// A torn tail is a crash signature: recovery truncates to the verified
// prefix and continues. Corruption is damage inside the region the seal
// chain has committed: recovering past it would silently drop or mutate
// acknowledged history, so it must fail loudly.
var (
	// ErrCorrupt marks damage inside the sealed region — a flipped bit in
	// a sealed record, a broken seal, a checkpoint that does not anchor
	// the journal. Wrapped by *CorruptError; match with errors.Is.
	ErrCorrupt = errors.New("journal: corrupt")
	// ErrTornTail marks an incomplete tail record — the expected residue
	// of a crash mid-append. Recovery to the preceding prefix is safe.
	ErrTornTail = errors.New("journal: torn tail")
	// ErrUnsealed is returned by Prove for a record not yet covered by a
	// seal; force a Seal (or Checkpoint) and retry.
	ErrUnsealed = errors.New("journal: record not yet sealed")
)

// CorruptError reports where verification failed: which file, which
// segment was being checked, and the byte offset of the damage (or -1
// when the damage is not localizable to an offset, e.g. a checkpoint
// whose chain disagrees with the journal anchor).
type CorruptError struct {
	// File is the damaged file's name within the journal directory
	// (JournalFile or CheckpointFile).
	File string `json:"file"`
	// Segment is the 0-based seal segment being verified when the damage
	// surfaced (for journal damage: the segment the damaged bytes fall
	// in or before).
	Segment int `json:"segment"`
	// Offset is the byte offset of the first damaged frame, or -1.
	Offset int64 `json:"offset"`
	// Reason describes the specific check that failed.
	Reason string `json:"reason"`
}

func (e *CorruptError) Error() string {
	if e.Offset < 0 {
		return fmt.Sprintf("journal: corrupt %s (segment %d): %s", e.File, e.Segment, e.Reason)
	}
	return fmt.Sprintf("journal: corrupt %s at offset %d (segment %d): %s",
		e.File, e.Offset, e.Segment, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorrupt) hold for every CorruptError.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Audit is the result of verifying a journal directory: the state of
// the checkpoint/journal pair and every seal that checked out. It is
// JSON-serializable for the wire protocol and smrverify's -json mode.
type Audit struct {
	// Dir is the audited journal directory.
	Dir string `json:"dir"`
	// HasCheckpoint / HasJournal report which files were present.
	HasCheckpoint bool `json:"has_checkpoint"`
	HasJournal    bool `json:"has_journal"`
	// CheckpointGeneration is the generation the checkpoint subsumes
	// (0 without a checkpoint).
	CheckpointGeneration uint64 `json:"checkpoint_generation"`
	// Mappings is the checkpoint's extent count.
	Mappings int `json:"mappings"`
	// Generation is the live journal's generation (0 without a journal).
	Generation uint64 `json:"generation"`
	// Stale reports that the journal generation is at or before the
	// checkpoint's — a crash between checkpoint rename and truncation.
	// Its content is subsumed and was not verified.
	Stale bool `json:"stale"`
	// Anchor is the journal header's seal-chain anchor; ChainHead is the
	// chain after the last verified seal (equal to Anchor when nothing is
	// sealed).
	Anchor    Hash `json:"anchor"`
	ChainHead Hash `json:"chain_head"`
	// Segments are the verified seals in order.
	Segments []Seal `json:"segments"`
	// SealedRecords counts records covered by Segments; TailRecords
	// counts CRC-valid records past the last seal (acknowledged but not
	// yet sealed — they carry no integrity guarantee beyond their CRC).
	SealedRecords int64 `json:"sealed_records"`
	TailRecords   int64 `json:"tail_records"`
	// TailTorn reports a torn (crash-truncated) record at the very end,
	// after every seal. Torn is recoverable; it is not corruption.
	TailTorn bool `json:"tail_torn"`
}

// VerifyDir audits a journal directory without replaying it: it checks
// every frame CRC, recomputes every segment's Merkle root and the seal
// chain, and checks the checkpoint⇄journal linkage (the journal's
// anchor must be the checkpoint's chain head; a journal with no
// checkpoint must anchor at zero). It returns a *CorruptError (matching
// ErrCorrupt) for damage inside the sealed history, and a nil error for
// a clean pair — including one with a torn tail or a stale journal,
// which the Audit reports but which are crash signatures, not damage.
// Segment verification runs on DefaultRecoveryWorkers workers; use
// VerifyDirWorkers to pick the count.
func VerifyDir(dir string) (*Audit, error) { return VerifyDirWorkers(dir, 0) }

// VerifyDirWorkers is VerifyDir with an explicit verification worker
// count: sealed segments are CRC-checked and Merkle-verified on a
// bounded pool while the seal chain and checkpoint linkage are checked
// in order, with the Audit and error bit-identical to the sequential
// scan at any worker count. workers <= 0 uses DefaultRecoveryWorkers, 1
// verifies inline on the calling goroutine.
func VerifyDirWorkers(dir string, workers int) (*Audit, error) {
	a := &Audit{Dir: dir}

	snap, err := readCheckpointFile(CheckpointPath(dir))
	if err != nil {
		return a, &CorruptError{File: CheckpointFile, Segment: -1, Offset: -1,
			Reason: fmt.Sprintf("unreadable checkpoint: %v", err)}
	}
	if snap != nil {
		a.HasCheckpoint = true
		a.CheckpointGeneration = snap.Generation
		a.Mappings = len(snap.Mappings)
	}

	raw, err := os.ReadFile(JournalPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		if snap == nil {
			return a, fmt.Errorf("journal: %s has neither checkpoint nor journal", dir)
		}
		a.ChainHead = snap.Chain
		a.Anchor = snap.Chain
		return a, nil
	}
	if err != nil {
		return a, err
	}
	a.HasJournal = true

	gen, _, anchor, herr := unmarshalHeader(raw)
	if herr != nil {
		if findSealFrom(raw, 0) >= 0 {
			return a, &CorruptError{File: JournalFile, Segment: 0, Offset: 0,
				Reason: "damaged header ahead of sealed content"}
		}
		if snap != nil {
			// Indistinguishable from a crash mid-rebirth (truncate done,
			// header write torn): the checkpoint is the durable truth and
			// recovery treats this journal as empty. Report, don't fail.
			a.TailTorn = true
			a.Anchor = snap.Chain
			a.ChainHead = snap.Chain
			return a, nil
		}
		return a, &CorruptError{File: JournalFile, Segment: -1, Offset: 0,
			Reason: fmt.Sprintf("unreadable header with no checkpoint to fall back on: %v", herr)}
	}
	a.Generation = gen
	a.Anchor = anchor

	if snap != nil && gen <= snap.Generation {
		// Stale generation from before the checkpoint: subsumed, never
		// replayed, so its content — damaged or not — is irrelevant.
		a.Stale = true
		a.ChainHead = snap.Chain
		return a, nil
	}

	// Linkage: the live journal must descend from the checkpoint.
	switch {
	case snap == nil && !anchor.IsZero():
		return a, &CorruptError{File: JournalFile, Segment: -1, Offset: -1,
			Reason: fmt.Sprintf("journal anchors at %s but no checkpoint exists", anchor.Short())}
	case snap != nil && gen != snap.Generation+1:
		return a, &CorruptError{File: JournalFile, Segment: -1, Offset: -1,
			Reason: fmt.Sprintf("journal generation %d does not succeed checkpoint generation %d",
				gen, snap.Generation)}
	case snap != nil && anchor != snap.Chain:
		return a, &CorruptError{File: JournalFile, Segment: -1, Offset: -1,
			Reason: fmt.Sprintf("journal anchor %s does not match checkpoint chain head %s",
				anchor.Short(), snap.Chain.Short())}
	}

	d, err := ScanBytesWorkers(raw, workers)
	if err != nil {
		return a, err
	}
	a.Segments = d.Seals
	a.SealedRecords = d.Sealed
	a.TailRecords = int64(len(d.Records)) - d.Sealed
	a.TailTorn = d.Torn
	a.ChainHead = d.ChainHead()
	return a, nil
}
