// Command experiments regenerates the paper's tables and figures from
// the synthetic workload catalog.
//
// Usage:
//
//	experiments [-scale 0.5] table1 fig2 fig3 fig4 fig5 fig7 fig8 fig10 fig11 waf cleaning timeamp durability
//	experiments all
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"smrseek"
	"smrseek/internal/core"
	"smrseek/internal/obsv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scale := fs.Float64("scale", 0, "workload scale (0 = default 0.5)")
	timeout := fs.Duration("timeout", 0, "abort each experiment after this duration (0 = no limit)")
	metricsAddr := fs.String("metrics-addr", "", `serve live JSON metrics and expvar on this address while experiments run (e.g. "127.0.0.1:8080")`)
	pprofFlag := fs.Bool("pprof", false, "also serve net/http/pprof on -metrics-addr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofFlag && *metricsAddr == "" {
		return fmt.Errorf("-pprof requires -metrics-addr (pprof is served on the metrics endpoint)")
	}
	names := fs.Args()
	if len(names) == 0 {
		return fmt.Errorf(`pass experiment names (table1 fig2 fig3 fig4 fig5 fig7 fig8 fig10 fig11 waf cleaning timeamp durability) or "all"`)
	}
	if *metricsAddr != "" {
		// A process-global collector watches every simulator the
		// experiments build, aggregated across figures.
		col := obsv.NewCollector()
		core.SetGlobalProbe(col)
		defer core.SetGlobalProbe(nil)
		srv, err := obsv.Serve(*metricsAddr, col, *pprofFlag)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "serving metrics on http://%s/metrics\n", srv.Addr())
	}
	for _, name := range names {
		if err := runExperiment(name, out, *scale, *timeout); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runExperiment runs one experiment under its own timeout, so a stuck
// figure cannot starve the rest of the list.
func runExperiment(name string, out io.Writer, scale float64, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return smrseek.RunExperimentContext(ctx, out, name, scale)
}
