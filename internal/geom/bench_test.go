package geom

import (
	"math/rand"
	"testing"
)

func BenchmarkSetAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(Ext(rng.Int63n(1<<20), int64(1+rng.Intn(512))))
		if s.Len() > 4096 {
			s.Clear()
		}
	}
}

func BenchmarkSetContains(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := NewSet()
	for i := 0; i < 2000; i++ {
		s.Add(Ext(rng.Int63n(1<<20), int64(1+rng.Intn(128))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(Ext(rng.Int63n(1<<20), 64))
	}
}

func BenchmarkExtentIntersect(b *testing.B) {
	x := Ext(100, 1000)
	y := Ext(600, 1000)
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}
