package server

// Fuzzers over the SMRD2 wire layer: frame codecs (request-ID header,
// op payloads) and the version/window hello. Malformed input must error
// cleanly — never panic, never mis-round-trip. The CI fuzz smoke leg
// runs both briefly on every push.

import (
	"bytes"
	"io"
	"testing"

	"smrseek/internal/geom"
)

// FuzzWireFrame throws arbitrary bytes at both v2 frame parsers and
// pins the canonical-encoding property: whatever parses must re-encode
// to exactly the bytes that parsed.
func FuzzWireFrame(f *testing.F) {
	// Valid request frames of every op as seeds (payload only, the way
	// the read loop hands them to the parser).
	seed := func(req request) {
		frame, err := appendRequestV2(nil, 12345, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	seed(request{Op: OpWrite, Volume: "v", Extent: geom.Ext(8, 16)})
	seed(request{Op: OpRead, Volume: "vol-name", Extent: geom.Ext(0, 1)})
	seed(request{Op: OpStat, Volume: "v"})
	seed(request{Op: OpSnapshot, Volume: "v"})
	seed(request{Op: OpVerify, Volume: "v"})
	seed(request{Op: OpProof, Volume: "v", Seq: 7})
	seed(request{Op: OpShip, Volume: "v", Gen: 3, Off: 4096})
	seed(request{Op: OpTail, Volume: "v", Gen: 1, Off: 0})
	seed(request{Op: OpAck, Volume: "v", Gen: 9, Off: 1 << 30})
	seed(request{Op: OpRole})
	seed(request{Op: OpPromote})
	// Response-shaped seeds and degenerate frames.
	f.Add(appendResponseV2(nil, 1, StatusOK, []byte{1, 2, 3, 4})[4:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, idSize+1))

	f.Fuzz(func(t *testing.T, p []byte) {
		names := make(nameCache)
		if id, req, err := parseRequestV2(p, names); err == nil {
			enc, err := appendRequestV2(nil, id, req)
			if err != nil {
				t.Fatalf("re-encode of parsed request %+v: %v", req, err)
			}
			if !bytes.Equal(enc[4:], p) {
				t.Fatalf("request round trip diverged:\n in  %x\n out %x", p, enc[4:])
			}
		}
		if id, status, body, err := parseResponseV2(p); err == nil {
			enc := appendResponseV2(nil, id, status, body)
			if !bytes.Equal(enc[4:], p) {
				t.Fatalf("response round trip diverged:\n in  %x\n out %x", p, enc[4:])
			}
		}
	})
}

// FuzzHello drives both hello directions with arbitrary peer bytes:
// the server reading a fuzzed client hello, and the client reading a
// fuzzed server reply. Whatever survives must be a sane negotiation.
func FuzzHello(f *testing.F) {
	f.Add([]byte("SMRD\x01"))
	f.Add([]byte("SMRD\x02\x00\x00"))
	f.Add([]byte("SMRD\x02\x40\x00"))
	f.Add([]byte("SMRD\x02\xff\xff"))
	f.Add([]byte("SMRX\x01"))
	f.Add([]byte("SM"))
	f.Add([]byte("SMRD\x07\x01\x00extra trailing bytes"))

	f.Fuzz(func(t *testing.T, p []byte) {
		srv := struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(p), io.Discard}
		if version, window, err := serverHello(srv, 0); err == nil {
			if version != Version && version != Version2 {
				t.Fatalf("serverHello accepted version %d", version)
			}
			if window < 1 || window > HardMaxWindow {
				t.Fatalf("serverHello granted window %d", window)
			}
			if version == Version && window != 1 {
				t.Fatalf("v1 negotiation granted window %d, want 1", window)
			}
		}
		cli := struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(p), io.Discard}
		if version, window, err := clientHello(cli, Version2, 8); err == nil {
			if version != Version && version != Version2 {
				t.Fatalf("clientHello accepted version %d", version)
			}
			if window < 1 || (version == Version2 && window > 8) {
				t.Fatalf("clientHello accepted window %d beyond its request", window)
			}
		}
	})
}
