package smrseek

import (
	"smrseek/internal/gc"
	"smrseek/internal/geom"
	"smrseek/internal/mcache"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

// Layer is a block translation layer; plug custom layers into
// Config.CustomLayer. NewGCLayer and NewMediaCacheLayer construct the
// two built-in alternatives to the paper's infinite log-structured
// layer.
type Layer = stl.Layer

// GCPolicy selects the cleaning victim heuristic for NewGCLayer.
type GCPolicy = gc.Policy

// Cleaning policies.
const (
	// Greedy picks the victim segment with the least live data.
	Greedy = gc.Greedy
	// CostBenefit picks by the LFS age*(1-u)/(1+u) ratio.
	CostBenefit = gc.CostBenefit
)

// GCConfig sizes the finite-log cleaning layer.
type GCConfig = gc.Config

// GCLayer is the finite log-structured layer with segment cleaning.
type GCLayer = gc.Layer

// NewGCLayer builds a finite log-structured translation layer whose
// cleaning I/O is charged to the simulation — the overhead the paper's
// infinite-disk model excludes.
func NewGCLayer(cfg GCConfig) (*GCLayer, error) { return gc.New(cfg) }

// MediaCacheConfig sizes the media-cache layer.
type MediaCacheConfig = mcache.Config

// MediaCacheLayer is the drive-managed SMR media-cache translation
// layer (§II's shipped-device design).
type MediaCacheLayer = mcache.Layer

// NewMediaCacheLayer builds the media-cache translation layer: updates
// log to a reserved region, merges rewrite whole zones back in LBA
// order — low read-seek amplification, high write amplification.
func NewMediaCacheLayer(cfg MediaCacheConfig) (*MediaCacheLayer, error) { return mcache.New(cfg) }

// DefaultMediaCacheConfig returns a representative media-cache geometry.
func DefaultMediaCacheConfig() MediaCacheConfig { return mcache.DefaultConfig() }

// WriteFootprint returns the number of distinct sectors the trace ever
// writes — the live-data upper bound used to size finite logs.
func WriteFootprint(recs []Record) int64 {
	set := geom.NewSet()
	for _, r := range recs {
		if r.Kind == Write {
			set.Add(r.Extent)
		}
	}
	return set.Sectors()
}

// MaxLBA returns the highest end LBA across the records.
func MaxLBA(recs []Record) int64 { return trace.MaxLBA(recs) }

// FitWorkload estimates a synthetic workload Profile from an observed
// trace — the substitution DESIGN.md §3 applies to the paper's traces,
// automated for any trace a user has. The fitted profile regenerates a
// stand-in whose seek behaviour is in the same regime as the original.
func FitWorkload(name string, recs []Record, seed uint64) (Profile, error) {
	return workload.Fit(name, recs, seed)
}
