// Command traceinfo prints Table-I style characteristics for a named
// synthetic workload or a trace file, plus write-ordering statistics
// (mis-ordered write fraction, adjacency profile).
//
// Examples:
//
//	traceinfo -list
//	traceinfo -workload hm_1
//	traceinfo -trace disk0.csv -format msr
package main

import (
	"flag"
	"fmt"
	"os"

	"smrseek"
	"smrseek/internal/analysis"
	"smrseek/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	var (
		name      = fs.String("workload", "", "named synthetic workload")
		scale     = fs.Float64("scale", 0.5, "workload scale")
		tracePath = fs.String("trace", "", "trace file to characterize")
		format    = fs.String("format", "cp", `trace format: "msr" or "cp"`)
		diskNum   = fs.Int("disk", -1, "MSR disk number filter (-1 = all)")
		list      = fs.Bool("list", false, "list available workloads and exit")
		fit       = fs.Bool("fit", false, "also print a synthetic workload profile fitted to the trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range smrseek.Workloads() {
			fmt.Println(n)
		}
		return nil
	}

	var recs []smrseek.Record
	label := *name
	switch {
	case *name != "" && *tracePath != "":
		return fmt.Errorf("pass -workload or -trace, not both")
	case *name != "":
		p, err := smrseek.Workload(*name)
		if err != nil {
			return err
		}
		recs = p.Generate(*scale)
	case *tracePath != "":
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := smrseek.OpenTrace(f, smrseek.TraceFormat(*format), *diskNum)
		if err != nil {
			return err
		}
		recs, err = smrseek.ReadAll(r)
		if err != nil {
			return err
		}
		label = *tracePath
	default:
		return fmt.Errorf("pass -workload NAME or -trace FILE (or -list)")
	}

	c := smrseek.Characterize(recs)
	mis, writes := smrseek.MisorderedWrites(recs)
	prof := analysis.SequentialityProfile(recs)

	tb := report.NewTable(fmt.Sprintf("characteristics: %s", label), "metric", "value")
	tb.AddRow("operations", report.HumanCount(c.Ops))
	tb.AddRow("read count", report.HumanCount(c.ReadCount))
	tb.AddRow("write count", report.HumanCount(c.WriteCount))
	tb.AddRow("read volume", fmt.Sprintf("%.2f GB", c.ReadGB()))
	tb.AddRow("written volume", fmt.Sprintf("%.2f GB", c.WrittenGB()))
	tb.AddRow("mean write size", fmt.Sprintf("%.1f KB", c.MeanWriteKB))
	tb.AddRow("mean read size", fmt.Sprintf("%.1f KB", c.MeanReadKB))
	tb.AddRow("write intensity", fmt.Sprintf("%.2f", c.WriteIntensity()))
	tb.AddRow("max LBA", c.MaxLBA)
	if writes > 0 {
		tb.AddRow("mis-ordered writes (256KB)", fmt.Sprintf("%s (%.2f%%)",
			report.HumanCount(mis), 100*float64(mis)/float64(writes)))
	}
	tb.AddRow("ascending-adjacent writes", report.HumanCount(prof.AscendingAdjacent))
	tb.AddRow("descending-adjacent writes", report.HumanCount(prof.DescendingAdjacent))
	tb.AddRow("longest descending run", prof.LongestDescending)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if *fit {
		p, err := smrseek.FitWorkload(label+"-fit", recs, 1)
		if err != nil {
			return err
		}
		fmt.Printf("\nfitted profile: %+v\n", p)
	}
	return nil
}
