// Package server exposes a volume.Manager over TCP with a compact
// length-prefixed binary protocol (read/write/stat/snapshot per volume),
// and provides the matching client library used by cmd/smrload and the
// end-to-end tests. The record layout is documented in docs/FORMATS.md.
//
// Every connection is synchronous: one request frame, one response
// frame, in order. Concurrency comes from connections, not pipelining —
// which keeps per-volume ordering exactly the per-connection send order,
// the property the determinism acceptance test pins down.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"smrseek/internal/geom"
	"smrseek/internal/journal"
)

// Protocol constants.
const (
	// Magic + version exchanged once per connection, client first.
	Magic   = "SMRD"
	Version = 1

	// MaxFrame bounds a frame's post-length payload; stat responses
	// (JSON statistics) are the largest legitimate frames.
	MaxFrame = 1 << 20

	// MaxVolumeName bounds the volume-name field (its length is a uint8).
	MaxVolumeName = 255
)

// Request opcodes (first payload byte of a request frame).
const (
	OpWrite uint8 = iota + 1
	OpRead
	OpStat
	OpSnapshot
	OpVerify
	OpProof
	// OpShip asks a primary for the next replication chunk of a volume's
	// journal past the requester's (generation, offset) position.
	OpShip
	// OpTail is OpShip with long-poll semantics: the server holds the
	// request until sealed bytes exist past the requester's position (a
	// force-seal is triggered for a lagging tail) or a bounded wait ends.
	OpTail
	// OpAck reports a follower's applied journal position so the primary
	// can track replication lag and release gated writes.
	OpAck
	// OpRole asks the node for its replication role, fencing epoch and
	// per-volume journal positions.
	OpRole
	// OpPromote asks a follower to promote itself to primary: verified
	// recovery of every replicated journal, epoch bump, serving enabled.
	OpPromote
)

// Response status codes (first payload byte of a response frame).
const (
	StatusOK uint8 = iota
	StatusOverloaded
	StatusUnknownVolume
	StatusBadRequest
	StatusCrashed
	StatusMediaError
	StatusTransient
	StatusNoJournal
	StatusTimeout
	StatusInternal
	StatusCorrupt
	// StatusNotPrimary rejects a data op on a node that is not the
	// serving primary — an unpromoted follower or a fenced (demoted)
	// ex-primary. Clients re-route; see Set.
	StatusNotPrimary
)

var statusNames = [...]string{
	StatusOK:            "ok",
	StatusOverloaded:    "overloaded",
	StatusUnknownVolume: "unknown-volume",
	StatusBadRequest:    "bad-request",
	StatusCrashed:       "crashed",
	StatusMediaError:    "media-error",
	StatusTransient:     "transient-fault",
	StatusNoJournal:     "no-journal",
	StatusTimeout:       "timeout",
	StatusInternal:      "internal",
	StatusCorrupt:       "corrupt",
	StatusNotPrimary:    "not-primary",
}

// StatusName returns the status code's kebab-case name.
func StatusName(s uint8) string {
	if int(s) < len(statusNames) && statusNames[s] != "" {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", s)
}

// request is one decoded request frame.
type request struct {
	Op     uint8
	Volume string
	Extent geom.Extent // write/read only
	Seq    int64       // proof only: 1-based journal record sequence
	Gen    uint64      // ship/tail/ack only: requester's journal generation
	Off    int64       // ship/tail/ack only: requester's journal byte offset
}

// appendRequest encodes the request into dst's frame format:
//
//	len uint32 LE | op uint8 | vlen uint8 | name | body
//
// where body is `lba uint64 LE, count uint64 LE` for write/read,
// `seq uint64 LE` for proof, `gen uint64 LE, off uint64 LE` for
// ship/tail/ack, and empty otherwise.
func appendRequest(dst []byte, req request) ([]byte, error) {
	if len(req.Volume) > MaxVolumeName {
		return dst, fmt.Errorf("server: volume name %d bytes long (max %d)", len(req.Volume), MaxVolumeName)
	}
	body := 2 + len(req.Volume)
	switch req.Op {
	case OpWrite, OpRead, OpShip, OpTail, OpAck:
		body += 16
	case OpProof:
		body += 8
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, req.Op, uint8(len(req.Volume)))
	dst = append(dst, req.Volume...)
	switch req.Op {
	case OpWrite, OpRead:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Extent.Start))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Extent.Count))
	case OpProof:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Seq))
	case OpShip, OpTail, OpAck:
		dst = binary.LittleEndian.AppendUint64(dst, req.Gen)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Off))
	}
	return dst, nil
}

// parseRequest decodes a request frame payload (everything after the
// length prefix).
func parseRequest(p []byte) (request, error) {
	if len(p) < 2 {
		return request{}, fmt.Errorf("server: request frame %d bytes, want >= 2", len(p))
	}
	req := request{Op: p[0]}
	vlen := int(p[1])
	p = p[2:]
	if len(p) < vlen {
		return request{}, fmt.Errorf("server: request truncated inside volume name")
	}
	req.Volume = string(p[:vlen])
	p = p[vlen:]
	switch req.Op {
	case OpWrite, OpRead:
		if len(p) != 16 {
			return request{}, fmt.Errorf("server: %s body %d bytes, want 16", StatusName(StatusBadRequest), len(p))
		}
		req.Extent = geom.Ext(
			geom.Sector(binary.LittleEndian.Uint64(p[0:8])),
			int64(binary.LittleEndian.Uint64(p[8:16])),
		)
		if req.Extent.Start < 0 || req.Extent.Count < 0 {
			return request{}, fmt.Errorf("server: negative extent %v", req.Extent)
		}
	case OpProof:
		if len(p) != 8 {
			return request{}, fmt.Errorf("server: proof body %d bytes, want 8", len(p))
		}
		req.Seq = int64(binary.LittleEndian.Uint64(p[0:8]))
		if req.Seq < 1 {
			return request{}, fmt.Errorf("server: proof sequence %d, want >= 1", req.Seq)
		}
	case OpShip, OpTail, OpAck:
		if len(p) != 16 {
			return request{}, fmt.Errorf("server: repl body %d bytes, want 16", len(p))
		}
		req.Gen = binary.LittleEndian.Uint64(p[0:8])
		req.Off = int64(binary.LittleEndian.Uint64(p[8:16]))
		if req.Off < 0 {
			return request{}, fmt.Errorf("server: negative repl offset %d", req.Off)
		}
	case OpStat, OpSnapshot, OpVerify, OpRole, OpPromote:
		if len(p) != 0 {
			return request{}, fmt.Errorf("server: op %d carries %d unexpected body bytes", req.Op, len(p))
		}
	default:
		return request{}, fmt.Errorf("server: unknown op %d", req.Op)
	}
	return req, nil
}

// appendResponse encodes a response frame:
//
//	len uint32 LE | status uint8 | body
//
// For StatusOK the body is op-specific (read: frags uint32 LE; stat:
// JSON statistics; write/snapshot: empty). For errors it is a UTF-8
// message.
func appendResponse(dst []byte, status uint8, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(body)))
	dst = append(dst, status)
	return append(dst, body...)
}

// readFrame reads one length-prefixed frame payload into buf (growing it
// as needed) and returns the payload slice.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("server: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds the %d-byte cap", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("server: truncated frame: %w", err)
	}
	return buf, nil
}

// RoleInfo is the OpRole / OpPromote response body (JSON): the node's
// replication role, fencing epoch, and per-volume journal positions.
type RoleInfo struct {
	// Role is "primary", "follower", or "fenced" (a demoted ex-primary
	// that refuses data ops).
	Role string `json:"role"`
	// Epoch is the fencing epoch: bumped by every promotion, persisted,
	// and compared on rejoin — the higher epoch is the serving primary.
	Epoch uint64 `json:"epoch"`
	// Volumes maps volume names to replication positions. On a primary
	// the position is the sealed extent of the live journal; on a
	// follower it is the verified, applied extent.
	Volumes map[string]ReplPosition `json:"volumes"`
}

// ReplPosition is one volume's journal replication position.
type ReplPosition struct {
	// Gen is the journal generation.
	Gen uint64 `json:"gen"`
	// Bytes is the sealed byte extent within that generation's file.
	Bytes int64 `json:"bytes"`
	// Records is the cumulative sealed-record watermark (primary) or the
	// applied sealed-record count (follower); used with (Gen, Bytes) to
	// rank followers by caught-up-ness.
	Records int64 `json:"records"`
}

// Less orders positions by caught-up-ness: generation first (a newer
// generation subsumes every older one), sealed bytes within it second.
func (p ReplPosition) Less(o ReplPosition) bool {
	if p.Gen != o.Gen {
		return p.Gen < o.Gen
	}
	return p.Bytes < o.Bytes
}

// Ship response body layout (after the status byte):
//
//	kind uint8 | gen uint64 LE | off uint64 LE | epoch uint64 LE | data
//
// kind/gen/off/data are a journal.ShipChunk; epoch is the responding
// primary's fencing epoch, letting a follower detect a demoted source.
const shipRespHeader = 1 + 8 + 8 + 8

// appendShipBody encodes a ship/tail response body.
func appendShipBody(dst []byte, epoch uint64, c journal.ShipChunk) []byte {
	dst = append(dst, c.Kind)
	dst = binary.LittleEndian.AppendUint64(dst, c.Gen)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Off))
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	return append(dst, c.Data...)
}

// parseShipBody decodes a ship/tail response body.
func parseShipBody(p []byte) (epoch uint64, c journal.ShipChunk, err error) {
	if len(p) < shipRespHeader {
		return 0, c, fmt.Errorf("server: ship response %d bytes, want >= %d", len(p), shipRespHeader)
	}
	c.Kind = p[0]
	c.Gen = binary.LittleEndian.Uint64(p[1:9])
	c.Off = int64(binary.LittleEndian.Uint64(p[9:17]))
	epoch = binary.LittleEndian.Uint64(p[17:25])
	if c.Off < 0 {
		return 0, c, fmt.Errorf("server: negative ship offset %d", c.Off)
	}
	if len(p) > shipRespHeader {
		c.Data = append([]byte(nil), p[shipRespHeader:]...)
	}
	return epoch, c, nil
}

// handshake performs one side's hello exchange: write ours, read theirs.
func handshake(rw io.ReadWriter) error {
	hello := append([]byte(Magic), Version)
	if _, err := rw.Write(hello); err != nil {
		return err
	}
	var peer [len(Magic) + 1]byte
	if _, err := io.ReadFull(rw, peer[:]); err != nil {
		return fmt.Errorf("server: handshake: %w", err)
	}
	if string(peer[:len(Magic)]) != Magic {
		return fmt.Errorf("server: bad handshake magic %q", peer[:len(Magic)])
	}
	if peer[len(Magic)] != Version {
		return fmt.Errorf("server: protocol version %d, want %d", peer[len(Magic)], Version)
	}
	return nil
}
