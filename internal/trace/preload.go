package trace

import "smrseek/internal/geom"

// Preloaded is a trace parsed once into a compact in-memory arena, for
// replaying the same records through many simulator configurations
// without re-reading or re-parsing the source. It caches MaxLBA so
// per-run frontier placement does not rescan the records.
type Preloaded struct {
	recs   []Record
	maxLBA geom.Sector
}

// Preload drains r into an arena. The reader's error, if any, is
// returned and no arena is built.
func Preload(r Reader) (*Preloaded, error) {
	recs, err := ReadAll(r)
	if err != nil {
		return nil, err
	}
	return PreloadRecords(recs), nil
}

// PreloadRecords builds an arena over an in-memory record slice. A slice
// with append slack (cap > len, as ReadAll's doubling growth leaves) is
// copied into an exactly-sized array so the arena pins no dead capacity;
// a tight slice is adopted as-is. Either way the records are shared with
// the caller afterwards and must not be mutated.
func PreloadRecords(recs []Record) *Preloaded {
	if cap(recs) > len(recs) {
		compact := make([]Record, len(recs))
		copy(compact, recs)
		recs = compact
	}
	return &Preloaded{recs: recs, maxLBA: MaxLBA(recs)}
}

// Records returns the arena's records, shared not copied — treat the
// slice as read-only.
func (p *Preloaded) Records() []Record { return p.recs }

// Len returns the number of records in the arena.
func (p *Preloaded) Len() int { return len(p.recs) }

// MaxLBA returns the cached highest end LBA across the records (0 for
// an empty trace).
func (p *Preloaded) MaxLBA() geom.Sector { return p.maxLBA }

// NewReader returns a fresh Reader positioned at the first record.
// Readers are independent cursors over the shared arena, so concurrent
// simulations can each replay the trace without copying it.
func (p *Preloaded) NewReader() *SliceReader { return NewSliceReader(p.recs) }
