// Package band is the finite-disk SMR device model: the banded
// counterpart to the paper's infinite disk (internal/disk). The medium
// is divided into fixed-size shingled bands with a per-band write
// pointer; writing a band anywhere below its pointer would destroy the
// shingled tracks above, so such rewrites are redirected into a
// persistent on-disk cache region and merged back later by band
// cleaning (a read-modify-write of the whole band). The device
// implements disk.Device, so internal/core drives it exactly like the
// infinite model and every translation layer and mechanism runs
// unchanged on either geometry.
//
// Placement of redirected writes is pluggable (PolA, PolB, Shelter —
// the classic drive-managed SMR policies), and cleaning is triggered by
// configurable low/high watermarks: above the low watermark the device
// cleans one band per host operation (modelling idle-time cleaning);
// when space runs out or the high watermark is hit the clean happens
// synchronously under the host op and is accounted as a stall.
//
// Honest limitations of the model, in one place:
//   - It is a seek/accounting model, not a data model: no bytes move,
//     only head positions and counters.
//   - The cache region is modelled as conventional (unshingled) media,
//     as is the space above DataSectors where translation-layer logs
//     (the LS frontier) live.
//   - Sheltered pieces land in the unwritten tail of the band the head
//     is in; that space is borrowed, and cleaning reclaims its
//     accounting but not the borrowed sectors themselves.
//   - "Background" (non-stall) cleans still execute synchronously in
//     simulated time; the stall counter distinguishes cleans the host
//     had to wait for from cleans an idle drive would have absorbed.
//   - Fault injection composes with the pass-through paths, but retry
//     semantics for redirected writes are undefined (a retried redirect
//     would re-append); the CLIs reject that combination.
package band

import (
	"fmt"

	"smrseek/internal/disk"
	"smrseek/internal/extmap"
	"smrseek/internal/geom"
	"smrseek/internal/metrics"
)

// Policy selects where redirected (cache-bound) writes are placed.
type Policy uint8

const (
	// PolA appends to the cache unit whose write position is nearest
	// the current head, and cleaning picks the dirtiest band globally —
	// the "many caches clean" policy.
	PolA Policy = iota
	// PolB statically assigns each band to a cache unit (band mod
	// units) and writes to that band's own log; a full unit triggers a
	// "single cache clean" of exactly the bands assigned to it.
	PolB
	// Shelter places small rewrites at the shelter point — immediately
	// after the tail of the last big I/O, where the head already is, so
	// the write is seek-free — and treats big rewrites like PolA.
	Shelter
)

// String returns the CLI spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolA:
		return "pol-a"
	case PolB:
		return "pol-b"
	case Shelter:
		return "shelter"
	}
	return fmt.Sprintf("Policy(%d)", p)
}

// ParsePolicy parses the CLI spelling ("pol-a", "pol-b", "shelter").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "pol-a", "a":
		return PolA, nil
	case "pol-b", "b":
		return PolB, nil
	case "shelter":
		return Shelter, nil
	}
	return 0, fmt.Errorf("band: unknown policy %q (want pol-a, pol-b or shelter)", s)
}

// DefaultBandSectors is 10 MB of sectors — the band size the classic
// SMR simulators default to.
const DefaultBandSectors = 10 * 1000 * 1000 / geom.SectorSize

// DefaultDataSectors places the persistent cache far above any address
// a trace or translation-layer log reaches, so the banded data region
// never collides with it.
const DefaultDataSectors = geom.Sector(1) << 40

// Config describes the banded geometry and the persistent cache.
type Config struct {
	// BandSectors is the shingled band size (default DefaultBandSectors).
	BandSectors int64
	// CacheSectors is the persistent cache capacity; 0 disables the
	// cache entirely, making every access pass through in place —
	// bit-identical to the infinite model.
	CacheSectors int64
	// UnitSectors is the cache allocation unit (default BandSectors,
	// clamped to CacheSectors). The cache holds CacheSectors/UnitSectors
	// append logs; a redirected piece never spans two units.
	UnitSectors int64
	// Policy selects the placement policy (default PolA).
	Policy Policy
	// DataSectors bounds the banded region [0, DataSectors); the cache
	// begins at DataSectors and everything above the cache is
	// conventional pass-through space (default DefaultDataSectors).
	DataSectors geom.Sector
	// CleanLo and CleanHi are the cleaning trigger thresholds as
	// fractions of CacheSectors (defaults 0.7 and 0.9): above CleanLo
	// the device cleans one band per host op; at CleanHi — or when an
	// allocation fails — it cleans synchronously and records a stall.
	CleanLo, CleanHi float64
	// ShelterSectors is the Shelter policy's small-write threshold
	// (default 64 sectors = 32 KB); bigger rewrites go to the cache.
	ShelterSectors int64
}

func (c Config) withDefaults() Config {
	if c.BandSectors == 0 {
		c.BandSectors = DefaultBandSectors
	}
	if c.UnitSectors == 0 {
		c.UnitSectors = c.BandSectors
	}
	if c.CacheSectors > 0 && c.UnitSectors > c.CacheSectors {
		c.UnitSectors = c.CacheSectors
	}
	if c.DataSectors == 0 {
		c.DataSectors = DefaultDataSectors
	}
	if c.CleanLo == 0 {
		c.CleanLo = 0.7
	}
	if c.CleanHi == 0 {
		c.CleanHi = 0.9
	}
	if c.ShelterSectors == 0 {
		c.ShelterSectors = 64
	}
	return c
}

// Validate reports configuration errors (after defaulting).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.BandSectors <= 0 {
		return fmt.Errorf("band: band size %d sectors, want > 0", c.BandSectors)
	}
	if c.CacheSectors < 0 {
		return fmt.Errorf("band: negative cache size %d", c.CacheSectors)
	}
	if c.CacheSectors > 0 && c.UnitSectors <= 0 {
		return fmt.Errorf("band: cache unit %d sectors, want > 0", c.UnitSectors)
	}
	if c.DataSectors <= 0 {
		return fmt.Errorf("band: data region %d sectors, want > 0", c.DataSectors)
	}
	if c.CleanLo < 0 || c.CleanHi > 1 || c.CleanLo > c.CleanHi {
		return fmt.Errorf("band: watermarks lo=%v hi=%v, want 0 <= lo <= hi <= 1", c.CleanLo, c.CleanHi)
	}
	if c.ShelterSectors <= 0 {
		return fmt.Errorf("band: shelter threshold %d sectors, want > 0", c.ShelterSectors)
	}
	switch c.Policy {
	case PolA, PolB, Shelter:
	default:
		return fmt.Errorf("band: unknown policy %d", c.Policy)
	}
	return nil
}

// bandState is the per-band shingle bookkeeping.
type bandState struct {
	wmark  geom.Sector // write pointer: [bandStart, wmark) holds in-place data
	cached int64       // live sectors currently redirected to the cache
}

// cacheUnit is one append log inside the cache region.
type cacheUnit struct {
	start geom.Sector // physical start of the unit
	fill  int64       // appended sectors (monotonic until reclaim)
	live  int64       // live mapped sectors; 0 => the unit is reclaimable
}

// Device is the banded SMR device model. It implements disk.Device by
// wrapping the infinite head-position engine: every physical access —
// pass-through, cache redirect, cleaning RMW — goes through the same
// §II seek arithmetic, so disk.Counters mean exactly what they mean on
// the infinite model, cleaning cost included.
type Device struct {
	cfg   Config
	inner *disk.Disk

	bands map[int64]*bandState
	cmap  *extmap.Map // device address -> physical location of redirected data
	units []cacheUnit

	cacheLive   int64       // live sectors in the cache region
	shelterLive int64       // live sheltered sectors (outside the cache region)
	dirtyBands  int64       // bands with cached > 0
	shelterPos  geom.Sector // tail of the last big in-place access

	cleaning metrics.Cleaning

	stalled  bool          // a stall clean already ran during this op
	fragBuf  []geom.Extent // scratch: cached fragments of the band being cleaned
	physBuf  []geom.Extent // scratch: their physical locations
	unitsBuf []int64       // scratch: PolB bands assigned to a unit
}

var _ disk.Device = (*Device)(nil)

// New builds a banded device from the configuration.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &Device{
		cfg:   cfg,
		inner: disk.New(),
		bands: make(map[int64]*bandState),
		cmap:  extmap.New(),
	}
	if cfg.CacheSectors > 0 {
		n := cfg.CacheSectors / cfg.UnitSectors
		if n < 1 {
			n = 1
		}
		d.units = make([]cacheUnit, n)
		for i := range d.units {
			d.units[i].start = cfg.DataSectors + geom.Sector(i)*cfg.UnitSectors
		}
	}
	return d, nil
}

// ModelName identifies the geometry in config labels ("band").
func (d *Device) ModelName() string { return "band" }

// Counters returns the inner head engine's seek statistics; cleaning
// I/O is included, exactly as the mechanical work happened.
func (d *Device) Counters() disk.Counters { return d.inner.Counters() }

// Position returns the sector following the previous physical I/O.
func (d *Device) Position() geom.Sector { return d.inner.Position() }

// AddObserver registers an observer on the inner engine; it sees every
// physical access, cleaning included.
func (d *Device) AddObserver(o disk.Observer) { d.inner.AddObserver(o) }

// SetFaultChecker installs a fault checker on the inner engine. With
// the cache enabled the redirect paths do not retry coherently (see the
// package comment); callers gate that combination.
func (d *Device) SetFaultChecker(fc disk.FaultChecker) { d.inner.SetFaultChecker(fc) }

// Cleaning returns the cache/cleaning counters, with the dirty-band
// gauge sampled now.
func (d *Device) Cleaning() metrics.Cleaning {
	c := d.cleaning
	c.DirtyBands = d.dirtyBands
	return c
}

// band returns the index of the band containing s.
func (d *Device) band(s geom.Sector) int64 { return int64(s) / d.cfg.BandSectors }

func (d *Device) bandStart(b int64) geom.Sector { return geom.Sector(b) * d.cfg.BandSectors }

func (d *Device) bandEnd(b int64) geom.Sector {
	end := geom.Sector(b+1) * d.cfg.BandSectors
	if end > d.cfg.DataSectors {
		end = d.cfg.DataSectors
	}
	return end
}

// state returns the band's bookkeeping, creating it at the band's
// pristine state (write pointer at the band start) on first touch.
func (d *Device) state(b int64) *bandState {
	bs := d.bands[b]
	if bs == nil {
		bs = &bandState{wmark: d.bandStart(b)}
		d.bands[b] = bs
	}
	return bs
}

// noteCrossings charges the band boundaries a data-region access sweeps.
func (d *Device) noteCrossings(ext geom.Extent) {
	if ext.Start >= d.cfg.DataSectors {
		return
	}
	end := ext.End()
	if end > d.cfg.DataSectors {
		end = d.cfg.DataSectors
	}
	if n := d.band(end-1) - d.band(ext.Start); n > 0 {
		d.cleaning.BandCrossings += n
	}
}

// noteTail moves the shelter point after a big in-place access.
func (d *Device) noteTail(ext geom.Extent) {
	if ext.Count > d.cfg.ShelterSectors && ext.End() <= d.cfg.DataSectors {
		d.shelterPos = ext.End()
	}
}

// advance pushes the write pointers of every band [ext.Start, ext.End())
// covers at least to the written extent's end within each band.
func (d *Device) advance(ext geom.Extent) {
	end := ext.End()
	if end > d.cfg.DataSectors {
		end = d.cfg.DataSectors
	}
	for cur := ext.Start; cur < end; {
		b := d.band(cur)
		bs := d.state(b)
		chunkEnd := d.bandEnd(b)
		if chunkEnd > end {
			chunkEnd = end
		}
		if chunkEnd > bs.wmark {
			bs.wmark = chunkEnd
		}
		cur = chunkEnd
	}
}

// TryDo performs one host I/O. With the cache disabled every access is
// a single pass-through of the inner engine — bit-identical to the
// infinite model — while band write pointers are still tracked. With
// the cache enabled, reads resolve through the cache map and rewrites
// below a band's write pointer are redirected per the policy. The
// returned Access summarizes the (possibly several) physical accesses:
// Seeked and Distance report the first physical seek, Extent the host's
// request.
func (d *Device) TryDo(kind disk.OpKind, ext geom.Extent) (disk.Access, error) {
	if ext.Empty() {
		return disk.Access{Kind: kind, Extent: ext}, nil
	}
	d.noteCrossings(ext)
	if d.cfg.CacheSectors == 0 {
		if kind == disk.Write {
			d.cleaning.HostWriteSectors += ext.Count
			d.advance(ext)
			d.noteTail(ext)
		}
		return d.inner.TryDo(kind, ext)
	}
	d.stalled = false
	var sum summary
	var err error
	if kind == disk.Read {
		err = d.doRead(ext, &sum)
	} else {
		err = d.doWrite(ext, &sum)
	}
	d.softClean()
	a := disk.Access{Kind: kind, Extent: ext, Seeked: sum.seeked, Distance: sum.distance, Faulted: err != nil}
	return a, err
}

// summary folds several physical accesses into the one Access TryDo
// reports upward.
type summary struct {
	seeked   bool
	distance int64
	err      error
}

func (s *summary) note(a disk.Access, err error) {
	if a.Seeked && !s.seeked {
		s.seeked = true
		s.distance = a.Distance
	}
	if err != nil && s.err == nil {
		s.err = err
	}
}

// access plays one physical I/O through the inner engine.
func (d *Device) access(kind disk.OpKind, ext geom.Extent, sum *summary) error {
	a, err := d.inner.TryDo(kind, ext)
	if sum != nil {
		sum.note(a, err)
	}
	return err
}

// doRead resolves the host extent through the cache map: identity
// pieces are read in place, redirected pieces at their cache location —
// the extra seeks that make cached data expensive to read back.
func (d *Device) doRead(ext geom.Extent, sum *summary) error {
	d.cmap.LookupFunc(ext, func(r extmap.Resolved) bool {
		if !r.Identity {
			d.cleaning.CacheReads++
		}
		d.access(disk.Read, r.PhysExtent(), sum)
		return true
	})
	d.noteTail(ext)
	return sum.err
}

// doWrite walks the host extent band by band, coalescing in-place runs
// (pieces at or above their band's write pointer) into single physical
// writes and redirecting rewrites into the cache.
func (d *Device) doWrite(ext geom.Extent, sum *summary) error {
	d.cleaning.HostWriteSectors += ext.Count
	runStart := ext.Start
	flush := func(end geom.Sector) {
		if end > runStart {
			run := geom.Span(runStart, end)
			d.access(disk.Write, run, sum)
			d.noteTail(run)
		}
	}
	for cur := ext.Start; cur < ext.End(); {
		if cur >= d.cfg.DataSectors {
			// Conventional space above the cache: pass through.
			cur = ext.End()
			break
		}
		b := d.band(cur)
		bs := d.state(b)
		chunkEnd := d.bandEnd(b)
		if chunkEnd > ext.End() {
			chunkEnd = ext.End()
		}
		if cur >= bs.wmark {
			// At or above the write pointer: shingle-friendly append.
			if chunkEnd > bs.wmark {
				bs.wmark = chunkEnd
			}
		} else {
			// Rewrite below the pointer: redirect to the cache. The
			// pointer advances past the piece first — so the redirected
			// range can never be shadowed by a later in-place write, and
			// so a clean triggered mid-redirect (a later piece's
			// allocation may have to clean this very band) sees the full
			// region and collects the pieces already inserted.
			flush(cur)
			if chunkEnd > bs.wmark {
				bs.wmark = chunkEnd
			}
			d.redirect(geom.Span(cur, chunkEnd), b, bs, sum)
			runStart = chunkEnd
		}
		cur = chunkEnd
	}
	flush(ext.End())
	return sum.err
}

// redirect places one rewrite piece (confined to a single band) into
// the persistent cache per the policy and records the mapping.
func (d *Device) redirect(ext geom.Extent, b int64, bs *bandState, sum *summary) {
	if d.cfg.Policy == Shelter && ext.Count <= d.cfg.ShelterSectors {
		if d.shelterWrite(ext, b, bs, sum) {
			return
		}
	}
	// A piece never spans cache units; split to the unit size first.
	for cur := ext.Start; cur < ext.End(); {
		n := ext.End() - cur
		if n > d.cfg.UnitSectors {
			n = d.cfg.UnitSectors
		}
		piece := geom.Ext(cur, n)
		u := d.alloc(piece.Count, b)
		phys := d.units[u].start + geom.Sector(d.units[u].fill)
		d.units[u].fill += piece.Count
		d.units[u].live += piece.Count
		d.cacheLive += piece.Count
		d.access(disk.Write, geom.Ext(phys, piece.Count), sum)
		d.insert(piece, phys, b, bs)
		cur += n
	}
}

// insert records the device->cache mapping for a redirected piece,
// releasing whatever older redirections it displaced.
func (d *Device) insert(devExt geom.Extent, phys geom.Sector, b int64, bs *bandState) {
	wasDirty := bs.cached > 0
	bs.cached += devExt.Count
	d.cmap.InsertFunc(devExt, phys, func(old extmap.Mapping) bool {
		d.release(old)
		bs.cached -= old.Lba.Count
		return true
	})
	if !wasDirty && bs.cached > 0 {
		d.dirtyBands++
	}
	d.cleaning.CachedWrites++
	d.cleaning.CachedSectors += devExt.Count
}

// release drops the live accounting for one no-longer-mapped piece.
func (d *Device) release(m extmap.Mapping) {
	if m.Pba >= d.cfg.DataSectors {
		u := int((m.Pba - d.cfg.DataSectors) / geom.Sector(d.cfg.UnitSectors))
		if u >= 0 && u < len(d.units) {
			d.units[u].live -= m.Lba.Count
			if d.units[u].live == 0 {
				d.units[u].fill = 0 // whole log dead: reclaim it
			}
		}
		d.cacheLive -= m.Lba.Count
	} else {
		d.shelterLive -= m.Lba.Count
	}
}

// shelterWrite places a small rewrite at the shelter point — the
// unwritten tail of the band the head is already in — so it costs no
// seek. Reports false when the shelter band has no room, sending the
// piece down the cache path instead.
func (d *Device) shelterWrite(ext geom.Extent, b int64, bs *bandState, sum *summary) bool {
	sb := d.band(d.shelterPos)
	ss := d.state(sb)
	target := d.shelterPos
	if ss.wmark > target {
		target = ss.wmark
	}
	if target+geom.Sector(ext.Count) > d.bandEnd(sb) {
		return false
	}
	// Capacity: sheltered sectors draw on the cache budget; make room
	// like any redirected write would.
	d.ensureBudget(ext.Count, sum)
	d.access(disk.Write, geom.Ext(target, ext.Count), sum)
	if target+geom.Sector(ext.Count) > ss.wmark {
		ss.wmark = target + geom.Sector(ext.Count)
	}
	d.shelterLive += ext.Count
	wasDirty := bs.cached > 0
	bs.cached += ext.Count
	d.cmap.InsertFunc(ext, target, func(old extmap.Mapping) bool {
		d.release(old)
		bs.cached -= old.Lba.Count
		return true
	})
	if !wasDirty && bs.cached > 0 {
		d.dirtyBands++
	}
	d.shelterPos = target + geom.Sector(ext.Count)
	d.cleaning.CachedWrites++
	d.cleaning.CachedSectors += ext.Count
	return true
}

// alloc returns the index of the cache unit a piece of n sectors lands
// in, cleaning synchronously (a stall) when no unit has room. n never
// exceeds UnitSectors, and a full clean empties every unit, so this
// always terminates with room.
func (d *Device) alloc(n int64, b int64) int {
	if d.cfg.Policy == PolB {
		u := int(b % int64(len(d.units)))
		if d.units[u].fill+n > d.cfg.UnitSectors {
			d.cleanUnit(u)
		}
		return u
	}
	for {
		if u := d.nearestWithRoom(n); u >= 0 {
			return u
		}
		if !d.stallCleanOne() {
			// Nothing dirty left yet no room: every unit is pure
			// garbage-free live data — impossible by construction, but
			// never loop forever on a broken invariant.
			return 0
		}
	}
}

// nearestWithRoom picks the unit with room whose append position is
// closest to the head, minimizing the redirect seek (PolA's heuristic).
func (d *Device) nearestWithRoom(n int64) int {
	pos := d.inner.Position()
	best, bestDist := -1, int64(0)
	for i := range d.units {
		if d.units[i].fill+n > d.cfg.UnitSectors {
			continue
		}
		dist := int64(d.units[i].start) + d.units[i].fill - int64(pos)
		if dist < 0 {
			dist = -dist
		}
		if best < 0 || dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// ensureBudget stall-cleans until the live total fits under the high
// watermark with n more sectors coming.
func (d *Device) ensureBudget(n int64, sum *summary) {
	hi := int64(d.cfg.CleanHi * float64(d.cfg.CacheSectors))
	for d.cacheLive+d.shelterLive+n > hi {
		if !d.stallCleanOne() {
			return
		}
	}
}

// softClean models idle-time cleaning: above the low watermark, clean
// one band per host operation. Skipped on ops that already stalled.
func (d *Device) softClean() {
	if d.stalled || d.dirtyBands == 0 {
		return
	}
	lo := int64(d.cfg.CleanLo * float64(d.cfg.CacheSectors))
	if d.cacheLive+d.shelterLive <= lo {
		if d.cfg.Policy == PolB {
			d.softCleanUnits()
		}
		return
	}
	if b, ok := d.dirtiestBand(-1); ok {
		d.cleaning.CleanRuns++
		d.cleanBand(b)
	}
}

// softCleanUnits is PolB's low-watermark rule: a unit filled past the
// low fraction cleans one of its assigned bands per op, so garbage-only
// logs drain back to empty without waiting for the hard trigger.
func (d *Device) softCleanUnits() {
	lo := int64(d.cfg.CleanLo * float64(d.cfg.UnitSectors))
	for u := range d.units {
		if d.units[u].fill <= lo {
			continue
		}
		if b, ok := d.dirtiestBand(int64(u)); ok {
			d.cleaning.CleanRuns++
			d.cleanBand(b)
			return
		}
	}
}

// stallCleanOne cleans the globally dirtiest band under a host op,
// charging a stall for the first such clean of the op. Reports false
// when no band is dirty.
func (d *Device) stallCleanOne() bool {
	b, ok := d.dirtiestBand(-1)
	if !ok {
		return false
	}
	d.cleaning.CleanRuns++
	if !d.stalled {
		d.stalled = true
		d.cleaning.Stalls++
	}
	before := d.cleaning.CleanReadSectors + d.cleaning.CleanWriteSectors
	d.cleanBand(b)
	d.cleaning.StallSectors += d.cleaning.CleanReadSectors + d.cleaning.CleanWriteSectors - before
	return true
}

// cleanUnit is PolB's hard trigger: the band's own log is full, so
// every band assigned to this unit is cleaned — after which the unit's
// live count is zero and its log is reclaimed.
func (d *Device) cleanUnit(u int) {
	d.cleaning.CleanRuns++
	if !d.stalled {
		d.stalled = true
		d.cleaning.Stalls++
	}
	before := d.cleaning.CleanReadSectors + d.cleaning.CleanWriteSectors
	d.unitsBuf = d.unitsBuf[:0]
	for b, bs := range d.bands {
		if bs.cached > 0 && b%int64(len(d.units)) == int64(u) {
			d.unitsBuf = append(d.unitsBuf, b)
		}
	}
	sortInt64s(d.unitsBuf)
	for _, b := range d.unitsBuf {
		d.cleanBand(b)
	}
	d.cleaning.StallSectors += d.cleaning.CleanReadSectors + d.cleaning.CleanWriteSectors - before
}

// dirtiestBand picks the dirty band with the most cached sectors
// (lowest index on ties, so runs are deterministic under Go's random
// map iteration). unit >= 0 restricts the choice to PolB's assignment.
func (d *Device) dirtiestBand(unit int64) (int64, bool) {
	best, bestCached := int64(0), int64(0)
	found := false
	for b, bs := range d.bands {
		if bs.cached <= 0 {
			continue
		}
		if unit >= 0 && b%int64(len(d.units)) != unit {
			continue
		}
		if !found || bs.cached > bestCached || (bs.cached == bestCached && b < best) {
			best, bestCached, found = b, bs.cached, true
		}
	}
	return best, found
}

// cleanBand read-modify-writes one dirty band: read its redirected
// pieces from wherever they live, read the band's in-place region,
// write the whole region back sequentially, and drop the mappings.
// Cleaning I/O goes through the inner engine unobserved by sum — it is
// charged to the device's own counters and to disk.Counters, not to a
// particular host access summary.
func (d *Device) cleanBand(b int64) {
	bs := d.bands[b]
	if bs == nil || bs.cached == 0 {
		return
	}
	region := geom.Span(d.bandStart(b), bs.wmark)
	d.fragBuf = d.fragBuf[:0]
	d.physBuf = d.physBuf[:0]
	d.cmap.LookupFunc(region, func(r extmap.Resolved) bool {
		if !r.Identity {
			d.fragBuf = append(d.fragBuf, r.Lba)
			d.physBuf = append(d.physBuf, r.PhysExtent())
		}
		return true
	})
	// Gather: the cached pieces first (the seeks to the cache are the
	// price of the earlier cheap writes), then the in-place survivors.
	for _, p := range d.physBuf {
		d.access(disk.Read, p, nil)
		d.cleaning.CleanReadSectors += p.Count
	}
	if !region.Empty() {
		d.access(disk.Read, region, nil)
		d.cleaning.CleanReadSectors += region.Count
		d.access(disk.Write, region, nil)
		d.cleaning.CleanWriteSectors += region.Count
	}
	for _, lba := range d.fragBuf {
		for _, m := range d.cmap.Delete(lba) {
			d.release(m)
		}
	}
	bs.cached = 0
	d.dirtyBands--
	d.cleaning.BandsCleaned++
}

// sortInt64s is a tiny insertion sort — unit band lists are short.
func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CheckInvariants verifies the allocator's structural invariants — the
// fuzz target's oracle:
//   - no two mappings overlap physically (each cache sector backs at
//     most one device sector);
//   - every cache-region mapping lies below its unit's fill pointer;
//   - per-unit and global live counts equal the mapped totals;
//   - a band's cached count equals its mapped sectors, and the dirty
//     gauge counts exactly the bands with cached data;
//   - every mapping lies below its band's write pointer.
func (d *Device) CheckInvariants() error {
	if err := d.cmap.CheckInvariants(); err != nil {
		return err
	}
	unitLive := make([]int64, len(d.units))
	bandCached := make(map[int64]int64)
	var cacheLive, shelterLive int64
	type span struct{ start, end geom.Sector }
	var phys []span
	var fail error
	d.cmap.Walk(func(m extmap.Mapping) bool {
		phys = append(phys, span{m.Pba, m.PhysEnd()})
		if m.Pba >= d.cfg.DataSectors {
			u := int((m.Pba - d.cfg.DataSectors) / geom.Sector(d.cfg.UnitSectors))
			if u < 0 || u >= len(d.units) {
				fail = fmt.Errorf("mapping %v outside cache units", m)
				return false
			}
			end := m.Pba + geom.Sector(m.Lba.Count) - d.units[u].start
			if end > geom.Sector(d.units[u].fill) {
				fail = fmt.Errorf("mapping %v beyond unit %d fill %d", m, u, d.units[u].fill)
				return false
			}
			unitLive[u] += m.Lba.Count
			cacheLive += m.Lba.Count
		} else {
			shelterLive += m.Lba.Count
		}
		b := d.band(m.Lba.Start)
		bandCached[b] += m.Lba.Count
		if bs := d.bands[b]; bs == nil || m.Lba.End() > bs.wmark {
			fail = fmt.Errorf("mapping %v above band %d write pointer", m, b)
			return false
		}
		return true
	})
	if fail != nil {
		return fail
	}
	for i := range phys {
		for j := i + 1; j < len(phys); j++ {
			if phys[i].start < phys[j].end && phys[j].start < phys[i].end {
				return fmt.Errorf("physical overlap: [%d,%d) and [%d,%d)",
					phys[i].start, phys[i].end, phys[j].start, phys[j].end)
			}
		}
	}
	if cacheLive != d.cacheLive || shelterLive != d.shelterLive {
		return fmt.Errorf("live accounting: have cache=%d shelter=%d, want %d/%d",
			d.cacheLive, d.shelterLive, cacheLive, shelterLive)
	}
	for u := range d.units {
		if d.units[u].live != unitLive[u] {
			return fmt.Errorf("unit %d live %d, want %d", u, d.units[u].live, unitLive[u])
		}
		if d.units[u].fill < unitLive[u] || d.units[u].fill > d.cfg.UnitSectors {
			return fmt.Errorf("unit %d fill %d out of range (live %d, cap %d)",
				u, d.units[u].fill, unitLive[u], d.cfg.UnitSectors)
		}
	}
	var dirty int64
	for b, bs := range d.bands {
		if bs.cached != bandCached[b] {
			return fmt.Errorf("band %d cached %d, want %d", b, bs.cached, bandCached[b])
		}
		if bs.cached > 0 {
			dirty++
		}
		if bs.wmark < d.bandStart(b) || bs.wmark > d.bandEnd(b) {
			return fmt.Errorf("band %d write pointer %d outside band", b, bs.wmark)
		}
	}
	if dirty != d.dirtyBands {
		return fmt.Errorf("dirty gauge %d, want %d", d.dirtyBands, dirty)
	}
	return nil
}
