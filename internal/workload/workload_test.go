package workload

import (
	"math"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Int63n(100); v < 0 || v >= 100 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) should panic")
		}
	}()
	r.Int63n(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBoolBias(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(13)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		k := z.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 should dominate rank 50 by roughly 51x under s=1; accept a
	// generous band.
	if counts[0] < counts[50]*10 {
		t.Errorf("skew too weak: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// The head must not be everything: tail ranks still get samples.
	if counts[99] == 0 {
		t.Error("tail rank never sampled")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(n<=0) should panic")
		}
	}()
	NewZipf(r, 0, 1)
}

func TestBuilderPrimitives(t *testing.T) {
	b := NewBuilder(1000)
	b.Read(10, 5)
	b.Write(20, 5)
	b.SeqWrite(100, 25, 10) // 3 chunks: 10,10,5
	b.SeqRead(200, 20, 0)   // chunk<=0 → single op
	b.AdvanceClock(500)
	b.Read(0, 0) // empty: dropped
	recs := b.Records()
	if len(recs) != 6 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Kind != disk.Read || recs[1].Kind != disk.Write {
		t.Error("kinds wrong")
	}
	if recs[5].Extent != geom.Ext(200, 20) {
		t.Errorf("seq read extent = %v", recs[5].Extent)
	}
	if recs[2].Extent != geom.Ext(100, 10) || recs[3].Extent != geom.Ext(110, 10) {
		t.Errorf("seq write extents wrong: %v %v", recs[2].Extent, recs[3].Extent)
	}
	// Clock advances monotonically.
	for i := 1; i < len(recs); i++ {
		if recs[i].Time <= recs[i-1].Time {
			t.Fatal("clock must advance")
		}
	}
	// SeqWrite chunk remainder: last chunk is 5 sectors at 120.
	all, _ := trace.ReadAll(trace.NewSliceReader(recs))
	var seqTotal int64
	for _, r := range all[2:4] {
		seqTotal += r.Extent.Count
	}
	if seqTotal != 20 {
		t.Errorf("first two seq chunks = %d sectors", seqTotal)
	}
}

func TestMisorderedWritePatterns(t *testing.T) {
	for _, pat := range []MisorderPattern{Descending, Interleaved, Shuffled} {
		b := NewBuilder(0)
		b.MisorderedWrite(100, 8, 4, pat, NewRNG(5))
		recs := b.Records()
		if len(recs) != 8 {
			t.Fatalf("pattern %v: %d records", pat, len(recs))
		}
		// All chunks present exactly once, covering [100,132).
		seen := map[geom.Sector]bool{}
		for _, r := range recs {
			if r.Kind != disk.Write || r.Extent.Count != 4 {
				t.Fatalf("pattern %v: bad record %v", pat, r)
			}
			seen[r.Extent.Start] = true
		}
		for s := geom.Sector(100); s < 132; s += 4 {
			if !seen[s] {
				t.Fatalf("pattern %v: chunk %d missing", pat, s)
			}
		}
		// Not strictly ascending (that would defeat the purpose).
		asc := true
		for i := 1; i < len(recs); i++ {
			if recs[i].Extent.Start < recs[i-1].Extent.Start {
				asc = false
			}
		}
		if asc {
			t.Errorf("pattern %v emitted ascending writes", pat)
		}
	}
	// Descending is exactly reversed.
	b := NewBuilder(0)
	b.MisorderedWrite(0, 4, 2, Descending, nil)
	recs := b.Records()
	for i, want := range []geom.Sector{6, 4, 2, 0} {
		if recs[i].Extent.Start != want {
			t.Fatalf("descending order wrong: %v", recs)
		}
	}
	// Degenerate inputs are no-ops.
	b2 := NewBuilder(0)
	b2.MisorderedWrite(0, 0, 4, Descending, nil)
	b2.MisorderedWrite(0, 4, 0, Descending, nil)
	if b2.Len() != 0 {
		t.Error("degenerate bursts should emit nothing")
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 21 {
		t.Fatalf("catalog has %d workloads, want 21", len(cat))
	}
	msr, cp := 0, 0
	seen := map[string]bool{}
	for _, p := range cat {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate workload %s", p.Name)
		}
		seen[p.Name] = true
		if p.Source == MSR {
			msr++
		} else {
			cp++
		}
		if p.OS == "" {
			t.Errorf("%s missing OS metadata", p.Name)
		}
	}
	if msr != 9 || cp != 12 {
		t.Errorf("msr=%d cloudphysics=%d, want 9/12", msr, cp)
	}
	if len(Names()) != 21 {
		t.Error("Names() incomplete")
	}
	if len(BySource(MSR)) != msr || len(BySource(CloudPhysics)) != cp {
		t.Error("BySource mismatch")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("w91")
	if err != nil || p.Name != "w91" {
		t.Fatalf("ByName(w91) = %v, %v", p.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("hm_1")
	a := p.Generate(0.2)
	b := p.Generate(0.2)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) < 1000 {
		t.Errorf("scale 0.2 of hm_1 gave only %d records", len(a))
	}
}

func TestGenerateRespectsProfileShape(t *testing.T) {
	for _, name := range []string{"usr_0", "w36", "w91", "w20"} {
		p, _ := ByName(name)
		recs := p.Generate(0.1)
		c := trace.Characterize(recs)
		if c.Ops == 0 {
			t.Fatalf("%s: empty", name)
		}
		// Write intensity within ±0.15 of the profile's target (bursts
		// and phases add variance).
		if got := c.WriteIntensity(); math.Abs(got-p.WriteFrac) > 0.15 {
			t.Errorf("%s: write intensity %v, profile says %v", name, got, p.WriteFrac)
		}
		// All extents inside the region (misorder bursts may poke just
		// past scan spans but never past the region).
		for _, r := range recs {
			if r.Extent.Start < 0 || r.Extent.End() > p.RegionSectors+(int64(p.MisorderChunks)*p.MisorderChunk) {
				t.Fatalf("%s: extent %v escapes region %d", name, r.Extent, p.RegionSectors)
			}
		}
	}
}

func TestGenerateScaleFloor(t *testing.T) {
	p, _ := ByName("hm_1")
	recs := p.Generate(-1) // invalid scale falls back to 1.0
	if len(recs) < p.BaseOps {
		t.Errorf("scale fallback generated %d < BaseOps", len(recs))
	}
	tiny := Profile{Name: "t", BaseOps: 1, RegionSectors: 10000, WriteFrac: 0.5}
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tiny.Generate(1)); got < 100 {
		t.Errorf("op floor not applied: %d", got)
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x"},
		{Name: "x", BaseOps: 10},
		{Name: "x", BaseOps: 10, RegionSectors: 100, WriteFrac: 1.5},
		{Name: "x", BaseOps: 10, RegionSectors: 100, ScanFrac: -0.1},
		{Name: "x", BaseOps: 10, RegionSectors: 100, HotReadFrac: 0.6, ScanFrac: 0.6},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestSourceString(t *testing.T) {
	if MSR.String() != "MSR" || CloudPhysics.String() != "CloudPhysics" {
		t.Error("Source.String wrong")
	}
}
