package main

// The pipelined driver: one SMRD2 connection per goroutine with a full
// window of requests in flight. Accounting is keyed by trace record,
// not by wire request — a shed record resubmits under a fresh request
// ID but keeps its original accounting slot, so it counts exactly one
// op (plus its shed count) no matter how many times it bounced. The
// synchronous driver gets this for free by blocking per record; here
// the dedupe is explicit (see TestPipelinedShedAccounting).

import (
	"context"
	"fmt"
	"time"

	"smrseek/internal/server"
	"smrseek/internal/trace"
)

// recSlot is one trace record's accounting identity across however many
// submissions it takes to land.
type recSlot struct {
	rec   trace.Record
	start time.Time // first submission; latency covers retries
	sheds int64
}

// drivePipelined replays the whole trace on one pipelined connection.
// Shed records are resubmitted (maxRetries per record); a dead or
// demoted primary triggers failover — drain the broken window, re-probe
// the replica set, redial, resubmit what never landed.
func drivePipelined(addr string, replicaSet []string, vol string, pre *trace.Preloaded, agg *tally, interval time.Duration, maxRetries, window int) error {
	var set *server.Set
	target := addr
	if len(replicaSet) > 0 {
		s, err := server.DialSet(context.Background(), replicaSet)
		if err != nil {
			return err
		}
		defer s.Close()
		set = s
		target = set.Primary()
	}
	ac, err := server.DialAsync(target, window)
	if err != nil {
		return err
	}
	defer func() { ac.Close() }()

	var (
		pending   = make(map[uint64]*recSlot) // request ID -> accounting slot
		done      = make(chan *server.Call, ac.Window())
		retryQ    []*recSlot
		inflight  int
		needFO    bool
		failovers int64
		recov     []time.Duration
		lastOK    time.Time
	)
	defer func() { agg.observeFailovers(failovers, recov) }()

	submit := func(sl *recSlot) bool {
		call, err := ac.SubmitStep(vol, sl.rec, done)
		if err != nil {
			// Sticky transport failure: nothing was sent; the slot waits
			// out the failover in the retry queue.
			retryQ = append(retryQ, sl)
			needFO = true
			return false
		}
		pending[call.ID] = sl
		inflight++
		return true
	}

	// reap classifies one completion: success is observed (exactly once
	// per record), sheds and failover-class errors re-queue the same
	// slot, anything else is fatal.
	reap := func(call *server.Call) error {
		sl := pending[call.ID]
		delete(pending, call.ID)
		inflight--
		if sl == nil {
			return fmt.Errorf("volume %s: completion for unknown request %d", vol, call.ID)
		}
		_, err := call.Result()
		switch {
		case err == nil:
			lastOK = time.Now()
			agg.observe(time.Since(sl.start), sl.sheds)
		case server.IsOverloaded(err):
			if sl.sheds++; sl.sheds > int64(maxRetries) {
				return fmt.Errorf("volume %s: record shed %d times, giving up", vol, maxRetries)
			}
			retryQ = append(retryQ, sl)
		case needsReroute(err):
			retryQ = append(retryQ, sl)
			needFO = true
		default:
			return fmt.Errorf("volume %s: %w", vol, err)
		}
		return nil
	}

	failover := func() error {
		ac.Close()
		var lastErr error
		for attempt := 0; attempt < 8; attempt++ {
			if attempt > 0 {
				time.Sleep(time.Duration(attempt) * 50 * time.Millisecond)
			}
			target := addr
			if set != nil {
				if err := set.Reroute(); err != nil {
					lastErr = err
					continue
				}
				target = set.Primary()
			}
			nac, err := server.DialAsync(target, window)
			if err != nil {
				lastErr = err
				continue
			}
			ac = nac
			done = make(chan *server.Call, ac.Window())
			if set != nil {
				failovers++
				if !lastOK.IsZero() {
					recov = append(recov, time.Since(lastOK))
				}
			}
			return nil
		}
		return fmt.Errorf("volume %s: failover exhausted: %w", vol, lastErr)
	}

	r := pre.NewReader()
	var next time.Time
	if interval > 0 {
		next = time.Now()
	}
	rec, more := r.Next()
	for more || inflight > 0 || len(retryQ) > 0 {
		if needFO && inflight == 0 {
			if err := failover(); err != nil {
				return err
			}
			needFO = false
		}
		// Fill the window: retries first (they are oldest), then fresh
		// records, paced to the target rate.
		for !needFO && inflight < ac.Window() {
			if len(retryQ) > 0 {
				sl := retryQ[0]
				retryQ = retryQ[1:]
				submit(sl)
				continue
			}
			if !more {
				break
			}
			if interval > 0 {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
			}
			sl := &recSlot{rec: rec, start: time.Now()}
			rec, more = r.Next()
			// On a sticky submit failure the slot is already queued for
			// retry; the fill loop exits via !needFO.
			submit(sl)
		}
		if inflight == 0 {
			continue
		}
		// Wait for one completion, then take whatever else is ready.
		if err := reap(<-done); err != nil {
			return err
		}
	drain:
		for inflight > 0 {
			select {
			case call := <-done:
				if err := reap(call); err != nil {
					return err
				}
			default:
				break drain
			}
		}
	}
	return r.Err()
}

// needsReroute mirrors the replica set's failover predicate: a broken
// connection or a not-primary rejection means this node cannot serve.
func needsReroute(err error) bool {
	if err == nil {
		return false
	}
	se, ok := err.(*server.StatusError)
	if ok {
		return se.Status == server.StatusNotPrimary
	}
	// Submit/Result surface transport failures as non-status errors.
	return !server.IsOverloaded(err)
}
