package server

import (
	"encoding/binary"
	"encoding/json"
	"net"
	"sync/atomic"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/volume"
)

// SMRD2 service path. Each connection splits into two goroutines:
//
//   - The reader (the original serveConn goroutine) decodes request
//     frames from a pooled buffer, answers control ops and pre-dispatch
//     errors through the direct channel, and dispatches volume ops via
//     TryDo with the request ID as the Tag. The request's metadata (op,
//     volume, admit time) is sent on the submits channel strictly AFTER
//     the TryDo succeeds, so the writer can always reconcile a result
//     against a metadata record that is either already queued or
//     imminent.
//
//   - The writer drains the shared completion channel (one buffered
//     channel per connection, capacity = the negotiated window, so the
//     volume actor never blocks publishing a result), matches results to
//     metadata by Tag, encodes responses into a pooled buffer, and
//     flushes in batches: everything ready now goes out in one Write, so
//     the per-volume actor absorbs whole network batches per wakeup.
//
// Timeouts do not close a v2 connection: the timed-out ID gets a
// StatusTimeout response, the eventual result is counted in Abandoned
// and dropped, and later requests proceed. (Per-volume dispatch order is
// unaffected — the request still executes; only its response is
// replaced.)

// flushThreshold caps how much encoded response the writer batches
// before forcing a flush mid-drain.
const flushThreshold = 256 << 10

// v2direct is a reader-crafted response (decode errors, control ops,
// shed beyond the window) routed through the writer so that the
// connection has a single writing goroutine.
type v2direct struct {
	id     uint64
	status uint8
	body   []byte
}

// v2meta is the reader's record of a dispatched volume request; the
// writer needs it to encode the op-specific response body and to time
// the request out.
type v2meta struct {
	id  uint64
	op  uint8
	vol string
	at  time.Time // admit time; zero when no RequestTimeout is set
}

// v2conn is the state shared between a v2 connection's reader and
// writer.
type v2conn struct {
	s      *Server
	conn   net.Conn
	window int

	done    chan volume.Result // volume completions, Tag = request ID
	direct  chan v2direct      // reader-crafted responses
	submits chan v2meta        // metadata for dispatched volume requests
	dead    chan struct{}      // closed when the writer exits

	// outstanding counts dispatched volume requests whose results the
	// writer has not yet consumed. Only the reader increments, so its
	// window check can only over-count — never admit past the window.
	outstanding atomic.Int64
}

func (s *Server) serveConnV2(conn net.Conn, window int) {
	c := &v2conn{
		s:       s,
		conn:    conn,
		window:  window,
		done:    make(chan volume.Result, window),
		direct:  make(chan v2direct, window),
		submits: make(chan v2meta, window),
		dead:    make(chan struct{}),
	}
	s.wg.Add(1)
	go c.writer()

	names := make(nameCache)
	buf := framePool.Get()
	for {
		frame, err := readFrame(conn, buf)
		if err != nil {
			if s.ctx.Err() == nil && !isClosedConn(err) {
				s.opts.Logf("smrd: %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		buf = frame
		if !s.handleV2(c, frame, names) {
			break
		}
	}
	framePool.Put(buf)
	// The reader is the only sender on both channels; closing them tells
	// the writer to drain what is outstanding and exit.
	close(c.submits)
	close(c.direct)
	<-c.dead
}

// handleV2 decodes and dispatches one v2 request frame on the reader.
// false means the connection is unrecoverable (undecodable framing or a
// dead writer) and must close.
func (s *Server) handleV2(c *v2conn, frame []byte, names nameCache) bool {
	id, req, err := parseRequestV2(frame, names)
	if err != nil {
		if len(frame) < idSize {
			// No ID to answer with: framing is broken, drop the link.
			s.opts.Logf("smrd: %s: %v", c.conn.RemoteAddr(), err)
			return false
		}
		return c.sendDirect(id, StatusBadRequest, []byte(err.Error()))
	}

	switch req.Op {
	case OpRole:
		return c.sendRole(id, s.roleInfo(), nil)
	case OpPromote:
		if s.opts.Repl == nil {
			return c.sendRole(id, s.roleInfo(), nil)
		}
		info, err := s.opts.Repl.Promote()
		return c.sendRole(id, info, err)
	case OpAck:
		if s.opts.Repl != nil {
			s.opts.Repl.Ack(req.Volume, req.Gen, req.Off)
		}
		return c.sendDirect(id, StatusOK, nil)
	}

	mgr := s.mgr.Load()
	if mgr == nil {
		return c.sendDirect(id, StatusNotPrimary, []byte("node has no open volumes (unpromoted follower)"))
	}
	if isDataOp(req.Op) && s.opts.Repl != nil && !s.opts.Repl.AcceptingData() {
		return c.sendDirect(id, StatusNotPrimary, []byte("node is not the serving primary"))
	}
	vol, ok := mgr.Get(req.Volume)
	if !ok {
		return c.sendDirect(id, StatusUnknownVolume, []byte("unknown volume "+req.Volume))
	}
	var kind volume.Op
	switch req.Op {
	case OpWrite:
		kind = volume.OpWrite
	case OpRead:
		kind = volume.OpRead
	case OpStat:
		kind = volume.OpStat
	case OpSnapshot:
		kind = volume.OpSnapshot
	case OpVerify:
		kind = volume.OpVerify
	case OpProof:
		kind = volume.OpProof
	case OpShip:
		kind = volume.OpShip
	case OpTail:
		// Long-poll on the reader: no further frames can arrive from this
		// client anyway until it sees sealed bytes, and followers dedicate
		// a connection to tailing.
		if s.opts.Repl != nil {
			s.opts.Repl.WaitTail(s.ctx, req.Volume, req.Gen, req.Off)
		}
		kind = volume.OpShip
	}

	// Window enforcement: a client pushing past its grant is shed, not
	// stalled — the same contract the volume queue applies.
	if c.outstanding.Load() >= int64(c.window) {
		return c.sendDirect(id, StatusOverloaded, []byte("connection window exceeded"))
	}
	c.outstanding.Add(1)
	if err := vol.TryDo(volume.Request{Kind: kind, Extent: req.Extent, Seq: req.Seq, Gen: req.Gen, Off: req.Off, Tag: id}, c.done); err != nil {
		c.outstanding.Add(-1)
		return c.sendDirect(id, statusOf(err), []byte(err.Error()))
	}
	m := v2meta{id: id, op: req.Op, vol: req.Volume}
	if s.opts.RequestTimeout > 0 {
		m.at = time.Now()
	}
	select {
	case c.submits <- m:
		return true
	case <-c.dead:
		return false
	}
}

// sendDirect routes a reader-crafted response through the writer. body
// must not alias the frame buffer (error strings and nil bodies are
// fine).
func (c *v2conn) sendDirect(id uint64, status uint8, body []byte) bool {
	select {
	case c.direct <- v2direct{id: id, status: status, body: body}:
		return true
	case <-c.dead:
		return false
	}
}

// sendRole encodes a RoleInfo (or promotion failure) and routes it
// through the writer.
func (c *v2conn) sendRole(id uint64, info RoleInfo, err error) bool {
	status, body := roleBody(info, err)
	return c.sendDirect(id, status, body)
}

// writer is a v2 connection's single writing goroutine: it owns the
// response buffer and the connection's write side.
func (c *v2conn) writer() {
	defer c.s.wg.Done()
	defer close(c.dead)

	out := framePool.Get()
	defer func() { framePool.Put(out) }()

	var (
		pending    = make(map[uint64]v2meta) // dispatched, result not yet seen
		timedOut   = make(map[uint64]bool)   // answered StatusTimeout already
		submits    = c.submits               // nil once closed
		direct     = c.direct                // nil once closed
		writeErr   error
		timeoutMsg []byte
		tickC      <-chan time.Time
	)
	d := c.s.opts.RequestTimeout
	if d > 0 {
		// Coarse expiry scan: a quarter-period tick bounds how late a
		// timeout fires without per-request timers.
		period := d / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		tickC = tick.C
		timeoutMsg = []byte("request exceeded " + d.String())
	}

	flush := func() {
		if len(out) == 0 {
			return
		}
		if writeErr == nil {
			if _, err := c.conn.Write(out); err != nil {
				writeErr = err
				c.conn.Close() // unblock the reader
			}
		}
		out = out[:0]
	}

	// complete consumes one volume result: reconcile metadata, encode or
	// abandon.
	complete := func(res volume.Result) {
		id := res.Tag
		m, ok := pending[id]
		if !ok {
			// The result outran its metadata: the reader sends on submits
			// strictly after TryDo, so the record is queued or imminent —
			// drain submits until it shows up. This cannot deadlock: a
			// result implies a completed TryDo implies a matching send.
			for !ok && submits != nil {
				m2, open := <-submits
				if !open {
					submits = nil
					break
				}
				pending[m2.id] = m2
				if m2.id == id {
					m, ok = m2, true
				}
			}
		}
		c.outstanding.Add(-1)
		delete(pending, id)
		if !ok || timedOut[id] {
			delete(timedOut, id)
			c.s.abandoned.Add(1)
			return
		}
		if res.Err != nil {
			out = appendResponseV2(out, id, statusOf(res.Err), []byte(res.Err.Error()))
			return
		}
		if m.op == OpWrite && res.Seq > 0 && c.s.opts.Repl != nil {
			// Semi-synchronous replication: everything encoded so far goes
			// out before this write's OK is gated, so earlier responses are
			// not held hostage.
			flush()
			c.s.opts.Repl.GateWrite(m.vol, res.Seq)
		}
		out = c.appendOKV2(out, id, m.op, res)
	}

	for {
		if submits == nil && direct == nil && c.outstanding.Load() == 0 {
			flush()
			return
		}
		if len(out) > 0 {
			// Opportunistic batch: take whatever is ready without
			// blocking; flush the moment the connection goes quiet.
			select {
			case res := <-c.done:
				complete(res)
			case dr, open := <-direct:
				if !open {
					direct = nil
					break
				}
				out = appendResponseV2(out, dr.id, dr.status, dr.body)
			case m, open := <-submits:
				if !open {
					submits = nil
					break
				}
				pending[m.id] = m
			case <-tickC:
				c.scanTimeouts(pending, timedOut, &out, timeoutMsg)
			case <-c.s.ctx.Done():
				flush()
				return
			default:
				flush()
			}
		} else {
			select {
			case res := <-c.done:
				complete(res)
			case dr, open := <-direct:
				if !open {
					direct = nil
					break
				}
				out = appendResponseV2(out, dr.id, dr.status, dr.body)
			case m, open := <-submits:
				if !open {
					submits = nil
					break
				}
				pending[m.id] = m
			case <-tickC:
				c.scanTimeouts(pending, timedOut, &out, timeoutMsg)
			case <-c.s.ctx.Done():
				// Server shutdown: results still in flight land in the
				// buffered done channel (capacity = window), so the volume
				// actor is never blocked by this early exit.
				flush()
				return
			}
		}
		if len(out) >= flushThreshold {
			flush()
		}
	}
}

// scanTimeouts answers StatusTimeout for every pending request past the
// deadline. The request still executes; its result is later counted in
// Abandoned. The connection stays open — out-of-order completion means
// later requests are unaffected.
func (c *v2conn) scanTimeouts(pending map[uint64]v2meta, timedOut map[uint64]bool, out *[]byte, msg []byte) {
	d := c.s.opts.RequestTimeout
	now := time.Now()
	for id, m := range pending {
		if !timedOut[id] && now.Sub(m.at) >= d {
			timedOut[id] = true
			*out = appendResponseV2(*out, id, StatusTimeout, msg)
		}
	}
}

// appendOKV2 encodes a successful result's op-specific body as a v2
// frame. The write and read arms — the hot path — allocate nothing.
func (c *v2conn) appendOKV2(out []byte, id uint64, op uint8, res volume.Result) []byte {
	switch op {
	case OpShip, OpTail:
		var epoch uint64
		if c.s.opts.Repl != nil {
			epoch = c.s.opts.Repl.Epoch()
		}
		return appendResponseV2(out, id, StatusOK, appendShipBody(nil, epoch, *res.Ship))
	case OpRead:
		var body [4]byte
		binary.LittleEndian.PutUint32(body[:], uint32(res.Frags))
		return appendResponseV2(out, id, StatusOK, body[:])
	case OpStat:
		st := *res.Stats
		st.Config = core.Config{}
		body, err := json.Marshal(&st)
		if err != nil {
			return appendResponseV2(out, id, StatusInternal, []byte(err.Error()))
		}
		return appendResponseV2(out, id, StatusOK, body)
	case OpVerify:
		body, err := json.Marshal(res.Audit)
		if err != nil {
			return appendResponseV2(out, id, StatusInternal, []byte(err.Error()))
		}
		return appendResponseV2(out, id, StatusOK, body)
	case OpProof:
		body, err := json.Marshal(res.Proof)
		if err != nil {
			return appendResponseV2(out, id, StatusInternal, []byte(err.Error()))
		}
		return appendResponseV2(out, id, StatusOK, body)
	default:
		return appendResponseV2(out, id, StatusOK, nil)
	}
}
