package obsv_test

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/fault"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/mcache"
	"smrseek/internal/metrics"
	"smrseek/internal/obsv"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
)

// workload builds a deterministic read/write mix that fragments heavily,
// so every mechanism path (cache, prefetch, defrag relocation) fires.
func workload(seed int64, n int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		kind := disk.Write
		if rng.Intn(3) == 0 {
			kind = disk.Read
		}
		recs = append(recs, trace.Record{
			Time:   int64(i),
			Kind:   kind,
			Extent: geom.Ext(rng.Int63n(20000), rng.Int63n(64)+1),
		})
	}
	return recs
}

// runTraced runs cfg over recs with a binary tracer attached and
// returns the live stats (Config cleared for comparison) plus the
// recorded trace. A journal crash is allowed; any other error fails t.
func runTraced(t *testing.T, cfg core.Config, recs []trace.Record) (core.Stats, []byte) {
	t.Helper()
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obsv.NewTracer(&buf)
	sim.AddProbe(tr)
	st, err := sim.Run(trace.NewSliceReader(recs))
	if err != nil && !errors.Is(err, journal.ErrCrashed) {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("tracer: %v", err)
	}
	st.Config = core.Config{}
	return st, buf.Bytes()
}

func assertReplayMatches(t *testing.T, name string, want core.Stats, raw []byte) {
	t.Helper()
	got, err := obsv.Replay(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("%s: replay: %v", name, err)
	}
	if got != want {
		t.Errorf("%s: replayed stats diverge\n got: %+v\nwant: %+v", name, got, want)
	}
}

// TestReplayMatrix replays traces of every layer/mechanism/fault
// combination and demands bit-identical Stats.
func TestReplayMatrix(t *testing.T) {
	recs := workload(42, 800)
	frontier := core.FrontierFor(recs)
	defrag := core.DefaultDefragConfig()
	prefetch := core.DefaultPrefetchConfig()
	faults := fault.Config{Seed: 5, ReadRate: 0.15, WriteRate: 0.1,
		PoisonRate: 0.4, MaxRetries: 2,
		MediaRanges: []geom.Extent{geom.Ext(3000, 200)}}

	mc, err := mcache.New(mcache.Config{
		DeviceSectors: 32 << 13, ZoneSectors: 1 << 13, CacheSectors: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]core.Config{
		"NoLS": {},
		"LS":   {LogStructured: true, FrontierStart: frontier},
		"LS+all": {LogStructured: true, FrontierStart: frontier,
			Defrag: &defrag, Prefetch: &prefetch,
			Cache: &core.CacheConfig{CapacityBytes: 1 << 20}},
		"LS+all+faults": {LogStructured: true, FrontierStart: frontier,
			Defrag: &defrag, Prefetch: &prefetch,
			Cache: &core.CacheConfig{CapacityBytes: 1 << 20},
			Fault: &faults},
		"mcache": {CustomLayer: mc},
	}
	for name, cfg := range cases {
		st, raw := runTraced(t, cfg, recs)
		assertReplayMatches(t, name, st, raw)
		if name == "LS+all+faults" {
			// The variant must actually exercise the resilience paths,
			// or the replay equality proves nothing.
			if st.Resilience.Retries == 0 || st.Resilience.FaultsInjected == 0 {
				t.Errorf("faulted variant injected nothing: %+v", st.Resilience)
			}
		}
		if name == "mcache" && st.MaintReads == 0 {
			t.Error("mcache variant produced no maintenance I/O")
		}
	}
}

// TestReplayCrashRecover is the acceptance test: trace a run that
// crashes at an injected point, replay it to the crash run's exact
// Stats; then recover the layer from disk, finish the workload on it
// (journaled again, traced again) and replay that run exactly too.
func TestReplayCrashRecover(t *testing.T) {
	recs := workload(7, 500)
	frontier := core.FrontierFor(recs)
	defrag := core.DefaultDefragConfig()

	dir := t.TempDir()
	log, err := journal.Open(dir, frontier)
	if err != nil {
		t.Fatal(err)
	}
	log.CrashAfter(60, 13) // torn mid-record crash
	cfg := core.Config{LogStructured: true, FrontierStart: frontier,
		Defrag:  &defrag,
		Journal: &core.JournalConfig{Log: log, CheckpointEvery: 32}}
	st, raw := runTraced(t, cfg, recs)
	log.Close()
	if !st.Durability.Crashed {
		t.Fatal("crash point did not fire")
	}
	assertReplayMatches(t, "crash-run", st, raw)

	recovered, rst, err := stl.RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rst.TornTail {
		t.Error("torn tail not detected on recovery")
	}
	log2, err := journal.Open(t.TempDir(), recovered.Frontier())
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if err := log2.Checkpoint(recovered.Snapshot()); err != nil {
		t.Fatal(err)
	}
	cfg2 := core.Config{CustomLayer: recovered,
		Journal: &core.JournalConfig{Log: log2, CheckpointEvery: 32}}
	st2, raw2 := runTraced(t, cfg2, recs[60:])
	if st2.Durability.Crashed {
		t.Fatal("continuation run crashed unexpectedly")
	}
	assertReplayMatches(t, "recover-run", st2, raw2)
}

func TestTraceFileRoundTrip(t *testing.T) {
	recs := workload(3, 300)
	frontier := core.FrontierFor(recs)
	path := filepath.Join(t.TempDir(), "run.trace")
	tr, err := obsv.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(core.Config{LogStructured: true, FrontierStart: frontier})
	if err != nil {
		t.Fatal(err)
	}
	sim.AddProbe(tr)
	st, err := sim.Run(trace.NewSliceReader(recs))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := obsv.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st.Config = core.Config{}
	if got != st {
		t.Errorf("file round trip diverges\n got: %+v\nwant: %+v", got, st)
	}
}

func TestTextTracer(t *testing.T) {
	recs := workload(9, 120)
	frontier := core.FrontierFor(recs)
	sim, err := core.NewSimulator(core.Config{LogStructured: true, FrontierStart: frontier})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obsv.NewTextTracer(&buf)
	sim.AddProbe(tr)
	if _, err := sim.Run(trace.NewSliceReader(recs)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"op ", "read  lba", "write lba", "access", "seek=", "summary waf="} {
		if !strings.Contains(out, want) {
			t.Errorf("text trace missing %q:\n%s", want, out[:min(len(out), 600)])
		}
	}
	// A ".txt" Create selects the text sink.
	path := filepath.Join(t.TempDir(), "run.txt")
	tt, err := obsv.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tt.OnSummary(core.Summary{WAF: 1})
	if err := tt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := obsv.ReplayFile(path); err == nil {
		t.Error("replaying a text trace must fail")
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := obsv.Replay(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := obsv.Replay(strings.NewReader("not a trace at all")); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid header, torn record.
	var buf bytes.Buffer
	tr := obsv.NewTracer(&buf)
	tr.OnMech(core.MechEvent{Kind: core.MechRetry})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	if _, err := obsv.Replay(bytes.NewReader(whole[:len(whole)-5])); err == nil {
		t.Error("torn record accepted")
	}
	// Unknown record kind.
	bad := append([]byte(nil), whole...)
	bad[8] = 0xEE // first record's kind byte
	if _, err := obsv.Replay(bytes.NewReader(bad)); err == nil {
		t.Error("unknown record kind accepted")
	}
}

// TestGlobalProbe checks that a collector attached process-wide via
// core.SetGlobalProbe observes every simulator built while it is set —
// the hook the experiments CLI's metrics endpoint relies on — and
// nothing built after detaching.
func TestGlobalProbe(t *testing.T) {
	recs := workload(21, 200)
	col := obsv.NewCollector()
	core.SetGlobalProbe(col)
	defer core.SetGlobalProbe(nil)

	var total int64
	for _, cfg := range []core.Config{{}, {LogStructured: true, FrontierStart: core.FrontierFor(recs)}} {
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(trace.NewSliceReader(recs))
		if err != nil {
			t.Fatal(err)
		}
		total += st.Reads + st.Writes
	}
	if got := col.Snapshot().Ops; got != total {
		t.Errorf("global probe saw %d ops, want %d across both runs", got, total)
	}

	core.SetGlobalProbe(nil)
	sim, err := core.NewSimulator(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(trace.NewSliceReader(recs)); err != nil {
		t.Fatal(err)
	}
	if got := col.Snapshot().Ops; got != total {
		t.Errorf("detached probe still fed: %d ops, want %d", got, total)
	}
}

// TestCollectorFig4 checks the one-pass histogram CDF against the exact
// per-sample CDF the Figure 4 pipeline builds: at every boundary point
// the histogram emits, the two must agree bit for bit.
func TestCollectorFig4(t *testing.T) {
	recs := workload(11, 3000)
	frontier := core.FrontierFor(recs)
	sim, err := core.NewSimulator(core.Config{LogStructured: true, FrontierStart: frontier})
	if err != nil {
		t.Fatal(err)
	}
	col := obsv.NewCollector()
	ls := sim.LS()
	col.SetStateFn(func() (geom.Sector, int) { return ls.Frontier(), ls.Map().Len() })
	sim.AddProbe(col)

	cdf := metrics.NewCDF()
	sim.Disk().AddObserver(disk.ObserverFunc(func(a disk.Access) {
		if a.Seeked {
			cdf.Observe(float64(a.Distance))
		}
	}))
	st, err := sim.Run(trace.NewSliceReader(recs))
	if err != nil {
		t.Fatal(err)
	}

	pts := col.SeekDistanceCDF()
	if len(pts) == 0 {
		t.Fatal("no seek-distance CDF points")
	}
	for _, p := range pts {
		if got := cdf.At(p.X); got != p.P {
			t.Errorf("CDF mismatch at %.0f: histogram %v, exact %v", p.X, p.P, got)
		}
	}
	if last := pts[len(pts)-1].P; last != 1 {
		t.Errorf("final CDF point P = %v, want 1", last)
	}

	snap := col.Snapshot()
	if snap.Ops != st.Reads+st.Writes {
		t.Errorf("Ops = %d, want %d", snap.Ops, st.Reads+st.Writes)
	}
	if snap.Seeks != int64(cdf.N()) {
		t.Errorf("Seeks = %d, want %d", snap.Seeks, cdf.N())
	}
	if snap.FragsPerRead.Total != st.Reads {
		t.Errorf("FragsPerRead.Total = %d, want %d reads", snap.FragsPerRead.Total, st.Reads)
	}
	if snap.ReadLatency.Total != st.Disk.ReadOps {
		t.Errorf("ReadLatency.Total = %d, want %d read attempts", snap.ReadLatency.Total, st.Disk.ReadOps)
	}
	if snap.MapSize == 0 || snap.Frontier == 0 {
		t.Errorf("progress gauges not polled: frontier=%d mapSize=%d", snap.Frontier, snap.MapSize)
	}
	if hs := snap.SeekDistance.CDF(); len(hs) != len(pts) {
		t.Errorf("snapshot CDF has %d points, collector %d", len(hs), len(pts))
	}
}
