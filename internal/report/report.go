// Package report renders experiment results as aligned ASCII tables,
// simple text charts and CSV, so every table and figure of the paper can
// be regenerated on a terminal or piped into a plotting tool.
package report

import (
	"fmt"
	"io"
	"strings"

	"smrseek/internal/metrics"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	var total int
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// Bar renders a labelled horizontal bar chart line, scaled so that
// maxValue spans width characters. Negative values render as empty bars.
func Bar(label string, value, maxValue float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if maxValue > 0 && value > 0 {
		n = int(value / maxValue * float64(width))
		if n > width {
			n = width
		}
	}
	return fmt.Sprintf("%-10s %8.2f |%s", label, value, strings.Repeat("#", n))
}

// Sparkline renders a series as a compact unicode sparkline, useful for
// the Figure 3 time-series output.
func Sparkline(values []int64) string {
	if len(values) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) * int64(len(glyphs)-1) / span)
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// ResilienceTable renders a run's fault-injection and recovery tallies
// as a metric/value table, in a fixed order so faulted runs are
// byte-for-byte comparable across invocations.
func ResilienceTable(r metrics.Resilience) *Table {
	tb := NewTable("fault injection & recovery", "metric", "value")
	tb.AddRow("faults injected", HumanCount(r.FaultsInjected))
	tb.AddRow("transient faults", HumanCount(r.TransientFaults))
	tb.AddRow("media errors", HumanCount(r.MediaFaults))
	tb.AddRow("write faults", HumanCount(r.WriteFaults))
	tb.AddRow("retries", HumanCount(r.Retries))
	tb.AddRow("recoveries", HumanCount(r.Recoveries))
	tb.AddRow("unrecovered", HumanCount(r.Unrecovered))
	tb.AddRow("recovery rate", fmt.Sprintf("%.2f%%", 100*r.RecoveryRate()))
	tb.AddRow("aborted relocations", HumanCount(r.AbortedRelocations))
	tb.AddRow("poisoned cache evictions", HumanCount(r.PoisonedEvictions))
	tb.AddRow("prefetch fallbacks", HumanCount(r.PrefetchFallbacks))
	return tb
}

// DurabilityTable renders the write-ahead-journal and recovery tallies
// of one run, shown next to the resilience table so fault and
// durability behaviour read side by side.
func DurabilityTable(d metrics.Durability) *Table {
	tb := NewTable("write-ahead journal & recovery", "metric", "value")
	tb.AddRow("journal appends", HumanCount(d.JournalAppends))
	tb.AddRow("append retries", HumanCount(d.AppendRetries))
	tb.AddRow("append failures", HumanCount(d.AppendFailures))
	tb.AddRow("checkpoints", HumanCount(d.Checkpoints))
	tb.AddRow("checkpoint age (records)", HumanCount(d.CheckpointAge))
	tb.AddRow("crashed", fmt.Sprintf("%v", d.Crashed))
	if d.Recovered {
		tb.AddRow("records replayed", HumanCount(d.RecordsReplayed))
		tb.AddRow("sectors replayed", HumanCount(d.ReplayedSectors))
		tb.AddRow("torn tail detected", fmt.Sprintf("%v", d.TornTail))
		tb.AddRow("recovered from checkpoint", fmt.Sprintf("%v", d.FromCheckpoint))
	}
	return tb
}

// CleaningTable renders a banded run's persistent-cache and
// band-cleaning tallies — the finite-disk costs (write amplification,
// cleaning stalls) the infinite-disk model cannot see — in a fixed
// order so banded runs are byte-for-byte comparable across invocations.
func CleaningTable(c metrics.Cleaning) *Table {
	tb := NewTable("persistent cache & band cleaning", "metric", "value")
	tb.AddRow("host write sectors", HumanCount(c.HostWriteSectors))
	tb.AddRow("cached writes", HumanCount(c.CachedWrites))
	tb.AddRow("cached sectors", HumanCount(c.CachedSectors))
	tb.AddRow("cache reads", HumanCount(c.CacheReads))
	tb.AddRow("clean runs", HumanCount(c.CleanRuns))
	tb.AddRow("bands cleaned", HumanCount(c.BandsCleaned))
	tb.AddRow("clean read sectors", HumanCount(c.CleanReadSectors))
	tb.AddRow("clean write sectors", HumanCount(c.CleanWriteSectors))
	tb.AddRow("cleaning stalls", HumanCount(c.Stalls))
	tb.AddRow("stalled sectors", HumanCount(c.StallSectors))
	tb.AddRow("dirty bands (peak)", HumanCount(c.DirtyBands))
	tb.AddRow("band crossings", HumanCount(c.BandCrossings))
	tb.AddRow("write amplification", fmt.Sprintf("%.3f", c.WriteAmp()))
	return tb
}

// HistogramTable renders a log2-bucketed histogram (see
// metrics.Histogram) as one row per non-empty bucket: the value range,
// the sample count, and the cumulative fraction through that bucket.
// unit labels the value column ("sectors", "µs", ...).
func HistogramTable(title, unit string, buckets []metrics.Bucket, total int64) *Table {
	tb := NewTable(title, unit, "count", "cum")
	var cum int64
	for _, b := range buckets {
		cum += b.Count
		var rng string
		switch {
		case b.Negative:
			rng = fmt.Sprintf("(-%s, -%s]", HumanCount(b.Hi), HumanCount(b.Lo))
		case b.Lo == 0:
			rng = "0"
		default:
			rng = fmt.Sprintf("[%s, %s)", HumanCount(b.Lo), HumanCount(b.Hi))
		}
		tb.AddRow(rng, HumanCount(b.Count),
			fmt.Sprintf("%.2f%%", 100*float64(cum)/float64(total)))
	}
	return tb
}

// CDFTable renders boundary-sampled CDF points (metrics.CDFPoints) as
// an x / P(X<=x) table.
func CDFTable(title, unit string, pts []metrics.Point) *Table {
	tb := NewTable(title, unit, "P(X<=x)")
	for _, p := range pts {
		tb.AddRow(HumanCount(int64(p.X)), fmt.Sprintf("%.4f", p.P))
	}
	return tb
}

// HumanBytes formats a byte count with binary units.
func HumanBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// HumanCount formats large counts with thousands separators.
func HumanCount(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
