package smrseek_test

import (
	"testing"

	"smrseek"
)

func TestGCLayerThroughFacade(t *testing.T) {
	recs := smrseek.MustWorkload("usr_0").Generate(0.2)
	footprint := smrseek.WriteFootprint(recs)
	if footprint <= 0 {
		t.Fatal("footprint must be positive")
	}
	const seg = 2048
	layer, err := smrseek.NewGCLayer(smrseek.GCConfig{
		DeviceSectors:  smrseek.MaxLBA(recs),
		LogSectors:     ((footprint*11/10)/seg + 4) * seg,
		SegmentSectors: seg,
		Policy:         smrseek.Greedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := smrseek.Run(smrseek.Config{CustomLayer: layer}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads == 0 || st.WAF < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if layer.Name() != "SegLS(greedy)" {
		t.Error("layer name")
	}
	if _, err := smrseek.NewGCLayer(smrseek.GCConfig{}); err == nil {
		t.Error("invalid gc config must error")
	}
}

func TestMediaCacheLayerThroughFacade(t *testing.T) {
	recs := smrseek.MustWorkload("usr_0").Generate(0.2)
	const zone = 8192
	maxLBA := smrseek.MaxLBA(recs)
	layer, err := smrseek.NewMediaCacheLayer(smrseek.MediaCacheConfig{
		DeviceSectors: ((maxLBA + zone) / zone) * zone,
		ZoneSectors:   zone,
		CacheSectors:  2 * zone, // small cache so the write volume forces merges
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := smrseek.Run(smrseek.Config{CustomLayer: layer}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if layer.Merges() == 0 {
		t.Error("expected merges on usr_0's write volume")
	}
	if st.WAF <= 1 {
		t.Errorf("WAF = %v, want > 1", st.WAF)
	}
	if _, err := smrseek.NewMediaCacheLayer(smrseek.MediaCacheConfig{}); err == nil {
		t.Error("invalid mcache config must error")
	}
	if smrseek.DefaultMediaCacheConfig().ZoneSectors <= 0 {
		t.Error("default config broken")
	}
}

func TestWriteFootprintCountsDistinctSectors(t *testing.T) {
	recs := []smrseek.Record{
		{Kind: smrseek.Write, Extent: smrseek.Extent{Start: 0, Count: 10}},
		{Kind: smrseek.Write, Extent: smrseek.Extent{Start: 5, Count: 10}},  // overlaps 5
		{Kind: smrseek.Read, Extent: smrseek.Extent{Start: 100, Count: 10}}, // reads don't count
	}
	if got := smrseek.WriteFootprint(recs); got != 15 {
		t.Errorf("footprint = %d, want 15", got)
	}
	if got := smrseek.MaxLBA(recs); got != 110 {
		t.Errorf("MaxLBA = %d, want 110", got)
	}
}
