package trace

import (
	"strings"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

func TestPreloadRecords(t *testing.T) {
	// Grow a slice the way ReadAll does, so it carries capacity slack.
	var recs []Record
	for i := int64(0); i < 100; i++ {
		recs = append(recs, Record{Time: i, Kind: disk.Read, Extent: geom.Ext(geom.Sector(i*10), 4)})
	}
	if cap(recs) == len(recs) {
		t.Skip("append left no slack; compaction unobservable")
	}
	p := PreloadRecords(recs)
	if p.Len() != 100 {
		t.Fatalf("Len = %d, want 100", p.Len())
	}
	if got := cap(p.Records()); got != 100 {
		t.Errorf("arena capacity %d, want exactly 100 (slack clipped)", got)
	}
	if want := MaxLBA(recs); p.MaxLBA() != want {
		t.Errorf("MaxLBA = %d, want %d", p.MaxLBA(), want)
	}

	// A tight slice is adopted without copying.
	tight := make([]Record, 3)
	copy(tight, recs)
	pt := PreloadRecords(tight)
	if &pt.Records()[0] != &tight[0] {
		t.Error("tight slice was copied; want adoption in place")
	}
}

func TestPreloadReadersAreIndependent(t *testing.T) {
	in := CPHeader + "\n0,R,100,8\n1,W,200,16\n2,R,300,8\n"
	p, err := Preload(NewCPReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	r1, r2 := p.NewReader(), p.NewReader()
	a, _ := r1.Next()
	b, _ := r1.Next()
	c, _ := r2.Next() // must restart at the first record
	if c != a || b == a {
		t.Fatalf("readers share a cursor: r1 -> %v,%v; r2 -> %v", a, b, c)
	}
	n := 1
	for {
		if _, ok := r2.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("second reader yielded %d records, want 3", n)
	}
}

func TestPreloadPropagatesReaderError(t *testing.T) {
	if _, err := Preload(NewCPReader(strings.NewReader("garbage\n"))); err == nil {
		t.Fatal("Preload accepted a malformed trace")
	}
}
