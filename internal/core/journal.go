package core

import (
	"errors"
	"fmt"
	"time"

	"smrseek/internal/fault"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
)

// JournalConfig enables write-ahead journaling of the log-structured
// layer's mutations: every host write and defrag relocation is appended
// to the log before the extent map is touched, and the full state is
// checkpointed periodically. A simulation that stops at any point —
// including an injected crash mid-append — can then be recovered with
// stl.RecoverDir to state bit-identical to the live layer.
type JournalConfig struct {
	// Log is the open write-ahead log (journal.Open). The simulator
	// appends to it and checkpoints through it; the caller closes it.
	Log *journal.Log
	// CheckpointEvery checkpoints the layer after this many journal
	// records have accumulated since the last checkpoint. 0 never
	// checkpoints (the journal grows for the whole run).
	CheckpointEvery int64
}

// Validate reports configuration errors.
func (c JournalConfig) Validate() error {
	if c.Log == nil {
		return fmt.Errorf("core: JournalConfig.Log is nil")
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("core: negative CheckpointEvery %d", c.CheckpointEvery)
	}
	return nil
}

// journalAppend write-ahead-logs one mutation, retrying transient
// journal-device faults with the same bounded budget disk I/O gets. It
// returns true when the record is durable and the mutation may proceed.
// On false the caller must NOT apply the mutation: either the append
// failed leaving nothing persisted (the op is dropped, keeping live
// state equal to replay state), or an injected crash fired and the
// simulation is over (s.jerr is set).
func (s *Simulator) journalAppend(kind journal.RecordKind, lba geom.Extent, pba geom.Sector) bool {
	rec := journal.Record{Kind: kind, Lba: lba, Pba: pba}
	err := s.wal.Append(rec)
	if err == nil {
		s.stats.Durability.JournalAppends++
		s.emitJournal(JournalAppend, 0)
		return true
	}
	maxRetries := fault.DefaultMaxRetries
	if s.injector != nil {
		maxRetries = s.injector.MaxRetries()
	}
	for attempt := 0; attempt < maxRetries && fault.IsTransient(err); attempt++ {
		s.stats.Durability.AppendRetries++
		s.emitJournal(JournalAppendRetry, 0)
		if err = s.wal.Append(rec); err == nil {
			s.stats.Durability.JournalAppends++
			s.emitJournal(JournalAppend, 0)
			return true
		}
	}
	if errors.Is(err, journal.ErrCrashed) {
		s.stats.Durability.Crashed = true
		s.emitJournal(JournalCrash, 0)
		s.jerr = err
		return false
	}
	s.stats.Durability.AppendFailures++
	s.emitJournal(JournalAppendFailure, 0)
	if !fault.IsTransient(err) {
		// The journal device is broken beyond retry: continuing would
		// silently diverge the durable state, so stop the run.
		s.jerr = err
	}
	return false
}

// maybeCheckpoint checkpoints the layer once enough journal records
// have accumulated. It runs only after an operation's mutations have
// fully completed — checkpointing between a record's append and its
// mutation would truncate a record whose effect is not yet in the
// snapshot.
func (s *Simulator) maybeCheckpoint() {
	if s.wal == nil || s.ckptEvery <= 0 || s.jerr != nil {
		return
	}
	if s.wal.SinceCheckpoint() < s.ckptEvery {
		return
	}
	start := time.Now()
	if err := s.wal.Checkpoint(s.ls.Snapshot()); err != nil {
		if errors.Is(err, journal.ErrCrashed) {
			s.stats.Durability.Crashed = true
			s.emitJournal(JournalCrash, 0)
		}
		s.jerr = err
		return
	}
	s.stats.Durability.Checkpoints++
	s.emitJournal(JournalCheckpoint, time.Since(start))
}

// JournalErr returns the sticky journal error that stopped the
// simulation (journal.ErrCrashed after an injected crash point), or nil.
func (s *Simulator) JournalErr() error { return s.jerr }
