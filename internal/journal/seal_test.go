package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"smrseek/internal/geom"
)

// sealedLog opens a log in dir with a small segment size and appends n
// records through it.
func sealedLog(t *testing.T, dir string, segSize int, n int64) *Log {
	t.Helper()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetSegmentSize(segSize); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := l.Append(rec(RecWrite, i*4, 4, i*4)); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestSealCadence(t *testing.T) {
	dir := t.TempDir()
	l := sealedLog(t, dir, 3, 8) // 8 records, segment size 3: seals at 3 and 6
	defer l.Close()
	if got := l.SealedRecords(); got != 6 {
		t.Errorf("sealed %d records, want 6", got)
	}
	seals := l.Seals()
	if len(seals) != 2 {
		t.Fatalf("%d seals, want 2", len(seals))
	}
	for i, s := range seals {
		if s.Index != i || s.Count != 3 || s.First != int64(i*3+1) {
			t.Errorf("seal %d = %+v", i, s)
		}
	}
	if seals[1].Chain != chainLink(seals[0].Chain, seals[1].Root) {
		t.Error("seal 1 chain does not extend seal 0")
	}

	// ReadJournal must reproduce exactly the same seal view.
	raw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	d, err := scanJournal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Records) != 8 || d.Sealed != 6 || len(d.Seals) != 2 || d.Torn {
		t.Fatalf("scan: records=%d sealed=%d seals=%d torn=%v", len(d.Records), d.Sealed, len(d.Seals), d.Torn)
	}
	if d.ChainHead() != l.Chain() {
		t.Error("scan chain head differs from live log")
	}
	if seals[0].Offset < headerSize || raw[seals[0].Offset+4] != byte(RecSeal) {
		t.Errorf("seal 0 offset %d does not point at a seal frame", seals[0].Offset)
	}
}

func TestForceSealAndReopen(t *testing.T) {
	dir := t.TempDir()
	l := sealedLog(t, dir, 100, 5)
	if l.SealedRecords() != 0 {
		t.Fatalf("premature seal: %d", l.SealedRecords())
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if l.SealedRecords() != 5 || len(l.Seals()) != 1 {
		t.Fatalf("force seal: sealed=%d seals=%d", l.SealedRecords(), len(l.Seals()))
	}
	chain := l.Chain()
	if err := l.Seal(); err != nil || len(l.Seals()) != 1 {
		t.Fatalf("empty force seal must be a no-op: %v, %d seals", err, len(l.Seals()))
	}
	l.Close()

	// Reopen must rebuild the sealing state and keep the chain going.
	l2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.SetSegmentSize(5); err != nil {
		t.Fatal(err)
	}
	if l2.Chain() != chain || l2.SealedRecords() != 5 {
		t.Fatalf("reopen lost seal state: chain=%s sealed=%d", l2.Chain().Short(), l2.SealedRecords())
	}
	for i := int64(5); i < 10; i++ {
		if err := l2.Append(rec(RecWrite, i*4, 4, i*4)); err != nil {
			t.Fatal(err)
		}
	}
	if len(l2.Seals()) != 2 {
		t.Fatalf("appended past segment size after reopen, %d seals", len(l2.Seals()))
	}
	if l2.Seals()[1].Chain != chainLink(chain, l2.Seals()[1].Root) {
		t.Error("post-reopen seal does not chain from pre-reopen head")
	}
}

func TestCheckpointAnchorsChain(t *testing.T) {
	dir := t.TempDir()
	l := sealedLog(t, dir, 2, 5) // 2 seals, 1 unsealed record
	defer l.Close()
	if err := l.Checkpoint(Snapshot{Frontier: 20, Written: 20}); err != nil {
		t.Fatal(err)
	}
	// The checkpoint force-seals, so its chain covers all 5 records.
	chain := l.Chain()
	if chain.IsZero() {
		t.Fatal("chain head still zero after sealing")
	}
	snap, err := readCheckpointFile(CheckpointPath(dir))
	if err != nil || snap == nil {
		t.Fatalf("checkpoint: %v %v", snap, err)
	}
	if snap.Chain != chain {
		t.Errorf("checkpoint chain %s, log chain %s", snap.Chain.Short(), chain.Short())
	}
	// The reborn journal anchors at the checkpoint chain.
	raw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	_, _, anchor, err := unmarshalHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	if anchor != chain {
		t.Errorf("reborn anchor %s, want %s", anchor.Short(), chain.Short())
	}
	// And the chain keeps extending across the generation boundary.
	if err := l.Append(rec(RecWrite, 100, 4, 20)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(RecWrite, 104, 4, 24)); err != nil {
		t.Fatal(err)
	}
	if got := l.Seals()[0].Chain; got != l.Chain() || got == chain ||
		got != chainLink(chain, l.Seals()[0].Root) {
		t.Error("post-checkpoint seal does not chain from the checkpoint")
	}
}

func TestProve(t *testing.T) {
	dir := t.TempDir()
	l := sealedLog(t, dir, 4, 10) // seals cover 1..4 and 5..8; 9,10 unsealed
	defer l.Close()
	for seq := int64(1); seq <= 8; seq++ {
		p, err := l.Prove(seq)
		if err != nil {
			t.Fatalf("Prove(%d): %v", seq, err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("Prove(%d).Verify: %v", seq, err)
		}
		wantSeg := int((seq - 1) / 4)
		if p.Segment != wantSeg || p.Generation != l.Generation() || p.Seq != seq {
			t.Errorf("Prove(%d) = seg %d gen %d", seq, p.Segment, p.Generation)
		}
		if p.Root != l.Seals()[wantSeg].Root || p.Chain != l.Seals()[wantSeg].Chain {
			t.Errorf("Prove(%d) root/chain do not match the seal", seq)
		}
		// A mutated proof must not verify.
		p.Leaf[0] ^= 1
		if p.Verify() == nil {
			t.Errorf("Prove(%d): mutated leaf verifies", seq)
		}
	}
	if _, err := l.Prove(9); !errors.Is(err, ErrUnsealed) {
		t.Errorf("Prove(9) on unsealed record: %v, want ErrUnsealed", err)
	}
	for _, seq := range []int64{0, -3, 11} {
		if _, err := l.Prove(seq); err == nil || errors.Is(err, ErrUnsealed) {
			t.Errorf("Prove(%d): %v, want out-of-range error", seq, err)
		}
	}
	// Sealing the tail makes 9 and 10 provable.
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	p, err := l.Prove(10)
	if err != nil || p.Verify() != nil {
		t.Fatalf("Prove(10) after force seal: %v", err)
	}
	if p.Count != 2 {
		t.Errorf("tail segment count %d, want 2", p.Count)
	}
}

func TestOpenRemovesStaleCheckpointTmp(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, checkpointTmp)
	if err := os.WriteFile(tmp, []byte("half-written checkpoint"), 0o666); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale %s survived Open: %v", checkpointTmp, err)
	}
}

func TestCheckpointDirDurability(t *testing.T) {
	// syncDir is called on the real path; at minimum it must work on a
	// real directory and fail on a missing one (the crash-consistency
	// property itself needs power-cut hardware to test).
	if err := syncDir(t.TempDir()); err != nil {
		t.Errorf("syncDir on a real dir: %v", err)
	}
	if err := syncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("syncDir on a missing dir succeeded")
	}
	// And Checkpoint must still work end to end on a deep directory.
	dir := filepath.Join(t.TempDir(), "a", "b")
	l := sealedLog(t, dir, 2, 3)
	defer l.Close()
	if err := l.Checkpoint(Snapshot{Frontier: 12, Written: 12}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(CheckpointPath(dir)); err != nil {
		t.Fatal(err)
	}
}

func TestSetSegmentSizeRejectsNonPositive(t *testing.T) {
	l, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, n := range []int{0, -1} {
		if err := l.SetSegmentSize(n); err == nil {
			t.Errorf("SetSegmentSize(%d) accepted", n)
		}
	}
}

func TestAppendRejectsSealKind(t *testing.T) {
	l, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Kind: RecSeal, Lba: geom.Ext(0, 4)}); err == nil {
		t.Error("Append accepted a RecSeal record")
	}
}
