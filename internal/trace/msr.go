package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// The MSR Cambridge traces (Narayanan et al., FAST '08) are CSV files
// with one I/O per line:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is a Windows FILETIME (100 ns ticks since 1601-01-01), Type
// is "Read" or "Write", Offset and Size are in bytes, ResponseTime is in
// the same 100 ns ticks. Offsets and sizes are not necessarily
// sector-aligned; we round the extent outward to whole sectors, which is
// what a block layer would issue.

// MSRReader parses MSR Cambridge format traces.
type MSRReader struct {
	s    *lineScanner
	err  error
	line int
	// DiskFilter, when >= 0, keeps only records for that disk number.
	diskFilter int
	// Raw FILETIME values are ~1.2e17 ticks; converting to nanoseconds
	// would overflow int64, so timestamps are rebased to the first
	// record (Record.Time's epoch is arbitrary by contract).
	baseTicks int64
	haveBase  bool
}

// NewMSRReader returns a reader over MSR CSV input. diskFilter selects a
// single disk number, or pass -1 to keep every disk.
func NewMSRReader(r io.Reader, diskFilter int) *MSRReader {
	return &MSRReader{s: newLineScanner(r), diskFilter: diskFilter}
}

// Next implements Reader.
func (m *MSRReader) Next() (Record, bool) {
	if m.err != nil {
		return Record{}, false
	}
	for m.s.Scan() {
		m.line++
		line := strings.TrimSpace(m.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, keep, err := m.parseLine(line)
		if err != nil {
			m.err = fmt.Errorf("msr trace line %d: %w", m.line, err)
			return Record{}, false
		}
		if keep {
			return rec, true
		}
	}
	// A scanner failure (an over-long line, a read error) happens after
	// the last counted line; report the position like parse errors do.
	if err := m.s.Err(); err != nil {
		m.err = fmt.Errorf("msr trace line %d: %w", m.line+1, err)
	}
	return Record{}, false
}

func (m *MSRReader) parseLine(line string) (Record, bool, error) {
	f := strings.Split(line, ",")
	if len(f) < 6 {
		return Record{}, false, fmt.Errorf("want >=6 fields, got %d", len(f))
	}
	ts, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
	if err != nil {
		return Record{}, false, fmt.Errorf("timestamp: %w", err)
	}
	diskNum, err := strconv.Atoi(strings.TrimSpace(f[2]))
	if err != nil {
		return Record{}, false, fmt.Errorf("disk number: %w", err)
	}
	if m.diskFilter >= 0 && diskNum != m.diskFilter {
		return Record{}, false, nil
	}
	var kind disk.OpKind
	switch strings.ToLower(strings.TrimSpace(f[3])) {
	case "read":
		kind = disk.Read
	case "write":
		kind = disk.Write
	default:
		return Record{}, false, fmt.Errorf("unknown op type %q", f[3])
	}
	offset, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
	if err != nil {
		return Record{}, false, fmt.Errorf("offset: %w", err)
	}
	size, err := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 64)
	if err != nil {
		return Record{}, false, fmt.Errorf("size: %w", err)
	}
	if offset < 0 || size < 0 {
		return Record{}, false, fmt.Errorf("negative offset/size (%d/%d)", offset, size)
	}
	// Rounding the range outward computes offset+size+(SectorSize-1);
	// reject ranges where that sum would wrap around int64.
	if size > math.MaxInt64-(geom.SectorSize-1) ||
		offset > math.MaxInt64-(geom.SectorSize-1)-size {
		return Record{}, false, fmt.Errorf("byte range %d+%d overflows", offset, size)
	}
	ext := byteRangeToExtent(offset, size)
	if ext.Empty() {
		return Record{}, false, nil // zero-length I/O: drop
	}
	if !m.haveBase {
		m.baseTicks = ts
		m.haveBase = true
	}
	// FILETIME ticks are 100 ns; rebased to the first record.
	return Record{Time: (ts - m.baseTicks) * 100, Kind: kind, Extent: ext}, true, nil
}

// Err implements Reader.
func (m *MSRReader) Err() error { return m.err }

// byteRangeToExtent rounds a byte range outward to whole sectors.
func byteRangeToExtent(offset, size int64) geom.Extent {
	if size <= 0 {
		return geom.Extent{}
	}
	start := offset / geom.SectorSize
	end := (offset + size + geom.SectorSize - 1) / geom.SectorSize
	return geom.Span(start, end)
}

// WriteMSR writes records in MSR Cambridge CSV format with the given
// hostname and disk number.
func WriteMSR(w io.Writer, host string, diskNum int, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		op := "Read"
		if r.Kind == disk.Write {
			op = "Write"
		}
		// Time is ns; FILETIME ticks are 100 ns. Response time is not
		// modelled: write 0.
		_, err := fmt.Fprintf(bw, "%d,%s,%d,%s,%d,%d,0\n",
			r.Time/100, host, diskNum, op,
			r.Extent.Start*geom.SectorSize, r.Extent.Bytes())
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
