// Command tracegen emits a named synthetic workload as a trace file, in
// either MSR Cambridge CSV or the CloudPhysics-style CSV, so the
// generated workloads can feed external tools (or round-trip back into
// smrsim -trace).
//
// Example:
//
//	tracegen -workload w91 -scale 1 -format cp -o w91.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"smrseek"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		name   = fs.String("workload", "", "named synthetic workload to generate")
		scale  = fs.Float64("scale", 1.0, "workload scale (multiplies base op count)")
		format = fs.String("format", "cp", `output format: "msr" or "cp"`)
		out    = fs.String("o", "-", `output file ("-" for stdout)`)
		list   = fs.Bool("list", false, "list available workloads and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range smrseek.Workloads() {
			fmt.Println(n)
		}
		return nil
	}
	if *name == "" {
		return fmt.Errorf("pass -workload NAME (or -list); workloads: %v", smrseek.Workloads())
	}
	p, err := smrseek.Workload(*name)
	if err != nil {
		return err
	}
	recs := p.Generate(*scale)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := smrseek.WriteTrace(w, smrseek.TraceFormat(*format), recs); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d records to %s\n", len(recs), *out)
	}
	return nil
}
