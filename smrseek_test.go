package smrseek_test

import (
	"bytes"
	"strings"
	"testing"

	"smrseek"
)

func TestWorkloadsCatalog(t *testing.T) {
	names := smrseek.Workloads()
	if len(names) != 21 {
		t.Fatalf("Workloads() = %d names, want 21", len(names))
	}
	for _, n := range names {
		p, err := smrseek.Workload(n)
		if err != nil {
			t.Fatalf("Workload(%s): %v", n, err)
		}
		if p.Name != n {
			t.Errorf("Workload(%s).Name = %s", n, p.Name)
		}
	}
	if _, err := smrseek.Workload("bogus"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestMustWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustWorkload(bogus) should panic")
		}
	}()
	smrseek.MustWorkload("bogus")
}

func TestRunAndCompare(t *testing.T) {
	recs := smrseek.MustWorkload("hm_1").Generate(0.3)
	st, err := smrseek.Run(smrseek.Config{LogStructured: true}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads == 0 || st.Disk.ReadSeeks == 0 {
		t.Fatalf("stats look empty: %+v", st)
	}
	cmp, err := smrseek.ComparePaper(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Variants) != 4 {
		t.Fatalf("variants = %d", len(cmp.Variants))
	}
	if len(smrseek.PaperVariants()) != 4 {
		t.Error("PaperVariants should have 4 entries")
	}
}

func TestCharacterizeAndMisorder(t *testing.T) {
	recs := smrseek.MustWorkload("src2_2").Generate(0.3)
	c := smrseek.Characterize(recs)
	if c.Ops != c.ReadCount+c.WriteCount || c.Ops == 0 {
		t.Fatalf("characteristics inconsistent: %+v", c)
	}
	mis, writes := smrseek.MisorderedWrites(recs)
	if writes == 0 || mis == 0 {
		t.Errorf("src2_2 should show mis-ordered writes, got %d/%d", mis, writes)
	}
	frac := float64(mis) / float64(writes)
	if frac < 0.01 || frac > 0.15 {
		t.Errorf("src2_2 mis-order fraction %v outside the Figure 8 ballpark", frac)
	}
}

func TestTraceRoundTripFacade(t *testing.T) {
	recs := smrseek.MustWorkload("ts_0").Generate(0.05)
	for _, format := range []smrseek.TraceFormat{smrseek.FormatCP, smrseek.FormatMSR} {
		var buf bytes.Buffer
		if err := smrseek.WriteTrace(&buf, format, recs); err != nil {
			t.Fatalf("%s write: %v", format, err)
		}
		r, err := smrseek.OpenTrace(&buf, format, -1)
		if err != nil {
			t.Fatalf("%s open: %v", format, err)
		}
		got, err := smrseek.ReadAll(r)
		if err != nil {
			t.Fatalf("%s read: %v", format, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s round trip lost records: %d vs %d", format, len(got), len(recs))
		}
		for i := range got {
			if got[i].Kind != recs[i].Kind || got[i].Extent != recs[i].Extent {
				t.Fatalf("%s record %d mismatch: %v vs %v", format, i, got[i], recs[i])
			}
		}
	}
	if _, err := smrseek.OpenTrace(&bytes.Buffer{}, "nope", -1); err == nil {
		t.Error("unknown format must error")
	}
	if err := smrseek.WriteTrace(&bytes.Buffer{}, "nope", recs); err == nil {
		t.Error("unknown format must error")
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := smrseek.RunExperiment(&buf, "fig8", 0.05); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mis-ordered") {
		t.Errorf("fig8 output unexpected:\n%s", buf.String())
	}
	if err := smrseek.RunExperiment(&buf, "nope", 0.05); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestPaperHeadlineShapes asserts the qualitative results the paper
// reports, at a reduced scale: (a) write-heavy MSR traces are
// log-friendly while usr_1/hm_1 are not; (b) w91 is strongly
// log-sensitive and selective caching repairs it; (c) defrag worsens
// w20; (d) prefetch substantially improves w91.
func TestPaperHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shape check runs several full comparisons")
	}
	saf := func(name string) map[string]float64 {
		recs := smrseek.MustWorkload(name).Generate(0.5)
		cmp, err := smrseek.ComparePaper(recs)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, v := range cmp.Variants {
			out[v.Name] = v.Total
		}
		return out
	}

	for _, friendly := range []string{"usr_0", "src2_2", "web_0", "wdev_0", "mds_0"} {
		if got := saf(friendly)["LS"]; got >= 1 {
			t.Errorf("%s: LS SAF = %.2f, want < 1 (log-friendly per Figure 11a)", friendly, got)
		}
	}
	for _, sensitive := range []string{"usr_1", "hm_1"} {
		if got := saf(sensitive)["LS"]; got <= 1 {
			t.Errorf("%s: LS SAF = %.2f, want > 1 (Figure 11a)", sensitive, got)
		}
	}

	w91 := saf("w91")
	if w91["LS"] < 2 {
		t.Errorf("w91 LS SAF = %.2f, want strongly amplified (paper: 3.7)", w91["LS"])
	}
	if w91["LS+cache"] >= 1 {
		t.Errorf("w91 LS+cache SAF = %.2f, want < 1 (paper: 0.2)", w91["LS+cache"])
	}
	if w91["LS+prefetch"] > w91["LS"]/2 {
		t.Errorf("w91 prefetch SAF %.2f not a substantial improvement over LS %.2f", w91["LS+prefetch"], w91["LS"])
	}

	w20 := saf("w20")
	if w20["LS+defrag"] <= w20["LS"] {
		t.Errorf("w20: defrag SAF %.2f should exceed LS %.2f (paper: worsened 2.8x)", w20["LS+defrag"], w20["LS"])
	}
	if w20["LS+cache"] >= w20["LS"] {
		t.Errorf("w20: cache SAF %.2f should beat LS %.2f", w20["LS+cache"], w20["LS"])
	}
}

func TestJournalFacade(t *testing.T) {
	dir := t.TempDir()
	recs := smrseek.MustWorkload("hm_1").Generate(0.2)
	lg, err := smrseek.OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smrseek.Config{
		LogStructured: true,
		Journal:       &smrseek.JournalConfig{Log: lg, CheckpointEvery: 10},
	}
	st, err := smrseek.Run(cfg, recs)
	lg.Close()
	if err != nil {
		t.Fatal(err)
	}
	var d smrseek.Durability = st.Durability
	if d.JournalAppends == 0 || d.Checkpoints == 0 {
		t.Fatalf("durability stats look empty: %+v", d)
	}
	var l *smrseek.LS
	var rst smrseek.ReplayStats
	l, rst, err = smrseek.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rst.FromCheckpoint {
		t.Errorf("replay stats: %+v, want FromCheckpoint", rst)
	}
	if l.LogSectors() == 0 || l.Map().Len() == 0 {
		t.Error("recovered layer is empty")
	}
	if err := l.Map().CheckInvariants(); err != nil {
		t.Error(err)
	}
}
