#!/bin/sh
# Regenerate the benchmark baseline, or compare a fresh run against it.
#
#   scripts/bench.sh            # rewrite BENCH_baseline.json
#   scripts/bench.sh compare    # run benchmarks, diff against the baseline
#   scripts/bench.sh smoke      # CI gate: simulator + extent-map benchmarks
#                               # at short benchtime, fail on >25% ns/op or
#                               # >25% allocs/op growth
#
# Run from the repo root. The experiment benchmarks self-scale (see
# -benchscale in bench_test.go), so a full run takes a few minutes; the
# baseline tracks trajectory across PRs, not absolute precision.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_baseline.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

if [ "${1:-}" = smoke ]; then
	# CI regression smoke: only the hot-path benchmarks (simulator
	# throughput, extent map) at a short benchtime. Short runs are
	# noisy, so the gates are wide — they catch structural regressions
	# (an accidentally-always-on probe, an O(n) slip, a lost scratch
	# buffer re-allocating per op), not jitter. allocs/op is gated too:
	# it is deterministic, so even a short run flags real growth.
	go test -run='^$' -bench='^(BenchmarkSimulatorThroughput|BenchmarkInsert|BenchmarkInsertFunc|BenchmarkLookup|BenchmarkLookupFunc|BenchmarkFragments|BenchmarkVolumeActor|BenchmarkVolumeTCP|BenchmarkVerifyDir|BenchmarkRecoverDir|BenchmarkBandClean)$' \
		-benchtime=0.3s -benchmem -timeout 10m . ./internal/extmap ./internal/volume ./internal/journal ./internal/stl ./internal/band |
		go run ./scripts/benchjson >"$tmp"
	go run ./scripts/benchjson -compare -gate 25 -gate-allocs 25 -match 'BenchmarkSimulator|internal/extmap|internal/volume|BenchmarkVerifyDir/seq|BenchmarkRecoverDir/seq|BenchmarkBandClean' "$out" "$tmp"
	exit 0
fi

go test -run='^$' -bench=. -benchmem -timeout 30m ./... |
	go run ./scripts/benchjson >"$tmp"

case "${1:-}" in
compare)
	go run ./scripts/benchjson -compare "$out" "$tmp"
	;;
"")
	mv "$tmp" "$out"
	trap - EXIT
	echo "wrote $out"
	;;
*)
	echo "usage: scripts/bench.sh [compare|smoke]" >&2
	exit 2
	;;
esac
