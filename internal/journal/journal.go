// Package journal provides the crash-consistency machinery for the
// simulator's log-structured translation layer: a write-ahead log of
// every extent-map mutation plus periodic checkpoints of the full map,
// mirroring how real drive-managed SMR firmware (SMORE, and the
// log-structured stores it descends from) persists its layout metadata.
//
// The journal is an append-only file of CRC32-guarded, length-prefixed
// records. Each record describes one STL mutation — a host write, a
// defrag relocation, or an explicit frontier move — with enough
// information to replay it deterministically. A checkpoint serializes
// the entire extent map, frontier and written-sector counter; writing
// one truncates the journal, bounding replay time.
//
// Torn writes are a first-class concern: a crash can leave a partial
// record at the journal tail, and recovery must detect it (short frame
// or CRC mismatch), discard it, and stop cleanly — the write-ahead
// discipline guarantees the in-memory state never ran ahead of an
// acknowledged append, so a discarded torn record was never applied.
//
// Generations make the checkpoint-then-truncate pair atomic without a
// second fsync barrier: the journal header carries a generation number,
// a checkpoint records the generation it subsumes, and the journal is
// reborn with the next generation after each checkpoint. Recovery
// replays the journal only when its generation is newer than the
// checkpoint's, so a crash BETWEEN checkpoint rename and journal
// truncation cannot double-apply records.
//
// On top of the per-record CRCs the journal is tamper-evident: records
// are sealed into segments, each closed by a seal frame carrying the
// Merkle root over the segment's record leaves (see merkle.go), chained
// to the previous seal and anchored in the checkpoint. A single CRC
// catches a torn tail; the seal chain catches what a CRC cannot prove —
// that damage or tampering anywhere in the sealed prefix is detected as
// corruption rather than silently truncating acknowledged history (see
// verify.go).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"smrseek/internal/geom"
)

// RecordKind classifies a journaled STL mutation.
type RecordKind uint8

const (
	// RecWrite is a host write: Lba was mapped to Pba (the frontier at
	// append time), advancing the frontier by Lba.Count.
	RecWrite RecordKind = iota + 1
	// RecRelocate is a defrag write-back: same replay semantics as
	// RecWrite, kept distinct so recovery statistics can tell host
	// traffic from maintenance traffic.
	RecRelocate
	// RecFrontier is an explicit frontier move: the frontier becomes Pba
	// and the extent is ignored.
	RecFrontier
	// RecSeal is a segment seal frame — not a replayable mutation. It
	// closes the records appended since the previous seal with their
	// Merkle root and the next chain value. The Log emits seals itself;
	// Append rejects the kind.
	RecSeal
)

// String names the kind.
func (k RecordKind) String() string {
	switch k {
	case RecWrite:
		return "write"
	case RecRelocate:
		return "relocate"
	case RecFrontier:
		return "frontier"
	case RecSeal:
		return "seal"
	}
	return "unknown"
}

// Record is one journaled STL mutation.
type Record struct {
	Kind RecordKind
	Lba  geom.Extent
	Pba  geom.Sector
}

// Valid reports whether the record's fields are replayable: a known
// mutation kind, non-negative addresses, a positive extent for write
// kinds, and no address-space overflow. A CRC-valid frame with invalid
// fields is corruption and stops replay just like a torn tail.
func (r Record) Valid() bool {
	switch r.Kind {
	case RecWrite, RecRelocate:
		return r.Lba.Start >= 0 && r.Lba.Count > 0 && r.Pba >= 0 &&
			r.Lba.Start <= math.MaxInt64-r.Lba.Count &&
			r.Pba <= math.MaxInt64-r.Lba.Count
	case RecFrontier:
		return r.Pba >= 0
	}
	return false
}

// On-disk framing. All integers are little-endian.
//
//	journal   := header frame*
//	header    := magic(8) generation(8) frontier(8) anchor(32) crc32(4)  [60 bytes]
//	frame     := length(4) payload crc32(4)
//	payload   := record | seal                 (distinguished by length + kind)
//	record    := kind(1) lbaStart(8) lbaCount(8) pba(8)                  [25 bytes]
//	seal      := kind(1)=4 index(8) count(4) root(32) chain(32)          [77 bytes]
//
// The header CRC covers generation, frontier and anchor; a frame CRC
// covers its payload. The length field counts payload bytes only.
const (
	journalMagic    = "SMRWAL02"
	headerSize      = 8 + 8 + 8 + 32 + 4
	payloadSize     = 1 + 8 + 8 + 8
	frameSize       = 4 + payloadSize + 4
	sealPayloadSize = 1 + 8 + 4 + 32 + 32
	sealFrameSize   = 4 + sealPayloadSize + 4
	maxPayloadLen   = 1 << 20 // sanity bound: larger lengths mean a torn/corrupt frame
)

// DefaultSegmentSize is the record count a filled segment is sealed at
// when SetSegmentSize was not called.
const DefaultSegmentSize = 256

// ErrCrashed is returned by Append and Checkpoint after an injected
// crash point has fired: the log behaves like a device that lost power.
var ErrCrashed = errors.New("journal: crashed (injected crash point)")

// MarshalRecord encodes a record as one framed journal entry.
func MarshalRecord(r Record) []byte {
	buf := make([]byte, frameSize)
	binary.LittleEndian.PutUint32(buf[0:4], payloadSize)
	p := buf[4 : 4+payloadSize]
	p[0] = byte(r.Kind)
	binary.LittleEndian.PutUint64(p[1:9], uint64(r.Lba.Start))
	binary.LittleEndian.PutUint64(p[9:17], uint64(r.Lba.Count))
	binary.LittleEndian.PutUint64(p[17:25], uint64(r.Pba))
	binary.LittleEndian.PutUint32(buf[4+payloadSize:], crc32.ChecksumIEEE(p))
	return buf
}

// unmarshalPayload decodes a CRC-validated payload. ok is false when the
// payload length or field values are not replayable.
func unmarshalPayload(p []byte) (Record, bool) {
	if len(p) != payloadSize {
		return Record{}, false
	}
	r := Record{
		Kind: RecordKind(p[0]),
		Lba: geom.Extent{
			Start: int64(binary.LittleEndian.Uint64(p[1:9])),
			Count: int64(binary.LittleEndian.Uint64(p[9:17])),
		},
		Pba: int64(binary.LittleEndian.Uint64(p[17:25])),
	}
	return r, r.Valid()
}

// Seal is one sealed segment: Count consecutive records closed by their
// Merkle Root and the Chain value linking the seal to its predecessor
// (or, for the first seal, to the journal header's anchor).
type Seal struct {
	// Index is the seal's 0-based position within its journal generation.
	Index int `json:"segment"`
	// First is the 1-based sequence of the first record covered.
	First int64 `json:"first"`
	// Count is the number of records the seal covers (> 0).
	Count int  `json:"count"`
	Root  Hash `json:"root"`
	Chain Hash `json:"chain"`
	// Offset is the byte offset of the seal frame in the journal file.
	Offset int64 `json:"offset"`
}

// marshalSeal encodes one framed seal entry.
func marshalSeal(index, count int, root, chain Hash) []byte {
	buf := make([]byte, sealFrameSize)
	binary.LittleEndian.PutUint32(buf[0:4], sealPayloadSize)
	p := buf[4 : 4+sealPayloadSize]
	p[0] = byte(RecSeal)
	binary.LittleEndian.PutUint64(p[1:9], uint64(index))
	binary.LittleEndian.PutUint32(p[9:13], uint32(count))
	copy(p[13:45], root[:])
	copy(p[45:77], chain[:])
	binary.LittleEndian.PutUint32(buf[4+sealPayloadSize:], crc32.ChecksumIEEE(p))
	return buf
}

// parseSealPayload decodes a CRC-validated seal payload.
func parseSealPayload(p []byte) (index int64, count int64, root, chain Hash, ok bool) {
	if len(p) != sealPayloadSize || p[0] != byte(RecSeal) {
		return 0, 0, Hash{}, Hash{}, false
	}
	index = int64(binary.LittleEndian.Uint64(p[1:9]))
	count = int64(binary.LittleEndian.Uint32(p[9:13]))
	copy(root[:], p[13:45])
	copy(chain[:], p[45:77])
	return index, count, root, chain, index >= 0 && count > 0
}

// marshalHeader encodes the journal file header.
func marshalHeader(generation uint64, frontier geom.Sector, anchor Hash) []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:8], journalMagic)
	binary.LittleEndian.PutUint64(buf[8:16], generation)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(frontier))
	copy(buf[24:56], anchor[:])
	binary.LittleEndian.PutUint32(buf[56:60], crc32.ChecksumIEEE(buf[8:56]))
	return buf
}

func unmarshalHeader(buf []byte) (generation uint64, frontier geom.Sector, anchor Hash, err error) {
	if len(buf) < headerSize {
		return 0, 0, Hash{}, fmt.Errorf("journal: short header (%d bytes)", len(buf))
	}
	if string(buf[0:8]) != journalMagic {
		return 0, 0, Hash{}, fmt.Errorf("journal: bad magic %q", buf[0:8])
	}
	if crc32.ChecksumIEEE(buf[8:56]) != binary.LittleEndian.Uint32(buf[56:60]) {
		return 0, 0, Hash{}, fmt.Errorf("journal: header checksum mismatch")
	}
	generation = binary.LittleEndian.Uint64(buf[8:16])
	frontier = int64(binary.LittleEndian.Uint64(buf[16:24]))
	copy(anchor[:], buf[24:56])
	if frontier < 0 {
		return 0, 0, Hash{}, fmt.Errorf("journal: negative header frontier %d", frontier)
	}
	return generation, frontier, anchor, nil
}

// Data is the parsed content of one journal stream.
type Data struct {
	// Generation is the journal's generation number; records apply only
	// when it exceeds the checkpoint's generation.
	Generation uint64
	// InitFrontier is the frontier position recorded at journal birth,
	// used when no checkpoint is available.
	InitFrontier geom.Sector
	// Anchor is the header's seal-chain anchor: the chain head of the
	// checkpoint this journal was reborn after (zero for generation 1
	// with no prior checkpoint).
	Anchor Hash
	// Records are the complete, CRC-valid records in append order.
	Records []Record
	// Seals are the verified segment seals, in order. Every seal's root
	// was recomputed from the records it covers and its chain value from
	// the predecessor — ReadJournal fails with a CorruptError otherwise.
	Seals []Seal
	// Sealed is the number of leading Records covered by Seals.
	Sealed int64
	// Torn reports that the stream ended in a torn or corrupt record,
	// which was discarded. Everything in Records precedes it.
	Torn bool
}

// ChainHead returns the seal chain after the last seal (the anchor when
// no records have been sealed).
func (d *Data) ChainHead() Hash {
	if n := len(d.Seals); n > 0 {
		return d.Seals[n-1].Chain
	}
	return d.Anchor
}

// ReadJournal parses a journal stream, stopping cleanly at a torn or
// corrupt tail. A missing or corrupt HEADER is an error (the header is
// written whole at journal birth and never rewritten, so damage there is
// not a torn append); a damaged frame followed by no further intact seal
// marks Torn — the crash signature; a damaged frame at or before the
// last intact seal is damage inside the sealed region and returns a
// *CorruptError (truncating there would silently drop acknowledged,
// sealed history).
func ReadJournal(r io.Reader) (Data, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Data{}, fmt.Errorf("journal: reading stream: %w", err)
	}
	return scanJournal(raw)
}

// scanJournal is the full parse + seal check over raw journal bytes.
func scanJournal(raw []byte) (Data, error) {
	var d Data
	if len(raw) < headerSize {
		return d, fmt.Errorf("journal: short header (%d bytes)", len(raw))
	}
	gen, frontier, anchor, err := unmarshalHeader(raw)
	if err != nil {
		// A crash mid-rebirth (truncate done, header write torn) leaves a
		// SHORT file: nothing but partial header bytes. A damaged header
		// with sealed content after it is not that — it is damage to a
		// file that was whole.
		if findSealFrom(raw, 0) >= 0 {
			return d, &CorruptError{File: JournalFile, Segment: 0, Offset: 0,
				Reason: "damaged header ahead of sealed content"}
		}
		return d, err
	}
	d.Generation, d.InitFrontier, d.Anchor = gen, frontier, anchor

	chain := anchor
	var pending []Hash // leaf hashes since the last seal
	pendingFirst := int64(1)
	off, end := int64(headerSize), int64(len(raw))

	// damaged classifies a bad frame at offset at: if any intact seal
	// frame survives at or beyond the damage, acknowledged sealed
	// history lies past it and the journal is corrupt, not torn.
	damaged := func(at int64, reason string) (Data, error) {
		if findSealFrom(raw, at) >= 0 {
			return d, &CorruptError{
				File: JournalFile, Segment: len(d.Seals), Offset: at,
				Reason: reason + " (intact seal follows the damage)",
			}
		}
		d.Torn = true
		return d, nil
	}
	// sealBroken is for a CRC-valid seal frame whose content disagrees
	// with the records it covers: never a crash artifact, always corrupt.
	sealBroken := func(at int64, reason string) (Data, error) {
		return d, &CorruptError{File: JournalFile, Segment: len(d.Seals), Offset: at, Reason: reason}
	}

	for off < end {
		if end-off < 4 {
			return damaged(off, "partial length prefix")
		}
		plen := int64(binary.LittleEndian.Uint32(raw[off:]))
		if plen == 0 || plen > maxPayloadLen {
			return damaged(off, fmt.Sprintf("implausible frame length %d", plen))
		}
		next := off + 4 + plen + 4
		if next > end {
			return damaged(off, "partial frame")
		}
		payload := raw[off+4 : off+4+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[off+4+plen:]) {
			return damaged(off, "frame checksum mismatch")
		}
		switch {
		case plen == payloadSize:
			rec, ok := unmarshalPayload(payload)
			if !ok {
				return damaged(off, "unreplayable record")
			}
			d.Records = append(d.Records, rec)
			pending = append(pending, LeafHash(payload))
		case plen == sealPayloadSize && payload[0] == byte(RecSeal):
			idx, cnt, root, sealChain, ok := parseSealPayload(payload)
			if !ok {
				return damaged(off, "malformed seal payload")
			}
			if int(idx) != len(d.Seals) {
				return sealBroken(off, fmt.Sprintf("seal index %d, want %d", idx, len(d.Seals)))
			}
			if int(cnt) != len(pending) {
				return sealBroken(off, fmt.Sprintf("seal covers %d records, %d are pending", cnt, len(pending)))
			}
			if got := MerkleRoot(pending); got != root {
				return sealBroken(off, fmt.Sprintf("segment root %s, sealed %s", got.Short(), root.Short()))
			}
			if want := chainLink(chain, root); want != sealChain {
				return sealBroken(off, fmt.Sprintf("chain %s, sealed %s", want.Short(), sealChain.Short()))
			}
			chain = sealChain
			d.Seals = append(d.Seals, Seal{
				Index: int(idx), First: pendingFirst, Count: int(cnt),
				Root: root, Chain: sealChain, Offset: off,
			})
			d.Sealed += cnt
			pendingFirst += cnt
			pending = pending[:0]
		default:
			return damaged(off, fmt.Sprintf("unrecognized %d-byte frame", plen))
		}
		off = next
	}
	return d, nil
}

// findSealFrom scans raw for an intact seal frame starting at or after
// offset from, returning its offset or -1. It is the resynchronization
// step of damage classification: the frame CRC plus the fixed seal
// length and kind make a false positive vanishingly unlikely, and a
// genuine seal past a damaged frame proves the damage sits inside the
// sealed region (seals are only ever appended after the records they
// cover).
func findSealFrom(raw []byte, from int64) int64 {
	if from < 0 {
		from = 0
	}
	for i := from; i+sealFrameSize <= int64(len(raw)); i++ {
		if binary.LittleEndian.Uint32(raw[i:]) != sealPayloadSize {
			continue
		}
		if raw[i+4] != byte(RecSeal) {
			continue
		}
		p := raw[i+4 : i+4+sealPayloadSize]
		if crc32.ChecksumIEEE(p) == binary.LittleEndian.Uint32(raw[i+4+sealPayloadSize:]) {
			return i
		}
	}
	return -1
}

// File names inside a journal directory.
const (
	// JournalFile is the append-only write-ahead log.
	JournalFile = "journal.wal"
	// CheckpointFile is the most recent complete checkpoint.
	CheckpointFile = "checkpoint.ckpt"
	// checkpointTmp is the staging name; a checkpoint becomes visible
	// only via rename, so a crash mid-checkpoint leaves the old one.
	checkpointTmp = "checkpoint.tmp"
)

// JournalPath returns the journal file path inside dir.
func JournalPath(dir string) string { return filepath.Join(dir, JournalFile) }

// CheckpointPath returns the checkpoint file path inside dir.
func CheckpointPath(dir string) string { return filepath.Join(dir, CheckpointFile) }

// Failer injects append failures, modelling a faulty journal device. It
// is consulted before any bytes are written; a non-nil error fails the
// append with nothing persisted, so the caller may retry (transient
// faults) or give up. seq is the 1-based sequence number the append
// would get.
type Failer func(seq int64, rec Record) error

// Log is an open journal directory: the write-ahead log file plus the
// checkpoint alongside it. It is not safe for concurrent use; each
// simulator owns one.
type Log struct {
	dir string
	f   *os.File

	generation uint64
	appends    int64 // acknowledged appends by this process
	sinceCkpt  int64 // records in the journal file since its header
	ckpts      int64 // checkpoints written by this process
	size       int64 // journal file size (for seal offsets)

	segSize int    // records per sealed segment
	anchor  Hash   // header anchor (chain head at journal birth)
	chain   Hash   // chain head after the last seal
	leaves  []Hash // leaf hash per record in this generation
	sealed  int64  // records covered by seals
	seals   []Seal // seals in this generation
	onSeal  SealFunc

	failer     Failer
	crashAfter int64 // 1-based append seq that crashes; 0 = never
	tornBytes  int
	crashed    bool
}

// Open opens (or creates) the journal in dir, creating the directory as
// needed. A fresh journal is born with initFrontier in its header, a
// generation one past the checkpoint's (or 1) and the checkpoint's
// chain head as its seal anchor. An existing journal is opened for
// append; its records and seals are scanned to validate the file,
// recount the checkpoint age and restore the sealing state. An existing
// torn tail is rejected — recover first, checkpoint, and the reborn
// journal is clean. A stale checkpoint.tmp left by a crash mid-
// checkpoint is removed.
func Open(dir string, initFrontier geom.Sector) (*Log, error) {
	if initFrontier < 0 {
		return nil, fmt.Errorf("journal: negative initial frontier %d", initFrontier)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	// A crash between checkpoint staging and rename leaves the partial
	// temp file behind; it is never read, but letting it rot alongside
	// real state invites confusion (and a full disk). Clear it.
	if err := os.Remove(filepath.Join(dir, checkpointTmp)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	l := &Log{dir: dir, segSize: DefaultSegmentSize}
	path := JournalPath(dir)
	if data, err := os.ReadFile(path); err == nil {
		// The parallel scan hands back the leaf hashes it already computed
		// while verifying, so Prove's Merkle trees build on the audit
		// core's work instead of re-marshalling every record.
		d, leaves, err := scanJournalParallel(data, 0, true)
		if err != nil {
			return nil, err
		}
		if d.Torn {
			return nil, fmt.Errorf("journal: %s has a torn tail; recover before appending: %w", path, ErrTornTail)
		}
		l.generation = d.Generation
		l.sinceCkpt = int64(len(d.Records))
		l.size = int64(len(data))
		l.anchor = d.Anchor
		l.chain = d.ChainHead()
		l.seals = d.Seals
		l.sealed = d.Sealed
		l.leaves = leaves
		l.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			return nil, err
		}
		return l, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	gen := uint64(1)
	var anchor Hash
	if snap, err := readCheckpointFile(CheckpointPath(dir)); err == nil && snap != nil {
		gen = snap.Generation + 1
		anchor = snap.Chain
	} else if err != nil {
		return nil, fmt.Errorf("journal: existing checkpoint unreadable: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(marshalHeader(gen, initFrontier, anchor)); err != nil {
		f.Close()
		return nil, err
	}
	l.generation, l.f = gen, f
	l.anchor, l.chain = anchor, anchor
	l.size = headerSize
	return l, nil
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Generation returns the journal's current generation number.
func (l *Log) Generation() uint64 { return l.generation }

// Appends returns the appends acknowledged by this process.
func (l *Log) Appends() int64 { return l.appends }

// SinceCheckpoint returns the records in the journal file beyond the
// last checkpoint — the replay work a crash right now would cost.
func (l *Log) SinceCheckpoint() int64 { return l.sinceCkpt }

// Checkpoints returns the checkpoints written by this process.
func (l *Log) Checkpoints() int64 { return l.ckpts }

// Crashed reports whether an injected crash point has fired.
func (l *Log) Crashed() bool { return l.crashed }

// Chain returns the seal chain head: the anchor extended by every seal
// of the current generation.
func (l *Log) Chain() Hash { return l.chain }

// Anchor returns the current generation's header anchor — the chain
// head inherited from the last checkpoint (zero for generation 1).
func (l *Log) Anchor() Hash { return l.anchor }

// SealedRecords returns how many records of the current generation are
// covered by seals; records past them await the next seal.
func (l *Log) SealedRecords() int64 { return l.sealed }

// Seals returns a copy of the current generation's seals.
func (l *Log) Seals() []Seal { return append([]Seal(nil), l.seals...) }

// SetSegmentSize sets how many records fill a segment before it is
// sealed automatically (default DefaultSegmentSize). Smaller segments
// seal — and thus become tamper-evident and provable — sooner, at the
// cost of one 85-byte seal frame per segment.
func (l *Log) SetSegmentSize(n int) error {
	if n <= 0 {
		return fmt.Errorf("journal: segment size %d, want > 0", n)
	}
	l.segSize = n
	return nil
}

// SetFailer installs an append fault hook (nil clears it).
func (l *Log) SetFailer(f Failer) { l.failer = f }

// SealFunc observes seal-chain advancement. It is called on the
// appending goroutine after every durable seal boundary: a segment seal
// (automatic or forced) and a checkpoint rebirth. gen and sealedBytes
// identify the sealed extent of the journal file — every byte below
// sealedBytes in generation gen is covered by the seal chain — and
// appends is the cumulative Appends() count those bytes commit.
// Replication subscribes here to learn when new bytes become shippable.
type SealFunc func(gen uint64, sealedBytes int64, appends int64)

// OnSeal installs the seal subscription (nil clears it). The hook also
// fires once at installation with the current sealed extent, so a late
// subscriber does not miss state sealed before it attached.
func (l *Log) OnSeal(fn SealFunc) {
	l.onSeal = fn
	l.notifySeal()
}

func (l *Log) notifySeal() {
	if l.onSeal != nil {
		l.onSeal(l.generation, l.SealedBytes(), l.appends)
	}
}

// SealedBytes returns the journal file extent covered by the seal chain:
// the byte offset just past the last seal frame, or the header size when
// nothing is sealed in this generation. Bytes below it are immutable for
// the life of the generation — the property segment shipping relies on.
func (l *Log) SealedBytes() int64 {
	if n := len(l.seals); n > 0 {
		return l.seals[n-1].Offset + sealFrameSize
	}
	return headerSize
}

// CrashAfter arms a crash point: append number n (1-based) persists only
// tornBytes bytes of its frame — a torn write — and fails with
// ErrCrashed; the log is dead thereafter. tornBytes is clamped to the
// frame size minus one so the torn record is never replayable, and to
// zero from below.
func (l *Log) CrashAfter(n int64, tornBytes int) {
	l.crashAfter, l.tornBytes = n, tornBytes
}

// Append write-ahead-logs one record. The caller must apply the
// mutation only after Append returns nil: a failed append persisted
// either nothing (failer fault) or an unreplayable torn prefix (crash).
// Filling a segment seals it in the same call.
func (l *Log) Append(rec Record) error {
	if l.crashed {
		return ErrCrashed
	}
	if !rec.Valid() {
		return fmt.Errorf("journal: unreplayable record %+v", rec)
	}
	seq := l.appends + 1
	if l.failer != nil {
		if err := l.failer(seq, rec); err != nil {
			return err
		}
	}
	frame := MarshalRecord(rec)
	if l.crashAfter > 0 && seq >= l.crashAfter {
		torn := l.tornBytes
		if torn < 0 {
			torn = 0
		}
		if torn >= len(frame) {
			torn = len(frame) - 1
		}
		if torn > 0 {
			if _, err := l.f.Write(frame[:torn]); err != nil {
				return err
			}
		}
		l.crashed = true
		return ErrCrashed
	}
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.size += int64(len(frame))
	l.leaves = append(l.leaves, LeafHash(frame[4:4+payloadSize]))
	l.appends++
	l.sinceCkpt++
	if int64(len(l.leaves))-l.sealed >= int64(l.segSize) {
		return l.seal()
	}
	return nil
}

// seal closes the open segment (no-op when empty): Merkle root over the
// pending leaves, chain extension, one seal frame appended.
func (l *Log) seal() error {
	pending := l.leaves[l.sealed:]
	if len(pending) == 0 {
		return nil
	}
	root := MerkleRoot(pending)
	next := chainLink(l.chain, root)
	idx := len(l.seals)
	frame := marshalSeal(idx, len(pending), root, next)
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.seals = append(l.seals, Seal{
		Index: idx, First: l.sealed + 1, Count: len(pending),
		Root: root, Chain: next, Offset: l.size,
	})
	l.size += int64(len(frame))
	l.chain = next
	l.sealed += int64(len(pending))
	l.notifySeal()
	return nil
}

// Seal force-closes the open segment even if it is not full, making
// every acknowledged record sealed (and provable) immediately. A no-op
// when no records are pending.
func (l *Log) Seal() error {
	if l.crashed {
		return ErrCrashed
	}
	return l.seal()
}

// Prove returns the inclusion proof for the seq'th record (1-based) of
// the current journal generation. Only sealed records have proofs; an
// unsealed tail record returns ErrUnsealed (force a seal or a
// checkpoint first), and a seq outside the generation is an error —
// checkpointing folds sealed history into the snapshot and truncates
// the journal, so proofs do not survive a checkpoint.
func (l *Log) Prove(seq int64) (Proof, error) {
	if seq < 1 || seq > int64(len(l.leaves)) {
		return Proof{}, fmt.Errorf("journal: no record %d in generation %d (%d records)",
			seq, l.generation, len(l.leaves))
	}
	if seq > l.sealed {
		return Proof{}, fmt.Errorf("journal: record %d of generation %d: %w (sealed through %d)",
			seq, l.generation, ErrUnsealed, l.sealed)
	}
	for _, s := range l.seals {
		if seq < s.First || seq >= s.First+int64(s.Count) {
			continue
		}
		leaves := l.leaves[s.First-1 : s.First-1+int64(s.Count)]
		i := int(seq - s.First)
		return Proof{
			Generation: l.generation,
			Seq:        seq,
			Segment:    s.Index,
			Index:      i,
			Count:      s.Count,
			Leaf:       leaves[i],
			Path:       merklePath(leaves, i),
			Root:       s.Root,
			Chain:      s.Chain,
		}, nil
	}
	return Proof{}, fmt.Errorf("journal: record %d not covered by any seal", seq)
}

// Checkpoint atomically persists the snapshot and truncates the
// journal. The open segment is sealed first so the snapshot's chain
// head commits every acknowledged record; the snapshot is staged to a
// temporary file, synced, renamed over the checkpoint, and the rename
// is made durable with a directory fsync; only then is the journal
// reborn empty with the next generation and the chain head as its
// anchor. A crash anywhere in between leaves a recoverable pair (see
// the package comment on generations).
func (l *Log) Checkpoint(snap Snapshot) error {
	if l.crashed {
		return ErrCrashed
	}
	if err := l.seal(); err != nil {
		return err
	}
	snap.Generation = l.generation
	snap.Chain = l.chain
	tmp := filepath.Join(l.dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if err := WriteCheckpoint(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, CheckpointPath(l.dir)); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is: fsync the
	// directory, or a power cut can resurrect the old checkpoint after
	// the journal was truncated — silently dropping acknowledged writes.
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// The checkpoint is durable; rebirth the journal under the next
	// generation. Stale records left by a crash before this point are
	// skipped at recovery because their generation is now old.
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.generation++
	if _, err := l.f.Write(marshalHeader(l.generation, snap.Frontier, l.chain)); err != nil {
		return err
	}
	l.anchor = l.chain
	l.leaves = l.leaves[:0]
	l.sealed = 0
	l.seals = nil
	l.size = headerSize
	l.sinceCkpt = 0
	l.ckpts++
	l.notifySeal()
	return nil
}

// syncDir fsyncs a directory, making directory-entry mutations (a
// checkpoint rename) durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Sync flushes the journal file to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Close closes the journal file. The log is unusable afterwards.
func (l *Log) Close() error { return l.f.Close() }

// newByteReader avoids importing bytes just for one reader.
type byteReader struct {
	b []byte
	i int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
