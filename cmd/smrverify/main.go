// Command smrverify audits journal directories offline: it checks every
// frame CRC, recomputes every sealed segment's Merkle root and the seal
// chain, and checks the checkpoint⇄journal linkage — without replaying
// a single record. Point it at one volume's journal directory, or at a
// daemon's -journal-dir root to audit every volume under it.
//
// Examples:
//
//	smrverify /var/lib/smrd/journal          # audits every volume subdir
//	smrverify -strict /tmp/smrd/a            # torn tails also fail
//	smrverify -json /tmp/smrd/a | jq .
//
// Exit status: 0 when every directory verifies (torn tails and stale
// generations are crash residue, reported but clean), 1 on any
// corruption — damage inside a sealed region, a broken seal chain, or a
// checkpoint that does not anchor its journal. With -strict, torn tails
// fail too.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"smrseek/internal/journal"
	"smrseek/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smrverify:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smrverify", flag.ContinueOnError)
	var (
		strict   = fs.Bool("strict", false, "treat torn tails (crash residue) as failures too")
		jsonFlag = fs.Bool("json", false, "emit one JSON audit object per directory instead of tables")
		workers  = fs.Int("j", 0, "segment verification workers (0 = GOMAXPROCS, 1 = sequential); the audit is identical at any count")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: smrverify [-strict] [-json] DIR...")
	}

	var dirs []string
	for _, root := range fs.Args() {
		expanded, err := expand(root)
		if err != nil {
			return err
		}
		dirs = append(dirs, expanded...)
	}

	var failed bool
	enc := json.NewEncoder(out)
	for _, dir := range dirs {
		audit, err := journal.VerifyDirWorkers(dir, *workers)
		if *jsonFlag {
			type result struct {
				*journal.Audit
				Error string `json:"error,omitempty"`
			}
			r := result{Audit: audit}
			if err != nil {
				r.Error = err.Error()
			}
			if eerr := enc.Encode(r); eerr != nil {
				return eerr
			}
		} else if perr := printAudit(out, dir, audit, err); perr != nil {
			return perr
		}
		if err != nil || (*strict && audit != nil && audit.TailTorn) {
			failed = true
		}
	}
	if failed {
		return errors.New("verification failed")
	}
	return nil
}

// expand turns a root path into the journal directories beneath it: the
// root itself when it directly holds journal state, else every child
// directory that does (the smrd -journal-dir layout, one subdirectory
// per volume).
func expand(root string) ([]string, error) {
	if holdsJournal(root) {
		return []string{root}, nil
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if sub := filepath.Join(root, e.Name()); e.IsDir() && holdsJournal(sub) {
			dirs = append(dirs, sub)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("%s holds no journal state (no %s or %s)",
			root, journal.JournalFile, journal.CheckpointFile)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func holdsJournal(dir string) bool {
	for _, name := range []string{journal.JournalFile, journal.CheckpointFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// printAudit renders one directory's verdict and per-segment table.
func printAudit(out io.Writer, dir string, a *journal.Audit, verr error) error {
	switch {
	case verr != nil:
		fmt.Fprintf(out, "%s: CORRUPT: %v\n", dir, verr)
		return nil
	case a.Stale:
		fmt.Fprintf(out, "%s: ok (stale journal generation %d subsumed by checkpoint generation %d)\n",
			dir, a.Generation, a.CheckpointGeneration)
		return nil
	case !a.HasJournal:
		fmt.Fprintf(out, "%s: ok (checkpoint only, generation %d, chain %s)\n",
			dir, a.CheckpointGeneration, a.ChainHead.Short())
		return nil
	}
	verdict := "ok"
	if a.TailTorn {
		verdict = "ok (torn tail: crash residue past the last seal)"
	}
	fmt.Fprintf(out, "%s: %s — generation %d, %d sealed segments (%d records), %d unsealed tail records\n",
		dir, verdict, a.Generation, len(a.Segments), a.SealedRecords, a.TailRecords)
	fmt.Fprintf(out, "  anchor %s → chain head %s\n", a.Anchor.Short(), a.ChainHead.Short())
	if len(a.Segments) == 0 {
		return nil
	}
	tbl := report.NewTable("sealed segments", "segment", "records", "root", "chain", "offset")
	for _, s := range a.Segments {
		tbl.AddRow(fmt.Sprint(s.Index), fmt.Sprintf("%d..%d", s.First, s.First+int64(s.Count)-1),
			s.Root.Short(), s.Chain.Short(), fmt.Sprint(s.Offset))
	}
	return tbl.Render(out)
}
