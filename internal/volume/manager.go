package volume

import (
	"fmt"

	"smrseek/internal/obsv"
)

// Manager owns a fixed set of volumes opened together and closed
// together — the daemon's in-process model of a multi-volume service.
// The set is immutable after OpenAll, so lookups need no locking and
// are safe from any number of server goroutines.
type Manager struct {
	order []string
	vols  map[string]*Volume
	reg   *obsv.Registry
}

// OpenAll opens every configured volume. On any failure the volumes
// opened so far are closed and the first error returned. Names must be
// unique.
func OpenAll(cfgs ...Config) (*Manager, error) {
	m := &Manager{vols: make(map[string]*Volume, len(cfgs)), reg: obsv.NewRegistry()}
	for _, cfg := range cfgs {
		if _, dup := m.vols[cfg.Name]; dup {
			m.Close()
			return nil, fmt.Errorf("volume: duplicate name %q", cfg.Name)
		}
		v, err := Open(cfg)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.order = append(m.order, cfg.Name)
		m.vols[cfg.Name] = v
		if err := m.reg.Register(cfg.Name, v.Collector()); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// Get returns the named volume.
func (m *Manager) Get(name string) (*Volume, bool) {
	v, ok := m.vols[name]
	return v, ok
}

// Names returns the volume names in open order.
func (m *Manager) Names() []string { return append([]string(nil), m.order...) }

// Registry returns the shared metrics registry holding every volume's
// collector, ready for obsv.ServeRegistry.
func (m *Manager) Registry() *obsv.Registry { return m.reg }

// Close closes every volume — draining queues, checkpointing journaled
// state — and returns the first error.
func (m *Manager) Close() error {
	var first error
	for _, name := range m.order {
		if err := m.vols[name].Close(); err != nil && first == nil {
			first = fmt.Errorf("volume %s: %w", name, err)
		}
	}
	return first
}
