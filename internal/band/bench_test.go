package band

import (
	"math/rand"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// BenchmarkBandClean replays a deterministic rewrite-heavy stream that
// keeps the persistent cache full, so every iteration exercises the
// redirect path and the band cleaning engine continuously — the
// hot loop a banded simulation spends its time in.
func BenchmarkBandClean(b *testing.B) {
	type op struct {
		kind disk.OpKind
		ext  geom.Extent
	}
	rng := rand.New(rand.NewSource(1))
	ops := make([]op, 20000)
	for i := range ops {
		kind := disk.Read
		if rng.Intn(2) == 0 {
			kind = disk.Write
		}
		ops[i] = op{kind, geom.Ext(rng.Int63n(1<<13), 1+rng.Int63n(512))}
	}
	for _, pol := range []Policy{PolA, PolB, Shelter} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			b.ReportAllocs()
			var cleaned, stalls int64
			for i := 0; i < b.N; i++ {
				d, err := New(Config{
					BandSectors:  256,
					CacheSectors: 2048,
					UnitSectors:  512,
					DataSectors:  1 << 20,
					Policy:       pol,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, o := range ops {
					if _, err := d.TryDo(o.kind, o.ext); err != nil {
						b.Fatal(err)
					}
				}
				c := d.Cleaning()
				cleaned, stalls = c.BandsCleaned, c.Stalls
				if cleaned == 0 {
					b.Fatal("workload did not reach the cleaner")
				}
			}
			b.ReportMetric(float64(cleaned)/float64(len(ops))*1000, "cleans_per_kop")
			b.ReportMetric(float64(stalls)/float64(len(ops))*1000, "stalls_per_kop")
		})
	}
}
