package mcache

import (
	"testing"

	"smrseek/internal/geom"
)

func BenchmarkWriteAndMerge(b *testing.B) {
	l, err := New(Config{
		DeviceSectors: 1 << 20,
		ZoneSectors:   1 << 14,
		CacheSectors:  4 << 14,
	})
	if err != nil {
		b.Fatal(err)
	}
	seed := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		l.Write(geom.Ext(int64(seed%(1<<20-64)), 16))
		l.PendingMaintenance()
	}
	b.ReportMetric(float64(l.Merges()), "merges")
}

func BenchmarkResolveCached(b *testing.B) {
	l, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	seed := uint64(2)
	for i := 0; i < 5000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		l.Write(geom.Ext(int64(seed%(1<<22)), 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		l.Resolve(geom.Ext(int64(seed%(1<<22)), 256))
	}
}
