// Command benchjson converts `go test -bench` output into a stable JSON
// baseline and compares two baselines.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | go run ./scripts/benchjson > BENCH_baseline.json
//	go run ./scripts/benchjson -compare BENCH_baseline.json BENCH_new.json
//	go run ./scripts/benchjson -compare -gate 25 -match 'Simulator|extmap' old.json new.json
//
// Compare prints one line per benchmark with the ns/op delta (and the
// allocs/op delta where both baselines carry -benchmem data). By default
// it exits nonzero only on malformed input — the output is for humans
// reviewing a PR's perf trajectory. With -gate PCT it becomes a CI
// gate: any benchmark (optionally filtered by -match against
// "pkg.Name") whose ns/op grew by more than PCT percent fails the run.
// -gate-allocs PCT gates allocs/op the same way; benchmarks whose old
// baseline records 0 allocs/op are skipped by that gate (a 0 -> 1 step
// is infinite in percent terms, and zero-alloc paths are pinned exactly
// by the testing.AllocsPerRun tests instead).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line from `go test -bench` output.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Baseline is the JSON document benchjson emits.
type Baseline struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two baseline files instead of parsing stdin")
	gate := flag.Float64("gate", 0, "with -compare: fail when any matched benchmark's ns/op grew by more than this percent (0 = report only)")
	gateAllocs := flag.Float64("gate-allocs", 0, "with -compare: fail when any matched benchmark's allocs/op grew by more than this percent (0 = report only; old-zero-alloc benchmarks are skipped)")
	match := flag.String("match", "", `with -gate/-gate-allocs: regexp selecting the benchmarks to gate, matched against "pkg.Name" (empty = all)`)
	flag.Parse()
	var err error
	if *compare {
		var re *regexp.Regexp
		if *match != "" {
			re, err = regexp.Compile(*match)
		}
		switch {
		case err != nil:
			err = fmt.Errorf("-match: %v", err)
		case flag.NArg() != 2:
			err = fmt.Errorf("-compare wants exactly two baseline files, got %d", flag.NArg())
		default:
			err = runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), re, *gate, *gateAllocs)
		}
	} else {
		err = runParse(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func runParse(in io.Reader, out io.Writer) error {
	b, err := Parse(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Parse reads `go test -bench` output and collects benchmark lines,
// tracking the `pkg:` context lines so names stay unique across
// packages.
func Parse(r io.Reader) (Baseline, error) {
	var b Baseline
	pkg := ""
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for s.Scan() {
		line := strings.TrimSpace(s.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			b.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			b.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseBenchLine(line)
			if err != nil {
				return Baseline{}, fmt.Errorf("line %q: %w", line, err)
			}
			if ok {
				res.Pkg = pkg
				b.Benchmarks = append(b.Benchmarks, res)
			}
		}
	}
	if err := s.Err(); err != nil {
		return Baseline{}, err
	}
	sort.Slice(b.Benchmarks, func(i, j int) bool {
		if b.Benchmarks[i].Pkg != b.Benchmarks[j].Pkg {
			return b.Benchmarks[i].Pkg < b.Benchmarks[j].Pkg
		}
		return b.Benchmarks[i].Name < b.Benchmarks[j].Name
	})
	return b, nil
}

// parseBenchLine handles "BenchmarkX-8  1234  56.7 ns/op [ 8 B/op  1 allocs/op ]".
// Lines that merely start with "Benchmark" but are not results (e.g. a
// bare name printed before a sub-benchmark runs) are skipped, not errors.
func parseBenchLine(line string) (Result, bool, error) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false, nil
	}
	var res Result
	res.Name = stripProcSuffix(f[0])
	var err error
	if res.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
		return Result{}, false, fmt.Errorf("iterations: %w", err)
	}
	if res.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
		return Result{}, false, fmt.Errorf("ns/op: %w", err)
	}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	return res, true, nil
}

func runCompare(out io.Writer, oldPath, newPath string, match *regexp.Regexp, gatePct, gateAllocsPct float64) error {
	oldB, err := loadBaseline(oldPath)
	if err != nil {
		return err
	}
	newB, err := loadBaseline(newPath)
	if err != nil {
		return err
	}
	fmt.Fprint(out, FormatCompare(oldB, newB))
	if bad := Regressions(oldB, newB, match, gatePct, gateAllocsPct); len(bad) > 0 {
		return fmt.Errorf("%d benchmark metric(s) regressed past the gate:\n  %s",
			len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}

// Regressions returns a description of every benchmark present in both
// baselines (and matching match, when non-nil) whose ns/op grew by more
// than gatePct percent or whose allocs/op grew by more than
// gateAllocsPct percent. A gate of 0 disables that metric's check. The
// allocs gate skips benchmarks whose old baseline shows 0 allocs/op:
// those either predate -benchmem (no data) or are pinned exactly by
// AllocsPerRun tests, and a percent delta from zero is meaningless.
func Regressions(oldB, newB Baseline, match *regexp.Regexp, gatePct, gateAllocsPct float64) []string {
	newByKey := map[string]Result{}
	for _, r := range newB.Benchmarks {
		newByKey[r.Pkg+"."+r.Name] = r
	}
	var bad []string
	for _, o := range oldB.Benchmarks {
		k := o.Pkg + "." + o.Name
		if match != nil && !match.MatchString(k) {
			continue
		}
		n, ok := newByKey[k]
		if !ok {
			continue
		}
		if gatePct > 0 && o.NsPerOp > 0 {
			if delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100; delta > gatePct {
				bad = append(bad, fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%%)",
					k, o.NsPerOp, n.NsPerOp, delta))
			}
		}
		if gateAllocsPct > 0 && o.AllocsPerOp > 0 {
			if delta := float64(n.AllocsPerOp-o.AllocsPerOp) / float64(o.AllocsPerOp) * 100; delta > gateAllocsPct {
				bad = append(bad, fmt.Sprintf("%s: %d -> %d allocs/op (%+.1f%%)",
					k, o.AllocsPerOp, n.AllocsPerOp, delta))
			}
		}
	}
	return bad
}

// stripProcSuffix removes the trailing -GOMAXPROCS marker go test
// appends to benchmark names ("BenchmarkInsert-8" -> "BenchmarkInsert"),
// so a baseline generated on one machine pairs up with runs on another.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func loadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// FormatCompare renders the old→new ns/op movement for every benchmark
// present in either baseline, with the allocs/op movement appended for
// rows where either side recorded allocation data.
func FormatCompare(oldB, newB Baseline) string {
	type pair struct{ o, n *Result }
	key := func(r Result) string { return r.Pkg + "." + r.Name }
	m := map[string]*pair{}
	var order []string
	for i := range oldB.Benchmarks {
		k := key(oldB.Benchmarks[i])
		m[k] = &pair{o: &oldB.Benchmarks[i]}
		order = append(order, k)
	}
	for i := range newB.Benchmarks {
		k := key(newB.Benchmarks[i])
		if p, ok := m[k]; ok {
			p.n = &newB.Benchmarks[i]
		} else {
			m[k] = &pair{n: &newB.Benchmarks[i]}
			order = append(order, k)
		}
	}
	var sb strings.Builder
	for _, k := range order {
		p := m[k]
		switch {
		case p.o == nil:
			fmt.Fprintf(&sb, "%-60s (new) %12.1f ns/op\n", k, p.n.NsPerOp)
		case p.n == nil:
			fmt.Fprintf(&sb, "%-60s (gone, was %.1f ns/op)\n", k, p.o.NsPerOp)
		default:
			delta := 0.0
			if p.o.NsPerOp != 0 {
				delta = (p.n.NsPerOp - p.o.NsPerOp) / p.o.NsPerOp * 100
			}
			fmt.Fprintf(&sb, "%-60s %12.1f -> %12.1f ns/op  %+6.1f%%",
				k, p.o.NsPerOp, p.n.NsPerOp, delta)
			if p.o.AllocsPerOp != 0 || p.n.AllocsPerOp != 0 {
				fmt.Fprintf(&sb, "  %8d -> %8d allocs/op", p.o.AllocsPerOp, p.n.AllocsPerOp)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
