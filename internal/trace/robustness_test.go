package trace

import (
	"strings"
	"testing"
)

// Malformed trace input must never panic and must fail with an error
// naming the offending line, so a corrupt multi-gigabyte trace file is
// diagnosable.

func drain(t *testing.T, r Reader) error {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("reader panicked: %v", p)
		}
	}()
	for {
		if _, ok := r.Next(); !ok {
			return r.Err()
		}
	}
}

func TestMSRMalformedLines(t *testing.T) {
	cases := []struct {
		name, input, wantLine string
	}{
		{"too few fields", "128166372003061629,host,0,Read,1024\n", "line 1"},
		{"bad timestamp", "xyz,host,0,Read,1024,4096,0\n", "line 1"},
		{"bad disk number", "1,host,zero,Read,1024,4096,0\n", "line 1"},
		{"unknown op", "1,host,0,Trim,1024,4096,0\n", "line 1"},
		{"bad offset", "1,host,0,Read,ten,4096,0\n", "line 1"},
		{"bad size", "1,host,0,Read,1024,big,0\n", "line 1"},
		{"negative offset", "1,host,0,Read,-5,4096,0\n", "line 1"},
		{"error on later line", "1,host,0,Read,0,4096,0\n2,host,0,Write,512,512,0\ngarbage\n", "line 3"},
		{"truncated line", "1,host,0,Read,102", "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := drain(t, NewMSRReader(strings.NewReader(tc.input), -1))
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Errorf("error %q does not name %s", err, tc.wantLine)
			}
		})
	}
}

func TestCPMalformedLines(t *testing.T) {
	cases := []struct {
		name, input, wantLine string
	}{
		{"too few fields", "0,R,100\n", "line 1"},
		{"too many fields", "0,R,100,8,extra\n", "line 1"},
		{"bad time", "zero,R,100,8\n", "line 1"},
		{"unknown op", "0,T,100,8\n", "line 1"},
		{"bad lba", "0,R,abc,8\n", "line 1"},
		{"bad sectors", "0,R,100,abc\n", "line 1"},
		{"negative sectors", "0,R,100,-8\n", "line 1"},
		{"error after header and blanks", CPHeader + "\n\n0,R,100,8\nbroken\n", "line 4"},
		{"truncated line", "0,R,10", "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := drain(t, NewCPReader(strings.NewReader(tc.input)))
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Errorf("error %q does not name %s", err, tc.wantLine)
			}
		})
	}
}

func TestScannerErrorsCarryLineNumbers(t *testing.T) {
	// A line longer than the scanner cap triggers bufio.ErrTooLong,
	// which used to surface without position info or any hint of what
	// the offending bytes were.
	long := "1,host,0,Read,0,4096,0\n" + strings.Repeat("x", scanMaxLine+16)
	err := drain(t, NewMSRReader(strings.NewReader(long), -1))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("MSR scanner error = %v, want line 2 context", err)
	}
	if err != nil && !strings.Contains(err.Error(), `"xxxx`) {
		t.Errorf("MSR scanner error = %v, want partial-line head", err)
	}
	err = drain(t, NewCPReader(strings.NewReader(CPHeader+"\n"+strings.Repeat("y", scanMaxLine+16))))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("CP scanner error = %v, want line 2 context", err)
	}
	if err != nil && !strings.Contains(err.Error(), `"yyyy`) {
		t.Errorf("CP scanner error = %v, want partial-line head", err)
	}
}

func TestScannerAcceptsMultiMegabyteLines(t *testing.T) {
	// Lines past bufio's 64 KB default (and the old 1 MB cap) must parse,
	// not silently truncate or fail: pad a valid CP record with a huge
	// comment line before it.
	in := CPHeader + "\n# " + strings.Repeat("c", 2<<20) + "\n7,R,100,8\n"
	recs, err := ReadAll(NewCPReader(strings.NewReader(in)))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != 1 || recs[0].Time != 7 {
		t.Fatalf("got %v, want the single record after the long comment", recs)
	}
}

func TestReadersSurviveJunkWithoutPanic(t *testing.T) {
	junk := []string{
		"",
		"\x00\x00\x00\x00",
		",,,,,,",
		"\n\n\n",
		strings.Repeat(",", 100),
		"１,host,0,Read,0,4096,0", // full-width digit
	}
	for _, in := range junk {
		drain(t, NewMSRReader(strings.NewReader(in), -1))
		drain(t, NewCPReader(strings.NewReader(in)))
	}
}

func TestErroredReaderStaysErrored(t *testing.T) {
	r := NewCPReader(strings.NewReader("garbage\n0,R,100,8\n"))
	if _, ok := r.Next(); ok {
		t.Fatal("Next succeeded on garbage")
	}
	first := r.Err()
	if first == nil {
		t.Fatal("no error recorded")
	}
	// Further Next calls must not clear the error or yield records.
	if _, ok := r.Next(); ok {
		t.Error("Next yielded a record after an error")
	}
	if r.Err() != first {
		t.Error("error changed on subsequent Next")
	}
}
