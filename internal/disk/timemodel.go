package disk

import (
	"math"
	"time"

	"smrseek/internal/geom"
)

// TimeModel approximates the cost of an access from its seek distance and
// transfer size, following the paper's qualitative description (§III):
//
//   - very short seeks (within ShortSeekSectors) cost only the rotational
//     delay of skipping the intervening sectors, i.e. their transfer time;
//   - longer seeks pay a head-move time that grows from MinHeadMove to
//     MaxHeadMove with the square root of distance (the classic
//     acceleration-limited seek curve) plus an average half-rotation;
//   - a *backward* short seek is a missed rotation: a full rotation is
//     lost backing up to the preceding sector, which is exactly the cost
//     the look-behind prefetcher avoids (§IV-B).
//
// The defaults model a 7200 RPM drive (8.33 ms rotation) with 150 MB/s
// sustained transfer.
type TimeModel struct {
	RotationTime  time.Duration // one full platter rotation
	MinHeadMove   time.Duration // shortest track-to-track move
	MaxHeadMove   time.Duration // full-stroke move
	FullStroke    int64         // sectors spanned by a full-stroke seek
	TransferBytes float64       // sustained bytes per second
	ShortSeek     int64         // sectors reachable without a head move
	// RetryPenalty is the extra latency charged for a faulted attempt:
	// the drive reports the error and the sector must come around again
	// before the next attempt, so the natural default is one rotation.
	// Zero charges nothing (pre-fault-model behaviour).
	RetryPenalty time.Duration
}

// DefaultTimeModel returns parameters for a generic 7200 RPM SMR drive.
func DefaultTimeModel() TimeModel {
	return TimeModel{
		RotationTime:  8333 * time.Microsecond,
		MinHeadMove:   1 * time.Millisecond,
		MaxHeadMove:   25 * time.Millisecond,
		FullStroke:    int64(14e12 / geom.SectorSize), // ~14 TB device
		TransferBytes: 150e6,
		ShortSeek:     2048, // 1 MB: roughly a couple of tracks
		RetryPenalty:  8333 * time.Microsecond,
	}
}

// TransferTime returns the time to transfer n sectors.
func (m TimeModel) TransferTime(sectors int64) time.Duration {
	if sectors <= 0 {
		return 0
	}
	sec := float64(sectors) * geom.SectorSize / m.TransferBytes
	return time.Duration(sec * float64(time.Second))
}

// SeekTime returns the positioning cost of a seek of the given signed
// sector distance. A zero distance is free.
func (m TimeModel) SeekTime(distance int64) time.Duration {
	if distance == 0 {
		return 0
	}
	d := abs64(distance)
	if d <= m.ShortSeek {
		if distance < 0 {
			// Missed rotation: back up by waiting a full turn.
			return m.RotationTime
		}
		// Skip forward under rotation: pay the skipped transfer time.
		return m.TransferTime(d)
	}
	// Head move grows with sqrt(distance), clamped to the full stroke,
	// plus an average half rotation of latency.
	frac := math.Sqrt(float64(d) / float64(m.FullStroke))
	if frac > 1 {
		frac = 1
	}
	move := time.Duration(float64(m.MinHeadMove) + frac*float64(m.MaxHeadMove-m.MinHeadMove))
	return move + m.RotationTime/2
}

// AccessTime returns the full cost of an access: seek plus transfer,
// plus the retry penalty when the attempt faulted (the backoff before
// the next attempt is charged to the attempt that failed).
func (m TimeModel) AccessTime(a Access) time.Duration {
	var t time.Duration
	if a.Seeked {
		t += m.SeekTime(a.Distance)
	}
	if a.Faulted {
		t += m.RetryPenalty
	}
	return t + m.TransferTime(a.Extent.Count)
}

// TimeAccumulator is an Observer that totals modelled service time.
type TimeAccumulator struct {
	Model TimeModel

	ReadTime  time.Duration
	WriteTime time.Duration
	SeekTime  time.Duration
}

// NewTimeAccumulator returns an accumulator using the given model.
func NewTimeAccumulator(m TimeModel) *TimeAccumulator {
	return &TimeAccumulator{Model: m}
}

// ObserveAccess implements Observer.
func (t *TimeAccumulator) ObserveAccess(a Access) {
	cost := t.Model.AccessTime(a)
	if a.Seeked {
		t.SeekTime += t.Model.SeekTime(a.Distance)
	}
	if a.Kind == Read {
		t.ReadTime += cost
	} else {
		t.WriteTime += cost
	}
}

// Total returns read + write modelled time.
func (t *TimeAccumulator) Total() time.Duration { return t.ReadTime + t.WriteTime }
