// Package obsv is the simulator's observability layer: a structured
// event trace (recordable to a binary file and replayable to the run's
// exact Stats, or to a human-readable text log), streaming log-bucketed
// histograms for seek distance, fragmentation and modelled latency, and
// a small HTTP server exposing live counters, histogram snapshots and
// pprof while a run is in flight.
//
// Everything here attaches to a core.Simulator through the core.Probe
// interface; a simulator with no probe attached pays nothing.
package obsv

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// Tracer is a core.Probe that records the event stream to a sink.
// Errors are sticky: the first write failure stops the recording and is
// reported by Err and Close, so a tracer never aborts a simulation.
type Tracer struct {
	w    *bufio.Writer
	c    io.Closer // nil when the tracer does not own the destination
	text bool
	buf  [recordSize]byte
	err  error
}

// NewTracer returns a tracer recording the binary wire format to w.
// The destination is not closed by Close unless the tracer was built by
// Create.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16)}
	_, t.err = t.w.Write(magic[:])
	return t
}

// NewTextTracer returns a tracer recording one human-readable line per
// event. Text traces are for eyeballs and diffs; they cannot be
// replayed.
func NewTextTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriterSize(w, 1<<16), text: true}
}

// Create opens path for writing and returns a tracer that owns the
// file: Close flushes and closes it. A path ending in ".txt" selects
// the text format; anything else gets the binary wire format.
func Create(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var t *Tracer
	if strings.HasSuffix(path, ".txt") {
		t = NewTextTracer(f)
	} else {
		t = NewTracer(f)
	}
	t.c = f
	return t, nil
}

// Err returns the first write error, or nil.
func (t *Tracer) Err() error { return t.err }

// Close flushes the sink and, if the tracer owns it, closes it. It
// returns the first error seen over the tracer's whole life.
func (t *Tracer) Close() error {
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); t.err == nil {
			t.err = err
		}
	}
	return t.err
}

func (t *Tracer) line(format string, args ...interface{}) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

func extStr(e geom.Extent) string {
	return fmt.Sprintf("[%d,%d)", e.Start, e.End())
}

// OnOp implements core.Probe.
func (t *Tracer) OnOp(ev core.OpEvent) {
	if t.text {
		if ev.Kind == disk.Read {
			t.line("op      %8d read  lba %s frags=%d\n", ev.Op, extStr(ev.Lba), ev.Frags)
		} else {
			t.line("op      %8d write lba %s\n", ev.Op, extStr(ev.Lba))
		}
		return
	}
	t.record(evOp, uint8(ev.Kind), 0, ev.Op, ev.Lba.Start, ev.Lba.Count, int64(ev.Frags))
}

// OnAccess implements core.Probe.
func (t *Tracer) OnAccess(ev core.AccessEvent) {
	a := ev.Access
	if t.text {
		var extra strings.Builder
		if a.Seeked {
			fmt.Fprintf(&extra, " seek=%+d", a.Distance)
		}
		if a.Faulted {
			if ev.Transient {
				extra.WriteString(" fault(transient)")
			} else {
				extra.WriteString(" fault(media)")
			}
		}
		if ev.Maintenance {
			extra.WriteString(" maint")
		}
		t.line("access  %8d %-5s pba %s%s\n", ev.Op, a.Kind, extStr(a.Extent), extra.String())
		return
	}
	var flags uint8
	if a.Seeked {
		flags |= flagSeeked
	}
	if a.Faulted {
		flags |= flagFaulted
	}
	if ev.Maintenance {
		flags |= flagMaintenance
	}
	if ev.Transient {
		flags |= flagTransient
	}
	t.record(evAccess, uint8(a.Kind), flags, ev.Op, a.Extent.Start, a.Extent.Count, a.Distance)
}

// OnMech implements core.Probe.
func (t *Tracer) OnMech(ev core.MechEvent) {
	if t.text {
		if ev.Sectors != 0 {
			t.line("mech    %8d %s n=%d\n", ev.Op, ev.Kind, ev.Sectors)
		} else {
			t.line("mech    %8d %s\n", ev.Op, ev.Kind)
		}
		return
	}
	t.record(evMech, uint8(ev.Kind), 0, ev.Op, ev.Sectors, 0, 0)
}

// OnJournal implements core.Probe.
func (t *Tracer) OnJournal(ev core.JournalEvent) {
	if t.text {
		if ev.Dur != 0 {
			t.line("journal %8d %s dur=%s\n", ev.Op, ev.Kind, ev.Dur)
		} else {
			t.line("journal %8d %s\n", ev.Op, ev.Kind)
		}
		return
	}
	t.record(evJournal, uint8(ev.Kind), 0, ev.Op, int64(ev.Dur), 0, 0)
}

// OnSummary implements core.Probe.
func (t *Tracer) OnSummary(sum core.Summary) {
	if t.text {
		t.line("summary waf=%.4f ckpt-age=%d", sum.WAF, sum.CheckpointAge)
		if sum.Injected {
			t.line(" faults tr=%d tw=%d media=%d poisoned=%d",
				sum.TransientReads, sum.TransientWrites, sum.MediaErrors, sum.Poisoned)
		}
		t.line("\n")
		return
	}
	var flags uint8
	if sum.Injected {
		flags |= flagInjected
	}
	t.record(evSummary, 0, flags, 0, int64(floatBits(sum.WAF)), sum.CheckpointAge, sum.TransientReads)
	t.record(evSummary2, 0, 0, 0, sum.TransientWrites, sum.MediaErrors, sum.Poisoned)
}
