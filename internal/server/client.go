package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

// StatusError is a non-OK response from the server. Callers distinguish
// backpressure (IsOverloaded) from hard failures by status code.
type StatusError struct {
	Status uint8
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("smrd: %s: %s", StatusName(e.Status), e.Msg)
}

// IsOverloaded reports whether err is the server's backpressure signal —
// the request was shed, not executed, and may be retried.
func IsOverloaded(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Status == StatusOverloaded
}

// Client is one synchronous smrd protocol connection. Not safe for
// concurrent use; open one client per goroutine.
type Client struct {
	conn net.Conn
	buf  []byte // frame read scratch
	out  []byte // request encode scratch
}

// Dial connects and performs the protocol handshake, retrying refused
// connections briefly (the daemon may still be binding its listener).
func Dial(addr string) (*Client, error) {
	var (
		conn net.Conn
		err  error
	)
	for attempt := 0; attempt < 20; attempt++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("smrd: dial %s: %w", addr, err)
	}
	if err := handshake(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the response status + body.
func (c *Client) roundTrip(req request) ([]byte, error) {
	out, err := appendRequest(c.out[:0], req)
	if err != nil {
		return nil, err
	}
	c.out = out
	if _, err := c.conn.Write(out); err != nil {
		return nil, fmt.Errorf("smrd: send: %w", err)
	}
	frame, err := readFrame(c.conn, c.buf)
	if err != nil {
		return nil, fmt.Errorf("smrd: recv: %w", err)
	}
	c.buf = frame
	status, body := frame[0], frame[1:]
	if status != StatusOK {
		return nil, &StatusError{Status: status, Msg: string(body)}
	}
	return body, nil
}

// Write issues a logical write of ext on the named volume.
func (c *Client) Write(vol string, ext geom.Extent) error {
	_, err := c.roundTrip(request{Op: OpWrite, Volume: vol, Extent: ext})
	return err
}

// Read issues a logical read of ext and returns the number of physical
// fragments it resolved to — the paper's read-seek cost signal.
func (c *Client) Read(vol string, ext geom.Extent) (int, error) {
	body, err := c.roundTrip(request{Op: OpRead, Volume: vol, Extent: ext})
	if err != nil {
		return 0, err
	}
	if len(body) != 4 {
		return 0, fmt.Errorf("smrd: read response body %d bytes, want 4", len(body))
	}
	return int(binary.LittleEndian.Uint32(body)), nil
}

// Stat returns the volume's live statistics. Stats.Config is zeroed by
// the server (layer pointers do not cross the wire).
func (c *Client) Stat(vol string) (core.Stats, error) {
	body, err := c.roundTrip(request{Op: OpStat, Volume: vol})
	if err != nil {
		return core.Stats{}, err
	}
	var st core.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return core.Stats{}, fmt.Errorf("smrd: stat decode: %w", err)
	}
	return st, nil
}

// Snapshot forces a journal checkpoint on the volume.
func (c *Client) Snapshot(vol string) error {
	_, err := c.roundTrip(request{Op: OpSnapshot, Volume: vol})
	return err
}

// Step sends one trace record as the matching read/write request and
// returns a read's fragment count (0 for writes).
func (c *Client) Step(vol string, rec trace.Record) (int, error) {
	switch rec.Kind {
	case disk.Write:
		return 0, c.Write(vol, rec.Extent)
	case disk.Read:
		return c.Read(vol, rec.Extent)
	default:
		return 0, fmt.Errorf("smrd: unsupported record kind %v", rec.Kind)
	}
}

// Replay streams every record of r to the named volume in order and
// returns the op count. Each record blocks on its response, so the
// volume executes the trace in exactly this order.
func (c *Client) Replay(vol string, r trace.Reader) (int64, error) {
	var n int64
	for {
		rec, ok := r.Next()
		if !ok {
			return n, r.Err()
		}
		if _, err := c.Step(vol, rec); err != nil {
			return n, err
		}
		n++
	}
}
