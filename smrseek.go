// Package smrseek is a trace-driven simulator for read-seek behaviour of
// log-structured SMR disk translation layers, reproducing "Minimizing
// Read Seeks for SMR Disk" (Hajkazemi, Abdi, Desnoyers — IISWC 2018).
//
// It models the paper's infinite-disk seek accounting, a log-structured
// translation layer with a full extent map, and the paper's three seek
// reduction mechanisms — opportunistic defragmentation, translation-aware
// look-ahead-behind prefetching and translation-aware selective caching —
// plus a catalog of 21 synthetic workloads standing in for the MSR
// Cambridge and CloudPhysics traces the paper evaluates.
//
// Quick start:
//
//	recs := smrseek.MustWorkload("w91").Generate(0.5)
//	cmp, err := smrseek.ComparePaper(recs)
//	// cmp.Variants holds SAF for LS, LS+defrag, LS+prefetch, LS+cache.
//
// The cmd/ directory provides executables (smrsim, tracegen, traceinfo,
// experiments) and examples/ holds runnable walkthroughs.
package smrseek

import (
	"context"
	"fmt"
	"io"

	"smrseek/internal/analysis"
	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/experiments"
	"smrseek/internal/fault"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/metrics"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

// SectorSize is the simulator's sector size in bytes.
const SectorSize = geom.SectorSize

// Core simulation types, re-exported from the internal engine.
type (
	// Config selects a translation layer and mechanisms for a run.
	Config = core.Config
	// Stats is the outcome of one simulation run.
	Stats = core.Stats
	// Comparison holds baseline stats plus per-variant SAF reports.
	Comparison = core.Comparison
	// SAFReport is one variant's seek amplification factors.
	SAFReport = core.SAFReport
	// Simulator drives records through a configured pipeline.
	Simulator = core.Simulator
	// ReadEvent is delivered to read observers during a run.
	ReadEvent = core.ReadEvent

	// DefragConfig parameterizes opportunistic defragmentation.
	DefragConfig = core.DefragConfig
	// PrefetchConfig parameterizes look-ahead-behind prefetching.
	PrefetchConfig = core.PrefetchConfig
	// CacheConfig parameterizes translation-aware selective caching.
	CacheConfig = core.CacheConfig

	// FaultConfig parameterizes deterministic fault injection; set it on
	// Config.Fault to run a simulation under injected disk errors.
	FaultConfig = fault.Config
	// Resilience tallies injected faults and recovery outcomes for a run
	// (Stats.Resilience).
	Resilience = metrics.Resilience

	// JournalConfig attaches a write-ahead journal to a run; set it on
	// Config.Journal to make the translation state durable.
	JournalConfig = core.JournalConfig
	// Journal is the append-only write-ahead log with checkpoints that
	// persists translation state (see OpenJournal).
	Journal = journal.Log
	// Durability tallies journal appends, checkpoints and recovery
	// outcomes for a journaled run (Stats.Durability).
	Durability = metrics.Durability
	// ReplayStats summarizes what Recover replayed from the journal.
	ReplayStats = stl.ReplayStats
	// JournalAudit is the result of verifying a journal directory's seal
	// chain and checkpoint linkage (see VerifyJournal).
	JournalAudit = journal.Audit
	// InclusionProof is a Merkle inclusion proof for one sealed journal
	// record (see Journal.Prove); InclusionProof.Verify checks it.
	InclusionProof = journal.Proof
	// LS is the log-structured translation layer; Recover returns one,
	// and Config.CustomLayer accepts it to resume a recovered run.
	LS = stl.LS

	// Record is one block I/O operation.
	Record = trace.Record
	// Reader yields trace records in temporal order.
	Reader = trace.Reader
	// Preloaded is a trace parsed once into a compact in-memory arena,
	// replayable through many configurations without re-parsing (see
	// PreloadTrace, PreloadRecords and RunPreloaded).
	Preloaded = trace.Preloaded
	// Characteristics is a Table-I style workload summary.
	Characteristics = trace.Characteristics

	// Profile is a synthetic workload description.
	Profile = workload.Profile

	// Extent is a half-open range of 512-byte sectors.
	Extent = geom.Extent

	// Fragment is one physically-contiguous piece of a resolved read.
	Fragment = stl.Fragment

	// Probe receives a run's low-level observability event stream;
	// attach implementations via Simulator.AddProbe (internal/obsv
	// provides a replayable tracer and a histogram collector).
	Probe = core.Probe
	// OpEvent describes one logical trace operation.
	OpEvent = core.OpEvent
	// AccessEvent describes one physical I/O attempt.
	AccessEvent = core.AccessEvent
	// MechEvent reports one mechanism outcome (cache hit, retry, ...).
	MechEvent = core.MechEvent
	// JournalEvent reports one write-ahead-journal event.
	JournalEvent = core.JournalEvent
	// Summary carries a run's end-of-run state snapshot.
	Summary = core.Summary
)

// OpKind distinguishes reads from writes in Records.
type OpKind = disk.OpKind

// Operation kinds.
const (
	Read  = disk.Read
	Write = disk.Write
)

// Default mechanism configurations (the paper's evaluation settings).
var (
	// DefaultDefrag defragments any fragmented read on first access.
	DefaultDefrag = core.DefaultDefragConfig
	// DefaultPrefetch uses 256 KB look-ahead and look-behind windows.
	DefaultPrefetch = core.DefaultPrefetchConfig
	// DefaultCache uses the paper's 64 MB selective cache.
	DefaultCache = core.DefaultCacheConfig
)

// NewSimulator builds a simulator for the configuration. Optional
// probes attach to this simulator only — the right way to observe one
// run among many (SetGlobalProbe is process-wide).
func NewSimulator(cfg Config, probes ...Probe) (*Simulator, error) {
	return core.NewSimulator(cfg, probes...)
}

// SetGlobalProbe attaches p to every simulator built after the call
// (nil detaches), so one observer can watch runs constructed deep
// inside Compare/RunExperiment pipelines.
func SetGlobalProbe(p Probe) { core.SetGlobalProbe(p) }

// Run simulates the records under the configuration and returns stats.
// LS configurations with FrontierStart == 0 get the frontier placed just
// above the highest LBA in the trace, per the paper's model.
func Run(cfg Config, recs []Record) (Stats, error) {
	return RunContext(context.Background(), cfg, recs)
}

// RunContext is Run with cancellation: a cancelled or expired context
// stops the simulation and returns ctx.Err().
func RunContext(ctx context.Context, cfg Config, recs []Record) (Stats, error) {
	if cfg.LogStructured && cfg.FrontierStart == 0 {
		cfg.FrontierStart = trace.MaxLBA(recs)
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return Stats{}, err
	}
	return sim.RunContext(ctx, trace.NewSliceReader(recs))
}

// PreloadTrace drains a Reader into a Preloaded arena: the trace is
// parsed once, its MaxLBA cached, and every subsequent run replays the
// in-memory records. Preferred over ReadAll+Run when the same trace
// feeds several configurations.
func PreloadTrace(r Reader) (*Preloaded, error) { return trace.Preload(r) }

// PreloadRecords builds a Preloaded arena over an in-memory slice,
// clipping capacity slack. The records are shared afterwards and must
// not be mutated.
func PreloadRecords(recs []Record) *Preloaded { return trace.PreloadRecords(recs) }

// RunPreloaded simulates a preloaded trace under the configuration. LS
// configurations with FrontierStart == 0 get the frontier placed at the
// arena's cached MaxLBA — no per-run rescan of the records.
func RunPreloaded(cfg Config, p *Preloaded) (Stats, error) {
	return RunPreloadedContext(context.Background(), cfg, p)
}

// RunPreloadedContext is RunPreloaded with cancellation.
func RunPreloadedContext(ctx context.Context, cfg Config, p *Preloaded) (Stats, error) {
	if cfg.LogStructured && cfg.FrontierStart == 0 {
		cfg.FrontierStart = p.MaxLBA()
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return Stats{}, err
	}
	return sim.RunContext(ctx, p.NewReader())
}

// Compare runs the records through the NoLS baseline and each variant,
// reporting per-variant seek amplification factors.
func Compare(recs []Record, variants ...Config) (Comparison, error) {
	return core.Compare(recs, variants...)
}

// CompareContext is Compare with cancellation.
func CompareContext(ctx context.Context, recs []Record, variants ...Config) (Comparison, error) {
	return core.CompareContext(ctx, recs, variants...)
}

// ComparePaper runs the Figure 11 variant set: LS, LS+defrag,
// LS+prefetch and LS+cache(64 MB).
func ComparePaper(recs []Record) (Comparison, error) { return core.ComparePaper(recs) }

// ComparePaperContext is ComparePaper with cancellation.
func ComparePaperContext(ctx context.Context, recs []Record) (Comparison, error) {
	return core.ComparePaperContext(ctx, recs)
}

// PaperVariants returns the four Figure 11 configurations.
func PaperVariants() []Config { return core.PaperVariants() }

// OpenJournal opens (or creates) the write-ahead journal pair in dir.
// initFrontier seeds a fresh journal's starting PBA; an existing
// journal keeps its own. Attach the result via Config.Journal.
func OpenJournal(dir string, initFrontier int64) (*Journal, error) {
	return journal.Open(dir, initFrontier)
}

// Recover rebuilds the translation layer persisted in dir — checkpoint
// plus journal replay, stopping cleanly at a torn tail — and reports
// what replay found. The returned layer can resume simulation as
// Config.CustomLayer. It does not verify the seal chain; see
// RecoverVerified.
func Recover(dir string) (*LS, ReplayStats, error) { return stl.RecoverDir(dir) }

// RecoverVerified is Recover with the seal-chain audit first: it
// refuses (journal.ErrCorrupt) to rebuild from a directory whose sealed
// history or checkpoint linkage does not verify, while torn tails —
// plain crash residue — still recover to the verified prefix. Segment
// verification runs on GOMAXPROCS workers; the recovered state is
// bit-identical to a sequential recovery (stl.RecoverOptions.Workers
// picks the count explicitly).
func RecoverVerified(dir string) (*LS, ReplayStats, error) {
	return stl.RecoverDirWith(dir, stl.RecoverOptions{VerifyOnRecover: true})
}

// VerifyJournal audits the journal directory without replaying it:
// frame CRCs, segment Merkle roots, the seal chain, and the
// checkpoint⇄journal linkage. Corruption returns an error matching
// journal.ErrCorrupt with the damaged file, segment and offset.
// Segments verify on GOMAXPROCS workers (journal.VerifyDirWorkers
// picks the count explicitly); the audit is identical at any count.
func VerifyJournal(dir string) (*JournalAudit, error) { return journal.VerifyDir(dir) }

// Workloads returns the names of the 21 cataloged synthetic workloads.
func Workloads() []string { return workload.Names() }

// Workload returns the named synthetic workload profile.
func Workload(name string) (Profile, error) { return workload.ByName(name) }

// MustWorkload returns the named profile or panics; intended for
// examples and tests.
func MustWorkload(name string) Profile {
	p, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Characterize computes Table-I style statistics for a record slice.
func Characterize(recs []Record) Characteristics { return trace.Characterize(recs) }

// MisorderedWrites reports the fraction of writes that sequentially
// follow a later write within a 256 KB horizon (Figure 8's metric).
func MisorderedWrites(recs []Record) (misordered, writes int64) {
	res := analysis.MisorderedWrites(recs, 0)
	return res.Misordered, res.Writes
}

// TraceFormat names an on-disk trace encoding.
type TraceFormat string

// Supported trace formats.
const (
	// FormatMSR is the MSR Cambridge CSV format
	// (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime).
	FormatMSR TraceFormat = "msr"
	// FormatCP is the documented CloudPhysics-style CSV
	// (time_ns,op,lba,sectors).
	FormatCP TraceFormat = "cp"
	// FormatBinary is the compact delta-encoded binary format (about 3x
	// smaller and an order of magnitude faster to parse than CSV).
	FormatBinary TraceFormat = "bin"
)

// OpenTrace parses a trace stream in the given format. For FormatMSR,
// diskFilter selects one disk number (-1 keeps all).
func OpenTrace(r io.Reader, format TraceFormat, diskFilter int) (Reader, error) {
	switch format {
	case FormatMSR:
		return trace.NewMSRReader(r, diskFilter), nil
	case FormatCP:
		return trace.NewCPReader(r), nil
	case FormatBinary:
		return trace.NewBinaryReader(r), nil
	default:
		return nil, fmt.Errorf("smrseek: unknown trace format %q (want %q, %q or %q)", format, FormatMSR, FormatCP, FormatBinary)
	}
}

// WriteTrace writes records in the given format.
func WriteTrace(w io.Writer, format TraceFormat, recs []Record) error {
	switch format {
	case FormatMSR:
		return trace.WriteMSR(w, "smrseek", 0, recs)
	case FormatCP:
		return trace.WriteCP(w, recs)
	case FormatBinary:
		return trace.WriteBinary(w, recs)
	default:
		return fmt.Errorf("smrseek: unknown trace format %q (want %q, %q or %q)", format, FormatMSR, FormatCP, FormatBinary)
	}
}

// ReadAll drains a Reader into memory.
func ReadAll(r Reader) ([]Record, error) { return trace.ReadAll(r) }

// RunExperiment regenerates a paper table or figure by name ("table1",
// "fig2" ... "fig11", or "all"), writing its rendering to w. Scale
// multiplies each workload's base operation count (0 uses the default).
func RunExperiment(w io.Writer, name string, scale float64) error {
	return RunExperimentContext(context.Background(), w, name, scale)
}

// RunExperimentContext is RunExperiment with cancellation: a cancelled
// or expired context stops the experiment and returns ctx.Err().
func RunExperimentContext(ctx context.Context, w io.Writer, name string, scale float64) error {
	if scale <= 0 {
		scale = experiments.DefaultScale
	}
	return experiments.RunContext(ctx, w, name, scale)
}
