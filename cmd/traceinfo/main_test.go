package main

import (
	"os"
	"path/filepath"
	"testing"

	"smrseek"
)

func TestWorkloadInfo(t *testing.T) {
	if err := run([]string{"-workload", "src2_2", "-scale", "0.2"}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceInfo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	recs := smrseek.MustWorkload("ts_0").Generate(0.05)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := smrseek.WriteTrace(f, smrseek.FormatCP, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-trace", path, "-format", "cp"}); err != nil {
		t.Fatal(err)
	}
}

func TestListAndErrors(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
	if err := run(nil); err == nil {
		t.Error("no input must error")
	}
	if err := run([]string{"-workload", "a", "-trace", "b"}); err == nil {
		t.Error("both inputs must error")
	}
	if err := run([]string{"-workload", "bogus"}); err == nil {
		t.Error("unknown workload must error")
	}
	if err := run([]string{"-trace", "/nonexistent"}); err == nil {
		t.Error("missing file must error")
	}
}

func TestFitFlag(t *testing.T) {
	if err := run([]string{"-workload", "w91", "-scale", "0.1", "-fit"}); err != nil {
		t.Fatal(err)
	}
}
