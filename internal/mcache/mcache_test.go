package mcache

import (
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/stl"
)

// tiny returns a small geometry: 8 zones of 1024 sectors data, 2 zones
// of cache.
func tiny() Config {
	return Config{
		DeviceSectors: 8 * 1024,
		ZoneSectors:   1024,
		CacheSectors:  2 * 1024,
		MergeTrigger:  0.8,
	}
}

func mustNew(t *testing.T, cfg Config) *Layer {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{DeviceSectors: 100, ZoneSectors: 0, CacheSectors: 100},
		{DeviceSectors: 100, ZoneSectors: 64, CacheSectors: 64},
		{DeviceSectors: 128, ZoneSectors: 64, CacheSectors: 100},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	// Out-of-range trigger falls back to the default.
	cfg := tiny()
	cfg.MergeTrigger = 42
	l := mustNew(t, cfg)
	if l.cfg.MergeTrigger != 0.8 {
		t.Errorf("trigger = %v", l.cfg.MergeTrigger)
	}
}

func TestUnwrittenResolvesInPlace(t *testing.T) {
	l := mustNew(t, tiny())
	fs := l.Resolve(geom.Ext(100, 50))
	if len(fs) != 1 || fs[0].Pba != 100 {
		t.Fatalf("Resolve = %v", fs)
	}
	if l.Name() != "MediaCache" {
		t.Error("name")
	}
}

func TestWriteGoesToCacheThenMergesInPlace(t *testing.T) {
	l := mustNew(t, tiny())
	fs := l.Write(geom.Ext(100, 10))
	if len(fs) != 1 || fs[0].Pba != 8*1024 {
		t.Fatalf("first write = %v (cache starts at %d)", fs, 8*1024)
	}
	// Until merged, reads of that LBA hit the cache region.
	rs := l.Resolve(geom.Ext(100, 10))
	if len(rs) != 1 || rs[0].Pba != 8*1024 {
		t.Fatalf("Resolve = %v", rs)
	}
	if l.CachedSectors() != 10 {
		t.Errorf("CachedSectors = %d", l.CachedSectors())
	}
	l.Flush()
	// After the merge the data is back in LBA order.
	rs = l.Resolve(geom.Ext(100, 10))
	if len(rs) != 1 || rs[0].Pba != 100 {
		t.Fatalf("post-merge Resolve = %v", rs)
	}
	if l.Merges() != 1 || l.MergedZones() != 1 {
		t.Errorf("merges=%d zones=%d", l.Merges(), l.MergedZones())
	}
	if l.CachedSectors() != 0 {
		t.Error("cache should be empty after merge")
	}
}

func TestMergeEmitsMaintenanceIO(t *testing.T) {
	l := mustNew(t, tiny())
	l.Write(geom.Ext(100, 10))  // zone 0
	l.Write(geom.Ext(2000, 10)) // zone 1
	l.Flush()
	ops := l.PendingMaintenance()
	// Per dirty zone: zone read + 1 cache-fragment read + zone write.
	var reads, writes, zoneWrites int
	for _, op := range ops {
		switch op.Kind {
		case disk.Read:
			reads++
		case disk.Write:
			writes++
			if op.Extent.Count == 1024 {
				zoneWrites++
			}
		}
	}
	if reads != 4 || writes != 2 || zoneWrites != 2 {
		t.Fatalf("ops: reads=%d writes=%d zoneWrites=%d (%v)", reads, writes, zoneWrites, ops)
	}
	// Draining clears the queue.
	if len(l.PendingMaintenance()) != 0 {
		t.Error("pending not cleared")
	}
}

func TestTriggerMergesAutomatically(t *testing.T) {
	l := mustNew(t, tiny())
	// Cache is 2048 sectors; trigger 0.8 → merge at 1639+.
	for i := 0; i < 9; i++ {
		l.Write(geom.Ext(int64(i)*1024, 200)) // 200 sectors each, distinct zones
	}
	if l.Merges() == 0 {
		t.Fatal("trigger merge did not fire")
	}
	if stl.WAF(l) <= 1 {
		t.Errorf("WAF = %v, want > 1 (zone rewrites)", stl.WAF(l))
	}
}

func TestWriteLargerThanCache(t *testing.T) {
	l := mustNew(t, tiny())
	// 3000 sectors > 2048-sector cache: must split and merge mid-write.
	fs := l.Write(geom.Ext(0, 3000))
	if len(fs) < 2 {
		t.Fatalf("oversized write fragments = %v", fs)
	}
	var total int64
	cur := geom.Sector(0)
	for _, f := range fs {
		if f.Lba.Start != cur {
			t.Fatalf("fragments do not tile the write: %v", fs)
		}
		cur = f.Lba.End()
		total += f.Lba.Count
	}
	if total != 3000 {
		t.Fatalf("covered %d of 3000 sectors", total)
	}
	if l.Merges() == 0 {
		t.Error("mid-write merge expected")
	}
}

func TestWriteAmplificationAccounting(t *testing.T) {
	l := mustNew(t, tiny())
	l.Write(geom.Ext(0, 100))
	l.Flush()
	if l.HostSectors() != 100 {
		t.Errorf("host = %d", l.HostSectors())
	}
	if l.ExtraSectors() != 1024 { // one zone rewrite
		t.Errorf("extra = %d", l.ExtraSectors())
	}
	waf := stl.WAF(l)
	if waf != 11.24 {
		t.Errorf("WAF = %v, want 11.24", waf)
	}
	// Zero-write layer reports WAF 1.
	l2 := mustNew(t, tiny())
	if stl.WAF(l2) != 1 {
		t.Error("empty layer WAF should be 1")
	}
}

func TestZoneConstraintsRespected(t *testing.T) {
	l := mustNew(t, tiny())
	for i := 0; i < 30; i++ {
		l.Write(geom.Ext(int64(i*313)%7000, 64))
	}
	l.Flush()
	_, _, violations := l.Device().Stats()
	if violations != 0 {
		t.Fatalf("zoned-device violations = %d", violations)
	}
}

func TestEmptyWriteNoop(t *testing.T) {
	l := mustNew(t, tiny())
	if l.Write(geom.Extent{}) != nil {
		t.Error("empty write should return nil")
	}
	if l.HostSectors() != 0 {
		t.Error("empty write must not count")
	}
	l.Flush() // no dirty zones: no-op
	if l.Merges() != 0 {
		t.Error("flush of clean cache should not merge")
	}
}
