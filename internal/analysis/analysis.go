// Package analysis implements the measurements behind the paper's
// characterization figures: mis-ordered write counting (Figure 8), write
// sequentiality profiles (Figure 7), dynamic-fragmentation skew
// (Figure 5), fragment popularity and cumulative cache footprint
// (Figure 10), access-distance CDFs (Figure 4) and long-seek differential
// time series (Figure 3).
package analysis

import (
	"context"
	"sort"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/metrics"
	"smrseek/internal/trace"
)

// MisorderWindowBytes is the paper's "near future" horizon: a write is
// mis-ordered if a write it sequentially follows arrives within the next
// 256 KB of written volume (§IV-B).
const MisorderWindowBytes = 256 * 1024

// MisorderResult reports Figure 8's metric for one workload.
type MisorderResult struct {
	Writes     int64
	Misordered int64
}

// Fraction returns the mis-ordered share of writes.
func (m MisorderResult) Fraction() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Misordered) / float64(m.Writes)
}

// MisorderedWrites counts writes whose LBA range sequentially follows a
// write issued *later* but within windowBytes of written volume — the
// writes that cost a missed rotation under log structuring. It is a pure
// trace analysis, independent of any translation layer.
func MisorderedWrites(recs []trace.Record, windowBytes int64) MisorderResult {
	if windowBytes <= 0 {
		windowBytes = MisorderWindowBytes
	}
	var writes []trace.Record
	for _, r := range recs {
		if r.Kind == disk.Write {
			writes = append(writes, r)
		}
	}
	res := MisorderResult{Writes: int64(len(writes))}
	// Sliding window over the write stream: for write i, the window holds
	// writes (i, j] whose cumulative volume is within windowBytes. endCount
	// maps an end sector to how many windowed writes end there; write i is
	// mis-ordered iff some windowed write ends exactly at i's start.
	endCount := make(map[geom.Sector]int)
	var vol int64
	j := 0 // window upper bound (exclusive index of next write to add)
	for i := range writes {
		if j <= i {
			j = i + 1
			// Volume and endCount must only describe writes after i.
			vol = 0
		}
		for j < len(writes) && vol+writes[j].Extent.Bytes() <= windowBytes {
			endCount[writes[j].Extent.End()]++
			vol += writes[j].Extent.Bytes()
			j++
		}
		if endCount[writes[i].Extent.Start] > 0 {
			res.Misordered++
		}
		// Slide: drop write i+1 from the window accounting (it becomes
		// the next pivot and must not match itself).
		if j > i+1 {
			w := writes[i+1]
			if c := endCount[w.Extent.End()]; c <= 1 {
				delete(endCount, w.Extent.End())
			} else {
				endCount[w.Extent.End()] = c - 1
			}
			vol -= w.Extent.Bytes()
		}
	}
	return res
}

// RunPoint is one (fraction-of-X, fraction-of-Y) point of a skew curve.
type RunPoint struct {
	FracOps   float64 // cumulative fraction of operations (sorted desc)
	FracValue float64 // cumulative fraction of the measured quantity
}

// FragmentSkew summarizes Figure 5 for one run: among fragmented reads
// (2+ fragments), how concentrated the fragments are.
type FragmentSkew struct {
	FragmentedReads int
	TotalFragments  int64
	Curve           []RunPoint
}

// FragmentedReadCDF computes the Figure 5 skew curve from per-read
// fragment counts: reads are sorted by fragment count descending and the
// cumulative fragment share is reported at each read.
func FragmentedReadCDF(fragCounts []int) FragmentSkew {
	var frag []int
	var total int64
	for _, c := range fragCounts {
		if c >= 2 {
			frag = append(frag, c)
			total += int64(c)
		}
	}
	sk := FragmentSkew{FragmentedReads: len(frag), TotalFragments: total}
	if len(frag) == 0 {
		return sk
	}
	sort.Sort(sort.Reverse(sort.IntSlice(frag)))
	var cum int64
	for i, c := range frag {
		cum += int64(c)
		sk.Curve = append(sk.Curve, RunPoint{
			FracOps:   float64(i+1) / float64(len(frag)),
			FracValue: float64(cum) / float64(total),
		})
	}
	return sk
}

// ShareAtOps returns the cumulative fragment share held by the top frac
// of fragmented reads (e.g. ShareAtOps(0.2) ≈ 0.5 means 20% of the reads
// hold half the fragments — the paper's headline skew).
func (s FragmentSkew) ShareAtOps(frac float64) float64 {
	for _, p := range s.Curve {
		if p.FracOps >= frac {
			return p.FracValue
		}
	}
	if len(s.Curve) > 0 {
		return 1
	}
	return 0
}

// FragStat is one fragment's popularity entry (Figure 10).
type FragStat struct {
	Phys        geom.Extent
	AccessCount int64
}

// PopularityEntry is one row of the sorted Figure 10 curve.
type PopularityEntry struct {
	Rank        int
	AccessCount int64
	Bytes       int64
	// CumulativeBytes is the cache size needed to hold this fragment and
	// every more-popular one (the red dashed curve).
	CumulativeBytes int64
}

// Popularity aggregates fragment access counts during a run. Fragments
// are keyed by physical extent: a fragment re-read after an intervening
// overwrite is a different physical extent, exactly as a cache would see.
type Popularity struct {
	counts map[physKey]*FragStat
}

type physKey struct {
	pba   geom.Sector
	count int64
}

// NewPopularity returns an empty popularity accumulator.
func NewPopularity() *Popularity {
	return &Popularity{counts: make(map[physKey]*FragStat)}
}

// ObserveRead ingests one resolved read; only fragmented reads contribute
// (they are what selective caching targets).
func (p *Popularity) ObserveRead(ev core.ReadEvent) {
	if len(ev.Fragments) < 2 {
		return
	}
	for _, f := range ev.Fragments {
		k := physKey{pba: f.Pba, count: f.Lba.Count}
		st, ok := p.counts[k]
		if !ok {
			st = &FragStat{Phys: f.PhysExtent()}
			p.counts[k] = st
		}
		st.AccessCount++
	}
}

// Sorted returns the popularity table sorted by access count descending
// (ties by physical address for determinism), with cumulative bytes.
func (p *Popularity) Sorted() []PopularityEntry {
	stats := make([]*FragStat, 0, len(p.counts))
	for _, st := range p.counts {
		stats = append(stats, st)
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].AccessCount != stats[j].AccessCount {
			return stats[i].AccessCount > stats[j].AccessCount
		}
		return stats[i].Phys.Start < stats[j].Phys.Start
	})
	out := make([]PopularityEntry, len(stats))
	var cum int64
	for i, st := range stats {
		cum += st.Phys.Bytes()
		out[i] = PopularityEntry{
			Rank:            i,
			AccessCount:     st.AccessCount,
			Bytes:           st.Phys.Bytes(),
			CumulativeBytes: cum,
		}
	}
	return out
}

// BytesForAccessShare returns the cumulative cache size (bytes) needed to
// hold the most popular fragments accounting for the given share of all
// fragment accesses — the paper's "a few 10s of MB" observation.
func BytesForAccessShare(entries []PopularityEntry, share float64) int64 {
	var total int64
	for _, e := range entries {
		total += e.AccessCount
	}
	if total == 0 {
		return 0
	}
	target := int64(share * float64(total))
	var acc int64
	for _, e := range entries {
		acc += e.AccessCount
		if acc >= target {
			return e.CumulativeBytes
		}
	}
	if n := len(entries); n > 0 {
		return entries[n-1].CumulativeBytes
	}
	return 0
}

// WriteRunProfile summarizes the write stream's local ordering, the
// numeric counterpart of Figure 7's scatter plots.
type WriteRunProfile struct {
	Writes             int64
	AscendingAdjacent  int64 // write starts exactly at previous write's end
	DescendingAdjacent int64 // write ends exactly at previous write's start
	LongestDescending  int
}

// SequentialityProfile computes adjacency statistics over the write
// stream: how often consecutive writes are forward-sequential versus
// reverse-sequential (descending runs like hm_1's in Figure 7a).
func SequentialityProfile(recs []trace.Record) WriteRunProfile {
	var prof WriteRunProfile
	var prev *trace.Record
	runLen := 0
	for i := range recs {
		r := recs[i]
		if r.Kind != disk.Write {
			continue
		}
		prof.Writes++
		if prev != nil {
			switch {
			case r.Extent.Start == prev.Extent.End():
				prof.AscendingAdjacent++
				runLen = 0
			case r.Extent.End() == prev.Extent.Start:
				prof.DescendingAdjacent++
				runLen++
				if runLen > prof.LongestDescending {
					prof.LongestDescending = runLen
				}
			default:
				runLen = 0
			}
		}
		prev = &recs[i]
	}
	return prof
}

// Artifacts bundles the instrumented outputs of one simulation run that
// the figures consume.
type Artifacts struct {
	Stats core.Stats
	// DistanceCDF holds signed access distances in sectors for every
	// access (Figure 4 restricts its plot window; the CDF holds all).
	DistanceCDF *metrics.CDF
	// LongSeeks counts seeks with |distance| > 500 KB per window of
	// trace operations (Figure 3).
	LongSeeks *metrics.Series
	// FragCounts is the per-read dynamic fragmentation (Figure 5 input).
	FragCounts []int
	// Popularity is the fragment access accumulator (Figure 10 input).
	Popularity *Popularity
}

// Instrumented runs recs through the configuration with all figure
// instrumentation attached. windowOps sets the Figure 3 window width.
func Instrumented(recs []trace.Record, cfg core.Config, windowOps int64) (*Artifacts, error) {
	return InstrumentedContext(context.Background(), recs, cfg, windowOps)
}

// InstrumentedContext is Instrumented with cancellation: a cancelled or
// expired context abandons the run and returns ctx.Err().
func InstrumentedContext(ctx context.Context, recs []trace.Record, cfg core.Config, windowOps int64) (*Artifacts, error) {
	if cfg.LogStructured && cfg.FrontierStart == 0 {
		cfg.FrontierStart = trace.MaxLBA(recs)
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	a := &Artifacts{
		DistanceCDF: metrics.NewCDF(),
		LongSeeks:   metrics.NewSeries(windowOps),
		Popularity:  NewPopularity(),
	}
	var op int64
	sim.Disk().AddObserver(disk.ObserverFunc(func(acc disk.Access) {
		if acc.Seeked {
			a.DistanceCDF.Observe(float64(acc.Distance))
			if abs64(acc.Distance) > disk.LongSeekSectors {
				a.LongSeeks.Add(op, 1)
			}
		}
	}))
	sim.AddReadObserver(func(ev core.ReadEvent) {
		a.FragCounts = append(a.FragCounts, len(ev.Fragments))
		a.Popularity.ObserveRead(ev)
	})
	const cancelCheckInterval = 64
	for _, rec := range recs {
		if op%cancelCheckInterval == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		sim.Step(rec)
		op++
	}
	a.Stats = sim.Stats()
	return a, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
