package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smrseek/internal/extmap"
	"smrseek/internal/geom"
)

func rec(kind RecordKind, start, count, pba int64) Record {
	return Record{Kind: kind, Lba: geom.Ext(start, count), Pba: pba}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		rec(RecWrite, 0, 1, 0),
		rec(RecRelocate, 1<<40, 1<<20, 1<<50),
		rec(RecFrontier, 0, 0, 12345),
	}
	var buf bytes.Buffer
	buf.Write(marshalHeader(7, 999, Hash{}))
	for _, r := range recs {
		buf.Write(MarshalRecord(r))
	}
	d, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Generation != 7 || d.InitFrontier != 999 {
		t.Errorf("header = gen %d frontier %d, want 7/999", d.Generation, d.InitFrontier)
	}
	if d.Torn {
		t.Error("clean journal reported torn")
	}
	if len(d.Records) != len(recs) {
		t.Fatalf("got %d records, want %d", len(d.Records), len(recs))
	}
	for i, r := range recs {
		if d.Records[i] != r {
			t.Errorf("record %d = %+v, want %+v", i, d.Records[i], r)
		}
	}
}

func TestReadJournalTornTails(t *testing.T) {
	full := MarshalRecord(rec(RecWrite, 10, 5, 100))
	// Every possible torn prefix of the final record must be detected
	// and must not hide the preceding complete record.
	for cut := 0; cut < len(full); cut++ {
		var buf bytes.Buffer
		buf.Write(marshalHeader(1, 0, Hash{}))
		buf.Write(MarshalRecord(rec(RecWrite, 0, 2, 50)))
		buf.Write(full[:cut])
		d, err := ReadJournal(&buf)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(d.Records) != 1 {
			t.Fatalf("cut %d: got %d records, want 1", cut, len(d.Records))
		}
		if cut == 0 {
			if d.Torn {
				t.Errorf("cut 0 is a clean EOF, reported torn")
			}
		} else if !d.Torn {
			t.Errorf("cut %d: torn tail not detected", cut)
		}
	}
}

func TestReadJournalCorruptTail(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(marshalHeader(1, 0, Hash{}))
	buf.Write(MarshalRecord(rec(RecWrite, 0, 2, 50)))
	frame := MarshalRecord(rec(RecWrite, 2, 2, 52))
	frame[5] ^= 0xff // corrupt payload byte; CRC now mismatches
	buf.Write(frame)
	d, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Torn || len(d.Records) != 1 {
		t.Errorf("torn=%v records=%d, want torn with 1 record", d.Torn, len(d.Records))
	}

	// CRC-valid frame with an unreplayable payload (unknown kind).
	buf.Reset()
	buf.Write(marshalHeader(1, 0, Hash{}))
	bad := make([]byte, payloadSize)
	bad[0] = 99 // no such kind
	var frame2 bytes.Buffer
	lenb := make([]byte, 4)
	binary.LittleEndian.PutUint32(lenb, payloadSize)
	frame2.Write(lenb)
	frame2.Write(bad)
	crcb := make([]byte, 4)
	binary.LittleEndian.PutUint32(crcb, crc32.ChecksumIEEE(bad))
	frame2.Write(crcb)
	buf.Write(frame2.Bytes())
	d, err = ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Torn || len(d.Records) != 0 {
		t.Errorf("unknown kind: torn=%v records=%d, want torn with 0 records", d.Torn, len(d.Records))
	}
}

func TestReadJournalBadHeader(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"short":     []byte("SMRWAL02abc"),
		"bad magic": append([]byte("NOTMAGIC"), marshalHeader(1, 0, Hash{})[8:]...),
	}
	hdr := marshalHeader(1, 0, Hash{})
	hdr[9] ^= 0x01
	cases["bad crc"] = hdr
	for name, data := range cases {
		if _, err := ReadJournal(bytes.NewReader(data)); err == nil {
			t.Errorf("%s header accepted", name)
		}
	}
}

func TestLogAppendAndReload(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := l.Append(rec(RecWrite, i*4, 4, 500+i*4)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Appends() != 10 || l.SinceCheckpoint() != 10 {
		t.Errorf("appends=%d since=%d, want 10/10", l.Appends(), l.SinceCheckpoint())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the journal validates, the checkpoint age is recounted,
	// and appends continue where they left off.
	l2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.SinceCheckpoint() != 10 {
		t.Errorf("reopened since=%d, want 10", l2.SinceCheckpoint())
	}
	if err := l2.Append(rec(RecWrite, 100, 2, 540)); err != nil {
		t.Fatal(err)
	}
	snap, d, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Error("unexpected checkpoint")
	}
	if len(d.Records) != 11 || d.Torn {
		t.Errorf("records=%d torn=%v, want 11 clean", len(d.Records), d.Torn)
	}
	if d.InitFrontier != 500 {
		t.Errorf("init frontier %d, want 500 (reopen must not rewrite the header)", d.InitFrontier)
	}
}

func TestLogCheckpointTruncatesAndGuardsGeneration(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := int64(0); i < 5; i++ {
		if err := l.Append(rec(RecWrite, i, 1, i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := Snapshot{
		Frontier: 5,
		Written:  5,
		Mappings: []extmap.Mapping{{Lba: geom.Ext(0, 5), Pba: 0}},
	}
	if err := l.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	if l.SinceCheckpoint() != 0 || l.Checkpoints() != 1 {
		t.Errorf("since=%d ckpts=%d, want 0/1", l.SinceCheckpoint(), l.Checkpoints())
	}
	if l.Generation() != 2 {
		t.Errorf("generation %d, want 2", l.Generation())
	}
	if err := l.Append(rec(RecWrite, 5, 1, 5)); err != nil {
		t.Fatal(err)
	}

	got, d, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Frontier != 5 || got.Written != 5 || len(got.Mappings) != 1 {
		t.Fatalf("checkpoint = %+v", got)
	}
	if got.Generation != 1 {
		t.Errorf("checkpoint generation %d, want 1", got.Generation)
	}
	if len(d.Records) != 1 {
		t.Errorf("post-checkpoint journal has %d records, want 1", len(d.Records))
	}

	// Simulate a crash between checkpoint rename and journal truncate:
	// restore a stale journal (old generation, full of records) next to
	// the new checkpoint. LoadDir must refuse to replay it.
	stale := bytes.NewBuffer(marshalHeader(1, 0, Hash{}))
	for i := int64(0); i < 5; i++ {
		stale.Write(MarshalRecord(rec(RecWrite, i, 1, i)))
	}
	if err := os.WriteFile(JournalPath(dir), stale.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	got, d, err = LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(d.Records) != 0 || d.Torn {
		t.Errorf("stale journal replayed: records=%d torn=%v", len(d.Records), d.Torn)
	}
}

func TestLogCrashAfterWritesTornPrefix(t *testing.T) {
	for _, torn := range []int{0, 1, 10, frameSize - 1, frameSize, 9999} {
		dir := t.TempDir()
		l, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		l.CrashAfter(3, torn)
		var appendErr error
		n := 0
		for i := int64(0); i < 5; i++ {
			if err := l.Append(rec(RecWrite, i*2, 2, i*2)); err != nil {
				appendErr = err
				break
			}
			n++
		}
		if !errors.Is(appendErr, ErrCrashed) {
			t.Fatalf("torn=%d: append error %v, want ErrCrashed", torn, appendErr)
		}
		if n != 2 {
			t.Fatalf("torn=%d: %d appends succeeded, want 2", torn, n)
		}
		if err := l.Append(rec(RecWrite, 0, 1, 0)); !errors.Is(err, ErrCrashed) {
			t.Errorf("torn=%d: crashed log accepted an append: %v", torn, err)
		}
		if err := l.Checkpoint(Snapshot{}); !errors.Is(err, ErrCrashed) {
			t.Errorf("torn=%d: crashed log accepted a checkpoint: %v", torn, err)
		}
		l.Close()

		_, d, err := LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Records) != 2 {
			t.Errorf("torn=%d: recovered %d records, want 2", torn, len(d.Records))
		}
		if wantTorn := torn > 0; d.Torn != wantTorn {
			t.Errorf("torn=%d: Torn=%v, want %v", torn, d.Torn, wantTorn)
		}
	}
}

func TestLogFailerFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	boom := errors.New("transient journal fault")
	fails := 0
	l.SetFailer(func(seq int64, r Record) error {
		if seq == 2 && fails < 2 {
			fails++
			return boom
		}
		return nil
	})
	if err := l.Append(rec(RecWrite, 0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Two failures, then the retry succeeds — and the failed attempts
	// must have persisted nothing.
	for i := 0; i < 2; i++ {
		if err := l.Append(rec(RecWrite, 1, 1, 1)); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: %v, want injected fault", i, err)
		}
	}
	if err := l.Append(rec(RecWrite, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	_, d, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Records) != 2 || d.Torn {
		t.Errorf("records=%d torn=%v, want exactly the 2 acked appends", len(d.Records), d.Torn)
	}
}

func TestOpenRejectsTornJournal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.CrashAfter(1, 7)
	if err := l.Append(rec(RecWrite, 0, 1, 0)); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Open(dir, 0); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Errorf("Open on torn journal: %v, want torn-tail rejection", err)
	}
}

func TestOpenRejectsNegativeFrontier(t *testing.T) {
	if _, err := Open(t.TempDir(), -1); err == nil {
		t.Error("negative initial frontier accepted")
	}
}

func TestAppendRejectsInvalidRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, bad := range []Record{
		{Kind: RecWrite, Lba: geom.Ext(0, 0), Pba: 0},  // empty extent
		{Kind: RecWrite, Lba: geom.Ext(-1, 4), Pba: 0}, // negative LBA
		{Kind: 42, Lba: geom.Ext(0, 4), Pba: 0},        // unknown kind
		{Kind: RecFrontier, Pba: -5},                   // negative frontier
	} {
		if err := l.Append(bad); err == nil {
			t.Errorf("invalid record %+v accepted", bad)
		}
	}
	if l.Appends() != 0 {
		t.Errorf("invalid records counted: %d", l.Appends())
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	snap := Snapshot{
		Generation: 42,
		Frontier:   1 << 40,
		Written:    1 << 41,
		Mappings: []extmap.Mapping{
			{Lba: geom.Ext(0, 8), Pba: 1000},
			{Lba: geom.Ext(64, 128), Pba: 1008},
		},
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != snap.Generation || got.Frontier != snap.Frontier || got.Written != snap.Written {
		t.Errorf("got %+v, want %+v", got, snap)
	}
	if len(got.Mappings) != 2 || got.Mappings[0] != snap.Mappings[0] || got.Mappings[1] != snap.Mappings[1] {
		t.Errorf("mappings %v, want %v", got.Mappings, snap.Mappings)
	}

	// Any single-byte corruption must be rejected.
	data := buf.Bytes()
	for _, i := range []int{0, 9, 20, 30, 41, len(data) - 2} {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil {
			t.Errorf("corruption at byte %d accepted", i)
		}
	}
	// Truncation too.
	for _, n := range []int{0, 10, ckptFixedSize, len(data) - 1} {
		if _, err := ReadCheckpoint(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestReadCheckpointRejectsUnsortedMappings(t *testing.T) {
	snap := Snapshot{
		Mappings: []extmap.Mapping{
			{Lba: geom.Ext(64, 8), Pba: 0},
			{Lba: geom.Ext(0, 8), Pba: 8}, // out of order
		},
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&buf); err == nil {
		t.Error("unsorted checkpoint mappings accepted")
	}
}

func TestLoadDirMissingEverything(t *testing.T) {
	if _, _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestLoadDirCheckpointOnly(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Snapshot{Generation: 3, Frontier: 9}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(CheckpointPath(dir), buf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	snap, d, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Frontier != 9 || len(d.Records) != 0 {
		t.Errorf("snap=%+v records=%d", snap, len(d.Records))
	}
}

func TestLoadDirCorruptJournalHeaderWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, Snapshot{Generation: 3, Frontier: 9}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(CheckpointPath(dir), buf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(JournalPath(dir), []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	snap, d, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || !d.Torn || len(d.Records) != 0 {
		t.Errorf("snap=%v torn=%v records=%d, want checkpoint + torn journal", snap, d.Torn, len(d.Records))
	}
}

func TestCheckpointLeavesNoTempFile(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Checkpoint(Snapshot{Frontier: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointTmp)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp checkpoint left behind: %v", err)
	}
}
