package smrseek

import (
	"smrseek/internal/band"
	"smrseek/internal/disk"
	"smrseek/internal/metrics"
)

// Device is the disk model a simulation runs against; set one on
// Config.Device to replace the default infinite-disk model. The two
// built-in implementations are the infinite model (nil / disk.New) and
// the finite banded model (NewBandDevice).
type Device = disk.Device

// BandPolicy selects where the banded device places redirected
// (cache-bound) writes.
type BandPolicy = band.Policy

// Banded persistent-cache placement policies.
const (
	// PolA appends to the nearest cache log with room and cleans the
	// globally dirtiest band (many-cache cleaning).
	PolA = band.PolA
	// PolB statically assigns each band to one cache log; a full log
	// cleans exactly its own bands (single-cache cleaning).
	PolB = band.PolB
	// Shelter places small rewrites seek-free at the tail of the last
	// big in-place I/O; big rewrites fall back to PolA placement.
	Shelter = band.Shelter
)

// ParseBandPolicy parses the CLI spelling ("pol-a", "pol-b", "shelter").
func ParseBandPolicy(s string) (BandPolicy, error) { return band.ParsePolicy(s) }

// BandConfig describes the banded geometry and its persistent cache.
type BandConfig = band.Config

// BandDevice is the finite-disk banded SMR device model: per-band
// write pointers, a persistent on-disk cache for rewrites, and a band
// cleaning engine. It implements Device.
type BandDevice = band.Device

// DefaultBandSectors is the default band size (10 MB of sectors).
const DefaultBandSectors = band.DefaultBandSectors

// Cleaning tallies persistent-cache and band-cleaning activity for a
// banded run (Stats.Cleaning); Cleaning.WriteAmp derives the write
// amplification factor.
type Cleaning = metrics.Cleaning

// NewBandDevice builds a banded device; attach it via Config.Device to
// run any simulation on the finite-disk model.
func NewBandDevice(cfg BandConfig) (*BandDevice, error) { return band.New(cfg) }
