package journal

import (
	"errors"
	"fmt"
	"os"
)

// Segment shipping: replication moves the journal between nodes as raw
// file bytes, never as re-encoded records. Within one generation the
// journal file is append-only and its sealed prefix immutable, so a
// follower's journal file is always a byte-identical prefix of the
// primary's — verification on the receiving side is exactly the same
// scanJournal + VerifyDir pass recovery runs, and a promoted follower
// replays literally the bytes the primary wrote.

// Ship chunk kinds.
const (
	// ShipNone means the requester already holds every sealed byte.
	ShipNone uint8 = iota
	// ShipSegments carries journal file bytes [Off, Off+len(Data)) of
	// generation Gen, ending exactly on a seal-frame boundary. Off == 0
	// includes the journal header: the receiver starts a fresh file.
	ShipSegments
	// ShipCheckpoint carries a complete checkpoint file of generation
	// Gen. The receiver is behind a rebirth: it installs the checkpoint,
	// discards its stale journal, and resumes shipping at Gen+1.
	ShipCheckpoint
)

// ShipKindName names a ship chunk kind.
func ShipKindName(k uint8) string {
	switch k {
	case ShipNone:
		return "none"
	case ShipSegments:
		return "segments"
	case ShipCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("ship(%d)", k)
}

// ShipChunk is one unit of journal replication.
type ShipChunk struct {
	Kind uint8
	// Gen is the journal generation Data belongs to (ShipSegments), or
	// the checkpoint's generation (ShipCheckpoint).
	Gen uint64
	// Off is the byte offset of Data within the journal file
	// (ShipSegments only).
	Off  int64
	Data []byte
}

// ErrStaleSource is returned by ShipFrom when the requester's journal
// generation is ahead of the source's — the signature of a demoted or
// rolled-back primary being asked to feed a newer follower.
var ErrStaleSource = errors.New("journal: ship source is behind the requester")

// ShipFrom reads the next replication chunk from the journal directory
// for a follower whose journal is at (gen, off): generation gen with off
// bytes of that generation's file already applied (0,0 = empty). Only
// seal-covered bytes ship — the chunk always ends on a seal boundary —
// so the receiver can verify the chain before applying. maxBytes softly
// caps the chunk: at least one whole segment is returned even if it is
// larger. The caller must guarantee the directory is quiescent (on the
// volume actor, nothing else writes it).
func ShipFrom(dir string, gen uint64, off int64, maxBytes int) (ShipChunk, error) {
	if off < 0 {
		return ShipChunk{}, fmt.Errorf("journal: negative ship offset %d", off)
	}
	raw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		return ShipChunk{}, fmt.Errorf("journal: ship source: %w", err)
	}
	jgen, _, _, err := unmarshalHeader(raw)
	if err != nil {
		return ShipChunk{}, fmt.Errorf("journal: ship source header: %w", err)
	}
	if gen > jgen {
		return ShipChunk{}, fmt.Errorf("%w: requester at generation %d, source journal at %d",
			ErrStaleSource, gen, jgen)
	}
	if gen < jgen {
		// The requester predates this generation. A rebirth always commits
		// a checkpoint first, so hand that over; it subsumes every
		// generation up to jgen-1. Without a checkpoint the source is on
		// its first generation and the requester simply starts from zero.
		snap, err := readCheckpointFile(CheckpointPath(dir))
		if err != nil {
			return ShipChunk{}, fmt.Errorf("journal: ship source checkpoint: %w", err)
		}
		if snap != nil {
			ckpt, err := os.ReadFile(CheckpointPath(dir))
			if err != nil {
				return ShipChunk{}, err
			}
			return ShipChunk{Kind: ShipCheckpoint, Gen: snap.Generation, Data: ckpt}, nil
		}
		gen, off = jgen, 0
	}
	d, err := scanJournal(raw)
	if err != nil {
		// The source's own journal must verify before a byte of it ships.
		return ShipChunk{}, err
	}
	end := sealedEnd(d)
	if off >= end {
		return ShipChunk{Kind: ShipNone, Gen: jgen, Off: off}, nil
	}
	// Clip to the furthest seal boundary within maxBytes of off; a single
	// over-size segment ships whole (the cap is soft).
	clipped := end
	if maxBytes > 0 {
		clipped = 0
		for _, s := range d.Seals {
			b := s.Offset + sealFrameSize
			if b <= off {
				continue
			}
			if clipped != 0 && b-off > int64(maxBytes) {
				break
			}
			clipped = b
		}
		if clipped == 0 {
			clipped = end
		}
	}
	return ShipChunk{Kind: ShipSegments, Gen: jgen, Off: off, Data: raw[off:clipped]}, nil
}

// sealedEnd returns the byte offset just past d's last seal frame.
func sealedEnd(d Data) int64 {
	if n := len(d.Seals); n > 0 {
		return d.Seals[n-1].Offset + sealFrameSize
	}
	return headerSize
}

// ScanBytes parses raw journal file bytes exactly as recovery does:
// every frame CRC checked, every seal's Merkle root and chain link
// recomputed. Replication uses it to verify a shipped prefix before a
// byte of it is persisted.
func ScanBytes(raw []byte) (Data, error) { return scanJournal(raw) }

// ParseHeader decodes a journal file header, returning its generation,
// birth frontier and seal-chain anchor.
func ParseHeader(raw []byte) (gen uint64, frontier int64, anchor Hash, err error) {
	g, f, a, err := unmarshalHeader(raw)
	return g, int64(f), a, err
}

// SealedEndOf returns the sealed byte extent of parsed journal data —
// the offset just past the last seal frame (the header size when
// nothing is sealed).
func SealedEndOf(d Data) int64 { return sealedEnd(d) }

// ReadCheckpointFile loads and CRC-verifies a checkpoint file. A
// missing file returns (nil, nil): no checkpoint yet is a normal state,
// damage is not.
func ReadCheckpointFile(path string) (*Snapshot, error) { return readCheckpointFile(path) }
