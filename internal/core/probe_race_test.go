package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

// countingProbe tallies events with atomics so one instance can serve as
// a global probe shared by concurrently-running simulators.
type countingProbe struct {
	ops, accesses, summaries atomic.Int64
}

func (p *countingProbe) OnOp(OpEvent)           { p.ops.Add(1) }
func (p *countingProbe) OnAccess(AccessEvent)   { p.accesses.Add(1) }
func (p *countingProbe) OnMech(MechEvent)       {}
func (p *countingProbe) OnJournal(JournalEvent) {}
func (p *countingProbe) OnSummary(Summary)      { p.summaries.Add(1) }

// TestConcurrentSimulatorsPerProbeIsolation is the multi-tenant hazard
// test: many simulators constructed and run concurrently, each with its
// own per-simulator probe, must deliver each probe exactly its own
// simulator's events — no cross-talk, no races (run under -race in CI).
func TestConcurrentSimulatorsPerProbeIsolation(t *testing.T) {
	const (
		sims = 8
		ops  = 500
	)
	recs := make([]trace.Record, 0, ops)
	for i := 0; i < ops; i++ {
		kind := disk.Write
		if i%3 == 0 {
			kind = disk.Read
		}
		recs = append(recs, trace.Record{Kind: kind, Extent: geom.Ext(int64(i%97)*8, 8)})
	}

	var wg sync.WaitGroup
	probes := make([]*countingProbe, sims)
	for i := 0; i < sims; i++ {
		probes[i] = &countingProbe{}
		wg.Add(1)
		go func(p *countingProbe) {
			defer wg.Done()
			sim, err := NewSimulator(Config{LogStructured: true, FrontierStart: FrontierFor(recs)}, p)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := sim.Run(trace.NewSliceReader(recs)); err != nil {
				t.Error(err)
			}
		}(probes[i])
	}
	wg.Wait()
	for i, p := range probes {
		if got := p.ops.Load(); got != ops {
			t.Errorf("probe %d saw %d ops, want exactly its own simulator's %d", i, got, ops)
		}
		if got := p.summaries.Load(); got != 1 {
			t.Errorf("probe %d saw %d summaries, want 1", i, got)
		}
	}
}

// TestConcurrentSimulatorsGlobalProbeChurn exercises SetGlobalProbe
// racing against concurrent NewSimulator calls: the pointer swap must be
// atomic (no torn attachment) and per-simulator probes must be
// unaffected by the churn. Event counts through the churning global
// probe are inherently nondeterministic; only the per-simulator probes
// are asserted.
func TestConcurrentSimulatorsGlobalProbeChurn(t *testing.T) {
	const (
		sims = 6
		ops  = 300
	)
	recs := make([]trace.Record, 0, ops)
	for i := 0; i < ops; i++ {
		recs = append(recs, trace.Record{Kind: disk.Write, Extent: geom.Ext(int64(i%53)*4, 4)})
	}

	global := &countingProbe{}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				SetGlobalProbe(global)
			} else {
				SetGlobalProbe(nil)
			}
		}
	}()

	var wg sync.WaitGroup
	probes := make([]*countingProbe, sims)
	for i := 0; i < sims; i++ {
		probes[i] = &countingProbe{}
		wg.Add(1)
		go func(p *countingProbe) {
			defer wg.Done()
			sim, err := NewSimulator(Config{LogStructured: true, FrontierStart: FrontierFor(recs)}, p)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := sim.Run(trace.NewSliceReader(recs)); err != nil {
				t.Error(err)
			}
		}(probes[i])
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	SetGlobalProbe(nil)

	for i, p := range probes {
		if got := p.ops.Load(); got != ops {
			t.Errorf("probe %d saw %d ops, want %d", i, got, ops)
		}
	}
}
