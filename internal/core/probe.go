package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/stl"
)

// This file defines the simulator's observability probe: a low-level
// event stream covering every statistic the simulator accumulates, so an
// attached probe (internal/obsv's tracer or histogram collector) can
// reconstruct a run's Stats without the simulator knowing how the events
// are consumed. With no probe attached every emit site is a nil-slice
// range — no allocations, no virtual calls — keeping the hot path at its
// uninstrumented cost.

// OpEvent describes one logical trace operation as the simulator
// processes it. Frags is the dynamic fragmentation of a read (the number
// of physically-contiguous pieces) and 0 for writes.
type OpEvent struct {
	// Op is the 0-based index of the operation in the trace.
	Op int64
	// Kind is disk.Read or disk.Write.
	Kind disk.OpKind
	// Lba is the logical extent of the operation.
	Lba geom.Extent
	// Frags is len(Resolve(Lba)) for reads, 0 for writes.
	Frags int
}

// AccessEvent describes one physical I/O attempt, including retries of
// faulted attempts — each attempt moves the head and is charged its seek,
// so each is reported.
type AccessEvent struct {
	// Op is the logical operation the attempt serves.
	Op int64
	// Access is the disk model's outcome: kind, physical extent, seek
	// flag and signed distance, fault flag.
	Access disk.Access
	// Maintenance marks background I/O (cleaning, media-cache merges)
	// rather than host I/O.
	Maintenance bool
	// Transient classifies a faulted attempt: true for a retryable fault,
	// false for a persistent media error. Meaningless when the attempt
	// did not fault.
	Transient bool
}

// MechKind classifies a mechanism outcome event.
type MechKind uint8

// Mechanism outcome kinds. Each corresponds 1:1 to a Stats counter, so a
// probe can reconstruct mechanism statistics by counting events.
const (
	// MechCacheHit is a fragment lookup served from the selective cache.
	MechCacheHit MechKind = iota + 1
	// MechCacheMiss is a fragment lookup that fell through to the medium.
	MechCacheMiss
	// MechCacheInvalidate reports cache entries dropped by an overlapping
	// write; Sectors holds the number of entries dropped.
	MechCacheInvalidate
	// MechPrefetchHit is a fragment access served from the drive buffer.
	MechPrefetchHit
	// MechDefragWriteback is a completed defrag write-back; Sectors holds
	// the sectors rewritten.
	MechDefragWriteback
	// MechRetry is one re-attempt spent on a transient disk fault.
	MechRetry
	// MechRecovery is a faulted access that eventually succeeded.
	MechRecovery
	// MechUnrecovered is an access abandoned after exhausting retries or
	// hitting a media error.
	MechUnrecovered
	// MechAbortedRelocation is a defrag write-back abandoned on a fault
	// or journal failure, leaving the extent map untouched.
	MechAbortedRelocation
	// MechPoisonedEviction is a cache entry evicted as corrupt.
	MechPoisonedEviction
	// MechPrefetchFallback is a drive-buffer serve abandoned as corrupt.
	MechPrefetchFallback
	// MechMaintRead accounts one background maintenance read operation;
	// Sectors holds its extent size. (Per-attempt disk activity is
	// reported separately via AccessEvent.)
	MechMaintRead
	// MechMaintWrite accounts one background maintenance write operation.
	MechMaintWrite
)

var mechNames = [...]string{
	MechCacheHit:          "cache-hit",
	MechCacheMiss:         "cache-miss",
	MechCacheInvalidate:   "cache-invalidate",
	MechPrefetchHit:       "prefetch-hit",
	MechDefragWriteback:   "defrag-writeback",
	MechRetry:             "retry",
	MechRecovery:          "recovery",
	MechUnrecovered:       "unrecovered",
	MechAbortedRelocation: "aborted-relocation",
	MechPoisonedEviction:  "poisoned-eviction",
	MechPrefetchFallback:  "prefetch-fallback",
	MechMaintRead:         "maint-read",
	MechMaintWrite:        "maint-write",
}

// String returns the kind's kebab-case name.
func (k MechKind) String() string {
	if int(k) < len(mechNames) && mechNames[k] != "" {
		return mechNames[k]
	}
	return fmt.Sprintf("mech(%d)", k)
}

// MechEvent reports one mechanism outcome.
type MechEvent struct {
	// Op is the logical operation during which the outcome occurred.
	Op int64
	// Kind classifies the outcome.
	Kind MechKind
	// Sectors carries the kind-specific magnitude (sectors rewritten,
	// entries invalidated); 0 for pure counting kinds.
	Sectors int64
}

// JournalKind classifies a write-ahead-journal event.
type JournalKind uint8

// Journal event kinds.
const (
	// JournalAppend is an acknowledged write-ahead append.
	JournalAppend JournalKind = iota + 1
	// JournalAppendRetry is a re-attempt on a transient journal fault.
	JournalAppendRetry
	// JournalAppendFailure is an append abandoned after retries.
	JournalAppendFailure
	// JournalCheckpoint is a completed checkpoint; Dur holds its
	// wall-clock cost (stage + fsync + rename), the run's fsync price.
	JournalCheckpoint
	// JournalCrash reports that an injected crash point fired and the
	// run is over.
	JournalCrash
)

var journalNames = [...]string{
	JournalAppend:        "append",
	JournalAppendRetry:   "append-retry",
	JournalAppendFailure: "append-failure",
	JournalCheckpoint:    "checkpoint",
	JournalCrash:         "crash",
}

// String returns the kind's kebab-case name.
func (k JournalKind) String() string {
	if int(k) < len(journalNames) && journalNames[k] != "" {
		return journalNames[k]
	}
	return fmt.Sprintf("journal(%d)", k)
}

// JournalEvent reports one write-ahead-journal outcome.
type JournalEvent struct {
	// Op is the logical operation during which the event occurred.
	Op int64
	// Kind classifies the event.
	Kind JournalKind
	// Dur is the wall-clock cost for JournalCheckpoint, 0 otherwise.
	Dur time.Duration
}

// Summary carries the end-of-run values that are snapshots of component
// state rather than accumulations of per-op events. Run and RunContext
// emit it once when the run ends (normally or at an injected crash);
// callers driving Step directly may emit it via Finish.
type Summary struct {
	// WAF is the layer's write amplification factor (1 when the layer
	// does not relocate data on its own).
	WAF float64
	// CheckpointAge is the journal records past the last checkpoint when
	// the run ended (0 when journaling is disabled).
	CheckpointAge int64
	// Injected reports whether a fault injector was attached; the four
	// injection counters below are meaningful only when true.
	Injected bool
	// TransientReads, TransientWrites, MediaErrors and Poisoned are the
	// injector's tallies (see fault.Counters).
	TransientReads  int64
	TransientWrites int64
	MediaErrors     int64
	Poisoned        int64
}

// Probe receives the simulator's low-level event stream. Implementations
// must not retain the event values' slices (there are none today) and
// must be cheap: probes run synchronously on the simulation goroutine.
type Probe interface {
	// OnOp is called once per logical trace operation.
	OnOp(OpEvent)
	// OnAccess is called once per physical I/O attempt.
	OnAccess(AccessEvent)
	// OnMech is called once per mechanism outcome.
	OnMech(MechEvent)
	// OnJournal is called once per write-ahead-journal event.
	OnJournal(JournalEvent)
	// OnSummary is called once when the run finishes.
	OnSummary(Summary)
}

// AddProbe attaches a probe to the simulator. Probes are invoked in
// attachment order, synchronously, for every event of the run.
func (s *Simulator) AddProbe(p Probe) {
	if p != nil {
		s.probes = append(s.probes, p)
	}
}

// globalProbe, when set, is attached to every Simulator NewSimulator
// builds, so a process-wide observer (e.g. the experiments CLI's live
// metrics collector) can watch runs it does not construct itself.
var globalProbe atomic.Pointer[Probe]

// SetGlobalProbe attaches p to every simulator built after the call;
// nil detaches. The probe must be safe for use across consecutive runs
// (each run delivers its own Summary).
//
// The global probe is a single-run convenience for CLIs that build one
// simulator at a time deep inside a pipeline (experiments, smrsim). It
// is the WRONG tool when several simulators run concurrently in one
// process — every volume's events would land in the same probe, and the
// probe would need to be race-safe against all of them. Multi-tenant
// hosts (internal/volume) must instead pass a per-simulator probe to
// NewSimulator, which observes exactly one simulator.
func SetGlobalProbe(p Probe) {
	if p == nil {
		globalProbe.Store(nil)
		return
	}
	globalProbe.Store(&p)
}

func (s *Simulator) emitOp(ev OpEvent) {
	for _, p := range s.probes {
		p.OnOp(ev)
	}
}

func (s *Simulator) emitAccess(ev AccessEvent) {
	for _, p := range s.probes {
		p.OnAccess(ev)
	}
}

func (s *Simulator) emitMech(kind MechKind, sectors int64) {
	for _, p := range s.probes {
		p.OnMech(MechEvent{Op: s.opIndex, Kind: kind, Sectors: sectors})
	}
}

func (s *Simulator) emitJournal(kind JournalKind, dur time.Duration) {
	for _, p := range s.probes {
		p.OnJournal(JournalEvent{Op: s.opIndex, Kind: kind, Dur: dur})
	}
}

// Finish emits the end-of-run Summary to every probe. Run and RunContext
// call it automatically; drivers stepping the simulator by hand (e.g.
// analysis instrumentation) call it once after the last Step. Calling it
// with no probes attached is free.
func (s *Simulator) Finish() {
	if len(s.probes) == 0 {
		return
	}
	sum := Summary{WAF: 1}
	if s.amplifier != nil {
		sum.WAF = stl.WAF(s.amplifier)
	}
	if s.wal != nil {
		sum.CheckpointAge = s.wal.SinceCheckpoint()
	}
	if s.injector != nil {
		c := s.injector.Counters()
		sum.Injected = true
		sum.TransientReads = c.TransientReads
		sum.TransientWrites = c.TransientWrites
		sum.MediaErrors = c.MediaErrors
		sum.Poisoned = c.Poisoned
	}
	for _, p := range s.probes {
		p.OnSummary(sum)
	}
}
