package main

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"smrseek/internal/core"
	"smrseek/internal/metrics"
	"smrseek/internal/server"
	"smrseek/internal/volume"
)

// startServer brings up an in-process smrd stack for the generator to
// hit over real TCP.
func startServer(t *testing.T, cfgs ...volume.Config) string {
	t.Helper()
	mgr, err := volume.OpenAll(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		t.Fatal(err)
	}
	srv := server.New(mgr, ln, server.Options{Logf: t.Logf})
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return ln.Addr().String()
}

func lsConfig(name string) volume.Config {
	return volume.Config{
		Name: name,
		Sim:  core.Config{LogStructured: true, FrontierStart: 1 << 22},
	}
}

func TestLoadGeneratorReportsLatency(t *testing.T) {
	addr := startServer(t, lsConfig("a"), lsConfig("b"))
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr, "-volumes", "a,b",
		"-workload", "w91", "-scale", "0.01", "-conns", "4",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"load summary", "ops/s", "p50", "p99", "replaying w91"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestLoadGeneratorThrottled(t *testing.T) {
	addr := startServer(t, lsConfig("a"))
	var out bytes.Buffer
	// High QPS so the throttle path runs without slowing the test.
	err := run([]string{
		"-addr", addr, "-volumes", "a",
		"-workload", "w91", "-scale", "0.005", "-conns", "2", "-qps", "200000",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "at 200000 qps") {
		t.Errorf("throttle not reported:\n%s", out.String())
	}
}

func TestLoadGeneratorFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-conns", "0"}, &out); err == nil {
		t.Error("accepted -conns 0")
	}
	if err := run([]string{"-volumes", "a,,b"}, &out); err == nil {
		t.Error("accepted empty volume name")
	}
	if _, _, err := loadTrace("", 1, "/no/such/file", "weird", -1); err == nil {
		t.Error("accepted missing trace file")
	}
}

func TestLoadGeneratorPipelined(t *testing.T) {
	addr := startServer(t, lsConfig("a"), lsConfig("b"))
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr, "-volumes", "a,b",
		"-workload", "w91", "-scale", "0.01", "-conns", "2", "-window", "16",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"pipelined (window 16)", "load summary", "ops/s"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestPipelinedShedAccounting pins the retry-dedupe contract: a record
// that bounces off a full queue is resubmitted under a fresh request ID
// but must count exactly one op. A QueueDepth-1 volume under a window
// of 32 sheds constantly, so any double-count shows up as ops > trace
// length.
func TestPipelinedShedAccounting(t *testing.T) {
	cfg := lsConfig("a")
	cfg.QueueDepth = 1
	addr := startServer(t, cfg)
	pre, _, err := loadTrace("w91", 0.01, "", "cp", -1)
	if err != nil {
		t.Fatal(err)
	}
	agg := &tally{lat: metrics.NewHistogram()}
	if err := drivePipelined(addr, nil, "a", pre, agg, 0, 100000, 32); err != nil {
		t.Fatalf("drivePipelined: %v", err)
	}
	if want := int64(pre.Len()); agg.ops != want {
		t.Fatalf("ops = %d, want exactly %d (shed retries must not double-count)", agg.ops, want)
	}
	if agg.sheds == 0 {
		t.Error("QueueDepth-1 volume under window 32 shed nothing; shed path untested")
	}
	if agg.failovers != 0 {
		t.Errorf("failovers = %d on a healthy single server", agg.failovers)
	}
}
