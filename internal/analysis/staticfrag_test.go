package analysis

import (
	"testing"

	"smrseek/internal/metrics"
	"smrseek/internal/workload"
)

func TestStaticFragSeriesGrows(t *testing.T) {
	p, err := workload.ByName("w91")
	if err != nil {
		t.Fatal(err)
	}
	recs := p.Generate(0.2)
	pts, err := StaticFragSeries(recs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Static fragmentation and mapped volume are non-decreasing over a
	// write-accumulating run (no cleaning in the infinite model), and
	// strictly higher at the end than at the start.
	for i := 1; i < len(pts); i++ {
		if pts[i].MappedSectors < pts[i-1].MappedSectors {
			t.Fatalf("mapped sectors decreased at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
		if pts[i].Op <= pts[i-1].Op {
			t.Fatalf("op indexes not increasing")
		}
	}
	if pts[len(pts)-1].Fragments <= pts[0].Fragments {
		t.Errorf("static fragmentation did not grow: %+v ... %+v", pts[0], pts[len(pts)-1])
	}
	if pts[len(pts)-1].Op != int64(len(recs)) {
		t.Errorf("last sample at op %d, want %d", pts[len(pts)-1].Op, len(recs))
	}
	// sampleEvery < 1 clamps.
	if _, err := StaticFragSeries(recs[:10], 0); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceStats(t *testing.T) {
	cdf := metrics.NewCDF()
	if st := DistanceStats(cdf); st.Seeks != 0 {
		t.Error("empty CDF should report zero seeks")
	}
	// Half the seeks tiny, half at ~1 GB.
	const gb = int64(1) << 21
	for i := 0; i < 500; i++ {
		cdf.Observe(100)
		cdf.Observe(float64(-gb + int64(i)))
	}
	st := DistanceStats(cdf)
	if st.Seeks != 1000 {
		t.Fatalf("seeks = %d", st.Seeks)
	}
	if st.WithinTrack < 0.45 || st.WithinTrack > 0.55 {
		t.Errorf("WithinTrack = %v, want ~0.5", st.WithinTrack)
	}
	if st.Within1GB < 0.95 {
		t.Errorf("Within1GB = %v, want ~1", st.Within1GB)
	}
	if st.MeanAbsGB <= 0 {
		t.Error("MeanAbsGB should be positive")
	}
}
