package volume

import (
	"fmt"
	"runtime"
	"sync"

	"smrseek/internal/obsv"
)

// Manager owns a fixed set of volumes opened together and closed
// together — the daemon's in-process model of a multi-volume service.
// The set is immutable after OpenAll, so lookups need no locking and
// are safe from any number of server goroutines.
type Manager struct {
	order []string
	vols  map[string]*Volume
	reg   *obsv.Registry
}

// OpenAll opens every configured volume. Independent volumes open — and
// recover their journal directories — concurrently behind a semaphore
// bounded by GOMAXPROCS, so a multi-volume daemon's time-to-recovery is
// set by its largest journal, not the sum. On any failure every volume
// that opened is closed and the first error in config order is
// returned, regardless of which open failed first in time. Names must
// be unique.
func OpenAll(cfgs ...Config) (*Manager, error) {
	m := &Manager{vols: make(map[string]*Volume, len(cfgs)), reg: obsv.NewRegistry()}
	seen := make(map[string]bool, len(cfgs))
	for _, cfg := range cfgs {
		if seen[cfg.Name] {
			return nil, fmt.Errorf("volume: duplicate name %q", cfg.Name)
		}
		seen[cfg.Name] = true
	}

	vols := make([]*Volume, len(cfgs))
	errs := make([]error, len(cfgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			vols[i], errs[i] = Open(cfgs[i])
		}(i)
	}
	wg.Wait()

	for _, err := range errs {
		if err == nil {
			continue
		}
		for _, v := range vols {
			if v != nil {
				v.Close()
			}
		}
		return nil, err
	}
	// Register in config order so Names and the metrics registry are
	// deterministic regardless of open completion order.
	for i, cfg := range cfgs {
		m.order = append(m.order, cfg.Name)
		m.vols[cfg.Name] = vols[i]
		if err := m.reg.Register(cfg.Name, vols[i].Collector()); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// Get returns the named volume.
func (m *Manager) Get(name string) (*Volume, bool) {
	v, ok := m.vols[name]
	return v, ok
}

// Names returns the volume names in open order.
func (m *Manager) Names() []string { return append([]string(nil), m.order...) }

// Registry returns the shared metrics registry holding every volume's
// collector, ready for obsv.ServeRegistry.
func (m *Manager) Registry() *obsv.Registry { return m.reg }

// Close closes every volume — draining queues, checkpointing journaled
// state — and returns the first error.
func (m *Manager) Close() error {
	var first error
	for _, name := range m.order {
		if err := m.vols[name].Close(); err != nil && first == nil {
			first = fmt.Errorf("volume %s: %w", name, err)
		}
	}
	return first
}
