package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smrseek/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden pins a table's exact rendering. Formatting changes are
// fine — but deliberate: regenerate with
//
//	go test ./internal/report -run Golden -update
func checkGolden(t *testing.T, name string, tb *Table) {
	t.Helper()
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s rendering changed (regenerate with -update if deliberate)\n got:\n%s\nwant:\n%s",
			name, buf.Bytes(), want)
	}
}

// TestGoldenFig2 pins the Figure 2 table shape (headers and cell
// formatting as built by internal/experiments) on fixed representative
// data, so the experiment output only changes deliberately.
func TestGoldenFig2(t *testing.T) {
	tb := NewTable("Figure 2: seek counts, non-log-structured (NoLS) vs log-structured (LS)",
		"workload", "source", "NoLS read", "NoLS write", "LS read", "LS write", "total SAF")
	tb.AddRow("src2_2", "MSR", HumanCount(152340), HumanCount(98100),
		HumanCount(390112), HumanCount(1200), metrics.SAF(390112+1200, 152340+98100))
	tb.AddRow("w84", "Tencent", HumanCount(5000), HumanCount(41000),
		HumanCount(88123), HumanCount(907), metrics.SAF(88123+907, 5000+41000))
	tb.AddRow("ts_0", "MSR", HumanCount(0), HumanCount(0),
		HumanCount(0), HumanCount(0), metrics.SAF(0, 0))
	checkGolden(t, "fig2", tb)
}

func TestGoldenFig11(t *testing.T) {
	tb := NewTable("Figure 11: seek amplification factor (SAF) vs NoLS baseline",
		"workload", "source", "LS", "LS+defrag", "LS+prefetch", "LS+cache")
	tb.AddRow("usr_0", "MSR", 2.37, 1.42, 1.18, 1.05)
	tb.AddRow("w64", "Tencent", 11.08, 3.96, 2.2, 1.61)
	tb.AddRow("hm_1", "MSR", 1.0, 1.0, 1.0, 1.0)
	checkGolden(t, "fig11", tb)
}

func TestGoldenFaultTable(t *testing.T) {
	checkGolden(t, "fault", ResilienceTable(metrics.Resilience{
		FaultsInjected:     15321,
		TransientFaults:    14800,
		MediaFaults:        521,
		WriteFaults:        7100,
		Retries:            16902,
		Recoveries:         14555,
		Unrecovered:        766,
		AbortedRelocations: 31,
		PoisonedEvictions:  112,
		PrefetchFallbacks:  87,
	}))
}

func TestGoldenDurabilityTable(t *testing.T) {
	checkGolden(t, "durability", DurabilityTable(metrics.Durability{
		JournalAppends:  120345,
		AppendRetries:   410,
		AppendFailures:  3,
		Checkpoints:     117,
		CheckpointAge:   345,
		Crashed:         true,
		Recovered:       true,
		RecordsReplayed: 345,
		ReplayedSectors: 11040,
		TornTail:        true,
		FromCheckpoint:  true,
	}))
}

func TestGoldenCleaningTable(t *testing.T) {
	checkGolden(t, "cleaning", CleaningTable(metrics.Cleaning{
		CachedWrites:      48211,
		CachedSectors:     1530112,
		CacheReads:        20931,
		CleanRuns:         811,
		BandsCleaned:      930,
		CleanReadSectors:  17003520,
		CleanWriteSectors: 18155520,
		Stalls:            119,
		StallSectors:      2312960,
		DirtyBands:        210,
		HostWriteSectors:  40255488,
		BandCrossings:     88012,
	}))
}

func TestGoldenHistogramTable(t *testing.T) {
	h := metrics.NewHistogram()
	for _, v := range []int64{-5000, -4096, -3, 0, 0, 1, 7, 8, 500, 500, 501, 1 << 20} {
		h.Observe(v)
	}
	checkGolden(t, "histogram", HistogramTable(
		"seek distance histogram", "sectors", h.Buckets(), h.Total()))
}

func TestGoldenCDFTable(t *testing.T) {
	h := metrics.NewHistogram()
	for _, v := range []int64{-5000, -4096, -3, 0, 0, 1, 7, 8, 500, 500, 501, 1 << 20} {
		h.Observe(v)
	}
	checkGolden(t, "cdf", CDFTable(
		"seek distance CDF", "sectors", h.CDFPoints()))
}
