package journal

import (
	"bytes"
	"os"
	"runtime"
	"testing"

	"smrseek/internal/geom"
)

// BenchmarkAppend measures the per-record write-ahead logging cost the
// simulator pays on every journaled mutation.
func BenchmarkAppend(b *testing.B) {
	lg, err := Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer lg.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := Record{Kind: RecWrite, Lba: geom.Ext(int64(i)%100000, 8), Pba: int64(i) * 8}
		if err := lg.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// sealedBenchDir journals nRecs records in segments of seg and closes
// the log, leaving a multi-segment sealed journal for audit benchmarks.
func sealedBenchDir(b *testing.B, nRecs, seg int) string {
	b.Helper()
	dir := b.TempDir()
	lg, err := Open(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := lg.SetSegmentSize(seg); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nRecs; i++ {
		rec := Record{Kind: RecWrite, Lba: geom.Ext(int64(i)%100000*8, 8), Pba: int64(i) * 8}
		if err := lg.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkVerifyDir measures the full directory audit — every frame
// CRC, every segment's Merkle root, the seal chain — sequentially and
// with the parallel verification pipeline at GOMAXPROCS workers. The
// two sub-benchmarks produce identical audits; the delta is the win the
// worker pool buys on this machine.
func BenchmarkVerifyDir(b *testing.B) {
	dir := sealedBenchDir(b, 20000, 256)
	fi, err := os.Stat(JournalPath(dir))
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"seq", 1},
		{"par", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(fi.Size())
			for i := 0; i < b.N; i++ {
				a, err := VerifyDirWorkers(dir, bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(a.Segments) != 20000/256 {
					b.Fatalf("audited %d segments", len(a.Segments))
				}
			}
		})
	}
}

// BenchmarkReadJournal measures replay-side parsing of a 10k-record log.
func BenchmarkReadJournal(b *testing.B) {
	var buf bytes.Buffer
	buf.Write(marshalHeader(1, 0, Hash{}))
	for i := 0; i < 10000; i++ {
		buf.Write(MarshalRecord(Record{Kind: RecWrite, Lba: geom.Ext(int64(i), 8), Pba: int64(i) * 8}))
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ReadJournal(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Records) != 10000 || d.Torn {
			b.Fatalf("replay parsed %d records, torn=%v", len(d.Records), d.Torn)
		}
	}
}
