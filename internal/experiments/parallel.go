package experiments

import (
	"context"
	"runtime"
	"sync"
)

// forEachIndexed runs fn(i) for i in [0, n) on up to GOMAXPROCS workers
// and returns the first error. Results are written by index on the
// caller's side, so output order — and therefore every rendered table —
// is deterministic regardless of scheduling.
func forEachIndexed(n int, fn func(i int) error) error {
	return forEachIndexedCtx(context.Background(), n, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// forEachIndexedCtx is forEachIndexed with cancellation: dispatch stops
// as soon as any invocation errors or ctx ends, in-flight work is
// allowed to finish, and queued indices are dropped rather than run.
// The first invocation error wins; with none, a cancelled context
// returns ctx.Err().
func forEachIndexedCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		abort    = make(chan struct{})
		once     sync.Once
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		once.Do(func() { close(abort) })
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// Drain without running once an error or cancellation
				// has been observed.
				select {
				case <-abort:
					continue
				case <-ctx.Done():
					continue
				default:
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-abort:
			break dispatch
		case <-ctx.Done():
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}
